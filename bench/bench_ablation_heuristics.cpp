// Ablation: the two optional §3.1 heuristics (success-zero removal, short
// predicate elimination) on a corpus with known predicate functions and
// zero-success returns. Quantifies the trade the paper describes: the
// heuristics remove non-faults at the risk of dropping real ones — which
// is why LFI ships with them disabled.
#include "bench_util.hpp"
#include "core/profiler.hpp"
#include "corpus/libgen.hpp"
#include "kernel/kernel_image.hpp"
#include "util/strings.hpp"

namespace {

using namespace lfi;

/// A library with known composition: error functions that also return a
/// constant 0 on success (non-faults), isFile-style predicates, and a
/// pointer function whose only "error" IS the NULL (0) return.
corpus::GeneratedLibrary HeuristicCorpus() {
  corpus::LibrarySpec spec;
  spec.name = "libheur.so";
  spec.seed = 31;
  for (int i = 0; i < 30; ++i) {
    corpus::FunctionSpec fn;
    fn.name = Format("err_fn%d", i);
    fn.arg_count = 1;
    fn.detectable_documented = {-(i % 7 + 1)};
    // Success path returns constant 0: a non-fault the profiler reports
    // and heuristic #1 removes. Emulated by documenting -k only.
    fn.detectable_undocumented = {0};
    spec.functions.push_back(fn);
  }
  for (int i = 0; i < 10; ++i) {
    corpus::FunctionSpec fn;
    fn.name = Format("is_pred%d", i);
    fn.short_predicate = true;
    spec.functions.push_back(fn);
  }
  return corpus::GenerateLibrary(spec);
}

struct Outcome {
  size_t reported_codes = 0;
  size_t non_faults = 0;    // 0/1 codes reported for predicates + zero-successes
  size_t real_faults = 0;   // negative documented codes reported
};

Outcome Profile(const corpus::GeneratedLibrary& lib,
                analysis::HeuristicOptions heur) {
  static const sso::SharedObject kernel = kernel::BuildKernelImage();
  analysis::Workspace ws;
  ws.SetKernel(&kernel);
  ws.AddModule(&lib.object);
  core::ProfilerOptions opts;
  opts.heuristics = heur;
  core::Profiler profiler(ws, opts);
  auto profile = profiler.ProfileLibrary(lib.object);
  Outcome out;
  if (!profile.ok()) return out;
  for (const auto& fn : profile.value().functions) {
    for (const auto& ec : fn.error_codes) {
      ++out.reported_codes;
      if (ec.retval < 0) ++out.real_faults;
      else ++out.non_faults;
    }
  }
  return out;
}

void PrintTables() {
  corpus::GeneratedLibrary lib = HeuristicCorpus();
  analysis::HeuristicOptions off;
  analysis::HeuristicOptions zero;
  zero.drop_success_zero = true;
  analysis::HeuristicOptions pred;
  pred.drop_short_predicates = true;
  analysis::HeuristicOptions both;
  both.drop_success_zero = true;
  both.drop_short_predicates = true;

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Heuristics", "Reported codes", "Non-faults kept",
                  "Real faults kept"});
  for (const auto& [label, opts] :
       std::vector<std::pair<std::string, analysis::HeuristicOptions>>{
           {"none (paper default)", off},
           {"drop-success-zero", zero},
           {"drop-short-predicates", pred},
           {"both", both}}) {
    Outcome o = Profile(lib, opts);
    rows.push_back({label, Format("%zu", o.reported_codes),
                    Format("%zu", o.non_faults),
                    Format("%zu", o.real_faults)});
  }
  bench::PrintTable(
      "Ablation: §3.1 heuristics on a corpus of 30 error functions (with "
      "0-success returns) + 10 isFile()-style predicates",
      rows);
  std::printf(
      "\nExpected: heuristics shrink the non-fault column without losing "
      "real faults here — but they are unsound in general, hence off by "
      "default.\n");
}

void BM_ProfileWithHeuristics(benchmark::State& state) {
  corpus::GeneratedLibrary lib = HeuristicCorpus();
  analysis::HeuristicOptions opts;
  opts.drop_success_zero = state.range(0) != 0;
  opts.drop_short_predicates = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Profile(lib, opts));
  }
}
BENCHMARK(BM_ProfileWithHeuristics)->Arg(0)->Arg(1);

}  // namespace

LFI_BENCH_MAIN(PrintTables)
