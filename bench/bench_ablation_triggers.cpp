// Ablation: what does trigger evaluation actually cost per intercepted
// call (the mechanism behind Tables 3/4), how much more do stack-trace
// conditions cost, and what does on-demand G' expansion save vs a full
// product-graph materialization (§3.1).
#include <chrono>

#include "analysis/constprop.hpp"
#include "bench_util.hpp"
#include "core/trigger_engine.hpp"
#include "corpus/table2_corpus.hpp"
#include "kernel/kernel_image.hpp"
#include "util/strings.hpp"

namespace {

using namespace lfi;

core::Plan PlanWithTriggers(int count, bool with_stack) {
  core::Plan plan;
  plan.seed = 5;
  for (int i = 0; i < count; ++i) {
    core::FunctionTrigger t;
    t.function = "read";
    t.mode = core::FunctionTrigger::Mode::CallCount;
    t.inject_call = 1u << 30;  // never fires: pure evaluation cost
    t.retval = -1;
    if (with_stack) {
      core::FrameCondition f;
      f.symbol = "nonexistent_caller";
      t.stacktrace.push_back(f);
    }
    plan.triggers.push_back(t);
  }
  return plan;
}

void PrintTables() {
  // Per-call evaluation cost vs trigger count (plain vs stack-trace),
  // measured the way an installed stub calls the engine: the FunctionState
  // handle is resolved once, so the per-call path is index-only.
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Triggers on one function", "ns/call (plain)",
                  "ns/call (stack-trace cond.)"});
  for (int count : {1, 10, 100, 1000}) {
    double plain_ns = 0, stack_ns = 0;
    for (bool with_stack : {false, true}) {
      core::TriggerEngine engine(PlanWithTriggers(count, with_stack), {});
      core::TriggerEngine::FunctionState* state = engine.state_for("read");
      core::Backtrace bt = {{0x1000, "caller_a"}, {0x2000, "caller_b"}};
      auto provider = [&bt] { return bt; };
      constexpr int kCalls = 20000;
      auto begin = std::chrono::steady_clock::now();
      for (int i = 0; i < kCalls; ++i) {
        benchmark::DoNotOptimize(engine.OnCall(*state, provider));
      }
      double ns = std::chrono::duration<double, std::nano>(
                      std::chrono::steady_clock::now() - begin)
                      .count() /
                  kCalls;
      (with_stack ? stack_ns : plain_ns) = ns;
    }
    rows.push_back({Format("%d", count), Format("%.0f", plain_ns),
                    Format("%.0f", stack_ns)});
  }
  bench::PrintTable(
      "Ablation: trigger-evaluation cost per intercepted call "
      "(the mechanism behind Tables 3/4's negligible overhead)",
      rows);

  // On-demand vs full product-graph expansion (§3.1).
  static const sso::SharedObject kernel = kernel::BuildKernelImage();
  corpus::Table2Entry entry = corpus::Table2Reference()[5];  // libxml2-sized
  corpus::GeneratedLibrary lib = corpus::GenerateTable2Library(entry, 3);

  std::vector<std::vector<std::string>> grows;
  grows.push_back({"G' expansion", "states explored", "relative"});
  uint64_t on_demand_states = 0;
  for (bool on_demand : {true, false}) {
    analysis::Workspace ws;
    ws.SetKernel(&kernel);
    ws.AddModule(&lib.object);
    analysis::AnalysisOptions opts;
    opts.on_demand = on_demand;
    analysis::ConstPropAnalyzer analyzer(ws, opts);
    for (const auto& sym : lib.object.exports) {
      (void)analyzer.Analyze(lib.object, sym.name);
    }
    uint64_t states = analyzer.total_states_explored();
    if (on_demand) on_demand_states = states;
    grows.push_back(
        {on_demand ? "on-demand (paper §3.1)" : "full |V| x |locations|",
         Format("%llu", (unsigned long long)states),
         on_demand ? "1.0x"
                   : Format("%.1fx", static_cast<double>(states) /
                                         static_cast<double>(on_demand_states))});
  }
  bench::PrintTable(
      Format("Ablation: on-demand G' expansion over %zu functions "
             "(full expansion would allocate the whole product graph)",
             lib.object.exports.size()),
      grows);
}

void BM_TriggerEvalPlain(benchmark::State& state) {
  // The install-time contract: handle resolved once, index-only per call.
  core::TriggerEngine engine(
      PlanWithTriggers(static_cast<int>(state.range(0)), false), {});
  core::TriggerEngine::FunctionState* fn = engine.state_for("read");
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.OnCall(*fn, {}));
  }
}
BENCHMARK(BM_TriggerEvalPlain)->Arg(1)->Arg(100)->Arg(1000);

void BM_TriggerEvalStringWrapper(benchmark::State& state) {
  // The resolve-per-call wrapper, for comparison against the handle path.
  core::TriggerEngine engine(
      PlanWithTriggers(static_cast<int>(state.range(0)), false), {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.OnCall("read", {}));
  }
}
BENCHMARK(BM_TriggerEvalStringWrapper)->Arg(1)->Arg(100)->Arg(1000);

void BM_TriggerEvalUntriggeredFunction(benchmark::State& state) {
  core::TriggerEngine engine(PlanWithTriggers(100, false), {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.OnCall("write", {}));  // no triggers
  }
}
BENCHMARK(BM_TriggerEvalUntriggeredFunction);

}  // namespace

LFI_BENCH_MAIN(PrintTables)
