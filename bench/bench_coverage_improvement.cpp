// §6.1 "Improving Coverage" — MySQL's own regression suite measured at 73%
// basic-block coverage; fully-automatic random libc injection raised the
// overall number (to >= 74%), with the InnoDB ibuf module gaining 12%.
//
// The dbserver stand-in's suite runs with and without a random libc
// faultload; per-module basic-block coverage is measured by the VM. The
// suite runs execute as a fault-injection campaign (src/campaign), so this
// bench also measures campaign scaling: the same 64-scenario set at
// --jobs 1 vs --jobs 8 must produce identical per-scenario results while
// the wall clock drops with the worker count.
#include "apps/dbserver.hpp"
#include "apps/workloads.hpp"
#include "bench_util.hpp"
#include "campaign/runner.hpp"
#include "core/scenario_gen.hpp"
#include "util/strings.hpp"

namespace {

using namespace lfi;

/// The shared scaling workload: `count` independently-seeded random libc
/// faultloads against the DB regression suite.
std::vector<campaign::Scenario> ScalingScenarios(size_t count) {
  const std::vector<core::FaultProfile>& profiles = apps::LibcProfiles();
  std::vector<campaign::Scenario> scenarios;
  for (size_t i = 0; i < count; ++i) {
    campaign::Scenario s;
    s.name = Format("db-suite-%zu", i);
    s.plan = core::GenerateRandom(profiles, 0.01, campaign::DeriveSeed(17, i));
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

campaign::CampaignReport RunScaling(const std::vector<campaign::Scenario>& set,
                                    int jobs) {
  campaign::CampaignOptions opts;
  opts.jobs = jobs;
  opts.entry = apps::kDbTestEntry;
  opts.max_instructions = 50'000'000;
  campaign::CampaignRunner runner(apps::DbSuiteMachineSetup(),
                                  apps::LibcProfiles(), opts);
  return runner.Run(set);
}

void PrintTables() {
  // Smoke mode (LFI_BENCH_SMOKE=1, CI) shrinks the run and scenario counts
  // but still exercises the campaign + bitmap-merge machinery end to end.
  const int kRuns = bench::Scaled(10, 2);
  apps::CoverageReport base = apps::RunDbTestSuite(false, kRuns, 0.0, 17);
  apps::CoverageReport with = apps::RunDbTestSuite(true, kRuns, 0.01, 17);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Module", "Suite only", "Suite + LFI", "Gain"});
  for (const auto& [name, counts] : base.modules) {
    auto [bc, bt] = counts;
    auto [wc, wt] = with.modules.at(name);
    double bpct = 100.0 * static_cast<double>(bc) / static_cast<double>(bt);
    double wpct = 100.0 * static_cast<double>(wc) / static_cast<double>(wt);
    rows.push_back({name, Format("%.1f%% (%zu/%zu)", bpct, bc, bt),
                    Format("%.1f%% (%zu/%zu)", wpct, wc, wt),
                    Format("%+.1f%%", wpct - bpct)});
  }
  rows.push_back({"OVERALL", Format("%.1f%%", base.overall()),
                  Format("%.1f%%", with.overall()),
                  Format("%+.1f%%", with.overall() - base.overall())});
  bench::PrintTable(
      "§6.1: basic-block coverage of the DB regression suite "
      "(paper: 73% -> >=74% overall, ibuf +12%)",
      rows);
  std::printf(
      "\ninjection runs that crashed the server: %zu of %d "
      "(the paper saw 12 SIGSEGVs during its MySQL runs)\n",
      with.crashes, kRuns);

  // Campaign scaling: 1 vs 8 workers over one scenario set, identical
  // results required.
  std::vector<campaign::Scenario> set =
      ScalingScenarios(static_cast<size_t>(bench::Scaled(64, 8)));
  campaign::CampaignReport serial = RunScaling(set, 1);
  campaign::CampaignReport parallel = RunScaling(set, 8);
  bool identical = serial.results.size() == parallel.results.size();
  for (size_t i = 0; identical && i < serial.results.size(); ++i) {
    identical = serial.results[i].injections == parallel.results[i].injections &&
                serial.results[i].status == parallel.results[i].status &&
                serial.results[i].exit_code == parallel.results[i].exit_code;
  }
  bench::PrintTable(
      Format("campaign scaling: %zu DB-suite fault scenarios", set.size()),
      {{"Jobs", "Wall", "Injections", "Crashes", "Identical results"},
       {"1", Format("%.2fs", serial.wall_seconds),
        Format("%llu", (unsigned long long)serial.total_injections),
        Format("%zu", serial.crashes), "-"},
       {"8", Format("%.2fs", parallel.wall_seconds),
        Format("%llu", (unsigned long long)parallel.total_injections),
        Format("%zu", parallel.crashes), identical ? "yes" : "NO (BUG)"}});
  std::printf("speedup at 8 jobs: %.2fx\n",
              parallel.wall_seconds > 0
                  ? serial.wall_seconds / parallel.wall_seconds
                  : 0.0);
}

void BM_SuiteWithoutLfi(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::RunDbTestSuite(false, 1, 0.0, 3));
  }
}
BENCHMARK(BM_SuiteWithoutLfi)->Unit(benchmark::kMillisecond);

void BM_SuiteWithLfi(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::RunDbTestSuite(true, 1, 0.01, 3));
  }
}
BENCHMARK(BM_SuiteWithLfi)->Unit(benchmark::kMillisecond);

/// Campaign throughput vs worker count over the same 64-scenario set.
void BM_CampaignJobs(benchmark::State& state) {
  static const std::vector<campaign::Scenario> set = ScalingScenarios(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunScaling(set, static_cast<int>(state.range(0))));
  }
  state.counters["scenarios/s"] = benchmark::Counter(
      static_cast<double>(set.size()) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

LFI_BENCH_MAIN(PrintTables)
