// §6.1 "Improving Coverage" — MySQL's own regression suite measured at 73%
// basic-block coverage; fully-automatic random libc injection raised the
// overall number (to >= 74%), with the InnoDB ibuf module gaining 12%.
//
// The dbserver stand-in's suite runs with and without a random libc
// faultload; per-module basic-block coverage is measured by the VM.
#include "apps/workloads.hpp"
#include "bench_util.hpp"
#include "util/strings.hpp"

namespace {

using namespace lfi;

void PrintTables() {
  constexpr int kRuns = 10;
  apps::CoverageReport base = apps::RunDbTestSuite(false, kRuns, 0.0, 17);
  apps::CoverageReport with = apps::RunDbTestSuite(true, kRuns, 0.01, 17);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Module", "Suite only", "Suite + LFI", "Gain"});
  for (const auto& [name, counts] : base.modules) {
    auto [bc, bt] = counts;
    auto [wc, wt] = with.modules.at(name);
    double bpct = 100.0 * static_cast<double>(bc) / static_cast<double>(bt);
    double wpct = 100.0 * static_cast<double>(wc) / static_cast<double>(wt);
    rows.push_back({name, Format("%.1f%% (%zu/%zu)", bpct, bc, bt),
                    Format("%.1f%% (%zu/%zu)", wpct, wc, wt),
                    Format("%+.1f%%", wpct - bpct)});
  }
  rows.push_back({"OVERALL", Format("%.1f%%", base.overall()),
                  Format("%.1f%%", with.overall()),
                  Format("%+.1f%%", with.overall() - base.overall())});
  bench::PrintTable(
      "§6.1: basic-block coverage of the DB regression suite "
      "(paper: 73% -> >=74% overall, ibuf +12%)",
      rows);
  std::printf(
      "\ninjection runs that crashed the server: %zu of %d "
      "(the paper saw 12 SIGSEGVs during its MySQL runs)\n",
      with.crashes, kRuns);
}

void BM_SuiteWithoutLfi(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::RunDbTestSuite(false, 1, 0.0, 3));
  }
}
BENCHMARK(BM_SuiteWithoutLfi)->Unit(benchmark::kMillisecond);

void BM_SuiteWithLfi(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::RunDbTestSuite(true, 1, 0.01, 3));
  }
}
BENCHMARK(BM_SuiteWithLfi)->Unit(benchmark::kMillisecond);

}  // namespace

LFI_BENCH_MAIN(PrintTables)
