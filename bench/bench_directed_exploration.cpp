// Directed vs undirected exploration at equal scenario budget (the PR's
// A/B claim): CFG-distance fitness plus the feasible-only injection gate
// against plain coverage-count selection.
//
// The target is a journal-style guest whose error handling has the two
// properties the directed mode exists for:
//   - every guard checks the *specific* error code (`== -1`, `== NULL`),
//     so injecting a documentation-derived code the implementation never
//     returns sails straight past the handler;
//   - each handler contains a nested fallback call with its own guard, so
//     the deep recovery blocks need two coincident faults — reachable
//     within budget only if parent selection favors corpus members that
//     already made it into the outer handler.
//
// Arm A (undirected) explores with coverage fitness over profiles padded
// with Assumed error codes the binary can never return — the realistic
// shape of a hand-augmented profile. Arm B (directed) runs the same
// budget with CFG-distance parent selection and --feasible-only.
//
// Enforced bars (exit code):
//   - B covers strictly more error-handling blocks than A (the blocks
//     analysis::ErrorHandlingBlocks flags — the recovery paths fault
//     injection exists to execute);
//   - B's union coverage is no smaller than A's (direction must not cost
//     breadth).
// The configuration is fixed and identical in smoke and full mode: both
// arms are deterministic, so the comparison is exactly reproducible.
//
// LFI_BENCH_JSON (BENCH_directed.json) records both arms' error-block and
// union-offset counts for the artifact history.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/heuristics.hpp"
#include "apps/workloads.hpp"
#include "bench_util.hpp"
#include "campaign/explorer.hpp"
#include "campaign/fitness.hpp"
#include "isa/codebuilder.hpp"
#include "libc/libc_builder.hpp"
#include "vm/machine.hpp"

namespace lfi {
namespace {

using isa::CodeBuilder;
using isa::Reg;

/// One journal stage: call `fn`, compare the result against the exact
/// failure value, and on failure run a recovery block that logs through a
/// fallback write() — which is itself guarded, giving every stage a
/// second-order handler two faults deep.
void EmitStage(CodeBuilder& b, const std::string& fn,
               const std::vector<Reg>& args, int64_t fail_value,
               uint32_t log_buf) {
  for (auto it = args.rbegin(); it != args.rend(); ++it) b.push(*it);
  b.call_sym(fn);
  b.add_ri(Reg::SP, static_cast<int64_t>(8 * args.size()));
  auto next = b.new_label();
  b.cmp_ri(Reg::R0, fail_value);
  b.jne(next);  // success jumps away: the handler is the fall-through
  // Outer handler: count the failure, append a log record.
  b.add_ri(Reg::R6, 1);
  b.mov_ri(Reg::R3, 8);
  b.lea_data(Reg::R2, static_cast<int32_t>(log_buf));
  b.load(Reg::R1, Reg::BP, -16);  // log fd
  b.push(Reg::R3);
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("write");
  b.add_ri(Reg::SP, 24);
  b.cmp_ri(Reg::R0, -1);
  b.jne(next);
  // Deep handler: the fallback failed too — reachable only when this
  // stage's fault coincides with a write() fault.
  b.add_ri(Reg::R7, 1);
  b.bind(next);
}

/// The bench guest: open a database and a log, then run a fixed pipeline
/// of guarded libc calls (stat/read/write/lseek/fsync/malloc/calloc/
/// close), each with the EmitStage handler shape.
sso::SharedObject BuildJournalApp() {
  CodeBuilder b;
  uint32_t db_path = b.emit_data({'/', 'd', 'b', 0});
  uint32_t log_path = b.emit_data({'/', 'l', 'o', 'g', 0});
  uint32_t buf = b.reserve_data(64);
  uint32_t log_buf = b.emit_data({'j', 'o', 'u', 'r', 'n', 'a', 'l', 0});
  b.begin_function("main");
  b.sub_ri(Reg::SP, 32);
  // db fd at BP-8, log fd at BP-16.
  b.mov_ri(Reg::R2, libc::O_RDONLY);
  b.lea_data(Reg::R1, static_cast<int32_t>(db_path));
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("open");
  b.add_ri(Reg::SP, 16);
  b.store(Reg::BP, -8, Reg::R0);
  b.mov_ri(Reg::R2, libc::O_RDONLY);
  b.lea_data(Reg::R1, static_cast<int32_t>(log_path));
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("open");
  b.add_ri(Reg::SP, 16);
  b.store(Reg::BP, -16, Reg::R0);

  // stat("/db", NULL)
  b.lea_data(Reg::R1, static_cast<int32_t>(db_path));
  b.mov_ri(Reg::R2, 0);
  EmitStage(b, "stat", {Reg::R1, Reg::R2}, -1, log_buf);
  // read(db, buf, 32)
  b.load(Reg::R1, Reg::BP, -8);
  b.lea_data(Reg::R2, static_cast<int32_t>(buf));
  b.mov_ri(Reg::R3, 32);
  EmitStage(b, "read", {Reg::R1, Reg::R2, Reg::R3}, -1, log_buf);
  // write(log, buf, 16)
  b.load(Reg::R1, Reg::BP, -16);
  b.lea_data(Reg::R2, static_cast<int32_t>(buf));
  b.mov_ri(Reg::R3, 16);
  EmitStage(b, "write", {Reg::R1, Reg::R2, Reg::R3}, -1, log_buf);
  // lseek(db, 0, SET)
  b.load(Reg::R1, Reg::BP, -8);
  b.mov_ri(Reg::R2, 0);
  b.mov_ri(Reg::R3, 0);
  EmitStage(b, "lseek", {Reg::R1, Reg::R2, Reg::R3}, -1, log_buf);
  // fsync(log)
  b.load(Reg::R1, Reg::BP, -16);
  EmitStage(b, "fsync", {Reg::R1}, -1, log_buf);
  // malloc(24) / calloc(4, 8): pointer returns, NULL on failure. The
  // results are only null-checked, never dereferenced.
  b.mov_ri(Reg::R1, 24);
  EmitStage(b, "malloc", {Reg::R1}, 0, log_buf);
  b.mov_ri(Reg::R1, 4);
  b.mov_ri(Reg::R2, 8);
  EmitStage(b, "calloc", {Reg::R1, Reg::R2}, 0, log_buf);
  // close(db)
  b.load(Reg::R1, Reg::BP, -8);
  EmitStage(b, "close", {Reg::R1}, -1, log_buf);

  b.mov_ri(Reg::R0, 0);
  b.leave_ret();
  b.end_function();
  return sso::FromCodeUnit("journal.so", b.Finish(), {libc::kLibcName});
}

campaign::MachineSetup JournalSetup() {
  auto libc_so = std::make_shared<const sso::SharedObject>(libc::BuildLibc());
  auto app = std::make_shared<const sso::SharedObject>(BuildJournalApp());
  return [libc_so, app](vm::Machine& machine) {
    machine.Load(*libc_so);
    machine.Load(*app);
    machine.kernel().add_file("/db", std::vector<uint8_t>(64, 'd'));
    machine.kernel().add_file("/log", {});
  };
}

/// Per-module begin offsets of every error-handling block in the loaded
/// image — the measurement universe both arms are scored against.
std::map<std::string, std::set<uint32_t>> ErrorBlockUniverse(
    const campaign::MachineSetup& setup) {
  std::map<std::string, std::set<uint32_t>> universe;
  vm::Machine machine;
  setup(machine);
  for (const auto& mod : machine.loader().modules()) {
    const sso::SharedObject& so = mod->object;
    for (const isa::Symbol& fn : so.exports) {
      auto cfg = analysis::BuildCfg(so, fn);
      if (!cfg.ok()) continue;
      for (size_t b : analysis::ErrorHandlingBlocks(cfg.value())) {
        universe[so.name].insert(cfg.value().blocks[b].begin);
      }
    }
  }
  return universe;
}

size_t CoveredErrorBlocks(
    const std::map<std::string, std::set<uint32_t>>& universe,
    const std::map<std::string, vm::CoverageBitmap>& coverage) {
  size_t covered = 0;
  for (const auto& [name, begins] : universe) {
    auto it = coverage.find(name);
    if (it == coverage.end()) continue;
    for (uint32_t begin : begins) {
      if (it->second.Test(begin)) ++covered;
    }
  }
  return covered;
}

/// LibcProfiles plus documentation-derived noise: every profiled function
/// gains an Assumed error code the binary cannot actually return. The
/// profiler-derived codes keep their Analyzed provenance, so the
/// feasible-only gate skips exactly the padding.
std::vector<core::FaultProfile> PaddedProfiles() {
  std::vector<core::FaultProfile> profiles = apps::LibcProfiles();
  for (core::FaultProfile& lib : profiles) {
    for (core::FunctionProfile& fn : lib.functions) {
      if (fn.error_codes.empty()) continue;
      core::ProfileErrorCode assumed;
      assumed.retval = -125;  // no libc function returns this
      assumed.provenance = core::Provenance::Assumed;
      fn.error_codes.push_back(assumed);
    }
  }
  return profiles;
}

struct ArmResult {
  const char* name;
  size_t error_blocks = 0;
  size_t union_offsets = 0;
  size_t crashes = 0;
};

ArmResult RunArm(const char* name, campaign::FitnessKind fitness,
                 bool feasible_only,
                 const std::map<std::string, std::set<uint32_t>>& universe) {
  campaign::ExplorerOptions opts;
  // Fixed equal budget for both arms — identical in smoke and full mode,
  // so the CI bars hold exactly when the local ones do.
  opts.rounds = 4;
  opts.scenarios_per_round = 6;
  opts.seed = 1;
  opts.seed_probability = 0.1;
  opts.minimize_crashes = false;
  opts.fitness = fitness;
  opts.campaign.controller.feasible_only = feasible_only;
  campaign::Explorer explorer(JournalSetup(), PaddedProfiles(), opts);
  campaign::ExplorerReport report = explorer.Explore();

  ArmResult r;
  r.name = name;
  r.error_blocks = CoveredErrorBlocks(universe, report.coverage);
  r.union_offsets = report.union_offsets();
  r.crashes = report.crashes.size();
  return r;
}

int PrintComparison() {
  auto universe = ErrorBlockUniverse(JournalSetup());
  size_t total_error_blocks = 0;
  for (const auto& [name, begins] : universe) {
    total_error_blocks += begins.size();
  }

  ArmResult undirected = RunArm("coverage", campaign::FitnessKind::Coverage,
                                /*feasible_only=*/false, universe);
  ArmResult directed =
      RunArm("cfg-distance+feasible", campaign::FitnessKind::CfgDistance,
             /*feasible_only=*/true, universe);

  std::vector<std::vector<std::string>> rows = {
      {"arm", "error blocks", "of total", "union offsets", "crash buckets"}};
  for (const ArmResult* a : {&undirected, &directed}) {
    char buf[64];
    std::vector<std::string> row;
    row.push_back(a->name);
    std::snprintf(buf, sizeof(buf), "%zu", a->error_blocks);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%zu", total_error_blocks);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%zu", a->union_offsets);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%zu", a->crashes);
    row.push_back(buf);
    rows.push_back(std::move(row));
  }
  bench::PrintTable("directed vs undirected exploration (equal budget)",
                    rows);

  int rc = 0;
  if (directed.error_blocks <= undirected.error_blocks) {
    std::printf("FAIL: directed arm covers %zu error-handling blocks, "
                "undirected covers %zu — direction bought nothing\n",
                directed.error_blocks, undirected.error_blocks);
    rc = 1;
  }
  if (directed.union_offsets < undirected.union_offsets) {
    std::printf("FAIL: directed arm's union coverage (%zu) fell below the "
                "undirected arm's (%zu)\n",
                directed.union_offsets, undirected.union_offsets);
    rc = 1;
  }

  if (const char* path = std::getenv("LFI_BENCH_JSON")) {
    char buf[512];
    std::string json = "{\n";
    for (const ArmResult* a : {&undirected, &directed}) {
      std::snprintf(buf, sizeof(buf),
                    "  \"%s\": {\"error_blocks\": %zu, "
                    "\"error_blocks_total\": %zu, \"union_offsets\": %zu, "
                    "\"crash_buckets\": %zu}%s\n",
                    a->name, a->error_blocks, total_error_blocks,
                    a->union_offsets, a->crashes,
                    a == &undirected ? "," : "");
      json += buf;
    }
    json += "}\n";
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", path);
    } else {
      std::printf("WARNING: cannot write %s\n", path);
    }
  }
  return rc;
}

/// Micro-benchmark for the new per-round cost: rescoring a corpus against
/// the uncovered-error-block distance field (graph BFS + bitmap walks).
void BM_CfgDistanceBeginRound(benchmark::State& state) {
  campaign::CfgDistanceFitness fitness(JournalSetup());
  // A synthetic 16-member corpus with spread-out coverage.
  std::vector<std::map<std::string, vm::CoverageBitmap>> corpus;
  std::map<std::string, vm::CoverageBitmap> unioned;
  for (size_t i = 0; i < 16; ++i) {
    std::map<std::string, vm::CoverageBitmap> member;
    vm::CoverageBitmap bm(1 << 14);
    for (uint32_t off = static_cast<uint32_t>(i); off < bm.size_bits();
         off += 7) {
      bm.Set(off);
    }
    unioned[libc::kLibcName].Merge(bm);
    member[libc::kLibcName] = std::move(bm);
    corpus.push_back(std::move(member));
  }
  for (auto _ : state) {
    fitness.BeginRound(corpus, unioned);
    benchmark::DoNotOptimize(fitness.scores().size());
  }
}
BENCHMARK(BM_CfgDistanceBeginRound);

}  // namespace
}  // namespace lfi

// Not LFI_BENCH_MAIN: the comparison pass returns an exit code (the
// directed-beats-undirected bars are enforced).
int main(int argc, char** argv) {
  int rc = lfi::PrintComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return rc;
}
