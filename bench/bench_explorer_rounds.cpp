// Coverage-guided exploration vs. the paper's open-loop faultloads.
//
// Same total scenario budget, same target (the Pidgin stand-in), two
// strategies:
//   - one-shot: R*B independently-seeded GenerateRandom plans, run once
//     as a single campaign (the paper's §4 random scenario, scaled up);
//   - explorer: R rounds of B scenarios, where each round's population is
//     evolved from the plans that covered new instruction offsets.
// The table prints union coverage per round — the closed loop must end
// strictly above the open loop for the same budget (test-enforced in
// tests/test_explorer.cpp; printed here with crash-bucket counts).
#include "apps/pidgin.hpp"
#include "apps/workloads.hpp"
#include "bench_util.hpp"
#include "campaign/explorer.hpp"
#include "core/scenario_gen.hpp"
#include "util/strings.hpp"

namespace {

using namespace lfi;

campaign::CampaignReport RunOneShot(size_t count, uint64_t seed, double p) {
  std::vector<campaign::Scenario> scenarios;
  const std::vector<core::FaultProfile>& profiles = apps::LibcProfiles();
  for (size_t i = 0; i < count; ++i) {
    campaign::Scenario s;
    s.name = Format("one-shot-%zu", i);
    s.plan = core::GenerateRandom(profiles, p, campaign::DeriveSeed(seed, i));
    scenarios.push_back(std::move(s));
  }
  campaign::CampaignOptions opts;
  opts.jobs = 0;
  opts.entry = apps::kPidginEntry;
  opts.track_coverage = true;
  campaign::CampaignRunner runner(apps::PidginMachineSetup(), profiles, opts);
  return runner.Run(scenarios);
}

campaign::ExplorerReport RunExplorer(size_t rounds, size_t budget,
                                     uint64_t seed, double p) {
  campaign::ExplorerOptions opts;
  opts.rounds = rounds;
  opts.scenarios_per_round = budget;
  opts.seed = seed;
  opts.seed_probability = p;
  opts.campaign.jobs = 0;
  opts.campaign.entry = apps::kPidginEntry;
  opts.minimize_crashes = false;  // coverage comparison only
  campaign::Explorer explorer(apps::PidginMachineSetup(),
                              apps::LibcProfiles(), opts);
  return explorer.Explore();
}

void PrintTables() {
  const size_t kRounds = 3;
  const size_t kBudget = static_cast<size_t>(bench::Scaled(32, 6));
  const uint64_t kSeed = 1;
  const double kP = 0.1;

  campaign::ExplorerReport evolved = RunExplorer(kRounds, kBudget, kSeed, kP);
  campaign::CampaignReport one_shot = RunOneShot(kRounds * kBudget, kSeed, kP);
  size_t one_shot_union = 0;
  for (const auto& [mod, bitmap] : one_shot.coverage) {
    one_shot_union += bitmap.Count();
  }

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Strategy", "Scenarios", "Union offsets", "Crash buckets"});
  for (const campaign::RoundStats& rs : evolved.rounds) {
    rows.push_back({Format("explorer round %zu", rs.round + 1),
                    Format("%zu", (rs.round + 1) * kBudget),
                    Format("%zu (+%zu)", rs.union_offsets, rs.new_offsets),
                    Format("%zu new", rs.new_crash_buckets)});
  }
  rows.push_back({"explorer final",
                  Format("%zu", kRounds * kBudget),
                  Format("%zu", evolved.union_offsets()),
                  Format("%zu", evolved.crashes.size())});
  rows.push_back({"one-shot random", Format("%zu", kRounds * kBudget),
                  Format("%zu", one_shot_union),
                  Format("%zu crashes", one_shot.crashes)});
  bench::PrintTable(
      "coverage-guided exploration vs one-shot random (same budget, "
      "Pidgin target)",
      rows);
  std::printf("closed-loop gain: %+zd offsets (%s)\n",
              static_cast<ssize_t>(evolved.union_offsets()) -
                  static_cast<ssize_t>(one_shot_union),
              evolved.union_offsets() > one_shot_union
                  ? "explorer ahead"
                  : "NO GAIN (regression?)");
}

/// Wall-clock of one full exploration at a small budget (machine reuse,
/// mutation, scoring — everything but minimization).
void BM_ExplorerRounds(benchmark::State& state) {
  const size_t budget = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunExplorer(2, budget, 7, 0.1));
  }
  state.counters["scenarios/s"] = benchmark::Counter(
      static_cast<double>(2 * budget) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExplorerRounds)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

/// The open-loop baseline at the same budget, for the delta.
void BM_OneShotCampaign(benchmark::State& state) {
  const size_t count = static_cast<size_t>(2 * state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOneShot(count, 7, 0.1));
  }
  state.counters["scenarios/s"] = benchmark::Counter(
      static_cast<double>(count) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OneShotCampaign)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

}  // namespace

LFI_BENCH_MAIN(PrintTables)
