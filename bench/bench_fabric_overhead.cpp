// Campaign fabric overhead: what does shipping scenarios to worker
// processes cost (or buy) versus running them in-process?
//
// Table 1 runs the same random campaign in-process (jobs=1) and through
// FabricCoordinator with 1, 2, and 4 forked local workers, asserting the
// report fingerprint is identical in every configuration — the fabric's
// core invariant — and reporting throughput and the remote/local/stolen
// split. A 1-worker fabric isolates pure protocol overhead (encode +
// socket + decode, no parallelism); 2 and 4 workers show the scaling the
// overhead is paid for.
//
// Table 2 reruns a batch through an already-configured fabric: the second
// round skips Configure (module transfer + machine build + snapshot warm),
// which is the amortization `lfi serve` daemons and explorer rounds rely
// on.
//
// The micro-benchmarks time the wire hot path in isolation: plan
// encode/decode and a full frame round trip over a socketpair.
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/workloads.hpp"
#include "bench_util.hpp"
#include "campaign/runner.hpp"
#include "core/scenario_gen.hpp"
#include "isa/codebuilder.hpp"
#include "libc/libc_builder.hpp"
#include "serve/coordinator.hpp"
#include "serve/worker.hpp"
#include "serve/wire.hpp"

namespace lfi {
namespace {

using Clock = std::chrono::steady_clock;
using isa::CodeBuilder;
using isa::Reg;

/// Same victim as the fabric tests: open /cfg, read 64 bytes unchecked,
/// abort on a negative count — small, deterministic, every libc fault
/// reachable.
sso::SharedObject BuildReaderApp() {
  CodeBuilder b;
  uint32_t path = b.emit_data({'/', 'c', 'f', 'g', 0});
  uint32_t buf = b.reserve_data(128);
  b.begin_function("main");
  b.sub_ri(Reg::SP, 16);
  b.mov_ri(Reg::R2, libc::O_RDONLY);
  b.lea_data(Reg::R1, static_cast<int32_t>(path));
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("open");
  b.add_ri(Reg::SP, 16);
  b.store(Reg::BP, -8, Reg::R0);
  b.load(Reg::R1, Reg::BP, -8);
  b.lea_data(Reg::R2, static_cast<int32_t>(buf));
  b.mov_ri(Reg::R3, 64);
  b.push(Reg::R3);
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("read");
  b.add_ri(Reg::SP, 24);
  auto ok = b.new_label();
  b.cmp_ri(Reg::R0, 0);
  b.jge(ok);
  b.call_sym("abort");
  b.bind(ok);
  b.load(Reg::R1, Reg::BP, -8);
  b.push(Reg::R1);
  b.call_sym("close");
  b.add_ri(Reg::SP, 8);
  b.mov_ri(Reg::R0, 0);
  b.leave_ret();
  b.end_function();
  return sso::FromCodeUnit("readerapp.so", b.Finish(), {libc::kLibcName});
}

serve::TargetSpec ReaderSpec() {
  serve::TargetSpec spec;
  spec.modules.push_back(libc::BuildLibc().Serialize());
  spec.modules.push_back(BuildReaderApp().Serialize());
  spec.files.emplace_back("/cfg", std::vector<uint8_t>(64, 'x'));
  return spec;
}

/// The options every configuration runs with: single-threaded per
/// executor (parallelism comes from worker count), full collection so the
/// wire carries complete result payloads.
campaign::CampaignOptions BaseOptions() {
  campaign::CampaignOptions opts;
  opts.jobs = 1;
  opts.track_coverage = true;
  opts.collect_scenario_coverage = true;
  opts.collect_replays = true;
  return opts;
}

std::vector<campaign::Scenario> MakeScenarios(size_t count, double probability,
                                              uint64_t seed) {
  const auto& profiles = apps::LibcProfiles();
  std::vector<campaign::Scenario> scenarios;
  for (size_t i = 0; i < count; ++i) {
    campaign::Scenario s;
    s.name = "scn-" + std::to_string(i);
    s.plan = core::GenerateRandom(profiles, probability,
                                  campaign::DeriveSeed(seed, i));
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

/// Configuration-invariant digest of a report: statuses, instruction and
/// injection counts, coverage popcounts, crash hashes. Any divergence the
/// fabric tests would catch shows up here.
std::string Fingerprint(const campaign::CampaignReport& report) {
  std::string out;
  char buf[128];
  for (const campaign::ScenarioResult& r : report.results) {
    std::snprintf(buf, sizeof(buf), "%d:%lld:%llu:%zu:%zu:%016llx\n",
                  static_cast<int>(r.status), (long long)r.exit_code,
                  (unsigned long long)r.instructions, r.injections,
                  r.covered_offsets, (unsigned long long)r.crash_hash);
    out += buf;
  }
  for (const auto& [module, bitmap] : report.coverage) {
    std::snprintf(buf, sizeof(buf), "%s:%zu\n", module.c_str(),
                  bitmap.Count());
    out += buf;
  }
  return out;
}

struct RunOutcome {
  double seconds = 0;
  std::string fingerprint;
  serve::FabricStats stats;  // zeroed for the in-process baseline
  double scenarios_per_sec(size_t n) const {
    return seconds > 0 ? static_cast<double>(n) / seconds : 0;
  }
};

RunOutcome RunInProcess(const std::vector<campaign::Scenario>& scenarios) {
  auto setup = serve::MakeSetup(ReaderSpec());
  campaign::CampaignRunner runner(std::move(setup).take(),
                                  apps::LibcProfiles(), BaseOptions());
  auto begin = Clock::now();
  campaign::CampaignReport report = runner.Run(scenarios);
  RunOutcome out;
  out.seconds = std::chrono::duration<double>(Clock::now() - begin).count();
  out.fingerprint = Fingerprint(report);
  return out;
}

RunOutcome RunThroughFabric(serve::FabricCoordinator& fabric,
                            const std::vector<campaign::Scenario>& scenarios) {
  auto begin = Clock::now();
  campaign::CampaignReport report = fabric.Run(scenarios);
  RunOutcome out;
  out.seconds = std::chrono::duration<double>(Clock::now() - begin).count();
  out.fingerprint = Fingerprint(report);
  out.stats = fabric.stats();
  return out;
}

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

int PrintTables() {
  const size_t n = static_cast<size_t>(bench::Scaled(192, 16));
  const std::vector<campaign::Scenario> scenarios = MakeScenarios(n, 0.3, 7);
  const std::vector<size_t> worker_counts = {1, 2, 4};

  // Fork every worker before anything in this process runs a campaign:
  // coordinator Runs spawn (and join) dispatch threads, and fork must
  // come first.
  std::vector<std::vector<serve::LocalWorker>> pools;
  for (size_t count : worker_counts) {
    std::vector<serve::LocalWorker> pool;
    for (size_t i = 0; i < count; ++i) {
      auto worker = serve::SpawnLocalWorker();
      if (!worker.ok()) {
        std::fprintf(stderr, "spawn failed: %s\n", worker.error().c_str());
        return 1;
      }
      pool.push_back(std::move(worker).take());
    }
    pools.push_back(std::move(pool));
  }

  const RunOutcome baseline = RunInProcess(scenarios);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"config", "seconds", "scen/s", "speedup", "remote", "local",
                  "stolen", "identical"});
  rows.push_back({"in-process", Fmt("%.3f", baseline.seconds),
                  Fmt("%.1f", baseline.scenarios_per_sec(n)), "1.00x", "-",
                  "-", "-", "-"});

  int rc = 0;
  std::vector<std::unique_ptr<serve::FabricCoordinator>> fabrics;
  for (size_t w = 0; w < worker_counts.size(); ++w) {
    auto fabric = std::make_unique<serve::FabricCoordinator>(
        ReaderSpec(), apps::LibcProfiles(), BaseOptions());
    for (const serve::LocalWorker& worker : pools[w]) {
      Status st = fabric->AddWorkerFd(worker.fd, "bench");
      if (!st.ok()) {
        std::fprintf(stderr, "handshake failed: %s\n", st.error().c_str());
        return 1;
      }
    }
    const RunOutcome run = RunThroughFabric(*fabric, scenarios);
    const bool identical = run.fingerprint == baseline.fingerprint;
    if (!identical) rc = 1;
    rows.push_back(
        {"fabric x" + std::to_string(worker_counts[w]),
         Fmt("%.3f", run.seconds), Fmt("%.1f", run.scenarios_per_sec(n)),
         Fmt("%.2fx", baseline.seconds > 0 && run.seconds > 0
                          ? baseline.seconds / run.seconds
                          : 0),
         std::to_string(run.stats.scenarios_remote),
         std::to_string(run.stats.scenarios_local),
         std::to_string(run.stats.batches_stolen), identical ? "yes" : "NO"});
    fabrics.push_back(std::move(fabric));
  }
  bench::PrintTable(
      "Fabric overhead vs in-process (" + std::to_string(n) + " scenarios)",
      rows);

  // Warm reuse: a second Run over an already-configured fabric pays no
  // Configure (module transfer, machine build, snapshot warm) — the
  // daemon / explorer-round amortization.
  {
    serve::FabricCoordinator& fabric = *fabrics[1];  // the x2 fabric
    const RunOutcome warm = RunThroughFabric(fabric, scenarios);
    if (warm.fingerprint != baseline.fingerprint) rc = 1;
    std::vector<std::vector<std::string>> rows2;
    rows2.push_back({"round", "seconds", "scen/s", "identical"});
    rows2.push_back({"round 2 (warm pool, fabric x2)",
                     Fmt("%.3f", warm.seconds),
                     Fmt("%.1f", warm.scenarios_per_sec(n)),
                     warm.fingerprint == baseline.fingerprint ? "yes" : "NO"});
    bench::PrintTable("Warm worker-pool reuse", rows2);
  }

  fabrics.clear();  // sends Shutdown, closes sockets; children _exit
  for (const auto& pool : pools) {
    for (const serve::LocalWorker& worker : pool) {
      int status = 0;
      waitpid(worker.pid, &status, 0);
    }
  }
  if (rc != 0) {
    std::fprintf(stderr,
                 "FABRIC IDENTITY VIOLATION: distributed fingerprint "
                 "diverged from in-process baseline\n");
  }
  return rc;
}

// -- wire micro-benchmarks ---------------------------------------------------

core::Plan SamplePlan() {
  return core::GenerateRandom(apps::LibcProfiles(), 0.3,
                              campaign::DeriveSeed(7, 0));
}

void BM_WireEncodePlan(benchmark::State& state) {
  const core::Plan plan = SamplePlan();
  for (auto _ : state) {
    std::vector<uint8_t> out;
    serve::EncodePlan(out, plan);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_WireEncodePlan);

void BM_WireDecodePlan(benchmark::State& state) {
  std::vector<uint8_t> buf;
  serve::EncodePlan(buf, SamplePlan());
  for (auto _ : state) {
    serve::Reader r(buf);
    auto plan = serve::DecodePlan(r);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_WireDecodePlan);

void BM_WireFrameRoundTrip(benchmark::State& state) {
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    state.SkipWithError("socketpair failed");
    return;
  }
  std::vector<uint8_t> payload;
  serve::EncodePlan(payload, SamplePlan());
  for (auto _ : state) {
    Status st = serve::WriteFrame(fds[0], serve::MsgType::RunBatch, payload);
    if (!st.ok()) {
      state.SkipWithError("write failed");
      break;
    }
    auto frame = serve::ReadFrame(fds[1]);
    if (!frame.ok()) {
      state.SkipWithError("read failed");
      break;
    }
    benchmark::DoNotOptimize(frame);
  }
  close(fds[0]);
  close(fds[1]);
}
BENCHMARK(BM_WireFrameRoundTrip);

}  // namespace
}  // namespace lfi

// Not LFI_BENCH_MAIN: the table pass returns an exit code (the fabric
// identity check is a hard assertion, not just a printed column).
int main(int argc, char** argv) {
  int rc = lfi::PrintTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return rc;
}
