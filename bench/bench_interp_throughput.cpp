// Interpreter throughput: superblock vs predecoded vs reference engines.
//
// Two workloads, each executed per engine on otherwise-identical machines.
// At full size each engine leg is the best (minimum) wall time of three
// repeats, interleaved round-robin across engines — preemption on shared
// hosts only ever adds time, so the min is the robust throughput estimate,
// and interleaving keeps a noise burst from landing entirely on one
// engine's repeats. Repeats must agree on the instruction count exactly.
//   - spin-loop: a synthetic opcode mix (arith, LOAD/STORE to module data,
//     PUSH/POP, CALL/RET, conditional branch) that isolates raw
//     fetch/decode/dispatch cost;
//   - oltp: the Table-4 MySQL/SysBench stand-in, a realistic campaign
//     workload (syscalls, libc, kernel handlers included).
//
// Prints instructions/sec and ns/instr per engine plus speedups; when
// LFI_BENCH_JSON names a file, writes the same numbers as JSON (one entry
// per engine, each with a speedup_vs_reference field) so CI can archive
// the perf trajectory across PRs (BENCH_interp.json artifact).
//
// Two regression bars, enforced (non-zero exit) at full size:
//   - predecoded >= 2x reference on spin-loop (decode-once win);
//   - superblock >= 2x predecoded on oltp (span-fusion win on the
//     realistic mix, the PR-6 acceptance bar).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/dbserver.hpp"
#include "bench_util.hpp"
#include "isa/codebuilder.hpp"
#include "libc/libc_builder.hpp"
#include "sso/sso.hpp"
#include "vm/machine.hpp"

namespace lfi {
namespace {

using isa::CodeBuilder;
using isa::Reg;
using Clock = std::chrono::steady_clock;

struct EngineRun {
  uint64_t instructions = 0;
  double seconds = 0;
  double instr_per_sec() const {
    return seconds > 0 ? static_cast<double>(instructions) / seconds : 0;
  }
  double ns_per_instr() const {
    return instructions > 0 ? seconds * 1e9 / static_cast<double>(instructions)
                            : 0;
  }
};

double Speedup(const EngineRun& fast, const EngineRun& base) {
  return base.instr_per_sec() > 0 ? fast.instr_per_sec() / base.instr_per_sec()
                                  : 0;
}

/// The synthetic opcode-mix program: `iters` loop bodies + a bare callee.
sso::SharedObject BuildSpinLoop(int64_t iters) {
  CodeBuilder b;
  b.begin_function("main");
  uint32_t scratch = b.reserve_data(8);
  auto loop = b.new_label();
  auto helper = b.new_label();
  b.mov_ri(Reg::R1, iters);
  b.lea_data(Reg::R2, static_cast<int32_t>(scratch));
  b.mov_ri(Reg::R3, 0);
  b.bind(loop);
  b.load(Reg::R4, Reg::R2, 0);
  b.add_rr(Reg::R4, Reg::R3);
  b.xor_ri(Reg::R4, 0x5a);
  b.store(Reg::R2, 0, Reg::R4);
  b.push(Reg::R4);
  b.pop(Reg::R5);
  b.add_rr(Reg::R3, Reg::R5);
  b.mul_ri(Reg::R3, 3);
  b.and_ri(Reg::R3, 0xffff);
  b.call(helper);
  b.sub_ri(Reg::R1, 1);
  b.cmp_ri(Reg::R1, 0);
  b.jgt(loop);
  b.mov_rr(Reg::R0, Reg::R3);
  b.leave_ret();
  b.end_function();
  b.bind(helper);  // bare callee: CALL/RET round trip only
  b.ret();
  return sso::FromCodeUnit("spin.so", b.Finish());
}

EngineRun RunSpin(vm::ExecMode mode, int64_t iters) {
  vm::Machine machine;
  machine.SetExecMode(mode);
  machine.Load(BuildSpinLoop(iters));
  auto pid = machine.CreateProcess("main");
  EngineRun run;
  if (!pid.ok()) return run;
  auto begin = Clock::now();
  machine.RunToCompletion(pid.value(), 2'000'000'000);
  run.seconds = std::chrono::duration<double>(Clock::now() - begin).count();
  run.instructions = machine.total_instructions();
  return run;
}

EngineRun RunOltp(vm::ExecMode mode, int transactions) {
  vm::Machine machine;
  machine.SetExecMode(mode);
  machine.Load(libc::BuildLibc());
  apps::DbConfig config;
  config.transactions = transactions;
  for (sso::SharedObject& so : apps::BuildDbServer(config)) {
    machine.Load(std::move(so));
  }
  machine.kernel().add_file(apps::kDbDataPath,
                            std::vector<uint8_t>(4096, uint8_t{0}));
  machine.kernel().add_file(apps::kDbLogPath, {});
  auto pid = machine.CreateProcess(apps::kDbEntry);
  EngineRun run;
  if (!pid.ok()) return run;
  auto begin = Clock::now();
  machine.RunToCompletion(pid.value(), 2'000'000'000);
  run.seconds = std::chrono::duration<double>(Clock::now() - begin).count();
  run.instructions = machine.total_instructions();
  return run;
}

/// Fold one more repeat into the per-engine best (minimum time). Every
/// repeat re-executes the whole deterministic workload, so the instruction
/// counts must match exactly — a mismatch means the engine lost
/// determinism, and the bench aborts rather than publish numbers for a
/// broken engine.
void Merge(EngineRun* best, const EngineRun& next) {
  if (best->instructions == 0) {
    *best = next;
    return;
  }
  if (next.instructions != best->instructions) {
    std::fprintf(stderr,
                 "FATAL: instruction count drifted across repeats "
                 "(%llu vs %llu)\n",
                 (unsigned long long)best->instructions,
                 (unsigned long long)next.instructions);
    std::abort();
  }
  if (next.seconds < best->seconds) *best = next;
}

/// All three engine runs of one workload, reference last (the baseline).
struct WorkloadRuns {
  EngineRun superblock;
  EngineRun predecoded;
  EngineRun reference;
};

void AppendEngineJson(std::string* out, const char* engine,
                      const EngineRun& run, const EngineRun& ref) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "    \"%s\": {\"instructions\": %llu, \"seconds\": %.6f, "
                "\"instr_per_sec\": %.0f, \"ns_per_instr\": %.3f, "
                "\"speedup_vs_reference\": %.2f}",
                engine, (unsigned long long)run.instructions, run.seconds,
                run.instr_per_sec(), run.ns_per_instr(), Speedup(run, ref));
  *out += buf;
}

void AppendJson(std::string* out, const char* name, const WorkloadRuns& w) {
  *out += "  \"" + std::string(name) + "\": {\n";
  AppendEngineJson(out, "superblock", w.superblock, w.reference);
  *out += ",\n";
  AppendEngineJson(out, "predecoded", w.predecoded, w.reference);
  *out += ",\n";
  AppendEngineJson(out, "reference", w.reference, w.reference);
  *out += ",\n";
  char buf[128];
  // Kept from the two-engine era so archived trajectories stay comparable.
  std::snprintf(buf, sizeof(buf), "    \"speedup\": %.2f\n  }",
                Speedup(w.predecoded, w.reference));
  *out += buf;
}

int PrintThroughput() {
  const int64_t spin_iters = bench::Scaled(2'000'000, 20'000);
  // Full-size OLTP is sized so even the fastest engine runs for tens of
  // milliseconds per repeat — at 2k transactions the superblock leg
  // finished in ~6ms, where a single scheduler tick is a double-digit
  // percentage error on shared hosts.
  const int oltp_txns = bench::Scaled(20'000, 50);
  // Smoke runs are about wiring, not timing stability; skip the repeats.
  const int repeats = bench::Scaled(3, 1);

  // Untimed warmup: first-touch page faults and one-time image builds
  // otherwise land on whichever engine happens to run first.
  RunSpin(vm::ExecMode::Superblock, 1'000);
  RunOltp(vm::ExecMode::Superblock, 10);

  // Repeats are interleaved round-robin across engines (not N of one
  // engine back-to-back) so a noisy period on a shared host degrades
  // every engine's affected repeat, not whichever engine happened to be
  // running — the speedup *ratios* are what the bars check.
  WorkloadRuns spin;
  WorkloadRuns oltp;
  for (int rep = 0; rep < repeats; ++rep) {
    Merge(&spin.superblock, RunSpin(vm::ExecMode::Superblock, spin_iters));
    Merge(&spin.predecoded, RunSpin(vm::ExecMode::Predecoded, spin_iters));
    Merge(&spin.reference, RunSpin(vm::ExecMode::Reference, spin_iters));
    Merge(&oltp.superblock, RunOltp(vm::ExecMode::Superblock, oltp_txns));
    Merge(&oltp.predecoded, RunOltp(vm::ExecMode::Predecoded, oltp_txns));
    Merge(&oltp.reference, RunOltp(vm::ExecMode::Reference, oltp_txns));
  }

  auto fmt = [](const char* workload, const char* engine, const EngineRun& r,
                const EngineRun& ref) {
    std::vector<std::string> row;
    char buf[64];
    row.push_back(workload);
    row.push_back(engine);
    std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)r.instructions);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", r.seconds);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", r.instr_per_sec() / 1e6);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", r.ns_per_instr());
    row.push_back(buf);
    double speedup = Speedup(r, ref);
    if (&r != &ref && speedup > 0) {
      std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
      row.push_back(buf);
    } else {
      row.push_back("1.00x (baseline)");
    }
    return row;
  };

  bench::PrintTable(
      "Interpreter throughput: superblock vs predecoded vs reference",
      {{"workload", "engine", "instructions", "seconds", "Minstr/s",
        "ns/instr", "vs reference"},
       fmt("spin-loop", "reference", spin.reference, spin.reference),
       fmt("spin-loop", "predecoded", spin.predecoded, spin.reference),
       fmt("spin-loop", "superblock", spin.superblock, spin.reference),
       fmt("oltp", "reference", oltp.reference, oltp.reference),
       fmt("oltp", "predecoded", oltp.predecoded, oltp.reference),
       fmt("oltp", "superblock", oltp.superblock, oltp.reference)});
  // The bars are enforced (non-zero exit) at full size; smoke workloads
  // are too small for stable timing, so there they only warn. Ratios are
  // robust to absolute machine speed, so this is safe on shared CI.
  int rc = 0;
  double spin_pre = Speedup(spin.predecoded, spin.reference);
  if (spin_pre < 2.0) {
    std::printf("%s: spin-loop predecoded speedup %.2fx below the 2x bar\n",
                bench::SmokeMode() ? "WARNING" : "FAIL", spin_pre);
    if (!bench::SmokeMode()) rc = 1;
  }
  double oltp_sb = Speedup(oltp.superblock, oltp.predecoded);
  if (oltp_sb < 2.0) {
    std::printf(
        "%s: oltp superblock-vs-predecoded speedup %.2fx below the 2x bar\n",
        bench::SmokeMode() ? "WARNING" : "FAIL", oltp_sb);
    if (!bench::SmokeMode()) rc = 1;
  }

  if (const char* path = std::getenv("LFI_BENCH_JSON")) {
    std::string json = "{\n";
    AppendJson(&json, "spin_loop", spin);
    json += ",\n";
    AppendJson(&json, "oltp", oltp);
    json += "\n}\n";
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", path);
    } else {
      std::printf("WARNING: cannot write %s\n", path);
    }
  }
  return rc;
}

/// Micro-benchmark: one spin-loop execution per iteration (per engine).
void BM_Interp(benchmark::State& state, vm::ExecMode mode) {
  const int64_t iters = 10'000;
  for (auto _ : state) {
    EngineRun run = RunSpin(mode, iters);
    benchmark::DoNotOptimize(run.instructions);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(run.instructions));
  }
}

void BM_InterpSuperblock(benchmark::State& state) {
  BM_Interp(state, vm::ExecMode::Superblock);
}
void BM_InterpPredecoded(benchmark::State& state) {
  BM_Interp(state, vm::ExecMode::Predecoded);
}
void BM_InterpReference(benchmark::State& state) {
  BM_Interp(state, vm::ExecMode::Reference);
}
BENCHMARK(BM_InterpSuperblock);
BENCHMARK(BM_InterpPredecoded);
BENCHMARK(BM_InterpReference);

}  // namespace
}  // namespace lfi

// Not LFI_BENCH_MAIN: the table pass returns an exit code (the 2x bars).
int main(int argc, char** argv) {
  int rc = lfi::PrintThroughput();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return rc;
}
