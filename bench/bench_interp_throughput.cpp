// Interpreter throughput: predecoded engine vs reference decode-per-step.
//
// Two workloads, each executed once per engine on otherwise-identical
// machines:
//   - spin-loop: a synthetic opcode mix (arith, LOAD/STORE to module data,
//     PUSH/POP, CALL/RET, conditional branch) that isolates raw
//     fetch/decode/dispatch cost;
//   - oltp: the Table-4 MySQL/SysBench stand-in, a realistic campaign
//     workload (syscalls, libc, kernel handlers included).
//
// Prints instructions/sec and ns/instr per engine plus the speedup; when
// LFI_BENCH_JSON names a file, writes the same numbers as JSON so CI can
// archive the perf trajectory across PRs (BENCH_interp.json artifact).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/dbserver.hpp"
#include "bench_util.hpp"
#include "isa/codebuilder.hpp"
#include "libc/libc_builder.hpp"
#include "sso/sso.hpp"
#include "vm/machine.hpp"

namespace lfi {
namespace {

using isa::CodeBuilder;
using isa::Reg;
using Clock = std::chrono::steady_clock;

struct EngineRun {
  uint64_t instructions = 0;
  double seconds = 0;
  double instr_per_sec() const {
    return seconds > 0 ? static_cast<double>(instructions) / seconds : 0;
  }
  double ns_per_instr() const {
    return instructions > 0 ? seconds * 1e9 / static_cast<double>(instructions)
                            : 0;
  }
};

/// The synthetic opcode-mix program: `iters` loop bodies + a bare callee.
sso::SharedObject BuildSpinLoop(int64_t iters) {
  CodeBuilder b;
  b.begin_function("main");
  uint32_t scratch = b.reserve_data(8);
  auto loop = b.new_label();
  auto helper = b.new_label();
  b.mov_ri(Reg::R1, iters);
  b.lea_data(Reg::R2, static_cast<int32_t>(scratch));
  b.mov_ri(Reg::R3, 0);
  b.bind(loop);
  b.load(Reg::R4, Reg::R2, 0);
  b.add_rr(Reg::R4, Reg::R3);
  b.xor_ri(Reg::R4, 0x5a);
  b.store(Reg::R2, 0, Reg::R4);
  b.push(Reg::R4);
  b.pop(Reg::R5);
  b.add_rr(Reg::R3, Reg::R5);
  b.mul_ri(Reg::R3, 3);
  b.and_ri(Reg::R3, 0xffff);
  b.call(helper);
  b.sub_ri(Reg::R1, 1);
  b.cmp_ri(Reg::R1, 0);
  b.jgt(loop);
  b.mov_rr(Reg::R0, Reg::R3);
  b.leave_ret();
  b.end_function();
  b.bind(helper);  // bare callee: CALL/RET round trip only
  b.ret();
  return sso::FromCodeUnit("spin.so", b.Finish());
}

EngineRun RunSpin(vm::ExecMode mode, int64_t iters) {
  vm::Machine machine;
  machine.SetExecMode(mode);
  machine.Load(BuildSpinLoop(iters));
  auto pid = machine.CreateProcess("main");
  EngineRun run;
  if (!pid.ok()) return run;
  auto begin = Clock::now();
  machine.RunToCompletion(pid.value(), 2'000'000'000);
  run.seconds = std::chrono::duration<double>(Clock::now() - begin).count();
  run.instructions = machine.total_instructions();
  return run;
}

EngineRun RunOltp(vm::ExecMode mode, int transactions) {
  vm::Machine machine;
  machine.SetExecMode(mode);
  machine.Load(libc::BuildLibc());
  apps::DbConfig config;
  config.transactions = transactions;
  for (sso::SharedObject& so : apps::BuildDbServer(config)) {
    machine.Load(std::move(so));
  }
  machine.kernel().add_file(apps::kDbDataPath,
                            std::vector<uint8_t>(4096, uint8_t{0}));
  machine.kernel().add_file(apps::kDbLogPath, {});
  auto pid = machine.CreateProcess(apps::kDbEntry);
  EngineRun run;
  if (!pid.ok()) return run;
  auto begin = Clock::now();
  machine.RunToCompletion(pid.value(), 2'000'000'000);
  run.seconds = std::chrono::duration<double>(Clock::now() - begin).count();
  run.instructions = machine.total_instructions();
  return run;
}

void AppendJson(std::string* out, const char* name, const EngineRun& pre,
                const EngineRun& ref) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"%s\": {\n"
      "    \"predecoded\": {\"instructions\": %llu, \"seconds\": %.6f, "
      "\"instr_per_sec\": %.0f, \"ns_per_instr\": %.3f},\n"
      "    \"reference\": {\"instructions\": %llu, \"seconds\": %.6f, "
      "\"instr_per_sec\": %.0f, \"ns_per_instr\": %.3f},\n"
      "    \"speedup\": %.2f\n"
      "  }",
      name, (unsigned long long)pre.instructions, pre.seconds,
      pre.instr_per_sec(), pre.ns_per_instr(),
      (unsigned long long)ref.instructions, ref.seconds, ref.instr_per_sec(),
      ref.ns_per_instr(),
      ref.instr_per_sec() > 0 ? pre.instr_per_sec() / ref.instr_per_sec() : 0);
  *out += buf;
}

int PrintThroughput() {
  const int64_t spin_iters = bench::Scaled(2'000'000, 20'000);
  const int oltp_txns = bench::Scaled(2'000, 50);

  // Untimed warmup: first-touch page faults and one-time image builds
  // otherwise land on whichever engine happens to run first.
  RunSpin(vm::ExecMode::Predecoded, 1'000);
  RunOltp(vm::ExecMode::Predecoded, 10);

  EngineRun spin_pre = RunSpin(vm::ExecMode::Predecoded, spin_iters);
  EngineRun spin_ref = RunSpin(vm::ExecMode::Reference, spin_iters);
  EngineRun oltp_pre = RunOltp(vm::ExecMode::Predecoded, oltp_txns);
  EngineRun oltp_ref = RunOltp(vm::ExecMode::Reference, oltp_txns);

  auto fmt = [](const char* workload, const char* engine, const EngineRun& r,
                double speedup) {
    std::vector<std::string> row;
    char buf[64];
    row.push_back(workload);
    row.push_back(engine);
    std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)r.instructions);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", r.seconds);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", r.instr_per_sec() / 1e6);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", r.ns_per_instr());
    row.push_back(buf);
    if (speedup > 0) {
      std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
      row.push_back(buf);
    } else {
      row.push_back("1.00x (baseline)");
    }
    return row;
  };

  double spin_speedup = spin_ref.instr_per_sec() > 0
                            ? spin_pre.instr_per_sec() / spin_ref.instr_per_sec()
                            : 0;
  double oltp_speedup = oltp_ref.instr_per_sec() > 0
                            ? oltp_pre.instr_per_sec() / oltp_ref.instr_per_sec()
                            : 0;
  bench::PrintTable(
      "Interpreter throughput: predecoded vs reference decode-per-step",
      {{"workload", "engine", "instructions", "seconds", "Minstr/s",
        "ns/instr", "speedup"},
       fmt("spin-loop", "reference", spin_ref, 0),
       fmt("spin-loop", "predecoded", spin_pre, spin_speedup),
       fmt("oltp", "reference", oltp_ref, 0),
       fmt("oltp", "predecoded", oltp_pre, oltp_speedup)});
  // The 2x bar is enforced (non-zero exit) at full size; smoke workloads
  // are too small for stable timing, so there it only warns. Ratios are
  // robust to absolute machine speed, so this is safe on shared CI.
  int rc = 0;
  if (spin_speedup < 2.0) {
    std::printf("%s: spin-loop speedup %.2fx below the 2x regression bar\n",
                bench::SmokeMode() ? "WARNING" : "FAIL", spin_speedup);
    if (!bench::SmokeMode()) rc = 1;
  }

  if (const char* path = std::getenv("LFI_BENCH_JSON")) {
    std::string json = "{\n";
    AppendJson(&json, "spin_loop", spin_pre, spin_ref);
    json += ",\n";
    AppendJson(&json, "oltp", oltp_pre, oltp_ref);
    json += "\n}\n";
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", path);
    } else {
      std::printf("WARNING: cannot write %s\n", path);
    }
  }
  return rc;
}

/// Micro-benchmark: one spin-loop execution per iteration (per engine).
void BM_Interp(benchmark::State& state, vm::ExecMode mode) {
  const int64_t iters = 10'000;
  for (auto _ : state) {
    EngineRun run = RunSpin(mode, iters);
    benchmark::DoNotOptimize(run.instructions);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(run.instructions));
  }
}

void BM_InterpPredecoded(benchmark::State& state) {
  BM_Interp(state, vm::ExecMode::Predecoded);
}
void BM_InterpReference(benchmark::State& state) {
  BM_Interp(state, vm::ExecMode::Reference);
}
BENCHMARK(BM_InterpPredecoded);
BENCHMARK(BM_InterpReference);

}  // namespace
}  // namespace lfi

// Not LFI_BENCH_MAIN: the table pass returns an exit code (the 2x bar).
int main(int argc, char** argv) {
  int rc = lfi::PrintThroughput();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return rc;
}
