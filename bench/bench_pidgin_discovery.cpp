// §6.1 "Ease of Use" — the Pidgin case study: a random fault-injection
// scenario on I/O functions with 10% probability crashed the IM client
// with SIGABRT (the DNS-resolver partial-write bug, ticket 8672), and the
// generated replay script reproduced the crash for debugging.
//
// This bench sweeps seeds, reports the discovery rate, and verifies that
// every crashing run's replay script reproduces the SIGABRT.
#include "apps/workloads.hpp"
#include "bench_util.hpp"
#include "util/strings.hpp"

namespace {

using namespace lfi;

void PrintTables() {
  constexpr uint64_t kSeeds = 60;
  size_t crashes = 0, clean = 0, early_exit = 0, replays_ok = 0;
  uint64_t first_crash_seed = 0;
  size_t injections_at_first_crash = 0;

  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    apps::PidginRunResult r = apps::RunPidginRandomIo(0.10, seed);
    if (r.aborted) {
      ++crashes;
      if (first_crash_seed == 0) {
        first_crash_seed = seed;
        injections_at_first_crash = r.injections;
      }
      apps::PidginRunResult replay = apps::RunPidginWithPlan(r.replay);
      replays_ok += replay.aborted;
    } else if (r.exit_code == 0) {
      ++clean;
    } else {
      ++early_exit;  // injection made the client bail out gracefully
    }
  }

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Outcome", "Runs", "Fraction"});
  auto frac = [&](size_t n) {
    return Format("%.0f%%", 100.0 * static_cast<double>(n) / kSeeds);
  };
  rows.push_back({"SIGABRT (the resolver framing bug)",
                  Format("%zu", crashes), frac(crashes)});
  rows.push_back({"clean run", Format("%zu", clean), frac(clean)});
  rows.push_back({"graceful early exit", Format("%zu", early_exit),
                  frac(early_exit)});
  bench::PrintTable(
      Format("§6.1: Pidgin under random I/O injection, p=0.10, %llu seeds",
             (unsigned long long)kSeeds),
      rows);
  std::printf(
      "\nfirst crashing seed: %llu (after %zu injections); replay scripts "
      "reproduced %zu/%zu crashes (paper: crash found \"shortly after "
      "login\", replay reproduced it under gdb)\n",
      (unsigned long long)first_crash_seed, injections_at_first_crash,
      replays_ok, crashes);
}

void BM_PidginCleanRun(benchmark::State& state) {
  for (auto _ : state) {
    core::Plan empty;
    benchmark::DoNotOptimize(apps::RunPidginWithPlan(empty));
  }
}
BENCHMARK(BM_PidginCleanRun)->Unit(benchmark::kMillisecond);

void BM_PidginInjectedRun(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::RunPidginRandomIo(0.10, 11));
  }
}
BENCHMARK(BM_PidginInjectedRun)->Unit(benchmark::kMillisecond);

}  // namespace

LFI_BENCH_MAIN(PrintTables)
