// §6.2 Efficiency — "profiling time ranging from 0.2 seconds for a small
// library (libdmx, 18 exported functions, 8 KB) to 20 seconds for a large
// library (libxml2, 1612 functions, 897 KB)"; time is driven by code size,
// and propagation chains stay short (<= 3 hops).
//
// Also prints a Figure-2-style CFG listing for one exported function.
#include <chrono>

#include "analysis/cfg.hpp"
#include "bench_util.hpp"
#include "core/profiler.hpp"
#include "corpus/table2_corpus.hpp"
#include "kernel/kernel_image.hpp"
#include "libc/libc_builder.hpp"
#include "util/strings.hpp"

namespace {

using namespace lfi;

corpus::GeneratedLibrary SizedLibrary(size_t functions, uint64_t seed) {
  corpus::Table2Entry entry;
  entry.library = Format("lib%zu", functions);
  entry.platform = "Linux";
  entry.function_count = functions;
  entry.paper_tp = functions * 2;
  entry.paper_fn = functions / 10;
  entry.paper_fp = functions / 20;
  return corpus::GenerateTable2Library(entry, seed);
}

void PrintTables() {
  static const sso::SharedObject kernel = kernel::BuildKernelImage();

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Library", "Functions", "Code size", "Profiling time",
                  "G' states", "max hops"});
  for (size_t functions : {18u, 64u, 256u, 512u, 1024u, 1612u}) {
    corpus::GeneratedLibrary lib = SizedLibrary(functions, 5);
    analysis::Workspace ws;
    ws.SetKernel(&kernel);
    ws.AddModule(&lib.object);
    core::Profiler profiler(ws);
    auto begin = std::chrono::steady_clock::now();
    auto profile = profiler.ProfileLibrary(lib.object);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - begin)
                    .count();
    if (!profile.ok()) continue;
    rows.push_back({lib.object.name, Format("%zu", functions),
                    Format("%zu KB", lib.object.code.size() / 1024),
                    Format("%.2f ms", ms),
                    Format("%llu", (unsigned long long)
                               profiler.stats().states_explored),
                    Format("%d", profiler.stats().max_hops)});
  }
  bench::PrintTable(
      "§6.2: profiling time vs library size "
      "(paper: 0.2 s at 18 fns ... 20 s at 1612 fns; shape: ~linear)",
      rows);

  // Propagation-hop claim on the real libc.
  {
    static const sso::SharedObject libc_so = libc::BuildLibc();
    analysis::Workspace ws;
    ws.SetKernel(&kernel);
    ws.AddModule(&libc_so);
    core::Profiler profiler(ws);
    (void)profiler.ProfileLibrary(libc_so);
    std::printf(
        "\nlibc max propagation hops: %d (paper: direct chains always <= 3; "
        "dependent calls add one level each)\n",
        profiler.stats().max_hops);
  }

  // Figure 2: a CFG listing of an exported function.
  {
    static const sso::SharedObject libc_so = libc::BuildLibc();
    auto cfg = analysis::BuildCfg(libc_so, *libc_so.find_export("close"));
    if (cfg.ok()) {
      std::printf("\n--- Figure 2 analogue: CFG of libc close() ---\n%s\n",
                  cfg.value().ToString().c_str());
    }
  }
}

void BM_ProfileByLibrarySize(benchmark::State& state) {
  static const sso::SharedObject kernel = kernel::BuildKernelImage();
  corpus::GeneratedLibrary lib =
      SizedLibrary(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    analysis::Workspace ws;
    ws.SetKernel(&kernel);
    ws.AddModule(&lib.object);
    core::Profiler profiler(ws);
    benchmark::DoNotOptimize(profiler.ProfileLibrary(lib.object));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ProfileByLibrarySize)
    ->Arg(18)
    ->Arg(128)
    ->Arg(512)
    ->Arg(1612)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

}  // namespace

LFI_BENCH_MAIN(PrintTables)
