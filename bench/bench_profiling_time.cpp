// §6.2 Efficiency — "profiling time ranging from 0.2 seconds for a small
// library (libdmx, 18 exported functions, 8 KB) to 20 seconds for a large
// library (libxml2, 1612 functions, 897 KB)"; time is driven by code size,
// and propagation chains stay short (<= 3 hops).
//
// Also prints a Figure-2-style CFG listing for one exported function.
#include <chrono>

#include "analysis/cfg.hpp"
#include "bench_util.hpp"
#include "campaign/campaign.hpp"
#include "core/profiler.hpp"
#include "corpus/table2_corpus.hpp"
#include "kernel/kernel_image.hpp"
#include "libc/libc_builder.hpp"
#include "util/strings.hpp"

namespace {

using namespace lfi;

corpus::GeneratedLibrary SizedLibrary(size_t functions, uint64_t seed) {
  corpus::Table2Entry entry;
  entry.library = Format("lib%zu", functions);
  entry.platform = "Linux";
  entry.function_count = functions;
  entry.paper_tp = functions * 2;
  entry.paper_fn = functions / 10;
  entry.paper_fp = functions / 20;
  return corpus::GenerateTable2Library(entry, seed);
}

void PrintTables() {
  static const sso::SharedObject kernel = kernel::BuildKernelImage();

  // Per-library times are measured serially (jobs=1) so each number is
  // uncontended and comparable to the paper's; the parallel whole-ladder
  // comparison below and BM_ProfileLadderJobs cover the fan-out.
  const std::vector<size_t> sizes = {18u, 64u, 256u, 512u, 1024u, 1612u};
  std::vector<std::vector<std::string>> ladder(sizes.size());
  campaign::ParallelFor(sizes.size(), /*jobs=*/1, [&](size_t i) {
    size_t functions = sizes[i];
    corpus::GeneratedLibrary lib = SizedLibrary(functions, 5);
    analysis::Workspace ws;
    ws.SetKernel(&kernel);
    ws.AddModule(&lib.object);
    core::Profiler profiler(ws);
    auto begin = std::chrono::steady_clock::now();
    auto profile = profiler.ProfileLibrary(lib.object);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - begin)
                    .count();
    if (!profile.ok()) return;
    ladder[i] = {lib.object.name, Format("%zu", functions),
                 Format("%zu KB", lib.object.code.size() / 1024),
                 Format("%.2f ms", ms),
                 Format("%llu", (unsigned long long)
                            profiler.stats().states_explored),
                 Format("%d", profiler.stats().max_hops)};
  });
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Library", "Functions", "Code size", "Profiling time",
                  "G' states", "max hops"});
  for (std::vector<std::string>& row : ladder) {
    if (!row.empty()) rows.push_back(std::move(row));
  }
  bench::PrintTable(
      "§6.2: profiling time vs library size "
      "(paper: 0.2 s at 18 fns ... 20 s at 1612 fns; shape: ~linear)",
      rows);

  // Whole-ladder wall clock, serial vs all-cores: profiling is per-library
  // static analysis, embarrassingly parallel via the campaign fan-out.
  {
    auto profile_ladder = [&](int jobs) {
      auto begin = std::chrono::steady_clock::now();
      campaign::ParallelFor(sizes.size(), jobs, [&](size_t i) {
        corpus::GeneratedLibrary lib = SizedLibrary(sizes[i], 5);
        analysis::Workspace ws;
        ws.SetKernel(&kernel);
        ws.AddModule(&lib.object);
        core::Profiler profiler(ws);
        (void)profiler.ProfileLibrary(lib.object);
      });
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - begin)
          .count();
    };
    double serial_ms = profile_ladder(1);
    double parallel_ms = profile_ladder(0);
    std::printf(
        "\nwhole ladder: %.2f ms serial, %.2f ms on all cores "
        "(%.2fx; bounded by physical cores)\n",
        serial_ms, parallel_ms,
        parallel_ms > 0 ? serial_ms / parallel_ms : 0.0);
  }

  // Propagation-hop claim on the real libc.
  {
    static const sso::SharedObject libc_so = libc::BuildLibc();
    analysis::Workspace ws;
    ws.SetKernel(&kernel);
    ws.AddModule(&libc_so);
    core::Profiler profiler(ws);
    (void)profiler.ProfileLibrary(libc_so);
    std::printf(
        "\nlibc max propagation hops: %d (paper: direct chains always <= 3; "
        "dependent calls add one level each)\n",
        profiler.stats().max_hops);
  }

  // Figure 2: a CFG listing of an exported function.
  {
    static const sso::SharedObject libc_so = libc::BuildLibc();
    auto cfg = analysis::BuildCfg(libc_so, *libc_so.find_export("close"));
    if (cfg.ok()) {
      std::printf("\n--- Figure 2 analogue: CFG of libc close() ---\n%s\n",
                  cfg.value().ToString().c_str());
    }
  }
}

void BM_ProfileByLibrarySize(benchmark::State& state) {
  static const sso::SharedObject kernel = kernel::BuildKernelImage();
  corpus::GeneratedLibrary lib =
      SizedLibrary(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    analysis::Workspace ws;
    ws.SetKernel(&kernel);
    ws.AddModule(&lib.object);
    core::Profiler profiler(ws);
    benchmark::DoNotOptimize(profiler.ProfileLibrary(lib.object));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ProfileByLibrarySize)
    ->Arg(18)
    ->Arg(128)
    ->Arg(512)
    ->Arg(1612)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

/// The whole ladder profiled with N workers via the campaign fan-out.
void BM_ProfileLadderJobs(benchmark::State& state) {
  static const sso::SharedObject kernel = kernel::BuildKernelImage();
  static const std::vector<corpus::GeneratedLibrary> libs = [] {
    std::vector<corpus::GeneratedLibrary> out;
    for (size_t functions : {18u, 64u, 256u, 512u, 1024u, 1612u}) {
      out.push_back(SizedLibrary(functions, 5));
    }
    return out;
  }();
  for (auto _ : state) {
    campaign::ParallelFor(libs.size(), static_cast<int>(state.range(0)),
                          [&](size_t i) {
                            analysis::Workspace ws;
                            ws.SetKernel(&kernel);
                            ws.AddModule(&libs[i].object);
                            core::Profiler profiler(ws);
                            benchmark::DoNotOptimize(
                                profiler.ProfileLibrary(libs[i].object));
                          });
  }
}
BENCHMARK(BM_ProfileLadderJobs)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

LFI_BENCH_MAIN(PrintTables)
