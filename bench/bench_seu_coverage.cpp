// SEU fault-tolerance coverage: what the SIHFT hardening transforms buy.
//
// The same deterministic flip space (registers + module data, seeded
// sampling over the whole execution) is thrown at the four variants of
// the SEU evaluation guest (apps/seu_guest.hpp):
//
//   none   the bare kernel: live-value flips surface as silent data
//          corruption (SDC) — the row every hardened variant is judged
//          against.
//   dwc    duplicate-with-compare: live computation flips diverge the
//          shadow copies and are *detected* at the next compare.
//   cfcss  control-flow signatures: flips in the signature word (and
//          corrupted transfers) are *detected* at the next join check.
//   tmr    triple redundancy: single-copy flips are outvoted — *masked*,
//          the strongest outcome.
//
// Enforced bars (deterministic classification, so they hold at smoke and
// full size alike):
//   - dwc detects at least one flip, detects strictly more than none,
//     protects (masks + detects) strictly more, and ends with strictly
//     fewer SDC outcomes;
//   - cfcss detects at least one flip. Its SDC row is NOT required to
//     shrink: CFCSS covers control-flow corruption (the signature word,
//     broken transfers), not data values — the literature pairs it with
//     EDDI-style duplication for those, and this table shows why;
//   - tmr masks strictly more flips than none, protects strictly more,
//     and ends with strictly fewer SDC outcomes.
//
// LFI_BENCH_JSON (BENCH_seu.json) records the full outcome counts and
// rates per variant so the trajectory of "how much does hardening help"
// is part of the bench artifact history.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/seu_guest.hpp"
#include "bench_util.hpp"
#include "campaign/runner.hpp"
#include "campaign/seu.hpp"
#include "isa/harden.hpp"

namespace lfi {
namespace {

struct GuestEval {
  const char* name;
  campaign::GoldenRun golden;
  campaign::SeuCounts counts;
  double rate(size_t n) const {
    return counts.total > 0
               ? 100.0 * static_cast<double>(n) /
                     static_cast<double>(counts.total)
               : 0.0;
  }
};

GuestEval EvalGuest(apps::HardeningMode mode, size_t flips) {
  GuestEval eval;
  eval.name = apps::HardeningModeName(mode);

  campaign::CampaignOptions opts;
  opts.jobs = 1;
  opts.entry = apps::kSeuGuestEntry;
  opts.collect_state_digest = true;
  campaign::CampaignRunner runner(apps::SeuGuestMachineSetup(mode), {}, opts);

  campaign::Scenario golden_scenario;
  golden_scenario.name = "golden";
  campaign::CampaignReport golden_report = runner.Run({golden_scenario});
  eval.golden = campaign::GoldenFrom(golden_report.results.front());

  auto guest = apps::BuildSeuGuest(mode);
  campaign::SeuSweepSpec space;
  space.instants_from = 0;
  space.instants_to =
      eval.golden.instructions > 0 ? eval.golden.instructions - 1 : 0;
  space.samples = flips;
  space.seed = 7;
  space.regs = true;
  space.stack = false;  // dead-stack flips are latent noise, not a contest
  space.heap = false;
  space.data = true;  // includes the CFCSS signature word for that variant
  space.data_module = apps::kSeuGuestModule;
  space.data_bytes = guest.value().data.size();

  campaign::CampaignReport report = runner.Run(campaign::BuildSeuSweep(space));
  eval.counts = campaign::ClassifyCampaign(report, eval.golden,
                                           isa::kSeuDetectExitCode)
                    .counts;
  return eval;
}

void AppendJson(std::string* json, const GuestEval& g) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"%s\": {\"flips\": %zu, \"landed\": %zu, \"masked\": %zu, "
      "\"detected\": %zu, \"sdc\": %zu, \"crash\": %zu, "
      "\"golden_instructions\": %llu, \"masked_pct\": %.1f, "
      "\"detected_pct\": %.1f, \"sdc_pct\": %.1f, \"protected_pct\": %.1f}",
      g.name, g.counts.total, g.counts.total - g.counts.not_landed,
      g.counts.masked, g.counts.detected, g.counts.sdc, g.counts.crash,
      (unsigned long long)g.golden.instructions, g.rate(g.counts.masked),
      g.rate(g.counts.detected), g.rate(g.counts.sdc),
      g.rate(g.counts.masked + g.counts.detected));
  *json += buf;
}

int PrintCoverage() {
  const size_t flips = static_cast<size_t>(bench::Scaled(320, 96));
  std::vector<GuestEval> evals;
  for (apps::HardeningMode mode :
       {apps::HardeningMode::None, apps::HardeningMode::Dwc,
        apps::HardeningMode::Cfcss, apps::HardeningMode::Tmr}) {
    evals.push_back(EvalGuest(mode, flips));
  }
  const GuestEval& none = evals[0];
  const GuestEval& dwc = evals[1];
  const GuestEval& cfcss = evals[2];
  const GuestEval& tmr = evals[3];

  std::vector<std::vector<std::string>> rows = {
      {"guest", "flips", "masked", "detected", "sdc", "crash", "masked%",
       "detected%", "sdc%", "protected%"}};
  for (const GuestEval& g : evals) {
    char buf[64];
    std::vector<std::string> row;
    row.push_back(g.name);
    std::snprintf(buf, sizeof(buf), "%zu", g.counts.total);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%zu", g.counts.masked);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%zu", g.counts.detected);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%zu", g.counts.sdc);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%zu", g.counts.crash);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", g.rate(g.counts.masked));
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", g.rate(g.counts.detected));
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", g.rate(g.counts.sdc));
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f",
                  g.rate(g.counts.masked + g.counts.detected));
    row.push_back(buf);
    rows.push_back(std::move(row));
  }
  bench::PrintTable("SEU coverage: hardened vs unhardened guest", rows);

  int rc = 0;
  auto require = [&rc](bool ok, const char* what) {
    if (!ok) {
      std::printf("FAIL: %s\n", what);
      rc = 1;
    }
  };
  require(dwc.counts.detected > 0, "dwc detected no flips");
  require(dwc.counts.detected > none.counts.detected,
          "dwc does not detect more than none");
  require(cfcss.counts.detected > 0, "cfcss detected no flips");
  require(tmr.counts.masked > none.counts.masked,
          "tmr does not mask more than none");
  // Protection-domain bars: DWC and TMR cover data values, so they must
  // strictly beat the baseline on both protected count and SDC count.
  size_t none_protected = none.counts.masked + none.counts.detected;
  for (const GuestEval* g : {&dwc, &tmr}) {
    size_t protected_count = g->counts.masked + g->counts.detected;
    if (protected_count <= none_protected) {
      std::printf("FAIL: %s protects %zu flips, none protects %zu\n", g->name,
                  protected_count, none_protected);
      rc = 1;
    }
    if (g->counts.sdc >= none.counts.sdc) {
      std::printf("FAIL: %s has %zu sdc outcomes, none has %zu — hardening "
                  "did not shrink silent corruption\n",
                  g->name, g->counts.sdc, none.counts.sdc);
      rc = 1;
    }
  }

  if (const char* path = std::getenv("LFI_BENCH_JSON")) {
    std::string json = "{\n";
    for (size_t i = 0; i < evals.size(); ++i) {
      AppendJson(&json, evals[i]);
      json += i + 1 < evals.size() ? ",\n" : "\n";
    }
    json += "}\n";
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", path);
    } else {
      std::printf("WARNING: cannot write %s\n", path);
    }
  }
  return rc;
}

/// Micro-benchmark: one small register-flip sweep per iteration (the
/// per-scenario cost of precise stop arming + digesting).
void BM_SeuSweep(benchmark::State& state) {
  campaign::CampaignOptions opts;
  opts.jobs = 1;
  opts.entry = apps::kSeuGuestEntry;
  opts.collect_state_digest = true;
  campaign::CampaignRunner runner(
      apps::SeuGuestMachineSetup(apps::HardeningMode::None), {}, opts);
  campaign::Scenario golden_scenario;
  golden_scenario.name = "golden";
  campaign::GoldenRun golden =
      campaign::GoldenFrom(runner.Run({golden_scenario}).results.front());
  campaign::SeuSweepSpec space;
  space.instants_to = golden.instructions - 1;
  space.samples = 8;
  space.stack = false;
  std::vector<campaign::Scenario> sweep = campaign::BuildSeuSweep(space);
  for (auto _ : state) {
    campaign::CampaignReport report = runner.Run(sweep);
    benchmark::DoNotOptimize(report.results.size());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(sweep.size()));
  }
}
BENCHMARK(BM_SeuSweep);

}  // namespace
}  // namespace lfi

// Not LFI_BENCH_MAIN: the table pass returns an exit code (the hardening
// bars are enforced).
int main(int argc, char** argv) {
  int rc = lfi::PrintCoverage();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return rc;
}
