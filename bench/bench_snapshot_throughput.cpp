// Snapshot/restore campaign throughput: scenarios/sec of the snapshot
// execution path (warm once, restore O(dirty pages) per scenario) against
// the cold path (reset + rebuild the process per scenario), on the
// db-suite and Pidgin targets. The two paths must produce bit-identical
// campaign reports — that is asserted here, and test_snapshot enforces it
// field by field — so the speedup is free: same results, fewer microjoules.
//
// The 2x bar on the snapshot speedup is enforced (non-zero exit) at full
// size; smoke workloads are too small for stable timing, so there it only
// warns. LFI_BENCH_JSON names a file, writes the same numbers as JSON so
// CI can archive the perf trajectory (BENCH_snapshot.json).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/dbserver.hpp"
#include "apps/pidgin.hpp"
#include "apps/workloads.hpp"
#include "bench_util.hpp"
#include "campaign/runner.hpp"
#include "core/scenario_gen.hpp"

namespace lfi {
namespace {

using Clock = std::chrono::steady_clock;

struct CampaignRun {
  size_t scenarios = 0;
  double seconds = 0;
  size_t crashes = 0;
  uint64_t instructions = 0;
  std::string fingerprint;  // status/instr/injections per scenario
  // Restore-cost telemetry (zero for cold runs). Worker-local, so only
  // meaningful at jobs=1 — which is how this bench runs.
  double restore_pages_mean = 0;
  uint64_t restore_pages_max = 0;
  size_t fallbacks = 0;
  double scenarios_per_sec() const {
    return seconds > 0 ? static_cast<double>(scenarios) / seconds : 0;
  }
};

/// Jobs-invariant digest of a report: enough to catch any divergence the
/// differential test would (statuses, instruction counts, injection
/// counts, coverage popcounts, crash hashes).
std::string Fingerprint(const campaign::CampaignReport& report) {
  std::string out;
  char buf[128];
  for (const campaign::ScenarioResult& r : report.results) {
    std::snprintf(buf, sizeof(buf), "%d:%lld:%llu:%zu:%zu:%016llx\n",
                  static_cast<int>(r.status), (long long)r.exit_code,
                  (unsigned long long)r.instructions, r.injections,
                  r.covered_offsets, (unsigned long long)r.crash_hash);
    out += buf;
  }
  for (const auto& [module, bitmap] : report.coverage) {
    std::snprintf(buf, sizeof(buf), "%s:%zu\n", module.c_str(),
                  bitmap.Count());
    out += buf;
  }
  return out;
}

CampaignRun RunCampaign(const campaign::MachineSetup& setup,
                        const std::string& entry,
                        const std::vector<campaign::Scenario>& scenarios,
                        bool snapshot, uint64_t warmup) {
  campaign::CampaignOptions opts;
  opts.jobs = 1;  // single worker: measure the per-scenario path, not SMP
  opts.entry = entry;
  opts.track_coverage = true;
  opts.snapshot = snapshot;
  opts.warmup_instructions = warmup;
  campaign::CampaignRunner runner(setup, apps::LibcProfiles(), opts);
  auto begin = Clock::now();
  campaign::CampaignReport report = runner.Run(scenarios);
  CampaignRun out;
  out.seconds = std::chrono::duration<double>(Clock::now() - begin).count();
  out.scenarios = scenarios.size();
  out.crashes = report.crashes;
  out.instructions = report.total_instructions;
  out.fingerprint = Fingerprint(report);
  out.fallbacks = report.snapshot_fallbacks;
  uint64_t pages_total = 0;
  for (const campaign::ScenarioResult& r : report.results) {
    pages_total += r.restore_pages;
    out.restore_pages_max = std::max(out.restore_pages_max, r.restore_pages);
  }
  if (!report.results.empty()) {
    out.restore_pages_mean =
        static_cast<double>(pages_total) / report.results.size();
  }
  return out;
}

/// Instructions of one clean (fault-free) run of the target: the yardstick
/// for placing the fault window. Deterministic, so cold and snapshot modes
/// derive the same window.
uint64_t CleanRunInstructions(const campaign::MachineSetup& setup,
                              const std::string& entry) {
  std::vector<campaign::Scenario> one(1);
  one[0].name = "clean";
  campaign::CampaignOptions opts;
  opts.entry = entry;
  campaign::CampaignRunner runner(setup, apps::LibcProfiles(), opts);
  return runner.Run(one).results[0].instructions;
}

std::vector<campaign::Scenario> MakeScenarios(size_t count, double probability,
                                              uint64_t seed) {
  const auto& profiles = apps::LibcProfiles();
  std::vector<campaign::Scenario> scenarios;
  for (size_t i = 0; i < count; ++i) {
    campaign::Scenario s;
    s.name = "scn-" + std::to_string(i);
    s.plan = core::GenerateRandom(profiles, probability,
                                  campaign::DeriveSeed(seed, i));
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

struct ModeResult {
  uint64_t warmup = 0;
  CampaignRun cold;
  CampaignRun snap;
  double speedup() const {
    return cold.seconds > 0 && snap.seconds > 0
               ? snap.scenarios_per_sec() / cold.scenarios_per_sec()
               : 0;
  }
  bool identical() const { return cold.fingerprint == snap.fingerprint; }
};

struct TargetResult {
  const char* name;
  ModeResult entry;   // fault window at the entry point (warmup 0)
  ModeResult window;  // fault window mid-run: setup prefix restored, not
                      // re-executed — the paper's snapshot pitch
};

TargetResult RunTarget(const char* name, const campaign::MachineSetup& setup,
                       const std::string& entry, size_t count,
                       double probability, uint64_t seed) {
  std::vector<campaign::Scenario> scenarios =
      MakeScenarios(count, probability, seed);
  // Warm-up pass (builds static profiles/images, settles the allocator),
  // then measured passes.
  RunCampaign(setup, entry, MakeScenarios(2, probability, seed), false, 0);
  // Fault window at half of a clean run: the first half is the scenario-
  // invariant setup prefix every cold run re-executes and every snapshot
  // run restores in O(dirty pages).
  uint64_t warmup = CleanRunInstructions(setup, entry) / 2;
  TargetResult r{
      name,
      {0, RunCampaign(setup, entry, scenarios, false, 0),
       RunCampaign(setup, entry, scenarios, true, 0)},
      {warmup, RunCampaign(setup, entry, scenarios, false, warmup),
       RunCampaign(setup, entry, scenarios, true, warmup)}};
  return r;
}

void AppendJson(std::string* json, const char* target, const char* mode,
                const ModeResult& r) {
  char buf[448];
  std::snprintf(
      buf, sizeof(buf),
      "  \"%s_%s\": {\"scenarios\": %zu, \"warmup_instructions\": %llu, "
      "\"cold_seconds\": %.6f, \"snapshot_seconds\": %.6f, "
      "\"cold_scenarios_per_sec\": %.1f, \"snapshot_scenarios_per_sec\": "
      "%.1f, \"speedup\": %.3f, \"restore_pages_mean\": %.1f, "
      "\"restore_pages_max\": %llu, \"fallbacks\": %zu, \"identical\": %s}",
      target, mode, r.cold.scenarios, (unsigned long long)r.warmup,
      r.cold.seconds, r.snap.seconds, r.cold.scenarios_per_sec(),
      r.snap.scenarios_per_sec(), r.speedup(), r.snap.restore_pages_mean,
      (unsigned long long)r.snap.restore_pages_max, r.snap.fallbacks,
      r.identical() ? "true" : "false");
  *json += buf;
}

int PrintThroughput() {
  size_t count = static_cast<size_t>(bench::Scaled(400, 24));
  TargetResult db = RunTarget("db-suite", apps::DbSuiteMachineSetup(),
                              apps::kDbTestEntry, count, 0.02, 11);
  TargetResult pidgin = RunTarget("pidgin", apps::PidginMachineSetup(),
                                  apps::kPidginEntry, count, 0.1, 29);

  std::vector<std::vector<std::string>> rows = {
      {"target", "fault window", "mode", "scenarios", "seconds",
       "scenarios/s", "speedup"}};
  auto add = [&rows](const char* target, const ModeResult& r) {
    char window[48];
    std::snprintf(window, sizeof(window), "%s (warmup %llu)",
                  r.warmup == 0 ? "entry" : "mid-run",
                  (unsigned long long)r.warmup);
    for (bool snap : {false, true}) {
      const CampaignRun& run = snap ? r.snap : r.cold;
      std::vector<std::string> row;
      char buf[64];
      row.push_back(target);
      row.push_back(window);
      row.push_back(snap ? "snapshot" : "cold");
      std::snprintf(buf, sizeof(buf), "%zu", run.scenarios);
      row.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.3f", run.seconds);
      row.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.1f", run.scenarios_per_sec());
      row.push_back(buf);
      if (snap) {
        std::snprintf(buf, sizeof(buf), "%.2fx", r.speedup());
        row.push_back(buf);
      } else {
        row.push_back("1.00x (baseline)");
      }
      rows.push_back(std::move(row));
    }
  };
  add(db.name, db.entry);
  add(db.name, db.window);
  add(pidgin.name, pidgin.entry);
  add(pidgin.name, pidgin.window);
  bench::PrintTable(
      "Campaign throughput: snapshot restore vs cold reset per scenario",
      rows);

  // Identity is enforced for every configuration; the 2x scenarios/sec bar
  // is enforced on the mid-run fault window — the configuration the
  // snapshot subsystem exists for (setup restored, not re-executed). At
  // smoke sizes timing is unstable, so the bar only warns there.
  int rc = 0;
  for (const TargetResult* t : {&db, &pidgin}) {
    for (const ModeResult* r : {&t->entry, &t->window}) {
      if (!r->identical()) {
        std::printf("FAIL: %s (warmup %llu) snapshot report diverges from "
                    "the cold path\n",
                    t->name, (unsigned long long)r->warmup);
        rc = 1;
      }
    }
    if (t->window.speedup() < 2.0) {
      std::printf("%s: %s mid-run-window snapshot speedup %.2fx below the "
                  "2x bar\n",
                  bench::SmokeMode() ? "WARNING" : "FAIL", t->name,
                  t->window.speedup());
      if (!bench::SmokeMode()) rc = 1;
    }
  }

  if (const char* path = std::getenv("LFI_BENCH_JSON")) {
    std::string json = "{\n";
    AppendJson(&json, "db_suite", "entry", db.entry);
    json += ",\n";
    AppendJson(&json, "db_suite", "window", db.window);
    json += ",\n";
    AppendJson(&json, "pidgin", "entry", pidgin.entry);
    json += ",\n";
    AppendJson(&json, "pidgin", "window", pidgin.window);
    json += "\n}\n";
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", path);
    } else {
      std::printf("WARNING: cannot write %s\n", path);
    }
  }
  return rc;
}

/// Micro-benchmarks: one campaign per iteration (per mode).
void BM_Campaign(benchmark::State& state, bool snapshot) {
  auto setup = apps::DbSuiteMachineSetup();
  auto scenarios = MakeScenarios(16, 0.02, 11);
  for (auto _ : state) {
    CampaignRun run = RunCampaign(setup, apps::kDbTestEntry, scenarios,
                                  snapshot, 0);
    benchmark::DoNotOptimize(run.instructions);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(run.scenarios));
  }
}

void BM_CampaignCold(benchmark::State& state) { BM_Campaign(state, false); }
void BM_CampaignSnapshot(benchmark::State& state) { BM_Campaign(state, true); }
BENCHMARK(BM_CampaignCold);
BENCHMARK(BM_CampaignSnapshot);

}  // namespace
}  // namespace lfi

// Not LFI_BENCH_MAIN: the table pass returns an exit code (identity + the
// 2x snapshot bar).
int main(int argc, char** argv) {
  int rc = lfi::PrintThroughput();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return rc;
}
