// Snapshot-tree campaign throughput: scenarios/sec of tree execution
// (window-local nodes, restore in O(pages dirtied since the window))
// against the flat snapshot (restore the one warmup snapshot, then replay
// the prefix up to the scenario's fault window) and cold execution
// (re-run everything), on the db-suite and Pidgin targets.
//
// Two configurations per target:
//   - shallow: every scenario's fault window is the campaign-wide warmup
//     (25% of a clean run). The tree degenerates to one node, so tree and
//     flat should run neck and neck — the sanity row.
//   - deep: scenarios spread round-robin over four fault windows at
//     80/85/90/95% of a clean run, while the shared snapshot stays at the
//     25% warmup point. Flat execution replays up to 70% of the program
//     per scenario to reach its window; the tree pays that replay once per
//     window and then restores the window-local node directly. This is
//     the re-warm tax the snapshot tree exists to eliminate, and where
//     the >=2x-vs-flat bar is enforced (full size; smoke warns).
//
// All three modes must produce bit-identical reports — asserted here per
// configuration, and enforced field-by-field in test_snapshot. Restore
// cost telemetry (pages copied / nodes walked per scenario) goes into the
// LFI_BENCH_JSON artifact (BENCH_snapshot_tree.json) so the perf
// trajectory records *why* throughput moves.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/dbserver.hpp"
#include "apps/pidgin.hpp"
#include "apps/workloads.hpp"
#include "bench_util.hpp"
#include "campaign/runner.hpp"
#include "core/scenario_gen.hpp"

namespace lfi {
namespace {

using Clock = std::chrono::steady_clock;

enum class Mode { Cold, Flat, Tree };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::Cold: return "cold";
    case Mode::Flat: return "flat";
    case Mode::Tree: return "tree";
  }
  return "?";
}

struct CampaignRun {
  size_t scenarios = 0;
  double seconds = 0;
  std::string fingerprint;
  // Restore-cost telemetry (snapshot modes; all zero for cold). Worker-
  // local, so meaningful at jobs=1 only — which is how this bench runs.
  double pages_mean = 0;
  uint64_t pages_max = 0;
  double nodes_mean = 0;
  uint64_t nodes_max = 0;
  size_t fallbacks = 0;
  double scenarios_per_sec() const {
    return seconds > 0 ? static_cast<double>(scenarios) / seconds : 0;
  }
};

/// Jobs-invariant digest of a report: statuses, instruction counts,
/// injection counts, first-injection instants, coverage popcounts, crash
/// hashes. Any divergence between execution modes shows up here.
std::string Fingerprint(const campaign::CampaignReport& report) {
  std::string out;
  char buf[160];
  for (const campaign::ScenarioResult& r : report.results) {
    std::snprintf(buf, sizeof(buf), "%d:%lld:%llu:%zu:%llu:%zu:%016llx\n",
                  static_cast<int>(r.status), (long long)r.exit_code,
                  (unsigned long long)r.instructions, r.injections,
                  (unsigned long long)r.first_injection_instructions,
                  r.covered_offsets, (unsigned long long)r.crash_hash);
    out += buf;
  }
  for (const auto& [module, bitmap] : report.coverage) {
    std::snprintf(buf, sizeof(buf), "%s:%zu\n", module.c_str(),
                  bitmap.Count());
    out += buf;
  }
  return out;
}

CampaignRun RunCampaign(const campaign::MachineSetup& setup,
                        const std::string& entry,
                        const std::vector<campaign::Scenario>& scenarios,
                        Mode mode, uint64_t base_warmup) {
  campaign::CampaignOptions opts;
  opts.jobs = 1;  // single worker: measure the per-scenario path, not SMP
  opts.entry = entry;
  opts.track_coverage = true;
  opts.snapshot = mode == Mode::Flat;
  opts.snapshot_tree = mode == Mode::Tree;
  opts.warmup_instructions = base_warmup;
  campaign::CampaignRunner runner(setup, apps::LibcProfiles(), opts);
  auto begin = Clock::now();
  campaign::CampaignReport report = runner.Run(scenarios);
  CampaignRun out;
  out.seconds = std::chrono::duration<double>(Clock::now() - begin).count();
  out.scenarios = scenarios.size();
  out.fingerprint = Fingerprint(report);
  out.fallbacks = report.snapshot_fallbacks;
  uint64_t pages_total = 0, nodes_total = 0;
  for (const campaign::ScenarioResult& r : report.results) {
    pages_total += r.restore_pages;
    nodes_total += r.restore_nodes_walked;
    out.pages_max = std::max(out.pages_max, r.restore_pages);
    out.nodes_max = std::max(out.nodes_max, r.restore_nodes_walked);
  }
  if (!report.results.empty()) {
    out.pages_mean =
        static_cast<double>(pages_total) / report.results.size();
    out.nodes_mean =
        static_cast<double>(nodes_total) / report.results.size();
  }
  return out;
}

/// Instructions of one clean (fault-free) run: the yardstick for placing
/// fault windows. Deterministic, so every mode derives the same windows.
uint64_t CleanRunInstructions(const campaign::MachineSetup& setup,
                              const std::string& entry) {
  std::vector<campaign::Scenario> one(1);
  one[0].name = "clean";
  campaign::CampaignOptions opts;
  opts.entry = entry;
  campaign::CampaignRunner runner(setup, apps::LibcProfiles(), opts);
  return runner.Run(one).results[0].instructions;
}

/// `windows` non-empty: scenario i's fault window is windows[i % n] —
/// round-robin, so every mode sees the same interleaving and the tree
/// builds its deeper nodes incrementally (each new window restores the
/// nearest existing node below it).
std::vector<campaign::Scenario> MakeScenarios(
    size_t count, double probability, uint64_t seed,
    const std::vector<uint64_t>& windows) {
  const auto& profiles = apps::LibcProfiles();
  std::vector<campaign::Scenario> scenarios;
  for (size_t i = 0; i < count; ++i) {
    campaign::Scenario s;
    s.name = "scn-" + std::to_string(i);
    s.plan = core::GenerateRandom(profiles, probability,
                                  campaign::DeriveSeed(seed, i));
    if (!windows.empty()) s.warmup_instructions = windows[i % windows.size()];
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

struct ConfigResult {
  const char* config;
  uint64_t base_warmup = 0;
  std::vector<uint64_t> windows;
  CampaignRun cold;
  CampaignRun flat;
  CampaignRun tree;
  double tree_vs_flat() const {
    return flat.seconds > 0 && tree.seconds > 0
               ? tree.scenarios_per_sec() / flat.scenarios_per_sec()
               : 0;
  }
  double tree_vs_cold() const {
    return cold.seconds > 0 && tree.seconds > 0
               ? tree.scenarios_per_sec() / cold.scenarios_per_sec()
               : 0;
  }
  bool identical() const {
    return cold.fingerprint == flat.fingerprint &&
           cold.fingerprint == tree.fingerprint;
  }
};

struct TargetResult {
  const char* name;
  ConfigResult shallow;
  ConfigResult deep;
};

ConfigResult RunConfig(const char* config,
                       const campaign::MachineSetup& setup,
                       const std::string& entry, uint64_t base_warmup,
                       std::vector<uint64_t> windows, size_t count,
                       double probability, uint64_t seed) {
  std::vector<campaign::Scenario> scenarios =
      MakeScenarios(count, probability, seed, windows);
  ConfigResult r;
  r.config = config;
  r.base_warmup = base_warmup;
  r.windows = std::move(windows);
  r.cold = RunCampaign(setup, entry, scenarios, Mode::Cold, base_warmup);
  r.flat = RunCampaign(setup, entry, scenarios, Mode::Flat, base_warmup);
  r.tree = RunCampaign(setup, entry, scenarios, Mode::Tree, base_warmup);
  return r;
}

TargetResult RunTarget(const char* name, const campaign::MachineSetup& setup,
                       const std::string& entry, size_t count,
                       double probability, uint64_t seed) {
  // Warm-up pass (builds static profiles/images, settles the allocator).
  RunCampaign(setup, entry, MakeScenarios(2, probability, seed, {}),
              Mode::Cold, 0);
  const uint64_t clean = CleanRunInstructions(setup, entry);
  const uint64_t warmup = clean / 4;  // the shared snapshot point
  TargetResult t{name,
                 RunConfig("shallow", setup, entry, warmup, {warmup}, count,
                           probability, seed),
                 RunConfig("deep", setup, entry, warmup,
                           {clean * 80 / 100, clean * 85 / 100,
                            clean * 90 / 100, clean * 95 / 100},
                           count, probability, seed)};
  return t;
}

void AppendJson(std::string* json, const char* target, const ConfigResult& r) {
  char buf[512];
  auto mode = [&](const char* name, const CampaignRun& run) {
    std::snprintf(buf, sizeof(buf),
                  "    \"%s\": {\"seconds\": %.6f, \"scenarios_per_sec\": "
                  "%.1f, \"restore_pages_mean\": %.1f, \"restore_pages_max\": "
                  "%llu, \"nodes_walked_mean\": %.2f, \"nodes_walked_max\": "
                  "%llu, \"fallbacks\": %zu}",
                  name, run.seconds, run.scenarios_per_sec(), run.pages_mean,
                  (unsigned long long)run.pages_max, run.nodes_mean,
                  (unsigned long long)run.nodes_max, run.fallbacks);
    *json += buf;
  };
  std::snprintf(buf, sizeof(buf),
                "  \"%s_%s\": {\"scenarios\": %zu, \"base_warmup\": %llu, "
                "\"windows\": %zu,\n",
                target, r.config, r.cold.scenarios,
                (unsigned long long)r.base_warmup, r.windows.size());
  *json += buf;
  mode("cold", r.cold);
  *json += ",\n";
  mode("flat", r.flat);
  *json += ",\n";
  mode("tree", r.tree);
  std::snprintf(buf, sizeof(buf),
                ",\n    \"tree_vs_flat\": %.3f, \"tree_vs_cold\": %.3f, "
                "\"identical\": %s}",
                r.tree_vs_flat(), r.tree_vs_cold(),
                r.identical() ? "true" : "false");
  *json += buf;
}

int PrintThroughput() {
  size_t count = static_cast<size_t>(bench::Scaled(200, 24));
  TargetResult db = RunTarget("db-suite", apps::DbSuiteMachineSetup(),
                              apps::kDbTestEntry, count, 0.02, 11);
  TargetResult pidgin = RunTarget("pidgin", apps::PidginMachineSetup(),
                                  apps::kPidginEntry, count, 0.1, 29);

  std::vector<std::vector<std::string>> rows = {
      {"target", "config", "mode", "scenarios", "seconds", "scenarios/s",
       "vs flat", "pages/scn", "nodes/scn"}};
  auto add = [&rows](const char* target, const ConfigResult& r) {
    for (Mode m : {Mode::Cold, Mode::Flat, Mode::Tree}) {
      const CampaignRun& run =
          m == Mode::Cold ? r.cold : (m == Mode::Flat ? r.flat : r.tree);
      std::vector<std::string> row;
      char buf[64];
      row.push_back(target);
      row.push_back(r.config);
      row.push_back(ModeName(m));
      std::snprintf(buf, sizeof(buf), "%zu", run.scenarios);
      row.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.3f", run.seconds);
      row.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.1f", run.scenarios_per_sec());
      row.push_back(buf);
      if (m == Mode::Tree) {
        std::snprintf(buf, sizeof(buf), "%.2fx", r.tree_vs_flat());
      } else if (m == Mode::Flat) {
        std::snprintf(buf, sizeof(buf), "1.00x");
      } else {
        std::snprintf(buf, sizeof(buf), "-");
      }
      row.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.1f", run.pages_mean);
      row.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.2f", run.nodes_mean);
      row.push_back(buf);
      rows.push_back(std::move(row));
    }
  };
  add(db.name, db.shallow);
  add(db.name, db.deep);
  add(pidgin.name, pidgin.shallow);
  add(pidgin.name, pidgin.deep);
  bench::PrintTable(
      "Campaign throughput: snapshot tree vs flat snapshot vs cold", rows);

  // Identity is enforced for every configuration. The >=2x tree-vs-flat
  // bar is enforced at the deep-window configuration on the better of the
  // two targets (the acceptance bar: at least one tier-1 workload) at
  // full size; smoke sizes are too small for stable timing, so warn only.
  int rc = 0;
  for (const TargetResult* t : {&db, &pidgin}) {
    for (const ConfigResult* r : {&t->shallow, &t->deep}) {
      if (!r->identical()) {
        std::printf("FAIL: %s %s: tree/flat/cold reports diverge\n", t->name,
                    r->config);
        rc = 1;
      }
      if (r->flat.fallbacks != 0 || r->tree.fallbacks != 0) {
        std::printf("FAIL: %s %s: unexpected snapshot fallbacks "
                    "(flat %zu, tree %zu) — the fast path did not run\n",
                    t->name, r->config, r->flat.fallbacks, r->tree.fallbacks);
        rc = 1;
      }
    }
  }
  double best = std::max(db.deep.tree_vs_flat(), pidgin.deep.tree_vs_flat());
  if (best < 2.0) {
    std::printf("%s: deep-window tree-vs-flat best %.2fx (db %.2fx, pidgin "
                "%.2fx) below the 2x bar\n",
                bench::SmokeMode() ? "WARNING" : "FAIL", best,
                db.deep.tree_vs_flat(), pidgin.deep.tree_vs_flat());
    if (!bench::SmokeMode()) rc = 1;
  }

  if (const char* path = std::getenv("LFI_BENCH_JSON")) {
    std::string json = "{\n";
    AppendJson(&json, "db_suite", db.shallow);
    json += ",\n";
    AppendJson(&json, "db_suite", db.deep);
    json += ",\n";
    AppendJson(&json, "pidgin", pidgin.shallow);
    json += ",\n";
    AppendJson(&json, "pidgin", pidgin.deep);
    json += "\n}\n";
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", path);
    } else {
      std::printf("WARNING: cannot write %s\n", path);
    }
  }
  return rc;
}

/// Micro-benchmark: one deep-window campaign per iteration (per mode).
void BM_DeepWindow(benchmark::State& state, Mode mode) {
  auto setup = apps::DbSuiteMachineSetup();
  uint64_t clean = CleanRunInstructions(setup, apps::kDbTestEntry);
  auto scenarios = MakeScenarios(
      8, 0.02, 11, {clean * 80 / 100, clean * 90 / 100});
  for (auto _ : state) {
    CampaignRun run = RunCampaign(setup, apps::kDbTestEntry, scenarios, mode,
                                  clean / 4);
    benchmark::DoNotOptimize(run.scenarios);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(run.scenarios));
  }
}

void BM_DeepWindowFlat(benchmark::State& state) {
  BM_DeepWindow(state, Mode::Flat);
}
void BM_DeepWindowTree(benchmark::State& state) {
  BM_DeepWindow(state, Mode::Tree);
}
BENCHMARK(BM_DeepWindowFlat);
BENCHMARK(BM_DeepWindowTree);

}  // namespace
}  // namespace lfi

// Not LFI_BENCH_MAIN: the table pass returns an exit code (identity + the
// 2x tree-vs-flat bar).
int main(int argc, char** argv) {
  int rc = lfi::PrintThroughput();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return rc;
}
