// Table 1 — "Statistics on how Linux libraries provide additional details
// on error conditions exposed to callers."
//
// Regenerates the table by measurement: a >20,000-function corpus is
// generated with the paper's distribution, return types are read from the
// prototype metadata (the ELSA-parsed headers), and the error-detail
// channel of each function is *measured* with the profiler's side-effects
// analysis. The printed fractions are therefore what the analysis
// recovered, not what generation requested.
#include <map>

#include "analysis/constprop.hpp"
#include "bench_util.hpp"
#include "corpus/table1_corpus.hpp"
#include "kernel/kernel_image.hpp"
#include "util/strings.hpp"

namespace {

using namespace lfi;

struct Cell {
  size_t none = 0, global = 0, arg = 0;
};

corpus::Table1Corpus& Corpus() {
  static corpus::Table1Corpus corpus =
      corpus::GenerateTable1Corpus(2026, 20000, 40);
  return corpus;
}

void PrintTables() {
  const sso::SharedObject kernel = kernel::BuildKernelImage();
  auto& corpus = Corpus();

  std::map<corpus::ReturnKind, Cell> cells;
  size_t total = 0;
  for (const auto& lib : corpus.libraries) {
    analysis::Workspace ws;
    ws.SetKernel(&kernel);
    ws.AddModule(&lib.object);
    analysis::ConstPropAnalyzer analyzer(ws);
    for (const auto& [name, kind] : lib.prototypes) {
      auto effects = analyzer.ScanAllEffects(lib.object, name);
      if (!effects.ok()) continue;
      ++total;
      bool global = false, arg = false;
      for (const auto& e : effects.value()) {
        global |= e.kind == analysis::SideEffect::Kind::Tls ||
                  e.kind == analysis::SideEffect::Kind::Global;
        arg |= e.kind == analysis::SideEffect::Kind::Arg;
      }
      Cell& cell = cells[kind];
      if (global) ++cell.global;
      else if (arg) ++cell.arg;
      else ++cell.none;
    }
  }

  auto pct = [&](size_t n) {
    return Format("%.1f%%", 100.0 * static_cast<double>(n) /
                                static_cast<double>(total));
  };
  auto kind_name = [](corpus::ReturnKind k) {
    switch (k) {
      case corpus::ReturnKind::Void: return "void";
      case corpus::ReturnKind::Scalar: return "scalar";
      case corpus::ReturnKind::Pointer: return "pointer";
    }
    return "?";
  };

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Return Type", "None", "Error details in global location",
                  "Error details via arguments", "paper (none/global/args)"});
  const char* paper[3] = {"23.0% / 0% / 0%", "56.5% / 1% / 3.5%",
                          "11.6% / 1% / 3.4%"};
  int i = 0;
  for (auto kind : {corpus::ReturnKind::Void, corpus::ReturnKind::Scalar,
                    corpus::ReturnKind::Pointer}) {
    const Cell& c = cells[kind];
    rows.push_back(
        {kind_name(kind), pct(c.none), pct(c.global), pct(c.arg), paper[i++]});
  }
  bench::PrintTable(
      Format("Table 1: error-detail channels across %zu measured functions",
             total),
      rows);

  size_t no_effects = 0;
  for (auto kind : {corpus::ReturnKind::Void, corpus::ReturnKind::Scalar,
                    corpus::ReturnKind::Pointer}) {
    no_effects += cells[kind].none;
  }
  std::printf(
      "\n%.1f%% of exported functions have no side effects "
      "(paper: \"more than 90%%\")\n",
      100.0 * static_cast<double>(no_effects) / static_cast<double>(total));
}

void BM_ScanFunctionEffects(benchmark::State& state) {
  static const sso::SharedObject kernel = kernel::BuildKernelImage();
  auto& lib = Corpus().libraries[0];
  analysis::Workspace ws;
  ws.SetKernel(&kernel);
  ws.AddModule(&lib.object);
  analysis::ConstPropAnalyzer analyzer(ws);
  size_t i = 0;
  for (auto _ : state) {
    const auto& fn = lib.object.exports[i++ % lib.object.exports.size()];
    benchmark::DoNotOptimize(analyzer.ScanAllEffects(lib.object, fn.name));
  }
}
BENCHMARK(BM_ScanFunctionEffects);

}  // namespace

LFI_BENCH_MAIN(PrintTables)
