// Table 2 — "Profiler accuracy with no human assistance, no documentation,
// and no source code" — plus the §6.3 libpcre manual-inspection case.
//
// For every library row, a synthetic binary is generated whose documented /
// indirect / undocumented error codes are sized to the paper's TP/FN/FP
// budgets; the profiler is then run for real and scored against the
// generated documentation. FNs arise from genuine indirect-call blindness,
// FPs from genuinely-present undocumented codes — the same mechanisms the
// paper describes.
#include "bench_util.hpp"
#include "core/profiler.hpp"
#include "corpus/table2_corpus.hpp"
#include "kernel/kernel_image.hpp"
#include "util/strings.hpp"

namespace {

using namespace lfi;

std::map<std::string, std::set<int64_t>> RunProfiler(
    const corpus::GeneratedLibrary& lib) {
  static const sso::SharedObject kernel = kernel::BuildKernelImage();
  analysis::Workspace ws;
  ws.SetKernel(&kernel);
  ws.AddModule(&lib.object);
  core::Profiler profiler(ws);
  auto profile = profiler.ProfileLibrary(lib.object);
  std::map<std::string, std::set<int64_t>> found;
  if (!profile.ok()) return found;
  for (const auto& fn : profile.value().functions) {
    for (const auto& ec : fn.error_codes) found[fn.name].insert(ec.retval);
  }
  return found;
}

void PrintTables() {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Library", "Platform", "Accuracy", "TPs", "FNs", "FPs",
                  "paper acc."});
  uint64_t seed = 42;
  for (const auto& entry : corpus::Table2Reference()) {
    corpus::GeneratedLibrary lib =
        corpus::GenerateTable2Library(entry, seed++);
    auto found = RunProfiler(lib);
    corpus::AccuracyCount score =
        corpus::ScoreAgainstDocs(lib.documentation, found);
    rows.push_back({entry.library, entry.platform,
                    Format("%.0f%%", score.accuracy() * 100),
                    Format("%zu", score.tp), Format("%zu", score.fn),
                    Format("%zu", score.fp),
                    Format("%d%%", entry.paper_accuracy_pct)});
  }
  bench::PrintTable(
      "Table 2: profiler accuracy vs documentation (measured | paper)", rows);

  // §6.3 libpcre: ground truth is the binary itself (manual inspection).
  const corpus::Table2Entry& pcre = corpus::LibpcreReference();
  corpus::GeneratedLibrary lib = corpus::GenerateTable2Library(pcre, 7);
  auto found = RunProfiler(lib);
  corpus::AccuracyCount score = corpus::ScoreAgainstDocs(lib.actual, found);
  std::printf(
      "\nlibpcre (ground truth = code inspection): accuracy %.0f%% "
      "(%zu TP, %zu FN, %zu FP) — paper: 84%% (52 TP, 10 FN, 0 FP)\n",
      score.accuracy() * 100, score.tp, score.fn, score.fp);
}

void BM_ProfileSmallLibrary(benchmark::State& state) {
  const auto& entry = corpus::Table2Reference()[9];  // libdmx, 18 functions
  corpus::GeneratedLibrary lib = corpus::GenerateTable2Library(entry, 1);
  static const sso::SharedObject kernel = kernel::BuildKernelImage();
  for (auto _ : state) {
    analysis::Workspace ws;
    ws.SetKernel(&kernel);
    ws.AddModule(&lib.object);
    core::Profiler profiler(ws);
    benchmark::DoNotOptimize(profiler.ProfileLibrary(lib.object));
  }
}
BENCHMARK(BM_ProfileSmallLibrary);

void BM_ProfileLargeLibrary(benchmark::State& state) {
  const auto& entry = corpus::Table2Reference()[5];  // libxml2, 1612 functions
  corpus::GeneratedLibrary lib = corpus::GenerateTable2Library(entry, 1);
  static const sso::SharedObject kernel = kernel::BuildKernelImage();
  for (auto _ : state) {
    analysis::Workspace ws;
    ws.SetKernel(&kernel);
    ws.AddModule(&lib.object);
    core::Profiler profiler(ws);
    benchmark::DoNotOptimize(profiler.ProfileLibrary(lib.object));
  }
}
BENCHMARK(BM_ProfileLargeLibrary)->Unit(benchmark::kMillisecond);

}  // namespace

LFI_BENCH_MAIN(PrintTables)
