// Table 3 — "Runtime overhead of using LFI in the Apache httpd server with
// three simultaneous libraries (GNU libc, libapr, and libaprutil)."
//
// The AB workload (1,000 requests) runs against the webserver stand-in
// with 0 / 10 / 100 / 500 / 1,000 pass-through triggers placed on the most
// called functions, for both the static-HTML and PHP-like handlers. The
// paper's shape: overhead negligible, creeping up slightly with trigger
// count, PHP ~10x the static baseline.
#include "apps/workloads.hpp"
#include "bench_util.hpp"
#include "util/strings.hpp"

namespace {

using namespace lfi;

// Smoke mode (LFI_BENCH_SMOKE=1, CI) shrinks the workload but keeps every
// trigger configuration, so hot-path regressions still surface.
const int kRequests = bench::Scaled(1000, 50);
const int kRepeats = bench::Scaled(5, 1);  // median-of-N wall-clock

double MedianSeconds(bool php, int triggers) {
  std::vector<double> times;
  for (int i = 0; i < kRepeats; ++i) {
    times.push_back(
        apps::RunWebBench(kRequests, php, triggers, 7 + static_cast<uint64_t>(i))
            .seconds);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void PrintTables() {
  const int trigger_counts[] = {0, 10, 100, 500, 1000};
  const char* paper_static[] = {"0.151 s", "0.156 s", "0.156 s", "0.158 s",
                                "0.159 s"};
  const char* paper_php[] = {"1.51 s", "1.53 s", "1.53 s", "1.57 s",
                             "1.60 s"};

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Configuration", "Static HTML", "PHP",
                  "paper static", "paper PHP"});
  double base_static = 0, base_php = 0;
  for (size_t i = 0; i < std::size(trigger_counts); ++i) {
    int n = trigger_counts[i];
    double s = MedianSeconds(false, n);
    double p = MedianSeconds(true, n);
    if (n == 0) {
      base_static = s;
      base_php = p;
    }
    std::string label =
        n == 0 ? "Baseline (no LFI)" : Format("%d triggers", n);
    rows.push_back({label,
                    Format("%.4f s (%+.1f%%)", s,
                           100 * (s - base_static) / base_static),
                    Format("%.4f s (%+.1f%%)", p, 100 * (p - base_php) / base_php),
                    paper_static[i], paper_php[i]});
  }
  bench::PrintTable(
      Format("Table 3: AB completion time, %d requests (measured | paper)",
             kRequests),
      rows);
  std::printf(
      "\nPHP/static work ratio: %.1fx (paper: ~10x; negligible overhead "
      "that grows mildly with trigger count)\n",
      base_php / base_static);
}

void BM_StaticRequests(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apps::RunWebBench(100, false, static_cast<int>(state.range(0)), 7));
  }
}
BENCHMARK(BM_StaticRequests)->Arg(0)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_PhpRequests(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apps::RunWebBench(100, true, static_cast<int>(state.range(0)), 7));
  }
}
BENCHMARK(BM_PhpRequests)->Arg(0)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

LFI_BENCH_MAIN(PrintTables)
