// Table 4 — "Runtime overhead while applying LFI to the MySQL database
// server" (SysBench OLTP, transactions per second).
//
// The OLTP stand-in runs read-only and read-write transaction mixes under
// 0 / 10 / 100 / 500 / 1,000 pass-through triggers on libc. Paper shape:
// throughput degrades by ~1-2% at 1,000 triggers; read-write runs at
// roughly a quarter of the read-only rate.
#include "apps/workloads.hpp"
#include "bench_util.hpp"
#include "util/strings.hpp"

namespace {

using namespace lfi;

// Smoke mode (LFI_BENCH_SMOKE=1, CI) shrinks the workload but keeps every
// trigger configuration, so hot-path regressions still surface.
const int kTransactions = bench::Scaled(10000, 500);
const int kRepeats = bench::Scaled(5, 1);

double MedianTps(bool rw, int triggers) {
  std::vector<double> tps;
  for (int i = 0; i < kRepeats; ++i) {
    tps.push_back(apps::RunOltpBench(kTransactions, rw, triggers,
                                     11 + static_cast<uint64_t>(i))
                      .txns_per_sec);
  }
  std::sort(tps.begin(), tps.end());
  return tps[tps.size() / 2];
}

void PrintTables() {
  const int trigger_counts[] = {0, 10, 100, 500, 1000};
  const char* paper_ro[] = {"465.28", "464.48", "463.19", "460.80", "459.39"};
  const char* paper_rw[] = {"112.62", "112.08", "111.53", "110.88", "110.10"};

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Configuration", "Read-only", "Read/Write",
                  "paper RO (txn/s)", "paper RW (txn/s)"});
  double base_ro = 0, base_rw = 0;
  for (size_t i = 0; i < std::size(trigger_counts); ++i) {
    int n = trigger_counts[i];
    double ro = MedianTps(false, n);
    double rw = MedianTps(true, n);
    if (n == 0) {
      base_ro = ro;
      base_rw = rw;
    }
    std::string label = n == 0 ? "Baseline (no LFI)" : Format("%d triggers", n);
    rows.push_back(
        {label, Format("%.0f txn/s (%+.1f%%)", ro, 100 * (ro - base_ro) / base_ro),
         Format("%.0f txn/s (%+.1f%%)", rw, 100 * (rw - base_rw) / base_rw),
         paper_ro[i], paper_rw[i]});
  }
  bench::PrintTable(
      Format("Table 4: SysBench OLTP throughput, %d transactions "
             "(measured | paper)",
             kTransactions),
      rows);
  std::printf(
      "\nread-only / read-write throughput ratio: %.1fx (paper: ~4.1x)\n",
      base_ro / base_rw);
}

void BM_OltpReadOnly(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apps::RunOltpBench(200, false, static_cast<int>(state.range(0)), 3));
  }
}
BENCHMARK(BM_OltpReadOnly)->Arg(0)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_OltpReadWrite(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apps::RunOltpBench(200, true, static_cast<int>(state.range(0)), 3));
  }
}
BENCHMARK(BM_OltpReadWrite)->Arg(0)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

LFI_BENCH_MAIN(PrintTables)
