// Shared benchmark scaffolding: paper-style table printing plus the
// standard "print tables, then run google-benchmark micro-benchmarks" main.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace lfi::bench {

/// True when LFI_BENCH_SMOKE is set (and not "0"): benches shrink their
/// workloads so CI can run the paper tables in Release mode as a fast
/// hot-path compile / perf-structure regression check.
inline bool SmokeMode() {
  const char* v = std::getenv("LFI_BENCH_SMOKE");
  return v != nullptr && *v != '\0' && *v != '0';
}

/// Pick the full-size or smoke-size parameter.
inline int Scaled(int full, int smoke) { return SmokeMode() ? smoke : full; }

/// Print a fixed-width table: a header row then data rows.
inline void PrintTable(const std::string& title,
                       const std::vector<std::vector<std::string>>& rows) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (rows.empty()) return;
  std::vector<size_t> widths;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (widths.size() <= i) widths.push_back(0);
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    std::string line;
    for (size_t i = 0; i < rows[r].size(); ++i) {
      std::string cell = rows[r][i];
      cell.resize(widths[i], ' ');
      line += cell + "  ";
    }
    std::printf("%s\n", line.c_str());
    if (r == 0) {
      std::string rule(line.size(), '-');
      std::printf("%s\n", rule.c_str());
    }
  }
}

/// Standard main body: emit the tables, then micro-benchmarks.
#define LFI_BENCH_MAIN(PrintFn)                          \
  int main(int argc, char** argv) {                      \
    PrintFn();                                           \
    benchmark::Initialize(&argc, argv);                  \
    benchmark::RunSpecifiedBenchmarks();                 \
    benchmark::Shutdown();                               \
    return 0;                                            \
  }

}  // namespace lfi::bench
