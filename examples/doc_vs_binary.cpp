// "Finding Obscure Scenarios" (§6.1) / documentation inconsistencies
// (§3.1): the profiler finds error codes the documentation omits — the
// modify_ldt ENOMEM and libxml2 return-1 cases of the paper.
//
// We generate a library whose man page is incomplete, run the profiler,
// and diff the two views, flagging undocumented codes a tester should add
// to their scenarios and documented codes the binary analysis missed.
#include <cstdio>

#include "core/profiler.hpp"
#include "corpus/libgen.hpp"
#include "kernel/kernel_image.hpp"

using namespace lfi;

int main() {
  corpus::LibrarySpec spec;
  spec.name = "libldt.so";
  spec.seed = 4;
  {
    corpus::FunctionSpec fn;  // the modify_ldt analogue
    fn.name = "modify_ldt";
    fn.arg_count = 1;
    fn.detectable_documented = {-14 /*EFAULT*/, -22 /*EINVAL*/,
                                -38 /*ENOSYS*/};
    fn.detectable_undocumented = {-12 /*ENOMEM: missing from the man page*/};
    spec.functions.push_back(fn);
  }
  {
    corpus::FunctionSpec fn;  // the htmlParseDocument analogue
    fn.name = "htmlParseDocument";
    fn.arg_count = 2;
    fn.detectable_documented = {-1};
    fn.detectable_undocumented = {1 /*undocumented failure value*/};
    spec.functions.push_back(fn);
  }
  corpus::GeneratedLibrary lib = corpus::GenerateLibrary(spec);

  sso::SharedObject kernel = kernel::BuildKernelImage();
  analysis::Workspace ws;
  ws.SetKernel(&kernel);
  ws.AddModule(&lib.object);
  core::Profiler profiler(ws);
  auto profile = profiler.ProfileLibrary(lib.object);
  if (!profile.ok()) {
    std::printf("profiling failed: %s\n", profile.error().c_str());
    return 1;
  }

  bool found_undocumented = false;
  for (const auto& fn : profile.value().functions) {
    const auto& docs = lib.documentation.at(fn.name);
    std::printf("\n%s — man page says {", fn.name.c_str());
    for (int64_t code : docs) std::printf(" %lld", (long long)code);
    std::printf(" }, binary analysis found {");
    for (const auto& ec : fn.error_codes) {
      std::printf(" %lld", (long long)ec.retval);
    }
    std::printf(" }\n");
    for (const auto& ec : fn.error_codes) {
      if (!docs.count(ec.retval)) {
        std::printf("  !! undocumented error return %lld — add it to your "
                    "fault scenarios\n",
                    (long long)ec.retval);
        found_undocumented = true;
      }
    }
    for (int64_t code : docs) {
      bool found = false;
      for (const auto& ec : fn.error_codes) found |= ec.retval == code;
      if (!found) {
        std::printf("  ?? documented code %lld not confirmed by analysis "
                    "(indirect path?)\n",
                    (long long)code);
      }
    }
  }
  std::printf(
      "\n(paper: modify_ldt's man page lists EFAULT/EINVAL/ENOSYS, but LFI "
      "found ENOMEM too;\n libxml2's htmlParseDocument can return 1 despite "
      "documented 0/-1.)\n");
  return found_undocumented ? 0 : 1;
}
