// The §6.1 coverage experiment: run the DB server's regression suite with
// and without an automatically generated random libc faultload, and report
// per-module basic-block coverage. "With no human help, LFI improved the
// coverage of the MySQL test suite."
#include <cstdio>

#include "apps/workloads.hpp"

using namespace lfi;

int main() {
  constexpr int kRuns = 6;
  std::printf("running the regression suite %d times without LFI...\n", kRuns);
  apps::CoverageReport base = apps::RunDbTestSuite(false, kRuns, 0.0, 21);
  std::printf("running the suite %d times with a random libc faultload...\n",
              kRuns);
  apps::CoverageReport with = apps::RunDbTestSuite(true, kRuns, 0.01, 21);

  std::printf("\n%-12s %14s %14s %8s\n", "module", "suite only", "suite+LFI",
              "gain");
  for (const auto& [name, counts] : base.modules) {
    auto [bc, bt] = counts;
    auto [wc, wt] = with.modules.at(name);
    double bpct = 100.0 * static_cast<double>(bc) / static_cast<double>(bt);
    double wpct = 100.0 * static_cast<double>(wc) / static_cast<double>(wt);
    std::printf("%-12s %13.1f%% %13.1f%% %+7.1f%%\n", name.c_str(), bpct,
                wpct, wpct - bpct);
  }
  std::printf("%-12s %13.1f%% %13.1f%% %+7.1f%%\n", "OVERALL", base.overall(),
              with.overall(), with.overall() - base.overall());
  std::printf(
      "\n%zu injection runs crashed the server (coverage for those runs is\n"
      "still counted, as the paper notes it could not always be saved).\n",
      with.crashes);
  return with.overall() > base.overall() ? 0 : 1;
}
