// The §6.1 Pidgin case study, end to end:
//   - run the IM client under random I/O fault injection (p = 0.1),
//   - observe the SIGABRT caused by the resolver's unchecked pipe writes,
//   - regenerate the crash deterministically from the replay script,
//   - print the injection log a developer would debug from.
#include <cstdio>

#include "apps/workloads.hpp"

using namespace lfi;

int main() {
  std::printf("hunting: random I/O faultload, p=0.10, scanning seeds...\n");
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    apps::PidginRunResult r = apps::RunPidginRandomIo(0.10, seed);
    if (!r.aborted) continue;

    std::printf("\nseed %llu crashed the client with SIGABRT after %zu "
                "injections (%s)\n",
                (unsigned long long)seed, r.injections,
                r.fault_message.c_str());

    std::printf("\nreplay script:\n%s", r.replay.ToXml().c_str());

    std::printf("re-running the replay script...\n");
    apps::PidginRunResult replay = apps::RunPidginWithPlan(r.replay);
    std::printf("replay outcome: %s\n",
                replay.aborted ? "SIGABRT reproduced — attach the debugger"
                               : "no crash (scheduling nondeterminism)");

    std::printf(
        "\ndiagnosis (as in the paper): the resolver child ignores write()\n"
        "results; a failed/partial write desynchronizes the response pipe,\n"
        "the parent reads address bytes as a length, and the resulting\n"
        "huge malloc() fails -> abort().\n");
    return replay.aborted ? 0 : 2;
  }
  std::printf("no crashing seed in range — increase probability or range\n");
  return 1;
}
