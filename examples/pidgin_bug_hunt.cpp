// The §6.1 Pidgin case study, end to end — campaign edition:
//   - fan 100 random-I/O fault scenarios (p = 0.1, seeds 1..100) across
//     every core as one fault-injection campaign,
//   - observe the SIGABRTs caused by the resolver's unchecked pipe writes,
//   - regenerate the first crash deterministically from its replay script,
//   - print the injection log a developer would debug from.
#include <cstdio>

#include "apps/pidgin.hpp"
#include "apps/workloads.hpp"
#include "campaign/runner.hpp"
#include "core/faultloads.hpp"
#include "util/strings.hpp"

using namespace lfi;

int main() {
  constexpr double kProbability = 0.10;
  constexpr uint64_t kSeeds = 100;

  std::printf("hunting: random I/O faultload, p=%.2f, %llu seeds, "
              "all cores...\n",
              kProbability, (unsigned long long)kSeeds);

  const std::vector<core::FaultProfile>& profiles = apps::LibcProfiles();
  std::vector<campaign::Scenario> scenarios;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    campaign::Scenario s;
    s.name = Format("pidgin-io-seed-%llu", (unsigned long long)seed);
    s.plan = core::FileIoFaultload(profiles, kProbability, seed);
    scenarios.push_back(std::move(s));
  }

  campaign::CampaignOptions opts;
  opts.jobs = 0;  // hardware concurrency
  opts.entry = apps::kPidginEntry;
  opts.collect_replays = true;
  campaign::CampaignRunner runner(apps::PidginMachineSetup(), profiles, opts);
  campaign::CampaignReport report = runner.Run(scenarios);

  std::printf("%s", report.ToText().c_str());

  // Lowest-seed SIGABRT, independent of worker interleaving: results are
  // index-ordered.
  const campaign::ScenarioResult* hit = nullptr;
  for (const campaign::ScenarioResult& r : report.results) {
    if (r.status == campaign::ScenarioStatus::Crashed &&
        r.signal == vm::Signal::Abort) {
      hit = &r;
      break;
    }
  }
  if (!hit) {
    std::printf("no crashing seed in range — increase probability or range\n");
    return 1;
  }

  std::printf("\n%s crashed the client with SIGABRT after %zu injections "
              "(%s)\n",
              hit->name.c_str(), hit->injections, hit->fault_message.c_str());
  std::printf("\nreplay script:\n%s", hit->replay.ToXml().c_str());

  std::printf("re-running the replay script...\n");
  apps::PidginRunResult replay = apps::RunPidginWithPlan(hit->replay);
  std::printf("replay outcome: %s\n",
              replay.aborted ? "SIGABRT reproduced — attach the debugger"
                             : "no crash (scheduling nondeterminism)");

  std::printf(
      "\ndiagnosis (as in the paper): the resolver child ignores write()\n"
      "results; a failed/partial write desynchronizes the response pipe,\n"
      "the parent reads address bytes as a length, and the resulting\n"
      "huge malloc() fails -> abort().\n");
  return replay.aborted ? 0 : 2;
}
