// The §6.1 Pidgin case study, end to end — explorer edition:
//   - seed a corpus with the paper's random I/O faultloads (p = 0.1),
//   - let the coverage-guided explorer evolve the corpus for a few rounds
//     (splicing triggers, swapping error codes, perturbing call counts),
//   - watch it bucket the resolver SIGABRTs by stack hash and shrink the
//     first bucket to a minimal replay-based reproducer,
//   - re-run the minimized reproducer standalone to confirm the finding.
#include <cstdio>

#include "apps/pidgin.hpp"
#include "apps/workloads.hpp"
#include "campaign/explorer.hpp"
#include "core/faultloads.hpp"
#include "util/strings.hpp"

using namespace lfi;

int main() {
  constexpr double kProbability = 0.10;
  constexpr size_t kRounds = 3;
  constexpr size_t kBudget = 32;  // scenarios per round

  std::printf("hunting: coverage-guided exploration, %zu rounds x %zu "
              "scenarios, I/O faultload seeds (p=%.2f), all cores...\n",
              kRounds, kBudget, kProbability);

  const std::vector<core::FaultProfile>& profiles = apps::LibcProfiles();

  // Seed the corpus with the paper's file-I/O faultload at a few seeds;
  // the explorer tops the round up with fresh random plans and evolves
  // whatever earns new coverage.
  std::vector<core::Plan> seed_corpus;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    seed_corpus.push_back(core::FileIoFaultload(profiles, kProbability, seed));
  }

  campaign::ExplorerOptions opts;
  opts.rounds = kRounds;
  opts.scenarios_per_round = kBudget;
  opts.seed = 1;
  opts.seed_probability = kProbability;
  opts.campaign.jobs = 0;  // hardware concurrency
  opts.campaign.entry = apps::kPidginEntry;
  opts.on_round = [](const campaign::RoundStats& rs) {
    std::printf("round %zu: %zu crashed, +%zu offsets (union %zu), corpus %zu\n",
                rs.round + 1, rs.crashes, rs.new_offsets, rs.union_offsets,
                rs.corpus_size);
  };

  campaign::Explorer explorer(apps::PidginMachineSetup(), profiles, opts);
  campaign::ExplorerReport report = explorer.Explore(seed_corpus);

  std::printf("\n%s", report.ToText().c_str());

  // First SIGABRT bucket — deterministic: buckets are in first-seen order
  // over index-ordered results.
  const campaign::CrashReport* hit = nullptr;
  for (const campaign::CrashReport& cr : report.crashes) {
    if (cr.signature.rfind("SIGABRT", 0) == 0 ||
        cr.signature.find("Abort") != std::string::npos) {
      hit = &cr;
      break;
    }
  }
  if (hit == nullptr && !report.crashes.empty()) hit = &report.crashes[0];
  if (hit == nullptr) {
    std::printf("no crash bucket found — increase rounds or budget\n");
    return 1;
  }

  std::printf("\nbucket %016llx (%s) hit %zu time(s); minimized from %zu to "
              "%zu trigger(s) in %zu replay(s)\n",
              (unsigned long long)hit->hash, hit->signature.c_str(),
              hit->count, hit->replay.triggers.size(),
              hit->minimized.triggers.size(), hit->minimize_runs);
  std::printf("\nminimized reproducer:\n%s", hit->minimized.ToXml().c_str());

  std::printf("re-running the minimized reproducer standalone...\n");
  apps::PidginRunResult replay = apps::RunPidginWithPlan(hit->minimized);
  std::printf("replay outcome: %s\n",
              replay.aborted ? "SIGABRT reproduced — attach the debugger"
                             : "no crash (scheduling nondeterminism)");

  std::printf(
      "\ndiagnosis (as in the paper): the resolver child ignores write()\n"
      "results; a failed/partial write desynchronizes the response pipe,\n"
      "the parent reads address bytes as a length, and the resulting\n"
      "huge malloc() fails -> abort().\n");
  return replay.aborted ? 0 : 2;
}
