// Quickstart: the two-command LFI workflow from §6.1 —
//   1. profile the target application's libraries,
//   2. run the tests under a fault scenario.
//
// We profile the synthetic libc, print the §3.3-style close() profile,
// generate a random scenario, run a small file-copy program under it, and
// dump the injection log and the replay script.
#include <cstdio>

#include "core/controller.hpp"
#include "core/profiler.hpp"
#include "core/scenario_gen.hpp"
#include "isa/codebuilder.hpp"
#include "kernel/kernel_image.hpp"
#include "libc/libc_builder.hpp"
#include "vm/machine.hpp"

using namespace lfi;
using isa::CodeBuilder;
using isa::Reg;

namespace {

/// A minimal program: copy 64 bytes from /in to /out, checking nothing.
sso::SharedObject BuildCopyTool() {
  CodeBuilder b;
  uint32_t in_path = b.emit_data({'/', 'i', 'n', 0});
  uint32_t out_path = b.emit_data({'/', 'o', 'u', 't', 0});
  uint32_t buf = b.reserve_data(128);
  b.begin_function("main");
  b.sub_ri(Reg::SP, 16);
  b.mov_ri(Reg::R2, libc::O_RDONLY);
  b.lea_data(Reg::R1, static_cast<int32_t>(in_path));
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("open");
  b.add_ri(Reg::SP, 16);
  b.store(Reg::BP, -8, Reg::R0);
  b.load(Reg::R1, Reg::BP, -8);
  b.lea_data(Reg::R2, static_cast<int32_t>(buf));
  b.mov_ri(Reg::R3, 64);
  b.push(Reg::R3);
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("read");
  b.add_ri(Reg::SP, 24);
  b.mov_ri(Reg::R2, libc::O_CREAT);
  b.lea_data(Reg::R1, static_cast<int32_t>(out_path));
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("open");
  b.add_ri(Reg::SP, 16);
  b.mov_rr(Reg::R1, Reg::R0);
  b.lea_data(Reg::R2, static_cast<int32_t>(buf));
  b.mov_ri(Reg::R3, 64);
  b.push(Reg::R3);
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("write");
  b.add_ri(Reg::SP, 24);
  b.load(Reg::R1, Reg::BP, -8);
  b.push(Reg::R1);
  b.call_sym("close");
  b.add_ri(Reg::SP, 8);
  b.leave_ret();
  b.end_function();
  return sso::FromCodeUnit("copytool.so", b.Finish(), {libc::kLibcName});
}

}  // namespace

int main() {
  // ---- Step 1: profile (the first of the paper's two commands). --------------
  std::printf("== Step 1: profiling libc (static binary analysis) ==\n");
  sso::SharedObject kernel = kernel::BuildKernelImage();
  sso::SharedObject libc_so = libc::BuildLibc();
  analysis::Workspace ws;
  ws.SetKernel(&kernel);
  ws.AddModule(&libc_so);
  core::Profiler profiler(ws);
  auto profile = profiler.ProfileLibrary(libc_so);
  if (!profile.ok()) {
    std::printf("profiling failed: %s\n", profile.error().c_str());
    return 1;
  }
  std::printf("profiled %zu exported functions\n\n",
              profile.value().functions.size());

  // The §3.3 sample: close() returns -1 with errno EBADF/EIO/EINTR.
  FILE* out = stdout;
  const core::FunctionProfile* close_fn = profile.value().function("close");
  if (close_fn) {
    core::FaultProfile snippet;
    snippet.library = profile.value().library;
    snippet.functions.push_back(*close_fn);
    std::fprintf(out, "close() profile (compare paper §3.3):\n%s\n",
                 snippet.ToXml().c_str());
  }

  // ---- Step 2: generate a scenario and run the target under it. -------------
  std::printf("== Step 2: fault injection run ==\n");
  std::vector<core::FaultProfile> profiles = {std::move(profile).take()};
  core::Plan plan = core::GenerateRandom(profiles, 0.3, /*seed=*/9);
  std::printf("generated random scenario with %zu triggers (p=0.3)\n",
              plan.triggers.size());

  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(BuildCopyTool());
  machine.kernel().add_file("/in", std::vector<uint8_t>(64, 'x'));

  core::Controller controller(machine);
  if (auto st = controller.Install(plan, profiles); !st.ok()) {
    std::printf("install failed: %s\n", st.error().c_str());
    return 1;
  }
  auto pid = machine.CreateProcess("main");
  if (!pid.ok()) {
    std::printf("%s\n", pid.error().c_str());
    return 1;
  }
  auto info = machine.RunToCompletion(pid.value());
  std::printf("process state: %s (exit=%lld)\n",
              info.state == vm::ProcState::Exited ? "exited" : "faulted",
              (long long)info.exit_code);

  std::printf("\n== Injection log ==\n%s", controller.log().ToText().c_str());
  std::printf("\n== Replay script ==\n%s",
              controller.GenerateReplay().ToXml().c_str());
  return 0;
}
