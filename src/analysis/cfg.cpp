#include "analysis/cfg.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/strings.hpp"

namespace lfi::analysis {

size_t Cfg::block_starting_at(uint32_t offset) const {
  for (size_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i].begin == offset) return i;
  }
  return SIZE_MAX;
}

std::pair<size_t, size_t> Cfg::CoveredBlocks(
    const std::function<bool(uint32_t)>& executed) const {
  size_t covered = 0;
  for (const BasicBlock& blk : blocks) {
    if (executed(blk.begin)) ++covered;
  }
  return {covered, blocks.size()};
}

size_t Cfg::instruction_count() const {
  size_t n = 0;
  for (const auto& b : blocks) n += b.instrs.size();
  return n;
}

size_t Cfg::indirect_branch_count() const {
  size_t n = 0;
  for (const auto& b : blocks) {
    for (const auto& ins : b.instrs) {
      if (ins.op == isa::Opcode::JMP_IND) ++n;
    }
  }
  return n;
}

size_t Cfg::indirect_call_count() const {
  size_t n = 0;
  for (const auto& b : blocks) {
    for (const auto& ins : b.instrs) {
      if (ins.op == isa::Opcode::CALL_IND) ++n;
    }
  }
  return n;
}

std::string Cfg::ToString() const {
  std::string out = Format("CFG of <%s> (%zu blocks)\n", function.c_str(),
                           blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    const BasicBlock& b = blocks[i];
    out += Format("B%zu [%x..%x)", i, b.begin, b.end);
    if (!b.succs.empty()) {
      out += " ->";
      for (size_t s : b.succs) out += Format(" B%zu", s);
    }
    if (b.ends_in_ret) out += "  (ret)";
    if (b.has_indirect_branch) out += "  (indirect: successors unknown)";
    out += "\n";
    for (const auto& ins : b.instrs) out += "  " + ins.ToString() + "\n";
  }
  return out;
}

Result<Cfg> BuildCfg(const sso::SharedObject& so, const isa::Symbol& fn) {
  uint32_t begin = fn.offset;
  uint32_t end = fn.offset + fn.size;
  auto decoded = isa::Disassemble(so.code, begin, end);
  if (!decoded.ok()) return Err(decoded.error());
  const std::vector<isa::Instr>& instrs = decoded.value();
  if (instrs.empty()) return Err("cfg: empty function " + fn.name);

  // Leaders: entry, branch targets (inside the function), post-terminator.
  std::set<uint32_t> leaders = {begin};
  for (const auto& ins : instrs) {
    if (ins.is_branch() && ins.op != isa::Opcode::JMP_IND) {
      uint32_t target = ins.rel_target();
      if (target >= begin && target < end) leaders.insert(target);
    }
    if (ins.is_terminator()) {
      uint32_t next = ins.offset + ins.size;
      if (next < end) leaders.insert(next);
    }
  }

  Cfg cfg;
  cfg.function = fn.name;
  cfg.entry_offset = begin;
  std::map<uint32_t, size_t> block_of_leader;
  for (uint32_t leader : leaders) {
    block_of_leader[leader] = cfg.blocks.size();
    BasicBlock b;
    b.begin = leader;
    cfg.blocks.push_back(std::move(b));
  }
  // Fill instructions.
  for (const auto& ins : instrs) {
    auto it = block_of_leader.upper_bound(ins.offset);
    --it;  // the leader at or before this instruction
    BasicBlock& b = cfg.blocks[it->second];
    b.instrs.push_back(ins);
    b.end = ins.offset + ins.size;
  }
  // Successor edges.
  for (size_t i = 0; i < cfg.blocks.size(); ++i) {
    BasicBlock& b = cfg.blocks[i];
    if (b.instrs.empty()) continue;
    const isa::Instr& last = b.instrs.back();
    auto link = [&](uint32_t target) {
      auto it = block_of_leader.find(target);
      if (it != block_of_leader.end()) {
        b.succs.push_back(it->second);
        cfg.blocks[it->second].preds.push_back(i);
      }
    };
    if (last.op == isa::Opcode::RET) {
      b.ends_in_ret = true;
    } else if (last.op == isa::Opcode::HALT ||
               last.op == isa::Opcode::ABORT) {
      // no successors
    } else if (last.op == isa::Opcode::JMP) {
      link(last.rel_target());
    } else if (last.is_cond_branch()) {
      link(last.rel_target());
      link(last.offset + last.size);  // fall-through
    } else if (last.op == isa::Opcode::JMP_IND) {
      b.has_indirect_branch = true;  // successors unknown (CFG incomplete)
    } else {
      // Block ended because the next instruction is a leader.
      link(last.offset + last.size);
    }
  }
  return cfg;
}

}  // namespace lfi::analysis
