// Control-flow graph construction (paper §3.1, Figure 2).
//
// Built per exported function from the disassembly. Leaders are the
// function entry, branch targets, and instructions following terminators.
// Calls do not terminate blocks (they fall through), matching the paper's
// CFG whose analyses step over calls via dependent-function recursion.
// Indirect branches leave the CFG incomplete; the block is flagged, and the
// prototype — like LFI's — proceeds despite the incompleteness (§3.1
// measures how rare these are).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "sso/sso.hpp"
#include "util/result.hpp"

namespace lfi::analysis {

struct BasicBlock {
  uint32_t begin = 0;  // offset of first instruction (module-relative)
  uint32_t end = 0;    // offset past last instruction
  std::vector<isa::Instr> instrs;
  std::vector<size_t> succs;
  std::vector<size_t> preds;
  bool ends_in_ret = false;
  bool has_indirect_branch = false;  // JMP_IND terminator: unknown succs
};

struct Cfg {
  std::string function;
  uint32_t entry_offset = 0;
  std::vector<BasicBlock> blocks;  // blocks[0] is the entry block

  /// Index of the block starting at `offset`; SIZE_MAX if none.
  size_t block_starting_at(uint32_t offset) const;

  /// Block-level coverage projection: count blocks whose first
  /// instruction satisfies `executed` (pass a coverage bitmap's Test).
  /// Returns (covered blocks, total blocks).
  std::pair<size_t, size_t> CoveredBlocks(
      const std::function<bool(uint32_t)>& executed) const;

  size_t instruction_count() const;
  size_t indirect_branch_count() const;
  size_t indirect_call_count() const;

  /// Figure-2 style listing: one block per paragraph with successor edges.
  std::string ToString() const;
};

/// Build the CFG of `fn` within `so`. Fails on undecodable bytes.
Result<Cfg> BuildCfg(const sso::SharedObject& so, const isa::Symbol& fn);

}  // namespace lfi::analysis
