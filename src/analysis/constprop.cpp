#include "analysis/constprop.hpp"

#include <algorithm>
#include <cassert>

#include "analysis/side_effects.hpp"
#include "isa/codebuilder.hpp"
#include "util/strings.hpp"

namespace lfi::analysis {

using isa::Opcode;
using isa::Reg;

void MergeEffect(std::vector<SideEffect>* list, const SideEffect& effect) {
  for (auto& existing : *list) {
    if (existing.same_location(effect)) {
      existing.values.insert(effect.values.begin(), effect.values.end());
      existing.unknown_values |= effect.unknown_values;
      return;
    }
  }
  list->push_back(effect);
}

// -- Workspace ----------------------------------------------------------------

std::optional<Workspace::Fn> Workspace::ResolveFunction(
    const std::string& name) const {
  for (const sso::SharedObject* so : modules_) {
    if (const isa::Symbol* sym = so->find_export(name)) {
      return Fn{so, sym};
    }
  }
  return std::nullopt;
}

std::optional<Workspace::Fn> Workspace::ResolveSyscall(uint16_t number) const {
  if (!kernel_) return std::nullopt;
  const kernel::SyscallSpec* spec = kernel::FindSyscall(number);
  if (!spec) return std::nullopt;
  if (const isa::Symbol* sym = kernel_->find_export(kernel::HandlerName(*spec))) {
    return Fn{kernel_, sym};
  }
  return std::nullopt;
}

// -- engine internals ---------------------------------------------------------

namespace {

/// A tracked location: a register or a BP-relative stack slot.
struct Loc {
  enum class Kind { Register, Slot };
  Kind kind = Kind::Register;
  int v = 0;  // register number, or BP displacement

  static Loc R(Reg r) { return {Kind::Register, static_cast<int>(r)}; }
  static Loc S(int disp) { return {Kind::Slot, disp}; }
  bool is_reg(Reg r) const {
    return kind == Kind::Register && v == static_cast<int>(r);
  }
  bool operator==(const Loc& o) const = default;
  bool operator<(const Loc& o) const {
    return std::tie(kind, v) < std::tie(o.kind, o.v);
  }
};

struct Transform {
  enum class Op { Neg, Not, Add, Sub, And, Or, Xor, Mul };
  Op op;
  int64_t k = 0;

  int64_t apply(int64_t v) const {
    switch (op) {
      case Op::Neg: return -v;
      case Op::Not: return ~v;
      case Op::Add: return v + k;
      case Op::Sub: return v - k;
      case Op::And: return v & k;
      case Op::Or: return v | k;
      case Op::Xor: return v ^ k;
      case Op::Mul: return v * k;
    }
    return v;
  }
};

/// A branch-feasibility constraint, valid for the value of the tracked
/// location at the moment the edge was crossed (chain_len transforms had
/// been collected at that point).
struct Constraint {
  enum class Rel { Eq, Ne, Lt, Le, Gt, Ge };
  Rel rel;
  int64_t k = 0;
  size_t chain_len = 0;

  bool check(int64_t v) const {
    switch (rel) {
      case Rel::Eq: return v == k;
      case Rel::Ne: return v != k;
      case Rel::Lt: return v < k;
      case Rel::Le: return v <= k;
      case Rel::Gt: return v > k;
      case Rel::Ge: return v >= k;
    }
    return true;
  }
  static Rel Negate(Rel r) {
    switch (r) {
      case Rel::Eq: return Rel::Ne;
      case Rel::Ne: return Rel::Eq;
      case Rel::Lt: return Rel::Ge;
      case Rel::Le: return Rel::Gt;
      case Rel::Gt: return Rel::Le;
      case Rel::Ge: return Rel::Lt;
    }
    return r;
  }
};

/// One result of a backward query.
struct Finding {
  std::optional<int64_t> value;  // nullopt: a non-constant can reach here
  int hops = 0;
  std::vector<SideEffect> inherited;  // effects of dependent callees
  std::vector<size_t> path_blocks;
};

struct DfsState {
  Loc loc;
  std::vector<Transform> chain;
  std::vector<Constraint> constraints;
  std::map<size_t, int> visits;      // per-path block revisit counts
  std::vector<size_t> path;
  int hops = 0;
};

}  // namespace

// -- Impl ----------------------------------------------------------------------

class ConstPropAnalyzer::Impl {
 public:
  Impl(const Workspace& ws, AnalysisOptions opts) : ws_(ws), opts_(opts) {}

  const Workspace& ws_;
  AnalysisOptions opts_;

  using FnKey = std::pair<const sso::SharedObject*, std::string>;
  std::map<FnKey, FunctionSummary> cache_;
  std::map<FnKey, Cfg> cfg_cache_;
  std::set<FnKey> in_progress_;
  uint64_t total_states_ = 0;
  uint64_t full_states_ = 0;

  Result<const Cfg*> GetCfg(const sso::SharedObject& so,
                            const isa::Symbol& sym) {
    FnKey key{&so, sym.name};
    auto it = cfg_cache_.find(key);
    if (it != cfg_cache_.end()) return &it->second;
    auto cfg = BuildCfg(so, sym);
    if (!cfg.ok()) return Err(cfg.error());
    auto [pos, inserted] = cfg_cache_.emplace(key, std::move(cfg).take());
    (void)inserted;
    return &pos->second;
  }

  Result<FunctionSummary> Analyze(const sso::SharedObject& so,
                                  const std::string& function, int depth);

  /// Backward query: values of `loc` just before instruction `from_idx+1`
  /// of block `start` (i.e. scanning starts at instruction index from_idx).
  std::vector<Finding> Solve(const Cfg& cfg, const sso::SharedObject& so,
                             size_t start, int from_idx, Loc loc, int depth,
                             uint64_t* states, bool* incomplete);

 private:
  void Walk(const Cfg& cfg, const sso::SharedObject& so, size_t b,
            int from_idx, DfsState st, int depth, uint64_t* states,
            bool* incomplete, std::vector<Finding>* out, bool* unknown_emitted);

  /// Emit a constant source, applying transforms and checking constraints.
  static void EmitConstant(int64_t c, const DfsState& st, int extra_hops,
                           std::vector<SideEffect> inherited,
                           std::vector<Finding>* out);
  static void EmitUnknown(const DfsState& st, std::vector<Finding>* out,
                          bool* unknown_emitted);
};

void ConstPropAnalyzer::Impl::EmitConstant(int64_t c, const DfsState& st,
                                           int extra_hops,
                                           std::vector<SideEffect> inherited,
                                           std::vector<Finding>* out) {
  // Apply the collected transforms from the source toward the use point,
  // validating each feasibility constraint at the chain position where the
  // corresponding edge was crossed.
  int64_t v = c;
  size_t n = st.chain.size();
  auto check_at = [&](size_t pos, int64_t value) {
    for (const Constraint& con : st.constraints) {
      if (con.chain_len == pos && !con.check(value)) return false;
    }
    return true;
  };
  if (!check_at(n, v)) return;
  for (size_t j = n; j-- > 0;) {
    v = st.chain[j].apply(v);
    if (!check_at(j, v)) return;
  }
  Finding f;
  f.value = v;
  f.hops = st.hops + extra_hops;
  f.inherited = std::move(inherited);
  f.path_blocks = st.path;
  out->push_back(std::move(f));
}

void ConstPropAnalyzer::Impl::EmitUnknown(const DfsState& st,
                                          std::vector<Finding>* out,
                                          bool* unknown_emitted) {
  if (*unknown_emitted) return;
  *unknown_emitted = true;
  Finding f;
  f.value = std::nullopt;
  f.path_blocks = st.path;
  out->push_back(std::move(f));
}

std::vector<Finding> ConstPropAnalyzer::Impl::Solve(
    const Cfg& cfg, const sso::SharedObject& so, size_t start, int from_idx,
    Loc loc, int depth, uint64_t* states, bool* incomplete) {
  std::vector<Finding> out;
  bool unknown_emitted = false;
  DfsState st;
  st.loc = loc;
  Walk(cfg, so, start, from_idx, std::move(st), depth, states, incomplete,
       &out, &unknown_emitted);
  return out;
}

void ConstPropAnalyzer::Impl::Walk(const Cfg& cfg, const sso::SharedObject& so,
                                   size_t b, int from_idx, DfsState st,
                                   int depth, uint64_t* states,
                                   bool* incomplete, std::vector<Finding>* out,
                                   bool* unknown_emitted) {
  if (++*states > opts_.max_states || st.path.size() > 128) {
    *incomplete = true;
    EmitUnknown(st, out, unknown_emitted);
    return;
  }
  ++total_states_;
  st.path.push_back(b);
  const BasicBlock& blk = cfg.blocks[b];

  for (int k = from_idx; k >= 0; --k) {
    const isa::Instr& ins = blk.instrs[static_cast<size_t>(k)];
    const Loc& L = st.loc;
    switch (ins.op) {
      case Opcode::MOV_RI:
        if (L.is_reg(ins.a)) {
          EmitConstant(ins.imm, st, 0, {}, out);
          return;
        }
        break;
      case Opcode::MOV_RR:
        if (L.is_reg(ins.a)) {
          st.loc = Loc::R(ins.b);
          ++st.hops;
        }
        break;
      case Opcode::LOAD:
        if (L.is_reg(ins.a)) {
          if (ins.b == Reg::BP) {
            st.loc = Loc::S(ins.disp);
            ++st.hops;
          } else {
            EmitUnknown(st, out, unknown_emitted);  // arbitrary memory
            return;
          }
        }
        break;
      case Opcode::STORE:
        if (L.kind == Loc::Kind::Slot && ins.a == Reg::BP &&
            ins.disp == L.v) {
          st.loc = Loc::R(ins.b);
          ++st.hops;
        }
        break;
      case Opcode::STORE_I:
        if (L.kind == Loc::Kind::Slot && ins.a == Reg::BP &&
            ins.disp == L.v) {
          EmitConstant(ins.imm, st, 0, {}, out);
          return;
        }
        break;
      case Opcode::LEA:
      case Opcode::LEA_DATA:
      case Opcode::LEA_TLS:
        if (L.is_reg(ins.a)) {
          EmitUnknown(st, out, unknown_emitted);  // an address, not a code
          return;
        }
        break;
      case Opcode::POP:
        if (L.is_reg(ins.a)) {
          EmitUnknown(st, out, unknown_emitted);
          return;
        }
        break;
      case Opcode::NEG:
        if (L.is_reg(ins.a)) st.chain.push_back({Transform::Op::Neg, 0});
        break;
      case Opcode::NOT:
        if (L.is_reg(ins.a)) st.chain.push_back({Transform::Op::Not, 0});
        break;
      case Opcode::ADD_RI:
        if (L.is_reg(ins.a)) st.chain.push_back({Transform::Op::Add, ins.imm});
        break;
      case Opcode::SUB_RI:
        if (L.is_reg(ins.a)) st.chain.push_back({Transform::Op::Sub, ins.imm});
        break;
      case Opcode::AND_RI:
        if (L.is_reg(ins.a)) {
          if (ins.imm == 0) {
            EmitConstant(0, st, 0, {}, out);
            return;
          }
          st.chain.push_back({Transform::Op::And, ins.imm});
        }
        break;
      case Opcode::OR_RI:
        if (L.is_reg(ins.a)) {
          if (ins.imm == -1) {  // "or eax, 0xffffffff" in the §3.2 listing
            EmitConstant(-1, st, 0, {}, out);
            return;
          }
          st.chain.push_back({Transform::Op::Or, ins.imm});
        }
        break;
      case Opcode::XOR_RI:
        if (L.is_reg(ins.a)) st.chain.push_back({Transform::Op::Xor, ins.imm});
        break;
      case Opcode::MUL_RI:
        if (L.is_reg(ins.a)) {
          if (ins.imm == 0) {
            EmitConstant(0, st, 0, {}, out);
            return;
          }
          st.chain.push_back({Transform::Op::Mul, ins.imm});
        }
        break;
      case Opcode::XOR_RR:
        if (L.is_reg(ins.a)) {
          if (ins.a == ins.b) {  // xor r, r: the canonical zero idiom
            EmitConstant(0, st, 0, {}, out);
            return;
          }
          EmitUnknown(st, out, unknown_emitted);
          return;
        }
        break;
      case Opcode::ADD_RR:
      case Opcode::SUB_RR:
      case Opcode::AND_RR:
      case Opcode::OR_RR:
      case Opcode::MUL_RR:
        if (L.is_reg(ins.a)) {
          EmitUnknown(st, out, unknown_emitted);
          return;
        }
        break;
      case Opcode::CALL:
      case Opcode::CALL_SYM:
      case Opcode::SYSCALL: {
        if (L.kind != Loc::Kind::Register) break;  // memory survives calls
        Reg r = static_cast<Reg>(L.v);
        if (r == Reg::SP || r == Reg::BP) break;
        if (r != Reg::R0) {
          // Scratch registers are clobbered by calls.
          EmitUnknown(st, out, unknown_emitted);
          return;
        }
        // Dependent function: propagate all of its return values (§3.1).
        std::optional<Workspace::Fn> callee;
        if (ins.op == Opcode::CALL_SYM) {
          if (ins.u16 < so.imports.size()) {
            callee = ws_.ResolveFunction(so.imports[ins.u16]);
          }
        } else if (ins.op == Opcode::SYSCALL) {
          callee = ws_.ResolveSyscall(ins.u16);
        } else {
          // Direct intra-module call: resolve by target offset.
          uint32_t target = ins.rel_target();
          const isa::Symbol* sym = so.symbol_at(target);
          if (sym && sym->offset == target) {
            callee = Workspace::Fn{&so, sym};
          }
        }
        if (!callee || depth >= opts_.max_call_depth) {
          *incomplete = !callee ? *incomplete : true;
          EmitUnknown(st, out, unknown_emitted);
          return;
        }
        auto summary = Analyze(*callee->module, callee->symbol->name,
                               depth + 1);
        if (!summary.ok()) {
          EmitUnknown(st, out, unknown_emitted);
          return;
        }
        const FunctionSummary& s = summary.value();
        for (const ErrorReturn& er : s.returns) {
          std::vector<SideEffect> inherited = er.effects;
          for (const SideEffect& fe : s.effects) MergeEffect(&inherited, fe);
          EmitConstant(er.value, st, 1 + er.hops, std::move(inherited), out);
        }
        if (s.returns_unknown) EmitUnknown(st, out, unknown_emitted);
        return;
      }
      case Opcode::CALL_IND:
        if (L.kind == Loc::Kind::Register) {
          Reg r = static_cast<Reg>(L.v);
          if (r != Reg::SP && r != Reg::BP) {
            // Indirect call: target unknown to static analysis (§3.1's
            // accuracy limitation) — the value is lost here.
            *incomplete = true;
            EmitUnknown(st, out, unknown_emitted);
            return;
          }
        }
        break;
      case Opcode::KCALL:
        if (L.is_reg(Reg::R0) || L.is_reg(Reg::R1)) {
          EmitUnknown(st, out, unknown_emitted);  // native result
          return;
        }
        break;
      default:
        break;  // NOP, CMP, branches, PUSH, RET: no tracked writes
    }
    if (static_cast<int>(st.chain.size()) > opts_.max_transforms) {
      EmitUnknown(st, out, unknown_emitted);
      return;
    }
  }

  // Reached the beginning of the block.
  if (b == 0) {
    // Function entry: the value comes from the caller (an argument slot or
    // an incoming register) — not a constant of this function.
    EmitUnknown(st, out, unknown_emitted);
    return;
  }
  if (blk.preds.empty()) {
    EmitUnknown(st, out, unknown_emitted);
    return;
  }
  for (size_t p : blk.preds) {
    if (st.visits[p] >= opts_.max_block_revisits) continue;
    DfsState ns = st;
    ns.visits[p]++;
    const BasicBlock& pred = cfg.blocks[p];
    // Branch feasibility: if the predecessor ends in a conditional branch
    // guarded by a CMP on the tracked register, constrain the value along
    // this edge.
    if (!pred.instrs.empty() && st.loc.kind == Loc::Kind::Register) {
      const isa::Instr& term = pred.instrs.back();
      if (term.is_cond_branch()) {
        bool taken = term.rel_target() == blk.begin;
        bool fallthrough = term.offset + term.size == blk.begin;
        if (taken != fallthrough) {  // unambiguous edge
          // Find the guarding CMP and ensure the register is not written
          // between the CMP and the branch.
          for (size_t q = pred.instrs.size() - 1; q-- > 0;) {
            const isa::Instr& c = pred.instrs[q];
            if (c.op == Opcode::CMP_RI &&
                st.loc.is_reg(c.a)) {
              Constraint::Rel rel;
              switch (term.op) {
                case Opcode::JE: rel = Constraint::Rel::Eq; break;
                case Opcode::JNE: rel = Constraint::Rel::Ne; break;
                case Opcode::JLT: rel = Constraint::Rel::Lt; break;
                case Opcode::JLE: rel = Constraint::Rel::Le; break;
                case Opcode::JGT: rel = Constraint::Rel::Gt; break;
                default: rel = Constraint::Rel::Ge; break;  // JGE
              }
              if (!taken) rel = Constraint::Negate(rel);
              ns.constraints.push_back({rel, c.imm, ns.chain.size()});
              break;
            }
            if (c.op == Opcode::CMP_RR || c.op == Opcode::CMP_RI) break;
            // A write to the tracked register between CMP and branch voids
            // the constraint; stop looking.
            bool writes = false;
            switch (isa::LayoutOf(c.op)) {
              case isa::OperandLayout::R:
              case isa::OperandLayout::RR:
              case isa::OperandLayout::RI:
              case isa::OperandLayout::RRD:
              case isa::OperandLayout::RD:
                writes = c.op != Opcode::PUSH && c.op != Opcode::CMP_RI &&
                         c.op != Opcode::CMP_RR && st.loc.is_reg(c.a);
                break;
              default:
                break;
            }
            if (writes) break;
          }
        }
      }
    }
    Walk(cfg, so, p, static_cast<int>(pred.instrs.size()) - 1, std::move(ns),
         depth, states, incomplete, out, unknown_emitted);
  }
}

Result<FunctionSummary> ConstPropAnalyzer::Impl::Analyze(
    const sso::SharedObject& so, const std::string& function, int depth) {
  FnKey key{&so, function};
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  if (in_progress_.count(key)) {
    // Recursive dependency cycle: treat as unknown (no constants).
    FunctionSummary s;
    s.module = so.name;
    s.function = function;
    s.returns_unknown = true;
    return s;
  }
  const isa::Symbol* sym = so.find_export(function);
  if (!sym) return Err("constprop: no export " + function + " in " + so.name);
  auto cfg_res = GetCfg(so, *sym);
  if (!cfg_res.ok()) return Err(cfg_res.error());
  const Cfg& cfg = *cfg_res.value();

  in_progress_.insert(key);

  FunctionSummary summary;
  summary.module = so.name;
  summary.function = function;
  summary.instruction_count = cfg.instruction_count();

  // G' accounting: a full expansion materializes |blocks| x |locations|
  // nodes; on-demand only touches what the queries visit.
  std::set<int> slots;
  for (const auto& blk : cfg.blocks) {
    for (const auto& ins : blk.instrs) {
      if ((ins.op == Opcode::LOAD || ins.op == Opcode::STORE ||
           ins.op == Opcode::STORE_I) &&
          (ins.op == Opcode::LOAD ? ins.b : ins.a) == Reg::BP) {
        slots.insert(ins.disp);
      }
    }
  }
  uint64_t locations = isa::kNumRegs + slots.size();
  full_states_ += cfg.blocks.size() * locations;
  if (!opts_.on_demand) {
    // Model the cost of eager expansion in the explored-state counter.
    summary.states_explored += cfg.blocks.size() * locations;
    total_states_ += cfg.blocks.size() * locations;
  }

  bool incomplete = false;
  std::vector<Finding> all;
  for (size_t bi = 0; bi < cfg.blocks.size(); ++bi) {
    const BasicBlock& blk = cfg.blocks[bi];
    if (!blk.ends_in_ret || blk.instrs.empty()) continue;
    uint64_t states = 0;
    auto findings =
        Solve(cfg, so, bi, static_cast<int>(blk.instrs.size()) - 1,
              Loc::R(Reg::R0), depth, &states, &incomplete);
    summary.states_explored += states;
    for (auto& f : findings) all.push_back(std::move(f));
  }
  for (const auto& blk : cfg.blocks) {
    if (blk.has_indirect_branch) incomplete = true;
  }

  // Per-block side-effect cache for this function.
  std::vector<std::optional<std::vector<SideEffect>>> block_effects(
      cfg.blocks.size());
  auto solver = [&](size_t block_idx, size_t instr_idx,
                    Reg src) -> ValueSet {
    uint64_t states = 0;
    bool inc = false;
    auto findings = Solve(cfg, so, block_idx, static_cast<int>(instr_idx) - 1,
                          Loc::R(src), depth, &states, &inc);
    summary.states_explored += states;
    ValueSet vs;
    for (const auto& f : findings) {
      if (f.value) {
        vs.constants.insert(*f.value);
      } else {
        vs.unknown = true;
      }
    }
    return vs;
  };
  auto effects_of_block = [&](size_t bi) -> const std::vector<SideEffect>& {
    if (!block_effects[bi]) {
      block_effects[bi] = ScanBlockEffects(cfg, bi, so.name, solver);
    }
    return *block_effects[bi];
  };

  // Fold findings into per-value error returns with associated effects.
  for (const Finding& f : all) {
    if (!f.value) {
      summary.returns_unknown = true;
      continue;
    }
    ErrorReturn* er = nullptr;
    for (auto& existing : summary.returns) {
      if (existing.value == *f.value) {
        er = &existing;
        break;
      }
    }
    if (!er) {
      summary.returns.push_back(ErrorReturn{*f.value, {}, f.hops});
      er = &summary.returns.back();
    }
    er->hops = std::max(er->hops, f.hops);
    summary.max_hops = std::max(summary.max_hops, f.hops);
    for (const SideEffect& e : f.inherited) MergeEffect(&er->effects, e);
    // §3.2: scan the blocks on the propagation path for side-effect writes.
    for (size_t bi : f.path_blocks) {
      for (const SideEffect& e : effects_of_block(bi)) {
        MergeEffect(&er->effects, e);
      }
    }
  }
  std::sort(summary.returns.begin(), summary.returns.end(),
            [](const ErrorReturn& a, const ErrorReturn& b) {
              return a.value < b.value;
            });
  for (const ErrorReturn& er : summary.returns) {
    for (const SideEffect& e : er.effects) MergeEffect(&summary.effects, e);
  }
  summary.incomplete = incomplete;

  in_progress_.erase(key);
  cache_.emplace(key, summary);
  return summary;
}

// -- public API ----------------------------------------------------------------

ConstPropAnalyzer::ConstPropAnalyzer(const Workspace& ws, AnalysisOptions opts)
    : impl_(std::make_unique<Impl>(ws, opts)) {}

ConstPropAnalyzer::~ConstPropAnalyzer() = default;

Result<FunctionSummary> ConstPropAnalyzer::Analyze(
    const sso::SharedObject& so, const std::string& function) {
  return impl_->Analyze(so, function, 0);
}

Result<std::vector<SideEffect>> ConstPropAnalyzer::ScanAllEffects(
    const sso::SharedObject& so, const std::string& function) {
  const isa::Symbol* sym = so.find_export(function);
  if (!sym) return Err("constprop: no export " + function + " in " + so.name);
  auto cfg_res = impl_->GetCfg(so, *sym);
  if (!cfg_res.ok()) return Err(cfg_res.error());
  const Cfg& cfg = *cfg_res.value();
  std::vector<SideEffect> out;
  auto solver = [&](size_t block_idx, size_t instr_idx, Reg src) -> ValueSet {
    uint64_t states = 0;
    bool inc = false;
    auto findings =
        impl_->Solve(cfg, so, block_idx, static_cast<int>(instr_idx) - 1,
                     Loc::R(src), 0, &states, &inc);
    ValueSet vs;
    for (const auto& f : findings) {
      if (f.value) vs.constants.insert(*f.value);
      else vs.unknown = true;
    }
    return vs;
  };
  for (size_t bi = 0; bi < cfg.blocks.size(); ++bi) {
    for (const SideEffect& e : ScanBlockEffects(cfg, bi, so.name, solver)) {
      MergeEffect(&out, e);
    }
  }
  return out;
}

uint64_t ConstPropAnalyzer::total_states_explored() const {
  return impl_->total_states_;
}

uint64_t ConstPropAnalyzer::full_expansion_states() const {
  return impl_->full_states_;
}

}  // namespace lfi::analysis
