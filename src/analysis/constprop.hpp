// Reverse constant propagation over the product graph G' = CFG × locations
// (paper §3.1).
//
// For every exit block, the analyzer searches *backward* from the last
// write to the return location (R0, the eax analogue) for the constants
// that can propagate there. States are (basic block, location) pairs —
// exactly the paper's G' — expanded on demand. The walk tracks:
//   - location switches through MOV / stack-slot spills (the "hops" of
//     §6.2, observed to be <= 3 thanks to compiler constant folding),
//   - affine transforms (NEG / ADD / SUB / XOR ...) so value sets such as
//     "errno = -eax" carry the right constants (§3.2's listing),
//   - dependent functions: CALL_SYM recurses into the callee's summary
//     ("we consider all of the dependent function's return values to be
//     propagated"), cross-module and into the kernel image for SYSCALL,
//   - branch feasibility on compare-and-branch guards, so a wrapper's
//     success path does not leak the kernel's negative error constants as
//     return values of the wrapper itself,
//   - indirect calls/branches, which terminate the search unresolved and
//     mark the summary incomplete — the accuracy limitation §3.1 measures.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "kernel/syscalls.hpp"
#include "sso/sso.hpp"
#include "util/result.hpp"

namespace lfi::analysis {

/// A discovered error-communication side channel (§3.2).
struct SideEffect {
  enum class Kind { Tls, Global, Arg };
  Kind kind = Kind::Tls;
  std::string module;        // module owning the TLS/global location
  uint32_t offset = 0;       // module-relative offset (Tls / Global)
  int arg_index = 0;         // output-argument index (Arg)
  std::set<int64_t> values;  // constants that can be stored there
  bool unknown_values = false;

  bool same_location(const SideEffect& o) const {
    return kind == o.kind && module == o.module && offset == o.offset &&
           arg_index == o.arg_index;
  }
};

/// One possible error return value with its associated side effects.
struct ErrorReturn {
  int64_t value = 0;
  std::vector<SideEffect> effects;
  int hops = 0;  // propagation hops to the return location
};

/// Per-function analysis result.
struct FunctionSummary {
  std::string module;
  std::string function;
  std::vector<ErrorReturn> returns;   // constant return values
  bool returns_unknown = false;       // some path returns a non-constant
  std::vector<SideEffect> effects;    // union over all error returns
  int max_hops = 0;
  uint64_t states_explored = 0;       // G' states this function cost
  bool incomplete = false;            // indirect control flow encountered
  size_t instruction_count = 0;       // function size (heuristic #2 input)

  const ErrorReturn* find_return(int64_t value) const {
    for (const auto& r : returns) {
      if (r.value == value) return &r;
    }
    return nullptr;
  }
};

struct AnalysisOptions {
  uint64_t max_states = 8192;   // per-query exploration budget
  int max_transforms = 4;
  int max_block_revisits = 2;   // per path (loops)
  int max_call_depth = 16;      // dependent-function recursion
  /// §3.1: "the profiler generates G' on-demand, only expanding the nodes
  /// of interest". Setting this false pre-expands every (block, location)
  /// pair up front — the ablation benchmark quantifies the difference.
  bool on_demand = true;
};

/// The set of binaries under analysis: the target library, the libraries it
/// depends on, and the kernel image for syscall propagation.
class Workspace {
 public:
  void AddModule(const sso::SharedObject* so) { modules_.push_back(so); }
  void SetKernel(const sso::SharedObject* kernel) {
    kernel_ = kernel;
    AddModule(kernel);
  }

  struct Fn {
    const sso::SharedObject* module = nullptr;
    const isa::Symbol* symbol = nullptr;
  };

  /// First module (in add order) exporting `name`.
  std::optional<Fn> ResolveFunction(const std::string& name) const;
  /// Kernel handler for a syscall number.
  std::optional<Fn> ResolveSyscall(uint16_t number) const;

  const std::vector<const sso::SharedObject*>& modules() const {
    return modules_;
  }

 private:
  std::vector<const sso::SharedObject*> modules_;
  const sso::SharedObject* kernel_ = nullptr;
};

class ConstPropAnalyzer {
 public:
  explicit ConstPropAnalyzer(const Workspace& ws, AnalysisOptions opts = {});
  ~ConstPropAnalyzer();

  /// Analyze one exported function (memoized).
  Result<FunctionSummary> Analyze(const sso::SharedObject& so,
                                  const std::string& function);

  /// Side effects found anywhere in the function (not only on error-return
  /// paths) — Table 1 accounting for functions reporting via channels
  /// without constant returns.
  Result<std::vector<SideEffect>> ScanAllEffects(const sso::SharedObject& so,
                                                 const std::string& function);

  /// Total G' states explored across all queries so far.
  uint64_t total_states_explored() const;
  /// Number of (block, location) nodes a full expansion would allocate
  /// (for the on-demand vs full-expansion ablation).
  uint64_t full_expansion_states() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

/// Merge a side effect into a list, unioning value sets per location.
void MergeEffect(std::vector<SideEffect>* list, const SideEffect& effect);

}  // namespace lfi::analysis
