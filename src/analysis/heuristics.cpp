#include "analysis/heuristics.hpp"

#include <algorithm>

namespace lfi::analysis {

FunctionSummary ApplyHeuristics(const FunctionSummary& summary,
                                const HeuristicOptions& opts) {
  FunctionSummary out = summary;

  if (opts.drop_short_predicates &&
      out.instruction_count <= opts.short_function_max_instructions &&
      !out.returns.empty() && out.effects.empty()) {
    bool only_bool = std::all_of(
        out.returns.begin(), out.returns.end(),
        [](const ErrorReturn& r) { return r.value == 0 || r.value == 1; });
    if (only_bool) {
      out.returns.clear();
      return out;
    }
  }

  if (opts.drop_success_zero && out.returns.size() >= 2) {
    out.returns.erase(
        std::remove_if(out.returns.begin(), out.returns.end(),
                       [](const ErrorReturn& r) { return r.value == 0; }),
        out.returns.end());
  }

  return out;
}

}  // namespace lfi::analysis
