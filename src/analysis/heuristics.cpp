#include "analysis/heuristics.hpp"

#include <algorithm>
#include <set>

namespace lfi::analysis {

FunctionSummary ApplyHeuristics(const FunctionSummary& summary,
                                const HeuristicOptions& opts) {
  FunctionSummary out = summary;

  if (opts.drop_short_predicates &&
      out.instruction_count <= opts.short_function_max_instructions &&
      !out.returns.empty() && out.effects.empty()) {
    bool only_bool = std::all_of(
        out.returns.begin(), out.returns.end(),
        [](const ErrorReturn& r) { return r.value == 0 || r.value == 1; });
    if (only_bool) {
      out.returns.clear();
      return out;
    }
  }

  if (opts.drop_success_zero && out.returns.size() >= 2) {
    out.returns.erase(
        std::remove_if(out.returns.begin(), out.returns.end(),
                       [](const ErrorReturn& r) { return r.value == 0; }),
        out.returns.end());
  }

  return out;
}

std::vector<size_t> ErrorHandlingBlocks(const Cfg& cfg) {
  std::set<size_t> out;
  for (size_t i = 0; i < cfg.blocks.size(); ++i) {
    const BasicBlock& b = cfg.blocks[i];
    // Abort handlers are error handling by definition.
    for (const isa::Instr& ins : b.instrs) {
      if (ins.op == isa::Opcode::ABORT) {
        out.insert(i);
        break;
      }
    }
    if (b.instrs.empty()) continue;
    const isa::Instr& last = b.instrs.back();
    if (!last.is_cond_branch()) continue;
    // The branch must be guarded by a constant test of the return register
    // against an error-shaped constant (<= 0; negative retvals and NULL).
    // The last flag write in the block is the one the branch reads.
    const isa::Instr* cmp = nullptr;
    for (const isa::Instr& ins : b.instrs) {
      if (ins.op == isa::Opcode::CMP_RI || ins.op == isa::Opcode::CMP_RR) {
        cmp = &ins;
      }
    }
    if (cmp == nullptr || cmp->op != isa::Opcode::CMP_RI) continue;
    if (cmp->a != isa::Reg::R0 || cmp->imm > 0) continue;
    // The failure side is taken when R0 is negative / equals the error
    // constant: success-jump shapes fall through into the handler,
    // failure-jump shapes branch into it.
    uint32_t fail_offset = 0;
    switch (last.op) {
      case isa::Opcode::JGE:
      case isa::Opcode::JGT:
      case isa::Opcode::JNE:
        fail_offset = last.offset + last.size;
        break;
      case isa::Opcode::JLT:
      case isa::Opcode::JLE:
      case isa::Opcode::JE:
        fail_offset = last.rel_target();
        break;
      default:
        continue;
    }
    size_t fail = cfg.block_starting_at(fail_offset);
    if (fail != SIZE_MAX) out.insert(fail);
  }
  return std::vector<size_t>(out.begin(), out.end());
}

}  // namespace lfi::analysis
