// The two optional, unsound pruning heuristics of §3.1.
//
// Both are DISABLED by default, as in the paper: "we prefer to risk
// injecting some non-faults rather than miss valid faults."
//   1. Success-return removal: drop 0 from functions with more than one
//      constant return value (a lone 0 is likely a NULL-pointer error
//      return and is kept).
//   2. Short-predicate elimination: drop short functions that return only
//      0/1 with no side effects — isFile()-style checks where neither
//      value is a failure.
#pragma once

#include "analysis/constprop.hpp"

namespace lfi::analysis {

struct HeuristicOptions {
  bool drop_success_zero = false;
  bool drop_short_predicates = false;
  // Covers the isFile() shape: prologue + one compare + two constant
  // returns (13 instructions on this ISA).
  size_t short_function_max_instructions = 16;
};

/// Apply the enabled heuristics to a summary, returning the pruned copy.
FunctionSummary ApplyHeuristics(const FunctionSummary& summary,
                                const HeuristicOptions& opts);

/// Indices of `cfg`'s blocks that look like error-handling code — the
/// recovery paths fault injection exists to execute:
///   - the failure-side successor of an error check: a block ending in a
///     conditional branch guarded by a constant compare against the return
///     register (cmp R0, k with k <= 0 — the shape retval checks compile
///     to). Which successor is the failure side follows the condition:
///     success-jump shapes (JGE/JGT/JNE) fail into the fall-through,
///     failure-jump shapes (JLT/JLE/JE) fail into the branch target.
///   - any block containing ABORT (assertion/abort handlers).
/// Deterministic: ascending block indices, no duplicates. Used by the
/// explorer's CFG-distance fitness and the directed-exploration bench, so
/// both count "error-handling blocks" identically.
std::vector<size_t> ErrorHandlingBlocks(const Cfg& cfg);

}  // namespace lfi::analysis
