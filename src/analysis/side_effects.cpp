#include "analysis/side_effects.hpp"

#include "isa/codebuilder.hpp"

namespace lfi::analysis {

namespace {

/// What a register is known to point at, per the §3.2 base-address rules.
struct Base {
  enum class Kind { None, Tls, Global, ArgPtr };
  Kind kind = Kind::None;
  int64_t offset = 0;  // accumulated displacement (Tls / Global)
  int arg_index = 0;   // ArgPtr
};

}  // namespace

std::vector<SideEffect> ScanBlockEffects(const Cfg& cfg, size_t block_idx,
                                         const std::string& module_name,
                                         const ValueSolver& solver) {
  using isa::Opcode;
  const BasicBlock& blk = cfg.blocks[block_idx];
  std::vector<SideEffect> out;
  Base bases[isa::kNumRegs] = {};

  auto invalidate = [&](isa::Reg r) {
    bases[static_cast<size_t>(r)] = Base{};
  };
  auto base_of = [&](isa::Reg r) -> Base& {
    return bases[static_cast<size_t>(r)];
  };

  for (size_t k = 0; k < blk.instrs.size(); ++k) {
    const isa::Instr& ins = blk.instrs[k];
    switch (ins.op) {
      case Opcode::LEA_TLS:
        base_of(ins.a) = Base{Base::Kind::Tls, ins.disp, 0};
        break;
      case Opcode::LEA_DATA:
        base_of(ins.a) = Base{Base::Kind::Global, ins.disp, 0};
        break;
      case Opcode::LOAD:
        // A pointer fetched from a positive BP offset is an output argument
        // (the "[ebp+??]" rule). Arg i lives at BP + 16 + 8i.
        if (ins.b == isa::Reg::BP && ins.disp >= isa::ArgSlot(0) &&
            (ins.disp - isa::ArgSlot(0)) % 8 == 0) {
          base_of(ins.a) =
              Base{Base::Kind::ArgPtr, 0, (ins.disp - isa::ArgSlot(0)) / 8};
        } else {
          invalidate(ins.a);
        }
        break;
      case Opcode::MOV_RR:
        base_of(ins.a) = base_of(ins.b);
        break;
      case Opcode::LEA: {
        Base b = base_of(ins.b);
        if (b.kind == Base::Kind::Tls || b.kind == Base::Kind::Global) {
          b.offset += ins.disp;
          base_of(ins.a) = b;
        } else {
          invalidate(ins.a);
        }
        break;
      }
      case Opcode::ADD_RI: {
        Base& b = base_of(ins.a);
        if (b.kind == Base::Kind::Tls || b.kind == Base::Kind::Global) {
          b.offset += ins.imm;
        } else {
          invalidate(ins.a);
        }
        break;
      }
      case Opcode::STORE:
      case Opcode::STORE_I: {
        const Base& b = base_of(ins.a);
        if (b.kind == Base::Kind::None) break;
        SideEffect effect;
        effect.module = module_name;
        if (b.kind == Base::Kind::Tls) {
          effect.kind = SideEffect::Kind::Tls;
          effect.offset = static_cast<uint32_t>(b.offset + ins.disp);
        } else if (b.kind == Base::Kind::Global) {
          effect.kind = SideEffect::Kind::Global;
          effect.offset = static_cast<uint32_t>(b.offset + ins.disp);
        } else {
          effect.kind = SideEffect::Kind::Arg;
          effect.arg_index = b.arg_index;
        }
        if (ins.op == Opcode::STORE_I) {
          effect.values.insert(ins.imm);
        } else {
          ValueSet vs = solver(block_idx, k, ins.b);
          effect.values = std::move(vs.constants);
          effect.unknown_values = vs.unknown;
        }
        MergeEffect(&out, effect);
        break;
      }
      // Any other register write invalidates tracked bases.
      case Opcode::MOV_RI:
      case Opcode::POP:
      case Opcode::NEG:
      case Opcode::NOT:
      case Opcode::SUB_RI:
      case Opcode::AND_RI:
      case Opcode::OR_RI:
      case Opcode::XOR_RI:
      case Opcode::MUL_RI:
        invalidate(ins.a);
        break;
      case Opcode::ADD_RR:
      case Opcode::SUB_RR:
      case Opcode::AND_RR:
      case Opcode::OR_RR:
      case Opcode::XOR_RR:
      case Opcode::MUL_RR:
        invalidate(ins.a);
        break;
      case Opcode::CALL:
      case Opcode::CALL_SYM:
      case Opcode::CALL_IND:
      case Opcode::SYSCALL:
      case Opcode::KCALL:
        // Calls clobber the general-purpose registers.
        for (int r = 0; r < 8; ++r) invalidate(static_cast<isa::Reg>(r));
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace lfi::analysis
