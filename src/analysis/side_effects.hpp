// Side-effects analysis (paper §3.2).
//
// Scans basic blocks for writes whose target address derives from a PIC
// base: LEA_TLS (errno-style thread-local state), LEA_DATA (module
// globals), or a pointer loaded from a positive BP offset (an output
// argument). The value stored is resolved by the caller-provided solver —
// in practice the reverse-constant-propagation engine — so "errno = -eax
// after a syscall" yields the negated kernel error constants, as in the
// paper's glibc listing.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/constprop.hpp"

namespace lfi::analysis {

struct ValueSet {
  std::set<int64_t> constants;
  bool unknown = false;
};

/// Resolve the possible values of register `src` just before the
/// instruction at `instr_idx` of block `block_idx`.
using ValueSolver =
    std::function<ValueSet(size_t block_idx, size_t instr_idx, isa::Reg src)>;

/// Scan one block for TLS / global / output-argument stores.
std::vector<SideEffect> ScanBlockEffects(const Cfg& cfg, size_t block_idx,
                                         const std::string& module_name,
                                         const ValueSolver& solver);

}  // namespace lfi::analysis
