#include "apps/dbserver.hpp"

#include "isa/codebuilder.hpp"
#include "libc/libc_builder.hpp"

namespace lfi::apps {

using isa::CodeBuilder;
using isa::Reg;

namespace {

std::vector<uint8_t> CString(const char* s) {
  std::vector<uint8_t> out;
  for (const char* p = s; *p; ++p) out.push_back(static_cast<uint8_t>(*p));
  out.push_back(0);
  return out;
}

// The module block budgets below are calibrated against §6.1: the suite
// alone reaches ~73% block coverage; random injection adds a point or two
// overall, concentrated in the insert buffer (+12% in the paper), whose
// deep errno-dispatch recovery only runs under faults. Cold regions model
// the argument-gated paths no test (and no injection) reaches.

/// Deep recovery: errno-dispatch chain (EINTR / EIO / other), only
/// executed when a libc call fails. Used by ibuf.
void EmitDeepRecovery(CodeBuilder& b, uint32_t counter_slot) {
  auto ok = b.new_label();
  b.cmp_ri(Reg::R0, 0);
  b.jge(ok);
  b.call_named("geterrno", {});
  auto not_eintr = b.new_label();
  b.cmp_ri(Reg::R0, 4);  // EINTR: transient, count a retry
  b.jne(not_eintr);
  b.lea_data(Reg::R2, static_cast<int32_t>(counter_slot));
  b.load(Reg::R1, Reg::R2, 0);
  b.add_ri(Reg::R1, 1);
  b.store(Reg::R2, 0, Reg::R1);
  b.jmp(ok);
  b.bind(not_eintr);
  auto not_eio = b.new_label();
  b.cmp_ri(Reg::R0, 5);  // EIO: escalate, count twice
  b.jne(not_eio);
  b.lea_data(Reg::R2, static_cast<int32_t>(counter_slot));
  b.load(Reg::R1, Reg::R2, 0);
  b.add_ri(Reg::R1, 2);
  b.store(Reg::R2, 0, Reg::R1);
  b.jmp(ok);
  b.bind(not_eio);
  b.lea_data(Reg::R2, static_cast<int32_t>(counter_slot));  // degraded mode
  b.load(Reg::R1, Reg::R2, 0);
  b.or_ri(Reg::R1, 0x100);
  b.store(Reg::R2, 0, Reg::R1);
  b.bind(ok);
}

/// Shallow check: on failure jump to the function's shared fail tail —
/// one recovery block per function, not per call site, so modules other
/// than ibuf gain little coverage under injection (as in the paper).
void EmitShallowCheck(CodeBuilder& b, CodeBuilder::Label fail) {
  b.cmp_ri(Reg::R0, 0);
  b.jlt(fail);
}

/// The shared fail tail: delegate to ibuf's degrade handler, return -1.
void EmitFailTail(CodeBuilder& b, CodeBuilder::Label fail, int reason) {
  b.bind(fail);
  b.mov_ri(Reg::R1, reason);
  b.call_named("ibuf_degrade", {Reg::R1});
  b.mov_ri(Reg::R0, -1);
  b.leave_ret();
}

/// `n` straight-line "warm" blocks, executed on every call: the bulk of a
/// real server's logic, setting the covered mass of the module.
void EmitWarm(CodeBuilder& b, int n) {
  for (int i = 0; i < n; ++i) {
    auto next = b.new_label();
    b.add_ri(Reg::R4, i + 1);
    b.jmp(next);
    b.bind(next);
    b.xor_ri(Reg::R4, 0x2b);
  }
}

/// `n` argument-gated cold blocks the suite never reaches (and injection
/// cannot reach either): keeps coverage below 100%, as in real MySQL.
/// Functions without arguments (process entries) gate on R7 instead, which
/// no emitted code writes — it stays 0, below any magic.
void EmitColdRegion(CodeBuilder& b, int n, int64_t magic_base,
                    bool has_args = true) {
  for (int i = 0; i < n; ++i) {
    auto skip = b.new_label();
    if (has_args) {
      b.load_arg(Reg::R1, 0);
    } else {
      b.mov_rr(Reg::R1, Reg::R7);
    }
    b.cmp_ri(Reg::R1, magic_base + i);
    b.jne(skip);
    b.mul_ri(Reg::R1, 3);
    b.xor_ri(Reg::R1, 0x77);
    b.neg(Reg::R1);
    b.bind(skip);
  }
}

/// Push three loaded arg registers, call `fn`, clean up.
void CallLibc3(CodeBuilder& b, const char* fn) {
  b.push(Reg::R3);
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym(fn);
  b.add_ri(Reg::SP, 24);
}

void EmitOpen(CodeBuilder& b, uint32_t path, int64_t flags) {
  b.mov_ri(Reg::R2, flags);
  b.lea_data(Reg::R1, static_cast<int32_t>(path));
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("open");
  b.add_ri(Reg::SP, 16);
}

}  // namespace

const std::vector<std::string>& DbModuleNames() {
  static const std::vector<std::string> names = {
      "ibuf.so", "btree.so", "log.so", "net.so", "mysqld.so"};
  return names;
}

std::vector<sso::SharedObject> BuildDbServer(const DbConfig& config) {
  std::vector<sso::SharedObject> modules;

  // ---- ibuf.so: the InnoDB insert buffer — per-site deep recovery. -----------
  {
    CodeBuilder b;
    uint32_t counters = b.reserve_data(8);
    uint32_t path = b.emit_data(CString(kDbDataPath));
    uint32_t scratch = b.reserve_data(256);

    for (const char* name :
         {"ibuf_insert", "ibuf_merge", "ibuf_flush", "ibuf_contract"}) {
      b.begin_function(name);
      b.sub_ri(Reg::SP, 16);
      EmitColdRegion(b, 2, 0x7a7a);
      EmitWarm(b, 14);
      EmitOpen(b, path, libc::O_RDWR);
      b.store(Reg::BP, -8, Reg::R0);
      EmitDeepRecovery(b, counters);
      auto no_fd = b.new_label();
      b.load(Reg::R0, Reg::BP, -8);
      b.cmp_ri(Reg::R0, 0);
      b.jlt(no_fd);
      b.load(Reg::R1, Reg::BP, -8);
      b.lea_data(Reg::R2, static_cast<int32_t>(scratch));
      b.mov_ri(Reg::R3, 64);
      CallLibc3(b, "write");
      EmitDeepRecovery(b, counters);
      b.load(Reg::R1, Reg::BP, -8);
      b.push(Reg::R1);
      b.call_sym("close");
      b.add_ri(Reg::SP, 8);
      EmitDeepRecovery(b, counters);
      b.bind(no_fd);
      b.mov_ri(Reg::R0, 0);
      b.leave_ret();
      b.end_function();
    }

    // ibuf_degrade(reason): the shared failure handler other modules
    // delegate to — pure recovery code, reached only under injection.
    b.begin_function("ibuf_degrade");
    b.mov_ri(Reg::R0, -1);
    EmitDeepRecovery(b, counters);
    b.mov_ri(Reg::R0, 0);
    b.leave_ret();
    b.end_function();

    modules.push_back(
        sso::FromCodeUnit("ibuf.so", b.Finish(), {libc::kLibcName}));
  }

  // ---- btree.so: lookup/insert; shallow shared-tail recovery. ----------------
  {
    CodeBuilder b;
    uint32_t path = b.emit_data(CString(kDbDataPath));
    uint32_t page = b.reserve_data(512);

    b.begin_function("btree_lookup");
    b.sub_ri(Reg::SP, 16);
    auto lk_fail = b.new_label();
    EmitColdRegion(b, 16, 0x5100);
    EmitWarm(b, 36);
    EmitOpen(b, path, libc::O_RDONLY);
    b.store(Reg::BP, -8, Reg::R0);
    EmitShallowCheck(b, lk_fail);
    for (int i = 0; i < 2; ++i) {  // descend two "levels"
      b.load(Reg::R1, Reg::BP, -8);
      b.lea_data(Reg::R2, static_cast<int32_t>(page));
      b.mov_ri(Reg::R3, 128);
      CallLibc3(b, "read");
      EmitShallowCheck(b, lk_fail);
    }
    b.load(Reg::R1, Reg::BP, -8);
    b.push(Reg::R1);
    b.call_sym("close");
    b.add_ri(Reg::SP, 8);
    EmitShallowCheck(b, lk_fail);
    b.mov_ri(Reg::R0, 1);
    b.leave_ret();
    EmitFailTail(b, lk_fail, 1);
    b.end_function();

    b.begin_function("btree_insert");
    b.sub_ri(Reg::SP, 16);
    auto in_fail = b.new_label();
    EmitColdRegion(b, 16, 0x6200);
    EmitWarm(b, 36);
    b.load_arg(Reg::R1, 0);
    b.call_named("ibuf_insert", {Reg::R1});
    EmitOpen(b, path, libc::O_RDWR);
    b.store(Reg::BP, -8, Reg::R0);
    EmitShallowCheck(b, in_fail);
    b.load(Reg::R1, Reg::BP, -8);
    b.lea_data(Reg::R2, static_cast<int32_t>(page));
    b.mov_ri(Reg::R3, 256);
    CallLibc3(b, "write");
    EmitShallowCheck(b, in_fail);
    b.load(Reg::R1, Reg::BP, -8);
    b.push(Reg::R1);
    b.call_sym("close");
    b.add_ri(Reg::SP, 8);
    EmitShallowCheck(b, in_fail);
    b.mov_ri(Reg::R0, 1);
    b.leave_ret();
    EmitFailTail(b, in_fail, 2);
    b.end_function();

    modules.push_back(sso::FromCodeUnit(
        "btree.so", b.Finish(), {libc::kLibcName, "ibuf.so"}));
  }

  // ---- log.so: redo log append + fsync; shallow recovery. --------------------
  {
    CodeBuilder b;
    uint32_t path = b.emit_data(CString(kDbLogPath));
    uint32_t rec = b.reserve_data(128);

    b.begin_function("log_append");
    b.sub_ri(Reg::SP, 16);
    auto la_fail = b.new_label();
    EmitColdRegion(b, 16, 0x4200);
    EmitWarm(b, 36);
    EmitOpen(b, path, libc::O_WRONLY | libc::O_APPEND | libc::O_CREAT);
    b.store(Reg::BP, -8, Reg::R0);
    EmitShallowCheck(b, la_fail);
    b.load(Reg::R1, Reg::BP, -8);
    b.lea_data(Reg::R2, static_cast<int32_t>(rec));
    b.mov_ri(Reg::R3, 48);
    CallLibc3(b, "write");
    EmitShallowCheck(b, la_fail);
    b.load(Reg::R1, Reg::BP, -8);  // fsync: the durability point
    b.push(Reg::R1);
    b.call_sym("fsync");
    b.add_ri(Reg::SP, 8);
    EmitShallowCheck(b, la_fail);
    b.load(Reg::R1, Reg::BP, -8);
    b.push(Reg::R1);
    b.call_sym("close");
    b.add_ri(Reg::SP, 8);
    EmitShallowCheck(b, la_fail);
    b.mov_ri(Reg::R0, 0);
    b.leave_ret();
    EmitFailTail(b, la_fail, 3);
    b.end_function();

    modules.push_back(sso::FromCodeUnit(
        "log.so", b.Finish(), {libc::kLibcName, "ibuf.so"}));
  }

  // ---- net.so: query receive / result send. ----------------------------------
  {
    CodeBuilder b;
    b.begin_function("net_recv_query");
    EmitColdRegion(b, 16, 0x3300);
    EmitWarm(b, 36);
    b.mov_ri(Reg::R1, 96);
    b.push(Reg::R1);
    b.call_sym("malloc");
    b.add_ri(Reg::SP, 8);
    // BUG (deliberate): the buffer is written before the NULL check — an
    // injected malloc failure turns this into the SIGSEGV crash class the
    // paper's MySQL runs hit (12 of them, §6.1).
    b.store_i(Reg::R0, 0, 0x51);
    auto have = b.new_label();
    b.cmp_ri(Reg::R0, 0);
    b.jne(have);
    b.mov_ri(Reg::R0, -1);
    b.leave_ret();
    b.bind(have);
    b.mov_rr(Reg::R1, Reg::R0);
    b.push(Reg::R1);
    b.call_sym("free");
    b.add_ri(Reg::SP, 8);
    b.mov_ri(Reg::R0, 1);
    b.leave_ret();
    b.end_function();

    b.begin_function("net_send_result");
    EmitColdRegion(b, 16, 0x2200);
    EmitWarm(b, 36);
    b.load_arg(Reg::R1, 0);
    b.mov_rr(Reg::R0, Reg::R1);
    b.mul_ri(Reg::R0, 17);
    b.and_ri(Reg::R0, 0xffff);
    b.leave_ret();
    b.end_function();

    modules.push_back(
        sso::FromCodeUnit("net.so", b.Finish(), {libc::kLibcName}));
  }

  // ---- mysqld.so: the server core — OLTP loop + the regression suite. --------
  {
    CodeBuilder b;

    // run_txn_ro(key): net in, one lookup, net out.
    b.begin_function("run_txn_ro");
    EmitColdRegion(b, 12, 0x1100);
    EmitWarm(b, 20);
    b.load_arg(Reg::R1, 0);
    b.call_named("net_recv_query", {Reg::R1});
    b.load_arg(Reg::R1, 0);
    b.call_named("btree_lookup", {Reg::R1});
    b.load_arg(Reg::R1, 0);
    b.call_named("net_send_result", {Reg::R1});
    b.mov_ri(Reg::R0, 1);
    b.leave_ret();
    b.end_function();

    // run_txn_rw(key): lookup, two inserts, buffer flush, redo append.
    b.begin_function("run_txn_rw");
    EmitColdRegion(b, 12, 0x1200);
    EmitWarm(b, 20);
    b.load_arg(Reg::R1, 0);
    b.call_named("net_recv_query", {Reg::R1});
    b.load_arg(Reg::R1, 0);
    b.call_named("btree_lookup", {Reg::R1});
    b.load_arg(Reg::R1, 0);
    b.call_named("btree_insert", {Reg::R1});
    b.load_arg(Reg::R1, 0);
    b.add_ri(Reg::R1, 1);
    b.call_named("btree_insert", {Reg::R1});
    b.load_arg(Reg::R1, 0);
    b.call_named("ibuf_flush", {Reg::R1});
    b.load_arg(Reg::R1, 0);
    b.call_named("log_append", {Reg::R1});
    b.load_arg(Reg::R1, 0);
    b.call_named("net_send_result", {Reg::R1});
    b.mov_ri(Reg::R0, 1);
    b.leave_ret();
    b.end_function();

    // mysql_main: the SysBench OLTP loop (configuration baked in).
    b.begin_function(kDbEntry);
    b.sub_ri(Reg::SP, 16);
    EmitColdRegion(b, 4, 0x1300, /*has_args=*/false);
    EmitWarm(b, 16);
    b.store_i(Reg::BP, -8, 0);
    auto loop = b.new_label();
    auto done = b.new_label();
    b.bind(loop);
    b.load(Reg::R1, Reg::BP, -8);
    b.cmp_ri(Reg::R1, config.transactions);
    b.jge(done);
    b.load(Reg::R1, Reg::BP, -8);
    b.and_ri(Reg::R1, 0xff);
    if (config.read_write) {
      b.call_named("run_txn_rw", {Reg::R1});
    } else {
      b.call_named("run_txn_ro", {Reg::R1});
    }
    b.load(Reg::R1, Reg::BP, -8);
    b.add_ri(Reg::R1, 1);
    b.store(Reg::BP, -8, Reg::R1);
    b.jmp(loop);
    b.bind(done);
    b.mov_ri(Reg::R0, 0);
    b.leave_ret();
    b.end_function();

    // mysql_test: the regression suite — a fixed mix of transactions and
    // the maintenance entry points.
    b.begin_function(kDbTestEntry);
    b.sub_ri(Reg::SP, 16);
    EmitColdRegion(b, 4, 0x1400, /*has_args=*/false);
    for (int i = 0; i < 4; ++i) {
      b.mov_ri(Reg::R1, i);
      b.call_named("run_txn_ro", {Reg::R1});
    }
    for (int i = 0; i < 3; ++i) {
      b.mov_ri(Reg::R1, 100 + i);
      b.call_named("run_txn_rw", {Reg::R1});
    }
    b.mov_ri(Reg::R1, 7);
    b.call_named("ibuf_merge", {Reg::R1});
    b.mov_ri(Reg::R1, 8);
    b.call_named("ibuf_contract", {Reg::R1});
    b.mov_ri(Reg::R1, 9);
    b.call_named("log_append", {Reg::R1});
    b.call_named(kDbEntry, {});  // the OLTP loop is part of the suite too
    b.mov_ri(Reg::R0, 0);
    b.leave_ret();
    b.end_function();

    modules.push_back(sso::FromCodeUnit(
        "mysqld.so", b.Finish(),
        {libc::kLibcName, "ibuf.so", "btree.so", "log.so", "net.so"}));
  }

  return modules;
}

}  // namespace lfi::apps
