// The MySQL stand-in for Table 4 (SysBench OLTP throughput) and the §6.1
// coverage experiment.
//
// The server is split across modules the way MySQL is (InnoDB insert
// buffer, B-tree, redo log, network layer, server core) so per-module
// basic-block coverage can be reported. Every libc call is followed by
// result checks whose error/recovery blocks are only reachable when the
// call fails — the code paths "not touched by regular testing" that LFI
// exposes. Some further blocks are argument-gated in ways the test suite
// never exercises, so coverage stays below 100% even under injection,
// matching the paper's 73% -> 74% overall movement.
#pragma once

#include <vector>

#include "sso/sso.hpp"

namespace lfi::apps {

inline constexpr const char* kDbEntry = "mysql_main";
inline constexpr const char* kDbTestEntry = "mysql_test";
inline constexpr const char* kDbDataPath = "/db/t0.ibd";
inline constexpr const char* kDbLogPath = "/db/redo.log";

struct DbConfig {
  int transactions = 100;
  bool read_write = false;  // read-only vs read/write OLTP mix
};

/// The five modules, load-ordered: ibuf, btree, log, net, mysqld (main).
std::vector<sso::SharedObject> BuildDbServer(const DbConfig& config);

/// Module names in the order BuildDbServer returns them.
const std::vector<std::string>& DbModuleNames();

}  // namespace lfi::apps
