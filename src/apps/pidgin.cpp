#include "apps/pidgin.hpp"

#include "isa/codebuilder.hpp"
#include "libc/libc_builder.hpp"

namespace lfi::apps {

using isa::CodeBuilder;
using isa::Reg;

namespace {

std::vector<uint8_t> CString(const char* s) {
  std::vector<uint8_t> out;
  for (const char* p = s; *p; ++p) out.push_back(static_cast<uint8_t>(*p));
  out.push_back(0);
  return out;
}

}  // namespace

sso::SharedObject BuildPidgin() {
  CodeBuilder b;

  // Shared data: the two pipes' fd pairs (written by pipe()), the query
  // buffer, and the response scratch areas. The spawned child shares the
  // module data section, which is how it learns the pipe fds (fork-lite).
  uint32_t req_fds = b.reserve_data(16);   // [read, write]
  uint32_t resp_fds = b.reserve_data(16);  // [read, write]
  uint32_t query = b.reserve_data(16);
  uint32_t status_buf = b.reserve_data(8);
  uint32_t size_buf = b.reserve_data(8);
  // Reserved slot in the layout; the parent reads addresses elsewhere.
  [[maybe_unused]] uint32_t addr_buf = b.reserve_data(16);
  uint32_t resolver_name = b.emit_data(CString(kResolverEntry));
  // Pattern the child's "resolved address" bytes: 0xCACACACA... — read as
  // a size after a frame shift, this is astronomically large.
  uint32_t addr_payload = b.reserve_data(16);

  // ---- resolver_main: the DNS child. BUG: write results are ignored.
  b.begin_function(kResolverEntry);
  b.sub_ri(Reg::SP, 16);  // local: query counter at [bp-8]
  b.store_i(Reg::BP, -8, 0);
  // Fill the address payload with 0xCA bytes.
  b.lea_data(Reg::R1, static_cast<int32_t>(addr_payload));
  b.mov_ri(Reg::R2, static_cast<int64_t>(0xCACACACACACACACAull));
  b.store(Reg::R1, 0, Reg::R2);
  b.store(Reg::R1, 8, Reg::R2);
  auto child_loop = b.new_label();
  auto child_done = b.new_label();
  b.bind(child_loop);
  b.load(Reg::R1, Reg::BP, -8);
  b.cmp_ri(Reg::R1, kPidginQueries);
  b.jge(child_done);
  // read(req_r, query, 16) — blocks until the parent sends a query.
  b.lea_data(Reg::R1, static_cast<int32_t>(req_fds));
  b.load(Reg::R1, Reg::R1, 0);
  b.lea_data(Reg::R2, static_cast<int32_t>(query));
  b.mov_ri(Reg::R3, 16);
  b.push(Reg::R3);
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("read");
  b.add_ri(Reg::SP, 24);
  b.cmp_ri(Reg::R0, 0);
  b.jle(child_done);  // EOF / error from the request pipe: exit
  // write(resp_w, status=0, 8)  — result ignored (the bug)
  b.lea_data(Reg::R1, static_cast<int32_t>(status_buf));
  b.store_i(Reg::R1, 0, 0);
  b.lea_data(Reg::R2, static_cast<int32_t>(resp_fds));
  b.load(Reg::R2, Reg::R2, 8);
  b.mov_ri(Reg::R3, 8);
  b.push(Reg::R3);
  b.push(Reg::R1);
  b.push(Reg::R2);
  b.call_sym("write");
  b.add_ri(Reg::SP, 24);
  // write(resp_w, size=16, 8) — result ignored
  b.lea_data(Reg::R1, static_cast<int32_t>(size_buf));
  b.store_i(Reg::R1, 0, 16);
  b.lea_data(Reg::R2, static_cast<int32_t>(resp_fds));
  b.load(Reg::R2, Reg::R2, 8);
  b.mov_ri(Reg::R3, 8);
  b.push(Reg::R3);
  b.push(Reg::R1);
  b.push(Reg::R2);
  b.call_sym("write");
  b.add_ri(Reg::SP, 24);
  // write(resp_w, addr_payload, 16) — result ignored
  b.lea_data(Reg::R1, static_cast<int32_t>(addr_payload));
  b.lea_data(Reg::R2, static_cast<int32_t>(resp_fds));
  b.load(Reg::R2, Reg::R2, 8);
  b.mov_ri(Reg::R3, 16);
  b.push(Reg::R3);
  b.push(Reg::R1);
  b.push(Reg::R2);
  b.call_sym("write");
  b.add_ri(Reg::SP, 24);
  b.load(Reg::R1, Reg::BP, -8);
  b.add_ri(Reg::R1, 1);
  b.store(Reg::BP, -8, Reg::R1);
  b.jmp(child_loop);
  b.bind(child_done);
  b.mov_ri(Reg::R0, 0);
  b.leave_ret();
  b.end_function();

  // ---- pidgin_main: the parent.
  b.begin_function(kPidginEntry);
  b.sub_ri(Reg::SP, 16);  // local: query counter at [bp-8]
  // pipe(req_fds); pipe(resp_fds)
  for (uint32_t fds : {req_fds, resp_fds}) {
    b.lea_data(Reg::R1, static_cast<int32_t>(fds));
    b.push(Reg::R1);
    b.call_sym("pipe");
    b.add_ri(Reg::SP, 8);
  }
  // spawn("resolver_main")
  b.lea_data(Reg::R1, static_cast<int32_t>(resolver_name));
  b.push(Reg::R1);
  b.call_sym("spawn");
  b.add_ri(Reg::SP, 8);

  b.store_i(Reg::BP, -8, 0);
  auto loop = b.new_label();
  auto done = b.new_label();
  auto fail = b.new_label();
  b.bind(loop);
  b.load(Reg::R1, Reg::BP, -8);
  b.cmp_ri(Reg::R1, kPidginQueries);
  b.jge(done);
  // write(req_w, query, 16): send a lookup request.
  b.lea_data(Reg::R1, static_cast<int32_t>(query));
  b.lea_data(Reg::R2, static_cast<int32_t>(req_fds));
  b.load(Reg::R2, Reg::R2, 8);
  b.mov_ri(Reg::R3, 16);
  b.push(Reg::R3);
  b.push(Reg::R1);
  b.push(Reg::R2);
  b.call_sym("write");
  b.add_ri(Reg::SP, 24);
  // read(resp_r, status, 8)
  b.lea_data(Reg::R1, static_cast<int32_t>(resp_fds));
  b.load(Reg::R1, Reg::R1, 0);
  b.lea_data(Reg::R2, static_cast<int32_t>(status_buf));
  b.mov_ri(Reg::R3, 8);
  b.push(Reg::R3);
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("read");
  b.add_ri(Reg::SP, 24);
  b.cmp_ri(Reg::R0, 0);
  b.jle(fail);
  // read(resp_r, size, 8)
  b.lea_data(Reg::R1, static_cast<int32_t>(resp_fds));
  b.load(Reg::R1, Reg::R1, 0);
  b.lea_data(Reg::R2, static_cast<int32_t>(size_buf));
  b.mov_ri(Reg::R3, 8);
  b.push(Reg::R3);
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("read");
  b.add_ri(Reg::SP, 24);
  b.cmp_ri(Reg::R0, 0);
  b.jle(fail);
  // buf = malloc(size): the unvalidated size from the pipe.
  b.lea_data(Reg::R1, static_cast<int32_t>(size_buf));
  b.load(Reg::R1, Reg::R1, 0);
  b.push(Reg::R1);
  b.call_sym("malloc");
  b.add_ri(Reg::SP, 8);
  auto have_buf = b.new_label();
  b.cmp_ri(Reg::R0, 0);
  b.jne(have_buf);
  // Allocation failed — glib-style abort() (the SIGABRT the paper saw).
  b.call_sym("abort");
  b.bind(have_buf);
  // read(resp_r, buf, min(size,16)) — read the address payload. The real
  // Pidgin reads `size` bytes; we cap at the frame size since the pipe
  // will never carry more (the crash happens before this matters).
  b.mov_rr(Reg::R4, Reg::R0);  // keep buf
  b.lea_data(Reg::R1, static_cast<int32_t>(resp_fds));
  b.load(Reg::R1, Reg::R1, 0);
  b.mov_ri(Reg::R3, 16);
  b.push(Reg::R3);
  b.push(Reg::R4);
  b.push(Reg::R1);
  b.call_sym("read");
  b.add_ri(Reg::SP, 24);
  // free(buf)
  b.push(Reg::R4);
  b.call_sym("free");
  b.add_ri(Reg::SP, 8);
  b.load(Reg::R1, Reg::BP, -8);
  b.add_ri(Reg::R1, 1);
  b.store(Reg::BP, -8, Reg::R1);
  b.jmp(loop);
  b.bind(fail);
  b.mov_ri(Reg::R0, 1);
  b.leave_ret();
  b.bind(done);
  // Close our request-pipe write end so the child sees EOF if it is still
  // waiting, then reap it.
  b.lea_data(Reg::R1, static_cast<int32_t>(req_fds));
  b.load(Reg::R1, Reg::R1, 8);
  b.push(Reg::R1);
  b.call_sym("close");
  b.add_ri(Reg::SP, 8);
  b.mov_ri(Reg::R0, 0);
  b.leave_ret();
  b.end_function();

  return sso::FromCodeUnit("pidgin.so", b.Finish(), {libc::kLibcName});
}

}  // namespace lfi::apps
