// The Pidgin stand-in for §6.1 ("Ease of Use").
//
// Reproduces the bug LFI found in Pidgin (ticket 8672): the IM client
// spawns a DNS-resolver child that answers over a pipe. The child does not
// check its write() results, so a failed or partial write desynchronizes
// the framing; the parent then reads a later payload byte-run as the
// "resolved address size", calls malloc() with a huge value, and aborts
// when the allocation fails — a SIGABRT, exactly as in the paper.
//
// The child's response framing per query: status(8) | size(8) | addr(16).
// Address bytes are 0xCA-patterned, so a frame shift turns them into a
// multi-terabyte "size".
#pragma once

#include "sso/sso.hpp"

namespace lfi::apps {

inline constexpr const char* kPidginEntry = "pidgin_main";
inline constexpr const char* kResolverEntry = "resolver_main";
inline constexpr int kPidginQueries = 3;

sso::SharedObject BuildPidgin();

}  // namespace lfi::apps
