#include "apps/seu_guest.hpp"

#include <memory>
#include <utility>

#include "isa/harden.hpp"

namespace lfi::apps {

using isa::CodeBuilder;
using isa::Reg;

namespace {

/// Long enough that sampled flip instants land across warm loop state,
/// short enough that a few hundred flip scenarios stay instant.
constexpr int64_t kIterations = 400;
constexpr int64_t kSeed = 0x243F6A8885A308D3ll;

/// x' = mix(x, i): an LCG-style full-width mix. Args on the stack, result
/// in R0; clobbers only R0/R6/R7, so every variant's live registers
/// survive the call.
void EmitMix(CodeBuilder& b, CodeBuilder::Label entry) {
  b.bind(entry);
  b.begin_function("seu_mix", /*exported=*/false);
  b.load_arg(Reg::R6, 0);  // x
  b.load_arg(Reg::R7, 1);  // i
  b.mul_ri(Reg::R6, 0x5851F42D4C957F2Dll);
  b.mov_ri(Reg::R0, 0x14057B7EF767814Fll);
  b.mul_rr(Reg::R0, Reg::R7);
  b.add_rr(Reg::R0, Reg::R6);
  b.xor_ri(Reg::R0, static_cast<int64_t>(0x9E3779B97F4A7C15ull));
  b.leave_ret();
  b.end_function();
}

/// push args (i, then x — right to left), call, clean up, result -> dst.
void EmitMixCall(CodeBuilder& b, CodeBuilder::Label mix, Reg x, Reg i,
                 Reg dst) {
  b.push(i);
  b.push(x);
  b.call(mix);
  b.add_ri(Reg::SP, 16);
  b.mov_rr(dst, Reg::R0);
}

/// Store the checksum, exit with a truncation of it. The 0xFFFC mask keeps
/// the exit code small and can never collide with kSeuDetectExitCode
/// (odd), so "detected" stays unambiguous.
void EmitEpilogue(CodeBuilder& b, uint32_t slot, Reg result, Reg scratch) {
  b.lea_data(scratch, static_cast<int32_t>(slot));
  b.store(scratch, 0, result);
  b.mov_rr(Reg::R0, result);
  b.and_ri(Reg::R0, 0xFFFC);
  b.halt();
}

isa::CodeUnit BuildNoneUnit() {
  CodeBuilder b;
  uint32_t slot = b.reserve_data(8);
  CodeBuilder::Label mix = b.new_label();
  b.begin_function("main");
  b.mov_ri(Reg::R1, kSeed);
  b.mov_ri(Reg::R2, 0);
  b.mov_ri(Reg::R3, kIterations);
  // Top-tested loop: the head block opens with its own CMP, so the CFCSS
  // pass can prove flags dead at the join and place a check there.
  CodeBuilder::Label head = b.new_label();
  CodeBuilder::Label done = b.new_label();
  b.bind(head);
  b.cmp_rr(Reg::R2, Reg::R3);
  b.jge(done);
  EmitMixCall(b, mix, Reg::R1, Reg::R2, Reg::R1);
  b.add_ri(Reg::R2, 1);
  b.jmp(head);
  b.bind(done);
  EmitEpilogue(b, slot, Reg::R1, Reg::R4);
  b.end_function();
  EmitMix(b, mix);
  return b.Finish();
}

isa::CodeUnit BuildDwcUnit() {
  CodeBuilder b;
  uint32_t slot = b.reserve_data(8);
  CodeBuilder::Label mix = b.new_label();
  b.begin_function("main");
  CodeBuilder::Label detect = b.new_label();
  isa::DwcEmitter d(b, {{Reg::R1, Reg::R4}, {Reg::R2, Reg::R5}}, detect);
  d.mov_ri(Reg::R1, kSeed);
  d.mov_ri(Reg::R2, 0);
  b.mov_ri(Reg::R3, kIterations);
  CodeBuilder::Label head = b.new_label();
  CodeBuilder::Label done = b.new_label();
  b.bind(head);
  b.cmp_rr(Reg::R2, Reg::R3);
  b.jge(done);
  // Both copies recompute independently; a flip in either accumulator,
  // counter, or one call's transient state diverges the pair.
  EmitMixCall(b, mix, Reg::R1, Reg::R2, Reg::R1);
  EmitMixCall(b, mix, Reg::R4, Reg::R5, Reg::R4);
  d.add_ri(Reg::R2, 1);
  d.check(Reg::R1);
  d.check(Reg::R2);
  b.jmp(head);
  b.bind(done);
  d.check(Reg::R1);
  EmitEpilogue(b, slot, Reg::R1, Reg::R6);
  b.bind(detect);
  b.mov_ri(Reg::R0, isa::kSeuDetectExitCode);
  b.halt();
  b.end_function();
  EmitMix(b, mix);
  return b.Finish();
}

isa::CodeUnit BuildTmrUnit() {
  CodeBuilder b;
  uint32_t slot = b.reserve_data(8);
  CodeBuilder::Label mix = b.new_label();
  b.begin_function("main");
  b.mov_ri(Reg::R1, kSeed);
  b.mov_rr(Reg::R4, Reg::R1);
  b.mov_rr(Reg::R5, Reg::R1);
  b.mov_ri(Reg::R2, 0);
  b.mov_ri(Reg::R3, kIterations);
  CodeBuilder::Label head = b.new_label();
  CodeBuilder::Label done = b.new_label();
  b.bind(head);
  b.cmp_rr(Reg::R2, Reg::R3);
  b.jge(done);
  // Vote first (repairing any flip since the last round), then advance
  // each copy independently so one corrupted computation is outvoted.
  isa::EmitTmrVote(b, Reg::R1, Reg::R4, Reg::R5, Reg::R6);
  EmitMixCall(b, mix, Reg::R1, Reg::R2, Reg::R1);
  EmitMixCall(b, mix, Reg::R4, Reg::R2, Reg::R4);
  EmitMixCall(b, mix, Reg::R5, Reg::R2, Reg::R5);
  b.add_ri(Reg::R2, 1);
  b.jmp(head);
  b.bind(done);
  isa::EmitTmrVote(b, Reg::R1, Reg::R4, Reg::R5, Reg::R6);
  EmitEpilogue(b, slot, Reg::R1, Reg::R6);
  b.end_function();
  EmitMix(b, mix);
  return b.Finish();
}

}  // namespace

const char* HardeningModeName(HardeningMode mode) {
  switch (mode) {
    case HardeningMode::None: return "none";
    case HardeningMode::Dwc: return "dwc";
    case HardeningMode::Cfcss: return "cfcss";
    case HardeningMode::Tmr: return "tmr";
  }
  return "?";
}

Result<sso::SharedObject> BuildSeuGuest(HardeningMode mode) {
  isa::CodeUnit unit;
  switch (mode) {
    case HardeningMode::None:
      unit = BuildNoneUnit();
      break;
    case HardeningMode::Dwc:
      unit = BuildDwcUnit();
      break;
    case HardeningMode::Tmr:
      unit = BuildTmrUnit();
      break;
    case HardeningMode::Cfcss: {
      auto hardened = isa::ApplyCfcss(BuildNoneUnit());
      if (!hardened.ok()) return Err(hardened.error());
      unit = std::move(hardened.value());
      break;
    }
  }
  return sso::FromCodeUnit(kSeuGuestModule, std::move(unit));
}

std::function<void(vm::Machine&)> SeuGuestMachineSetup(HardeningMode mode) {
  auto built = BuildSeuGuest(mode);
  if (!built.ok()) {
    // Unreachable for the shipped variants; surface as a SetupError (the
    // entry symbol will not resolve) instead of crashing the campaign.
    return [](vm::Machine&) {};
  }
  auto guest = std::make_shared<sso::SharedObject>(std::move(built.value()));
  return [guest](vm::Machine& machine) { machine.Load(*guest); };
}

}  // namespace lfi::apps
