// The SEU evaluation guest: one deterministic compute kernel in four
// hardening variants, built so a bit-flip campaign can measure what each
// SIHFT transform buys.
//
// The kernel iterates a 64-bit mixing function through a helper call per
// iteration (so registers, stack frames, and module data are all live
// targets), stores the final checksum into module data, and exits with a
// truncation of it — silent corruption is visible in both the state
// digest and the exit code. The variants:
//
//   None  - the baseline; any live-value flip that survives to the end is
//           silent data corruption.
//   Dwc   - duplicate-with-compare (isa::DwcEmitter): the accumulator and
//           loop counter run twice in shadow registers, compared every
//           iteration; divergence exits with kSeuDetectExitCode.
//   Cfcss - the None binary passed through isa::ApplyCfcss: control-flow
//           signature checks at the loop join, the signature word in
//           flippable module data.
//   Tmr   - triple modular redundancy: three accumulator copies, each
//           mixed independently, majority-voted (and repaired) every
//           iteration — single flips are masked, not just detected.
#pragma once

#include <functional>

#include "sso/sso.hpp"
#include "util/result.hpp"
#include "vm/machine.hpp"

namespace lfi::apps {

enum class HardeningMode { None, Dwc, Cfcss, Tmr };

const char* HardeningModeName(HardeningMode mode);

/// Name of the built module ("seu_guest.so") and its entry ("main").
inline constexpr const char* kSeuGuestModule = "seu_guest.so";
inline constexpr const char* kSeuGuestEntry = "main";

/// Build the guest in the given variant. Fails only for Cfcss when the
/// rewrite rejects the unit (it does not, for this guest; the Result is
/// plumbing honesty).
Result<sso::SharedObject> BuildSeuGuest(HardeningMode mode);

/// Campaign-worker machine setup: loads the (pre-built, shared) guest.
std::function<void(vm::Machine&)> SeuGuestMachineSetup(HardeningMode mode);

}  // namespace lfi::apps
