#include "apps/webserver.hpp"

#include "isa/codebuilder.hpp"
#include "libc/libc_builder.hpp"

namespace lfi::apps {

using isa::CodeBuilder;
using isa::Reg;

namespace {

std::vector<uint8_t> CString(const char* s) {
  std::vector<uint8_t> out;
  for (const char* p = s; *p; ++p) out.push_back(static_cast<uint8_t>(*p));
  out.push_back(0);
  return out;
}

}  // namespace

sso::SharedObject BuildLibApr() {
  CodeBuilder b;

  // apr_time_now(): wraps getpid as a monotonic-ish stamp source.
  b.begin_function("apr_time_now");
  b.call_named("getpid", {});
  b.mul_ri(Reg::R0, 1000);
  b.leave_ret();
  b.end_function();

  // apr_pool_create(size): allocates the pool via malloc — its profile
  // inherits malloc's NULL/ENOMEM through dependent-function recursion.
  b.begin_function("apr_pool_create");
  b.load_arg(Reg::R1, 0);
  b.push(Reg::R1);
  b.call_sym("malloc");
  b.add_ri(Reg::SP, 8);
  b.leave_ret();
  b.end_function();

  // apr_pool_clear(pool): pure compute.
  b.begin_function("apr_pool_clear");
  b.load_arg(Reg::R1, 0);
  b.mov_rr(Reg::R0, Reg::R1);
  b.xor_ri(Reg::R0, 0x5a5a);
  b.and_ri(Reg::R0, 0xffff);
  b.leave_ret();
  b.end_function();

  // apr_palloc(pool, size): delegates to malloc.
  b.begin_function("apr_palloc");
  b.load_arg(Reg::R1, 1);
  b.push(Reg::R1);
  b.call_sym("malloc");
  b.add_ri(Reg::SP, 8);
  b.leave_ret();
  b.end_function();

  // apr_file_read(fd, buf, n): wraps libc read; returns -1 on failure with
  // read's errno already set (a cross-library dependent function).
  b.begin_function("apr_file_read");
  b.load_arg(Reg::R1, 0);
  b.load_arg(Reg::R2, 1);
  b.load_arg(Reg::R3, 2);
  b.push(Reg::R3);
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("read");
  b.add_ri(Reg::SP, 24);
  b.leave_ret();
  b.end_function();

  // apr_file_close(fd): wraps close.
  b.begin_function("apr_file_close");
  b.load_arg(Reg::R1, 0);
  b.push(Reg::R1);
  b.call_sym("close");
  b.add_ri(Reg::SP, 8);
  b.leave_ret();
  b.end_function();

  // apr_strhash(v): pure compute, returns a scalar hash.
  b.begin_function("apr_strhash");
  b.load_arg(Reg::R1, 0);
  b.mov_rr(Reg::R0, Reg::R1);
  b.mul_ri(Reg::R0, 1099511628211);
  b.xor_ri(Reg::R0, 0x9e37);
  b.leave_ret();
  b.end_function();

  // apr_error_get(): reads errno through the libc accessor.
  b.begin_function("apr_error_get");
  b.call_named("geterrno", {});
  b.leave_ret();
  b.end_function();

  return sso::FromCodeUnit("libapr.so", b.Finish(), {libc::kLibcName});
}

sso::SharedObject BuildLibAprUtil() {
  CodeBuilder b;

  // aprutil_crc(v): a short arithmetic loop.
  b.begin_function("aprutil_crc");
  b.load_arg(Reg::R1, 0);
  b.mov_ri(Reg::R0, 0);
  for (int i = 0; i < 4; ++i) {
    b.add_rr(Reg::R0, Reg::R1);
    b.mul_ri(Reg::R0, 31);
    b.xor_ri(Reg::R0, 0xff);
  }
  b.leave_ret();
  b.end_function();

  // aprutil_base64(v): compute.
  b.begin_function("aprutil_base64");
  b.load_arg(Reg::R1, 0);
  b.mov_rr(Reg::R0, Reg::R1);
  b.and_ri(Reg::R0, 0x3f3f3f3f);
  b.or_ri(Reg::R0, 0x40);
  b.leave_ret();
  b.end_function();

  // aprutil_md5(v): compute with a branch.
  b.begin_function("aprutil_md5");
  auto skip = b.new_label();
  b.load_arg(Reg::R1, 0);
  b.mov_rr(Reg::R0, Reg::R1);
  b.cmp_ri(Reg::R0, 0);
  b.jge(skip);
  b.neg(Reg::R0);
  b.bind(skip);
  b.mul_ri(Reg::R0, 0x10001);
  b.leave_ret();
  b.end_function();

  // aprutil_buf_create(size): malloc-backed buffer.
  b.begin_function("aprutil_buf_create");
  b.load_arg(Reg::R1, 0);
  b.push(Reg::R1);
  b.call_sym("malloc");
  b.add_ri(Reg::SP, 8);
  b.leave_ret();
  b.end_function();

  return sso::FromCodeUnit("libaprutil.so", b.Finish(), {libc::kLibcName});
}

sso::SharedObject BuildWebServer(int requests, bool php_mode) {
  CodeBuilder b;
  uint32_t index_path = b.emit_data(CString(kIndexPath));
  uint32_t php_path = b.emit_data(CString(kPhpPath));
  uint32_t buf = b.reserve_data(1024);

  // handle_request: the per-request library-call pattern.
  auto handle = b.new_label();
  b.bind(handle);
  b.begin_function("handle_request");
  b.sub_ri(Reg::SP, 16);  // local: fd at [bp-8]

  // fd = open(index, O_RDONLY)
  b.mov_ri(Reg::R2, libc::O_RDONLY);
  b.lea_data(Reg::R1, static_cast<int32_t>(index_path));
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("open");
  b.add_ri(Reg::SP, 16);
  b.store(Reg::BP, -8, Reg::R0);
  auto open_failed = b.new_label();
  b.cmp_ri(Reg::R0, 0);
  b.jlt(open_failed);

  // read(fd, buf, 256) twice — the static payload.
  for (int i = 0; i < 2; ++i) {
    b.load(Reg::R1, Reg::BP, -8);
    b.lea_data(Reg::R2, static_cast<int32_t>(buf));
    b.mov_ri(Reg::R3, 256);
    b.push(Reg::R3);
    b.push(Reg::R2);
    b.push(Reg::R1);
    b.call_sym("read");
    b.add_ri(Reg::SP, 24);
  }

  // close(fd)
  b.load(Reg::R1, Reg::BP, -8);
  b.push(Reg::R1);
  b.call_sym("close");
  b.add_ri(Reg::SP, 8);

  // APR bookkeeping shared by both modes.
  b.call_named("apr_time_now", {});
  b.mov_rr(Reg::R1, Reg::R0);
  b.call_named("apr_pool_clear", {Reg::R1});
  b.call_named("aprutil_crc", {Reg::R1});

  if (php_mode) {
    // "PHP": read the script, then interpreter-style allocation churn.
    b.mov_ri(Reg::R2, libc::O_RDONLY);
    b.lea_data(Reg::R1, static_cast<int32_t>(php_path));
    b.push(Reg::R2);
    b.push(Reg::R1);
    b.call_sym("open");
    b.add_ri(Reg::SP, 16);
    b.store(Reg::BP, -16, Reg::R0);
    auto php_open_failed = b.new_label();
    b.cmp_ri(Reg::R0, 0);
    b.jlt(php_open_failed);
    for (int i = 0; i < 4; ++i) {
      b.load(Reg::R1, Reg::BP, -16);
      b.lea_data(Reg::R2, static_cast<int32_t>(buf));
      b.mov_ri(Reg::R3, 128);
      b.push(Reg::R3);
      b.push(Reg::R2);
      b.push(Reg::R1);
      b.call_sym("read");
      b.add_ri(Reg::SP, 24);
    }
    b.load(Reg::R1, Reg::BP, -16);
    b.push(Reg::R1);
    b.call_sym("close");
    b.add_ri(Reg::SP, 8);
    b.bind(php_open_failed);

    for (int i = 0; i < 20; ++i) {
      b.mov_ri(Reg::R1, 64);
      b.push(Reg::R1);
      b.call_sym("malloc");
      b.add_ri(Reg::SP, 8);
      b.mov_rr(Reg::R1, Reg::R0);
      b.push(Reg::R1);
      b.call_sym("free");
      b.add_ri(Reg::SP, 8);
    }
    for (int i = 0; i < 8; ++i) {
      b.mov_ri(Reg::R1, 1234 + i);
      b.call_named("aprutil_md5", {Reg::R1});
      b.call_named("aprutil_base64", {Reg::R1});
      b.call_named("apr_strhash", {Reg::R1});
    }
  }

  b.bind(open_failed);
  b.mov_ri(Reg::R0, 0);
  b.leave_ret();
  b.end_function();

  // web_main: the AB-driven request loop.
  b.begin_function(kWebServerEntry);
  b.sub_ri(Reg::SP, 16);  // local: i at [bp-8]
  b.store_i(Reg::BP, -8, 0);
  auto loop = b.new_label();
  auto done = b.new_label();
  b.bind(loop);
  b.load(Reg::R1, Reg::BP, -8);
  b.cmp_ri(Reg::R1, requests);
  b.jge(done);
  b.call_sym("handle_request");
  b.load(Reg::R1, Reg::BP, -8);
  b.add_ri(Reg::R1, 1);
  b.store(Reg::BP, -8, Reg::R1);
  b.jmp(loop);
  b.bind(done);
  b.mov_ri(Reg::R0, 0);
  b.leave_ret();
  b.end_function();

  return sso::FromCodeUnit(
      "webserver.so", b.Finish(),
      {libc::kLibcName, "libapr.so", "libaprutil.so"});
}

const std::vector<std::string>& WebHotFunctions() {
  static const std::vector<std::string> fns = {
      "read",        "malloc",        "free",          "open",
      "close",       "aprutil_md5",   "aprutil_base64", "apr_strhash",
      "apr_time_now", "apr_pool_clear", "aprutil_crc",  "write",
      "lseek",       "stat",          "apr_palloc",    "apr_pool_create",
      "apr_file_read", "apr_file_close", "aprutil_buf_create", "geterrno"};
  return fns;
}

}  // namespace lfi::apps
