// The Apache httpd stand-in for Table 3.
//
// A request-loop server whose handler performs the libc call pattern of a
// static-file server (open/read/read/close + a few APR utility calls) or a
// PHP-like dynamic handler (additionally: config read, a couple dozen
// malloc/free pairs, and more APR work — an order of magnitude more
// library calls per request, like the paper's PHP workload). Links against
// libc plus synthetic libapr/libaprutil, the three libraries the paper
// interposes simultaneously (§6.4).
#pragma once

#include "sso/sso.hpp"

namespace lfi::apps {

inline constexpr const char* kWebServerEntry = "web_main";
inline constexpr const char* kIndexPath = "/www/index.html";
inline constexpr const char* kPhpPath = "/www/app.php";

/// Build libapr.so (pools, time, file helpers; some wrap libc).
sso::SharedObject BuildLibApr();
/// Build libaprutil.so (hashes, encodings; pure compute + some malloc).
sso::SharedObject BuildLibAprUtil();

/// Build the server binary. `requests` and the handler mode are baked in
/// (the synthetic platform passes no argv).
sso::SharedObject BuildWebServer(int requests, bool php_mode);

/// Functions ordered by how often the server calls them (the paper's
/// "top-N most called" trigger placement).
const std::vector<std::string>& WebHotFunctions();

}  // namespace lfi::apps
