#include "apps/workloads.hpp"

#include <chrono>
#include <memory>

#include "analysis/cfg.hpp"
#include "apps/dbserver.hpp"
#include "apps/pidgin.hpp"
#include "apps/webserver.hpp"
#include "campaign/runner.hpp"
#include "core/faultloads.hpp"
#include "core/profiler.hpp"
#include "core/scenario_gen.hpp"
#include "kernel/kernel_image.hpp"
#include "libc/libc_builder.hpp"
#include "util/strings.hpp"

namespace lfi::apps {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

/// Pass-through triggers over the hottest functions — the §6.4
/// configuration: triggers are evaluated on every call but the call always
/// reaches the original library. Like the paper's plans, each function
/// carries one probabilistic trigger plus additional call-count triggers
/// for its other error returns (the "multiple triggers for the same
/// function, corresponding to different error returns").
core::Plan PassThroughPlan(int trigger_count,
                           const std::vector<std::string>& hot,
                           uint64_t seed) {
  core::Plan plan;
  plan.seed = seed;
  for (int i = 0; i < trigger_count; ++i) {
    core::FunctionTrigger t;
    t.function = hot[static_cast<size_t>(i) % hot.size()];
    if (static_cast<size_t>(i) < hot.size()) {
      t.mode = core::FunctionTrigger::Mode::Probability;
      t.probability = 0.02;
    } else {
      t.mode = core::FunctionTrigger::Mode::CallCount;
      // Distinct far-future call counts per error-return trigger.
      t.inject_call = 1'000'000'000ull + static_cast<uint64_t>(i);
    }
    t.call_original = true;  // evaluate, then pass through
    plan.triggers.push_back(std::move(t));
  }
  return plan;
}

void AddWebFiles(vm::Machine& machine) {
  machine.kernel().add_file(kIndexPath,
                            std::vector<uint8_t>(512, uint8_t{'x'}));
  machine.kernel().add_file(kPhpPath,
                            std::vector<uint8_t>(512, uint8_t{'p'}));
}

void AddDbFiles(vm::Machine& machine) {
  machine.kernel().add_file(kDbDataPath,
                            std::vector<uint8_t>(4096, uint8_t{0}));
  machine.kernel().add_file(kDbLogPath, {});
}

/// The default-config DB server image, built once and shared. Machines load
/// copies; the blueprint itself is immutable.
const std::vector<sso::SharedObject>& DbSuiteModules() {
  static const std::vector<sso::SharedObject> modules =
      BuildDbServer(DbConfig{});
  return modules;
}

}  // namespace

const std::vector<core::FaultProfile>& LibcProfiles() {
  static const std::vector<core::FaultProfile> profiles =
      ProfileStandardLibs({libc::BuildLibc()});
  return profiles;
}

std::function<void(vm::Machine&)> PidginMachineSetup() {
  auto libc_so = std::make_shared<const sso::SharedObject>(libc::BuildLibc());
  auto pidgin = std::make_shared<const sso::SharedObject>(BuildPidgin());
  return [libc_so, pidgin](vm::Machine& machine) {
    machine.Load(*libc_so);
    machine.Load(*pidgin);
  };
}

std::function<void(vm::Machine&)> DbSuiteMachineSetup() {
  auto libc_so = std::make_shared<const sso::SharedObject>(libc::BuildLibc());
  return [libc_so](vm::Machine& machine) {
    machine.Load(*libc_so);
    for (const sso::SharedObject& so : DbSuiteModules()) machine.Load(so);
    AddDbFiles(machine);
  };
}

std::vector<core::FaultProfile> ProfileStandardLibs(
    const std::vector<sso::SharedObject>& libs) {
  static const sso::SharedObject kernel = kernel::BuildKernelImage();
  analysis::Workspace ws;
  ws.SetKernel(&kernel);
  for (const sso::SharedObject& so : libs) ws.AddModule(&so);
  core::Profiler profiler(ws);
  std::vector<core::FaultProfile> out;
  for (const sso::SharedObject& so : libs) {
    auto profile = profiler.ProfileLibrary(so);
    if (profile.ok()) out.push_back(std::move(profile).take());
  }
  return out;
}

WebBenchResult RunWebBench(int requests, bool php_mode, int trigger_count,
                           uint64_t seed) {
  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(BuildLibApr());
  machine.Load(BuildLibAprUtil());
  machine.Load(BuildWebServer(requests, php_mode));
  AddWebFiles(machine);

  core::ControllerOptions copts;
  copts.log_enabled = false;  // overhead measurement: no logging
  copts.log_backtraces = false;
  core::Controller controller(machine, copts);
  if (trigger_count > 0) {
    core::Plan plan = PassThroughPlan(trigger_count, WebHotFunctions(), seed);
    // No profiles: triggers without profile codes evaluate-and-pass-through.
    (void)controller.Install(plan, nullptr);
  }

  auto pid = machine.CreateProcess(kWebServerEntry);
  WebBenchResult result;
  result.triggers_installed = static_cast<uint64_t>(trigger_count);
  if (!pid.ok()) return result;
  auto begin = Clock::now();
  machine.RunToCompletion(pid.value(), 1'000'000'000);
  result.seconds = Seconds(begin, Clock::now());
  result.instructions = machine.total_instructions();
  return result;
}

OltpBenchResult RunOltpBench(int transactions, bool read_write,
                             int trigger_count, uint64_t seed) {
  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  DbConfig config;
  config.transactions = transactions;
  config.read_write = read_write;
  for (sso::SharedObject& so : BuildDbServer(config)) {
    machine.Load(std::move(so));
  }
  AddDbFiles(machine);

  core::ControllerOptions copts;
  copts.log_enabled = false;
  copts.log_backtraces = false;
  core::Controller controller(machine, copts);
  if (trigger_count > 0) {
    static const std::vector<std::string> hot = {
        "open", "read", "write", "close", "fsync",
        "malloc", "free", "geterrno", "lseek", "stat"};
    core::Plan plan = PassThroughPlan(trigger_count, hot, seed);
    (void)controller.Install(plan, nullptr);
  }

  auto pid = machine.CreateProcess(kDbEntry);
  OltpBenchResult result;
  if (!pid.ok()) return result;
  auto begin = Clock::now();
  machine.RunToCompletion(pid.value(), 2'000'000'000);
  result.seconds = Seconds(begin, Clock::now());
  result.instructions = machine.total_instructions();
  if (result.seconds > 0) {
    result.txns_per_sec = static_cast<double>(transactions) / result.seconds;
  }
  return result;
}

double CoverageReport::overall() const {
  size_t covered = 0, total = 0;
  for (const auto& [name, counts] : modules) {
    covered += counts.first;
    total += counts.second;
  }
  return total == 0 ? 0.0
                    : 100.0 * static_cast<double>(covered) /
                          static_cast<double>(total);
}

std::pair<size_t, size_t> BlockCoverage(const sso::SharedObject& so,
                                        const vm::CoverageBitmap& executed) {
  size_t covered = 0, total = 0;
  for (const isa::Symbol& sym : so.exports) {
    auto cfg = analysis::BuildCfg(so, sym);
    if (!cfg.ok()) continue;
    auto [c, t] = cfg.value().CoveredBlocks(
        [&](uint32_t offset) { return executed.Test(offset); });
    covered += c;
    total += t;
  }
  return {covered, total};
}

CoverageReport RunDbTestSuite(bool with_lfi, int runs, double probability,
                              uint64_t seed, int jobs) {
  static const std::vector<core::FaultProfile> kNoProfiles;
  const std::vector<core::FaultProfile>& profiles =
      with_lfi ? LibcProfiles() : kNoProfiles;

  // One campaign scenario per suite run; each run's faultload is seeded
  // independently (matching the historical serial driver), so the outcome
  // is identical for any jobs count.
  std::vector<campaign::Scenario> scenarios;
  scenarios.reserve(static_cast<size_t>(runs));
  for (int run = 0; run < runs; ++run) {
    campaign::Scenario s;
    s.name = Format("db-suite-run-%d", run);
    if (with_lfi) {
      s.plan = core::GenerateRandom(profiles, probability,
                                    seed + static_cast<uint64_t>(run) * 101);
    }
    scenarios.push_back(std::move(s));
  }

  campaign::CampaignOptions opts;
  opts.jobs = jobs;
  opts.entry = kDbTestEntry;
  opts.max_instructions = 50'000'000;
  opts.track_coverage = true;
  campaign::CampaignRunner runner(DbSuiteMachineSetup(), profiles, opts);
  campaign::CampaignReport campaign_report = runner.Run(scenarios);

  CoverageReport report;
  report.crashes = campaign_report.crashes;
  static const vm::CoverageBitmap kNoOffsets;
  for (const sso::SharedObject& so : DbSuiteModules()) {
    auto it = campaign_report.coverage.find(so.name);
    report.modules[so.name] = BlockCoverage(
        so, it == campaign_report.coverage.end() ? kNoOffsets : it->second);
  }
  return report;
}

PidginRunResult RunPidginWithPlan(const core::Plan& plan) {
  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(BuildPidgin());

  core::Controller controller(machine);
  (void)controller.Install(plan, LibcProfiles());

  // A modest heap cap so the huge bogus malloc() fails, as Pidgin's did.
  auto pid = machine.CreateProcess(kPidginEntry, /*heap_cap_bytes=*/1 << 20);
  PidginRunResult result;
  if (!pid.ok()) return result;
  vm::RunOutcome outcome = machine.Run(50'000'000);
  result.deadlocked = outcome == vm::RunOutcome::Deadlock;
  vm::Process* parent = machine.process(pid.value());
  result.aborted = parent->state() == vm::ProcState::Faulted &&
                   parent->signal() == vm::Signal::Abort;
  result.exit_code = parent->exit_code();
  result.fault_message = parent->fault_message();
  result.injections = controller.log().size();
  result.replay = controller.GenerateReplay();
  return result;
}

PidginRunResult RunPidginRandomIo(double probability, uint64_t seed) {
  core::Plan plan = core::FileIoFaultload(LibcProfiles(), probability, seed);
  return RunPidginWithPlan(plan);
}

}  // namespace lfi::apps
