// Experiment drivers: assemble machine + libraries + controller + app for
// each of the paper's evaluation scenarios, and measure what the paper
// measures (completion time, txns/sec, coverage, crash discovery).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/profile.hpp"
#include "core/scenario.hpp"
#include "vm/coverage.hpp"
#include "vm/machine.hpp"

namespace lfi::apps {

// ---- Table 3: Apache/AB ------------------------------------------------------

struct WebBenchResult {
  double seconds = 0;          // wall-clock completion time of the run
  uint64_t instructions = 0;   // VM instructions executed
  uint64_t triggers_installed = 0;
};

/// Run the AB workload: `requests` requests, static or PHP handler, with
/// `trigger_count` pass-through triggers (0 = baseline without LFI).
WebBenchResult RunWebBench(int requests, bool php_mode, int trigger_count,
                           uint64_t seed);

// ---- Table 4: MySQL/SysBench OLTP --------------------------------------------

struct OltpBenchResult {
  double seconds = 0;
  double txns_per_sec = 0;
  uint64_t instructions = 0;
};

OltpBenchResult RunOltpBench(int transactions, bool read_write,
                             int trigger_count, uint64_t seed);

// ---- §6.1: MySQL test-suite coverage -----------------------------------------

struct CoverageReport {
  /// module name -> (covered blocks, total blocks)
  std::map<std::string, std::pair<size_t, size_t>> modules;
  size_t crashes = 0;  // runs that ended in a fault (the paper saw 12)
  double overall() const;
};

/// Run the regression suite `runs` times (aggregating coverage). When
/// `with_lfi` is set, each run injects a random libc faultload. The runs
/// execute as a fault-injection campaign fanned out over `jobs` workers;
/// results are identical for any jobs count.
CoverageReport RunDbTestSuite(bool with_lfi, int runs, double probability,
                              uint64_t seed, int jobs = 1);

// ---- §6.1: Pidgin ------------------------------------------------------------

struct PidginRunResult {
  bool aborted = false;        // SIGABRT observed (the bug fired)
  bool deadlocked = false;
  int64_t exit_code = 0;
  std::string fault_message;
  size_t injections = 0;
  core::Plan replay;           // replay script for this run
};

/// Run Pidgin under a scenario; reports the outcome and the replay script.
PidginRunResult RunPidginWithPlan(const core::Plan& plan);

/// Run Pidgin under the paper's scenario (random I/O faults, p=0.1) with
/// the given seed.
PidginRunResult RunPidginRandomIo(double probability, uint64_t seed);

// ---- shared helpers -----------------------------------------------------------

/// Basic-block coverage of one module: project the executed-offset bitmap
/// onto the CFG's block starts (covered blocks, total blocks).
std::pair<size_t, size_t> BlockCoverage(const sso::SharedObject& so,
                                        const vm::CoverageBitmap& executed);

/// Profile libc (and optionally more libraries) for use in plans.
std::vector<core::FaultProfile> ProfileStandardLibs(
    const std::vector<sso::SharedObject>& libs);

/// Fault profiles of the synthetic libc, profiled once per process and
/// cached — profiling is static analysis of an immutable binary, so every
/// caller (and every campaign worker) can share one copy.
const std::vector<core::FaultProfile>& LibcProfiles();

/// Machine-setup callables for campaign workers. Each captures the
/// pre-built shared objects by value, so workers only pay for loading a
/// copy, not for rebuilding the target image.
std::function<void(vm::Machine&)> PidginMachineSetup();
std::function<void(vm::Machine&)> DbSuiteMachineSetup();

}  // namespace lfi::apps
