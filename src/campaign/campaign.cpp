#include "campaign/campaign.hpp"

#include <algorithm>
#include <numeric>
#include <thread>

#include "util/strings.hpp"

namespace lfi::campaign {

const char* ScenarioStatusName(ScenarioStatus status) {
  switch (status) {
    case ScenarioStatus::Exited: return "exited";
    case ScenarioStatus::Crashed: return "CRASHED";
    case ScenarioStatus::Deadlocked: return "deadlocked";
    case ScenarioStatus::BudgetSpent: return "budget-spent";
    case ScenarioStatus::SetupError: return "setup-error";
  }
  return "?";
}

void CampaignReport::Aggregate() {
  scenarios = results.size();
  crashes = deadlocks = budget_spent = setup_errors = 0;
  snapshot_fallbacks = 0;
  total_injections = 0;
  total_instructions = 0;
  cpu_seconds = 0;
  for (const ScenarioResult& r : results) {
    switch (r.status) {
      case ScenarioStatus::Crashed: ++crashes; break;
      case ScenarioStatus::Deadlocked: ++deadlocks; break;
      case ScenarioStatus::BudgetSpent: ++budget_spent; break;
      case ScenarioStatus::SetupError: ++setup_errors; break;
      case ScenarioStatus::Exited: break;
    }
    if (r.snapshot_fallback) ++snapshot_fallbacks;
    total_injections += r.injections;
    total_instructions += r.instructions;
    cpu_seconds += r.seconds;
  }
}

std::string CampaignReport::ToText() const {
  std::string out;
  out += Format(
      "campaign: %zu scenarios | %zu crashed, %zu deadlocked, %zu "
      "budget-spent, %zu setup errors\n",
      scenarios, crashes, deadlocks, budget_spent, setup_errors);
  out += Format(
      "          %llu injections, %llu instructions, %.2fs wall "
      "(%.2fs cpu, %.1fx parallelism)\n",
      (unsigned long long)total_injections,
      (unsigned long long)total_instructions, wall_seconds, cpu_seconds,
      wall_seconds > 0 ? cpu_seconds / wall_seconds : 0.0);
  if (!coverage.empty()) {
    size_t offsets = 0;
    for (const auto& [mod, bitmap] : coverage) offsets += bitmap.Count();
    out += Format("          union coverage: %zu offsets across %zu modules\n",
                  offsets, coverage.size());
  }
  if (snapshot_requested) {
    // A fallback-heavy "fast path" run is really a cold run; surface it.
    out += Format("          snapshot fallbacks (ran cold): %zu of %zu\n",
                  snapshot_fallbacks, scenarios);
  }
  for (const ScenarioResult& r : results) {
    if (r.status == ScenarioStatus::Exited) continue;
    out += Format("  [%zu] %s: %s", r.index, r.name.c_str(),
                  ScenarioStatusName(r.status));
    if (r.status == ScenarioStatus::Crashed) {
      out += Format(" (%s, %zu injections)", r.fault_message.c_str(),
                    r.injections);
    }
    out += "\n";
  }
  return out;
}

std::vector<std::vector<size_t>> ShardScenarios(
    const std::vector<Scenario>& scenarios, size_t jobs, ShardPolicy policy) {
  if (jobs == 0) jobs = 1;
  std::vector<std::vector<size_t>> shards(jobs);
  if (policy == ShardPolicy::RoundRobin) {
    for (size_t i = 0; i < scenarios.size(); ++i) {
      shards[i % jobs].push_back(i);
    }
    return shards;
  }

  // SizeBalanced: longest-processing-time greedy. Heaviest scenario first,
  // each assigned to the currently lightest shard (ties: lowest shard id,
  // then lowest scenario index — fully deterministic).
  std::vector<size_t> order(scenarios.size());
  std::iota(order.begin(), order.end(), size_t{0});
  auto weight = [&](size_t i) -> uint64_t {
    const Scenario& s = scenarios[i];
    return s.weight != 0 ? s.weight : s.plan.triggers.size() + 1;
  };
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return weight(a) > weight(b);
  });
  std::vector<uint64_t> load(jobs, 0);
  for (size_t idx : order) {
    size_t target = static_cast<size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    shards[target].push_back(idx);
    load[target] += weight(idx);
  }
  for (auto& shard : shards) std::sort(shard.begin(), shard.end());
  return shards;
}

uint64_t DeriveSeed(uint64_t base, uint64_t index) {
  uint64_t z = base + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void ParallelFor(size_t count, int jobs,
                 const std::function<void(size_t)>& fn) {
  size_t workers = jobs > 0 ? static_cast<size_t>(jobs)
                            : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, count);
  if (workers <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (size_t i = w; i < count; i += workers) fn(i);
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace lfi::campaign
