// Fault-injection campaigns: the unit of scale.
//
// The paper runs one fault scenario per LFI invocation; a campaign is the
// production version of that loop — a set of scenarios (typically from
// scenario_gen, one per seed / per error code) executed against one target
// image, fanned out across worker threads. Results are per-scenario and
// deterministic: a scenario's outcome depends only on its plan (whose seed
// drives the trigger RNG), never on which worker ran it or in what order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/scenario.hpp"
#include "vm/coverage.hpp"
#include "vm/process.hpp"

namespace lfi::campaign {

/// One schedulable unit: a named fault plan plus optional per-scenario
/// overrides of the campaign-wide entry symbol and heap cap.
struct Scenario {
  std::string name;
  core::Plan plan;
  std::string entry;            // empty = CampaignOptions::entry
  uint64_t heap_cap_bytes = 0;  // 0 = CampaignOptions::default_heap_cap
  /// Per-scenario fault-window override (instructions of fault-free prefix
  /// before the plan installs); unset = CampaignOptions::warmup_instructions.
  /// Honored identically by cold, flat-snapshot (restore + replay the
  /// suffix), and snapshot-tree (restore a window-local node) execution.
  /// Values below the campaign-wide warmup run cold: the shared snapshot
  /// was taken past that point.
  std::optional<uint64_t> warmup_instructions;
  /// Cost estimate for size-balanced sharding; 0 = use trigger count.
  uint64_t weight = 0;
};

enum class ScenarioStatus {
  Exited,      // primary process exited
  Crashed,     // primary process faulted (a finding!)
  Deadlocked,  // all processes blocked with no progress possible
  BudgetSpent, // instruction budget exhausted (a hang, operationally)
  SetupError,  // entry symbol did not resolve / install failed
};

const char* ScenarioStatusName(ScenarioStatus status);

struct ScenarioResult {
  size_t index = 0;    // position in the input scenario set
  std::string name;
  ScenarioStatus status = ScenarioStatus::SetupError;
  int64_t exit_code = 0;
  vm::Signal signal = vm::Signal::None;
  std::string fault_message;
  size_t injections = 0;        // records in the injection log
  uint64_t instructions = 0;    // VM instructions this scenario executed
  double seconds = 0;           // wall-clock for this scenario
  /// Instruction offsets executed during this scenario (all modules),
  /// popcounted from a per-scenario-cleared bitmap tracker, so the number
  /// is identical no matter which worker ran it. 0 when coverage is off.
  size_t covered_offsets = 0;
  /// Per-module breakdown of `covered_offsets` (module name -> executed
  /// offsets in that module). Values sum to `covered_offsets`; modules the
  /// scenario never touched are omitted. Empty when coverage is off.
  std::map<std::string, size_t> covered_by_module;
  /// This scenario's executed-offset bitmaps, per module name — what the
  /// explorer diffs against the corpus-union bitmap to score new coverage.
  /// Populated only when CampaignOptions::collect_scenario_coverage is set
  /// (costs one bitmap copy per touched module per scenario).
  std::map<std::string, vm::CoverageBitmap> coverage;
  /// Crash identity (status == Crashed): symbolized faulting frames,
  /// innermost first, and the triage hashes (campaign/triage.hpp).
  /// crash_site_hash covers signal + frames (the minimizer's target);
  /// crash_hash additionally mixes the injected-fault summary (the
  /// dedup bucket). Both 0 for non-crashed scenarios.
  std::vector<std::string> fault_frames;
  uint64_t crash_site_hash = 0;
  uint64_t crash_hash = 0;
  /// Replay plan (paper §5.2); populated when collect_replays is set.
  core::Plan replay;
  /// Machine-wide instruction count at the scenario's first injection, 0
  /// when nothing injected. Deterministic across jobs, engines, and
  /// execution modes (cold/snapshot/tree) — the explorer derives fork
  /// windows from it.
  uint64_t first_injection_instructions = 0;
  /// Snapshot execution was requested but this scenario ran cold
  /// (entry/heap override, entry-interposing plan, window before the
  /// shared snapshot, or no usable snapshot). Deterministic per scenario,
  /// so jobs-invariant.
  bool snapshot_fallback = false;
  /// Restore cost this scenario paid (snapshot modes only): 4 KiB pages
  /// copied and tree nodes walked. NOT jobs-invariant — the cost depends
  /// on what the same worker ran previously — so these feed bench
  /// telemetry only and stay out of reports and identity checks.
  uint64_t restore_pages = 0;
  uint64_t restore_nodes_walked = 0;
  /// vm::Machine::StateDigest() at scenario end; populated when
  /// CampaignOptions::collect_state_digest is set, 0 otherwise.
  /// Deterministic across jobs, engines, and snapshot modes — SEU
  /// campaigns compare it against a golden run to spot silent data
  /// corruption.
  uint64_t state_digest = 0;
  /// How many of the plan's <seu> flips actually landed.
  uint32_t seu_landed = 0;
};

/// Aggregated campaign outcome. `results` is index-ordered regardless of
/// worker interleaving.
struct CampaignReport {
  std::vector<ScenarioResult> results;
  size_t scenarios = 0;
  size_t crashes = 0;
  size_t deadlocks = 0;
  size_t budget_spent = 0;
  size_t setup_errors = 0;
  /// Scenarios that fell back to cold execution under --snapshot[-tree]
  /// (always 0 otherwise). Printed in the summary when snapshot execution
  /// was requested: a misconfigured fast-path run should not look fast.
  size_t snapshot_fallbacks = 0;
  /// Whether the campaign ran with snapshot execution requested (set by
  /// the runner; gates the fallback line in ToText()).
  bool snapshot_requested = false;
  uint64_t total_injections = 0;
  uint64_t total_instructions = 0;
  double wall_seconds = 0;  // whole campaign, one clock
  double cpu_seconds = 0;   // sum of per-scenario wall-clocks
  /// Union coverage across all scenarios, per module name: dense bitmaps
  /// of executed instruction offsets, OR-merged across workers (order
  /// independent, so deterministic for any jobs count). Empty when
  /// coverage is off.
  std::map<std::string, vm::CoverageBitmap> coverage;

  /// Recompute the aggregate counters from `results` (the runner calls
  /// this; exposed for report merging in tests/tools).
  void Aggregate();

  /// Human-readable summary table.
  std::string ToText() const;
};

enum class ShardPolicy {
  RoundRobin,    // scenario i -> worker i % jobs
  SizeBalanced,  // longest-processing-time greedy on scenario weights
};

struct CampaignOptions {
  /// Worker threads; 0 = hardware concurrency.
  int jobs = 1;
  ShardPolicy shard = ShardPolicy::RoundRobin;
  std::string entry = "main";
  uint64_t max_instructions = 50'000'000;
  uint64_t default_heap_cap = 1 << 20;
  /// Track per-scenario and union basic-block coverage.
  bool track_coverage = false;
  /// Keep each scenario's per-module bitmaps in its ScenarioResult (the
  /// explorer's fitness input). Implies nothing unless track_coverage is
  /// also set; costs memory proportional to scenarios x touched modules.
  bool collect_scenario_coverage = false;
  /// Keep a replay plan per scenario (costs memory on big campaigns).
  bool collect_replays = false;
  /// Hash final machine state into ScenarioResult::state_digest (costs a
  /// pass over every segment per scenario; SEU classification needs it).
  bool collect_state_digest = false;
  /// Snapshot/restore scenario execution: each worker warms its machine
  /// once (creates the entry process and runs `warmup_instructions` of
  /// fault-free prefix), takes a vm::Machine::Snapshot at the fault-window
  /// entry point, and restores per scenario — O(dirty pages) — instead of
  /// resetting and rebuilding the process. Reports are bit-identical to
  /// the cold path (test-enforced); scenarios that override the entry or
  /// heap cap, or whose plan names the entry symbol itself, fall back to
  /// cold execution automatically.
  bool snapshot = false;
  /// Snapshot-tree scenario execution: like `snapshot`, but the worker
  /// machines keep a *tree* of snapshot nodes keyed by fault window, so a
  /// scenario whose (per-scenario) window sits past the campaign-wide
  /// warmup restores a window-local node in O(pages dirtied since that
  /// window) instead of replaying the warmup suffix from the flat
  /// snapshot. First scenario at a new window pays restore-to-nearest +
  /// run-the-gap + capture once; everyone after restores directly.
  /// Reports stay bit-identical to cold and flat-snapshot execution
  /// (test-enforced). Implies warm-once semantics; `snapshot` is ignored
  /// when set.
  bool snapshot_tree = false;
  /// Instructions of fault-free prefix executed before the fault window
  /// opens (quantum granularity). Applies to cold execution too, so
  /// snapshot and cold runs of the same scenario stay bit-identical: the
  /// plan installs only once the prefix has run. 0 = window opens at the
  /// entry point.
  uint64_t warmup_instructions = 0;
  /// Execution engine for worker machines (campaign `--exec`). Unset =
  /// the machine default: Superblock, or whatever LFI_EXEC names. All
  /// engines produce bit-identical reports (test-enforced), so this is an
  /// A/B and debugging knob, not a semantic one.
  std::optional<vm::ExecMode> exec_mode;
  core::ControllerOptions controller;
};

/// Split scenario indices into `jobs` shards. Every index appears exactly
/// once across shards; shard contents are ascending. Deterministic.
std::vector<std::vector<size_t>> ShardScenarios(
    const std::vector<Scenario>& scenarios, size_t jobs, ShardPolicy policy);

/// Mix a campaign base seed with a scenario index into a well-spread
/// per-scenario seed (splitmix64). Scenario builders use this so every
/// scenario owns an independent, reproducible RNG stream.
uint64_t DeriveSeed(uint64_t base, uint64_t index);

/// Run fn(0..count-1) across `jobs` threads (0 = hardware concurrency).
/// Blocks until all calls return. fn must be safe to call concurrently on
/// distinct indices.
void ParallelFor(size_t count, int jobs,
                 const std::function<void(size_t)>& fn);

}  // namespace lfi::campaign
