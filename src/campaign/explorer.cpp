#include "campaign/explorer.hpp"

#include <algorithm>

#include "campaign/triage.hpp"
#include "core/scenario_gen.hpp"
#include "util/strings.hpp"

namespace lfi::campaign {

namespace {

/// Independent, well-spread RNG stream for (explorer seed, round, slot).
Rng SlotRng(uint64_t seed, size_t round, size_t slot) {
  return Rng(DeriveSeed(DeriveSeed(seed, round), slot));
}

const core::FunctionProfile* FindFunction(
    const std::vector<core::FaultProfile>& profiles, const std::string& name) {
  for (const core::FaultProfile& profile : profiles) {
    if (const core::FunctionProfile* fn = profile.function(name)) return fn;
  }
  return nullptr;
}

}  // namespace

size_t ExplorerReport::union_offsets() const {
  size_t total = 0;
  for (const auto& [mod, bitmap] : coverage) total += bitmap.Count();
  return total;
}

std::string ExplorerReport::ToText() const {
  std::string out;
  for (const RoundStats& rs : rounds) {
    out += Format(
        "round %zu: %zu scenarios, %zu crashed (%zu new buckets), "
        "%zu winners, +%zu offsets, union %zu offsets, corpus %zu\n",
        rs.round + 1, rs.scenarios, rs.crashes, rs.new_crash_buckets,
        rs.winners, rs.new_offsets, rs.union_offsets, rs.corpus_size);
  }
  out += Format("explorer: %zu unique crash bucket(s), union %zu offsets, "
                "corpus %zu plan(s)\n",
                crashes.size(), union_offsets(), corpus.size());
  for (const CrashReport& cr : crashes) {
    out += Format(
        "  crash %016llx: %s | %zu hit(s), first %s (round %zu) | "
        "replay %zu -> minimized %zu trigger(s)%s%s\n",
        (unsigned long long)cr.hash, cr.signature.c_str(), cr.count,
        cr.scenario_name.c_str(), cr.first_round + 1, cr.replay.triggers.size(),
        cr.minimized.triggers.size(),
        cr.minimize_runs > 0
            ? Format(" in %zu replay(s)", cr.minimize_runs).c_str()
            : "",
        cr.reproduces ? ", reproduces" : ", NOT re-verified");
  }
  return out;
}

PlanRunner::PlanRunner(
    MachineSetup setup,
    std::shared_ptr<const std::vector<core::FaultProfile>> profiles,
    CampaignOptions options)
    : options_(options), profiles_(std::move(profiles)) {
  if (options_.exec_mode) machine_.SetExecMode(*options_.exec_mode);
  if (setup) setup(machine_);
  machine_.Checkpoint();
  if (options_.track_coverage) {
    tracker_ = machine_.EnableCoverage();
    for (const auto& mod : machine_.loader().modules()) {
      module_names_.push_back(mod->object.name);
    }
  }
  controller_ =
      std::make_unique<core::Controller>(machine_, options_.controller);
  PrepareMachineSnapshot(machine_, options_,
                         options_.snapshot_tree ? &tree_state_ : nullptr);
}

ScenarioResult PlanRunner::Run(const core::Plan& plan,
                               const std::string& name,
                               std::optional<uint64_t> warmup) {
  Scenario scenario;
  scenario.name = name;
  scenario.plan = plan;
  scenario.warmup_instructions = warmup;
  return RunScenarioOn(machine_, *controller_, scenario, options_, profiles_,
                       tracker_, module_names_,
                       options_.snapshot_tree ? &tree_state_ : nullptr);
}

Explorer::Explorer(MachineSetup setup,
                   std::vector<core::FaultProfile> profiles,
                   ExplorerOptions options)
    : setup_(std::move(setup)),
      profiles_(std::move(profiles)),
      options_(std::move(options)) {
  if (options_.rounds == 0) options_.rounds = 1;
  if (options_.scenarios_per_round == 0) options_.scenarios_per_round = 1;
  fitness_ = MakeFitness(options_.fitness, setup_);
  sweep_ = BuildSweep();
}

std::vector<Scenario> Explorer::SeedPopulation(
    const std::vector<core::Plan>& initial) const {
  std::vector<Scenario> population;
  if (!initial.empty()) {
    // Caller-provided corpus (e.g. --corpus-dir): run all of it as round
    // 0 — even past the per-round budget — so a resumed run re-earns
    // every plan's coverage instead of silently dropping findings; top up
    // with fresh randoms when it is smaller than the budget.
    for (size_t i = 0; i < initial.size(); ++i) {
      Scenario s;
      s.name = Format("r1-%zu-corpus", i);
      s.plan = initial[i];
      population.push_back(std::move(s));
    }
  } else {
    // Paper generators as the seed: one exhaustive rotate plan (covers
    // every profiled error code once) plus independently-seeded randoms.
    Scenario exhaustive;
    exhaustive.name = "r1-0-exhaustive";
    exhaustive.plan = core::GenerateExhaustive(profiles_);
    population.push_back(std::move(exhaustive));
  }
  for (size_t i = population.size(); i < options_.scenarios_per_round; ++i) {
    Scenario s;
    s.name = Format("r1-%zu-random", i);
    s.plan = core::GenerateRandom(profiles_, options_.seed_probability,
                                  SlotRng(options_.seed, 0, i).next());
    population.push_back(std::move(s));
  }
  return population;
}

core::Plan Explorer::Mutate(const core::Plan& parent, const core::Plan& other,
                            Rng& rng, const char** op_name) const {
  // Every mutant gets a fresh plan seed: probability triggers then draw a
  // new (still fully deterministic) stream, so a re-run mutant explores
  // new timings even when its trigger set is unchanged.
  switch (rng.below(4)) {
    case 0: {  // trigger splicing: parent prefix + other suffix
      *op_name = "splice";
      core::Plan child;
      child.seed = rng.next();
      size_t cut_a = parent.triggers.empty()
                         ? 0
                         : rng.below(parent.triggers.size() + 1);
      size_t cut_b = other.triggers.empty()
                         ? 0
                         : rng.below(other.triggers.size() + 1);
      child.triggers.assign(parent.triggers.begin(),
                            parent.triggers.begin() + static_cast<long>(cut_a));
      child.triggers.insert(child.triggers.end(),
                            other.triggers.begin() + static_cast<long>(cut_b),
                            other.triggers.end());
      if (child.triggers.empty()) child.triggers = parent.triggers;
      return child;
    }
    case 1: {  // error-code swap: pin one trigger to a profiled pair
      *op_name = "swap-code";
      core::Plan child = parent;
      child.seed = rng.next();
      if (!child.triggers.empty()) {
        core::FunctionTrigger& t =
            child.triggers[rng.below(child.triggers.size())];
        if (const core::FunctionProfile* fn =
                FindFunction(profiles_, t.function)) {
          auto injectables =
              fn->injectables(options_.campaign.controller.feasible_only);
          if (!injectables.empty()) {
            auto [retval, errno_value] =
                injectables[rng.below(injectables.size())];
            t.retval = retval;
            t.errno_value = errno_value
                                ? std::optional<int32_t>(
                                      static_cast<int32_t>(*errno_value))
                                : std::nullopt;
          }
        }
      }
      return child;
    }
    case 2: {  // argument fault: corrupt an argument, pass the call through
      // The paper's <modify> fault (§4). Unlike replace-the-call faults,
      // the (corrupted) call still reaches libc and the kernel, so *real*
      // error paths execute — the errno-store branches in the wrappers are
      // unreachable by any retval-injection faultload, which is where the
      // explorer finds coverage one-shot random never can.
      *op_name = "arg-fault";
      core::Plan child = parent;
      child.seed = rng.next();
      if (!child.triggers.empty()) {
        core::FunctionTrigger& t =
            child.triggers[rng.below(child.triggers.size())];
        if (t.mode != core::FunctionTrigger::Mode::CallCount) {
          t.mode = core::FunctionTrigger::Mode::CallCount;
          t.inject_call = 1 + rng.below(4);
        }
        t.max_injections = 1;
        t.call_original = true;
        t.retval = 0;  // ignored on pass-through; keeps errno writes off
        t.errno_value = std::nullopt;
        core::ArgModification m;
        m.argument = 1 + static_cast<int>(rng.below(3));
        switch (rng.below(3)) {
          case 0:  // bogus handle / pointer
            m.op = core::ArgModification::Op::Set;
            m.value = -1;
            break;
          case 1:  // zero it out
            m.op = core::ArgModification::Op::Set;
            m.value = 0;
            break;
          default:  // shrink a count (short read/write)
            m.op = core::ArgModification::Op::Sub;
            m.value = 1 + static_cast<int64_t>(rng.below(8));
            break;
        }
        t.modifications.assign(1, m);
      }
      return child;
    }
    default: {  // call-count / probability perturbation
      *op_name = "perturb";
      core::Plan child = parent;
      child.seed = rng.next();
      if (!child.triggers.empty()) {
        core::FunctionTrigger& t =
            child.triggers[rng.below(child.triggers.size())];
        switch (t.mode) {
          case core::FunctionTrigger::Mode::CallCount: {
            int64_t delta = rng.range(-3, 3);
            int64_t next = static_cast<int64_t>(t.inject_call) + delta;
            t.inject_call = next < 1 ? 1 : static_cast<uint64_t>(next);
            break;
          }
          case core::FunctionTrigger::Mode::Probability: {
            double factor = 0.5 + rng.uniform() * 1.5;  // [0.5, 2)
            t.probability = std::min(1.0, std::max(0.01, t.probability * factor));
            break;
          }
          case core::FunctionTrigger::Mode::Always:
          case core::FunctionTrigger::Mode::Rotate: {
            // Narrow a broad trigger to one precise early call — the shape
            // minimized reproducers take, and a good source of distinct
            // timings.
            t.mode = core::FunctionTrigger::Mode::CallCount;
            t.inject_call = 1 + rng.below(8);
            t.max_injections = 1;
            break;
          }
        }
      }
      return child;
    }
  }
}

std::vector<Explorer::SweepCandidate> Explorer::BuildSweep() const {
  std::vector<std::string> functions;
  for (const core::FaultProfile& profile : profiles_) {
    for (const core::FunctionProfile& fn : profile.functions) {
      if (!fn.error_codes.empty()) functions.push_back(fn.name);
    }
  }
  struct Stage {
    int argument;
    core::ArgModification::Op op;
    int64_t value;
  };
  // Stage order encodes fault likelihood: shortened I/O counts first (the
  // classic partial read/write), then poisoned handles, then zeroed
  // pointers/sizes. Within a stage, call 2 leads — protocols are usually
  // past setup by then, so mid-stream corruption bites hardest.
  static constexpr Stage kStages[] = {
      {3, core::ArgModification::Op::Sub, 9},
      {1, core::ArgModification::Op::Set, -1},
      {2, core::ArgModification::Op::Set, 0},
  };
  static constexpr uint64_t kCalls[] = {2, 3, 1, 4};
  std::vector<SweepCandidate> out;
  for (const Stage& stage : kStages) {
    for (uint64_t call : kCalls) {
      for (const std::string& fn : functions) {
        SweepCandidate c;
        c.function = fn;
        c.inject_call = call;
        c.mod.argument = stage.argument;
        c.mod.op = stage.op;
        c.mod.value = stage.value;
        out.push_back(std::move(c));
      }
    }
  }
  return out;
}

core::Plan Explorer::SweepPlan(const SweepCandidate& candidate,
                               uint64_t seed) const {
  core::Plan plan;
  plan.seed = seed;
  core::FunctionTrigger t;
  t.function = candidate.function;
  t.mode = core::FunctionTrigger::Mode::CallCount;
  t.inject_call = candidate.inject_call;
  t.max_injections = 1;
  t.call_original = true;
  t.retval = 0;  // ignored on pass-through; keeps errno writes off
  t.modifications.push_back(candidate.mod);
  plan.triggers.push_back(std::move(t));
  return plan;
}

std::vector<Scenario> Explorer::EvolvePopulation(
    const std::vector<core::Plan>& corpus,
    const std::vector<uint64_t>& windows, size_t round) const {
  const size_t budget = options_.scenarios_per_round;
  std::vector<Scenario> population;
  size_t fresh =
      static_cast<size_t>(static_cast<double>(budget) * options_.fresh_fraction);
  size_t sweep_n =
      static_cast<size_t>(static_cast<double>(budget) * options_.sweep_fraction);
  if (sweep_.empty()) sweep_n = 0;
  size_t havoc_n = budget > fresh + sweep_n ? budget - fresh - sweep_n : 0;
  if (corpus.empty()) havoc_n = 0;  // nothing to mutate; slots go fresh

  for (size_t k = 0; k < budget; ++k) {
    Rng rng = SlotRng(options_.seed, round, k);
    Scenario s;
    if (k < havoc_n) {
      // The fitness policy picks the parent; the splice partner stays a
      // uniform draw in every mode. Each policy consumes a fixed number of
      // RNG values, so the mutation stream that follows is aligned no
      // matter which policy ran.
      size_t parent_index = fitness_->SelectParent(corpus.size(), rng);
      const core::Plan& parent = corpus[parent_index];
      const core::Plan& other = corpus[rng.below(corpus.size())];
      const char* op = "mutate";
      s.plan = Mutate(parent, other, rng, &op);
      s.name = Format("r%zu-%zu-%s", round + 1, k, op);
      // Fork the child from the parent's trigger point: its fault window
      // opens where the parent's faults started mattering, so snapshot
      // trees restore the shared prefix instead of re-running it.
      if (options_.fork_windows) s.warmup_instructions = windows[parent_index];
    } else if (k < havoc_n + sweep_n) {
      // Deterministic sweep: continue the enumeration where the previous
      // round left off (rounds 1.. are the evolved ones).
      size_t index = ((round - 1) * sweep_n + (k - havoc_n)) % sweep_.size();
      s.plan = SweepPlan(sweep_[index], rng.next());
      s.name = Format("r%zu-%zu-sweep-%s-c%llu", round + 1, k,
                      sweep_[index].function.c_str(),
                      (unsigned long long)sweep_[index].inject_call);
    } else {
      s.plan = core::GenerateRandom(profiles_, options_.seed_probability,
                                    rng.next());
      s.name = Format("r%zu-%zu-fresh", round + 1, k);
    }
    population.push_back(std::move(s));
  }
  return population;
}

CampaignOptions Explorer::DispatchOptions(CampaignOptions base) {
  base.track_coverage = true;
  base.collect_scenario_coverage = true;
  base.collect_replays = true;
  return base;
}

ExplorerReport Explorer::Explore(std::vector<core::Plan> initial_corpus) {
  ExplorerReport report;

  CampaignOptions copts = DispatchOptions(options_.campaign);
  // The internal runner is built (lazily) only when no external dispatch
  // was supplied; through the fabric, every round's population goes out
  // over the wire instead.
  std::unique_ptr<CampaignRunner> runner;
  if (!options_.dispatch) {
    runner = std::make_unique<CampaignRunner>(setup_, profiles_, copts);
  }
  ScenarioDispatch& dispatch =
      options_.dispatch ? *options_.dispatch
                        : static_cast<ScenarioDispatch&>(*runner);

  std::vector<core::Plan> corpus;
  // corpus[i]'s fork window (parallel to `corpus`): the quantum-floored
  // instant of its first injection when fork_windows is on, else the
  // campaign-wide warmup.
  std::vector<uint64_t> corpus_windows;
  // corpus[i]'s own per-module coverage (parallel again), retained only
  // when the fitness policy scores members by what they cover; empty maps
  // otherwise.
  std::vector<std::map<std::string, vm::CoverageBitmap>> corpus_coverage;
  std::map<std::string, vm::CoverageBitmap>& unioned = report.coverage;
  std::map<uint64_t, size_t> buckets;  // crash_hash -> index into crashes

  for (size_t round = 0; round < options_.rounds; ++round) {
    std::vector<Scenario> population;
    if (round == 0) {
      population = SeedPopulation(initial_corpus);
    } else {
      // Let the fitness policy rescore the corpus against what is still
      // uncovered before this round's parents are chosen.
      fitness_->BeginRound(corpus_coverage, unioned);
      population = EvolvePopulation(corpus, corpus_windows, round);
    }
    CampaignReport creport = dispatch.Run(population);

    RoundStats rs;
    rs.round = round;
    rs.scenarios = population.size();
    // Results are index-ordered and jobs-invariant, so scoring them in
    // order (first-come wins ties for "who covered it first") is
    // deterministic for any worker count.
    for (const ScenarioResult& r : creport.results) {
      size_t fresh_offsets = 0;
      for (const auto& [mod, bitmap] : r.coverage) {
        fresh_offsets += bitmap.CountNotIn(unioned[mod]);
      }
      const uint64_t scenario_window =
          population[r.index].warmup_instructions.value_or(
              copts.warmup_instructions);
      if (fresh_offsets > 0) {
        for (const auto& [mod, bitmap] : r.coverage) {
          unioned[mod].Merge(bitmap);
        }
        corpus.push_back(population[r.index].plan);
        // The admitted plan's fork window: the quantum floor of its first
        // injection instant, never receding below the window it already
        // ran with. Derived from mode- and engine-invariant data, so the
        // whole exploration stays bit-identical across execution modes.
        uint64_t window = scenario_window;
        if (options_.fork_windows && r.first_injection_instructions > 0) {
          uint64_t floored = vm::Machine::kQuantum *
                             ((r.first_injection_instructions - 1) /
                              vm::Machine::kQuantum);
          window = std::max(window, floored);
        }
        corpus_windows.push_back(window);
        corpus_coverage.push_back(
            fitness_->wants_corpus_coverage()
                ? r.coverage
                : std::map<std::string, vm::CoverageBitmap>{});
        rs.new_offsets += fresh_offsets;
        ++rs.winners;
      }
      if (r.status == ScenarioStatus::Crashed) {
        ++rs.crashes;
        auto [it, inserted] =
            buckets.try_emplace(r.crash_hash, report.crashes.size());
        if (inserted) {
          CrashReport cr;
          cr.hash = r.crash_hash;
          cr.site_hash = r.crash_site_hash;
          cr.signature = CrashSignature(r.signal, r.fault_frames);
          cr.scenario_name = r.name;
          cr.first_round = round;
          cr.count = 1;
          cr.replay = r.replay;
          cr.minimized = r.replay;
          cr.window = scenario_window;
          report.crashes.push_back(std::move(cr));
          ++rs.new_crash_buckets;
        } else {
          ++report.crashes[it->second].count;
        }
      }
    }
    rs.union_offsets = report.union_offsets();
    rs.corpus_size = corpus.size();
    report.rounds.push_back(rs);
    if (options_.on_round) options_.on_round(rs);
  }
  report.corpus = std::move(corpus);

  // Shrink each unique crash to a 1-minimal reproducer. Crashes are
  // independent, so they minimize in parallel — each oracle owns a
  // private machine and every minimization is deterministic on its own.
  if (options_.minimize_crashes && !report.crashes.empty()) {
    auto shared_profiles =
        std::make_shared<const std::vector<core::FaultProfile>>(profiles_);
    CampaignOptions oracle_opts = options_.campaign;
    oracle_opts.track_coverage = false;
    oracle_opts.collect_scenario_coverage = false;
    oracle_opts.collect_replays = false;
    ParallelFor(report.crashes.size(), options_.campaign.jobs, [&](size_t i) {
      CrashReport& cr = report.crashes[i];
      PlanRunner oracle(setup_, shared_profiles, oracle_opts);
      core::MinimizeStats stats;
      cr.minimized = core::MinimizePlan(
          cr.replay,
          [&](const core::Plan& candidate) {
            ScenarioResult r = oracle.Run(candidate, "plan", cr.window);
            return r.status == ScenarioStatus::Crashed &&
                   r.crash_site_hash == cr.site_hash;
          },
          &stats);
      cr.minimize_runs = stats.oracle_runs;
      // Re-verify from scratch: the shipped reproducer must stand alone
      // (at the witness's fault window — replay call counts are relative
      // to the install point).
      ScenarioResult check = oracle.Run(cr.minimized, "plan", cr.window);
      cr.reproduces = check.status == ScenarioStatus::Crashed &&
                      check.crash_site_hash == cr.site_hash;
    });
  }
  return report;
}

}  // namespace lfi::campaign
