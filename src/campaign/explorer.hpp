// Coverage-guided campaign exploration: the closed loop over the campaign
// engine.
//
// The paper (§4) generates fault scenarios open-loop — an exhaustive or
// random plan, run once. The explorer turns that into an evolutionary
// search: each round's scenarios run as one campaign, every scenario is
// scored by how many instruction offsets it covers that no corpus member
// covered before (CoverageBitmap diff against the corpus-union bitmap),
// and winners are kept and mutated into the next round's population.
// Which winners get mutated is the pluggable part: parent selection goes
// through a campaign::Fitness policy (fitness.hpp) — uniform coverage
// fitness by default, or CFG-distance fitness that steers mutation toward
// still-uncovered error-handling blocks.
// Crashes are deduplicated by triage hash (campaign/triage.hpp) and each
// unique crash is shrunk to a minimal reproducer by replay-based delta
// debugging (core::MinimizePlan) against a PlanRunner oracle.
//
// Determinism: round populations are built on the coordinating thread
// from seeded RNG streams (DeriveSeed of the explorer seed, round, and
// slot), campaign results are jobs-invariant by the runner's contract,
// scoring walks results in index order, and each crash's minimization is
// an independent deterministic computation on a private machine — so the
// whole exploration (union bitmap, crash-hash set, minimized plans) is
// bit-identical for any --jobs count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "campaign/fitness.hpp"
#include "campaign/runner.hpp"
#include "core/replay.hpp"
#include "util/rng.hpp"

namespace lfi::campaign {

/// One exploration round's outcome, as the CLI prints it. All fields are
/// jobs-invariant (no wall-clock anywhere).
struct RoundStats {
  size_t round = 0;           // 0-based
  size_t scenarios = 0;       // population size this round
  size_t crashes = 0;         // crashed scenarios this round
  size_t new_crash_buckets = 0;  // previously-unseen triage hashes
  size_t winners = 0;         // scenarios that added new coverage
  size_t new_offsets = 0;     // offsets first covered this round
  size_t union_offsets = 0;   // cumulative corpus-union popcount
  size_t corpus_size = 0;     // corpus after this round
};

/// One deduplicated crash with its replay and minimized reproducer.
struct CrashReport {
  uint64_t hash = 0;          // triage bucket (site + injected-fault set)
  uint64_t site_hash = 0;     // signal + fault frames (minimizer target)
  std::string signature;      // human-readable label
  std::string scenario_name;  // first witness
  size_t first_round = 0;
  size_t count = 0;           // crashed scenarios in this bucket
  core::Plan replay;          // full §5.2 replay plan of the first witness
  core::Plan minimized;       // 1-minimal reproducer (== replay when
                              // minimization is off or failed)
  /// Fault window the witness ran with (call counts in the replay are
  /// relative to its install point, so reproduction needs the same
  /// window). Equals the campaign warmup unless fork_windows placed it.
  uint64_t window = 0;
  size_t minimize_runs = 0;   // oracle executions spent shrinking
  /// Re-verified after minimization: the minimized plan, run fresh,
  /// crashes at the same site.
  bool reproduces = false;
};

struct ExplorerOptions {
  /// Exploration rounds; round 0 runs the seed corpus.
  size_t rounds = 3;
  /// Scenario budget per round (population size).
  size_t scenarios_per_round = 16;
  /// Master seed: drives seed-corpus generation and all mutation RNG.
  uint64_t seed = 1;
  /// Injection probability for generated random plans (seeding + fresh
  /// immigrants).
  double seed_probability = 0.1;
  /// Fraction of each evolved round that is fresh random plans instead of
  /// mutants — keeps the search from inbreeding on early winners.
  double fresh_fraction = 0.25;
  /// Fraction of each evolved round spent on the deterministic arg-fault
  /// sweep: canonical argument corruptions (shrunken lengths, bogus
  /// handles, zeroed arguments) applied call-original over the profiled
  /// functions in a fixed order, one candidate per slot, continuing where
  /// the previous round stopped. Pass-through faults reach real kernel
  /// error paths that no replace-the-call faultload can execute, which is
  /// where the explorer out-covers one-shot generation.
  double sweep_fraction = 0.34;
  /// Parent-selection policy for mutation (fitness.hpp). Coverage is the
  /// original uniform choice; CfgDistance biases toward corpus members
  /// close (in CFG edges) to uncovered error-handling blocks. Admission
  /// stays fresh-coverage-based in both modes, and either policy is
  /// bit-identical across jobs counts, execution modes, and the fabric.
  FitnessKind fitness = FitnessKind::Coverage;
  /// Shrink each unique crash to a minimal reproducer after the rounds.
  bool minimize_crashes = true;
  /// Fork mutated children from their corpus parent's trigger point: each
  /// admitted plan records the (quantum-floored) instruction instant of
  /// its first injection, and its mutants open their fault window there
  /// instead of at the campaign-wide warmup — under --snapshot-tree the
  /// worker restores a window-local node, so children skip the parent's
  /// whole fault-free prefix. Changes search semantics (triggers can no
  /// longer fire before the parent's window), so it is off by default and
  /// independent of execution mode: the same fork-windows exploration is
  /// bit-identical under cold, flat-snapshot, and tree execution.
  bool fork_windows = false;
  /// Campaign execution knobs (jobs, entry, budgets, controller). The
  /// explorer forces track_coverage / collect_scenario_coverage /
  /// collect_replays on — they are its inputs.
  CampaignOptions campaign;
  /// External round executor — the serve fabric's coordinator, or any
  /// other ScenarioDispatch. When set, every round's population runs
  /// through it instead of an internally-built CampaignRunner; it must be
  /// configured with Explorer::DispatchOptions(campaign) so the results
  /// carry the per-scenario bitmaps and replays the explorer consumes.
  /// Crash minimization still runs in-process (the ddmin oracle needs a
  /// private machine). Not owned.
  ScenarioDispatch* dispatch = nullptr;
  /// Per-round progress callback (CLI progress lines).
  std::function<void(const RoundStats&)> on_round;
};

struct ExplorerReport {
  std::vector<RoundStats> rounds;
  /// Corpus-union coverage per module name — the merged bitmap of every
  /// corpus member (identical across jobs counts).
  std::map<std::string, vm::CoverageBitmap> coverage;
  /// Surviving corpus: every plan that added coverage, in the
  /// deterministic order it was admitted.
  std::vector<core::Plan> corpus;
  /// Unique crashes in first-seen order.
  std::vector<CrashReport> crashes;

  size_t union_offsets() const;
  /// Human-readable summary (jobs-invariant: no timing).
  std::string ToText() const;
};

/// Single-plan runner over a reusable machine: builds the target once,
/// then Run() executes one plan per call via the same per-scenario path
/// campaign workers use (RunScenarioOn). This is the minimization oracle,
/// and the way tests/tools re-verify a minimized reproducer.
class PlanRunner {
 public:
  PlanRunner(MachineSetup setup,
             std::shared_ptr<const std::vector<core::FaultProfile>> profiles,
             CampaignOptions options = {});

  /// Run one plan (resets the machine first). Deterministic: the result
  /// depends only on the plan (and the explicit `warmup` window override,
  /// when given — needed to reproduce fork-windows findings).
  ScenarioResult Run(const core::Plan& plan, const std::string& name = "plan",
                     std::optional<uint64_t> warmup = std::nullopt);

 private:
  CampaignOptions options_;
  std::shared_ptr<const std::vector<core::FaultProfile>> profiles_;
  vm::Machine machine_;
  vm::CoverageTracker* tracker_ = nullptr;
  std::vector<std::string> module_names_;
  std::unique_ptr<core::Controller> controller_;
  SnapshotTreeState tree_state_;
};

class Explorer {
 public:
  Explorer(MachineSetup setup, std::vector<core::FaultProfile> profiles,
           ExplorerOptions options = {});

  /// Run the exploration loop. `initial_corpus` (e.g. loaded from a
  /// corpus directory) seeds round 0 when non-empty; otherwise round 0 is
  /// seeded from GenerateExhaustive plus independently-seeded
  /// GenerateRandom plans.
  ExplorerReport Explore(std::vector<core::Plan> initial_corpus = {});

  const ExplorerOptions& options() const { return options_; }

  /// The campaign options an external round dispatcher must be built
  /// with: `base` plus the collection flags the explorer depends on
  /// (track_coverage, collect_scenario_coverage, collect_replays) — the
  /// same forcing Explore() applies to its internal runner.
  static CampaignOptions DispatchOptions(CampaignOptions base);

 private:
  /// One deterministic arg-fault sweep candidate: fail nothing, corrupt
  /// one argument of one call and let it through.
  struct SweepCandidate {
    std::string function;
    uint64_t inject_call = 1;
    core::ArgModification mod;
  };

  std::vector<Scenario> SeedPopulation(
      const std::vector<core::Plan>& initial) const;
  /// `windows[i]` is corpus[i]'s fork window (parallel vectors); mutants
  /// inherit their parent's window when fork_windows is on.
  std::vector<Scenario> EvolvePopulation(const std::vector<core::Plan>& corpus,
                                         const std::vector<uint64_t>& windows,
                                         size_t round) const;
  /// The fixed sweep order: stages (shrink length-ish arg, poison arg 1,
  /// zero arg 2) x calls {2,3,1,4} x profiled functions.
  std::vector<SweepCandidate> BuildSweep() const;
  core::Plan SweepPlan(const SweepCandidate& candidate, uint64_t seed) const;
  /// One seeded mutation of `parent` (possibly splicing in `other`).
  /// Returns the operator name through `op_name` for scenario labels.
  core::Plan Mutate(const core::Plan& parent, const core::Plan& other,
                    Rng& rng, const char** op_name) const;

  MachineSetup setup_;
  std::vector<core::FaultProfile> profiles_;
  ExplorerOptions options_;
  /// Parent-selection policy (options_.fitness), built once in the ctor.
  std::unique_ptr<Fitness> fitness_;
  /// Fixed sweep order, built once — it depends only on the profiles.
  std::vector<SweepCandidate> sweep_;
};

}  // namespace lfi::campaign
