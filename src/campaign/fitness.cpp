#include "campaign/fitness.hpp"

#include <algorithm>
#include <deque>

#include "analysis/cfg.hpp"
#include "analysis/heuristics.hpp"
#include "vm/machine.hpp"

namespace lfi::campaign {

namespace {

constexpr size_t kUnreachable = SIZE_MAX;

}  // namespace

const char* FitnessKindName(FitnessKind kind) {
  switch (kind) {
    case FitnessKind::Coverage:
      return "coverage";
    case FitnessKind::CfgDistance:
      return "cfg-distance";
  }
  return "?";
}

std::optional<FitnessKind> ParseFitnessKind(std::string_view name) {
  if (name == "coverage") return FitnessKind::Coverage;
  if (name == "cfg-distance") return FitnessKind::CfgDistance;
  return std::nullopt;
}

size_t CoverageFitness::SelectParent(size_t corpus_size, Rng& rng) {
  return rng.below(corpus_size);
}

CfgDistanceFitness::CfgDistanceFitness(const MachineSetup& setup) {
  // A throwaway machine is the one place that knows which modules an
  // exploration runs: apply the same setup, then walk the loader. The
  // machine is discarded once the block graphs are extracted.
  vm::Machine machine;
  if (setup) setup(machine);
  for (const auto& mod : machine.loader().modules()) {
    const sso::SharedObject& so = mod->object;
    ModuleGraph graph;
    for (const isa::Symbol& fn : so.exports) {
      auto result = analysis::BuildCfg(so, fn);
      if (!result.ok()) continue;  // undecodable export: contributes nothing
      const analysis::Cfg& cfg = result.value();
      const size_t base = graph.block_begin.size();
      for (const analysis::BasicBlock& b : cfg.blocks) {
        graph.block_begin.push_back(b.begin);
        std::vector<size_t> preds;
        preds.reserve(b.preds.size());
        for (size_t p : b.preds) preds.push_back(base + p);
        graph.preds.push_back(std::move(preds));
      }
      for (size_t e : analysis::ErrorHandlingBlocks(cfg)) {
        graph.error_blocks.push_back(base + e);
      }
    }
    if (!graph.block_begin.empty()) {
      graphs_.emplace(so.name, std::move(graph));
    }
  }
}

void CfgDistanceFitness::BeginRound(
    const std::vector<std::map<std::string, vm::CoverageBitmap>>&
        corpus_coverage,
    const std::map<std::string, vm::CoverageBitmap>& unioned) {
  const size_t n = corpus_coverage.size();
  scores_.assign(n, 0.0);

  // Per module: multi-source reverse BFS from the error-handling blocks
  // the corpus has NOT reached yet. dist[b] = forward-CFG distance from
  // block b to the nearest uncovered error block. Recomputed each round —
  // as error blocks get covered they stop attracting, and the search
  // moves on to the next frontier.
  for (const auto& [name, graph] : graphs_) {
    std::vector<size_t> dist(graph.block_begin.size(), kUnreachable);
    std::deque<size_t> frontier;
    const vm::CoverageBitmap* union_bm = nullptr;
    if (auto it = unioned.find(name); it != unioned.end()) {
      union_bm = &it->second;
    }
    for (size_t e : graph.error_blocks) {
      const bool covered = union_bm && union_bm->Test(graph.block_begin[e]);
      if (!covered && dist[e] == kUnreachable) {
        dist[e] = 0;
        frontier.push_back(e);
      }
    }
    while (!frontier.empty()) {
      size_t b = frontier.front();
      frontier.pop_front();
      for (size_t p : graph.preds[b]) {
        if (dist[p] == kUnreachable) {
          dist[p] = dist[b] + 1;
          frontier.push_back(p);
        }
      }
    }

    // Score every member's covered blocks by proximity: sum of
    // 1/(1+dist) in a fixed order (modules in map order here, blocks
    // ascending below) so floating-point summation is identical on every
    // worker topology.
    for (size_t i = 0; i < n; ++i) {
      auto it = corpus_coverage[i].find(name);
      if (it == corpus_coverage[i].end()) continue;
      const vm::CoverageBitmap& bm = it->second;
      double score = 0.0;
      for (size_t b = 0; b < graph.block_begin.size(); ++b) {
        if (dist[b] == kUnreachable) continue;
        if (bm.Test(graph.block_begin[b])) {
          score += 1.0 / (1.0 + static_cast<double>(dist[b]));
        }
      }
      scores_[i] += score;
    }
  }

  // Rank best-first; ties (including the everything-covered case, where
  // all scores are 0) break by corpus index — older members first, which
  // is both deterministic and a reasonable seniority prior.
  ranked_.resize(n);
  for (size_t i = 0; i < n; ++i) ranked_[i] = i;
  std::stable_sort(ranked_.begin(), ranked_.end(), [&](size_t a, size_t b) {
    return scores_[a] > scores_[b];
  });
}

size_t CfgDistanceFitness::SelectParent(size_t corpus_size, Rng& rng) {
  // Tournament of two: ALWAYS two draws (fixed RNG consumption — the
  // mutation stream after us depends on it), keep the better rank.
  uint64_t a = rng.below(corpus_size);
  uint64_t b = rng.below(corpus_size);
  uint64_t rank = std::min(a, b);
  // ranked_ tracks the corpus as of the last BeginRound; when selection
  // outruns it (defensive — the explorer calls BeginRound every round),
  // fall back to the rank itself, which is still a uniform-ish index.
  if (rank < ranked_.size() && ranked_.size() == corpus_size) {
    return ranked_[rank];
  }
  return static_cast<size_t>(rank);
}

std::unique_ptr<Fitness> MakeFitness(FitnessKind kind,
                                     const MachineSetup& setup) {
  switch (kind) {
    case FitnessKind::CfgDistance:
      return std::make_unique<CfgDistanceFitness>(setup);
    case FitnessKind::Coverage:
      break;
  }
  return std::make_unique<CoverageFitness>();
}

}  // namespace lfi::campaign
