// Pluggable explorer fitness: how parents are picked from the corpus.
//
// The explorer's original scoring — admit anything that covers a fresh
// offset, pick mutation parents uniformly — is one policy among several.
// This seam extracts parent selection behind an interface so directed
// search strategies can ride the same evolutionary loop:
//
//   - CoverageFitness reproduces the original behavior exactly: uniform
//     parent choice, one RNG draw per selection. Explorations run with it
//     are bit-identical to the pre-seam explorer.
//   - CfgDistanceFitness steers toward error handling (the code fault
//     injection exists to execute, paper §6.1): it precomputes, per
//     module, each basic block's CFG distance to the *uncovered*
//     error-handling blocks (analysis::ErrorHandlingBlocks over every
//     export's Cfg), scores each corpus member by the proximity of the
//     blocks it covers, and biases parent choice toward high scorers.
//
// Determinism discipline (what keeps jobs-invariance and fabric
// bit-identity): SelectParent must consume a FIXED number of RNG draws
// per call — the per-slot mutation stream that follows it depends on the
// draw count, not just the chosen index. Scores are computed in a fixed
// order (modules in map order, blocks ascending) from jobs-invariant
// inputs (corpus bitmaps, union bitmap), and ranking breaks ties by
// corpus index — so every worker topology selects identical parents.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/runner.hpp"
#include "util/rng.hpp"
#include "vm/coverage.hpp"

namespace lfi::campaign {

enum class FitnessKind : uint8_t {
  Coverage = 0,     // original: uniform parent choice
  CfgDistance = 1,  // directed: bias toward uncovered error handling
};

const char* FitnessKindName(FitnessKind kind);
/// Parse a `--fitness` value ("coverage" | "cfg-distance").
std::optional<FitnessKind> ParseFitnessKind(std::string_view name);

class Fitness {
 public:
  virtual ~Fitness() = default;

  /// Round prologue, called before an evolved round's parent selections:
  /// `corpus_coverage[i]` is corpus member i's per-module bitmap (parallel
  /// to the corpus; empty maps when the policy does not request them) and
  /// `unioned` the corpus-union coverage so far. Default: no-op.
  virtual void BeginRound(
      const std::vector<std::map<std::string, vm::CoverageBitmap>>&
          corpus_coverage,
      const std::map<std::string, vm::CoverageBitmap>& unioned) {
    (void)corpus_coverage;
    (void)unioned;
  }

  /// Pick a mutation parent in [0, corpus_size). Contract: consumes a
  /// fixed number of `rng` draws per call for a given policy, regardless
  /// of scores — the caller's RNG stream must stay aligned across rounds
  /// and worker topologies.
  virtual size_t SelectParent(size_t corpus_size, Rng& rng) = 0;

  /// Whether the explorer should retain per-member coverage bitmaps for
  /// BeginRound (they cost memory; only score-based policies need them).
  virtual bool wants_corpus_coverage() const { return false; }
};

/// The original policy: uniform over the corpus, exactly one rng.below()
/// per selection — bit-identical to the pre-seam explorer.
class CoverageFitness : public Fitness {
 public:
  size_t SelectParent(size_t corpus_size, Rng& rng) override;
};

/// Directed policy: rank corpus members by proximity to uncovered
/// error-handling blocks, then tournament-select (two uniform draws, keep
/// the better rank) so low scorers still reproduce occasionally.
class CfgDistanceFitness : public Fitness {
 public:
  /// Builds the per-module block graphs once, from a throwaway machine:
  /// `setup` loads the same modules the exploration will run, and every
  /// export's CFG contributes blocks, predecessor edges, and its
  /// error-handling block set.
  explicit CfgDistanceFitness(const MachineSetup& setup);

  void BeginRound(const std::vector<std::map<std::string, vm::CoverageBitmap>>&
                      corpus_coverage,
                  const std::map<std::string, vm::CoverageBitmap>& unioned)
      override;
  size_t SelectParent(size_t corpus_size, Rng& rng) override;
  bool wants_corpus_coverage() const override { return true; }

  /// Scores computed by the last BeginRound, parallel to the corpus
  /// (test/debug introspection).
  const std::vector<double>& scores() const { return scores_; }

 private:
  /// One module's function CFGs flattened into a single block universe
  /// (indices are module-global; edges never cross function boundaries).
  struct ModuleGraph {
    std::vector<uint32_t> block_begin;        // begin offset per block
    std::vector<std::vector<size_t>> preds;   // reverse CFG edges
    std::vector<size_t> error_blocks;         // ErrorHandlingBlocks, global
  };

  // std::map: deterministic module iteration order for score summation.
  std::map<std::string, ModuleGraph> graphs_;
  std::vector<double> scores_;   // per corpus member, last BeginRound
  std::vector<size_t> ranked_;   // corpus indices, best score first
};

/// Factory for ExplorerOptions::fitness. `setup` is only used (and only
/// then runs a throwaway machine build) for kinds that need the CFGs.
std::unique_ptr<Fitness> MakeFitness(FitnessKind kind,
                                     const MachineSetup& setup);

}  // namespace lfi::campaign
