#include "campaign/runner.hpp"

#include <chrono>
#include <thread>

#include "campaign/triage.hpp"

namespace lfi::campaign {

namespace {
using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

/// True when the plan names the entry symbol itself. Installing such a
/// plan shadows the entry with a stub, so the cold path's CreateProcess
/// (which resolves the entry after Install) refuses to start; a snapshot
/// restore resolved the entry before any stub existed and would diverge.
/// Those scenarios always run cold.
bool PlanNamesEntry(const core::Plan& plan, const std::string& entry) {
  for (const core::FunctionTrigger& t : plan.triggers) {
    if (t.function == entry) return true;
  }
  return false;
}
}  // namespace

bool PrepareMachineSnapshot(vm::Machine& machine,
                            const CampaignOptions& options,
                            SnapshotTreeState* tree) {
  if (!options.snapshot && !options.snapshot_tree) return false;
  machine.Reset();
  auto pid = machine.CreateProcess(options.entry, options.default_heap_cap);
  if (!pid.ok()) return false;
  if (options.warmup_instructions > 0) {
    machine.Run(options.warmup_instructions);
  }
  machine.Snapshot();  // fresh tree, root at the campaign-wide window
  if (options.snapshot_tree && tree != nullptr) {
    tree->windows.clear();
    tree->windows[options.warmup_instructions] = machine.current_snapshot();
  }
  return true;
}

ScenarioResult RunScenarioOn(
    vm::Machine& machine, core::Controller& controller,
    const Scenario& scenario, const CampaignOptions& options,
    const std::shared_ptr<const std::vector<core::FaultProfile>>& profiles,
    vm::CoverageTracker* tracker, const std::vector<std::string>& module_names,
    SnapshotTreeState* tree) {
  ScenarioResult result;
  result.name = scenario.name;

  const std::string& entry =
      scenario.entry.empty() ? options.entry : scenario.entry;
  uint64_t heap_cap = scenario.heap_cap_bytes != 0 ? scenario.heap_cap_bytes
                                                   : options.default_heap_cap;
  const uint64_t warmup =
      scenario.warmup_instructions.value_or(options.warmup_instructions);
  const bool snapshot_mode = options.snapshot || options.snapshot_tree;
  // The per-worker snapshot was taken for the campaign-wide entry/heap
  // configuration at the campaign-wide window; scenarios that deviate from
  // the configuration — or whose window opens before the shared snapshot —
  // run cold.
  bool use_snapshot = snapshot_mode && machine.has_snapshot() &&
                      entry == options.entry &&
                      heap_cap == options.default_heap_cap &&
                      warmup >= options.warmup_instructions &&
                      !PlanNamesEntry(scenario.plan, entry);

  auto begin = Clock::now();
  bool setup_failed = false;
  auto setup_fail = [&](const std::string& error) {
    result.status = ScenarioStatus::SetupError;
    result.fault_message = error;
    setup_failed = true;
  };
  auto install = [&]() {
    if (auto st = controller.Install(scenario.plan, profiles); !st.ok()) {
      setup_fail(st.error());
    }
  };

  const vm::SnapshotRestoreStats stats_before = machine.restore_stats();
  int primary_pid = 0;
  if (use_snapshot) {
    // A snapshot without a live entry process (possible through the raw
    // Machine API, never through PrepareMachineSnapshot) can't serve
    // scenarios; run cold. Restores are exact, so everything below
    // reproduces the cold prefix bit-for-bit (Run targets are absolute
    // instruction counts measured in whole scheduler rounds).
    if (options.snapshot_tree && tree != nullptr) {
      // Window-local restore: the greatest window at-or-below this
      // scenario's. The base window is always present, so the lookup
      // never misses; a first visit to a deeper window runs the gap
      // fault-free once and captures a node for every scenario after.
      auto it = tree->windows.upper_bound(warmup);
      --it;
      use_snapshot =
          machine.RestoreTo(it->second) && !machine.processes().empty();
      if (use_snapshot) {
        controller.Reset();
        if (it->first < warmup) {
          machine.Run(warmup);
          tree->windows[warmup] = machine.PushSnapshot();
        }
      }
    } else {
      use_snapshot = machine.RestoreSnapshot() && !machine.processes().empty();
      if (use_snapshot) {
        controller.Reset();
        // Flat snapshot, deeper per-scenario window: replay the warmup
        // suffix fault-free from the snapshot point — the re-warm tax the
        // snapshot tree exists to eliminate.
        if (warmup > options.warmup_instructions) machine.Run(warmup);
      }
    }
  }
  if (use_snapshot) {
    // The machine sits at the scenario's fault-window entry point (entry
    // process created, warmup prefix executed); only the plan changes.
    install();
    if (!setup_failed) primary_pid = machine.processes().front()->pid();
  } else {
    machine.Reset();
    controller.Reset();
    if (warmup > 0) {
      // Windowed execution, cold: the fault-free prefix runs before the
      // plan installs — exactly what a snapshot restore reproduces.
      auto pid = machine.CreateProcess(entry, heap_cap);
      if (!pid.ok()) {
        setup_fail(pid.error());
      } else {
        machine.Run(warmup);
        install();
        primary_pid = pid.value();
      }
    } else {
      install();
      if (!setup_failed) {
        auto pid = machine.CreateProcess(entry, heap_cap);
        if (!pid.ok()) setup_fail(pid.error());
        else primary_pid = pid.value();
      }
    }
  }
  result.snapshot_fallback = snapshot_mode && !use_snapshot;
  {
    const vm::SnapshotRestoreStats& stats_after = machine.restore_stats();
    result.restore_pages =
        stats_after.pages_restored - stats_before.pages_restored;
    result.restore_nodes_walked =
        stats_after.nodes_walked - stats_before.nodes_walked;
  }
  if (setup_failed) return result;

  vm::RunOutcome outcome = machine.Run(options.max_instructions);
  result.seconds = Seconds(begin, Clock::now());
  result.instructions = machine.total_instructions();
  result.injections = controller.log().size();
  result.first_injection_instructions = controller.first_injection_instructions();
  result.seu_landed = controller.seu_landed();
  if (options.collect_state_digest) result.state_digest = machine.StateDigest();
  if (options.collect_replays) result.replay = controller.GenerateReplay();

  vm::Process* primary = machine.process(primary_pid);
  result.exit_code = primary->exit_code();
  result.signal = primary->signal();
  result.fault_message = primary->fault_message();
  if (primary->state() == vm::ProcState::Faulted) {
    result.status = ScenarioStatus::Crashed;
    result.fault_frames = FaultFrames(*primary);
    result.crash_site_hash = CrashSiteHash(result.signal, result.fault_frames);
    result.crash_hash =
        CrashHash(result.signal, result.fault_frames, controller.log());
  } else if (outcome == vm::RunOutcome::Deadlock) {
    result.status = ScenarioStatus::Deadlocked;
  } else if (outcome == vm::RunOutcome::BudgetSpent) {
    result.status = ScenarioStatus::BudgetSpent;
  } else {
    result.status = ScenarioStatus::Exited;
  }

  if (tracker != nullptr) {
    result.covered_offsets = tracker->covered_total();
    for (size_t m = 0; m < tracker->module_count() && m < module_names.size();
         ++m) {
      size_t covered = tracker->covered(m);
      if (covered == 0) continue;
      result.covered_by_module[module_names[m]] = covered;
      if (options.collect_scenario_coverage) {
        result.coverage[module_names[m]] = tracker->executed(m);
      }
    }
  }
  return result;
}

CampaignRunner::CampaignRunner(MachineSetup setup,
                               std::vector<core::FaultProfile> profiles,
                               CampaignOptions options)
    : setup_(std::move(setup)),
      profiles_(std::make_shared<const std::vector<core::FaultProfile>>(
          std::move(profiles))),
      options_(options) {
  if (options_.jobs <= 0) {
    options_.jobs =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
}

CampaignRunner::~CampaignRunner() = default;

CampaignRunner::WorkerContext& CampaignRunner::Context(size_t w) {
  std::unique_ptr<WorkerContext>& slot = pool_[w];
  if (!slot) slot = std::make_unique<WorkerContext>();
  WorkerContext& ctx = *slot;
  if (ctx.ready) return ctx;
  if (options_.exec_mode) ctx.machine.SetExecMode(*options_.exec_mode);
  if (setup_) setup_(ctx.machine);
  ctx.machine.Checkpoint();
  if (options_.track_coverage) {
    ctx.tracker = ctx.machine.EnableCoverage();
    for (const auto& mod : ctx.machine.loader().modules()) {
      ctx.module_names.push_back(mod->object.name);
    }
  }
  ctx.controller =
      std::make_unique<core::Controller>(ctx.machine, options_.controller);
  // Warm once, restore per scenario: the snapshot carries the machine at
  // the fault-window entry point, so scenarios skip reset + process
  // construction (and the warmup prefix) entirely. In tree mode the
  // worker also grows window-local nodes as scenarios visit deeper
  // windows. The warm state persists for the runner's lifetime — every
  // later Run() (explorer round, serve batch) restores instead of
  // rebuilding.
  PrepareMachineSnapshot(ctx.machine, options_,
                         options_.snapshot_tree ? &ctx.tree : nullptr);
  ctx.ready = true;
  return ctx;
}

void CampaignRunner::RunShard(
    const std::vector<Scenario>& scenarios, const std::vector<size_t>& shard,
    WorkerContext& ctx, std::vector<ScenarioResult>* results,
    vm::CoverageTracker* coverage_out) {
  SnapshotTreeState* tree = options_.snapshot_tree ? &ctx.tree : nullptr;
  for (size_t idx : shard) {
    ScenarioResult& result = (*results)[idx];
    result = RunScenarioOn(ctx.machine, *ctx.controller, scenarios[idx],
                           options_, profiles_, ctx.tracker, ctx.module_names,
                           tree);
    result.index = idx;
    // Union this scenario's bitmaps into the worker-local aggregate — a
    // bitwise OR per module, no locks, no per-offset work.
    if (ctx.tracker && coverage_out) coverage_out->Merge(*ctx.tracker);
    completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

CampaignReport CampaignRunner::Run(const std::vector<Scenario>& scenarios) {
  completed_.store(0, std::memory_order_relaxed);
  CampaignReport report;
  report.snapshot_requested = options_.snapshot || options_.snapshot_tree;
  if (scenarios.empty()) return report;  // skip worker/machine setup
  report.results.resize(scenarios.size());

  size_t jobs = std::min(static_cast<size_t>(options_.jobs),
                         std::max<size_t>(scenarios.size(), 1));
  std::vector<std::vector<size_t>> shards =
      ShardScenarios(scenarios, jobs, options_.shard);
  // Pre-size the pool on this thread; worker threads then touch only
  // their own slot, so lazy context construction needs no lock.
  if (pool_.size() < shards.size()) pool_.resize(shards.size());
  // Pre-sized per-worker slots: coverage aggregation never takes a lock.
  std::vector<vm::CoverageTracker> worker_coverage(shards.size());

  auto begin = Clock::now();
  if (shards.size() <= 1) {
    if (!shards.empty()) {
      RunShard(scenarios, shards[0], Context(0), &report.results,
               &worker_coverage[0]);
    }
  } else {
    std::vector<std::thread> pool;
    pool.reserve(shards.size());
    for (size_t w = 0; w < shards.size(); ++w) {
      pool.emplace_back([&, w] {
        RunShard(scenarios, shards[w], Context(w), &report.results,
                 &worker_coverage[w]);
      });
    }
    for (std::thread& t : pool) t.join();
  }
  report.wall_seconds = Seconds(begin, Clock::now());

  // Union the worker bitmaps (bitwise OR is order-independent, so the
  // merged result is deterministic across jobs counts), then key the
  // report by module name. Every worker loads the same image, so any
  // worker's module list names the merged indices.
  if (options_.track_coverage) {
    vm::CoverageTracker merged;
    for (const vm::CoverageTracker& per_worker : worker_coverage) {
      merged.Merge(per_worker);
    }
    const std::vector<std::string>* names = nullptr;
    for (const auto& ctx : pool_) {
      if (ctx && !ctx->module_names.empty()) {
        names = &ctx->module_names;
        break;
      }
    }
    if (names != nullptr) {
      for (size_t i = 0; i < names->size() && i < merged.module_count(); ++i) {
        report.coverage[(*names)[i]].Merge(merged.executed(i));
      }
    }
  }
  report.Aggregate();
  return report;
}

}  // namespace lfi::campaign
