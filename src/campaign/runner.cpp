#include "campaign/runner.hpp"

#include <chrono>
#include <thread>

namespace lfi::campaign {

namespace {
using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}
}  // namespace

CampaignRunner::CampaignRunner(MachineSetup setup,
                               std::vector<core::FaultProfile> profiles,
                               CampaignOptions options)
    : setup_(std::move(setup)),
      profiles_(std::make_shared<const std::vector<core::FaultProfile>>(
          std::move(profiles))),
      options_(options) {
  if (options_.jobs <= 0) {
    options_.jobs =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
}

void CampaignRunner::RunShard(
    const std::vector<Scenario>& scenarios, const std::vector<size_t>& shard,
    std::vector<ScenarioResult>* results,
    std::map<std::string, std::set<uint32_t>>* coverage_out) {
  vm::Machine machine;
  if (setup_) setup_(machine);
  machine.Checkpoint();
  vm::CoverageTracker* tracker =
      options_.track_coverage ? machine.EnableCoverage() : nullptr;
  core::Controller controller(machine, options_.controller);

  for (size_t idx : shard) {
    const Scenario& scenario = scenarios[idx];
    ScenarioResult& result = (*results)[idx];
    result.index = idx;
    result.name = scenario.name;

    machine.Reset();
    controller.Reset();

    auto begin = Clock::now();
    if (auto st = controller.Install(scenario.plan, profiles_); !st.ok()) {
      result.status = ScenarioStatus::SetupError;
      result.fault_message = st.error();
      completed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const std::string& entry =
        scenario.entry.empty() ? options_.entry : scenario.entry;
    uint64_t heap_cap = scenario.heap_cap_bytes != 0
                            ? scenario.heap_cap_bytes
                            : options_.default_heap_cap;
    auto pid = machine.CreateProcess(entry, heap_cap);
    if (!pid.ok()) {
      result.status = ScenarioStatus::SetupError;
      result.fault_message = pid.error();
      completed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    vm::RunOutcome outcome = machine.Run(options_.max_instructions);
    result.seconds = Seconds(begin, Clock::now());
    result.instructions = machine.total_instructions();
    result.injections = controller.log().size();
    if (options_.collect_replays) result.replay = controller.GenerateReplay();

    vm::Process* primary = machine.process(pid.value());
    result.exit_code = primary->exit_code();
    result.signal = primary->signal();
    result.fault_message = primary->fault_message();
    if (primary->state() == vm::ProcState::Faulted) {
      result.status = ScenarioStatus::Crashed;
    } else if (outcome == vm::RunOutcome::Deadlock) {
      result.status = ScenarioStatus::Deadlocked;
    } else if (outcome == vm::RunOutcome::BudgetSpent) {
      result.status = ScenarioStatus::BudgetSpent;
    } else {
      result.status = ScenarioStatus::Exited;
    }

    if (tracker) {
      size_t offsets = 0;
      for (const auto& mod : machine.loader().modules()) {
        const std::set<uint32_t>& executed = tracker->executed(mod->index);
        offsets += executed.size();
        if (coverage_out) {
          (*coverage_out)[mod->object.name].insert(executed.begin(),
                                                   executed.end());
        }
      }
      result.covered_offsets = offsets;
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

CampaignReport CampaignRunner::Run(const std::vector<Scenario>& scenarios) {
  completed_.store(0, std::memory_order_relaxed);
  CampaignReport report;
  if (scenarios.empty()) return report;  // skip worker/machine setup
  report.results.resize(scenarios.size());

  size_t jobs = std::min(static_cast<size_t>(options_.jobs),
                         std::max<size_t>(scenarios.size(), 1));
  std::vector<std::vector<size_t>> shards =
      ShardScenarios(scenarios, jobs, options_.shard);
  std::vector<std::map<std::string, std::set<uint32_t>>> worker_coverage(
      shards.size());

  auto begin = Clock::now();
  if (shards.size() <= 1) {
    if (!shards.empty()) {
      RunShard(scenarios, shards[0], &report.results, &worker_coverage[0]);
    }
  } else {
    std::vector<std::thread> pool;
    pool.reserve(shards.size());
    for (size_t w = 0; w < shards.size(); ++w) {
      pool.emplace_back([&, w] {
        RunShard(scenarios, shards[w], &report.results, &worker_coverage[w]);
      });
    }
    for (std::thread& t : pool) t.join();
  }
  report.wall_seconds = Seconds(begin, Clock::now());

  // Merge worker coverage unions (set union is order-independent, so the
  // merged result is deterministic across jobs counts).
  if (options_.track_coverage) {
    for (auto& per_worker : worker_coverage) {
      for (auto& [name, offsets] : per_worker) {
        report.coverage[name].insert(offsets.begin(), offsets.end());
      }
    }
  }
  report.Aggregate();
  return report;
}

}  // namespace lfi::campaign
