// CampaignRunner: fan a scenario set out across a pool of worker threads.
//
// Each worker owns one vm::Machine + core::Controller pair for its whole
// lifetime. The machine is built once (MachineSetup loads modules and
// seeds the in-memory filesystem, then the runner checkpoints it) and then
// *reset* between scenarios instead of rebuilt — module construction and
// loading dominate per-run cost in the serial drivers, so this is where
// the throughput comes from. Reset also preserves the loader's predecoded
// instruction streams (vm::CodeCache): each worker decodes the target
// image once and every scenario after that runs on the fused
// decode-once interpreter loop. Scenario state is fully isolated by
// Machine::Reset + Controller::Reset, and each scenario's trigger RNG is
// seeded from its own plan, so results are bit-identical across any jobs
// count or shard policy.
//
// Result collection is lock-free: the results vector is pre-sized and each
// worker writes only the slots of its shard (disjoint by construction);
// the only shared mutable word is a relaxed progress counter. Coverage
// aggregation is lock-free the same way: each worker ORs its scenarios'
// bitmaps into its own pre-sized CoverageTracker slot, and the slots are
// union-merged once after the join (bitwise OR is order-independent, so
// the aggregate is identical for any jobs count).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "campaign/campaign.hpp"
#include "core/profile.hpp"
#include "vm/machine.hpp"

namespace lfi::campaign {

/// Prepares a freshly-constructed machine for the target under test: load
/// libc + the application modules, add VFS files, mark listening ports.
/// Called once per worker; must be safe to call concurrently (build the
/// shared objects up front and capture them by value).
using MachineSetup = std::function<void(vm::Machine&)>;

/// Per-worker snapshot-tree bookkeeping (CampaignOptions::snapshot_tree):
/// which tree node sits at each fault window. Keyed by absolute warmup
/// instruction count; the campaign-wide warmup is the root window, and
/// deeper windows are pushed lazily by the first scenario that needs them.
/// Worker-local — never shared across threads — and restore-exactness
/// keeps results independent of which windows a worker happened to build,
/// so reports stay jobs-invariant.
struct SnapshotTreeState {
  std::map<uint64_t, vm::SnapshotId> windows;
};

/// Execute one scenario on a reused machine/controller pair: reset both,
/// install the plan, run, classify, and (when `tracker` is non-null)
/// collect this scenario's coverage. Crashed scenarios get their fault
/// frames and triage hashes filled. `module_names` maps the machine's
/// dense module index to its name for per-module accounting. The result's
/// `index` is left 0 — callers place it. Shared by CampaignRunner workers
/// and PlanRunner so a one-off plan run and a campaign slot are the same
/// computation (determinism depends on that).
/// `tree` carries the worker's window->node map when snapshot_tree is on
/// (nullptr otherwise — flat snapshot and cold runs don't need it).
ScenarioResult RunScenarioOn(
    vm::Machine& machine, core::Controller& controller,
    const Scenario& scenario, const CampaignOptions& options,
    const std::shared_ptr<const std::vector<core::FaultProfile>>& profiles,
    vm::CoverageTracker* tracker, const std::vector<std::string>& module_names,
    SnapshotTreeState* tree = nullptr);

/// Warm `machine` to the campaign's fault-window entry point and take the
/// per-worker snapshot RunScenarioOn restores from: reset, create the
/// campaign entry process, run `options.warmup_instructions` of fault-free
/// prefix, snapshot. No-op (returns false, machine untouched beyond a
/// Reset) when options.snapshot is off or the entry does not resolve — the
/// scenarios then run cold and report the same SetupError either way.
/// Call after machine setup + Checkpoint (and EnableCoverage, so the
/// snapshot carries the prefix's coverage).
/// In snapshot-tree mode, pass the worker's `tree` so the base window
/// (options.warmup_instructions -> root node) gets recorded.
bool PrepareMachineSnapshot(vm::Machine& machine,
                            const CampaignOptions& options,
                            SnapshotTreeState* tree = nullptr);

/// Anything that can execute a scenario set and produce a CampaignReport.
/// CampaignRunner is the in-process implementation; the serve fabric's
/// coordinator (serve/coordinator.hpp) is the cross-process one. Both
/// honor the same contract: results are index-ordered, per-scenario
/// outcomes depend only on the scenario, and the report (union coverage,
/// crash hashes, counters) is bit-identical no matter how the work was
/// spread — which is what lets the explorer fan rounds out through either
/// without changing its own determinism story.
class ScenarioDispatch {
 public:
  virtual ~ScenarioDispatch() = default;

  /// Execute every scenario; blocks until the campaign completes.
  virtual CampaignReport Run(const std::vector<Scenario>& scenarios) = 0;
};

class CampaignRunner : public ScenarioDispatch {
 public:
  CampaignRunner(MachineSetup setup,
                 std::vector<core::FaultProfile> profiles,
                 CampaignOptions options = {});
  ~CampaignRunner() override;

  /// Execute every scenario; blocks until the campaign completes. The
  /// worker machine pool persists across calls: a second Run (an explorer
  /// round, a serve batch) reuses the loaded modules, decoded code caches,
  /// and warm snapshots instead of rebuilding them.
  CampaignReport Run(const std::vector<Scenario>& scenarios) override;

  /// Scenarios completed so far (readable from another thread).
  size_t completed() const { return completed_.load(std::memory_order_relaxed); }

  const CampaignOptions& options() const { return options_; }

 private:
  /// One pooled worker: a machine/controller pair that lives as long as
  /// the runner. Built lazily the first time a shard lands on it (setup +
  /// checkpoint + coverage enable + snapshot warm), then only Reset (or
  /// snapshot-restored) per scenario. `tree` accumulates window-local
  /// snapshot nodes across every batch the worker ever runs.
  struct WorkerContext {
    vm::Machine machine;
    std::unique_ptr<core::Controller> controller;
    vm::CoverageTracker* tracker = nullptr;
    std::vector<std::string> module_names;
    SnapshotTreeState tree;
    bool ready = false;
  };

  /// Build pool_[w] if this is the first shard to land on it. Called from
  /// worker threads; safe because each thread touches only its own slot
  /// (pool_ is pre-sized on the coordinating thread).
  WorkerContext& Context(size_t w);

  /// One worker: run `shard`'s scenarios on its pooled machine, writing
  /// into results[idx] slots. `coverage_out` receives the worker's union
  /// coverage for this batch (per dense module index) when tracking is on.
  void RunShard(const std::vector<Scenario>& scenarios,
                const std::vector<size_t>& shard, WorkerContext& ctx,
                std::vector<ScenarioResult>* results,
                vm::CoverageTracker* coverage_out);

  MachineSetup setup_;
  /// Shared across all workers and installs — profiles are immutable for
  /// the campaign's lifetime, so no per-scenario copy is made.
  std::shared_ptr<const std::vector<core::FaultProfile>> profiles_;
  CampaignOptions options_;
  /// Persistent worker pool, indexed by shard slot; grows to options_.jobs.
  std::vector<std::unique_ptr<WorkerContext>> pool_;
  std::atomic<size_t> completed_{0};
};

}  // namespace lfi::campaign
