#include "campaign/seu.hpp"

#include <algorithm>
#include <set>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace lfi::campaign {

const char* SeuOutcomeName(SeuOutcome outcome) {
  switch (outcome) {
    case SeuOutcome::Masked: return "masked";
    case SeuOutcome::Detected: return "detected";
    case SeuOutcome::Sdc: return "sdc";
    case SeuOutcome::Crash: return "crash";
  }
  return "?";
}

GoldenRun GoldenFrom(const ScenarioResult& result) {
  GoldenRun golden;
  golden.status = result.status;
  golden.exit_code = result.exit_code;
  golden.state_digest = result.state_digest;
  golden.instructions = result.instructions;
  return golden;
}

SeuOutcome ClassifySeu(const ScenarioResult& result, const GoldenRun& golden,
                       int64_t detect_exit_code) {
  switch (result.status) {
    case ScenarioStatus::Crashed:
      return SeuOutcome::Crash;
    case ScenarioStatus::Deadlocked:
    case ScenarioStatus::BudgetSpent:
    case ScenarioStatus::SetupError:
      // Hangs are fail-stop in practice (a watchdog ends them), and a
      // setup error under a flip plan means the flip broke setup: both
      // are detected-by-the-system, not silent.
      return SeuOutcome::Crash;
    case ScenarioStatus::Exited:
      break;
  }
  if (result.exit_code == detect_exit_code &&
      golden.exit_code != detect_exit_code) {
    return SeuOutcome::Detected;
  }
  if (result.exit_code == golden.exit_code &&
      result.state_digest == golden.state_digest) {
    return SeuOutcome::Masked;
  }
  return SeuOutcome::Sdc;
}

SeuCampaignReport ClassifyCampaign(const CampaignReport& report,
                                   const GoldenRun& golden,
                                   int64_t detect_exit_code) {
  SeuCampaignReport out;
  out.verdicts.reserve(report.results.size());
  for (const ScenarioResult& r : report.results) {
    SeuVerdict v;
    v.name = r.name;
    v.outcome = ClassifySeu(r, golden, detect_exit_code);
    v.landed = r.seu_landed > 0;
    v.state_digest = r.state_digest;
    ++out.counts.total;
    if (!v.landed) ++out.counts.not_landed;
    switch (v.outcome) {
      case SeuOutcome::Masked: ++out.counts.masked; break;
      case SeuOutcome::Detected: ++out.counts.detected; break;
      case SeuOutcome::Sdc: ++out.counts.sdc; break;
      case SeuOutcome::Crash: ++out.counts.crash; break;
    }
    out.verdicts.push_back(std::move(v));
  }
  return out;
}

std::string SeuCampaignReport::ToText() const {
  std::string text;
  for (const SeuVerdict& v : verdicts) {
    text += Format("%-44s %s %s digest=%016llx\n", v.name.c_str(),
                   v.landed ? "landed" : "missed",
                   SeuOutcomeName(v.outcome),
                   (unsigned long long)v.state_digest);
  }
  text += Format(
      "flips: %zu  masked: %zu  detected: %zu  sdc: %zu  crash: %zu  "
      "(not landed: %zu)\n",
      counts.total, counts.masked, counts.detected, counts.sdc, counts.crash,
      counts.not_landed);
  return text;
}

namespace {

/// Deterministic flip #index of the spec's flip space. Each index owns an
/// independent RNG stream, so growing a sweep keeps earlier flips stable.
core::SeuFault SampleFlip(const SeuSweepSpec& spec, uint64_t index) {
  Rng rng(DeriveSeed(spec.seed, index));
  std::vector<core::SeuFault::Target> enabled;
  if (spec.regs) enabled.push_back(core::SeuFault::Target::Reg);
  if (spec.stack && spec.stack_bytes >= 8) {
    enabled.push_back(core::SeuFault::Target::Stack);
  }
  if (spec.heap && spec.heap_bytes >= 8) {
    enabled.push_back(core::SeuFault::Target::Heap);
  }
  if (spec.data && spec.data_bytes >= 8 && !spec.data_module.empty()) {
    enabled.push_back(core::SeuFault::Target::Data);
  }
  core::SeuFault fault;
  if (enabled.empty()) return fault;  // callers guarantee non-empty
  fault.target = enabled[rng.below(enabled.size())];
  fault.bit = static_cast<int>(rng.below(64));
  fault.pid = spec.pid;
  uint64_t span = spec.instants_to - spec.instants_from + 1;
  fault.at_instruction = spec.instants_from + rng.below(span);
  switch (fault.target) {
    case core::SeuFault::Target::Reg:
      fault.reg = static_cast<int>(rng.below(core::kSeuNumRegs));
      break;
    case core::SeuFault::Target::Stack:
      fault.offset = rng.below(spec.stack_bytes / 8) * 8;
      break;
    case core::SeuFault::Target::Heap:
      fault.offset = rng.below(spec.heap_bytes / 8) * 8;
      break;
    case core::SeuFault::Target::Data:
      fault.offset = rng.below(spec.data_bytes / 8) * 8;
      fault.module = spec.data_module;
      break;
  }
  return fault;
}

std::string FlipKey(const core::SeuFault& f) {
  std::string key = core::SeuTargetName(f.target);
  if (f.target == core::SeuFault::Target::Reg) {
    key += Format("-%s", core::SeuRegName(f.reg));
  } else {
    key += Format("-%llu", (unsigned long long)f.offset);
  }
  if (!f.module.empty()) key += "-" + f.module;
  key += Format("-b%d@%llu", f.bit, (unsigned long long)f.at_instruction);
  return key;
}

Scenario FlipScenario(const core::SeuFault& fault, size_t index) {
  Scenario s;
  s.name = Format("seu-%04zu-%s", index, FlipKey(fault).c_str());
  s.plan.seed = 1;
  s.plan.seus.push_back(fault);
  return s;
}

/// Nudge one SDC flip to a neighbor in the flip space: same word with an
/// adjacent bit, the same bit a few instructions earlier/later, or (for
/// memory targets) the adjacent word.
core::SeuFault MutateFlip(const core::SeuFault& seed_flip,
                          const SeuSweepSpec& spec, Rng& rng) {
  core::SeuFault f = seed_flip;
  switch (rng.below(3)) {
    case 0:
      f.bit = static_cast<int>((f.bit + 1 + rng.below(2)) % 64);
      break;
    case 1: {
      int64_t delta = rng.range(-32, 32);
      uint64_t at = f.at_instruction;
      at = delta < 0 && at < static_cast<uint64_t>(-delta)
               ? 0
               : at + static_cast<uint64_t>(delta);
      f.at_instruction =
          std::clamp(at, spec.instants_from, spec.instants_to);
      break;
    }
    case 2:
      if (f.target == core::SeuFault::Target::Reg) {
        f.reg = static_cast<int>(rng.below(core::kSeuNumRegs));
      } else {
        uint64_t limit = f.target == core::SeuFault::Target::Stack
                             ? spec.stack_bytes
                         : f.target == core::SeuFault::Target::Heap
                             ? spec.heap_bytes
                             : spec.data_bytes;
        f.offset = f.offset + 8 < limit ? f.offset + 8
                   : f.offset >= 8     ? f.offset - 8
                                       : f.offset;
      }
      break;
  }
  return f;
}

}  // namespace

std::vector<Scenario> BuildSeuSweep(const SeuSweepSpec& spec) {
  std::vector<Scenario> scenarios;
  scenarios.reserve(spec.samples);
  for (size_t i = 0; i < spec.samples; ++i) {
    scenarios.push_back(FlipScenario(SampleFlip(spec, i), i));
  }
  return scenarios;
}

SeuSearchResult SdcDirectedSearch(ScenarioDispatch& dispatch,
                                  const SeuSweepSpec& space,
                                  const GoldenRun& golden,
                                  const SeuSearchOptions& options) {
  SeuSearchResult out;
  std::set<std::string> seen;
  std::vector<core::SeuFault> sdc_flips;
  uint64_t fresh_index = 0;
  size_t named = 0;
  for (size_t round = 0; round < options.rounds; ++round) {
    std::vector<Scenario> batch;
    Rng mutate_rng(DeriveSeed(space.seed ^ 0x5e0u, round));
    // Half the round explores near known silent corruptions; the rest (or
    // everything, while none are known) samples the space fresh.
    size_t directed = sdc_flips.empty() ? 0 : options.per_round / 2;
    for (size_t i = 0; batch.size() < directed && i < directed * 8; ++i) {
      const core::SeuFault& parent =
          sdc_flips[mutate_rng.below(sdc_flips.size())];
      core::SeuFault f = MutateFlip(parent, space, mutate_rng);
      if (!seen.insert(FlipKey(f)).second) continue;
      batch.push_back(FlipScenario(f, named++));
    }
    // Fresh samples: keep drawing from the index stream until enough
    // novel flips turned up (the stream is infinite; cap the attempts so
    // a saturated space still terminates).
    size_t attempts = 0;
    while (batch.size() < options.per_round &&
           attempts < options.per_round * 16) {
      core::SeuFault f = SampleFlip(space, fresh_index++);
      ++attempts;
      if (!seen.insert(FlipKey(f)).second) continue;
      batch.push_back(FlipScenario(f, named++));
    }
    if (batch.empty()) break;
    CampaignReport report = dispatch.Run(batch);
    SeuCampaignReport classified =
        ClassifyCampaign(report, golden, options.detect_exit_code);
    for (size_t i = 0; i < classified.verdicts.size(); ++i) {
      if (classified.verdicts[i].outcome == SeuOutcome::Sdc) {
        sdc_flips.push_back(batch[i].plan.seus.front());
        out.sdc_scenarios.push_back(batch[i]);
      }
      out.report.verdicts.push_back(std::move(classified.verdicts[i]));
    }
    out.report.counts.total += classified.counts.total;
    out.report.counts.masked += classified.counts.masked;
    out.report.counts.detected += classified.counts.detected;
    out.report.counts.sdc += classified.counts.sdc;
    out.report.counts.crash += classified.counts.crash;
    out.report.counts.not_landed += classified.counts.not_landed;
    out.rounds_run = round + 1;
  }
  return out;
}

}  // namespace lfi::campaign
