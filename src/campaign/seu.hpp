// SEU bit-flip campaigns: build flip-space sweeps, classify outcomes
// against a golden (fault-free) run, and search the flip space for silent
// data corruption.
//
// The fault model is the classic single-event upset: exactly one bit of
// one architectural word (register, stack, heap, or module data) flips at
// a precise machine-wide instruction instant (core::SeuFault). Outcomes
// follow the standard dependability taxonomy:
//
//   Masked    - the program finished with the golden exit code and a
//               bit-identical architectural state digest; the flip was
//               absorbed (dead value, overwritten, or voted out by TMR).
//   Detected  - the guest's own fault-tolerance machinery (DWC compare,
//               CFCSS signature check) caught the flip and exited with
//               the dedicated detection exit code.
//   Sdc       - silent data corruption: the program finished "normally"
//               but its exit code or state digest differs from golden —
//               the worst outcome, and what hardening must shrink.
//   Crash     - the flip escalated to a fault, deadlock, or hang
//               (budget exhausted): fail-stop, detected by the system.
//
// Everything here is deterministic: sweeps are seeded (DeriveSeed +
// xorshift), classification is pure, and campaigns run through
// ScenarioDispatch — so verdicts are bit-identical across engines,
// snapshot modes, jobs counts, and the serve fabric.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/runner.hpp"

namespace lfi::campaign {

enum class SeuOutcome { Masked, Detected, Sdc, Crash };

const char* SeuOutcomeName(SeuOutcome outcome);

/// The reference against which flips are judged: the same scenario with no
/// faults, run with CampaignOptions::collect_state_digest set.
struct GoldenRun {
  ScenarioStatus status = ScenarioStatus::SetupError;
  int64_t exit_code = 0;
  uint64_t state_digest = 0;
  uint64_t instructions = 0;  // flip instants are sampled inside this
};

GoldenRun GoldenFrom(const ScenarioResult& result);

/// Classify one flip result. `detect_exit_code` is the exit code hardened
/// guests reserve for "my checker fired" (isa::harden::kSeuDetectExitCode).
SeuOutcome ClassifySeu(const ScenarioResult& result, const GoldenRun& golden,
                       int64_t detect_exit_code);

struct SeuCounts {
  size_t total = 0;
  size_t masked = 0;
  size_t detected = 0;
  size_t sdc = 0;
  size_t crash = 0;
  /// Flips whose instant fell past the run's end or whose gate rejected
  /// them (subset of `masked` — nothing was perturbed).
  size_t not_landed = 0;
};

/// One classified flip: the scenario and its verdict, index-ordered.
struct SeuVerdict {
  std::string name;
  SeuOutcome outcome = SeuOutcome::Masked;
  bool landed = false;
  uint64_t state_digest = 0;
};

struct SeuCampaignReport {
  SeuCounts counts;
  std::vector<SeuVerdict> verdicts;
  /// Jobs-invariant listing: one line per flip (name, landed, digest,
  /// outcome) plus the counts — the CI smoke diffs this across engines
  /// and job counts.
  std::string ToText() const;
};

SeuCampaignReport ClassifyCampaign(const CampaignReport& report,
                                   const GoldenRun& golden,
                                   int64_t detect_exit_code);

/// The flip space a sweep samples. Instants are drawn from
/// [instants_from, instants_to]; offsets from each enabled segment's
/// byte range (64-bit-word aligned).
struct SeuSweepSpec {
  uint64_t instants_from = 0;
  uint64_t instants_to = 0;
  size_t samples = 64;
  uint64_t seed = 1;
  bool regs = true;
  bool stack = true;
  bool heap = false;
  bool data = false;
  std::string data_module;   // required when data is set
  uint64_t data_bytes = 0;   // flippable data-section size
  uint64_t stack_bytes = 1 << 20;
  uint64_t heap_bytes = 1 << 20;
  int pid = 1;
};

/// Sample `spec.samples` single-flip scenarios (empty trigger set, one
/// <seu> each) from the flip space. Deterministic in (spec, seed); names
/// encode the flip ("seu-0007-reg-R3-b17@12345") so reports are
/// self-describing and diffable.
std::vector<Scenario> BuildSeuSweep(const SeuSweepSpec& spec);

/// SDC-directed search: rounds of sweep + classify, where each round
/// seeds half its flips near the silent corruptions found so far
/// (neighboring bits, nudged instants, adjacent words) and half fresh.
/// The explorer idea — fitness-directed scenario generation — pointed at
/// the flip space, with SDC membership as the fitness signal.
struct SeuSearchOptions {
  size_t rounds = 4;
  size_t per_round = 32;
  int64_t detect_exit_code = 0;
};

struct SeuSearchResult {
  /// Every distinct flip classified over all rounds, in discovery order.
  SeuCampaignReport report;
  /// Scenarios that produced silent data corruption (replayable as-is).
  std::vector<Scenario> sdc_scenarios;
  size_t rounds_run = 0;
};

SeuSearchResult SdcDirectedSearch(ScenarioDispatch& dispatch,
                                  const SeuSweepSpec& space,
                                  const GoldenRun& golden,
                                  const SeuSearchOptions& options);

}  // namespace lfi::campaign
