#include "campaign/triage.hpp"

#include <algorithm>

namespace lfi::campaign {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t MixBytes(uint64_t h, const void* data, size_t len) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t MixString(uint64_t h, const std::string& s) {
  h = MixBytes(h, s.data(), s.size());
  // Separator so ["ab","c"] and ["a","bc"] hash differently.
  return MixBytes(h, "\x1f", 1);
}

uint64_t MixInt(uint64_t h, uint64_t v) { return MixBytes(h, &v, sizeof(v)); }

}  // namespace

std::vector<std::string> FaultFrames(const vm::Process& process) {
  std::vector<std::string> frames;
  const vm::Loader& loader = process.loader();
  frames.push_back(loader.Symbolize(process.pc()));
  const std::vector<vm::Frame>& shadow = process.shadow_stack();
  for (auto it = shadow.rbegin(); it != shadow.rend(); ++it) {
    frames.push_back(loader.Symbolize(it->fn_addr));
  }
  return frames;
}

uint64_t CrashSiteHash(vm::Signal signal,
                       const std::vector<std::string>& fault_frames) {
  uint64_t h = kFnvOffset;
  h = MixInt(h, static_cast<uint64_t>(signal));
  for (const std::string& frame : fault_frames) h = MixString(h, frame);
  return h;
}

uint64_t CrashHash(vm::Signal signal,
                   const std::vector<std::string>& fault_frames,
                   const core::InjectionLog& log) {
  uint64_t h = CrashSiteHash(signal, fault_frames);
  // Summarize each injection as (function, retval, errno, pass-through,
  // argument corruptions) and mix the *sorted unique* summaries: the
  // bucket depends on which faults were injected, not on how many times
  // or in which interleaving. Argument modifications are part of the
  // fault identity — two pass-through corruptions of the same function
  // that kill the target at the same site are still distinct findings.
  std::vector<std::string> summaries;
  summaries.reserve(log.size());
  for (const core::InjectionRecord& r : log.records()) {
    std::string s = log.function_name(r);
    s += '|';
    s += r.has_retval ? std::to_string(r.retval) : std::string("-");
    s += '|';
    s += r.errno_value ? std::to_string(*r.errno_value) : std::string("-");
    s += r.call_original ? "|orig" : "|repl";
    for (const auto& [index, value] : r.modified_args) {
      s += '|' + std::to_string(index) + ':' + std::to_string(value);
    }
    summaries.push_back(std::move(s));
  }
  std::sort(summaries.begin(), summaries.end());
  summaries.erase(std::unique(summaries.begin(), summaries.end()),
                  summaries.end());
  for (const std::string& s : summaries) h = MixString(h, s);
  return h;
}

std::string CrashSignature(vm::Signal signal,
                           const std::vector<std::string>& fault_frames) {
  std::string out = vm::SignalName(signal);
  out += " @ ";
  if (fault_frames.empty()) {
    out += "?";
    return out;
  }
  // Innermost few frames are enough to recognize a bucket at a glance.
  constexpr size_t kMaxFrames = 3;
  for (size_t i = 0; i < fault_frames.size() && i < kMaxFrames; ++i) {
    if (i > 0) out += " < ";
    out += fault_frames[i];
  }
  return out;
}

}  // namespace lfi::campaign
