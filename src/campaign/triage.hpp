// Crash triage: turn a faulted scenario into a stable, deterministic
// identity so campaigns and the explorer can deduplicate findings.
//
// Two hashes with two jobs:
//   - CrashSiteHash — signal + symbolized fault frames only. This is the
//     *crash identity* the minimizer preserves: dropping a redundant
//     trigger changes the injection log but not where the target died, so
//     the minimization oracle must compare sites, not logs.
//   - CrashHash — the site hash mixed with a summary of the injection log
//     (which functions were failed with which (retval, errno)). This is
//     the *triage bucket*: two scenarios that kill the target at the same
//     place via different fault sets are distinct findings. Call numbers
//     and per-record backtraces are deliberately excluded so the bucket is
//     stable under timing jitter between scenarios.
//
// Both hashes are FNV-1a over symbolized strings and integers — no
// addresses leak in except through symbolization, and module load order is
// deterministic per MachineSetup, so hashes are identical across workers,
// jobs counts, and runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/injection_log.hpp"
#include "vm/process.hpp"

namespace lfi::campaign {

/// Symbolized frames of a faulted process, innermost first: the faulting
/// pc, then every shadow-stack caller from innermost to outermost.
std::vector<std::string> FaultFrames(const vm::Process& process);

/// Crash identity: signal + fault frames. Stable under injection-log
/// changes — the minimization oracle's equality target.
uint64_t CrashSiteHash(vm::Signal signal,
                       const std::vector<std::string>& fault_frames);

/// Triage bucket: site hash + the set of injected faults, each summarized
/// as (function name, retval, errno, pass-through flag, argument
/// corruptions). Excludes call numbers and record backtraces so equal
/// fault sets bucket together regardless of timing.
uint64_t CrashHash(vm::Signal signal,
                   const std::vector<std::string>& fault_frames,
                   const core::InjectionLog& log);

/// Human-readable one-line label: "Abort @ resolver_write < resolver_main".
std::string CrashSignature(vm::Signal signal,
                           const std::vector<std::string>& fault_frames);

}  // namespace lfi::campaign
