#include "core/controller.hpp"

#include <algorithm>

#include "core/replay.hpp"
#include "libc/libc_builder.hpp"
#include "vm/memory.hpp"

namespace lfi::core {

/// Per-stub cached state, resolved once at install time: the function's
/// dense ids (machine symbol table for loader resolution, log interner for
/// records), its profile entry, the engine state handle, and whether
/// trigger evaluation needs backtraces. Nothing here requires a string
/// lookup per intercepted call.
struct Controller::StubState {
  vm::SymbolId symbol = vm::kNoSymbol;       // machine-wide id (loader)
  util::SymbolId log_symbol = util::kNoSymbol;  // id in the injection log
  const FunctionProfile* profile = nullptr;  // may be null
  TriggerEngine::FunctionState* engine_state = nullptr;
  bool needs_backtrace = false;
  // dlsym(RTLD_NEXT) result, resolved lazily on first pass-through and
  // cached for the loader generation it was resolved under.
  uint64_t original_addr = 0;
  uint64_t resolved_generation = 0;
};

Controller::Controller(vm::Machine& machine, ControllerOptions opts)
    : machine_(machine), opts_(opts) {
  log_.set_enabled(opts_.log_enabled);
  log_.set_capacity(opts_.log_capacity);
}

Controller::~Controller() = default;

namespace {

/// Locate the TLS side-effect slot for (function profile, retval): the
/// module-relative errno location the injector must write. Falls back to
/// libc's errno (offset 0) when the profile has no TLS effect.
std::pair<std::string, uint32_t> ErrnoLocation(const FunctionProfile* profile,
                                               int64_t retval) {
  if (profile) {
    const ProfileErrorCode* ec = profile->error_code(retval);
    if (ec) {
      for (const ProfileSideEffect& se : ec->side_effects) {
        if (se.type == ProfileSideEffect::Type::Tls) {
          return {se.module, se.offset};
        }
      }
    }
    // Any TLS effect on any error code of this function.
    for (const ProfileErrorCode& other : profile->error_codes) {
      for (const ProfileSideEffect& se : other.side_effects) {
        if (se.type == ProfileSideEffect::Type::Tls) {
          return {se.module, se.offset};
        }
      }
    }
  }
  return {libc::kLibcName, 0};
}

}  // namespace

Status Controller::Install(const Plan& plan,
                           std::vector<FaultProfile> profiles) {
  return Install(plan, std::make_shared<const std::vector<FaultProfile>>(
                           std::move(profiles)));
}

Status Controller::Install(
    const Plan& plan,
    std::shared_ptr<const std::vector<FaultProfile>> profiles) {
  // Drop any previous installation first: stale stubs in the loader would
  // otherwise keep pointers into the engine/profiles replaced below.
  Uninstall();
  profiles_ = profiles ? std::move(profiles)
                       : std::make_shared<const std::vector<FaultProfile>>();
  engine_ =
      std::make_unique<TriggerEngine>(plan, *profiles_, opts_.feasible_only);

  // Resolve every name exactly once, against the machine's symbol table:
  // the stubs below only ever touch dense ids and cached pointers.
  ProfileIndex profile_index(*profiles_, machine_.symbols());
  for (const std::string& fn : engine_->functions()) {
    auto state = std::make_shared<StubState>();
    state->symbol = machine_.symbols().Intern(fn);
    state->log_symbol = log_.Intern(fn);
    state->engine_state = engine_->state_for(fn);
    state->needs_backtrace = engine_->needs_backtrace(fn);
    state->profile = profile_index.function(state->symbol);
    stubs_.push_back(state);

    machine_.loader().RegisterNative(
        fn, [this, state](vm::NativeFrame& frame) -> vm::NativeAction {
          vm::Loader& loader = machine_.loader();
          auto original = [&]() -> uint64_t {
            if (state->resolved_generation != loader.generation()) {
              vm::Target t = loader.ResolveNextId(state->symbol);
              state->original_addr =
                  t.kind == vm::Target::Kind::Code ? t.addr : 0;
              state->resolved_generation = loader.generation();
            }
            return state->original_addr;
          };

          BacktraceProvider bt_provider;
          if (state->needs_backtrace) {
            bt_provider = [&frame]() { return frame.backtrace(); };
          }
          auto decision =
              engine_->OnCall(*state->engine_state, bt_provider);
          if (!decision) {
            uint64_t target = original();
            if (target == 0) {
              // No original exists; behave like a failed call.
              return vm::NativeAction::Ret(-1);
            }
            return vm::NativeAction::Tail(target);
          }

          InjectionRecord record;
          record.function = state->log_symbol;
          record.call_number = state->engine_state->call_count();
          record.trigger_index = decision->trigger_index;
          record.call_original = decision->call_original;

          // Argument modifications (1-based indices, as in the paper).
          if (decision->modifications) {
            for (const ArgModification& m : *decision->modifications) {
              int64_t cur = frame.arg(m.argument - 1);
              int64_t next = m.Apply(cur);
              frame.set_arg(m.argument - 1, next);
              record.modified_args.emplace_back(m.argument, next);
            }
          }

          // errno side effect: write the TLS slot named by the profile.
          if (decision->errno_value) {
            auto [module_name, offset] =
                ErrnoLocation(state->profile, decision->retval);
            const vm::LoadedModule* mod = loader.module_named(module_name);
            if (!mod) mod = loader.module_named(libc::kLibcName);
            if (mod) {
              int64_t v = *decision->errno_value;
              frame.process().write_mem(
                  vm::kTlsBase + mod->tls_base + offset, &v, 8);
            }
            record.errno_value = decision->errno_value;
          }

          // Remaining §3.2 side effects of the injected error code: module
          // globals and output arguments ("apply side_effects" in the
          // paper's stub). The errno TLS slot was handled above; other TLS
          // slots, globals, and pointer arguments are written here.
          if (decision->has_retval && state->profile) {
            if (const ProfileErrorCode* ec =
                    state->profile->error_code(decision->retval)) {
              for (const ProfileSideEffect& se : ec->side_effects) {
                if (se.values.empty()) continue;
                // Prefer the value matching the injected errno; fall back
                // to the first profiled value.
                int64_t v = se.values.front();
                if (decision->errno_value &&
                    std::find(se.values.begin(), se.values.end(),
                              *decision->errno_value) != se.values.end()) {
                  v = *decision->errno_value;
                }
                switch (se.type) {
                  case ProfileSideEffect::Type::Tls:
                    break;  // errno path above
                  case ProfileSideEffect::Type::Global: {
                    const vm::LoadedModule* mod =
                        loader.module_named(se.module);
                    if (mod) {
                      frame.process().write_mem(mod->data_base + se.offset,
                                                &v, 8);
                    }
                    break;
                  }
                  case ProfileSideEffect::Type::Arg: {
                    // Write the error detail through the output pointer.
                    uint64_t ptr =
                        static_cast<uint64_t>(frame.arg(se.arg_index));
                    if (ptr != 0) frame.process().write_mem(ptr, &v, 8);
                    break;
                  }
                }
              }
            }
          }

          record.has_retval = decision->has_retval;
          record.retval = decision->retval;
          if (first_injection_instructions_ == 0) {
            // Sum per-process counts rather than reading the machine's
            // round-settled total, which is stale mid-quantum.
            for (const auto& proc : machine_.processes()) {
              first_injection_instructions_ += proc->instructions();
            }
          }
          if (opts_.log_backtraces && log_.enabled()) {
            for (const auto& [addr, sym] : frame.backtrace()) {
              record.backtrace.push_back(sym);
            }
          }
          log_.Add(std::move(record));

          if (decision->call_original) {
            uint64_t target = original();
            if (target != 0) return vm::NativeAction::Tail(target);
          }
          return vm::NativeAction::Ret(decision->has_retval ? decision->retval
                                                            : 0);
        });
  }
  ArmSeus(plan);
  return Status::Ok();
}

void Controller::ArmSeus(const Plan& plan) {
  seus_ = plan.seus;
  seu_landed_ = 0;
  for (const SeuFault& seu : seus_) {
    machine_.ArmInstructionStop(
        seu.at_instruction, [this, seu](vm::Machine&) { ApplySeu(seu); });
  }
}

void Controller::ApplySeu(const SeuFault& seu) {
  vm::Process* proc = machine_.process(seu.pid);
  // A flip aimed at a dead or never-created process has no hardware to
  // land in; record nothing. (Deterministic: process lifetimes are.)
  if (!proc || (proc->state() != vm::ProcState::Runnable &&
                proc->state() != vm::ProcState::Blocked)) {
    return;
  }
  if (seu.window_end != 0) {
    const vm::LoadedModule* wmod =
        machine_.loader().module_named(seu.window_module);
    if (!wmod) return;
    uint64_t rel = proc->pc() - wmod->code_base;
    if (proc->pc() < wmod->code_base || rel < seu.window_begin ||
        rel >= seu.window_end) {
      return;
    }
  }
  uint64_t mask = 1ull << seu.bit;
  switch (seu.target) {
    case SeuFault::Target::Reg: {
      if (seu.reg < 0 || seu.reg >= isa::kNumRegs) return;
      isa::Reg r = static_cast<isa::Reg>(seu.reg);
      proc->set_reg(r, proc->reg(r) ^ static_cast<int64_t>(mask));
      break;
    }
    case SeuFault::Target::Stack:
    case SeuFault::Target::Heap: {
      uint64_t base = seu.target == SeuFault::Target::Stack ? vm::kStackBase
                                                            : vm::kHeapBase;
      uint64_t word = 0;
      // read/write through the AddressSpace: bounds-checked, and the
      // write marks the dirty journal so snapshot restores undo the flip.
      if (!proc->read_mem(base + seu.offset, &word, 8)) return;
      word ^= mask;
      if (!proc->write_mem(base + seu.offset, &word, 8)) return;
      break;
    }
    case SeuFault::Target::Data: {
      const vm::LoadedModule* mod =
          machine_.loader().module_named(seu.module);
      if (!mod) return;
      uint64_t word = 0;
      if (!proc->read_mem(mod->data_base + seu.offset, &word, 8)) return;
      word ^= mask;
      if (!proc->write_mem(mod->data_base + seu.offset, &word, 8)) return;
      break;
    }
  }
  ++seu_landed_;
  if (first_injection_instructions_ == 0) {
    // Same rule as stub injections: sum the per-process counts, which the
    // engines settle at every budget boundary — and an instruction stop
    // is exactly such a boundary.
    for (const auto& p : machine_.processes()) {
      first_injection_instructions_ += p->instructions();
    }
  }
}

void Controller::Uninstall() {
  machine_.loader().ClearNatives();
  stubs_.clear();
  machine_.ClearInstructionStops();
  seus_.clear();
}

void Controller::Reset() {
  Uninstall();
  engine_.reset();
  profiles_.reset();
  log_.Clear();
  first_injection_instructions_ = 0;
  seu_landed_ = 0;
}

}  // namespace lfi::core
