// The LFI controller (paper §5).
//
// Takes fault profiles plus a fault scenario, synthesizes interception
// stubs for every function the scenario names, and installs them in the
// loader's preload slot — the LD_PRELOAD shim. Each stub:
//   1. evaluates the function's triggers (call count, probability, stack
//      trace) via the TriggerEngine;
//   2. if no injection is due, tail-jumps to the original function,
//      resolved dlsym(RTLD_NEXT)-style and cached (§5.1's stub listing);
//   3. otherwise applies argument modifications in place, writes the errno
//      TLS side effect at the location the fault profile names, records
//      the injection in the log, and either returns the fault value
//      directly or still passes the (modified) call through.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/injection_log.hpp"
#include "core/profile.hpp"
#include "core/replay.hpp"
#include "core/scenario.hpp"
#include "core/trigger_engine.hpp"
#include "util/result.hpp"
#include "vm/machine.hpp"

namespace lfi::core {

struct ControllerOptions {
  /// Record injections in the log (disable for overhead measurements).
  bool log_enabled = true;
  /// Capture symbolized backtraces into log records (costs a stack walk).
  bool log_backtraces = true;
  /// Cap on log records (0 = unlimited).
  size_t log_capacity = 100000;
  /// Restrict profile-drawn injections to constprop-verified (Analyzed)
  /// error codes for functions that have any; unanalyzed functions keep
  /// their full code set. Rides in CampaignOptions so campaigns, the
  /// explorer, and fabric workers all gate the same way.
  bool feasible_only = false;
};

class Controller {
 public:
  explicit Controller(vm::Machine& machine, ControllerOptions opts = {});
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Synthesize and install interposition stubs for `plan`.
  /// Call before creating the process under test (like LD_PRELOAD, the shim
  /// must be in place when the program starts — though re-resolution makes
  /// late installs work too).
  Status Install(const Plan& plan, std::vector<FaultProfile> profiles);

  /// Same, sharing an immutable profile set instead of copying it — the
  /// campaign runner installs the same profiles once per scenario, so the
  /// per-install deep copy matters there.
  Status Install(const Plan& plan,
                 std::shared_ptr<const std::vector<FaultProfile>> profiles);

  /// Remove all stubs (the loader then resolves to the originals again).
  void Uninstall();

  /// Return to the pre-Install state: remove stubs, drop the trigger engine
  /// and profiles, clear the injection log (sequence numbers restart).
  /// Pairs with vm::Machine::Reset for scenario-to-scenario reuse.
  void Reset();

  InjectionLog& log() { return log_; }
  const InjectionLog& log() const { return log_; }
  TriggerEngine* engine() { return engine_.get(); }

  /// Machine-wide instruction count (sum over processes) at the moment the
  /// first fault was injected; 0 when nothing injected since the last
  /// Reset(). Exact and engine-invariant: injections happen at native-stub
  /// boundaries, where every engine has settled its per-process counts.
  /// The explorer uses this to place fork windows at the instant a corpus
  /// parent's faults start mattering.
  uint64_t first_injection_instructions() const {
    return first_injection_instructions_;
  }

  /// Replay plan reproducing this run's injections (paper §5.2). Armed
  /// SEU flips carry over verbatim: they are already instruction-precise,
  /// so re-running them reproduces the same landings deterministically.
  Plan GenerateReplay() const {
    Plan plan = GenerateReplayPlan(log_);
    plan.seus = seus_;
    return plan;
  }

  /// How many of the plan's SEU flips actually landed (reached their
  /// instant while their process was alive and passed the pc-window gate).
  uint32_t seu_landed() const { return seu_landed_; }

 private:
  struct StubState;

  /// Arm the plan's SEU flips as precise machine instruction stops.
  void ArmSeus(const Plan& plan);
  /// Stop callback: flip the addressed bit if the gate admits it.
  void ApplySeu(const SeuFault& seu);

  vm::Machine& machine_;
  ControllerOptions opts_;
  std::unique_ptr<TriggerEngine> engine_;
  std::shared_ptr<const std::vector<FaultProfile>> profiles_;
  InjectionLog log_;
  uint64_t first_injection_instructions_ = 0;
  std::vector<std::shared_ptr<StubState>> stubs_;
  std::vector<SeuFault> seus_;
  uint32_t seu_landed_ = 0;
};

}  // namespace lfi::core
