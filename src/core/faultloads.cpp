#include "core/faultloads.hpp"

#include "core/scenario_gen.hpp"
#include "libc/libc_builder.hpp"

namespace lfi::core {

Plan FileIoFaultload(const std::vector<FaultProfile>& profiles, double p,
                     uint64_t seed) {
  return GenerateRandomSubset(profiles, libc::FileIoFunctions(), p, seed);
}

Plan MemoryFaultload(const std::vector<FaultProfile>& profiles, double p,
                     uint64_t seed) {
  return GenerateRandomSubset(profiles, libc::MemoryFunctions(), p, seed);
}

Plan SocketFaultload(const std::vector<FaultProfile>& profiles, double p,
                     uint64_t seed) {
  return GenerateRandomSubset(profiles, libc::SocketFunctions(), p, seed);
}

}  // namespace lfi::core
