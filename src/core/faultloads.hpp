// Ready-made libc fault scenarios (paper §4): "all faults related to file
// I/O, all memory allocation faults, or all socket I/O faults."
#pragma once

#include "core/profile.hpp"
#include "core/scenario.hpp"

namespace lfi::core {

/// Random faultload over libc file-I/O functions.
Plan FileIoFaultload(const std::vector<FaultProfile>& profiles, double p,
                     uint64_t seed);

/// Random faultload over libc memory-allocation functions.
Plan MemoryFaultload(const std::vector<FaultProfile>& profiles, double p,
                     uint64_t seed);

/// Random faultload over libc socket-I/O functions.
Plan SocketFaultload(const std::vector<FaultProfile>& profiles, double p,
                     uint64_t seed);

}  // namespace lfi::core
