#include "core/injection_log.hpp"

#include "util/errno_table.hpp"
#include "util/strings.hpp"

namespace lfi::core {

void InjectionLog::Add(InjectionRecord record) {
  if (!enabled_) return;
  if (capacity_ != 0 && records_.size() >= capacity_) return;
  record.seq = next_seq_++;
  records_.push_back(std::move(record));
}

std::string InjectionLog::ToText() const {
  std::string out;
  for (const InjectionRecord& r : records_) {
    out += Format("#%llu %s call=%llu", (unsigned long long)r.seq,
                  function_name(r).c_str(), (unsigned long long)r.call_number);
    if (r.has_retval) out += Format(" retval=%lld", (long long)r.retval);
    if (r.errno_value) {
      out += Format(" errno=%s", ErrnoName(*r.errno_value).c_str());
    }
    out += r.call_original ? " calloriginal=true" : " calloriginal=false";
    for (const auto& [idx, value] : r.modified_args) {
      out += Format(" arg%d:=%lld", idx, (long long)value);
    }
    if (!r.backtrace.empty()) {
      out += "  stack:";
      for (const std::string& frame : r.backtrace) out += " " + frame;
    }
    out += "\n";
  }
  return out;
}

}  // namespace lfi::core
