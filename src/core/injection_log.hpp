// The LFI test log (paper §5.2): one record per injection, with the
// triggering conditions (call count, stack trace) and applied effects, so
// injections can be matched to observed program behaviour and replayed.
//
// Records identify the intercepted function by a dense SymbolId in the
// log's own interner (resolved once per stub at install time), so adding a
// record never copies or hashes the function name.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/interner.hpp"

namespace lfi::core {

struct InjectionRecord {
  uint64_t seq = 0;
  /// Function identity, interned in the owning log (InjectionLog::Intern).
  util::SymbolId function = util::kNoSymbol;
  uint64_t call_number = 0;  // which call to the function this was
  bool has_retval = false;
  int64_t retval = 0;
  std::optional<int32_t> errno_value;
  bool call_original = false;
  size_t trigger_index = 0;
  std::vector<std::string> backtrace;  // symbolized, innermost first
  std::vector<std::pair<int, int64_t>> modified_args;  // (1-based idx, value)
};

class InjectionLog {
 public:
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }
  /// Keep at most this many records (0 = unlimited).
  void set_capacity(size_t cap) { capacity_ = cap; }

  /// Intern a function name for records' `function` field. Ids stay valid
  /// across Clear(), so install-time handles survive scenario resets.
  util::SymbolId Intern(std::string_view name) { return symbols_.Intern(name); }
  const std::string& function_name(const InjectionRecord& record) const {
    return symbols_.name(record.function);
  }
  const util::SymbolTable& symbols() const { return symbols_; }

  void Add(InjectionRecord record);
  void Clear() {
    records_.clear();
    next_seq_ = 1;
  }

  const std::vector<InjectionRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  /// Human-readable text log.
  std::string ToText() const;

 private:
  std::vector<InjectionRecord> records_;
  util::SymbolTable symbols_;
  bool enabled_ = true;
  size_t capacity_ = 0;
  uint64_t next_seq_ = 1;
};

}  // namespace lfi::core
