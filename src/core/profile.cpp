#include "core/profile.hpp"

#include <algorithm>

#include "util/strings.hpp"
#include "xml/xml.hpp"

namespace lfi::core {

const char* SideEffectTypeName(ProfileSideEffect::Type t) {
  switch (t) {
    case ProfileSideEffect::Type::Tls: return "TLS";
    case ProfileSideEffect::Type::Global: return "GLOBAL";
    case ProfileSideEffect::Type::Arg: return "ARG";
  }
  return "?";
}

const char* ProvenanceName(Provenance p) {
  switch (p) {
    case Provenance::Assumed: return "assumed";
    case Provenance::Analyzed: return "analyzed";
  }
  return "?";
}

const ProfileErrorCode* FunctionProfile::error_code(int64_t retval) const {
  for (const auto& ec : error_codes) {
    if (ec.retval == retval) return &ec;
  }
  return nullptr;
}

bool FunctionProfile::has_analyzed_codes() const {
  for (const auto& ec : error_codes) {
    if (ec.provenance == Provenance::Analyzed) return true;
  }
  return false;
}

std::vector<std::pair<int64_t, std::optional<int64_t>>>
FunctionProfile::injectables(bool feasible_only) const {
  // Feasibility gate: only meaningful when the analysis vouched for at
  // least one code — a purely hand-written profile keeps its full set.
  const bool restrict_to_analyzed = feasible_only && has_analyzed_codes();
  std::vector<std::pair<int64_t, std::optional<int64_t>>> out;
  for (const auto& ec : error_codes) {
    if (restrict_to_analyzed && ec.provenance != Provenance::Analyzed) {
      continue;
    }
    bool any = false;
    for (const auto& se : ec.side_effects) {
      if (se.type != ProfileSideEffect::Type::Tls) continue;
      for (int64_t v : se.values) {
        out.emplace_back(ec.retval, v);
        any = true;
      }
    }
    if (!any) out.emplace_back(ec.retval, std::nullopt);
  }
  return out;
}

const FunctionProfile* FaultProfile::function(std::string_view name) const {
  for (const auto& fn : functions) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

ProfileIndex::ProfileIndex(const std::vector<FaultProfile>& profiles,
                           util::SymbolTable& symbols) {
  for (const FaultProfile& profile : profiles) {
    for (const FunctionProfile& fn : profile.functions) {
      util::SymbolId id = symbols.Intern(fn.name);
      if (id >= by_id_.size()) by_id_.resize(id + 1, nullptr);
      if (by_id_[id] == nullptr) by_id_[id] = &fn;
    }
  }
}

std::string FaultProfile::ToXml() const {
  xml::Node root("profile");
  root.set_attr("library", library);
  for (const auto& fn : functions) {
    xml::Node* fnode = root.add_child("function");
    fnode->set_attr("name", fn.name);
    if (fn.incomplete) fnode->set_attr("incomplete", "true");
    for (const auto& ec : fn.error_codes) {
      xml::Node* enode = fnode->add_child("error-codes");
      enode->set_attr("retval", Format("%lld", (long long)ec.retval));
      // Only analyzed provenance is spelled out; absence means assumed, so
      // pre-provenance profiles parse unchanged.
      if (ec.provenance == Provenance::Analyzed) {
        enode->set_attr("provenance", "analyzed");
      }
      for (const auto& se : ec.side_effects) {
        // One element per value, as in the paper's sample profile.
        if (se.values.empty()) {
          xml::Node* snode = enode->add_child("side-effect");
          snode->set_attr("type", SideEffectTypeName(se.type));
          if (se.type == ProfileSideEffect::Type::Arg) {
            snode->set_attr("argument", Format("%d", se.arg_index));
          } else {
            snode->set_attr("module", se.module);
            snode->set_attr("offset", Format("%u", se.offset));
          }
          continue;
        }
        for (int64_t v : se.values) {
          xml::Node* snode = enode->add_child("side-effect");
          snode->set_attr("type", SideEffectTypeName(se.type));
          if (se.type == ProfileSideEffect::Type::Arg) {
            snode->set_attr("argument", Format("%d", se.arg_index));
          } else {
            snode->set_attr("module", se.module);
            snode->set_attr("offset", Format("%u", se.offset));
          }
          snode->set_text(Format("%lld", (long long)v));
        }
      }
    }
  }
  return root.serialize();
}

Result<FaultProfile> FaultProfile::FromXml(std::string_view text) {
  auto parsed = xml::Parse(text);
  if (!parsed.ok()) return Err(parsed.error());
  const xml::Node& root = *parsed.value();
  if (root.name() != "profile") return Err("profile: root must be <profile>");
  FaultProfile profile;
  profile.library = root.attr_or("library", "");
  for (const xml::Node* fnode : root.children_named("function")) {
    FunctionProfile fn;
    fn.name = fnode->attr_or("name", "");
    if (fn.name.empty()) return Err("profile: <function> without name");
    fn.incomplete = fnode->attr_or("incomplete", "false") == "true";
    for (const xml::Node* enode : fnode->children_named("error-codes")) {
      ProfileErrorCode ec;
      auto retval = enode->attr_int("retval");
      if (!retval) return Err("profile: <error-codes> without retval");
      ec.retval = *retval;
      std::string provenance = enode->attr_or("provenance", "assumed");
      if (provenance == "analyzed") ec.provenance = Provenance::Analyzed;
      else if (provenance == "assumed") ec.provenance = Provenance::Assumed;
      else return Err("profile: bad provenance " + provenance);
      for (const xml::Node* snode : enode->children_named("side-effect")) {
        ProfileSideEffect se;
        std::string type = snode->attr_or("type", "TLS");
        if (type == "TLS") se.type = ProfileSideEffect::Type::Tls;
        else if (type == "GLOBAL") se.type = ProfileSideEffect::Type::Global;
        else if (type == "ARG") se.type = ProfileSideEffect::Type::Arg;
        else return Err("profile: bad side-effect type " + type);
        se.module = snode->attr_or("module", "");
        se.offset = static_cast<uint32_t>(snode->attr_int("offset").value_or(0));
        se.arg_index = static_cast<int>(snode->attr_int("argument").value_or(0));
        int64_t v = 0;
        if (ParseInt(snode->text(), &v)) se.values.push_back(v);
        // Merge into an existing effect at the same location.
        bool merged = false;
        for (auto& existing : ec.side_effects) {
          if (existing.type == se.type && existing.module == se.module &&
              existing.offset == se.offset &&
              existing.arg_index == se.arg_index) {
            existing.values.insert(existing.values.end(), se.values.begin(),
                                   se.values.end());
            merged = true;
            break;
          }
        }
        if (!merged) ec.side_effects.push_back(std::move(se));
      }
      for (auto& se : ec.side_effects) {
        std::sort(se.values.begin(), se.values.end());
        se.values.erase(std::unique(se.values.begin(), se.values.end()),
                        se.values.end());
      }
      fn.error_codes.push_back(std::move(ec));
    }
    profile.functions.push_back(std::move(fn));
  }
  return profile;
}

}  // namespace lfi::core
