// Fault profiles (paper §3.3).
//
// The profiler's output: per exported function, the possible error return
// values and, for each, the side effects that accompany it (errno-style
// TLS writes, global writes, output-argument writes). Serialized as the
// paper's XML format:
//
//   <profile library="libc.so">
//     <function name="close">
//       <error-codes retval="-1">
//         <side-effect type="TLS" module="libc.so" offset="0">9</side-effect>
//         ...
//       </error-codes>
//     </function>
//   </profile>
//
// Note on values: the paper's sample lists kernel-side constants (-9 for
// EBADF); we record the value actually stored in the TLS location (+9),
// which is what an injector must write. EXPERIMENTS.md discusses this.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/interner.hpp"
#include "util/result.hpp"

namespace lfi::core {

struct ProfileSideEffect {
  enum class Type { Tls, Global, Arg };
  Type type = Type::Tls;
  std::string module;       // owner of the TLS/global offset
  uint32_t offset = 0;      // module-relative (Tls / Global)
  int arg_index = 0;        // Arg
  std::vector<int64_t> values;  // possible stored values, sorted
};

const char* SideEffectTypeName(ProfileSideEffect::Type t);

/// Where an error code came from (the paper's doc-vs-binary distinction):
/// `Analyzed` codes were recovered from the binary by reverse constant
/// propagation — the function can actually return them — while `Assumed`
/// codes were written by hand or imported from documentation and may be
/// infeasible for this implementation. Feasible-only generation draws only
/// from analyzed codes when a function has any.
enum class Provenance : uint8_t { Assumed = 0, Analyzed = 1 };

const char* ProvenanceName(Provenance p);

struct ProfileErrorCode {
  int64_t retval = 0;
  Provenance provenance = Provenance::Assumed;
  std::vector<ProfileSideEffect> side_effects;
};

struct FunctionProfile {
  std::string name;
  std::vector<ProfileErrorCode> error_codes;
  bool incomplete = false;  // analysis hit indirect control flow

  const ProfileErrorCode* error_code(int64_t retval) const;
  /// Flatten into injectable (retval, errno-value) pairs: one per TLS
  /// side-effect value, or a single (retval, nullopt) when none.
  /// With `feasible_only`, restrict to constprop-verified (Analyzed) error
  /// codes when the function has at least one — unanalyzed functions fall
  /// back to the full set, so hand-written profiles keep working.
  std::vector<std::pair<int64_t, std::optional<int64_t>>> injectables(
      bool feasible_only = false) const;
  /// Any error code carrying Analyzed provenance?
  bool has_analyzed_codes() const;
};

struct FaultProfile {
  std::string library;
  std::vector<FunctionProfile> functions;

  const FunctionProfile* function(std::string_view name) const;

  std::string ToXml() const;
  static Result<FaultProfile> FromXml(std::string_view xml);
};

/// Resolve-once view over a profile set: interns every profiled function
/// name into `symbols` and maps SymbolId -> FunctionProfile, so install
/// paths look profiles up by dense id (array index) instead of a linear
/// string scan per function. The first profile containing a function wins,
/// matching the search order of the string API. The index borrows the
/// profiles — it must not outlive them.
class ProfileIndex {
 public:
  ProfileIndex(const std::vector<FaultProfile>& profiles,
               util::SymbolTable& symbols);

  const FunctionProfile* function(util::SymbolId id) const {
    return id < by_id_.size() ? by_id_[id] : nullptr;
  }

 private:
  std::vector<const FunctionProfile*> by_id_;
};

}  // namespace lfi::core
