#include "core/profiler.hpp"

#include <algorithm>
#include <set>

namespace lfi::core {

Profiler::Profiler(const analysis::Workspace& ws, ProfilerOptions opts)
    : ws_(ws), opts_(opts), analyzer_(ws, opts.analysis) {}

FunctionProfile ToFunctionProfile(const analysis::FunctionSummary& summary) {
  FunctionProfile fn;
  fn.name = summary.function;
  fn.incomplete = summary.incomplete;
  for (const analysis::ErrorReturn& er : summary.returns) {
    ProfileErrorCode ec;
    ec.retval = er.value;
    // Everything coming out of the analyzer is binary-derived: constprop
    // proved the function can return this constant. Hand-edited profile
    // additions stay at the default (Assumed) provenance.
    ec.provenance = Provenance::Analyzed;
    for (const analysis::SideEffect& se : er.effects) {
      ProfileSideEffect pse;
      switch (se.kind) {
        case analysis::SideEffect::Kind::Tls:
          pse.type = ProfileSideEffect::Type::Tls;
          break;
        case analysis::SideEffect::Kind::Global:
          pse.type = ProfileSideEffect::Type::Global;
          break;
        case analysis::SideEffect::Kind::Arg:
          pse.type = ProfileSideEffect::Type::Arg;
          break;
      }
      pse.module = se.module;
      pse.offset = se.offset;
      pse.arg_index = se.arg_index;
      pse.values.assign(se.values.begin(), se.values.end());
      ec.side_effects.push_back(std::move(pse));
    }
    fn.error_codes.push_back(std::move(ec));
  }
  return fn;
}

Result<FaultProfile> Profiler::ProfileLibrary(const sso::SharedObject& lib) {
  auto start = std::chrono::steady_clock::now();
  FaultProfile profile;
  profile.library = lib.name;
  uint64_t states_before = analyzer_.total_states_explored();
  for (const isa::Symbol& sym : lib.exports) {
    auto summary = analyzer_.Analyze(lib, sym.name);
    if (!summary.ok()) return Err(summary.error());
    analysis::FunctionSummary pruned =
        analysis::ApplyHeuristics(summary.value(), opts_.heuristics);
    stats_.max_hops = std::max(stats_.max_hops, pruned.max_hops);
    ++stats_.functions_profiled;
    // Functions without error codes keep an (empty) entry so testers can
    // see they were analyzed, and can prune/augment profiles by hand (§2).
    profile.functions.push_back(ToFunctionProfile(pruned));
  }
  ++stats_.libraries_profiled;
  stats_.states_explored =
      analyzer_.total_states_explored() - states_before + stats_.states_explored;
  stats_.total_time += std::chrono::steady_clock::now() - start;
  return profile;
}

Result<std::vector<FaultProfile>> Profiler::ProfileApplication(
    const sso::SharedObject& app) {
  // Transitive needed-closure, breadth-first — the ldd analogue.
  std::vector<const sso::SharedObject*> queue;
  std::set<std::string> seen = {app.name};
  auto enqueue_needed = [&](const sso::SharedObject& so) {
    for (const std::string& dep : so.needed) {
      if (seen.count(dep)) continue;
      seen.insert(dep);
      for (const sso::SharedObject* mod : ws_.modules()) {
        if (mod->name == dep) {
          queue.push_back(mod);
          break;
        }
      }
    }
  };
  enqueue_needed(app);
  std::vector<FaultProfile> out;
  for (size_t i = 0; i < queue.size(); ++i) {
    enqueue_needed(*queue[i]);
    auto profile = ProfileLibrary(*queue[i]);
    if (!profile.ok()) return Err(profile.error());
    out.push_back(std::move(profile).take());
  }
  return out;
}

}  // namespace lfi::core
