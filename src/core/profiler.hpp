// The LFI profiler driver (paper §3).
//
// Points the static analyses at a target: enumerates a library's exported
// functions (symbol-table walk — works on stripped binaries since dynamic
// exports survive strip), runs reverse constant propagation and
// side-effects analysis on each, applies the optional heuristics, and
// emits the fault profile. ProfileApplication() is the "point LFI at a
// target application" entry: it walks the needed-libraries closure (the
// ldd analogue) and profiles every library the application links against.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "analysis/constprop.hpp"
#include "analysis/heuristics.hpp"
#include "core/profile.hpp"
#include "sso/sso.hpp"

namespace lfi::core {

struct ProfilerOptions {
  analysis::AnalysisOptions analysis;
  analysis::HeuristicOptions heuristics;  // both heuristics off by default
};

struct ProfilerStats {
  size_t functions_profiled = 0;
  size_t libraries_profiled = 0;
  uint64_t states_explored = 0;
  int max_hops = 0;
  std::chrono::nanoseconds total_time{0};
};

class Profiler {
 public:
  /// The workspace must contain every module the analysis may recurse into
  /// (the target libraries, their dependencies, and the kernel image).
  explicit Profiler(const analysis::Workspace& ws, ProfilerOptions opts = {});

  /// Profile every exported function of one library.
  Result<FaultProfile> ProfileLibrary(const sso::SharedObject& lib);

  /// Profile all libraries in `app`'s needed-closure (excluding the kernel
  /// image and the application module itself).
  Result<std::vector<FaultProfile>> ProfileApplication(
      const sso::SharedObject& app);

  const ProfilerStats& stats() const { return stats_; }
  const analysis::ConstPropAnalyzer& analyzer() const { return analyzer_; }

 private:
  const analysis::Workspace& ws_;
  ProfilerOptions opts_;
  analysis::ConstPropAnalyzer analyzer_;
  ProfilerStats stats_;
};

/// Convert an analysis summary into the profile representation.
FunctionProfile ToFunctionProfile(const analysis::FunctionSummary& summary);

}  // namespace lfi::core
