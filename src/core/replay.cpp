#include "core/replay.hpp"

#include <algorithm>
#include <numeric>

namespace lfi::core {

Plan GenerateReplayPlan(const InjectionLog& log) {
  Plan plan;
  for (const InjectionRecord& r : log.records()) {
    FunctionTrigger t;
    t.function = log.function_name(r);
    t.mode = FunctionTrigger::Mode::CallCount;
    t.inject_call = r.call_number;
    if (r.has_retval) t.retval = r.retval;
    t.errno_value = r.errno_value;
    t.call_original = r.call_original;
    t.max_injections = 1;
    // Argument modifications are replayed as recorded final values.
    for (const auto& [idx, value] : r.modified_args) {
      ArgModification m;
      m.argument = idx;
      m.op = ArgModification::Op::Set;
      m.value = value;
      t.modifications.push_back(m);
    }
    plan.triggers.push_back(std::move(t));
  }
  return plan;
}

namespace {

/// Rebuild a plan keeping only the triggers at `keep` (ascending indices
/// into the original trigger list). Seed is preserved so probability
/// triggers, if any survive, draw the same stream.
Plan SubsetPlan(const Plan& plan, const std::vector<size_t>& keep) {
  Plan out;
  out.seed = plan.seed;
  out.triggers.reserve(keep.size());
  for (size_t i : keep) out.triggers.push_back(plan.triggers[i]);
  return out;
}

}  // namespace

Plan MinimizePlan(const Plan& plan, const PlanOracle& still_fails,
                  MinimizeStats* stats) {
  MinimizeStats local;
  MinimizeStats& st = stats != nullptr ? *stats : local;
  st = MinimizeStats{};
  st.initial_triggers = plan.triggers.size();

  auto fails = [&](const std::vector<size_t>& keep) {
    ++st.oracle_runs;
    return still_fails(SubsetPlan(plan, keep));
  };

  std::vector<size_t> current(plan.triggers.size());
  std::iota(current.begin(), current.end(), size_t{0});
  if (!fails(current)) {
    // The full plan does not reproduce (e.g. scheduling nondeterminism in
    // the target): nothing to shrink against, return it unchanged.
    st.final_triggers = current.size();
    return plan;
  }
  st.reproduced = true;

  // ddmin: split into n chunks; a failing chunk becomes the new set
  // (restart at n=2), a failing complement drops one chunk (n decreases
  // with the set); otherwise refine the granularity until chunks are
  // single triggers. Terminates with a 1-minimal set.
  size_t n = 2;
  while (current.size() >= 2) {
    size_t chunk = (current.size() + n - 1) / n;
    bool reduced = false;

    for (size_t start = 0; start < current.size() && !reduced; start += chunk) {
      size_t end = std::min(start + chunk, current.size());
      std::vector<size_t> subset(current.begin() + static_cast<long>(start),
                                 current.begin() + static_cast<long>(end));
      if (subset.size() < current.size() && fails(subset)) {
        current = std::move(subset);
        n = 2;
        reduced = true;
      }
    }
    if (reduced) continue;

    if (n > 2) {  // at n == 2 complements are the other subset, already tried
      for (size_t start = 0; start < current.size() && !reduced;
           start += chunk) {
        size_t end = std::min(start + chunk, current.size());
        std::vector<size_t> complement;
        complement.reserve(current.size() - (end - start));
        complement.insert(complement.end(), current.begin(),
                          current.begin() + static_cast<long>(start));
        complement.insert(complement.end(),
                          current.begin() + static_cast<long>(end),
                          current.end());
        if (!complement.empty() && complement.size() < current.size() &&
            fails(complement)) {
          current = std::move(complement);
          n = std::max<size_t>(n - 1, 2);
          reduced = true;
        }
      }
    }
    if (reduced) continue;

    if (n >= current.size()) break;  // single-trigger chunks: 1-minimal
    n = std::min(current.size(), n * 2);
  }

  st.final_triggers = current.size();
  return SubsetPlan(plan, current);
}

}  // namespace lfi::core
