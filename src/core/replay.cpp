#include "core/replay.hpp"

namespace lfi::core {

Plan GenerateReplayPlan(const InjectionLog& log) {
  Plan plan;
  for (const InjectionRecord& r : log.records()) {
    FunctionTrigger t;
    t.function = log.function_name(r);
    t.mode = FunctionTrigger::Mode::CallCount;
    t.inject_call = r.call_number;
    if (r.has_retval) t.retval = r.retval;
    t.errno_value = r.errno_value;
    t.call_original = r.call_original;
    t.max_injections = 1;
    // Argument modifications are replayed as recorded final values.
    for (const auto& [idx, value] : r.modified_args) {
      ArgModification m;
      m.argument = idx;
      m.op = ArgModification::Op::Set;
      m.value = value;
      t.modifications.push_back(m);
    }
    plan.triggers.push_back(std::move(t));
  }
  return plan;
}

}  // namespace lfi::core
