// Replay-script generation (paper §5.2): convert an injection log into a
// deterministic plan of call-count triggers that reproduces the test case.
// (As the paper notes, replay is exact up to scheduling nondeterminism.)
//
// MinimizePlan shrinks such a replay to a minimal reproducer with
// replay-based delta debugging (Zeller's ddmin) over the plan's triggers:
// the caller supplies an oracle that re-runs a candidate plan and reports
// whether the failure of interest still occurs, and the minimizer returns
// a 1-minimal trigger subset — removing any single remaining trigger
// makes the failure disappear.
#pragma once

#include <cstddef>
#include <functional>

#include "core/injection_log.hpp"
#include "core/scenario.hpp"

namespace lfi::core {

Plan GenerateReplayPlan(const InjectionLog& log);

/// Oracle for MinimizePlan: run the candidate plan against the target and
/// return true when the failure of interest still reproduces. Must be
/// deterministic — minimization (and its result) is exactly as
/// deterministic as the oracle.
using PlanOracle = std::function<bool(const Plan&)>;

struct MinimizeStats {
  size_t oracle_runs = 0;       // how many candidate plans were executed
  size_t initial_triggers = 0;
  size_t final_triggers = 0;
  /// False when the input plan itself did not reproduce per the oracle —
  /// the plan is then returned unchanged and no shrinking was attempted.
  bool reproduced = false;
};

/// Delta-debug `plan`'s triggers down to a 1-minimal subset that still
/// satisfies `still_fails`. Trigger order (and the plan seed) is
/// preserved; only triggers are removed, never altered. Deterministic for
/// a deterministic oracle.
Plan MinimizePlan(const Plan& plan, const PlanOracle& still_fails,
                  MinimizeStats* stats = nullptr);

}  // namespace lfi::core
