// Replay-script generation (paper §5.2): convert an injection log into a
// deterministic plan of call-count triggers that reproduces the test case.
// (As the paper notes, replay is exact up to scheduling nondeterminism.)
#pragma once

#include "core/injection_log.hpp"
#include "core/scenario.hpp"

namespace lfi::core {

Plan GenerateReplayPlan(const InjectionLog& log);

}  // namespace lfi::core
