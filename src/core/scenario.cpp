#include "core/scenario.hpp"

#include <cstdint>

#include "util/errno_table.hpp"
#include "util/strings.hpp"
#include "xml/xml.hpp"

namespace lfi::core {

int64_t ArgModification::Apply(int64_t current) const {
  switch (op) {
    case Op::Add: return current + value;
    case Op::Sub: return current - value;
    case Op::Set: return value;
    case Op::And: return current & value;
    case Op::Or: return current | value;
    case Op::Xor: return current ^ value;
  }
  return current;
}

const char* ArgOpName(ArgModification::Op op) {
  switch (op) {
    case ArgModification::Op::Add: return "add";
    case ArgModification::Op::Sub: return "sub";
    case ArgModification::Op::Set: return "set";
    case ArgModification::Op::And: return "and";
    case ArgModification::Op::Or: return "or";
    case ArgModification::Op::Xor: return "xor";
  }
  return "?";
}

std::optional<ArgModification::Op> ArgOpFromName(std::string_view name) {
  if (name == "add") return ArgModification::Op::Add;
  if (name == "sub") return ArgModification::Op::Sub;
  if (name == "set") return ArgModification::Op::Set;
  if (name == "and") return ArgModification::Op::And;
  if (name == "or") return ArgModification::Op::Or;
  if (name == "xor") return ArgModification::Op::Xor;
  return std::nullopt;
}

const char* SeuTargetName(SeuFault::Target t) {
  switch (t) {
    case SeuFault::Target::Reg: return "reg";
    case SeuFault::Target::Stack: return "stack";
    case SeuFault::Target::Heap: return "heap";
    case SeuFault::Target::Data: return "data";
  }
  return "?";
}

std::optional<SeuFault::Target> SeuTargetFromName(std::string_view name) {
  if (name == "reg") return SeuFault::Target::Reg;
  if (name == "stack") return SeuFault::Target::Stack;
  if (name == "heap") return SeuFault::Target::Heap;
  if (name == "data") return SeuFault::Target::Data;
  return std::nullopt;
}

namespace {
constexpr const char* kSeuRegNames[kSeuNumRegs] = {
    "R0", "R1", "R2", "R3", "R4", "R5", "R6", "R7", "SP", "BP"};
}  // namespace

const char* SeuRegName(int reg) {
  if (reg < 0 || reg >= kSeuNumRegs) return "?";
  return kSeuRegNames[reg];
}

std::optional<int> SeuRegFromName(std::string_view name) {
  for (int i = 0; i < kSeuNumRegs; ++i) {
    if (name == kSeuRegNames[i]) return i;
  }
  return std::nullopt;
}

std::string Plan::ToXml() const {
  xml::Node root("plan");
  root.set_attr("seed", Format("%llu", (unsigned long long)seed));
  for (const FunctionTrigger& t : triggers) {
    xml::Node* fn = root.add_child("function");
    fn->set_attr("name", t.function);
    switch (t.mode) {
      case FunctionTrigger::Mode::CallCount:
        fn->set_attr("inject", Format("%llu", (unsigned long long)t.inject_call));
        break;
      case FunctionTrigger::Mode::Probability:
        // max_digits10: explorer-mutated probabilities must survive the
        // XML round trip bit-exactly or persisted corpus plans replay a
        // subtly different scenario than the one that was minimized.
        fn->set_attr("probability", Format("%.17g", t.probability));
        break;
      case FunctionTrigger::Mode::Always:
        fn->set_attr("mode", "always");
        break;
      case FunctionTrigger::Mode::Rotate:
        fn->set_attr("mode", "rotate");
        break;
    }
    if (t.retval) fn->set_attr("retval", Format("%lld", (long long)*t.retval));
    if (t.errno_value) fn->set_attr("errno", ErrnoName(*t.errno_value));
    fn->set_attr("calloriginal", t.call_original ? "true" : "false");
    if (t.max_injections >= 0) {
      fn->set_attr("maxinjections", Format("%d", t.max_injections));
    }
    if (!t.stacktrace.empty()) {
      xml::Node* st = fn->add_child("stacktrace");
      for (const FrameCondition& f : t.stacktrace) {
        xml::Node* frame = st->add_child("frame");
        frame->set_text(f.address ? Hex(*f.address) : f.symbol);
      }
    }
    for (const ArgModification& m : t.modifications) {
      xml::Node* mod = fn->add_child("modify");
      mod->set_attr("argument", Format("%d", m.argument));
      mod->set_attr("op", ArgOpName(m.op));
      mod->set_attr("value", Format("%lld", (long long)m.value));
    }
  }
  for (const SeuFault& s : seus) {
    xml::Node* seu = root.add_child("seu");
    seu->set_attr("target", SeuTargetName(s.target));
    if (s.target == SeuFault::Target::Reg) {
      seu->set_attr("reg", SeuRegName(s.reg));
    } else {
      seu->set_attr("offset", Format("%llu", (unsigned long long)s.offset));
    }
    if (s.target == SeuFault::Target::Data) seu->set_attr("module", s.module);
    seu->set_attr("bit", Format("%d", s.bit));
    seu->set_attr("at", Format("%llu", (unsigned long long)s.at_instruction));
    if (s.pid != 1) seu->set_attr("pid", Format("%d", s.pid));
    if (s.window_end != 0) {
      seu->set_attr("wmodule", s.window_module);
      seu->set_attr("wbegin",
                    Format("%llu", (unsigned long long)s.window_begin));
      seu->set_attr("wend", Format("%llu", (unsigned long long)s.window_end));
    }
  }
  return root.serialize();
}

Result<Plan> Plan::FromXml(std::string_view text) {
  auto parsed = xml::Parse(text);
  if (!parsed.ok()) return Err(parsed.error());
  const xml::Node& root = *parsed.value();
  if (root.name() != "plan") return Err("plan: root must be <plan>");
  Plan plan;
  // Every attribute is validated, not best-effort coerced: a malformed
  // plan must fail loudly here instead of silently running a different
  // scenario (a mis-parsed probability or call count corrupts exactly the
  // replay/minimization artifacts the explorer persists).
  if (auto seed = root.attr("seed")) {
    if (!ParseUint(*seed, &plan.seed)) {
      return Err("plan: bad seed \"" + *seed + "\" (want a uint64)");
    }
  }
  for (const xml::Node* fn : root.children_named("function")) {
    FunctionTrigger t;
    t.function = fn->attr_or("name", "");
    if (t.function.empty()) return Err("plan: <function> without name");
    if (auto inject = fn->attr("inject")) {
      t.mode = FunctionTrigger::Mode::CallCount;
      if (!ParseUint(*inject, &t.inject_call)) {
        return Err("plan: bad inject \"" + *inject + "\" for " + t.function +
                   " (want a uint64 call number)");
      }
      if (t.inject_call == 0) {
        return Err("plan: inject must be >= 1 for " + t.function +
                   " (call counts are 1-based)");
      }
    } else if (auto prob = fn->attr("probability")) {
      t.mode = FunctionTrigger::Mode::Probability;
      if (!ParseDouble(*prob, &t.probability) || t.probability < 0.0 ||
          t.probability > 1.0) {
        return Err("plan: bad probability \"" + *prob + "\" for " +
                   t.function + " (want a number in [0,1])");
      }
    } else {
      std::string mode = fn->attr_or("mode", "always");
      if (mode == "always") t.mode = FunctionTrigger::Mode::Always;
      else if (mode == "rotate") t.mode = FunctionTrigger::Mode::Rotate;
      else return Err("plan: bad trigger mode " + mode);
    }
    if (auto rv = fn->attr("retval")) {
      int64_t value = 0;
      if (!ParseInt(*rv, &value)) {
        return Err("plan: bad retval \"" + *rv + "\" for " + t.function +
                   " (want an int64)");
      }
      t.retval = value;
    }
    if (auto en = fn->attr("errno")) {
      auto value = ErrnoFromName(*en);
      if (!value) {
        int64_t raw = 0;
        if (!ParseInt(*en, &raw) || raw < INT32_MIN || raw > INT32_MAX) {
          return Err("plan: bad errno " + *en);
        }
        value = static_cast<int32_t>(raw);
      }
      t.errno_value = *value;
    }
    std::string call_original = fn->attr_or("calloriginal", "false");
    if (call_original != "true" && call_original != "false") {
      return Err("plan: bad calloriginal \"" + call_original + "\" for " +
                 t.function + " (want true or false)");
    }
    t.call_original = call_original == "true";
    if (auto mi = fn->attr("maxinjections")) {
      int64_t value = 0;
      if (!ParseInt(*mi, &value) || value < -1 || value > INT32_MAX) {
        return Err("plan: bad maxinjections \"" + *mi + "\" for " +
                   t.function + " (want -1 for unlimited, or a count)");
      }
      t.max_injections = static_cast<int>(value);
    }
    if (const xml::Node* st = fn->child("stacktrace")) {
      for (const xml::Node* frame : st->children_named("frame")) {
        FrameCondition cond;
        std::string_view content = Trim(frame->text());
        if (StartsWith(content, "0x") || StartsWith(content, "0X")) {
          int64_t addr = 0;
          if (!ParseInt(content, &addr)) return Err("plan: bad frame address");
          cond.address = static_cast<uint64_t>(addr);
        } else {
          cond.symbol = std::string(content);
        }
        t.stacktrace.push_back(std::move(cond));
      }
    }
    for (const xml::Node* mod : fn->children_named("modify")) {
      ArgModification m;
      std::string argument = mod->attr_or("argument", "");
      int64_t arg_index = 0;
      if (!ParseInt(argument, &arg_index) || arg_index < 1 ||
          arg_index > kMaxModifyArgument) {
        return Err("plan: bad modify argument \"" + argument + "\" for " +
                   t.function + " (want 1.." +
                   std::to_string(kMaxModifyArgument) + ")");
      }
      m.argument = static_cast<int>(arg_index);
      auto op = ArgOpFromName(mod->attr_or("op", "set"));
      if (!op) return Err("plan: bad modify op");
      m.op = *op;
      if (auto value = mod->attr("value")) {
        if (!ParseInt(*value, &m.value)) {
          return Err("plan: bad modify value \"" + *value + "\" for " +
                     t.function + " (want an int64)");
        }
      }
      t.modifications.push_back(m);
    }
    plan.triggers.push_back(std::move(t));
  }
  for (const xml::Node* node : root.children_named("seu")) {
    SeuFault s;
    std::string target = node->attr_or("target", "");
    auto parsed_target = SeuTargetFromName(target);
    if (!parsed_target) {
      return Err("plan: bad seu target \"" + target +
                 "\" (want reg, stack, heap, or data)");
    }
    s.target = *parsed_target;
    if (s.target == SeuFault::Target::Reg) {
      std::string reg = node->attr_or("reg", "");
      auto parsed_reg = SeuRegFromName(reg);
      if (!parsed_reg) {
        return Err("plan: bad seu reg \"" + reg + "\" (want R0..R7, SP, BP)");
      }
      s.reg = *parsed_reg;
    } else {
      if (auto offset = node->attr("offset")) {
        if (!ParseUint(*offset, &s.offset)) {
          return Err("plan: bad seu offset \"" + *offset +
                     "\" (want a uint64 byte offset)");
        }
      }
      if (s.target == SeuFault::Target::Data) {
        s.module = node->attr_or("module", "");
        if (s.module.empty()) {
          return Err("plan: <seu target=\"data\"> without module");
        }
      }
    }
    std::string bit = node->attr_or("bit", "");
    int64_t bit_index = 0;
    if (!ParseInt(bit, &bit_index) || bit_index < 0 || bit_index > 63) {
      return Err("plan: bad seu bit \"" + bit + "\" (want 0..63)");
    }
    s.bit = static_cast<int>(bit_index);
    std::string at = node->attr_or("at", "");
    if (!ParseUint(at, &s.at_instruction)) {
      return Err("plan: bad seu at \"" + at +
                 "\" (want a uint64 instruction instant)");
    }
    if (auto pid = node->attr("pid")) {
      int64_t value = 0;
      if (!ParseInt(*pid, &value) || value < 1 || value > INT32_MAX) {
        return Err("plan: bad seu pid \"" + *pid + "\" (want a pid >= 1)");
      }
      s.pid = static_cast<int>(value);
    }
    if (auto wmodule = node->attr("wmodule")) {
      s.window_module = *wmodule;
      std::string wbegin = node->attr_or("wbegin", "0");
      if (!ParseUint(wbegin, &s.window_begin)) {
        return Err("plan: bad seu wbegin \"" + wbegin + "\" (want a uint64)");
      }
      std::string wend = node->attr_or("wend", "");
      if (!ParseUint(wend, &s.window_end) || s.window_end <= s.window_begin) {
        return Err("plan: bad seu wend \"" + wend +
                   "\" (want a uint64 > wbegin)");
      }
    }
    plan.seus.push_back(std::move(s));
  }
  return plan;
}

}  // namespace lfi::core
