#include "core/scenario.hpp"

#include "util/errno_table.hpp"
#include "util/strings.hpp"
#include "xml/xml.hpp"

namespace lfi::core {

int64_t ArgModification::Apply(int64_t current) const {
  switch (op) {
    case Op::Add: return current + value;
    case Op::Sub: return current - value;
    case Op::Set: return value;
    case Op::And: return current & value;
    case Op::Or: return current | value;
    case Op::Xor: return current ^ value;
  }
  return current;
}

const char* ArgOpName(ArgModification::Op op) {
  switch (op) {
    case ArgModification::Op::Add: return "add";
    case ArgModification::Op::Sub: return "sub";
    case ArgModification::Op::Set: return "set";
    case ArgModification::Op::And: return "and";
    case ArgModification::Op::Or: return "or";
    case ArgModification::Op::Xor: return "xor";
  }
  return "?";
}

std::optional<ArgModification::Op> ArgOpFromName(std::string_view name) {
  if (name == "add") return ArgModification::Op::Add;
  if (name == "sub") return ArgModification::Op::Sub;
  if (name == "set") return ArgModification::Op::Set;
  if (name == "and") return ArgModification::Op::And;
  if (name == "or") return ArgModification::Op::Or;
  if (name == "xor") return ArgModification::Op::Xor;
  return std::nullopt;
}

std::string Plan::ToXml() const {
  xml::Node root("plan");
  root.set_attr("seed", Format("%llu", (unsigned long long)seed));
  for (const FunctionTrigger& t : triggers) {
    xml::Node* fn = root.add_child("function");
    fn->set_attr("name", t.function);
    switch (t.mode) {
      case FunctionTrigger::Mode::CallCount:
        fn->set_attr("inject", Format("%llu", (unsigned long long)t.inject_call));
        break;
      case FunctionTrigger::Mode::Probability:
        fn->set_attr("probability", Format("%g", t.probability));
        break;
      case FunctionTrigger::Mode::Always:
        fn->set_attr("mode", "always");
        break;
      case FunctionTrigger::Mode::Rotate:
        fn->set_attr("mode", "rotate");
        break;
    }
    if (t.retval) fn->set_attr("retval", Format("%lld", (long long)*t.retval));
    if (t.errno_value) fn->set_attr("errno", ErrnoName(*t.errno_value));
    fn->set_attr("calloriginal", t.call_original ? "true" : "false");
    if (t.max_injections >= 0) {
      fn->set_attr("maxinjections", Format("%d", t.max_injections));
    }
    if (!t.stacktrace.empty()) {
      xml::Node* st = fn->add_child("stacktrace");
      for (const FrameCondition& f : t.stacktrace) {
        xml::Node* frame = st->add_child("frame");
        frame->set_text(f.address ? Hex(*f.address) : f.symbol);
      }
    }
    for (const ArgModification& m : t.modifications) {
      xml::Node* mod = fn->add_child("modify");
      mod->set_attr("argument", Format("%d", m.argument));
      mod->set_attr("op", ArgOpName(m.op));
      mod->set_attr("value", Format("%lld", (long long)m.value));
    }
  }
  return root.serialize();
}

Result<Plan> Plan::FromXml(std::string_view text) {
  auto parsed = xml::Parse(text);
  if (!parsed.ok()) return Err(parsed.error());
  const xml::Node& root = *parsed.value();
  if (root.name() != "plan") return Err("plan: root must be <plan>");
  Plan plan;
  plan.seed = static_cast<uint64_t>(root.attr_int("seed").value_or(1));
  for (const xml::Node* fn : root.children_named("function")) {
    FunctionTrigger t;
    t.function = fn->attr_or("name", "");
    if (t.function.empty()) return Err("plan: <function> without name");
    if (auto inject = fn->attr_int("inject")) {
      t.mode = FunctionTrigger::Mode::CallCount;
      t.inject_call = static_cast<uint64_t>(*inject);
    } else if (auto prob = fn->attr("probability")) {
      t.mode = FunctionTrigger::Mode::Probability;
      t.probability = std::atof(prob->c_str());
    } else {
      std::string mode = fn->attr_or("mode", "always");
      if (mode == "always") t.mode = FunctionTrigger::Mode::Always;
      else if (mode == "rotate") t.mode = FunctionTrigger::Mode::Rotate;
      else return Err("plan: bad trigger mode " + mode);
    }
    if (auto rv = fn->attr_int("retval")) t.retval = *rv;
    if (auto en = fn->attr("errno")) {
      auto value = ErrnoFromName(*en);
      if (!value) {
        int64_t raw = 0;
        if (!ParseInt(*en, &raw)) return Err("plan: bad errno " + *en);
        value = static_cast<int32_t>(raw);
      }
      t.errno_value = *value;
    }
    t.call_original = fn->attr_or("calloriginal", "false") == "true";
    t.max_injections =
        static_cast<int>(fn->attr_int("maxinjections").value_or(-1));
    if (const xml::Node* st = fn->child("stacktrace")) {
      for (const xml::Node* frame : st->children_named("frame")) {
        FrameCondition cond;
        std::string_view content = Trim(frame->text());
        if (StartsWith(content, "0x") || StartsWith(content, "0X")) {
          int64_t addr = 0;
          if (!ParseInt(content, &addr)) return Err("plan: bad frame address");
          cond.address = static_cast<uint64_t>(addr);
        } else {
          cond.symbol = std::string(content);
        }
        t.stacktrace.push_back(std::move(cond));
      }
    }
    for (const xml::Node* mod : fn->children_named("modify")) {
      ArgModification m;
      m.argument = static_cast<int>(mod->attr_int("argument").value_or(0));
      auto op = ArgOpFromName(mod->attr_or("op", "set"));
      if (!op) return Err("plan: bad modify op");
      m.op = *op;
      m.value = mod->attr_int("value").value_or(0);
      if (m.argument <= 0) return Err("plan: modify argument must be >= 1");
      t.modifications.push_back(m);
    }
    plan.triggers.push_back(std::move(t));
  }
  return plan;
}

}  // namespace lfi::core
