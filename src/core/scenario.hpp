// The fault-scenario language (paper §4).
//
// A scenario ("faultload") is a set of <trigger, fault> tuples. Triggers
// fire on call counts, probabilistically, on every call, or rotating
// through a profile's error codes (the exhaustive generator); they can be
// conditioned on a partial stack trace. Faults set a return value, set
// errno, modify arguments in place, and decide whether the original
// function still runs. XML syntax follows the paper:
//
//   <plan seed="42">
//     <function name="readdir" inject="5" retval="0" errno="EBADF"
//               calloriginal="false">
//       <stacktrace>
//         <frame>0xb824490</frame>
//         <frame>refresh_files</frame>
//       </stacktrace>
//     </function>
//     <function name="read" inject="20" calloriginal="true">
//       <modify argument="3" op="sub" value="10" />
//     </function>
//   </plan>
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace lfi::core {

/// Highest argument index a <modify> may name. Arguments live at SP + 8*i
/// at stub entry, so a runaway index (or one wrapped through a narrowing
/// cast) would read far past any real frame; plans that need more than
/// this many arguments do not exist.
inline constexpr int kMaxModifyArgument = 255;

struct ArgModification {
  int argument = 0;  // 1-based, as in the paper's example
  enum class Op { Add, Sub, Set, And, Or, Xor };
  Op op = Op::Set;
  int64_t value = 0;

  int64_t Apply(int64_t current) const;
};

/// One backtrace frame condition: matches a hex address (0x...) or an
/// enclosing function symbol.
struct FrameCondition {
  std::optional<uint64_t> address;
  std::string symbol;
};

struct FunctionTrigger {
  std::string function;

  enum class Mode {
    CallCount,    // fire on the inject-th call (1-based)
    Probability,  // fire with probability p on every call
    Always,       // fire on every call
    Rotate,       // fire on every call, cycling the profile's error codes
  };
  Mode mode = Mode::Always;
  uint64_t inject_call = 0;  // CallCount
  double probability = 0.0;  // Probability

  /// Explicit fault. When unset, the controller draws (retval, errno) from
  /// the function's fault profile (random / rotate scenarios).
  std::optional<int64_t> retval;
  std::optional<int32_t> errno_value;
  bool call_original = false;

  std::vector<FrameCondition> stacktrace;  // innermost-first, partial
  std::vector<ArgModification> modifications;

  /// Stop firing after this many injections; -1 = unlimited.
  int max_injections = -1;
};

struct Plan {
  uint64_t seed = 1;  // drives probability triggers and random code picks
  std::vector<FunctionTrigger> triggers;

  std::string ToXml() const;
  static Result<Plan> FromXml(std::string_view xml);
};

const char* ArgOpName(ArgModification::Op op);
std::optional<ArgModification::Op> ArgOpFromName(std::string_view name);

}  // namespace lfi::core
