// The fault-scenario language (paper §4).
//
// A scenario ("faultload") is a set of <trigger, fault> tuples. Triggers
// fire on call counts, probabilistically, on every call, or rotating
// through a profile's error codes (the exhaustive generator); they can be
// conditioned on a partial stack trace. Faults set a return value, set
// errno, modify arguments in place, and decide whether the original
// function still runs. XML syntax follows the paper:
//
//   <plan seed="42">
//     <function name="readdir" inject="5" retval="0" errno="EBADF"
//               calloriginal="false">
//       <stacktrace>
//         <frame>0xb824490</frame>
//         <frame>refresh_files</frame>
//       </stacktrace>
//     </function>
//     <function name="read" inject="20" calloriginal="true">
//       <modify argument="3" op="sub" value="10" />
//     </function>
//   </plan>
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace lfi::core {

/// Highest argument index a <modify> may name. Arguments live at SP + 8*i
/// at stub entry, so a runaway index (or one wrapped through a narrowing
/// cast) would read far past any real frame; plans that need more than
/// this many arguments do not exist.
inline constexpr int kMaxModifyArgument = 255;

struct ArgModification {
  int argument = 0;  // 1-based, as in the paper's example
  enum class Op { Add, Sub, Set, And, Or, Xor };
  Op op = Op::Set;
  int64_t value = 0;

  int64_t Apply(int64_t current) const;
};

/// One backtrace frame condition: matches a hex address (0x...) or an
/// enclosing function symbol.
struct FrameCondition {
  std::optional<uint64_t> address;
  std::string symbol;
};

struct FunctionTrigger {
  std::string function;

  enum class Mode {
    CallCount,    // fire on the inject-th call (1-based)
    Probability,  // fire with probability p on every call
    Always,       // fire on every call
    Rotate,       // fire on every call, cycling the profile's error codes
  };
  Mode mode = Mode::Always;
  uint64_t inject_call = 0;  // CallCount
  double probability = 0.0;  // Probability

  /// Explicit fault. When unset, the controller draws (retval, errno) from
  /// the function's fault profile (random / rotate scenarios).
  std::optional<int64_t> retval;
  std::optional<int32_t> errno_value;
  bool call_original = false;

  std::vector<FrameCondition> stacktrace;  // innermost-first, partial
  std::vector<ArgModification> modifications;

  /// Stop firing after this many injections; -1 = unlimited.
  int max_injections = -1;
};

/// One single-event upset: flip exactly one bit of one architectural word
/// at a precise machine-wide instruction instant. The hardware-style
/// companion to the paper's library-boundary faults — same plan/replay/
/// campaign machinery, different fault model. XML:
///
///   <seu target="reg" reg="R3" bit="17" at="12345" />
///   <seu target="stack" offset="4096" bit="5" at="9999" />
///   <seu target="data" module="app.so" offset="8" bit="0" at="5000"
///        wmodule="app.so" wbegin="0" wend="128" />
///
/// `at` counts total instructions executed machine-wide (all processes,
/// the deterministic round-robin schedule), so a flip lands at the same
/// architectural state in every engine, snapshot mode, and jobs count.
struct SeuFault {
  enum class Target {
    Reg,    // one bit of a register of process `pid`
    Stack,  // 64-bit word at stack-segment byte offset `offset`
    Heap,   // 64-bit word at heap-segment byte offset `offset`
    Data,   // 64-bit word at `module`'s data-section byte offset `offset`
  };
  Target target = Target::Reg;
  int reg = 0;          // Target::Reg: register index (R0..R7, SP, BP)
  uint64_t offset = 0;  // memory targets: segment-relative byte offset
  std::string module;   // Target::Data: module name
  int bit = 0;          // 0..63 within the 64-bit word / register
  uint64_t at_instruction = 0;  // machine-wide instant the flip lands
  int pid = 1;          // process whose register/stack/heap is hit
  /// Optional pc-window gate: the flip lands only if the target process's
  /// pc sits in [window_begin, window_end) of `window_module`'s code at
  /// the armed instant (module-relative offsets, end-exclusive).
  /// window_end == 0 means ungated.
  std::string window_module;
  uint64_t window_begin = 0;
  uint64_t window_end = 0;
};

const char* SeuTargetName(SeuFault::Target t);
std::optional<SeuFault::Target> SeuTargetFromName(std::string_view name);
/// Register naming for <seu reg="...">: R0..R7, SP, BP.
const char* SeuRegName(int reg);
std::optional<int> SeuRegFromName(std::string_view name);
inline constexpr int kSeuNumRegs = 10;

struct Plan {
  uint64_t seed = 1;  // drives probability triggers and random code picks
  std::vector<FunctionTrigger> triggers;
  std::vector<SeuFault> seus;

  std::string ToXml() const;
  static Result<Plan> FromXml(std::string_view xml);
};

const char* ArgOpName(ArgModification::Op op);
std::optional<ArgModification::Op> ArgOpFromName(std::string_view name);

}  // namespace lfi::core
