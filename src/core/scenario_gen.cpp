#include "core/scenario_gen.hpp"

#include <algorithm>

namespace lfi::core {

namespace {

bool HasInjectableCodes(const FunctionProfile& fn) {
  return !fn.error_codes.empty();
}

}  // namespace

Plan GenerateExhaustive(const std::vector<FaultProfile>& profiles) {
  Plan plan;
  for (const FaultProfile& profile : profiles) {
    for (const FunctionProfile& fn : profile.functions) {
      if (!HasInjectableCodes(fn)) continue;
      FunctionTrigger t;
      t.function = fn.name;
      t.mode = FunctionTrigger::Mode::Rotate;
      t.call_original = false;
      plan.triggers.push_back(std::move(t));
    }
  }
  return plan;
}

Plan GenerateRandom(const std::vector<FaultProfile>& profiles, double p,
                    uint64_t seed) {
  Plan plan;
  plan.seed = seed;
  for (const FaultProfile& profile : profiles) {
    for (const FunctionProfile& fn : profile.functions) {
      if (!HasInjectableCodes(fn)) continue;
      FunctionTrigger t;
      t.function = fn.name;
      t.mode = FunctionTrigger::Mode::Probability;
      t.probability = p;
      t.call_original = false;
      plan.triggers.push_back(std::move(t));
    }
  }
  return plan;
}

Plan GenerateRandomSubset(const std::vector<FaultProfile>& profiles,
                          const std::vector<std::string>& functions, double p,
                          uint64_t seed) {
  Plan plan = GenerateRandom(profiles, p, seed);
  plan.triggers.erase(
      std::remove_if(plan.triggers.begin(), plan.triggers.end(),
                     [&](const FunctionTrigger& t) {
                       return std::find(functions.begin(), functions.end(),
                                        t.function) == functions.end();
                     }),
      plan.triggers.end());
  return plan;
}

}  // namespace lfi::core
