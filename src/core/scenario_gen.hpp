// Automatic scenario generation (paper §4): exhaustive and random.
#pragma once

#include <vector>

#include "core/profile.hpp"
#include "core/scenario.hpp"

namespace lfi::core {

/// Exhaustive scenario: every exported function with at least one error
/// code is included; consecutive calls iterate through its error codes.
/// The iteration happens at injection time (TriggerEngine's Rotate draw),
/// so under ControllerOptions::feasible_only it cycles through only the
/// constprop-verified codes of analyzed functions — documentation-derived
/// codes the binary cannot return are skipped, unanalyzed functions keep
/// their full set.
Plan GenerateExhaustive(const std::vector<FaultProfile>& profiles);

/// Random scenario: every call to an included function fails with
/// probability p; the injected (retval, errno) is drawn uniformly from the
/// function's profile at injection time — under feasible-only, uniformly
/// from its feasible (Analyzed) subset when it has one.
Plan GenerateRandom(const std::vector<FaultProfile>& profiles, double p,
                    uint64_t seed);

/// Random scenario restricted to a set of function names (used by the
/// ready-made libc faultloads).
Plan GenerateRandomSubset(const std::vector<FaultProfile>& profiles,
                          const std::vector<std::string>& functions, double p,
                          uint64_t seed);

}  // namespace lfi::core
