// C-source stub generation (paper §5.1).
//
// On a real platform the controller compiles generated C stubs plus
// boilerplate into a shim .so loaded via LD_PRELOAD. The synthetic VM uses
// native stubs instead (controller.cpp), but this generator emits the same
// C code LFI would produce, so the repository documents — and tests — the
// real-world artifact: one interceptor per function, dlsym(RTLD_NEXT)
// lookup, trigger evaluation, side-effect application, and the
// jmp-to-original pass-through.
#pragma once

#include <string>
#include <vector>

#include "core/profile.hpp"
#include "core/scenario.hpp"

namespace lfi::core {

struct StubCodegenOptions {
  std::string guard_macro = "LFI_STUBS_H";
  bool emit_boilerplate = true;  // helper declarations + trigger table
};

/// Generate the C source of an interception library for every function
/// named by `plan`, using `profiles` for side-effect locations.
std::string GenerateCStubs(const Plan& plan,
                           const std::vector<FaultProfile>& profiles,
                           const StubCodegenOptions& opts = {});

}  // namespace lfi::core
