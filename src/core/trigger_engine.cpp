#include "core/trigger_engine.hpp"

#include <algorithm>

namespace lfi::core {

TriggerEngine::TriggerEngine(const Plan& plan,
                             const std::vector<FaultProfile>& profiles,
                             bool feasible_only)
    : plan_(plan), rng_(plan.seed) {
  // Intern every planned function; state_ is indexed by the resulting
  // dense ids and never resized afterwards (stable handles).
  for (size_t i = 0; i < plan_.triggers.size(); ++i) {
    const FunctionTrigger& t = plan_.triggers[i];
    util::SymbolId id = symbols_.Intern(t.function);
    if (id >= state_.size()) state_.resize(id + 1);
    FunctionState& st = state_[id];
    TriggerState ts{i, 0, 0};
    // Plain call-count triggers are kept sorted by their fire count and
    // consumed by a cursor; they cost nothing on calls that do not match.
    // Anything with a stack condition or a non-counting mode is evaluated
    // per call.
    if (t.mode == FunctionTrigger::Mode::CallCount && t.stacktrace.empty()) {
      st.indexed_.push_back(IndexedTrigger{t.inject_call, ts});
    } else {
      st.general_.push_back(ts);
    }
    if (!t.stacktrace.empty()) st.any_stack_conditions_ = true;
  }
  for (FunctionState& st : state_) {
    // Stable: triggers with the same fire count stay in plan order.
    std::stable_sort(st.indexed_.begin(), st.indexed_.end(),
                     [](const IndexedTrigger& a, const IndexedTrigger& b) {
                       return a.inject_call < b.inject_call;
                     });
  }
  // Profile lookup by dense id (first profile with the function wins).
  ProfileIndex index(profiles, symbols_);
  for (util::SymbolId id = 0; id < state_.size(); ++id) {
    if (!state_[id].has_triggers()) continue;
    if (const FunctionProfile* fn = index.function(id)) {
      state_[id].injectables_ = fn->injectables(feasible_only);
    }
  }
}

TriggerEngine::FunctionState* TriggerEngine::state_for(
    std::string_view function) {
  return const_cast<FunctionState*>(find_state(function));
}

const TriggerEngine::FunctionState* TriggerEngine::find_state(
    std::string_view function) const {
  util::SymbolId id = symbols_.Find(function);
  if (id == util::kNoSymbol || id >= state_.size()) return nullptr;
  const FunctionState& st = state_[id];
  return st.has_triggers() ? &st : nullptr;
}

bool TriggerEngine::has_triggers_for(std::string_view function) const {
  return find_state(function) != nullptr;
}

bool TriggerEngine::needs_backtrace(std::string_view function) const {
  const FunctionState* st = find_state(function);
  return st != nullptr && st->any_stack_conditions_;
}

std::vector<std::string> TriggerEngine::functions() const {
  std::vector<std::string> out;
  for (util::SymbolId id = 0; id < state_.size(); ++id) {
    if (state_[id].has_triggers()) out.push_back(symbols_.name(id));
  }
  return out;
}

uint64_t TriggerEngine::call_count(std::string_view function) const {
  const FunctionState* st = find_state(function);
  return st == nullptr ? 0 : st->call_count_;
}

std::optional<TriggerEngine::StateView> TriggerEngine::InspectState(
    std::string_view function) const {
  const FunctionState* st = find_state(function);
  if (st == nullptr) return std::nullopt;
  StateView view;
  view.call_count = st->call_count_;
  view.indexed_triggers = st->indexed_.size();
  view.general_triggers = st->general_.size();
  view.injectables = st->injectables_.size();
  view.any_stack_conditions = st->any_stack_conditions_;
  return view;
}

bool TriggerEngine::Matches(const FunctionTrigger& trigger,
                            const FunctionState& st,
                            const BacktraceProvider& backtrace) const {
  switch (trigger.mode) {
    case FunctionTrigger::Mode::CallCount:
      if (st.call_count_ != trigger.inject_call) return false;
      break;
    case FunctionTrigger::Mode::Probability:
      if (!rng_.chance(trigger.probability)) return false;
      break;
    case FunctionTrigger::Mode::Always:
    case FunctionTrigger::Mode::Rotate:
      break;
  }
  if (!trigger.stacktrace.empty()) {
    Backtrace bt = backtrace ? backtrace() : Backtrace{};
    if (bt.size() < trigger.stacktrace.size()) return false;
    for (size_t i = 0; i < trigger.stacktrace.size(); ++i) {
      const FrameCondition& cond = trigger.stacktrace[i];
      if (cond.address) {
        if (bt[i].first != *cond.address) return false;
      } else if (bt[i].second != cond.symbol) {
        return false;
      }
    }
  }
  return true;
}

std::optional<InjectionDecision> TriggerEngine::Fire(
    const FunctionTrigger& trigger, TriggerState& ts, FunctionState& st) {
  InjectionDecision d;
  d.trigger_index = ts.plan_index;
  d.call_original = trigger.call_original;
  d.modifications = &trigger.modifications;
  if (trigger.retval) {
    d.has_retval = true;
    d.retval = *trigger.retval;
    d.errno_value = trigger.errno_value;
  } else if (!st.injectables_.empty()) {
    // Draw the fault from the profile: rotating for exhaustive scenarios,
    // uniformly at random otherwise (§4).
    std::pair<int64_t, std::optional<int64_t>> pick;
    if (trigger.mode == FunctionTrigger::Mode::Rotate) {
      pick = st.injectables_[ts.rotate_index % st.injectables_.size()];
      ++ts.rotate_index;
    } else {
      pick = st.injectables_[rng_.below(st.injectables_.size())];
    }
    d.has_retval = true;
    d.retval = pick.first;
    if (pick.second) d.errno_value = static_cast<int32_t>(*pick.second);
    if (trigger.errno_value) d.errno_value = trigger.errno_value;
  } else {
    // No explicit fault and no profile codes: evaluate-and-pass-through
    // (the overhead-measurement configuration, §6.4).
    d.call_original = true;
  }
  ++ts.fired;
  ++injections_;
  return d;
}

std::optional<InjectionDecision> TriggerEngine::OnCall(
    FunctionState& st, const BacktraceProvider& backtrace) {
  ++st.call_count_;

  // Indexed call-count triggers: the call count is strictly increasing, so
  // a cursor over the sorted targets replaces the old per-call map lookup
  // (amortized O(1), pure index arithmetic).
  size_t i = st.cursor_;
  while (i < st.indexed_.size() &&
         st.indexed_[i].inject_call < st.call_count_) {
    ++i;
  }
  st.cursor_ = i;
  // General triggers and indexed triggers compose in plan order; to keep
  // the hot path cheap we give indexed triggers priority within their
  // count, then fall back to general evaluation.
  for (; i < st.indexed_.size() && st.indexed_[i].inject_call == st.call_count_;
       ++i) {
    TriggerState& ts = st.indexed_[i].state;
    const FunctionTrigger& trigger = plan_.triggers[ts.plan_index];
    if (trigger.max_injections >= 0 && ts.fired >= trigger.max_injections) {
      continue;
    }
    return Fire(trigger, ts, st);
  }
  for (TriggerState& ts : st.general_) {
    const FunctionTrigger& trigger = plan_.triggers[ts.plan_index];
    if (trigger.max_injections >= 0 && ts.fired >= trigger.max_injections) {
      continue;
    }
    if (!Matches(trigger, st, backtrace)) continue;
    return Fire(trigger, ts, st);
  }
  return std::nullopt;
}

std::optional<InjectionDecision> TriggerEngine::OnCall(
    const std::string& function, const BacktraceProvider& backtrace) {
  FunctionState* st = state_for(function);
  if (!st) return std::nullopt;
  return OnCall(*st, backtrace);
}

}  // namespace lfi::core
