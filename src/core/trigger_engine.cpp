#include "core/trigger_engine.hpp"

namespace lfi::core {

TriggerEngine::TriggerEngine(const Plan& plan,
                             const std::vector<FaultProfile>& profiles)
    : plan_(plan), rng_(plan.seed) {
  for (size_t i = 0; i < plan_.triggers.size(); ++i) {
    const FunctionTrigger& t = plan_.triggers[i];
    FunctionState& st = state_[t.function];
    TriggerState ts{i, 0, 0};
    // Plain call-count triggers are indexed by their fire count; they cost
    // nothing on calls that do not match. Anything with a stack condition
    // or a non-counting mode is evaluated per call.
    if (t.mode == FunctionTrigger::Mode::CallCount && t.stacktrace.empty()) {
      st.indexed[t.inject_call].push_back(ts);
    } else {
      st.general.push_back(ts);
    }
    if (!t.stacktrace.empty()) st.any_stack_conditions = true;
  }
  for (auto& [name, st] : state_) {
    for (const FaultProfile& profile : profiles) {
      if (const FunctionProfile* fn = profile.function(name)) {
        st.injectables = fn->injectables();
        break;
      }
    }
  }
}

TriggerEngine::FunctionState* TriggerEngine::state_for(
    const std::string& function) {
  auto it = state_.find(function);
  return it == state_.end() ? nullptr : &it->second;
}

bool TriggerEngine::has_triggers_for(const std::string& function) const {
  return state_.count(function) > 0;
}

bool TriggerEngine::needs_backtrace(const std::string& function) const {
  auto it = state_.find(function);
  return it != state_.end() && it->second.any_stack_conditions;
}

std::vector<std::string> TriggerEngine::functions() const {
  std::vector<std::string> out;
  out.reserve(state_.size());
  for (const auto& [name, st] : state_) out.push_back(name);
  return out;
}

uint64_t TriggerEngine::call_count(const std::string& function) const {
  auto it = state_.find(function);
  return it == state_.end() ? 0 : it->second.call_count;
}

bool TriggerEngine::Matches(const FunctionTrigger& trigger,
                            const FunctionState& st,
                            const BacktraceProvider& backtrace) const {
  switch (trigger.mode) {
    case FunctionTrigger::Mode::CallCount:
      if (st.call_count != trigger.inject_call) return false;
      break;
    case FunctionTrigger::Mode::Probability:
      if (!rng_.chance(trigger.probability)) return false;
      break;
    case FunctionTrigger::Mode::Always:
    case FunctionTrigger::Mode::Rotate:
      break;
  }
  if (!trigger.stacktrace.empty()) {
    Backtrace bt = backtrace ? backtrace() : Backtrace{};
    if (bt.size() < trigger.stacktrace.size()) return false;
    for (size_t i = 0; i < trigger.stacktrace.size(); ++i) {
      const FrameCondition& cond = trigger.stacktrace[i];
      if (cond.address) {
        if (bt[i].first != *cond.address) return false;
      } else if (bt[i].second != cond.symbol) {
        return false;
      }
    }
  }
  return true;
}

std::optional<InjectionDecision> TriggerEngine::Fire(
    const FunctionTrigger& trigger, TriggerState& ts, FunctionState& st) {
  InjectionDecision d;
  d.trigger_index = ts.plan_index;
  d.call_original = trigger.call_original;
  d.modifications = &trigger.modifications;
  if (trigger.retval) {
    d.has_retval = true;
    d.retval = *trigger.retval;
    d.errno_value = trigger.errno_value;
  } else if (!st.injectables.empty()) {
    // Draw the fault from the profile: rotating for exhaustive scenarios,
    // uniformly at random otherwise (§4).
    std::pair<int64_t, std::optional<int64_t>> pick;
    if (trigger.mode == FunctionTrigger::Mode::Rotate) {
      pick = st.injectables[ts.rotate_index % st.injectables.size()];
      ++ts.rotate_index;
    } else {
      pick = st.injectables[rng_.below(st.injectables.size())];
    }
    d.has_retval = true;
    d.retval = pick.first;
    if (pick.second) d.errno_value = static_cast<int32_t>(*pick.second);
    if (trigger.errno_value) d.errno_value = trigger.errno_value;
  } else {
    // No explicit fault and no profile codes: evaluate-and-pass-through
    // (the overhead-measurement configuration, §6.4).
    d.call_original = true;
  }
  ++ts.fired;
  ++injections_;
  return d;
}

std::optional<InjectionDecision> TriggerEngine::OnCall(
    FunctionState& st, const BacktraceProvider& backtrace) {
  ++st.call_count;

  // Indexed call-count triggers: O(log buckets) for the exact count.
  auto bucket = st.indexed.find(st.call_count);
  // General triggers and indexed triggers compose in plan order; to keep
  // the hot path cheap we give indexed triggers priority within their
  // count, then fall back to general evaluation.
  if (bucket != st.indexed.end()) {
    for (TriggerState& ts : bucket->second) {
      const FunctionTrigger& trigger = plan_.triggers[ts.plan_index];
      if (trigger.max_injections >= 0 && ts.fired >= trigger.max_injections) {
        continue;
      }
      return Fire(trigger, ts, st);
    }
  }
  for (TriggerState& ts : st.general) {
    const FunctionTrigger& trigger = plan_.triggers[ts.plan_index];
    if (trigger.max_injections >= 0 && ts.fired >= trigger.max_injections) {
      continue;
    }
    if (!Matches(trigger, st, backtrace)) continue;
    return Fire(trigger, ts, st);
  }
  return std::nullopt;
}

std::optional<InjectionDecision> TriggerEngine::OnCall(
    const std::string& function, const BacktraceProvider& backtrace) {
  FunctionState* st = state_for(function);
  if (!st) return std::nullopt;
  return OnCall(*st, backtrace);
}

}  // namespace lfi::core
