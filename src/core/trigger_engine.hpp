// Trigger evaluation (paper §4, §5.1).
//
// "Every time a function is intercepted, the relevant triggers are
// evaluated and, if any is true, the associated fault(s) is/are injected."
// The engine is VM-independent: the backtrace is supplied lazily by the
// caller, so it is only materialized when some trigger actually has
// stack-trace conditions (keeping per-call overhead low — Table 3/4).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/profile.hpp"
#include "core/scenario.hpp"
#include "util/rng.hpp"

namespace lfi::core {

/// A symbolized backtrace: innermost-first (return address, enclosing
/// function) pairs.
using Backtrace = std::vector<std::pair<uint64_t, std::string>>;
using BacktraceProvider = std::function<Backtrace()>;

struct InjectionDecision {
  bool has_retval = false;
  int64_t retval = 0;
  std::optional<int32_t> errno_value;
  bool call_original = false;
  const std::vector<ArgModification>* modifications = nullptr;
  size_t trigger_index = 0;  // index into the plan's trigger list
};

class TriggerEngine {
 public:
  TriggerEngine(const Plan& plan, const std::vector<FaultProfile>& profiles);

  /// Opaque per-function handle; lets a stub skip the name lookup on the
  /// hot path (resolved once at install time).
  struct FunctionState;
  FunctionState* state_for(const std::string& function);

  /// Evaluate the triggers for one intercepted call. The plan's trigger
  /// order decides priority; the first firing trigger wins.
  std::optional<InjectionDecision> OnCall(const std::string& function,
                                          const BacktraceProvider& backtrace);
  /// Hot-path variant using a pre-resolved handle. Call-count triggers
  /// without stack conditions are indexed by target count, so evaluating a
  /// call costs O(general triggers), not O(all triggers) — this keeps
  /// 1,000-trigger plans at the paper's negligible overhead (§6.4).
  std::optional<InjectionDecision> OnCall(FunctionState& state,
                                          const BacktraceProvider& backtrace);

  bool has_triggers_for(const std::string& function) const;
  /// True if any trigger on `function` needs a backtrace to evaluate.
  bool needs_backtrace(const std::string& function) const;
  /// All function names with at least one trigger.
  std::vector<std::string> functions() const;

  uint64_t call_count(const std::string& function) const;
  uint64_t injection_count() const { return injections_; }
  const Plan& plan() const { return plan_; }

 public:
  struct TriggerState {
    size_t plan_index = 0;
    int fired = 0;
    size_t rotate_index = 0;
  };
  struct FunctionState {
    uint64_t call_count = 0;
    /// Call-count triggers without stack conditions, keyed by fire count.
    std::map<uint64_t, std::vector<TriggerState>> indexed;
    /// Everything else: evaluated on every call, in plan order.
    std::vector<TriggerState> general;
    /// (retval, errno) pairs injectable per the fault profile.
    std::vector<std::pair<int64_t, std::optional<int64_t>>> injectables;
    bool any_stack_conditions = false;
  };

 private:
  bool Matches(const FunctionTrigger& trigger, const FunctionState& st,
               const BacktraceProvider& backtrace) const;
  std::optional<InjectionDecision> Fire(const FunctionTrigger& trigger,
                                        TriggerState& ts, FunctionState& st);

  Plan plan_;
  std::map<std::string, FunctionState> state_;
  mutable Rng rng_;
  uint64_t injections_ = 0;
};

}  // namespace lfi::core
