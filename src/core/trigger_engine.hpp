// Trigger evaluation (paper §4, §5.1).
//
// "Every time a function is intercepted, the relevant triggers are
// evaluated and, if any is true, the associated fault(s) is/are injected."
// The engine is VM-independent: the backtrace is supplied lazily by the
// caller, so it is only materialized when some trigger actually has
// stack-trace conditions (keeping per-call overhead low — Table 3/4).
//
// Function names are interned into a plan-local SymbolTable at
// construction; per-function state lives in a flat vector indexed by that
// dense id. A stub resolves its FunctionState* once at install time, and
// OnCall(FunctionState&, ...) is then pure index arithmetic — the hot-path
// invariant is that no string is hashed or compared and no map is walked
// per intercepted call. The string-taking entry points are thin
// resolve-once wrappers kept for setup-time callers and tests.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/profile.hpp"
#include "core/scenario.hpp"
#include "util/interner.hpp"
#include "util/rng.hpp"

namespace lfi::core {

/// A symbolized backtrace: innermost-first (return address, enclosing
/// function) pairs.
using Backtrace = std::vector<std::pair<uint64_t, std::string>>;
using BacktraceProvider = std::function<Backtrace()>;

struct InjectionDecision {
  bool has_retval = false;
  int64_t retval = 0;
  std::optional<int32_t> errno_value;
  bool call_original = false;
  const std::vector<ArgModification>* modifications = nullptr;
  size_t trigger_index = 0;  // index into the plan's trigger list
};

class TriggerEngine {
 private:
  /// Per-trigger mutable state (fire counts, rotation cursor).
  struct TriggerState {
    size_t plan_index = 0;
    int fired = 0;
    size_t rotate_index = 0;
  };
  /// A plain call-count trigger, evaluated by cursor against the strictly
  /// increasing call count — no per-call map lookup.
  struct IndexedTrigger {
    uint64_t inject_call = 0;
    TriggerState state;
  };

 public:
  /// With `feasible_only`, profile draws (Rotate cycling and uniform
  /// random picks) are restricted to constprop-verified error codes for
  /// functions that have any (FunctionProfile::injectables's gate);
  /// triggers with an explicit retval are unaffected.
  TriggerEngine(const Plan& plan, const std::vector<FaultProfile>& profiles,
                bool feasible_only = false);

  /// Opaque per-function handle; lets a stub skip the name lookup on the
  /// hot path (resolved once at install time). The trigger plumbing is
  /// engine-internal; callers only read the call count.
  class FunctionState {
   public:
    uint64_t call_count() const { return call_count_; }

   private:
    friend class TriggerEngine;

    bool has_triggers() const {
      return !indexed_.empty() || !general_.empty();
    }

    uint64_t call_count_ = 0;
    /// Call-count triggers without stack conditions, sorted by target
    /// count and consumed by `cursor_` as the count advances; evaluating a
    /// call costs O(general triggers), not O(all triggers) — this keeps
    /// 1,000-trigger plans at the paper's negligible overhead (§6.4).
    std::vector<IndexedTrigger> indexed_;
    size_t cursor_ = 0;  // first indexed_ entry not yet passed
    /// Everything else: evaluated on every call, in plan order.
    std::vector<TriggerState> general_;
    /// (retval, errno) pairs injectable per the fault profile.
    std::vector<std::pair<int64_t, std::optional<int64_t>>> injectables_;
    bool any_stack_conditions_ = false;
  };

  /// Resolve a function's state handle once; nullptr when the plan has no
  /// triggers for it.
  FunctionState* state_for(std::string_view function);

  /// Hot path: evaluate the triggers for one intercepted call through a
  /// pre-resolved handle. The plan's trigger order decides priority; the
  /// first firing trigger wins.
  std::optional<InjectionDecision> OnCall(FunctionState& state,
                                          const BacktraceProvider& backtrace);
  /// Resolve-once wrapper over the hot path (setup-time callers, tests).
  std::optional<InjectionDecision> OnCall(const std::string& function,
                                          const BacktraceProvider& backtrace);

  bool has_triggers_for(std::string_view function) const;
  /// True if any trigger on `function` needs a backtrace to evaluate.
  bool needs_backtrace(std::string_view function) const;
  /// All function names with at least one trigger.
  std::vector<std::string> functions() const;

  uint64_t call_count(std::string_view function) const;
  uint64_t injection_count() const { return injections_; }
  const Plan& plan() const { return plan_; }

  /// The plan-local name interner (ids index the engine's state vector).
  const util::SymbolTable& symbols() const { return symbols_; }

  /// Narrow test-only window into the per-function plumbing; production
  /// callers use the opaque FunctionState handle instead.
  struct StateView {
    uint64_t call_count = 0;
    size_t indexed_triggers = 0;
    size_t general_triggers = 0;
    size_t injectables = 0;
    bool any_stack_conditions = false;
  };
  std::optional<StateView> InspectState(std::string_view function) const;

 private:
  bool Matches(const FunctionTrigger& trigger, const FunctionState& st,
               const BacktraceProvider& backtrace) const;
  std::optional<InjectionDecision> Fire(const FunctionTrigger& trigger,
                                        TriggerState& ts, FunctionState& st);
  const FunctionState* find_state(std::string_view function) const;

  Plan plan_;
  util::SymbolTable symbols_;
  /// Indexed by the plan-local SymbolId of the function name. Sized once
  /// at construction, so FunctionState addresses are stable.
  std::vector<FunctionState> state_;
  mutable Rng rng_;
  uint64_t injections_ = 0;
};

}  // namespace lfi::core
