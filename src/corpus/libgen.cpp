#include "corpus/libgen.hpp"

#include <cassert>

#include "isa/codebuilder.hpp"

namespace lfi::corpus {

using isa::CodeBuilder;
using isa::Reg;

namespace {

/// Emission context shared by all functions of one library.
struct LibContext {
  CodeBuilder b;
  Rng rng;
  uint32_t tls_slot = 0;      // library-wide errno-like TLS slot
  uint32_t global_slot = 0;   // library-wide status global
  uint32_t junk_data = 0;     // data slot success paths read from

  explicit LibContext(uint64_t seed) : rng(seed) {
    tls_slot = b.reserve_tls(8);
    global_slot = b.reserve_data(8);
    junk_data = b.reserve_data(8);
  }
};

/// Emit the error-channel write for one error path.
void EmitChannelWrite(LibContext& ctx, const FunctionSpec& fn,
                      int64_t channel_value) {
  CodeBuilder& b = ctx.b;
  switch (fn.channel) {
    case ErrorChannel::None:
      break;
    case ErrorChannel::Tls:
      b.mov_ri(Reg::R2, channel_value);
      b.lea_tls(Reg::R3, static_cast<int32_t>(ctx.tls_slot));
      b.store(Reg::R3, 0, Reg::R2);
      break;
    case ErrorChannel::Global:
      b.mov_ri(Reg::R2, channel_value);
      b.lea_data(Reg::R3, static_cast<int32_t>(ctx.global_slot));
      b.store(Reg::R3, 0, Reg::R2);
      break;
    case ErrorChannel::Arg:
      // The last argument is an output pointer.
      b.load(Reg::R3, Reg::BP, isa::ArgSlot(fn.arg_count - 1));
      b.mov_ri(Reg::R2, channel_value);
      b.store(Reg::R3, 0, Reg::R2);
      break;
  }
}

/// Emit a few arithmetic blocks so generated functions have realistic code
/// size and CFG shape (drives the §6.2 profiling-time curve).
void EmitFiller(LibContext& ctx, int blocks) {
  CodeBuilder& b = ctx.b;
  for (int i = 0; i < blocks; ++i) {
    auto skip = b.new_label();
    b.add_ri(Reg::R4, static_cast<int64_t>(ctx.rng.below(100)));
    b.cmp_ri(Reg::R4, static_cast<int64_t>(ctx.rng.below(50)));
    b.jle(skip);
    b.mul_ri(Reg::R4, 3);
    b.sub_ri(Reg::R4, 7);
    b.bind(skip);
    b.xor_ri(Reg::R4, 0x55);
  }
}

}  // namespace

GeneratedLibrary GenerateLibrary(const LibrarySpec& spec) {
  GeneratedLibrary out;
  out.spec = spec;
  LibContext ctx(spec.seed);
  CodeBuilder& b = ctx.b;

  for (const FunctionSpec& fn : spec.functions) {
    out.prototypes[fn.name] = fn.return_kind;
    std::set<int64_t>& docs = out.documentation[fn.name];
    std::set<int64_t>& actual = out.actual[fn.name];

    // Pre-emit indirect helpers (one per undetectable code) and record
    // their code offsets for the pointer-table relocations.
    std::vector<uint32_t> helper_offsets;
    for (size_t i = 0; i < fn.undetectable_documented.size(); ++i) {
      uint32_t start = b.here();
      b.begin_function(fn.name + "__hidden" + std::to_string(i),
                       /*exported=*/false, /*bare=*/true);
      b.mov_ri(Reg::R0, fn.undetectable_documented[i]);
      b.ret();
      b.end_function();
      helper_offsets.push_back(start);
    }
    std::vector<uint32_t> table_slots;
    for (uint32_t off : helper_offsets) {
      table_slots.push_back(b.reserve_code_pointer(off));
    }

    b.begin_function(fn.name);

    if (fn.short_predicate) {
      // isFile()-style check: returns 0 or 1, neither is a failure.
      auto yes = b.new_label();
      b.load_arg(Reg::R1, 0);
      b.cmp_ri(Reg::R1, 0);
      b.jne(yes);
      b.mov_ri(Reg::R0, 0);
      b.leave_ret();
      b.bind(yes);
      b.mov_ri(Reg::R0, 1);
      b.leave_ret();
      b.end_function();
      continue;
    }

    EmitFiller(ctx, fn.filler_blocks);

    // Selector: the first argument picks the failure mode at runtime.
    // Codes 1..k map to the error paths; anything else succeeds.
    b.load_arg(Reg::R1, 0);
    int64_t selector = 1;

    auto emit_error_path = [&](int64_t code, bool documented) {
      auto next = b.new_label();
      b.cmp_ri(Reg::R1, selector++);
      b.jne(next);
      if (fn.channel != ErrorChannel::None && !fn.channel_values.empty()) {
        EmitChannelWrite(
            ctx, fn,
            fn.channel_values[static_cast<size_t>(selector) %
                              fn.channel_values.size()]);
      }
      b.mov_ri(Reg::R0, code);
      b.leave_ret();
      b.bind(next);
      actual.insert(code);
      if (documented) docs.insert(code);
    };

    for (int64_t code : fn.detectable_documented) emit_error_path(code, true);
    for (int64_t code : fn.detectable_undocumented) {
      emit_error_path(code, false);
    }

    // Undetectable codes: return through the function-pointer table. The
    // docs list them; the VM can execute them; the static analysis cannot
    // follow the indirect call (honest FNs).
    for (size_t i = 0; i < fn.undetectable_documented.size(); ++i) {
      auto next = b.new_label();
      b.cmp_ri(Reg::R1, selector++);
      b.jne(next);
      b.lea_data(Reg::R2, static_cast<int32_t>(table_slots[i]));
      b.load(Reg::R2, Reg::R2, 0);
      b.call_ind(Reg::R2);
      b.leave_ret();
      b.bind(next);
      int64_t code = fn.undetectable_documented[i];
      actual.insert(code);
      docs.insert(code);
    }

    // Success: a value loaded from library data — not a constant, so the
    // profiler correctly reports nothing for this path.
    b.lea_data(Reg::R2, static_cast<int32_t>(ctx.junk_data));
    b.load(Reg::R0, Reg::R2, 0);
    if (fn.return_kind == ReturnKind::Pointer) {
      // A pointer-returning success hands back the data address itself.
      b.lea_data(Reg::R0, static_cast<int32_t>(ctx.junk_data));
    }
    b.leave_ret();
    b.end_function();
  }

  out.object = sso::FromCodeUnit(spec.name, b.Finish());
  return out;
}

AccuracyCount ScoreAgainstDocs(
    const std::map<std::string, std::set<int64_t>>& documentation,
    const std::map<std::string, std::set<int64_t>>& found) {
  AccuracyCount count;
  std::set<std::string> names;
  for (const auto& [name, codes] : documentation) names.insert(name);
  for (const auto& [name, codes] : found) names.insert(name);
  for (const std::string& name : names) {
    static const std::set<int64_t> empty;
    auto dit = documentation.find(name);
    auto fit = found.find(name);
    const std::set<int64_t>& doc = dit == documentation.end() ? empty : dit->second;
    const std::set<int64_t>& got = fit == found.end() ? empty : fit->second;
    for (int64_t code : got) {
      if (doc.count(code)) ++count.tp;
      else ++count.fp;
    }
    for (int64_t code : doc) {
      if (!got.count(code)) ++count.fn;
    }
  }
  return count;
}

}  // namespace lfi::corpus
