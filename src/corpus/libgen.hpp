// Synthetic library generation with ground truth.
//
// The paper evaluates the profiler against real Ubuntu/Solaris/Windows
// libraries, using documentation as (imperfect) ground truth. We generate
// libraries whose *actual* error behaviour is known by construction, plus
// a "documentation" view that diverges from the binary exactly the way
// real man pages do:
//   - detectable documented codes  -> profiler finds them  (TPs)
//   - documented codes reached through an indirect call    (FNs: §3.1's
//     indirect-call limitation, reproduced honestly — the generated code
//     routes the constant through a function-pointer table the static
//     analysis cannot follow)
//   - detectable undocumented codes -> profiler finds them (FPs, like the
//     modify_ldt ENOMEM or libxml2 return-1 cases in §3.1)
// The profiler is then *really run* against the binaries; accuracy is
// measured, not asserted.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sso/sso.hpp"
#include "util/rng.hpp"

namespace lfi::corpus {

enum class ReturnKind { Void, Scalar, Pointer };

/// Which side channel a function uses for error details (§3.2 / Table 1).
enum class ErrorChannel { None, Tls, Global, Arg };

struct FunctionSpec {
  std::string name;
  ReturnKind return_kind = ReturnKind::Scalar;
  int arg_count = 1;

  std::vector<int64_t> detectable_documented;    // TP source
  std::vector<int64_t> undetectable_documented;  // FN source (indirect call)
  std::vector<int64_t> detectable_undocumented;  // FP source

  ErrorChannel channel = ErrorChannel::None;
  std::vector<int64_t> channel_values;  // written to the channel on error

  bool short_predicate = false;  // isFile()-style 0/1 checker (heuristic #2)
  int filler_blocks = 0;         // extra compute blocks (code-size realism)
};

struct LibrarySpec {
  std::string name;
  std::vector<FunctionSpec> functions;
  uint64_t seed = 1;
};

struct GeneratedLibrary {
  sso::SharedObject object;
  LibrarySpec spec;
  /// The "man page": per function, the error codes the docs claim.
  std::map<std::string, std::set<int64_t>> documentation;
  /// Ground truth: per function, the codes actually returnable at runtime.
  std::map<std::string, std::set<int64_t>> actual;
  /// Header knowledge for Table 1 accounting.
  std::map<std::string, ReturnKind> prototypes;
};

GeneratedLibrary GenerateLibrary(const LibrarySpec& spec);

/// Accuracy of a set of found-codes against documentation, as in §6.3:
/// accuracy = TP / (TP + FN + FP).
struct AccuracyCount {
  size_t tp = 0, fn = 0, fp = 0;
  double accuracy() const {
    size_t total = tp + fn + fp;
    return total == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(total);
  }
};

AccuracyCount ScoreAgainstDocs(
    const std::map<std::string, std::set<int64_t>>& documentation,
    const std::map<std::string, std::set<int64_t>>& found);

}  // namespace lfi::corpus
