#include "corpus/table1_corpus.hpp"

#include <algorithm>

namespace lfi::corpus {

const std::vector<Table1Cell>& Table1Reference() {
  // Paper Table 1. "Error details in global location" covers both globals
  // and TLS variables (errno is TLS); we split that mass between the two
  // mechanisms when generating.
  static const std::vector<Table1Cell> cells = {
      {ReturnKind::Void, ErrorChannel::None, 0.230},
      {ReturnKind::Scalar, ErrorChannel::None, 0.565},
      {ReturnKind::Scalar, ErrorChannel::Tls, 0.010},
      {ReturnKind::Scalar, ErrorChannel::Arg, 0.035},
      {ReturnKind::Pointer, ErrorChannel::None, 0.116},
      {ReturnKind::Pointer, ErrorChannel::Tls, 0.010},
      {ReturnKind::Pointer, ErrorChannel::Arg, 0.034},
  };
  return cells;
}

Table1Corpus GenerateTable1Corpus(uint64_t seed, size_t total_functions,
                                  size_t num_libraries) {
  Table1Corpus corpus;
  Rng rng(seed);

  // Materialize the per-function cell assignments, then shuffle them
  // across libraries.
  std::vector<const Table1Cell*> assignment;
  for (const Table1Cell& cell : Table1Reference()) {
    size_t count = static_cast<size_t>(cell.fraction *
                                       static_cast<double>(total_functions));
    for (size_t i = 0; i < count; ++i) assignment.push_back(&cell);
  }
  while (assignment.size() < total_functions) {
    assignment.push_back(&Table1Reference()[1]);  // scalar/none filler
  }
  for (size_t i = assignment.size(); i-- > 1;) {
    std::swap(assignment[i], assignment[rng.below(i + 1)]);
  }

  size_t per_lib = (assignment.size() + num_libraries - 1) / num_libraries;
  size_t cursor = 0;
  for (size_t li = 0; li < num_libraries && cursor < assignment.size(); ++li) {
    LibrarySpec spec;
    spec.name = "ubuntu_lib" + std::to_string(li) + ".so";
    spec.seed = seed + li * 7919;
    for (size_t k = 0; k < per_lib && cursor < assignment.size(); ++k) {
      const Table1Cell& cell = *assignment[cursor++];
      FunctionSpec fn;
      fn.name = spec.name.substr(0, spec.name.size() - 3) + "_f" +
                std::to_string(k);
      fn.return_kind = cell.kind;
      fn.arg_count = 1 + static_cast<int>(rng.below(3));
      fn.filler_blocks = static_cast<int>(rng.below(3));
      if (cell.kind != ReturnKind::Void) {
        // Most non-void functions have at least one constant error return.
        int codes = 1 + static_cast<int>(rng.below(2));
        for (int c = 0; c < codes; ++c) {
          fn.detectable_documented.push_back(
              -static_cast<int64_t>(1 + rng.below(40)));
        }
        std::sort(fn.detectable_documented.begin(),
                  fn.detectable_documented.end());
        fn.detectable_documented.erase(
            std::unique(fn.detectable_documented.begin(),
                        fn.detectable_documented.end()),
            fn.detectable_documented.end());
      }
      switch (cell.channel) {
        case ErrorChannel::None:
          fn.channel = ErrorChannel::None;
          break;
        case ErrorChannel::Tls:
          // "Global location": half errno-style TLS, half plain globals.
          fn.channel = rng.chance(0.5) ? ErrorChannel::Tls
                                       : ErrorChannel::Global;
          fn.channel_values = {static_cast<int64_t>(1 + rng.below(40))};
          break;
        case ErrorChannel::Global:
          fn.channel = ErrorChannel::Global;
          fn.channel_values = {static_cast<int64_t>(1 + rng.below(40))};
          break;
        case ErrorChannel::Arg:
          fn.channel = ErrorChannel::Arg;
          fn.channel_values = {static_cast<int64_t>(1 + rng.below(40))};
          break;
      }
      // Void functions need error paths for their channels to be written;
      // give channel-less void functions plain compute bodies.
      if (cell.kind == ReturnKind::Void &&
          fn.channel != ErrorChannel::None &&
          fn.detectable_documented.empty()) {
        fn.detectable_documented.push_back(-1);
      }
      spec.functions.push_back(std::move(fn));
    }
    corpus.total_functions += spec.functions.size();
    corpus.libraries.push_back(GenerateLibrary(spec));
  }
  return corpus;
}

}  // namespace lfi::corpus
