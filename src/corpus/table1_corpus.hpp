// The Table-1 corpus: >20,000 functions whose return types and
// error-detail channels follow the distribution the paper measured across
// Ubuntu Linux libraries with ELSA-parsed headers + LFI analyses. The
// bench regenerates the table by *measuring* the corpus with the profiler
// (channel classification) and the prototype metadata (return types).
#pragma once

#include <vector>

#include "corpus/libgen.hpp"

namespace lfi::corpus {

struct Table1Cell {
  ReturnKind kind;
  ErrorChannel channel;  // None, Tls/Global ("global location"), Arg
  double fraction;       // of all functions
};

/// The paper's Table 1 (void/scalar/pointer x none/global/args fractions).
const std::vector<Table1Cell>& Table1Reference();

struct Table1Corpus {
  std::vector<GeneratedLibrary> libraries;
  size_t total_functions = 0;
};

/// Generate `total_functions` functions across `num_libraries` libraries
/// following the Table-1 distribution.
Table1Corpus GenerateTable1Corpus(uint64_t seed,
                                  size_t total_functions = 20000,
                                  size_t num_libraries = 40);

}  // namespace lfi::corpus
