#include "corpus/table2_corpus.hpp"

namespace lfi::corpus {

const std::vector<Table2Entry>& Table2Reference() {
  // Columns from the paper's Table 2; function counts are the paper's
  // where stated (libxml2: 1612, §6.2) and plausible sizes otherwise.
  static const std::vector<Table2Entry> entries = {
      {"libssl", "Windows", 164, 18, 6, 87, 300},
      {"libxml2", "Solaris", 1003, 138, 88, 81, 1600},
      {"libpanel", "Solaris", 23, 0, 0, 100, 25},
      {"libpctx", "Solaris", 10, 0, 2, 83, 15},
      {"libldap", "Linux", 368, 45, 21, 85, 400},
      {"libxml2", "Linux", 989, 152, 102, 80, 1612},
      {"libXss", "Linux", 12, 1, 0, 92, 14},
      {"libgtkspell", "Linux", 7, 0, 0, 100, 10},
      {"libpanel", "Linux", 21, 2, 0, 91, 25},
      {"libdmx", "Linux", 26, 8, 0, 76, 18},
      {"libao", "Linux", 12, 3, 0, 80, 16},
      {"libhesiod", "Linux", 10, 0, 0, 100, 12},
      {"libnetfilter_q", "Linux", 24, 2, 0, 92, 28},
      {"libcdt", "Linux", 15, 0, 0, 100, 20},
      {"libdaemon", "Linux", 30, 3, 0, 91, 35},
      {"libdns_sd", "Linux", 50, 4, 2, 89, 60},
      {"libgimpthumb", "Linux", 31, 3, 3, 84, 36},
      {"libvorbisfile", "Linux", 133, 4, 39, 75, 40},
  };
  return entries;
}

const Table2Entry& LibpcreReference() {
  static const Table2Entry entry = {"libpcre", "Linux", 52, 10, 0, 84, 20};
  return entry;
}

GeneratedLibrary GenerateTable2Library(const Table2Entry& entry,
                                       uint64_t seed) {
  LibrarySpec spec;
  spec.name = entry.library + "." + entry.platform + ".so";
  spec.seed = seed;
  Rng rng(seed ^ 0xabcdef);

  // Round-robin the paper's TP/FN/FP code budgets across the functions.
  size_t tp_left = entry.paper_tp;
  size_t fn_left = entry.paper_fn;
  size_t fp_left = entry.paper_fp;
  // Error-code values: a pool of realistic negative codes; each function
  // draws distinct values.
  auto next_code = [&rng](std::set<int64_t>& used) {
    int64_t code;
    do {
      code = -static_cast<int64_t>(1 + rng.below(64));
    } while (used.count(code));
    used.insert(code);
    return code;
  };

  for (size_t i = 0; i < entry.function_count; ++i) {
    FunctionSpec fn;
    fn.name = entry.library + "_fn" + std::to_string(i);
    fn.arg_count = 1 + static_cast<int>(rng.below(3));
    fn.return_kind = rng.chance(0.15) ? ReturnKind::Pointer : ReturnKind::Scalar;
    fn.filler_blocks = static_cast<int>(rng.below(4));
    std::set<int64_t> used;

    // Remaining functions share the remaining budget roughly evenly.
    size_t remaining_fns = entry.function_count - i;
    auto share = [&](size_t left) {
      size_t base = left / remaining_fns;
      size_t extra = (left % remaining_fns) > 0 && rng.chance(0.5) ? 1 : 0;
      return std::min(left, base + extra);
    };
    size_t tp_here = share(tp_left);
    size_t fn_here = share(fn_left);
    size_t fp_here = share(fp_left);
    if (i + 1 == entry.function_count) {  // last one takes the rest
      tp_here = tp_left;
      fn_here = fn_left;
      fp_here = fp_left;
    }
    for (size_t k = 0; k < tp_here; ++k) {
      fn.detectable_documented.push_back(next_code(used));
    }
    for (size_t k = 0; k < fn_here; ++k) {
      fn.undetectable_documented.push_back(next_code(used));
    }
    for (size_t k = 0; k < fp_here; ++k) {
      fn.detectable_undocumented.push_back(next_code(used));
    }
    tp_left -= tp_here;
    fn_left -= fn_here;
    fp_left -= fp_here;

    // Some functions expose details via a side channel, for realism.
    if (!fn.detectable_documented.empty() && rng.chance(0.3)) {
      fn.channel = rng.chance(0.5) ? ErrorChannel::Tls : ErrorChannel::Arg;
      fn.channel_values = {5, 9, 22};
    }
    spec.functions.push_back(std::move(fn));
  }
  return GenerateLibrary(spec);
}

}  // namespace lfi::corpus
