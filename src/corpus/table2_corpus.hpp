// The Table-2 evaluation corpus: the 18 libraries (plus libpcre) the paper
// measures profiler accuracy on, regenerated as synthetic binaries whose
// documented/undocumented/indirect error codes are sized to the paper's
// TP/FN/FP columns. The profiler is then really run against them; the
// bench compares measured accuracy to the paper's.
#pragma once

#include <string>
#include <vector>

#include "corpus/libgen.hpp"

namespace lfi::corpus {

struct Table2Entry {
  std::string library;
  std::string platform;   // "Linux", "Solaris", "Windows"
  size_t paper_tp = 0;
  size_t paper_fn = 0;
  size_t paper_fp = 0;
  int paper_accuracy_pct = 0;
  size_t function_count = 0;  // exported functions to generate
};

/// The 18 libraries of Table 2, in paper order.
const std::vector<Table2Entry>& Table2Reference();

/// The libpcre manual-inspection case of §6.3 (52 TP / 10 FN / 0 FP, 84%,
/// 20 exported functions; ground truth is the binary itself, not docs).
const Table2Entry& LibpcreReference();

/// Generate the synthetic library for one Table-2 entry.
GeneratedLibrary GenerateTable2Library(const Table2Entry& entry,
                                       uint64_t seed);

}  // namespace lfi::corpus
