#include "isa/codebuilder.hpp"

#include <cassert>

namespace lfi::isa {

CodeBuilder::Label CodeBuilder::new_label() {
  label_offsets_.push_back(-1);
  return static_cast<Label>(label_offsets_.size() - 1);
}

void CodeBuilder::bind(Label l) {
  assert(l >= 0 && static_cast<size_t>(l) < label_offsets_.size());
  assert(label_offsets_[l] == -1 && "label bound twice");
  label_offsets_[l] = here();
}

void CodeBuilder::begin_function(const std::string& name, bool exported,
                                 bool bare) {
  assert(current_function_ == -1 && "begin_function without end_function");
  Symbol sym{name, here(), 0};
  current_exported_ = exported;
  if (exported) {
    unit_.exports.push_back(sym);
    current_function_ = static_cast<int>(unit_.exports.size() - 1);
  } else {
    unit_.locals.push_back(sym);
    current_function_ = static_cast<int>(unit_.locals.size() - 1);
  }
  if (!bare) {
    push(Reg::BP);
    mov_rr(Reg::BP, Reg::SP);
  }
}

void CodeBuilder::end_function() {
  assert(current_function_ != -1);
  Symbol& sym = current_exported_
                    ? unit_.exports[static_cast<size_t>(current_function_)]
                    : unit_.locals[static_cast<size_t>(current_function_)];
  sym.size = here() - sym.offset;
  current_function_ = -1;
}

uint32_t CodeBuilder::reserve_data(uint32_t size) {
  uint32_t off = static_cast<uint32_t>(unit_.data.size());
  unit_.data.resize(unit_.data.size() + size, 0);
  return off;
}

uint32_t CodeBuilder::emit_data(const std::vector<uint8_t>& bytes) {
  uint32_t off = static_cast<uint32_t>(unit_.data.size());
  unit_.data.insert(unit_.data.end(), bytes.begin(), bytes.end());
  return off;
}

uint32_t CodeBuilder::reserve_code_pointer(uint32_t code_offset) {
  uint32_t off = reserve_data(8);
  unit_.data_relocs.emplace_back(off, code_offset);
  return off;
}

uint32_t CodeBuilder::reserve_tls(uint32_t size) {
  uint32_t off = unit_.tls_size;
  unit_.tls_size += size;
  return off;
}

void CodeBuilder::emit(const Instr& ins) { Encode(ins, &unit_.code); }

void CodeBuilder::emit_rel(Opcode op, Label l) {
  uint32_t at = here();
  Instr ins;
  ins.op = op;
  ins.disp = 0;
  emit(ins);
  fixups_.emplace_back(at, l);
}

void CodeBuilder::nop() { emit({.op = Opcode::NOP}); }
void CodeBuilder::halt() { emit({.op = Opcode::HALT}); }
void CodeBuilder::abort() { emit({.op = Opcode::ABORT}); }

void CodeBuilder::mov_ri(Reg a, int64_t imm) {
  emit({.op = Opcode::MOV_RI, .a = a, .imm = imm});
}
void CodeBuilder::mov_rr(Reg a, Reg b) {
  emit({.op = Opcode::MOV_RR, .a = a, .b = b});
}
void CodeBuilder::load(Reg a, Reg base, int32_t disp) {
  emit({.op = Opcode::LOAD, .a = a, .b = base, .disp = disp});
}
void CodeBuilder::store(Reg base, int32_t disp, Reg src) {
  emit({.op = Opcode::STORE, .a = base, .b = src, .disp = disp});
}
void CodeBuilder::store_i(Reg base, int32_t disp, int64_t imm) {
  emit({.op = Opcode::STORE_I, .a = base, .imm = imm, .disp = disp});
}
void CodeBuilder::lea(Reg a, Reg base, int32_t disp) {
  emit({.op = Opcode::LEA, .a = a, .b = base, .disp = disp});
}
void CodeBuilder::lea_data(Reg a, int32_t disp) {
  emit({.op = Opcode::LEA_DATA, .a = a, .disp = disp});
}
void CodeBuilder::lea_tls(Reg a, int32_t disp) {
  emit({.op = Opcode::LEA_TLS, .a = a, .disp = disp});
}
void CodeBuilder::push(Reg a) { emit({.op = Opcode::PUSH, .a = a}); }
void CodeBuilder::pop(Reg a) { emit({.op = Opcode::POP, .a = a}); }

void CodeBuilder::add_rr(Reg a, Reg b) { emit({.op = Opcode::ADD_RR, .a = a, .b = b}); }
void CodeBuilder::sub_rr(Reg a, Reg b) { emit({.op = Opcode::SUB_RR, .a = a, .b = b}); }
void CodeBuilder::and_rr(Reg a, Reg b) { emit({.op = Opcode::AND_RR, .a = a, .b = b}); }
void CodeBuilder::or_rr(Reg a, Reg b) { emit({.op = Opcode::OR_RR, .a = a, .b = b}); }
void CodeBuilder::xor_rr(Reg a, Reg b) { emit({.op = Opcode::XOR_RR, .a = a, .b = b}); }
void CodeBuilder::mul_rr(Reg a, Reg b) { emit({.op = Opcode::MUL_RR, .a = a, .b = b}); }
void CodeBuilder::add_ri(Reg a, int64_t imm) { emit({.op = Opcode::ADD_RI, .a = a, .imm = imm}); }
void CodeBuilder::sub_ri(Reg a, int64_t imm) { emit({.op = Opcode::SUB_RI, .a = a, .imm = imm}); }
void CodeBuilder::and_ri(Reg a, int64_t imm) { emit({.op = Opcode::AND_RI, .a = a, .imm = imm}); }
void CodeBuilder::or_ri(Reg a, int64_t imm) { emit({.op = Opcode::OR_RI, .a = a, .imm = imm}); }
void CodeBuilder::xor_ri(Reg a, int64_t imm) { emit({.op = Opcode::XOR_RI, .a = a, .imm = imm}); }
void CodeBuilder::mul_ri(Reg a, int64_t imm) { emit({.op = Opcode::MUL_RI, .a = a, .imm = imm}); }
void CodeBuilder::neg(Reg a) { emit({.op = Opcode::NEG, .a = a}); }
void CodeBuilder::not_(Reg a) { emit({.op = Opcode::NOT, .a = a}); }
void CodeBuilder::cmp_rr(Reg a, Reg b) { emit({.op = Opcode::CMP_RR, .a = a, .b = b}); }
void CodeBuilder::cmp_ri(Reg a, int64_t imm) { emit({.op = Opcode::CMP_RI, .a = a, .imm = imm}); }

void CodeBuilder::jmp(Label l) { emit_rel(Opcode::JMP, l); }
void CodeBuilder::je(Label l) { emit_rel(Opcode::JE, l); }
void CodeBuilder::jne(Label l) { emit_rel(Opcode::JNE, l); }
void CodeBuilder::jlt(Label l) { emit_rel(Opcode::JLT, l); }
void CodeBuilder::jle(Label l) { emit_rel(Opcode::JLE, l); }
void CodeBuilder::jgt(Label l) { emit_rel(Opcode::JGT, l); }
void CodeBuilder::jge(Label l) { emit_rel(Opcode::JGE, l); }
void CodeBuilder::jmp_ind(Reg a) { emit({.op = Opcode::JMP_IND, .a = a}); }
void CodeBuilder::call(Label l) { emit_rel(Opcode::CALL, l); }
void CodeBuilder::call_ind(Reg a) { emit({.op = Opcode::CALL_IND, .a = a}); }

void CodeBuilder::call_sym(const std::string& name) {
  auto it = import_ids_.find(name);
  uint16_t id;
  if (it == import_ids_.end()) {
    id = static_cast<uint16_t>(unit_.imports.size());
    unit_.imports.push_back(name);
    import_ids_.emplace(name, id);
  } else {
    id = it->second;
  }
  emit({.op = Opcode::CALL_SYM, .u16 = id});
}

void CodeBuilder::ret() { emit({.op = Opcode::RET}); }
void CodeBuilder::syscall(uint16_t number) {
  emit({.op = Opcode::SYSCALL, .u16 = number});
}
void CodeBuilder::kcall(uint16_t number) {
  emit({.op = Opcode::KCALL, .u16 = number});
}

void CodeBuilder::leave_ret() {
  mov_rr(Reg::SP, Reg::BP);
  pop(Reg::BP);
  ret();
}

void CodeBuilder::set_errno_from(Reg src, Reg scratch) {
  lea_tls(scratch, kErrnoTlsOffset);
  store(scratch, 0, src);
}

void CodeBuilder::set_errno_const(int32_t err, Reg scratch, Reg scratch2) {
  mov_ri(scratch2, err);
  lea_tls(scratch, kErrnoTlsOffset);
  store(scratch, 0, scratch2);
}

void CodeBuilder::call_named(const std::string& name,
                             const std::vector<Reg>& args) {
  for (auto it = args.rbegin(); it != args.rend(); ++it) push(*it);
  call_sym(name);
  if (!args.empty()) add_ri(Reg::SP, 8 * static_cast<int64_t>(args.size()));
}

CodeUnit CodeBuilder::Finish() {
  assert(current_function_ == -1 && "unterminated function");
  for (const auto& [at, label] : fixups_) {
    int64_t target = label_offsets_[static_cast<size_t>(label)];
    assert(target >= 0 && "unbound label");
    // rel32 is relative to the end of the 5-byte instruction.
    int32_t rel = static_cast<int32_t>(target - (at + 5));
    uint32_t v = static_cast<uint32_t>(rel);
    for (int i = 0; i < 4; ++i) {
      unit_.code[at + 1 + static_cast<uint32_t>(i)] =
          static_cast<uint8_t>(v >> (8 * i));
    }
  }
  fixups_.clear();
  return std::move(unit_);
}

}  // namespace lfi::isa
