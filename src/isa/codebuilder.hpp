// CodeBuilder: a tiny assembler for the synthetic ISA.
//
// All synthetic binaries in the repository — libc, the kernel image, the
// Table-1/Table-2 corpora and the evaluation applications — are emitted
// through this builder. It offers labels with forward references, an import
// table for cross-library calls (CALL_SYM), export/local symbol recording,
// and calling-convention helpers matching the VM ABI:
//
//   caller:  push argN-1 ... push arg0; call f; add sp, 8*N
//   callee:  push bp; mov bp, sp           (prologue)
//            arg i at [bp + 16 + 8*i]      (saved bp at [bp], ret at [bp+8])
//            mov sp, bp; pop bp; ret       (epilogue)
//   return value in R0; errno lives at TLS offset 0.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace lfi::isa {

/// Where the errno TLS variable lives (libc convention, see libc_builder).
inline constexpr int32_t kErrnoTlsOffset = 0;

/// Stack displacement of argument `i` from BP after the standard prologue.
inline constexpr int32_t ArgSlot(int i) { return 16 + 8 * i; }

struct Symbol {
  std::string name;
  uint32_t offset = 0;
  uint32_t size = 0;  // filled by end_function
};

/// The output of a builder run: raw code plus symbol/import/data tables.
struct CodeUnit {
  std::vector<uint8_t> code;
  std::vector<Symbol> exports;
  std::vector<Symbol> locals;
  std::vector<std::string> imports;  // CALL_SYM index -> symbol name
  std::vector<uint8_t> data;         // module data section (globals)
  uint32_t tls_size = 0;             // bytes of TLS the module needs
  /// (data offset, code offset) pairs resolved to absolute addresses at load.
  std::vector<std::pair<uint32_t, uint32_t>> data_relocs;
};

class CodeBuilder {
 public:
  // -- labels ---------------------------------------------------------------
  using Label = int;
  Label new_label();
  void bind(Label l);
  /// Current emission offset.
  uint32_t here() const { return static_cast<uint32_t>(unit_.code.size()); }

  // -- symbols --------------------------------------------------------------
  /// Begin an exported (or local) function at the current offset. Emits the
  /// standard prologue unless `bare` is true (used for kernel handlers).
  void begin_function(const std::string& name, bool exported = true,
                      bool bare = false);
  /// Record the end of the current function (sets the symbol's size).
  void end_function();

  // -- data / TLS -----------------------------------------------------------
  /// Reserve `size` zeroed bytes in the data section; returns its offset.
  uint32_t reserve_data(uint32_t size);
  /// Append initialized bytes to the data section; returns its offset.
  uint32_t emit_data(const std::vector<uint8_t>& bytes);
  /// Reserve TLS storage; returns the TLS offset.
  uint32_t reserve_tls(uint32_t size);
  /// Reserve an 8-byte data slot that the loader fills with the absolute
  /// address of `code_offset` (a function-pointer table entry).
  uint32_t reserve_code_pointer(uint32_t code_offset);

  // -- raw instruction emitters ---------------------------------------------
  void nop();
  void halt();
  void abort();
  void mov_ri(Reg a, int64_t imm);
  void mov_rr(Reg a, Reg b);
  void load(Reg a, Reg base, int32_t disp);
  void store(Reg base, int32_t disp, Reg src);
  void store_i(Reg base, int32_t disp, int64_t imm);
  void lea(Reg a, Reg base, int32_t disp);
  void lea_data(Reg a, int32_t disp);
  void lea_tls(Reg a, int32_t disp);
  void push(Reg a);
  void pop(Reg a);
  void add_rr(Reg a, Reg b);
  void sub_rr(Reg a, Reg b);
  void and_rr(Reg a, Reg b);
  void or_rr(Reg a, Reg b);
  void xor_rr(Reg a, Reg b);
  void mul_rr(Reg a, Reg b);
  void add_ri(Reg a, int64_t imm);
  void sub_ri(Reg a, int64_t imm);
  void and_ri(Reg a, int64_t imm);
  void or_ri(Reg a, int64_t imm);
  void xor_ri(Reg a, int64_t imm);
  void mul_ri(Reg a, int64_t imm);
  void neg(Reg a);
  void not_(Reg a);
  void cmp_rr(Reg a, Reg b);
  void cmp_ri(Reg a, int64_t imm);
  void jmp(Label l);
  void je(Label l);
  void jne(Label l);
  void jlt(Label l);
  void jle(Label l);
  void jgt(Label l);
  void jge(Label l);
  void jmp_ind(Reg a);
  void call(Label l);
  /// Call a named function; adds an import-table entry on first use.
  /// Cross-library calls AND intra-library calls to exported functions both
  /// go through CALL_SYM so the loader can interpose (like a PLT).
  void call_sym(const std::string& name);
  void call_ind(Reg a);
  void ret();
  void syscall(uint16_t number);
  void kcall(uint16_t number);

  // -- convenience ----------------------------------------------------------
  /// Load argument `i` of the current function into `dst`.
  void load_arg(Reg dst, int i) { load(dst, Reg::BP, ArgSlot(i)); }
  /// Standard epilogue + RET.
  void leave_ret();
  /// Set errno (TLS slot 0) to the value in `src`, clobbering `scratch`.
  void set_errno_from(Reg src, Reg scratch);
  /// Set errno to a constant, clobbering `scratch` and `scratch2`.
  void set_errno_const(int32_t err, Reg scratch, Reg scratch2);
  /// Push `args` (right to left), CALL_SYM `name`, clean the stack.
  void call_named(const std::string& name, const std::vector<Reg>& args);

  /// Finalize: patch label fixups and return the unit. Asserts that every
  /// used label was bound.
  CodeUnit Finish();

 private:
  void emit(const Instr& ins);
  void emit_rel(Opcode op, Label l);

  CodeUnit unit_;
  std::vector<int64_t> label_offsets_;          // -1 = unbound
  std::vector<std::pair<uint32_t, Label>> fixups_;  // instr offset -> label
  std::map<std::string, uint16_t> import_ids_;
  int current_function_ = -1;                   // index into exports/locals
  bool current_exported_ = true;
};

}  // namespace lfi::isa
