#include "isa/harden.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace lfi::isa {

void EmitTmrVote(CodeBuilder& b, Reg dst, Reg copy1, Reg copy2, Reg scratch) {
  // maj(a,b,c) = (b & c) | (a & (b | c)); only MOV/AND/OR, so flags and
  // every register but the named four are untouched.
  b.mov_rr(scratch, copy1);
  b.and_rr(scratch, copy2);  // scratch = c1 & c2
  b.or_rr(copy1, copy2);     // copy1 = c1 | c2
  b.and_rr(copy1, dst);      // copy1 = dst & (c1 | c2)
  b.or_rr(copy1, scratch);   // copy1 = majority
  b.mov_rr(dst, copy1);
  b.mov_rr(copy2, copy1);
}

DwcEmitter::DwcEmitter(CodeBuilder& b, std::vector<std::pair<Reg, Reg>> pairs,
                       CodeBuilder::Label detect)
    : b_(b), pairs_(std::move(pairs)), detect_(detect) {}

Reg DwcEmitter::shadow(Reg r) const {
  for (const auto& [primary, dup] : pairs_) {
    if (primary == r) return dup;
  }
  return r;
}

void DwcEmitter::mov_ri(Reg a, int64_t imm) {
  b_.mov_ri(a, imm);
  b_.mov_ri(shadow(a), imm);
}
void DwcEmitter::mov_rr(Reg a, Reg b) {
  b_.mov_rr(a, b);
  b_.mov_rr(shadow(a), shadow(b));
}
void DwcEmitter::add_rr(Reg a, Reg b) {
  b_.add_rr(a, b);
  b_.add_rr(shadow(a), shadow(b));
}
void DwcEmitter::sub_rr(Reg a, Reg b) {
  b_.sub_rr(a, b);
  b_.sub_rr(shadow(a), shadow(b));
}
void DwcEmitter::xor_rr(Reg a, Reg b) {
  b_.xor_rr(a, b);
  b_.xor_rr(shadow(a), shadow(b));
}
void DwcEmitter::mul_rr(Reg a, Reg b) {
  b_.mul_rr(a, b);
  b_.mul_rr(shadow(a), shadow(b));
}
void DwcEmitter::add_ri(Reg a, int64_t imm) {
  b_.add_ri(a, imm);
  b_.add_ri(shadow(a), imm);
}
void DwcEmitter::mul_ri(Reg a, int64_t imm) {
  b_.mul_ri(a, imm);
  b_.mul_ri(shadow(a), imm);
}
void DwcEmitter::xor_ri(Reg a, int64_t imm) {
  b_.xor_ri(a, imm);
  b_.xor_ri(shadow(a), imm);
}
void DwcEmitter::and_ri(Reg a, int64_t imm) {
  b_.and_ri(a, imm);
  b_.and_ri(shadow(a), imm);
}
void DwcEmitter::check(Reg a) {
  b_.cmp_rr(a, shadow(a));
  b_.jne(detect_);
}

// -- CFCSS rewrite -----------------------------------------------------------

namespace {

struct Block {
  size_t first = 0;  // instr index of the block's first instruction
  size_t last = 0;   // instr index of the terminating/last instruction
  std::vector<size_t> preds;  // block ids within the same function
  std::vector<size_t> succs;
  bool branch_target = false;
  bool check = false;  // verify predecessors' signatures at entry
  int64_t sig = 0;
};

struct FnSpan {
  uint32_t begin = 0;
  uint32_t end = 0;
  size_t first_instr = 0;
  size_t end_instr = 0;  // exclusive
  bool instrument = false;
  std::vector<Block> blocks;
  std::map<size_t, size_t> block_of;  // entry instr index -> block id
};

/// How the first flags-relevant instruction of a block treats the CMP
/// flags. Calls, indirect jumps, returns, and kernel transfers count as
/// readers: we cannot see what runs next, so flags are conservatively
/// live and the block entry gets no (flag-clobbering) check.
enum class FlagsUse { Transparent, Kills, Reads };

bool ReadsOrUnknownFlags(Opcode op) {
  switch (op) {
    case Opcode::JE:
    case Opcode::JNE:
    case Opcode::JLT:
    case Opcode::JLE:
    case Opcode::JGT:
    case Opcode::JGE:
    case Opcode::CALL:
    case Opcode::CALL_SYM:
    case Opcode::CALL_IND:
    case Opcode::JMP_IND:
    case Opcode::RET:
    case Opcode::SYSCALL:
    case Opcode::KCALL:
      return true;
    default:
      return false;
  }
}

bool WritesFlags(Opcode op) {
  return op == Opcode::CMP_RR || op == Opcode::CMP_RI;
}

uint32_t SizeOf(Opcode op) { return static_cast<uint32_t>(EncodedSize(op)); }

/// Signature update: G := sig. push/lea_data/store_i/pop only — no flags,
/// no live registers beyond the saved R6.
uint32_t UpdateBlobSize() {
  return SizeOf(Opcode::PUSH) + SizeOf(Opcode::LEA_DATA) +
         SizeOf(Opcode::STORE_I) + SizeOf(Opcode::POP);
}

/// Check-and-update: load G, compare against each legal predecessor
/// signature, detect on no match, then store the block's own signature.
uint32_t CheckBlobSize(size_t preds) {
  return 2 * SizeOf(Opcode::PUSH) + SizeOf(Opcode::LEA_DATA) +
         SizeOf(Opcode::LOAD) +
         static_cast<uint32_t>(preds) *
             (SizeOf(Opcode::CMP_RI) + SizeOf(Opcode::JE)) +
         SizeOf(Opcode::JMP) + SizeOf(Opcode::STORE_I) +
         2 * SizeOf(Opcode::POP);
}

void EmitOne(Opcode op, Reg a, Reg b, int64_t imm, int32_t disp,
             std::vector<uint8_t>* out) {
  Instr ins;
  ins.op = op;
  ins.a = a;
  ins.b = b;
  ins.imm = imm;
  ins.disp = disp;
  Encode(ins, out);
}

void EmitUpdateBlob(int32_t slot, int64_t sig, std::vector<uint8_t>* out) {
  EmitOne(Opcode::PUSH, Reg::R6, Reg::R0, 0, 0, out);
  EmitOne(Opcode::LEA_DATA, Reg::R6, Reg::R0, 0, slot, out);
  EmitOne(Opcode::STORE_I, Reg::R6, Reg::R0, sig, 0, out);
  EmitOne(Opcode::POP, Reg::R6, Reg::R0, 0, 0, out);
}

void EmitCheckBlob(int32_t slot, const std::vector<int64_t>& pred_sigs,
                   int64_t sig, uint32_t detect_off,
                   std::vector<uint8_t>* out) {
  // The "ok" join point is the store_i that sets the block's own sig.
  uint32_t ok_off =
      static_cast<uint32_t>(out->size()) + 2 * SizeOf(Opcode::PUSH) +
      SizeOf(Opcode::LEA_DATA) + SizeOf(Opcode::LOAD) +
      static_cast<uint32_t>(pred_sigs.size()) *
          (SizeOf(Opcode::CMP_RI) + SizeOf(Opcode::JE)) +
      SizeOf(Opcode::JMP);
  EmitOne(Opcode::PUSH, Reg::R6, Reg::R0, 0, 0, out);
  EmitOne(Opcode::PUSH, Reg::R7, Reg::R0, 0, 0, out);
  EmitOne(Opcode::LEA_DATA, Reg::R6, Reg::R0, 0, slot, out);
  EmitOne(Opcode::LOAD, Reg::R7, Reg::R6, 0, 0, out);
  for (int64_t pred_sig : pred_sigs) {
    EmitOne(Opcode::CMP_RI, Reg::R7, Reg::R0, pred_sig, 0, out);
    uint32_t after = static_cast<uint32_t>(out->size()) + SizeOf(Opcode::JE);
    EmitOne(Opcode::JE, Reg::R0, Reg::R0, 0,
            static_cast<int32_t>(ok_off - after), out);
  }
  uint32_t after_jmp = static_cast<uint32_t>(out->size()) + SizeOf(Opcode::JMP);
  EmitOne(Opcode::JMP, Reg::R0, Reg::R0, 0,
          static_cast<int32_t>(detect_off - after_jmp), out);
  EmitOne(Opcode::STORE_I, Reg::R6, Reg::R0, sig, 0, out);
  EmitOne(Opcode::POP, Reg::R7, Reg::R0, 0, 0, out);
  EmitOne(Opcode::POP, Reg::R6, Reg::R0, 0, 0, out);
}

}  // namespace

Result<CodeUnit> ApplyCfcss(const CodeUnit& unit) {
  auto disassembled =
      Disassemble(unit.code, 0, static_cast<uint32_t>(unit.code.size()));
  if (!disassembled.ok()) {
    return Err("cfcss: undecodable input: " + disassembled.error());
  }
  const std::vector<Instr>& instrs = disassembled.value();

  std::map<uint32_t, size_t> index_at;  // code offset -> instr index
  for (size_t i = 0; i < instrs.size(); ++i) index_at[instrs[i].offset] = i;

  // Function spans from the symbol tables, sorted by offset.
  std::vector<FnSpan> fns;
  auto add_span = [&](const Symbol& sym) {
    if (sym.size == 0) return;
    FnSpan fn;
    fn.begin = sym.offset;
    fn.end = sym.offset + sym.size;
    fns.push_back(fn);
  };
  for (const Symbol& sym : unit.exports) add_span(sym);
  for (const Symbol& sym : unit.locals) add_span(sym);
  std::sort(fns.begin(), fns.end(),
            [](const FnSpan& a, const FnSpan& b) { return a.begin < b.begin; });

  int64_t next_sig = 0;
  for (FnSpan& fn : fns) {
    auto at = index_at.find(fn.begin);
    if (at == index_at.end()) return Err("cfcss: symbol inside instruction");
    fn.first_instr = at->second;
    fn.end_instr = fn.first_instr;
    bool has_jmp_ind = false;
    while (fn.end_instr < instrs.size() &&
           instrs[fn.end_instr].offset < fn.end) {
      if (instrs[fn.end_instr].op == Opcode::JMP_IND) has_jmp_ind = true;
      ++fn.end_instr;
    }
    // Indirect intra-function control flow defeats static signatures:
    // leave the whole function unhardened rather than false-positive.
    fn.instrument = !has_jmp_ind && fn.end_instr > fn.first_instr;
    if (!fn.instrument) continue;

    // Leaders: function entry, branch targets, fall-throughs of
    // terminators. Branches out of the span are treated as exits.
    std::set<size_t> leaders = {fn.first_instr};
    std::set<size_t> targeted;
    for (size_t i = fn.first_instr; i < fn.end_instr; ++i) {
      const Instr& ins = instrs[i];
      if (ins.op == Opcode::JMP || ins.is_cond_branch()) {
        uint32_t target = ins.rel_target();
        if (target >= fn.begin && target < fn.end) {
          auto t = index_at.find(target);
          if (t == index_at.end()) {
            return Err("cfcss: branch into the middle of an instruction");
          }
          leaders.insert(t->second);
          targeted.insert(t->second);
        }
      }
      if (ins.is_terminator() && i + 1 < fn.end_instr) leaders.insert(i + 1);
    }
    for (size_t leader : leaders) {
      Block block;
      block.first = leader;
      block.branch_target = targeted.count(leader) != 0;
      fn.block_of[leader] = fn.blocks.size();
      fn.blocks.push_back(block);
    }
    for (Block& block : fn.blocks) {
      size_t i = block.first;
      while (i + 1 < fn.end_instr && !instrs[i].is_terminator() &&
             leaders.count(i + 1) == 0) {
        ++i;
      }
      block.last = i;
      block.sig = ++next_sig;
      const Instr& term = instrs[i];
      auto link = [&](size_t instr_idx) {
        auto it = fn.block_of.find(instr_idx);
        if (it != fn.block_of.end()) block.succs.push_back(it->second);
      };
      if (term.op == Opcode::JMP || term.is_cond_branch()) {
        uint32_t target = term.rel_target();
        if (target >= fn.begin && target < fn.end) link(index_at[target]);
      }
      bool falls = !term.is_terminator() ||
                   (term.is_cond_branch() && i + 1 < fn.end_instr);
      if (falls && i + 1 < fn.end_instr) link(i + 1);
    }
    for (size_t b = 0; b < fn.blocks.size(); ++b) {
      for (size_t s : fn.blocks[b].succs) fn.blocks[s].preds.push_back(b);
    }

    // Flags liveness at block entry (backward fixpoint): a check's CMP may
    // only run where no path reads the current flags before rewriting them.
    std::vector<FlagsUse> use(fn.blocks.size(), FlagsUse::Transparent);
    for (size_t b = 0; b < fn.blocks.size(); ++b) {
      for (size_t i = fn.blocks[b].first; i <= fn.blocks[b].last; ++i) {
        if (WritesFlags(instrs[i].op)) {
          use[b] = FlagsUse::Kills;
          break;
        }
        if (ReadsOrUnknownFlags(instrs[i].op)) {
          use[b] = FlagsUse::Reads;
          break;
        }
      }
    }
    std::vector<bool> live_in(fn.blocks.size(), false);
    for (size_t b = 0; b < fn.blocks.size(); ++b) {
      live_in[b] = use[b] == FlagsUse::Reads;
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t b = 0; b < fn.blocks.size(); ++b) {
        if (use[b] != FlagsUse::Transparent) continue;
        bool out = false;
        for (size_t s : fn.blocks[b].succs) out |= live_in[s];
        if (out != live_in[b]) {
          live_in[b] = out;
          changed = true;
        }
      }
    }

    for (size_t b = 0; b < fn.blocks.size(); ++b) {
      Block& block = fn.blocks[b];
      block.check = b != 0 && block.branch_target && !live_in[b] &&
                    !block.preds.empty() && block.preds.size() <= 8;
    }
  }

  // Pass 1: insertion sizes -> new layout. Every block entry gets an
  // update (or check+update), every call gets a reseed on return.
  std::vector<uint32_t> pre_size(instrs.size(), 0);
  std::vector<uint32_t> post_size(instrs.size(), 0);
  std::vector<const Block*> entry_block(instrs.size(), nullptr);
  std::vector<const FnSpan*> fn_of(instrs.size(), nullptr);
  for (const FnSpan& fn : fns) {
    if (!fn.instrument) continue;
    for (const Block& block : fn.blocks) {
      entry_block[block.first] = &block;
      pre_size[block.first] = block.check
                                  ? CheckBlobSize(block.preds.size())
                                  : UpdateBlobSize();
      for (size_t i = block.first; i <= block.last; ++i) {
        fn_of[i] = &fn;
        if (instrs[i].is_call()) post_size[i] = UpdateBlobSize();
      }
    }
  }
  std::vector<uint32_t> new_start(instrs.size(), 0);  // incl. pre-blob
  std::vector<uint32_t> new_instr(instrs.size(), 0);
  uint32_t cursor = 0;
  for (size_t i = 0; i < instrs.size(); ++i) {
    new_start[i] = cursor;
    cursor += pre_size[i];
    new_instr[i] = cursor;
    cursor += instrs[i].size;
    cursor += post_size[i];
  }
  const uint32_t detect_off = cursor;
  const uint32_t detect_size = SizeOf(Opcode::MOV_RI) + SizeOf(Opcode::HALT);

  CodeUnit out;
  out.imports = unit.imports;
  out.tls_size = unit.tls_size;
  out.data = unit.data;
  while (out.data.size() % 8 != 0) out.data.push_back(0);
  const int32_t slot = static_cast<int32_t>(out.data.size());
  out.data.resize(out.data.size() + 8, 0);

  // Pass 2: emit shifted code with remapped rel32 targets. Branches and
  // calls land on the target's pre-blob so its update (and check) runs no
  // matter how control arrives.
  out.code.reserve(detect_off + detect_size);
  auto block_sig_of = [&](size_t instr_idx) -> int64_t {
    const FnSpan* fn = fn_of[instr_idx];
    for (const Block& block : fn->blocks) {
      if (instr_idx >= block.first && instr_idx <= block.last) {
        return block.sig;
      }
    }
    return 0;
  };
  for (size_t i = 0; i < instrs.size(); ++i) {
    if (pre_size[i] != 0) {
      const Block& block = *entry_block[i];
      if (block.check) {
        std::vector<int64_t> pred_sigs;
        for (size_t p : block.preds) {
          pred_sigs.push_back(fn_of[i]->blocks[p].sig);
        }
        EmitCheckBlob(slot, pred_sigs, block.sig, detect_off, &out.code);
      } else {
        EmitUpdateBlob(slot, block.sig, &out.code);
      }
    }
    Instr ins = instrs[i];
    if (LayoutOf(ins.op) == OperandLayout::Rel32) {
      uint32_t target = ins.rel_target();
      auto t = index_at.find(target);
      if (t == index_at.end()) {
        return Err("cfcss: relative target inside an instruction");
      }
      ins.disp = static_cast<int32_t>(new_start[t->second] -
                                      (new_instr[i] + ins.size));
    }
    Encode(ins, &out.code);
    if (post_size[i] != 0) {
      EmitUpdateBlob(slot, block_sig_of(i), &out.code);
    }
  }
  EmitOne(Opcode::MOV_RI, Reg::R0, Reg::R0, kSeuDetectExitCode, 0, &out.code);
  EmitOne(Opcode::HALT, Reg::R0, Reg::R0, 0, 0, &out.code);

  auto remap_symbol = [&](const Symbol& sym) -> Result<Symbol> {
    Symbol moved = sym;
    auto at = index_at.find(sym.offset);
    if (at == index_at.end()) return Err("cfcss: unmappable symbol offset");
    size_t first = at->second;
    moved.offset = new_start[first];
    if (sym.size != 0) {
      size_t last = first;
      while (last + 1 < instrs.size() &&
             instrs[last + 1].offset < sym.offset + sym.size) {
        ++last;
      }
      moved.size = new_instr[last] + instrs[last].size + post_size[last] -
                   new_start[first];
    }
    return moved;
  };
  for (const Symbol& sym : unit.exports) {
    auto moved = remap_symbol(sym);
    if (!moved.ok()) return Err(moved.error());
    out.exports.push_back(moved.value());
  }
  for (const Symbol& sym : unit.locals) {
    auto moved = remap_symbol(sym);
    if (!moved.ok()) return Err(moved.error());
    out.locals.push_back(moved.value());
  }
  out.locals.push_back(Symbol{"__cfcss_detect", detect_off, detect_size});
  for (const auto& [data_off, code_off] : unit.data_relocs) {
    auto at = index_at.find(code_off);
    if (at == index_at.end()) return Err("cfcss: unmappable code pointer");
    out.data_relocs.emplace_back(data_off, new_start[at->second]);
  }
  return out;
}

}  // namespace lfi::isa
