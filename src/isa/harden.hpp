// Software-implemented hardware fault tolerance (SIHFT) transforms for the
// synthetic ISA — the guest-side hardening whose effectiveness the SEU
// campaign machinery (campaign/seu.hpp) measures:
//
//   - DwcEmitter: duplicate-with-compare assembly helper. Mirrors a
//     computation into shadow registers and emits compare-and-branch
//     checks, so a flip in either copy diverges the pair and is caught at
//     the next check (EDDI-style duplication at emission time).
//   - ApplyCfcss: a control-flow checking binary rewrite in the CFCSS
//     tradition: every basic block updates a module-global signature word,
//     join blocks verify it matches one of their legal predecessors, and
//     violations jump to a detect handler. Runs on a finished CodeUnit —
//     the two-pass offset-rewrite trick the fixed per-opcode encoding
//     sizes make possible.
//   - EmitTmrVote: triple-modular-redundancy majority vote over three
//     register copies; a single flipped copy is outvoted and repaired
//     (masking, not just detection).
//
// All detectors converge on one convention: exit with kSeuDetectExitCode.
// The SEU classifier maps that exit to the "detected" outcome.
#pragma once

#include <vector>

#include "isa/codebuilder.hpp"
#include "isa/isa.hpp"
#include "util/result.hpp"

namespace lfi::isa {

/// Exit code hardened guests reserve for "my fault checker fired".
inline constexpr int64_t kSeuDetectExitCode = 97;

/// Majority-vote `dst` against its two copies and refresh all three with
/// the voted value: dst = copy1 = copy2 = maj(dst, copy1, copy2).
/// Clobbers `scratch`; touches no flags (safe anywhere).
void EmitTmrVote(CodeBuilder& b, Reg dst, Reg copy1, Reg copy2, Reg scratch);

/// Duplicate-with-compare emission helper. Construct with the
/// primary->shadow register pairs and a bound-later detect label; the
/// mirrored emitters apply each operation to both copies, and check()
/// branches to `detect` when a pair has diverged. Registers without a
/// shadow mapping pass through unchanged in the mirrored emission (so a
/// shared base register or loop bound can be read by both copies).
class DwcEmitter {
 public:
  DwcEmitter(CodeBuilder& b, std::vector<std::pair<Reg, Reg>> pairs,
             CodeBuilder::Label detect);

  Reg shadow(Reg r) const;

  void mov_ri(Reg a, int64_t imm);
  void mov_rr(Reg a, Reg b);
  void add_rr(Reg a, Reg b);
  void sub_rr(Reg a, Reg b);
  void xor_rr(Reg a, Reg b);
  void mul_rr(Reg a, Reg b);
  void add_ri(Reg a, int64_t imm);
  void mul_ri(Reg a, int64_t imm);
  void xor_ri(Reg a, int64_t imm);
  void and_ri(Reg a, int64_t imm);

  /// Compare `a` against its shadow; diverged pairs branch to detect.
  /// Clobbers flags.
  void check(Reg a);

 private:
  CodeBuilder& b_;
  std::vector<std::pair<Reg, Reg>> pairs_;
  CodeBuilder::Label detect_;
};

/// CFCSS-style control-flow signature rewrite of a finished CodeUnit.
///
/// Every basic block of every function gets a signature-update prologue
/// (G := sig(block), flag-transparent), call sites reseed G on return, and
/// join blocks whose CMP flags are provably dead at entry additionally
/// verify G against their legal predecessors' signatures before updating —
/// a mismatch (flipped signature word, corrupted control transfer) jumps
/// to an appended handler that exits with kSeuDetectExitCode. G lives in a
/// new 8-byte module-data slot, deliberately part of the SEU-flippable
/// data section. Functions containing JMP_IND are left untouched
/// (indirect intra-function control flow defeats static signatures);
/// branch targets, symbol tables, and data relocations are remapped to
/// the shifted layout. Fails on undecodable code.
Result<CodeUnit> ApplyCfcss(const CodeUnit& unit);

}  // namespace lfi::isa
