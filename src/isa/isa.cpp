#include "isa/isa.hpp"

#include "util/strings.hpp"

namespace lfi::isa {

const char* RegName(Reg r) {
  switch (r) {
    case Reg::R0: return "r0";
    case Reg::R1: return "r1";
    case Reg::R2: return "r2";
    case Reg::R3: return "r3";
    case Reg::R4: return "r4";
    case Reg::R5: return "r5";
    case Reg::R6: return "r6";
    case Reg::R7: return "r7";
    case Reg::SP: return "sp";
    case Reg::BP: return "bp";
  }
  return "r?";
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::NOP: return "nop";
    case Opcode::HALT: return "halt";
    case Opcode::ABORT: return "abort";
    case Opcode::MOV_RI: return "mov";
    case Opcode::MOV_RR: return "mov";
    case Opcode::LOAD: return "load";
    case Opcode::STORE: return "store";
    case Opcode::STORE_I: return "store";
    case Opcode::LEA: return "lea";
    case Opcode::LEA_DATA: return "lea.data";
    case Opcode::LEA_TLS: return "lea.tls";
    case Opcode::PUSH: return "push";
    case Opcode::POP: return "pop";
    case Opcode::ADD_RR: case Opcode::ADD_RI: return "add";
    case Opcode::SUB_RR: case Opcode::SUB_RI: return "sub";
    case Opcode::AND_RR: case Opcode::AND_RI: return "and";
    case Opcode::OR_RR: case Opcode::OR_RI: return "or";
    case Opcode::XOR_RR: case Opcode::XOR_RI: return "xor";
    case Opcode::MUL_RR: case Opcode::MUL_RI: return "mul";
    case Opcode::NEG: return "neg";
    case Opcode::NOT: return "not";
    case Opcode::CMP_RR: case Opcode::CMP_RI: return "cmp";
    case Opcode::JMP: return "jmp";
    case Opcode::JE: return "je";
    case Opcode::JNE: return "jne";
    case Opcode::JLT: return "jlt";
    case Opcode::JLE: return "jle";
    case Opcode::JGT: return "jgt";
    case Opcode::JGE: return "jge";
    case Opcode::JMP_IND: return "jmp*";
    case Opcode::CALL: return "call";
    case Opcode::CALL_SYM: return "call.sym";
    case Opcode::CALL_IND: return "call*";
    case Opcode::RET: return "ret";
    case Opcode::SYSCALL: return "syscall";
    case Opcode::KCALL: return "kcall";
    case Opcode::kCount: break;
  }
  return "???";
}

OperandLayout LayoutOf(Opcode op) {
  switch (op) {
    case Opcode::NOP:
    case Opcode::HALT:
    case Opcode::ABORT:
    case Opcode::RET:
      return OperandLayout::None;
    case Opcode::PUSH:
    case Opcode::POP:
    case Opcode::NEG:
    case Opcode::NOT:
    case Opcode::JMP_IND:
    case Opcode::CALL_IND:
      return OperandLayout::R;
    case Opcode::MOV_RR:
    case Opcode::ADD_RR:
    case Opcode::SUB_RR:
    case Opcode::AND_RR:
    case Opcode::OR_RR:
    case Opcode::XOR_RR:
    case Opcode::MUL_RR:
    case Opcode::CMP_RR:
      return OperandLayout::RR;
    case Opcode::MOV_RI:
    case Opcode::ADD_RI:
    case Opcode::SUB_RI:
    case Opcode::AND_RI:
    case Opcode::OR_RI:
    case Opcode::XOR_RI:
    case Opcode::MUL_RI:
    case Opcode::CMP_RI:
      return OperandLayout::RI;
    case Opcode::LOAD:
    case Opcode::LEA:
      return OperandLayout::RRD;
    case Opcode::STORE:
      return OperandLayout::RDR;
    case Opcode::STORE_I:
      return OperandLayout::RDI;
    case Opcode::LEA_DATA:
    case Opcode::LEA_TLS:
      return OperandLayout::RD;
    case Opcode::JMP:
    case Opcode::JE:
    case Opcode::JNE:
    case Opcode::JLT:
    case Opcode::JLE:
    case Opcode::JGT:
    case Opcode::JGE:
    case Opcode::CALL:
      return OperandLayout::Rel32;
    case Opcode::CALL_SYM:
    case Opcode::SYSCALL:
    case Opcode::KCALL:
      return OperandLayout::U16;
    case Opcode::kCount:
      break;
  }
  return OperandLayout::None;
}

size_t EncodedSize(Opcode op) {
  switch (LayoutOf(op)) {
    case OperandLayout::None: return 1;
    case OperandLayout::R: return 2;
    case OperandLayout::RR: return 3;
    case OperandLayout::RI: return 10;
    case OperandLayout::RRD: return 7;
    case OperandLayout::RDR: return 7;
    case OperandLayout::RDI: return 14;
    case OperandLayout::RD: return 6;
    case OperandLayout::Rel32: return 5;
    case OperandLayout::U16: return 3;
  }
  return 1;
}

bool Instr::is_branch() const {
  switch (op) {
    case Opcode::JMP: case Opcode::JE: case Opcode::JNE: case Opcode::JLT:
    case Opcode::JLE: case Opcode::JGT: case Opcode::JGE: case Opcode::JMP_IND:
      return true;
    default:
      return false;
  }
}

bool Instr::is_cond_branch() const {
  switch (op) {
    case Opcode::JE: case Opcode::JNE: case Opcode::JLT:
    case Opcode::JLE: case Opcode::JGT: case Opcode::JGE:
      return true;
    default:
      return false;
  }
}

bool Instr::is_terminator() const {
  return is_branch() || op == Opcode::RET || op == Opcode::HALT ||
         op == Opcode::ABORT;
}

bool Instr::is_call() const {
  return op == Opcode::CALL || op == Opcode::CALL_SYM ||
         op == Opcode::CALL_IND;
}

namespace {

void PutU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint16_t GetU16(const std::vector<uint8_t>& b, uint32_t at) {
  return static_cast<uint16_t>(b[at] | (b[at + 1] << 8));
}

uint32_t GetU32(const std::vector<uint8_t>& b, uint32_t at) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(b[at + i]) << (8 * i);
  return v;
}

uint64_t GetU64(const std::vector<uint8_t>& b, uint32_t at) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(b[at + i]) << (8 * i);
  return v;
}

}  // namespace

void Encode(const Instr& ins, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(ins.op));
  switch (LayoutOf(ins.op)) {
    case OperandLayout::None:
      break;
    case OperandLayout::R:
      out->push_back(static_cast<uint8_t>(ins.a));
      break;
    case OperandLayout::RR:
      out->push_back(static_cast<uint8_t>(ins.a));
      out->push_back(static_cast<uint8_t>(ins.b));
      break;
    case OperandLayout::RI:
      out->push_back(static_cast<uint8_t>(ins.a));
      PutU64(static_cast<uint64_t>(ins.imm), out);
      break;
    case OperandLayout::RRD:
      out->push_back(static_cast<uint8_t>(ins.a));
      out->push_back(static_cast<uint8_t>(ins.b));
      PutU32(static_cast<uint32_t>(ins.disp), out);
      break;
    case OperandLayout::RDR:
      out->push_back(static_cast<uint8_t>(ins.a));
      PutU32(static_cast<uint32_t>(ins.disp), out);
      out->push_back(static_cast<uint8_t>(ins.b));
      break;
    case OperandLayout::RDI:
      out->push_back(static_cast<uint8_t>(ins.a));
      PutU32(static_cast<uint32_t>(ins.disp), out);
      PutU64(static_cast<uint64_t>(ins.imm), out);
      break;
    case OperandLayout::RD:
      out->push_back(static_cast<uint8_t>(ins.a));
      PutU32(static_cast<uint32_t>(ins.disp), out);
      break;
    case OperandLayout::Rel32:
      PutU32(static_cast<uint32_t>(ins.disp), out);
      break;
    case OperandLayout::U16:
      PutU16(ins.u16, out);
      break;
  }
}

Result<Instr> DecodeOne(const std::vector<uint8_t>& code, uint32_t offset) {
  if (offset >= code.size()) return Err("decode: offset out of range");
  uint8_t raw = code[offset];
  if (raw >= static_cast<uint8_t>(Opcode::kCount)) {
    return Err(Format("decode: unknown opcode 0x%02x at %u", raw, offset));
  }
  Instr ins;
  ins.op = static_cast<Opcode>(raw);
  ins.offset = offset;
  ins.size = static_cast<uint32_t>(EncodedSize(ins.op));
  if (offset + ins.size > code.size()) {
    return Err(Format("decode: truncated instruction at %u", offset));
  }
  uint32_t at = offset + 1;
  auto reg_ok = [](uint8_t r) { return r < kNumRegs; };
  switch (LayoutOf(ins.op)) {
    case OperandLayout::None:
      break;
    case OperandLayout::R:
      if (!reg_ok(code[at])) return Err("decode: bad register");
      ins.a = static_cast<Reg>(code[at]);
      break;
    case OperandLayout::RR:
      if (!reg_ok(code[at]) || !reg_ok(code[at + 1]))
        return Err("decode: bad register");
      ins.a = static_cast<Reg>(code[at]);
      ins.b = static_cast<Reg>(code[at + 1]);
      break;
    case OperandLayout::RI:
      if (!reg_ok(code[at])) return Err("decode: bad register");
      ins.a = static_cast<Reg>(code[at]);
      ins.imm = static_cast<int64_t>(GetU64(code, at + 1));
      break;
    case OperandLayout::RRD:
      if (!reg_ok(code[at]) || !reg_ok(code[at + 1]))
        return Err("decode: bad register");
      ins.a = static_cast<Reg>(code[at]);
      ins.b = static_cast<Reg>(code[at + 1]);
      ins.disp = static_cast<int32_t>(GetU32(code, at + 2));
      break;
    case OperandLayout::RDR:
      if (!reg_ok(code[at]) || !reg_ok(code[at + 5]))
        return Err("decode: bad register");
      ins.a = static_cast<Reg>(code[at]);
      ins.disp = static_cast<int32_t>(GetU32(code, at + 1));
      ins.b = static_cast<Reg>(code[at + 5]);
      break;
    case OperandLayout::RDI:
      if (!reg_ok(code[at])) return Err("decode: bad register");
      ins.a = static_cast<Reg>(code[at]);
      ins.disp = static_cast<int32_t>(GetU32(code, at + 1));
      ins.imm = static_cast<int64_t>(GetU64(code, at + 5));
      break;
    case OperandLayout::RD:
      if (!reg_ok(code[at])) return Err("decode: bad register");
      ins.a = static_cast<Reg>(code[at]);
      ins.disp = static_cast<int32_t>(GetU32(code, at + 1));
      break;
    case OperandLayout::Rel32:
      ins.disp = static_cast<int32_t>(GetU32(code, at));
      break;
    case OperandLayout::U16:
      ins.u16 = GetU16(code, at);
      break;
  }
  return ins;
}

Result<std::vector<Instr>> Disassemble(const std::vector<uint8_t>& code,
                                       uint32_t begin, uint32_t end) {
  std::vector<Instr> out;
  uint32_t at = begin;
  while (at < end) {
    auto ins = DecodeOne(code, at);
    if (!ins.ok()) return Err(ins.error());
    at += ins.value().size;
    out.push_back(std::move(ins).take());
  }
  return out;
}

std::string Instr::ToString() const {
  std::string head = Format("%6x:  %-9s", offset, OpcodeName(op));
  switch (LayoutOf(op)) {
    case OperandLayout::None:
      return head;
    case OperandLayout::R:
      return head + Format(" %s", RegName(a));
    case OperandLayout::RR:
      return head + Format(" %s, %s", RegName(a), RegName(b));
    case OperandLayout::RI:
      return head + Format(" %s, %lld", RegName(a), (long long)imm);
    case OperandLayout::RRD:
      if (op == Opcode::LOAD)
        return head + Format(" %s, [%s%+d]", RegName(a), RegName(b), disp);
      return head + Format(" %s, [%s%+d]", RegName(a), RegName(b), disp);
    case OperandLayout::RDR:
      return head + Format(" [%s%+d], %s", RegName(a), disp, RegName(b));
    case OperandLayout::RDI:
      return head + Format(" [%s%+d], %lld", RegName(a), disp, (long long)imm);
    case OperandLayout::RD:
      return head + Format(" %s, %+d", RegName(a), disp);
    case OperandLayout::Rel32:
      return head + Format(" %x", rel_target());
    case OperandLayout::U16:
      return head + Format(" %u", u16);
  }
  return head;
}

}  // namespace lfi::isa
