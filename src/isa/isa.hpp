// The synthetic instruction set.
//
// This is the machine-code substrate the LFI profiler disassembles and the
// VM executes. It is deliberately shaped like the IA32 subset the paper's
// analyses care about (§3.1-§3.2):
//   - R0 is the return-value register (the `eax` analogue);
//   - constants are materialized with MOV_RI and propagated through
//     MOV_RR / arithmetic / stack slots;
//   - LEA_TLS / LEA_DATA model PIC base-register addressing of TLS
//     (errno-style) and module-global variables;
//   - stores through pointers loaded from positive BP offsets model
//     writes to output arguments;
//   - CALL_SYM goes through an import table (the PLT analogue), so the
//     dynamic loader can interpose stubs — the LD_PRELOAD mechanism;
//   - SYSCALL vectors into the kernel image, whose handlers contain the
//     -errno constants the profiler's kernel analysis extracts;
//   - JMP_IND / CALL_IND are the indirect-control-flow constructs whose
//     (rare) presence degrades profiler accuracy, as measured in §3.1.
//
// Encoding is variable-length: a 1-byte opcode followed by operands
// (reg = 1 byte, imm64 = 8 bytes LE, disp32/rel32 = 4 bytes LE,
// u16 = 2 bytes LE). A real decoder ("disassembler") is provided; the
// profiler only ever sees decoded instructions, mirroring LFI's loose
// coupling to objdump (§3.1 "Limitations").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace lfi::isa {

/// Register file. R0..R7 general purpose (R0 = return value), SP/BP stack.
enum class Reg : uint8_t {
  R0 = 0, R1, R2, R3, R4, R5, R6, R7,
  SP = 8,
  BP = 9,
};
inline constexpr int kNumRegs = 10;

const char* RegName(Reg r);

enum class Opcode : uint8_t {
  NOP = 0,
  HALT,      // terminate process; exit code in R0
  ABORT,     // terminate process with SIGABRT

  MOV_RI,    // a <- imm64
  MOV_RR,    // a <- b
  LOAD,      // a <- mem64[b + disp]
  STORE,     // mem64[a + disp] <- b
  STORE_I,   // mem64[a + disp] <- imm64
  LEA,       // a <- b + disp
  LEA_DATA,  // a <- current module's data base + disp   (PIC global access)
  LEA_TLS,   // a <- thread TLS base + disp              (errno-style access)

  PUSH,      // push a
  POP,       // a <- pop

  ADD_RR, SUB_RR, AND_RR, OR_RR, XOR_RR, MUL_RR,  // a <- a op b
  ADD_RI, SUB_RI, AND_RI, OR_RI, XOR_RI, MUL_RI,  // a <- a op imm64
  NEG,       // a <- -a
  NOT,       // a <- ~a

  CMP_RR,    // flags <- sign(a - b)
  CMP_RI,    // flags <- sign(a - imm64)

  JMP,       // pc-relative (to next instruction), module-local
  JE, JNE, JLT, JLE, JGT, JGE,
  JMP_IND,   // pc <- a (absolute virtual address)

  CALL,      // push return addr; pc-relative target
  CALL_SYM,  // push return addr; through import table entry u16
  CALL_IND,  // push return addr; pc <- a
  RET,

  SYSCALL,   // u16 syscall number; vectors into the kernel image
  KCALL,     // u16 kernel-native operation (valid only inside the kernel)

  kCount,
};

const char* OpcodeName(Opcode op);

/// Operand layout classes; drive both encoder and decoder.
enum class OperandLayout : uint8_t {
  None,    // -
  R,       // reg a
  RR,      // reg a, reg b
  RI,      // reg a, imm64
  RRD,     // reg a, reg b, disp32
  RDR,     // reg a, disp32, reg b        (STORE)
  RDI,     // reg a, disp32, imm64        (STORE_I)
  RD,      // reg a, disp32               (LEA_DATA / LEA_TLS)
  Rel32,   // rel32
  U16,     // u16
};

OperandLayout LayoutOf(Opcode op);

/// Byte size of an encoded instruction with the given opcode.
size_t EncodedSize(Opcode op);

/// A decoded instruction. `offset` and `size` locate it in the code
/// section, which the CFG builder and the VM both rely on.
struct Instr {
  Opcode op = Opcode::NOP;
  Reg a = Reg::R0;
  Reg b = Reg::R0;
  int64_t imm = 0;    // imm64 operand
  int32_t disp = 0;   // disp32 / rel32 operand
  uint16_t u16 = 0;   // import index or syscall/kcall number
  uint32_t offset = 0;
  uint32_t size = 0;

  bool is_branch() const;        // JMP/Jcc/JMP_IND
  bool is_cond_branch() const;   // Jcc
  bool is_terminator() const;    // branch, RET, HALT, ABORT, JMP_IND
  bool is_call() const;          // CALL/CALL_SYM/CALL_IND

  /// Target offset of a direct branch/call (relative encodings resolved).
  uint32_t rel_target() const { return offset + size + static_cast<uint32_t>(disp); }

  std::string ToString() const;  // text disassembly of one instruction
};

// -- Encoding ---------------------------------------------------------------

/// Append the encoding of `ins` to `out`. `ins.offset/size` are ignored.
void Encode(const Instr& ins, std::vector<uint8_t>* out);

/// Decode one instruction at `offset`. Fails on truncated or unknown bytes.
Result<Instr> DecodeOne(const std::vector<uint8_t>& code, uint32_t offset);

/// Linear-sweep disassembly of a whole code section.
/// This is the "objdump" of the synthetic platform.
Result<std::vector<Instr>> Disassemble(const std::vector<uint8_t>& code,
                                       uint32_t begin, uint32_t end);

}  // namespace lfi::isa
