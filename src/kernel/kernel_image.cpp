#include "kernel/kernel_image.hpp"

#include "kernel/syscalls.hpp"

namespace lfi::kernel {

using isa::CodeBuilder;
using isa::Reg;

sso::SharedObject BuildKernelImage() {
  CodeBuilder b;
  for (const auto& spec : SyscallTable()) {
    // Handlers are "bare": the VM vectors SYSCALL here with a pushed return
    // address but no frame; arguments arrive in R1..R5.
    b.begin_function(HandlerName(spec), /*exported=*/true, /*bare=*/true);
    b.kcall(static_cast<uint16_t>(spec.number));
    if (spec.errors.empty()) {
      b.ret();
      b.end_function();
      continue;
    }
    // R1 == 0 means success (R0 already holds the native result).
    auto ok = b.new_label();
    b.cmp_ri(Reg::R1, 0);
    b.je(ok);
    for (size_t i = 0; i < spec.errors.size(); ++i) {
      if (i + 1 < spec.errors.size()) {
        auto next = b.new_label();
        b.cmp_ri(Reg::R1, static_cast<int64_t>(i) + 1);
        b.jne(next);
        b.mov_ri(Reg::R0, -spec.errors[i]);
        b.ret();
        b.bind(next);
      } else {
        // Last error is the fall-through, as a compiler would emit it.
        b.mov_ri(Reg::R0, -spec.errors[i]);
        b.ret();
      }
    }
    b.bind(ok);
    b.ret();
    b.end_function();
  }
  return sso::FromCodeUnit(kKernelImageName, b.Finish());
}

}  // namespace lfi::kernel
