// The kernel image: a synthetic binary whose syscall handlers contain the
// -errno constants on their error paths.
//
// §3.1: "LFI therefore performs static analysis on the kernel image as
// well, to identify the error codes that originate in the kernel and may be
// propagated by the libraries." This module generates that image. Each
// handler performs the operation with a native KCALL (which reports an
// error *index* in R1), then branches through compare chains that
// materialize `-errno` into R0 — so reverse constant propagation over the
// handler's CFG discovers exactly the spec's error set.
#pragma once

#include "sso/sso.hpp"

namespace lfi::kernel {

/// Name the kernel image carries ("vmlinuz" of the synthetic platform).
inline constexpr const char* kKernelImageName = "kernel.img";

/// Build the kernel image from SyscallTable().
sso::SharedObject BuildKernelImage();

}  // namespace lfi::kernel
