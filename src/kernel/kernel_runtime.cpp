#include "kernel/kernel_runtime.hpp"

#include <algorithm>

namespace lfi::kernel {

namespace {
// open() flag bits (libc exposes the same values).
constexpr int64_t kO_WRONLY = 1;
constexpr int64_t kO_RDWR = 2;
constexpr int64_t kO_CREAT = 0x40;
constexpr int64_t kO_TRUNC = 0x200;
constexpr int64_t kO_APPEND = 0x400;
}  // namespace

KernelRuntime::KernelRuntime() = default;

void KernelRuntime::Checkpoint() { checkpoint_ = CaptureState(); }

void KernelRuntime::Reset() {
  if (checkpoint_) {
    RestoreState(*checkpoint_);
    return;
  }
  // No checkpoint: drop per-run state but keep the configured filesystem
  // and listening ports (the historical contract — configuration done
  // before the implicit first-CreateProcess checkpoint must survive).
  fds_.clear();
  next_fd_.clear();
  pipes_.clear();
  sockets_.clear();
  exited_.clear();
  kcalls_ = 0;
}

KernelRuntime::State KernelRuntime::CaptureState() const {
  return State{files_,   listening_, fds_,    next_fd_,
               pipes_,   sockets_,   exited_, kcalls_};
}

void KernelRuntime::RestoreState(const State& state) {
  files_ = state.files;
  listening_ = state.listening;
  fds_ = state.fds;
  next_fd_ = state.next_fd;
  pipes_ = state.pipes;
  sockets_ = state.sockets;
  exited_ = state.exited;
  kcalls_ = state.kcalls;
}

void KernelRuntime::add_file(const std::string& path,
                             std::vector<uint8_t> contents) {
  files_[path] = std::move(contents);
}

bool KernelRuntime::has_file(const std::string& path) const {
  return files_.count(path) > 0;
}

std::vector<uint8_t> KernelRuntime::file_contents(
    const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? std::vector<uint8_t>{} : it->second;
}

bool KernelRuntime::feed_socket(int pid, int64_t fd,
                                const std::vector<uint8_t>& bytes) {
  OpenFile* f = GetFd(pid, fd);
  if (!f || f->kind != FdKind::Socket) return false;
  Socket& s = sockets_[static_cast<size_t>(f->sock_id)];
  s.rx.insert(s.rx.end(), bytes.begin(), bytes.end());
  return true;
}

std::vector<uint8_t> KernelRuntime::socket_sent(int pid, int64_t fd) const {
  auto pit = fds_.find(pid);
  if (pit == fds_.end()) return {};
  auto fit = pit->second.find(fd);
  if (fit == pit->second.end() || fit->second.kind != FdKind::Socket) return {};
  return sockets_[static_cast<size_t>(fit->second.sock_id)].tx;
}

void KernelRuntime::on_process_exit(int pid, int64_t code) {
  auto it = fds_.find(pid);
  if (it != fds_.end()) {
    std::vector<int64_t> open;
    for (const auto& [fd, file] : it->second) open.push_back(fd);
    for (int64_t fd : open) CloseFd(pid, fd);
    fds_.erase(pid);
  }
  exited_[pid] = code;
}

std::optional<int64_t> KernelRuntime::exit_code(int pid) const {
  auto it = exited_.find(pid);
  if (it == exited_.end()) return std::nullopt;
  return it->second;
}

size_t KernelRuntime::open_fd_count(int pid) const {
  auto it = fds_.find(pid);
  return it == fds_.end() ? 0 : it->second.size();
}

KernelRuntime::OpenFile* KernelRuntime::GetFd(int pid, int64_t fd) {
  auto pit = fds_.find(pid);
  if (pit == fds_.end()) return nullptr;
  auto fit = pit->second.find(fd);
  return fit == pit->second.end() ? nullptr : &fit->second;
}

int64_t KernelRuntime::AllocFd(int pid, OpenFile file) {
  if (fds_[pid].size() >= static_cast<size_t>(kMaxFdsPerProcess)) return -1;
  int64_t fd = next_fd_.count(pid) ? next_fd_[pid] : 3;  // 0-2 reserved
  next_fd_[pid] = fd + 1;
  fds_[pid].emplace(fd, std::move(file));
  return fd;
}

void KernelRuntime::CloseFd(int pid, int64_t fd) {
  OpenFile* f = GetFd(pid, fd);
  if (!f) return;
  if (f->kind == FdKind::PipeRead) {
    pipes_[static_cast<size_t>(f->pipe_id)].readers--;
  } else if (f->kind == FdKind::PipeWrite) {
    pipes_[static_cast<size_t>(f->pipe_id)].writers--;
  } else if (f->kind == FdKind::Socket) {
    sockets_[static_cast<size_t>(f->sock_id)].connected = false;
  }
  fds_[pid].erase(fd);
}

std::optional<std::string> KernelRuntime::ReadPath(KernelContext& ctx,
                                                   uint64_t addr) {
  std::string path;
  for (uint64_t i = 0; i < 4096; ++i) {
    char c = 0;
    if (!ctx.read_mem(addr + i, &c, 1)) return std::nullopt;
    if (c == '\0') return path;
    path.push_back(c);
  }
  return std::nullopt;  // unterminated
}

KResult KernelRuntime::Invoke(uint16_t number, KernelContext& ctx) {
  ++kcalls_;
  switch (static_cast<Sys>(number)) {
    case Sys::EXIT:
      ctx.request_exit(ctx.reg(isa::Reg::R1));
      return KResult::Ok(0);
    case Sys::OPEN: return DoOpen(ctx);
    case Sys::CLOSE: return DoClose(ctx);
    case Sys::READ: return DoRead(ctx);
    case Sys::WRITE: return DoWrite(ctx);
    case Sys::LSEEK: return DoLseek(ctx);
    case Sys::STAT: return DoStat(ctx);
    case Sys::UNLINK: return DoUnlink(ctx);
    case Sys::FSYNC: return DoFsync(ctx);
    case Sys::ALLOC: return DoAlloc(ctx);
    case Sys::FREE: return DoFree(ctx);
    case Sys::PIPE: return DoPipe(ctx);
    case Sys::SPAWN: return DoSpawn(ctx);
    case Sys::SOCKET: return DoSocket(ctx);
    case Sys::CONNECT: return DoConnect(ctx);
    case Sys::SEND: return DoSend(ctx);
    case Sys::RECV: return DoRecv(ctx);
    case Sys::GETPID: return KResult::Ok(ctx.pid());
    case Sys::YIELD: return KResult::Ok(0);
    case Sys::WAIT: return DoWait(ctx);
  }
  return KResult::Fail(E_NOSYS);
}

KResult KernelRuntime::DoOpen(KernelContext& ctx) {
  auto path = ReadPath(ctx, static_cast<uint64_t>(ctx.reg(isa::Reg::R1)));
  if (!path) return KResult::Fail(E_ACCES);
  int64_t flags = ctx.reg(isa::Reg::R2);
  auto it = files_.find(*path);
  if (it == files_.end()) {
    if (!(flags & kO_CREAT)) return KResult::Fail(E_NOENT);
    files_[*path] = {};
    it = files_.find(*path);
  } else if (flags & kO_TRUNC) {
    it->second.clear();
  }
  OpenFile f;
  f.kind = FdKind::File;
  f.path = *path;
  f.pos = (flags & kO_APPEND) ? it->second.size() : 0;
  (void)kO_WRONLY;
  (void)kO_RDWR;
  int64_t fd = AllocFd(ctx.pid(), std::move(f));
  if (fd < 0) return KResult::Fail(E_MFILE);
  return KResult::Ok(fd);
}

KResult KernelRuntime::DoClose(KernelContext& ctx) {
  int64_t fd = ctx.reg(isa::Reg::R1);
  if (!GetFd(ctx.pid(), fd)) return KResult::Fail(E_BADF);
  CloseFd(ctx.pid(), fd);
  return KResult::Ok(0);
}

KResult KernelRuntime::DoRead(KernelContext& ctx) {
  int64_t fd = ctx.reg(isa::Reg::R1);
  uint64_t buf = static_cast<uint64_t>(ctx.reg(isa::Reg::R2));
  uint64_t count = static_cast<uint64_t>(ctx.reg(isa::Reg::R3));
  OpenFile* f = GetFd(ctx.pid(), fd);
  if (!f) return KResult::Fail(E_BADF);
  if (f->kind == FdKind::File) {
    const auto& data = files_[f->path];
    if (f->pos >= data.size()) return KResult::Ok(0);
    uint64_t n = std::min<uint64_t>(count, data.size() - f->pos);
    if (n && !ctx.write_mem(buf, data.data() + f->pos, n)) {
      return KResult::Fail(E_IO);
    }
    f->pos += n;
    return KResult::Ok(static_cast<int64_t>(n));
  }
  if (f->kind == FdKind::PipeRead) {
    Pipe& p = pipes_[static_cast<size_t>(f->pipe_id)];
    if (p.buf.empty()) {
      if (p.writers == 0) return KResult::Ok(0);  // EOF
      return KResult::Block();
    }
    uint64_t n = std::min<uint64_t>(count, p.buf.size());
    for (uint64_t i = 0; i < n; ++i) {
      uint8_t byte = p.buf.front();
      p.buf.pop_front();
      if (!ctx.write_mem(buf + i, &byte, 1)) return KResult::Fail(E_IO);
    }
    return KResult::Ok(static_cast<int64_t>(n));
  }
  return KResult::Fail(E_BADF);  // read() on a socket/pipe-write end
}

KResult KernelRuntime::DoWrite(KernelContext& ctx) {
  int64_t fd = ctx.reg(isa::Reg::R1);
  uint64_t buf = static_cast<uint64_t>(ctx.reg(isa::Reg::R2));
  uint64_t count = static_cast<uint64_t>(ctx.reg(isa::Reg::R3));
  OpenFile* f = GetFd(ctx.pid(), fd);
  if (!f) return KResult::Fail(E_BADF);
  if (f->kind == FdKind::File) {
    auto& data = files_[f->path];
    if (data.size() + count > (64u << 20)) return KResult::Fail(E_NOSPC);
    if (f->pos + count > data.size()) data.resize(f->pos + count);
    for (uint64_t i = 0; i < count; ++i) {
      uint8_t byte = 0;
      if (!ctx.read_mem(buf + i, &byte, 1)) return KResult::Fail(E_IO);
      data[f->pos + i] = byte;
    }
    f->pos += count;
    return KResult::Ok(static_cast<int64_t>(count));
  }
  if (f->kind == FdKind::PipeWrite) {
    Pipe& p = pipes_[static_cast<size_t>(f->pipe_id)];
    if (p.readers == 0) return KResult::Fail(E_PIPE);
    if (p.buf.size() >= kPipeCapacity) return KResult::Block();
    uint64_t n = std::min<uint64_t>(count, kPipeCapacity - p.buf.size());
    for (uint64_t i = 0; i < n; ++i) {
      uint8_t byte = 0;
      if (!ctx.read_mem(buf + i, &byte, 1)) return KResult::Fail(E_IO);
      p.buf.push_back(byte);
    }
    return KResult::Ok(static_cast<int64_t>(n));
  }
  return KResult::Fail(E_BADF);
}

KResult KernelRuntime::DoLseek(KernelContext& ctx) {
  int64_t fd = ctx.reg(isa::Reg::R1);
  int64_t offset = ctx.reg(isa::Reg::R2);
  int64_t whence = ctx.reg(isa::Reg::R3);  // 0=SET, 1=CUR, 2=END
  OpenFile* f = GetFd(ctx.pid(), fd);
  if (!f || f->kind != FdKind::File) return KResult::Fail(E_BADF);
  const auto& data = files_[f->path];
  int64_t base = whence == 0   ? 0
                 : whence == 1 ? static_cast<int64_t>(f->pos)
                 : whence == 2 ? static_cast<int64_t>(data.size())
                               : -1;
  if (base < 0 || base + offset < 0) return KResult::Fail(E_INVAL);
  f->pos = static_cast<uint64_t>(base + offset);
  return KResult::Ok(static_cast<int64_t>(f->pos));
}

KResult KernelRuntime::DoStat(KernelContext& ctx) {
  auto path = ReadPath(ctx, static_cast<uint64_t>(ctx.reg(isa::Reg::R1)));
  if (!path) return KResult::Fail(E_ACCES);
  auto it = files_.find(*path);
  if (it == files_.end()) return KResult::Fail(E_NOENT);
  // stat() reports the size through the output pointer in R2 (if non-null).
  uint64_t out = static_cast<uint64_t>(ctx.reg(isa::Reg::R2));
  if (out != 0) {
    int64_t size = static_cast<int64_t>(it->second.size());
    if (!ctx.write_mem(out, &size, 8)) return KResult::Fail(E_ACCES);
  }
  return KResult::Ok(static_cast<int64_t>(it->second.size()));
}

KResult KernelRuntime::DoUnlink(KernelContext& ctx) {
  auto path = ReadPath(ctx, static_cast<uint64_t>(ctx.reg(isa::Reg::R1)));
  if (!path) return KResult::Fail(E_ACCES);
  auto it = files_.find(*path);
  if (it == files_.end()) return KResult::Fail(E_NOENT);
  files_.erase(it);
  return KResult::Ok(0);
}

KResult KernelRuntime::DoFsync(KernelContext& ctx) {
  int64_t fd = ctx.reg(isa::Reg::R1);
  OpenFile* f = GetFd(ctx.pid(), fd);
  if (!f || f->kind != FdKind::File) return KResult::Fail(E_BADF);
  return KResult::Ok(0);
}

KResult KernelRuntime::DoAlloc(KernelContext& ctx) {
  uint64_t size = static_cast<uint64_t>(ctx.reg(isa::Reg::R1));
  uint64_t addr = ctx.alloc_heap(size);
  if (addr == 0) return KResult::Fail(E_NOMEM);
  return KResult::Ok(static_cast<int64_t>(addr));
}

KResult KernelRuntime::DoFree(KernelContext& ctx) {
  // The bump allocator does not reclaim; free() validates its argument only.
  uint64_t addr = static_cast<uint64_t>(ctx.reg(isa::Reg::R1));
  if (addr == 0) return KResult::Ok(0);
  return KResult::Ok(0);
}

KResult KernelRuntime::DoPipe(KernelContext& ctx) {
  uint64_t out = static_cast<uint64_t>(ctx.reg(isa::Reg::R1));
  if (out == 0) return KResult::Fail(E_FAULT);
  pipes_.push_back(Pipe{});
  int pipe_id = static_cast<int>(pipes_.size() - 1);
  OpenFile rd;
  rd.kind = FdKind::PipeRead;
  rd.pipe_id = pipe_id;
  OpenFile wr;
  wr.kind = FdKind::PipeWrite;
  wr.pipe_id = pipe_id;
  int64_t rfd = AllocFd(ctx.pid(), rd);
  if (rfd < 0) return KResult::Fail(E_MFILE);
  int64_t wfd = AllocFd(ctx.pid(), wr);
  if (wfd < 0) {
    CloseFd(ctx.pid(), rfd);
    return KResult::Fail(E_MFILE);
  }
  pipes_[static_cast<size_t>(pipe_id)].readers = 1;
  pipes_[static_cast<size_t>(pipe_id)].writers = 1;
  if (!ctx.write_mem(out, &rfd, 8) || !ctx.write_mem(out + 8, &wfd, 8)) {
    return KResult::Fail(E_FAULT);
  }
  return KResult::Ok(0);
}

KResult KernelRuntime::DoSpawn(KernelContext& ctx) {
  if (!spawn_) return KResult::Fail(E_AGAIN);
  auto symbol = ReadPath(ctx, static_cast<uint64_t>(ctx.reg(isa::Reg::R1)));
  if (!symbol) return KResult::Fail(E_NOENT);
  auto pid = spawn_(*symbol);
  if (!pid.ok()) return KResult::Fail(E_NOENT);
  // The child inherits the parent's open pipe descriptors (fork-lite):
  // duplicate the parent's fd table entries that refer to pipes.
  for (const auto& [fd, file] : fds_[ctx.pid()]) {
    if (file.kind == FdKind::PipeRead || file.kind == FdKind::PipeWrite) {
      fds_[pid.value()].emplace(fd, file);
      next_fd_[pid.value()] =
          std::max(next_fd_.count(pid.value()) ? next_fd_[pid.value()] : 3,
                   fd + 1);
      Pipe& p = pipes_[static_cast<size_t>(file.pipe_id)];
      if (file.kind == FdKind::PipeRead) p.readers++;
      else p.writers++;
    }
  }
  return KResult::Ok(pid.value());
}

KResult KernelRuntime::DoSocket(KernelContext& ctx) {
  sockets_.push_back(Socket{});
  OpenFile f;
  f.kind = FdKind::Socket;
  f.sock_id = static_cast<int>(sockets_.size() - 1);
  int64_t fd = AllocFd(ctx.pid(), f);
  if (fd < 0) return KResult::Fail(E_MFILE);
  return KResult::Ok(fd);
}

KResult KernelRuntime::DoConnect(KernelContext& ctx) {
  int64_t fd = ctx.reg(isa::Reg::R1);
  int64_t port = ctx.reg(isa::Reg::R2);
  OpenFile* f = GetFd(ctx.pid(), fd);
  if (!f || f->kind != FdKind::Socket) return KResult::Fail(E_BADF);
  if (std::find(listening_.begin(), listening_.end(), port) ==
      listening_.end()) {
    return KResult::Fail(E_CONNREFUSED);
  }
  sockets_[static_cast<size_t>(f->sock_id)].connected = true;
  return KResult::Ok(0);
}

KResult KernelRuntime::DoSend(KernelContext& ctx) {
  int64_t fd = ctx.reg(isa::Reg::R1);
  uint64_t buf = static_cast<uint64_t>(ctx.reg(isa::Reg::R2));
  uint64_t count = static_cast<uint64_t>(ctx.reg(isa::Reg::R3));
  OpenFile* f = GetFd(ctx.pid(), fd);
  if (!f || f->kind != FdKind::Socket) return KResult::Fail(E_BADF);
  Socket& s = sockets_[static_cast<size_t>(f->sock_id)];
  if (s.reset) return KResult::Fail(E_CONNRESET);
  if (!s.connected) return KResult::Fail(E_PIPE);
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t byte = 0;
    if (!ctx.read_mem(buf + i, &byte, 1)) return KResult::Fail(E_CONNRESET);
    s.tx.push_back(byte);
  }
  return KResult::Ok(static_cast<int64_t>(count));
}

KResult KernelRuntime::DoRecv(KernelContext& ctx) {
  int64_t fd = ctx.reg(isa::Reg::R1);
  uint64_t buf = static_cast<uint64_t>(ctx.reg(isa::Reg::R2));
  uint64_t count = static_cast<uint64_t>(ctx.reg(isa::Reg::R3));
  OpenFile* f = GetFd(ctx.pid(), fd);
  if (!f || f->kind != FdKind::Socket) return KResult::Fail(E_BADF);
  Socket& s = sockets_[static_cast<size_t>(f->sock_id)];
  if (s.reset) return KResult::Fail(E_CONNRESET);
  if (s.rx.empty()) return KResult::Ok(0);  // no data: synthetic EOF
  uint64_t n = std::min<uint64_t>(count, s.rx.size());
  for (uint64_t i = 0; i < n; ++i) {
    uint8_t byte = s.rx.front();
    s.rx.pop_front();
    if (!ctx.write_mem(buf + i, &byte, 1)) return KResult::Fail(E_CONNRESET);
  }
  return KResult::Ok(static_cast<int64_t>(n));
}

KResult KernelRuntime::DoWait(KernelContext& ctx) {
  int pid = static_cast<int>(ctx.reg(isa::Reg::R1));
  auto it = exited_.find(pid);
  if (it != exited_.end()) return KResult::Ok(it->second);
  // Unknown pid vs still-running is distinguished by the scheduler having
  // registered the pid at spawn; the runtime only sees exit records, so a
  // never-spawned pid blocks forever — the Machine run loop detects global
  // deadlock and reports it. Known-bad pids (negative) fail fast.
  if (pid < 0) return KResult::Fail(E_CHILD);
  return KResult::Block();
}

}  // namespace lfi::kernel
