// KernelRuntime: native semantics behind the KCALL instruction.
//
// The kernel *image* (kernel_image.hpp) is what the profiler analyzes; this
// class is what actually happens when a handler executes its KCALL. It owns
// the machine-wide state: an in-memory filesystem, pipes, loopback sockets,
// the process exit table, and the spawn hook. Per-process state (registers,
// memory, heap) is reached through the KernelContext interface, implemented
// by vm::Process — keeping this module independent of the VM.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "kernel/syscalls.hpp"
#include "util/result.hpp"

namespace lfi::kernel {

/// Window into the calling process, implemented by vm::Process.
class KernelContext {
 public:
  virtual ~KernelContext() = default;

  virtual int64_t reg(isa::Reg r) const = 0;
  virtual void set_reg(isa::Reg r, int64_t v) = 0;
  virtual bool read_mem(uint64_t addr, void* out, uint64_t len) = 0;
  virtual bool write_mem(uint64_t addr, const void* src, uint64_t len) = 0;
  /// Bump allocation from the process heap; 0 when the heap cap is hit.
  virtual uint64_t alloc_heap(uint64_t size) = 0;
  virtual int pid() const = 0;
  virtual void request_exit(int64_t code) = 0;
};

/// Outcome of a native operation.
struct KResult {
  enum class Kind { Ok, Fail, Block } kind = Kind::Ok;
  int64_t value = 0;       // success return value
  int32_t error = 0;       // errno on Fail

  static KResult Ok(int64_t v) { return {Kind::Ok, v, 0}; }
  static KResult Fail(int32_t err) { return {Kind::Fail, 0, err}; }
  static KResult Block() { return {Kind::Block, 0, 0}; }
};

/// File descriptor kinds.
enum class FdKind { File, PipeRead, PipeWrite, Socket };

class KernelRuntime {
 public:
  struct OpenFile {
    FdKind kind = FdKind::File;
    std::string path;   // File
    uint64_t pos = 0;   // File
    int pipe_id = -1;   // Pipe*
    int sock_id = -1;   // Socket
  };

  struct Pipe {
    std::deque<uint8_t> buf;
    int readers = 0;
    int writers = 0;
  };

  struct Socket {
    std::deque<uint8_t> rx;
    std::vector<uint8_t> tx;
    bool connected = false;
    bool reset = false;
  };

  /// The kernel's complete mutable state: filesystem, listening ports, fd
  /// tables, pipes, sockets, the exit table, and the kcall counter. What
  /// Checkpoint() pins and what vm::Machine::Snapshot() carries — a
  /// restored machine resumes mid-run with its descriptors and counters
  /// exactly as they were.
  struct State {
    std::map<std::string, std::vector<uint8_t>> files;
    std::vector<int64_t> listening;
    std::map<int, std::map<int64_t, OpenFile>> fds;
    std::map<int, int64_t> next_fd;
    std::vector<Pipe> pipes;
    std::vector<Socket> sockets;
    std::map<int, int64_t> exited;
    uint64_t kcalls = 0;
  };

  KernelRuntime();

  /// Execute KCALL `number` on behalf of `ctx`. Arguments are in R1..R5.
  KResult Invoke(uint16_t number, KernelContext& ctx);

  // -- host-side configuration ---------------------------------------------
  /// Snapshot the full host-side state — filesystem and listening ports,
  /// but also fd tables, pipes, sockets, the exit table and the kcall
  /// counter — so a later Reset() restores exactly this point. Typically
  /// taken at setup time (no descriptors yet), which degenerates to the
  /// historical filesystem+ports checkpoint.
  void Checkpoint();
  bool has_checkpoint() const { return checkpoint_.has_value(); }
  /// Return to the Checkpoint()ed state (or to a pristine kernel when no
  /// checkpoint was taken). Cheap: this is what makes a kernel reusable
  /// across campaign scenarios.
  void Reset();

  /// Copy out / reinstate the complete mutable state (snapshot support).
  State CaptureState() const;
  void RestoreState(const State& state);

  /// Create / overwrite a file in the in-memory FS.
  void add_file(const std::string& path, std::vector<uint8_t> contents);
  bool has_file(const std::string& path) const;
  /// Contents of a file (empty if missing).
  std::vector<uint8_t> file_contents(const std::string& path) const;

  /// Mark a TCP-like port as listening, so connect() to it succeeds.
  void listen(int64_t port) { listening_.insert(listening_.end(), port); }

  /// Queue bytes that a subsequent recv() on `(pid, fd)` will observe.
  bool feed_socket(int pid, int64_t fd, const std::vector<uint8_t>& bytes);
  /// Bytes sent so far through `(pid, fd)`.
  std::vector<uint8_t> socket_sent(int pid, int64_t fd) const;

  /// Hook used by SYS_SPAWN: resolve a symbol name to a new process, return
  /// its pid. Installed by vm::Machine.
  using SpawnHook = std::function<Result<int>(const std::string& symbol)>;
  void set_spawn_hook(SpawnHook hook) { spawn_ = std::move(hook); }

  /// Called by the scheduler when a process terminates: releases its fds
  /// (closing pipe ends) and records the exit code for wait().
  void on_process_exit(int pid, int64_t code);

  /// Exit code of a terminated process, if any.
  std::optional<int64_t> exit_code(int pid) const;

  /// Per-process open descriptor count (testing / leak checks).
  size_t open_fd_count(int pid) const;

  /// Total number of KCALLs serviced (used by efficiency accounting).
  uint64_t kcall_count() const { return kcalls_; }

 private:
  // Syscall implementations (args already fetched from ctx).
  KResult DoOpen(KernelContext& ctx);
  KResult DoClose(KernelContext& ctx);
  KResult DoRead(KernelContext& ctx);
  KResult DoWrite(KernelContext& ctx);
  KResult DoLseek(KernelContext& ctx);
  KResult DoStat(KernelContext& ctx);
  KResult DoUnlink(KernelContext& ctx);
  KResult DoFsync(KernelContext& ctx);
  KResult DoAlloc(KernelContext& ctx);
  KResult DoFree(KernelContext& ctx);
  KResult DoPipe(KernelContext& ctx);
  KResult DoSpawn(KernelContext& ctx);
  KResult DoSocket(KernelContext& ctx);
  KResult DoConnect(KernelContext& ctx);
  KResult DoSend(KernelContext& ctx);
  KResult DoRecv(KernelContext& ctx);
  KResult DoWait(KernelContext& ctx);

  /// Read a NUL-terminated string (capped) from process memory.
  std::optional<std::string> ReadPath(KernelContext& ctx, uint64_t addr);

  OpenFile* GetFd(int pid, int64_t fd);
  int64_t AllocFd(int pid, OpenFile file);
  void CloseFd(int pid, int64_t fd);

  std::map<std::string, std::vector<uint8_t>> files_;
  /// Full state captured by Checkpoint().
  std::optional<State> checkpoint_;
  std::map<int, std::map<int64_t, OpenFile>> fds_;   // pid -> fd table
  std::map<int, int64_t> next_fd_;
  std::vector<Pipe> pipes_;
  std::vector<Socket> sockets_;
  std::vector<int64_t> listening_;
  std::map<int, int64_t> exited_;                    // pid -> exit code
  SpawnHook spawn_;
  uint64_t kcalls_ = 0;

  static constexpr int64_t kMaxFdsPerProcess = 64;
  static constexpr size_t kPipeCapacity = 65536;
};

}  // namespace lfi::kernel
