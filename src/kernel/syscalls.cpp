#include "kernel/syscalls.hpp"

namespace lfi::kernel {

const std::vector<SyscallSpec>& SyscallTable() {
  static const std::vector<SyscallSpec> table = {
      {Sys::EXIT, "exit", {}},
      {Sys::OPEN, "open", {E_NOENT, E_ACCES, E_MFILE, E_INTR}},
      // The paper's §3.3 example: close can fail with EBADF, EIO or EINTR
      // on Linux (EIO being the code BSD man pages omit).
      {Sys::CLOSE, "close", {E_BADF, E_IO, E_INTR}},
      {Sys::READ, "read", {E_BADF, E_IO, E_INTR, E_AGAIN}},
      {Sys::WRITE, "write", {E_BADF, E_IO, E_INTR, E_AGAIN, E_NOSPC, E_PIPE}},
      {Sys::LSEEK, "lseek", {E_BADF, E_INVAL}},
      {Sys::STAT, "stat", {E_NOENT, E_ACCES}},
      {Sys::UNLINK, "unlink", {E_NOENT, E_ACCES, E_BUSY}},
      {Sys::FSYNC, "fsync", {E_BADF, E_IO}},
      {Sys::ALLOC, "alloc", {E_NOMEM}},
      {Sys::FREE, "free", {E_INVAL}},
      {Sys::PIPE, "pipe", {E_MFILE, E_FAULT}},
      {Sys::SPAWN, "spawn", {E_AGAIN, E_NOMEM, E_NOENT}},
      {Sys::SOCKET, "socket", {E_MFILE, E_ACCES}},
      {Sys::CONNECT, "connect", {E_CONNREFUSED, E_INTR, E_BADF}},
      {Sys::SEND, "send", {E_PIPE, E_CONNRESET, E_AGAIN, E_INTR, E_BADF}},
      {Sys::RECV, "recv", {E_CONNRESET, E_AGAIN, E_INTR, E_BADF}},
      {Sys::GETPID, "getpid", {}},
      {Sys::YIELD, "yield", {}},
      {Sys::WAIT, "wait", {E_CHILD, E_INTR}},
  };
  return table;
}

const SyscallSpec* FindSyscall(uint16_t number) {
  for (const auto& spec : SyscallTable()) {
    if (static_cast<uint16_t>(spec.number) == number) return &spec;
  }
  return nullptr;
}

int ErrorIndex(const SyscallSpec& spec, int32_t err) {
  for (size_t i = 0; i < spec.errors.size(); ++i) {
    if (spec.errors[i] == err) return static_cast<int>(i);
  }
  return -1;
}

std::string HandlerName(const SyscallSpec& spec) { return "sys_" + spec.name; }

}  // namespace lfi::kernel
