// Syscall numbering and per-syscall error sets.
//
// This table is the single source of truth for three artifacts that must
// agree with each other:
//   1. the kernel image (ISA handlers whose error paths materialize the
//      -errno constants — what the LFI profiler's kernel analysis reads),
//   2. the kernel runtime (native semantics; maps a failure to the index of
//      its errno within the spec so the handler code selects the constant),
//   3. the synthetic libc (wrappers that translate -errno returns into the
//      -1 + errno TLS convention, reproducing the paper's §3.2 listing).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/errno_table.hpp"

namespace lfi::kernel {

enum class Sys : uint16_t {
  EXIT = 1,
  OPEN,
  CLOSE,
  READ,
  WRITE,
  LSEEK,
  STAT,
  UNLINK,
  FSYNC,
  ALLOC,
  FREE,
  PIPE,
  SPAWN,
  SOCKET,
  CONNECT,
  SEND,
  RECV,
  GETPID,
  YIELD,
  WAIT,
};

struct SyscallSpec {
  Sys number;
  std::string name;               // e.g. "read"; handler exported as "sys_read"
  std::vector<int32_t> errors;    // errno values this syscall can produce
};

/// All syscalls, ordered by number.
const std::vector<SyscallSpec>& SyscallTable();

/// Lookup by raw number; nullptr if unknown.
const SyscallSpec* FindSyscall(uint16_t number);

/// Index of `err` within spec.errors, or -1.
int ErrorIndex(const SyscallSpec& spec, int32_t err);

/// Handler export name for a spec ("sys_" + name).
std::string HandlerName(const SyscallSpec& spec);

}  // namespace lfi::kernel
