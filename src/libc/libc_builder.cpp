#include "libc/libc_builder.hpp"

#include "isa/codebuilder.hpp"
#include "kernel/syscalls.hpp"

namespace lfi::libc {

using isa::CodeBuilder;
using isa::Reg;
using kernel::Sys;

namespace {

/// Emit a standard syscall wrapper:
///   r0 = syscall(args...); if (r0 < 0) { errno = -r0; return fail_value; }
/// This is the shape of the paper's §3.2 glibc listing (there: edx = -eax;
/// *errno_addr = edx; eax |= -1). `fail_value` is -1 for scalar functions
/// and 0 (NULL) for pointer-returning ones.
void EmitWrapper(CodeBuilder& b, const std::string& name, Sys sys,
                 int arg_count, int64_t fail_value) {
  b.begin_function(name);
  static constexpr Reg kArgRegs[] = {Reg::R1, Reg::R2, Reg::R3, Reg::R4,
                                     Reg::R5};
  for (int i = 0; i < arg_count; ++i) b.load_arg(kArgRegs[i], i);
  b.syscall(static_cast<uint16_t>(sys));
  auto ok = b.new_label();
  b.cmp_ri(Reg::R0, 0);
  b.jge(ok);
  // errno = -r0  (the kernel returns -errno)
  b.mov_rr(Reg::R1, Reg::R0);
  b.neg(Reg::R1);
  b.lea_tls(Reg::R2, isa::kErrnoTlsOffset);
  b.store(Reg::R2, 0, Reg::R1);
  b.mov_ri(Reg::R0, fail_value);
  b.leave_ret();
  b.bind(ok);
  b.leave_ret();
  b.end_function();
}

}  // namespace

sso::SharedObject BuildLibc() {
  CodeBuilder b;
  b.reserve_tls(8);  // errno lives at module-relative TLS offset 0

  EmitWrapper(b, "open", Sys::OPEN, 2, -1);
  EmitWrapper(b, "close", Sys::CLOSE, 1, -1);
  EmitWrapper(b, "read", Sys::READ, 3, -1);
  EmitWrapper(b, "write", Sys::WRITE, 3, -1);
  EmitWrapper(b, "lseek", Sys::LSEEK, 3, -1);
  EmitWrapper(b, "stat", Sys::STAT, 2, -1);
  EmitWrapper(b, "unlink", Sys::UNLINK, 1, -1);
  EmitWrapper(b, "fsync", Sys::FSYNC, 1, -1);
  EmitWrapper(b, "pipe", Sys::PIPE, 1, -1);
  EmitWrapper(b, "spawn", Sys::SPAWN, 1, -1);
  EmitWrapper(b, "waitpid", Sys::WAIT, 1, -1);
  EmitWrapper(b, "socket", Sys::SOCKET, 0, -1);
  EmitWrapper(b, "connect", Sys::CONNECT, 2, -1);
  EmitWrapper(b, "send", Sys::SEND, 3, -1);
  EmitWrapper(b, "recv", Sys::RECV, 3, -1);

  // malloc: pointer-returning; failure is NULL with errno ENOMEM. With the
  // profiler's optional "0-only return is a null-pointer error" reading,
  // this is the classic unchecked-malloc fault the paper motivates with.
  EmitWrapper(b, "malloc", Sys::ALLOC, 1, 0);

  // calloc(n, m): computes n*m and delegates to malloc — a dependent
  // exported function the profiler must recurse through.
  b.begin_function("calloc");
  b.load_arg(Reg::R1, 0);
  b.load_arg(Reg::R2, 1);
  b.mul_rr(Reg::R1, Reg::R2);
  b.push(Reg::R1);
  b.call_sym("malloc");
  b.add_ri(Reg::SP, 8);
  b.leave_ret();
  b.end_function();

  // realloc(p, n): the bump allocator cannot grow in place; allocate fresh.
  b.begin_function("realloc");
  b.load_arg(Reg::R1, 1);
  b.push(Reg::R1);
  b.call_sym("malloc");
  b.add_ri(Reg::SP, 8);
  b.leave_ret();
  b.end_function();

  // free(p): void return; no error reporting (glibc-like).
  b.begin_function("free");
  b.load_arg(Reg::R1, 0);
  b.syscall(static_cast<uint16_t>(Sys::FREE));
  b.mov_ri(Reg::R0, 0);
  b.leave_ret();
  b.end_function();

  // readdir(fd, entry_buf): pointer-returning, dependent on exported read().
  // Returns entry_buf on success, NULL on EOF or error (errno left as read
  // set it) — the function the paper's example scenario injects on.
  for (const char* name : {"readdir", "readdir64"}) {
    b.begin_function(name);
    b.load_arg(Reg::R1, 0);
    b.load_arg(Reg::R2, 1);
    b.mov_ri(Reg::R3, 64);  // fixed-size directory entry
    b.push(Reg::R3);
    b.push(Reg::R2);
    b.push(Reg::R1);
    b.call_sym("read");
    b.add_ri(Reg::SP, 24);
    auto fail = b.new_label();
    b.cmp_ri(Reg::R0, 0);
    b.jle(fail);
    b.load_arg(Reg::R0, 1);  // success: return the entry buffer
    b.leave_ret();
    b.bind(fail);
    b.mov_ri(Reg::R0, 0);    // NULL
    b.leave_ret();
    b.end_function();
  }

  // getpid(): cannot fail.
  b.begin_function("getpid");
  b.syscall(static_cast<uint16_t>(Sys::GETPID));
  b.leave_ret();
  b.end_function();

  // geterrno(): applications read errno through this accessor.
  b.begin_function("geterrno");
  b.lea_tls(Reg::R1, isa::kErrnoTlsOffset);
  b.load(Reg::R0, Reg::R1, 0);
  b.leave_ret();
  b.end_function();

  // exit(code) / abort(): do not return.
  b.begin_function("exit");
  b.load_arg(Reg::R1, 0);
  b.syscall(static_cast<uint16_t>(Sys::EXIT));
  b.halt();  // unreachable; keeps the function well-terminated
  b.end_function();

  b.begin_function("abort");
  b.abort();
  b.end_function();

  return sso::FromCodeUnit(kLibcName, b.Finish());
}

const std::map<std::string, Prototype>& LibcPrototypes() {
  static const std::map<std::string, Prototype> protos = {
      {"open", {ReturnType::Scalar, 2}},
      {"close", {ReturnType::Scalar, 1}},
      {"read", {ReturnType::Scalar, 3}},
      {"write", {ReturnType::Scalar, 3}},
      {"lseek", {ReturnType::Scalar, 3}},
      {"stat", {ReturnType::Scalar, 2}},
      {"unlink", {ReturnType::Scalar, 1}},
      {"fsync", {ReturnType::Scalar, 1}},
      {"pipe", {ReturnType::Scalar, 1}},
      {"spawn", {ReturnType::Scalar, 1}},
      {"waitpid", {ReturnType::Scalar, 1}},
      {"socket", {ReturnType::Scalar, 0}},
      {"connect", {ReturnType::Scalar, 2}},
      {"send", {ReturnType::Scalar, 3}},
      {"recv", {ReturnType::Scalar, 3}},
      {"malloc", {ReturnType::Pointer, 1}},
      {"calloc", {ReturnType::Pointer, 2}},
      {"realloc", {ReturnType::Pointer, 2}},
      {"free", {ReturnType::Void, 1}},
      {"readdir", {ReturnType::Pointer, 2}},
      {"readdir64", {ReturnType::Pointer, 2}},
      {"getpid", {ReturnType::Scalar, 0}},
      {"geterrno", {ReturnType::Scalar, 0}},
      {"exit", {ReturnType::Void, 1}},
      {"abort", {ReturnType::Void, 0}},
  };
  return protos;
}

const std::vector<std::string>& FileIoFunctions() {
  static const std::vector<std::string> fns = {
      "open", "close",  "read",    "write",     "lseek",
      "stat", "unlink", "fsync",   "readdir",   "readdir64"};
  return fns;
}

const std::vector<std::string>& MemoryFunctions() {
  static const std::vector<std::string> fns = {"malloc", "calloc", "realloc"};
  return fns;
}

const std::vector<std::string>& SocketFunctions() {
  static const std::vector<std::string> fns = {"socket", "connect", "send",
                                               "recv"};
  return fns;
}

}  // namespace lfi::libc
