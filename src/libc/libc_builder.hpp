// The synthetic GNU libc.
//
// Generates "libc.so": wrappers around kernel syscalls that follow the
// glibc error convention the paper's §3.2 listing shows — on a negative
// syscall return, store the negated value into the errno TLS variable and
// return -1 (or NULL for pointer-returning functions). The LFI profiler
// must recover, with no help, exactly what the paper recovers for glibc:
// e.g. close() -> retval -1 with TLS side-effect values {-EBADF, -EIO,
// -EINTR} propagated from the kernel image.
//
// Also provides prototype metadata (the header-file knowledge a tester has
// but the profiler must not need) used by Table 1 accounting and by the
// ready-made faultload groups.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sso/sso.hpp"

namespace lfi::libc {

inline constexpr const char* kLibcName = "libc.so";

/// open() flag values exposed to applications.
inline constexpr int64_t O_RDONLY = 0;
inline constexpr int64_t O_WRONLY = 1;
inline constexpr int64_t O_RDWR = 2;
inline constexpr int64_t O_CREAT = 0x40;
inline constexpr int64_t O_TRUNC = 0x200;
inline constexpr int64_t O_APPEND = 0x400;

enum class ReturnType { Void, Scalar, Pointer };

struct Prototype {
  ReturnType return_type = ReturnType::Scalar;
  int arg_count = 0;
};

/// Build the synthetic libc shared object.
sso::SharedObject BuildLibc();

/// Header-file knowledge: function name -> prototype.
const std::map<std::string, Prototype>& LibcPrototypes();

/// Function groups for the ready-made faultloads (§4: "all faults related
/// to file I/O, all memory allocation faults, or all socket I/O faults").
const std::vector<std::string>& FileIoFunctions();
const std::vector<std::string>& MemoryFunctions();
const std::vector<std::string>& SocketFunctions();

}  // namespace lfi::libc
