#include "serve/coordinator.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netdb.h>
#include <poll.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

namespace lfi::serve {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// connect(2) with EINTR handling. A signal can interrupt a blocking
/// connect after the handshake is already in flight; re-calling connect
/// then fails with EALREADY/EISCONN, so the correct recovery is to poll
/// for writability and read the final status from SO_ERROR.
int ConnectRetryEintr(int fd, const struct sockaddr* addr, socklen_t len) {
  if (::connect(fd, addr, len) == 0) return 0;
  if (errno != EINTR) return -1;
  struct pollfd p = {};
  p.fd = fd;
  p.events = POLLOUT;
  int rc;
  do {
    rc = ::poll(&p, 1, -1);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return -1;
  int so_error = 0;
  socklen_t so_len = sizeof(so_error);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len) < 0) {
    return -1;
  }
  if (so_error != 0) {
    errno = so_error;
    return -1;
  }
  return 0;
}

}  // namespace

/// Per-Run shared state. One mutex guards all of it: batch bookkeeping is
/// tiny compared to batch execution, so contention is irrelevant.
struct FabricCoordinator::RunState {
  struct Batch {
    size_t start = 0;
    size_t count = 0;
    int attempts = 0;  // dispatches so far (first send + retries + steals)
    int inflight = 0;  // copies currently out on a connection
    bool done = false; // a full reply has been applied
  };

  const std::vector<campaign::Scenario>* scenarios = nullptr;
  std::vector<Batch> batches;
  std::vector<campaign::ScenarioResult> results;
  std::vector<uint8_t> filled;
  std::map<std::string, vm::CoverageBitmap> coverage;
  std::mutex mu;
};

FabricCoordinator::FabricCoordinator(TargetSpec target,
                                     std::vector<core::FaultProfile> profiles,
                                     campaign::CampaignOptions options,
                                     FabricOptions fabric)
    : target_(std::move(target)),
      profiles_(std::move(profiles)),
      options_(std::move(options)),
      fabric_(fabric) {}

FabricCoordinator::~FabricCoordinator() {
  for (Connection& conn : connections_) {
    if (conn.fd < 0) continue;
    if (conn.alive) (void)WriteFrame(conn.fd, MsgType::Shutdown, {});
    ::close(conn.fd);
    conn.fd = -1;
  }
}

Status FabricCoordinator::Handshake(Connection& conn) {
  int one = 1;
  ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  std::vector<uint8_t> hello;
  PutU32(hello, kWireVersion);
  if (auto st = WriteFrame(conn.fd, MsgType::Hello, hello); !st.ok()) {
    return st;
  }
  auto reply = ReadFrame(conn.fd, fabric_.batch_timeout_ms);
  if (!reply.ok()) return Err(reply.error());
  if (reply.value().type != MsgType::Hello) {
    return Err("fabric: expected Hello from worker");
  }
  Reader r(reply.value().payload);
  uint32_t version = 0;
  if (!r.U32(&version) || version != kWireVersion) {
    return Err("fabric: worker protocol version mismatch");
  }
  ConfigureMsg msg;
  msg.target = target_;
  msg.profiles = profiles_;
  msg.options = options_;
  // Each worker process runs its batches on one machine; fabric
  // parallelism comes from the worker *count*. `lfi serve --jobs` can
  // override this worker-side.
  msg.options.jobs = 1;
  if (auto st = WriteFrame(conn.fd, MsgType::Configure, EncodeConfigure(msg));
      !st.ok()) {
    return st;
  }
  auto ack = ReadFrame(conn.fd, fabric_.batch_timeout_ms);
  if (!ack.ok()) return Err(ack.error());
  if (ack.value().type == MsgType::Error) {
    Reader er(ack.value().payload);
    std::string message;
    (void)er.Str(&message);
    return Err("fabric: worker rejected configure: " + message);
  }
  if (ack.value().type != MsgType::ConfigureOk) {
    return Err("fabric: expected ConfigureOk from worker");
  }
  return Status::Ok();
}

Status FabricCoordinator::AddWorkerFd(int fd, std::string label) {
  Connection conn;
  conn.fd = fd;
  conn.label = std::move(label);
  if (auto st = Handshake(conn); !st.ok()) {
    ::close(fd);
    return st;
  }
  conn.alive = true;
  connections_.push_back(std::move(conn));
  ++stats_.workers_connected;
  return Status::Ok();
}

Status FabricCoordinator::ConnectWorker(const std::string& host,
                                        uint16_t port) {
  struct addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  std::string service = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    return Err("fabric: resolve " + host + ": " + gai_strerror(rc));
  }
  int fd = -1;
  std::string err = "fabric: no addresses for " + host;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      err = std::string("fabric: socket: ") + strerror(errno);
      continue;
    }
    if (ConnectRetryEintr(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    err = "fabric: connect " + host + ":" + service + ": " + strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) return Err(std::move(err));
  return AddWorkerFd(fd, host + ":" + service);
}

size_t FabricCoordinator::live_workers() const {
  size_t n = 0;
  for (const Connection& conn : connections_) {
    if (conn.alive) ++n;
  }
  return n;
}

campaign::CampaignRunner& FabricCoordinator::LocalRunner() {
  if (!local_runner_) {
    auto setup = MakeSetup(target_);
    // A spec the coordinator itself built cannot normally fail to parse;
    // if it somehow does, an empty machine yields SetupError per scenario,
    // which is also what a worker would have reported.
    campaign::MachineSetup fallback =
        setup.ok() ? std::move(setup).take()
                   : campaign::MachineSetup([](vm::Machine&) {});
    local_runner_ = std::make_unique<campaign::CampaignRunner>(
        std::move(fallback), profiles_, options_);
  }
  return *local_runner_;
}

void FabricCoordinator::WorkerLoop(size_t conn_index, RunState& state) {
  Connection& conn = connections_[conn_index];
  for (;;) {
    // Claim a batch: a never-or-not-currently-dispatched one first, else
    // steal the least-duplicated in-flight batch (straggler cover).
    size_t claimed = SIZE_MAX;
    {
      std::lock_guard<std::mutex> lock(state.mu);
      size_t best_steal = SIZE_MAX;
      for (size_t b = 0; b < state.batches.size(); ++b) {
        RunState::Batch& batch = state.batches[b];
        if (batch.done || batch.attempts >= fabric_.max_batch_attempts) {
          continue;
        }
        if (batch.inflight == 0) {
          claimed = b;
          break;
        }
        if (best_steal == SIZE_MAX ||
            batch.inflight < state.batches[best_steal].inflight) {
          best_steal = b;
        }
      }
      if (claimed == SIZE_MAX) claimed = best_steal;
      if (claimed == SIZE_MAX) return;  // nothing left this thread can do
      RunState::Batch& batch = state.batches[claimed];
      if (batch.inflight > 0) {
        ++stats_.batches_stolen;
      } else if (batch.attempts > 0) {
        ++stats_.batches_retried;
      }
      ++batch.attempts;
      ++batch.inflight;
      ++stats_.batches_dispatched;
    }

    RunState::Batch& batch = state.batches[claimed];
    BatchMsg msg;
    for (size_t i = 0; i < batch.count; ++i) {
      msg.indices.push_back(batch.start + i);
      msg.scenarios.push_back((*state.scenarios)[batch.start + i]);
    }

    bool applied = false;
    Status failure;
    if (auto st = WriteFrame(conn.fd, MsgType::RunBatch, EncodeBatch(msg));
        !st.ok()) {
      failure = st;
    } else {
      auto reply = ReadFrame(conn.fd, fabric_.batch_timeout_ms);
      if (!reply.ok()) {
        failure = Err(reply.error());
      } else if (reply.value().type != MsgType::BatchResult) {
        failure = Err("fabric: unexpected reply from " + conn.label);
      } else {
        auto decoded = DecodeBatchResult(reply.value().payload);
        if (!decoded.ok()) {
          failure = Err(decoded.error());
        } else {
          std::lock_guard<std::mutex> lock(state.mu);
          --batch.inflight;
          // First full reply wins; a stolen batch's duplicate (identical
          // by determinism, so nothing is lost) is dropped.
          if (!batch.done) {
            bool valid = decoded.value().results.size() == batch.count;
            for (const campaign::ScenarioResult& res :
                 decoded.value().results) {
              if (res.index < batch.start ||
                  res.index >= batch.start + batch.count) {
                valid = false;
              }
            }
            if (valid) {
              for (campaign::ScenarioResult& res : decoded.value().results) {
                size_t idx = res.index;
                if (!state.filled[idx]) {
                  state.results[idx] = std::move(res);
                  state.filled[idx] = 1;
                }
              }
              for (auto& [mod, bitmap] : decoded.value().coverage) {
                state.coverage[mod].Merge(bitmap);
              }
              batch.done = true;
              stats_.scenarios_remote += batch.count;
            } else {
              // A worker that misaddresses results is not trustworthy.
              failure = Err("fabric: mismatched batch reply from " +
                            conn.label);
              ++batch.inflight;  // undone below on the failure path
            }
          }
          if (failure.ok()) applied = true;
        }
      }
    }

    if (!applied) {
      // The stream cannot be resynchronized after a failure mid-exchange:
      // drop the worker, put the batch back, let someone else run it.
      std::lock_guard<std::mutex> lock(state.mu);
      --batch.inflight;
      conn.alive = false;
      ::close(conn.fd);
      conn.fd = -1;
      ++stats_.workers_lost;
      return;
    }
  }
}

campaign::CampaignReport FabricCoordinator::Run(
    const std::vector<campaign::Scenario>& scenarios) {
  Clock::time_point begin = Clock::now();
  campaign::CampaignReport report;
  report.snapshot_requested = options_.snapshot || options_.snapshot_tree;
  if (scenarios.empty()) {
    report.Aggregate();
    return report;
  }

  RunState state;
  state.scenarios = &scenarios;
  state.results.resize(scenarios.size());
  state.filled.assign(scenarios.size(), 0);

  size_t live = live_workers();
  if (live > 0) {
    // Contiguous index-range batches: ~4 per live worker so there is
    // enough granularity to steal and retry, clamped so tiny campaigns
    // still form real batches and huge ones don't drown in round trips.
    size_t batch_size = fabric_.batch_size;
    if (batch_size == 0) {
      batch_size = (scenarios.size() + live * 4 - 1) / (live * 4);
      batch_size = std::clamp<size_t>(batch_size, 1, 64);
    }
    for (size_t start = 0; start < scenarios.size(); start += batch_size) {
      RunState::Batch batch;
      batch.start = start;
      batch.count = std::min(batch_size, scenarios.size() - start);
      state.batches.push_back(batch);
    }

    std::vector<std::thread> threads;
    for (size_t c = 0; c < connections_.size(); ++c) {
      if (!connections_[c].alive) continue;
      threads.emplace_back([this, c, &state] { WorkerLoop(c, state); });
    }
    for (std::thread& t : threads) t.join();
  }

  // Everything the fabric could not place — failed batches, batches that
  // ran out of attempts, or the whole campaign when no worker is
  // reachable — runs in-process on a machine built from the same target
  // spec. Graceful degradation, not partial reports.
  std::vector<size_t> missing;
  for (size_t i = 0; i < scenarios.size(); ++i) {
    if (!state.filled[i]) missing.push_back(i);
  }
  if (!missing.empty()) {
    std::vector<campaign::Scenario> local;
    local.reserve(missing.size());
    for (size_t idx : missing) local.push_back(scenarios[idx]);
    campaign::CampaignReport sub = LocalRunner().Run(local);
    for (size_t i = 0; i < missing.size(); ++i) {
      state.results[missing[i]] = std::move(sub.results[i]);
      state.results[missing[i]].index = missing[i];
      state.filled[missing[i]] = 1;
    }
    for (auto& [mod, bitmap] : sub.coverage) {
      state.coverage[mod].Merge(bitmap);
    }
    stats_.scenarios_local += missing.size();
  }

  report.results = std::move(state.results);
  report.coverage = std::move(state.coverage);
  report.Aggregate();
  report.wall_seconds = Seconds(begin, Clock::now());
  return report;
}

}  // namespace lfi::serve
