// Campaign fabric coordinator: shard a scenario set across worker
// processes and merge the results back into one CampaignReport that is
// byte-identical to a single-process run.
//
// The coordinator is a ScenarioDispatch, so `lfi campaign --workers N`
// and every explorer round fan out through it exactly where an in-process
// CampaignRunner would sit. The identity invariant rests on three facts:
//
//   1. Scenario outcomes depend only on the scenario (the runner's
//      existing contract) — so *where* a scenario ran, how batches were
//      cut, and whether a batch executed twice cannot change any result.
//   2. Results are placed by campaign-global index into a pre-sized
//      vector, first writer wins — so arrival order is irrelevant.
//   3. Union coverage is a bitwise OR of per-batch union bitmaps — OR is
//      commutative, associative, and idempotent, so stealing (which can
//      make the same batch's coverage arrive twice) merges to the same
//      union.
//
// Failure model: a worker that dies (EOF, socket error, reply timeout)
// loses its in-flight batch; the batch goes back to the queue and another
// worker — or, when dispatch attempts run out, the coordinator's own
// in-process fallback runner — re-executes it. Stealing covers the
// straggler case without failure: a worker with nothing left to do
// duplicates the slowest in-flight batch, and whichever copy lands first
// wins. A coordinator with zero reachable workers degrades to a plain
// in-process campaign. Run() always completes with a full result set.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "core/profile.hpp"
#include "serve/wire.hpp"
#include "util/result.hpp"

namespace lfi::serve {

struct FabricOptions {
  /// Scenarios per batch; 0 = auto (about 4 batches per live worker,
  /// clamped to [1, 64]) — small enough to steal and retry usefully,
  /// large enough to amortize a round trip.
  size_t batch_size = 0;
  /// Total dispatch attempts per batch (first send + retries + steals)
  /// before it falls through to the local runner.
  int max_batch_attempts = 3;
  /// Reply deadline per batch; a worker that blows it is treated as dead
  /// (the stream cannot be resynchronized mid-protocol). <= 0 = wait
  /// forever.
  int batch_timeout_ms = 120'000;
};

/// Counters for tests, CI assertions, and the CLI's stderr summary. Not
/// part of the report (they describe *how* work was spread, which is
/// exactly what the report must not depend on).
struct FabricStats {
  size_t workers_connected = 0;
  size_t workers_lost = 0;
  size_t batches_dispatched = 0;  // RunBatch frames sent, retries included
  size_t batches_retried = 0;     // re-dispatches after a worker failure
  size_t batches_stolen = 0;      // duplicate dispatches of in-flight work
  size_t scenarios_remote = 0;    // results filled from worker replies
  size_t scenarios_local = 0;     // results filled by the fallback runner
};

class FabricCoordinator : public campaign::ScenarioDispatch {
 public:
  /// `target` is the serializable target spec — the same one workers build
  /// their machines from and the local fallback runner uses, so every
  /// execution environment in the fabric is constructed from one source.
  FabricCoordinator(TargetSpec target,
                    std::vector<core::FaultProfile> profiles,
                    campaign::CampaignOptions options,
                    FabricOptions fabric = {});
  ~FabricCoordinator() override;

  FabricCoordinator(const FabricCoordinator&) = delete;
  FabricCoordinator& operator=(const FabricCoordinator&) = delete;

  /// Adopt an already-connected worker socket (SpawnLocalWorker's parent
  /// end) and run the handshake: Hello, then Configure with this
  /// coordinator's target + profiles + options. Takes ownership of `fd`.
  Status AddWorkerFd(int fd, std::string label = "local");

  /// Dial a `lfi serve` daemon and handshake.
  Status ConnectWorker(const std::string& host, uint16_t port);

  /// Workers that are connected and have not failed.
  size_t live_workers() const;

  /// Execute every scenario across the fabric. Blocks until all results
  /// are in (retrying / falling back as needed). Callable repeatedly —
  /// explorer rounds reuse the connections and the workers' warm machine
  /// pools.
  campaign::CampaignReport Run(
      const std::vector<campaign::Scenario>& scenarios) override;

  const FabricStats& stats() const { return stats_; }
  const campaign::CampaignOptions& options() const { return options_; }

 private:
  struct Connection {
    int fd = -1;
    std::string label;
    bool alive = false;
  };

  struct RunState;

  Status Handshake(Connection& conn);
  /// One connection's dispatch loop for one Run (executes on its own
  /// thread): claim batches, ship them, apply replies; on any socket
  /// failure mark the connection dead, requeue the batch, and exit.
  void WorkerLoop(size_t conn_index, RunState& state);
  /// The in-process safety net, built lazily from the same TargetSpec.
  campaign::CampaignRunner& LocalRunner();

  TargetSpec target_;
  std::vector<core::FaultProfile> profiles_;
  campaign::CampaignOptions options_;
  FabricOptions fabric_;
  std::vector<Connection> connections_;
  std::unique_ptr<campaign::CampaignRunner> local_runner_;
  FabricStats stats_;
};

}  // namespace lfi::serve
