#include "serve/wire.hpp"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cstring>

#include "sso/sso.hpp"

namespace lfi::serve {

namespace {

/// Largest element count a decoder will accept for a collection: every
/// encoded element costs at least one byte, so a count beyond the bytes
/// actually present is malformed — reject before reserving.
bool PlausibleCount(const Reader& r, uint64_t count) {
  return count <= r.size - r.pos;
}

}  // namespace

// -- primitive encode/decode -------------------------------------------------

void PutU8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutI64(std::vector<uint8_t>& out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::vector<uint8_t>& out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

void PutStr(std::vector<uint8_t>& out, const std::string& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  out.insert(out.end(), v.begin(), v.end());
}

void PutBytes(std::vector<uint8_t>& out, const std::vector<uint8_t>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  out.insert(out.end(), v.begin(), v.end());
}

bool Reader::U8(uint8_t* v) {
  if (pos + 1 > size) return false;
  *v = data[pos++];
  return true;
}

bool Reader::U32(uint32_t* v) {
  if (pos + 4 > size) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) out |= uint32_t{data[pos + i]} << (8 * i);
  pos += 4;
  *v = out;
  return true;
}

bool Reader::U64(uint64_t* v) {
  if (pos + 8 > size) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out |= uint64_t{data[pos + i]} << (8 * i);
  pos += 8;
  *v = out;
  return true;
}

bool Reader::I64(int64_t* v) {
  uint64_t raw = 0;
  if (!U64(&raw)) return false;
  *v = static_cast<int64_t>(raw);
  return true;
}

bool Reader::F64(double* v) {
  uint64_t raw = 0;
  if (!U64(&raw)) return false;
  *v = std::bit_cast<double>(raw);
  return true;
}

bool Reader::Str(std::string* v) {
  uint32_t len = 0;
  if (!U32(&len) || pos + len > size) return false;
  v->assign(reinterpret_cast<const char*>(data + pos), len);
  pos += len;
  return true;
}

bool Reader::Bytes(std::vector<uint8_t>* v) {
  uint32_t len = 0;
  if (!U32(&len) || pos + len > size) return false;
  v->assign(data + pos, data + pos + len);
  pos += len;
  return true;
}

// -- plan --------------------------------------------------------------------

void EncodePlan(std::vector<uint8_t>& out, const core::Plan& plan) {
  PutU64(out, plan.seed);
  PutU32(out, static_cast<uint32_t>(plan.triggers.size()));
  for (const core::FunctionTrigger& t : plan.triggers) {
    PutStr(out, t.function);
    PutU8(out, static_cast<uint8_t>(t.mode));
    PutU64(out, t.inject_call);
    PutF64(out, t.probability);
    PutU8(out, t.retval.has_value() ? 1 : 0);
    if (t.retval) PutI64(out, *t.retval);
    PutU8(out, t.errno_value.has_value() ? 1 : 0);
    if (t.errno_value) PutI64(out, *t.errno_value);
    PutU8(out, t.call_original ? 1 : 0);
    PutI64(out, t.max_injections);
    PutU32(out, static_cast<uint32_t>(t.stacktrace.size()));
    for (const core::FrameCondition& f : t.stacktrace) {
      PutU8(out, f.address.has_value() ? 1 : 0);
      if (f.address) PutU64(out, *f.address);
      PutStr(out, f.symbol);
    }
    PutU32(out, static_cast<uint32_t>(t.modifications.size()));
    for (const core::ArgModification& m : t.modifications) {
      PutI64(out, m.argument);
      PutU8(out, static_cast<uint8_t>(m.op));
      PutI64(out, m.value);
    }
  }
  PutU32(out, static_cast<uint32_t>(plan.seus.size()));
  for (const core::SeuFault& s : plan.seus) {
    PutU8(out, static_cast<uint8_t>(s.target));
    PutI64(out, s.reg);
    PutU64(out, s.offset);
    PutStr(out, s.module);
    PutI64(out, s.bit);
    PutU64(out, s.at_instruction);
    PutI64(out, s.pid);
    PutStr(out, s.window_module);
    PutU64(out, s.window_begin);
    PutU64(out, s.window_end);
  }
}

Result<core::Plan> DecodePlan(Reader& r) {
  core::Plan plan;
  uint32_t triggers = 0;
  if (!r.U64(&plan.seed) || !r.U32(&triggers) || !PlausibleCount(r, triggers)) {
    return Err("wire: truncated plan");
  }
  plan.triggers.reserve(triggers);
  for (uint32_t i = 0; i < triggers; ++i) {
    core::FunctionTrigger t;
    uint8_t mode = 0, has_retval = 0, has_errno = 0, call_original = 0;
    int64_t max_injections = -1;
    if (!r.Str(&t.function) || !r.U8(&mode) || !r.U64(&t.inject_call) ||
        !r.F64(&t.probability) || !r.U8(&has_retval)) {
      return Err("wire: truncated trigger");
    }
    if (mode > static_cast<uint8_t>(core::FunctionTrigger::Mode::Rotate)) {
      return Err("wire: bad trigger mode");
    }
    t.mode = static_cast<core::FunctionTrigger::Mode>(mode);
    if (has_retval) {
      int64_t v = 0;
      if (!r.I64(&v)) return Err("wire: truncated trigger");
      t.retval = v;
    }
    if (!r.U8(&has_errno)) return Err("wire: truncated trigger");
    if (has_errno) {
      int64_t v = 0;
      if (!r.I64(&v)) return Err("wire: truncated trigger");
      t.errno_value = static_cast<int32_t>(v);
    }
    if (!r.U8(&call_original) || !r.I64(&max_injections)) {
      return Err("wire: truncated trigger");
    }
    t.call_original = call_original != 0;
    t.max_injections = static_cast<int>(max_injections);
    uint32_t frames = 0;
    if (!r.U32(&frames) || !PlausibleCount(r, frames)) {
      return Err("wire: truncated stacktrace");
    }
    for (uint32_t f = 0; f < frames; ++f) {
      core::FrameCondition cond;
      uint8_t has_address = 0;
      if (!r.U8(&has_address)) return Err("wire: truncated stacktrace");
      if (has_address) {
        uint64_t addr = 0;
        if (!r.U64(&addr)) return Err("wire: truncated stacktrace");
        cond.address = addr;
      }
      if (!r.Str(&cond.symbol)) return Err("wire: truncated stacktrace");
      t.stacktrace.push_back(std::move(cond));
    }
    uint32_t mods = 0;
    if (!r.U32(&mods) || !PlausibleCount(r, mods)) {
      return Err("wire: truncated modifications");
    }
    for (uint32_t m = 0; m < mods; ++m) {
      core::ArgModification mod;
      int64_t argument = 0, value = 0;
      uint8_t op = 0;
      if (!r.I64(&argument) || !r.U8(&op) || !r.I64(&value)) {
        return Err("wire: truncated modification");
      }
      if (op > static_cast<uint8_t>(core::ArgModification::Op::Xor)) {
        return Err("wire: bad modification op");
      }
      mod.argument = static_cast<int>(argument);
      mod.op = static_cast<core::ArgModification::Op>(op);
      mod.value = value;
      t.modifications.push_back(mod);
    }
    plan.triggers.push_back(std::move(t));
  }
  uint32_t seus = 0;
  if (!r.U32(&seus) || !PlausibleCount(r, seus)) {
    return Err("wire: truncated plan");
  }
  plan.seus.reserve(seus);
  for (uint32_t i = 0; i < seus; ++i) {
    core::SeuFault s;
    uint8_t target = 0;
    int64_t reg = 0, bit = 0, pid = 1;
    if (!r.U8(&target) || !r.I64(&reg) || !r.U64(&s.offset) ||
        !r.Str(&s.module) || !r.I64(&bit) || !r.U64(&s.at_instruction) ||
        !r.I64(&pid) || !r.Str(&s.window_module) || !r.U64(&s.window_begin) ||
        !r.U64(&s.window_end)) {
      return Err("wire: truncated seu");
    }
    if (target > static_cast<uint8_t>(core::SeuFault::Target::Data)) {
      return Err("wire: bad seu target");
    }
    if (bit < 0 || bit > 63) return Err("wire: bad seu bit");
    s.target = static_cast<core::SeuFault::Target>(target);
    s.reg = static_cast<int>(reg);
    s.bit = static_cast<int>(bit);
    s.pid = static_cast<int>(pid);
    plan.seus.push_back(std::move(s));
  }
  return plan;
}

// -- scenario ----------------------------------------------------------------

void EncodeScenario(std::vector<uint8_t>& out,
                    const campaign::Scenario& scenario) {
  PutStr(out, scenario.name);
  EncodePlan(out, scenario.plan);
  PutStr(out, scenario.entry);
  PutU64(out, scenario.heap_cap_bytes);
  PutU8(out, scenario.warmup_instructions.has_value() ? 1 : 0);
  if (scenario.warmup_instructions) PutU64(out, *scenario.warmup_instructions);
  PutU64(out, scenario.weight);
}

Result<campaign::Scenario> DecodeScenario(Reader& r) {
  campaign::Scenario s;
  if (!r.Str(&s.name)) return Err("wire: truncated scenario");
  auto plan = DecodePlan(r);
  if (!plan.ok()) return Err(plan.error());
  s.plan = std::move(plan).take();
  uint8_t has_warmup = 0;
  if (!r.Str(&s.entry) || !r.U64(&s.heap_cap_bytes) || !r.U8(&has_warmup)) {
    return Err("wire: truncated scenario");
  }
  if (has_warmup) {
    uint64_t w = 0;
    if (!r.U64(&w)) return Err("wire: truncated scenario");
    s.warmup_instructions = w;
  }
  if (!r.U64(&s.weight)) return Err("wire: truncated scenario");
  return s;
}

// -- campaign options --------------------------------------------------------

void EncodeOptions(std::vector<uint8_t>& out,
                   const campaign::CampaignOptions& options) {
  PutI64(out, options.jobs);
  PutU8(out, static_cast<uint8_t>(options.shard));
  PutStr(out, options.entry);
  PutU64(out, options.max_instructions);
  PutU64(out, options.default_heap_cap);
  uint8_t flags = 0;
  if (options.track_coverage) flags |= 1u << 0;
  if (options.collect_scenario_coverage) flags |= 1u << 1;
  if (options.collect_replays) flags |= 1u << 2;
  if (options.snapshot) flags |= 1u << 3;
  if (options.snapshot_tree) flags |= 1u << 4;
  if (options.collect_state_digest) flags |= 1u << 5;
  if (options.controller.feasible_only) flags |= 1u << 6;
  PutU8(out, flags);
  PutU64(out, options.warmup_instructions);
  PutU8(out, options.exec_mode.has_value() ? 1 : 0);
  if (options.exec_mode) PutU8(out, static_cast<uint8_t>(*options.exec_mode));
  PutU8(out, options.controller.log_enabled ? 1 : 0);
  PutU8(out, options.controller.log_backtraces ? 1 : 0);
  PutU64(out, options.controller.log_capacity);
}

Result<campaign::CampaignOptions> DecodeOptions(Reader& r) {
  campaign::CampaignOptions o;
  int64_t jobs = 1;
  uint8_t shard = 0, flags = 0, has_exec = 0, log_enabled = 0,
          log_backtraces = 0;
  uint64_t log_capacity = 0;
  if (!r.I64(&jobs) || !r.U8(&shard) || !r.Str(&o.entry) ||
      !r.U64(&o.max_instructions) || !r.U64(&o.default_heap_cap) ||
      !r.U8(&flags) || !r.U64(&o.warmup_instructions) || !r.U8(&has_exec)) {
    return Err("wire: truncated options");
  }
  if (shard > static_cast<uint8_t>(campaign::ShardPolicy::SizeBalanced)) {
    return Err("wire: bad shard policy");
  }
  o.jobs = static_cast<int>(jobs);
  o.shard = static_cast<campaign::ShardPolicy>(shard);
  o.track_coverage = (flags & (1u << 0)) != 0;
  o.collect_scenario_coverage = (flags & (1u << 1)) != 0;
  o.collect_replays = (flags & (1u << 2)) != 0;
  o.snapshot = (flags & (1u << 3)) != 0;
  o.snapshot_tree = (flags & (1u << 4)) != 0;
  o.collect_state_digest = (flags & (1u << 5)) != 0;
  o.controller.feasible_only = (flags & (1u << 6)) != 0;
  if (has_exec) {
    uint8_t mode = 0;
    if (!r.U8(&mode) ||
        mode > static_cast<uint8_t>(vm::ExecMode::Reference)) {
      return Err("wire: bad exec mode");
    }
    o.exec_mode = static_cast<vm::ExecMode>(mode);
  }
  if (!r.U8(&log_enabled) || !r.U8(&log_backtraces) || !r.U64(&log_capacity)) {
    return Err("wire: truncated options");
  }
  o.controller.log_enabled = log_enabled != 0;
  o.controller.log_backtraces = log_backtraces != 0;
  o.controller.log_capacity = static_cast<size_t>(log_capacity);
  return o;
}

// -- coverage bitmap ---------------------------------------------------------

void EncodeBitmap(std::vector<uint8_t>& out, const vm::CoverageBitmap& bitmap) {
  PutU64(out, bitmap.size_bits());
  std::vector<uint32_t> offsets = bitmap.ToOffsets();
  PutU32(out, static_cast<uint32_t>(offsets.size()));
  for (uint32_t off : offsets) PutU32(out, off);
}

Result<vm::CoverageBitmap> DecodeBitmap(Reader& r) {
  uint64_t bits = 0;
  uint32_t count = 0;
  if (!r.U64(&bits) || !r.U32(&count) || !PlausibleCount(r, count)) {
    return Err("wire: truncated bitmap");
  }
  vm::CoverageBitmap bitmap;
  bitmap.Resize(static_cast<size_t>(bits));
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t off = 0;
    if (!r.U32(&off)) return Err("wire: truncated bitmap");
    if (off >= bits) return Err("wire: bitmap offset out of range");
    bitmap.Set(off);
  }
  return bitmap;
}

// -- scenario result ---------------------------------------------------------

void EncodeResult(std::vector<uint8_t>& out,
                  const campaign::ScenarioResult& result) {
  PutU64(out, result.index);
  PutStr(out, result.name);
  PutU8(out, static_cast<uint8_t>(result.status));
  PutI64(out, result.exit_code);
  PutU8(out, static_cast<uint8_t>(result.signal));
  PutStr(out, result.fault_message);
  PutU64(out, result.injections);
  PutU64(out, result.instructions);
  PutF64(out, result.seconds);
  PutU64(out, result.covered_offsets);
  PutU32(out, static_cast<uint32_t>(result.covered_by_module.size()));
  for (const auto& [mod, n] : result.covered_by_module) {
    PutStr(out, mod);
    PutU64(out, n);
  }
  PutU32(out, static_cast<uint32_t>(result.coverage.size()));
  for (const auto& [mod, bitmap] : result.coverage) {
    PutStr(out, mod);
    EncodeBitmap(out, bitmap);
  }
  PutU32(out, static_cast<uint32_t>(result.fault_frames.size()));
  for (const std::string& frame : result.fault_frames) PutStr(out, frame);
  PutU64(out, result.crash_site_hash);
  PutU64(out, result.crash_hash);
  EncodePlan(out, result.replay);
  PutU64(out, result.first_injection_instructions);
  PutU8(out, result.snapshot_fallback ? 1 : 0);
  PutU64(out, result.restore_pages);
  PutU64(out, result.restore_nodes_walked);
  PutU64(out, result.state_digest);
  PutU32(out, result.seu_landed);
}

Result<campaign::ScenarioResult> DecodeResult(Reader& r) {
  campaign::ScenarioResult res;
  uint64_t index = 0;
  uint8_t status = 0, signal = 0, snapshot_fallback = 0;
  uint32_t n = 0;
  if (!r.U64(&index) || !r.Str(&res.name) || !r.U8(&status) ||
      !r.I64(&res.exit_code) || !r.U8(&signal) || !r.Str(&res.fault_message) ||
      !r.U64(&res.injections) || !r.U64(&res.instructions) ||
      !r.F64(&res.seconds) || !r.U64(&res.covered_offsets)) {
    return Err("wire: truncated result");
  }
  if (status > static_cast<uint8_t>(campaign::ScenarioStatus::SetupError) ||
      signal > static_cast<uint8_t>(vm::Signal::Ill)) {
    return Err("wire: bad result enum");
  }
  res.index = static_cast<size_t>(index);
  res.status = static_cast<campaign::ScenarioStatus>(status);
  res.signal = static_cast<vm::Signal>(signal);
  if (!r.U32(&n) || !PlausibleCount(r, n)) return Err("wire: truncated result");
  for (uint32_t i = 0; i < n; ++i) {
    std::string mod;
    uint64_t count = 0;
    if (!r.Str(&mod) || !r.U64(&count)) return Err("wire: truncated result");
    res.covered_by_module[mod] = static_cast<size_t>(count);
  }
  if (!r.U32(&n) || !PlausibleCount(r, n)) return Err("wire: truncated result");
  for (uint32_t i = 0; i < n; ++i) {
    std::string mod;
    if (!r.Str(&mod)) return Err("wire: truncated result");
    auto bitmap = DecodeBitmap(r);
    if (!bitmap.ok()) return Err(bitmap.error());
    res.coverage.emplace(std::move(mod), std::move(bitmap).take());
  }
  if (!r.U32(&n) || !PlausibleCount(r, n)) return Err("wire: truncated result");
  for (uint32_t i = 0; i < n; ++i) {
    std::string frame;
    if (!r.Str(&frame)) return Err("wire: truncated result");
    res.fault_frames.push_back(std::move(frame));
  }
  if (!r.U64(&res.crash_site_hash) || !r.U64(&res.crash_hash)) {
    return Err("wire: truncated result");
  }
  auto replay = DecodePlan(r);
  if (!replay.ok()) return Err(replay.error());
  res.replay = std::move(replay).take();
  if (!r.U64(&res.first_injection_instructions) || !r.U8(&snapshot_fallback) ||
      !r.U64(&res.restore_pages) || !r.U64(&res.restore_nodes_walked) ||
      !r.U64(&res.state_digest) || !r.U32(&res.seu_landed)) {
    return Err("wire: truncated result");
  }
  res.snapshot_fallback = snapshot_fallback != 0;
  return res;
}

// -- messages ----------------------------------------------------------------

std::vector<uint8_t> EncodeConfigure(const ConfigureMsg& msg) {
  std::vector<uint8_t> out;
  PutU32(out, static_cast<uint32_t>(msg.target.modules.size()));
  for (const std::vector<uint8_t>& mod : msg.target.modules) {
    PutBytes(out, mod);
  }
  PutU32(out, static_cast<uint32_t>(msg.target.files.size()));
  for (const auto& [path, contents] : msg.target.files) {
    PutStr(out, path);
    PutBytes(out, contents);
  }
  PutU32(out, static_cast<uint32_t>(msg.target.ports.size()));
  for (int64_t port : msg.target.ports) PutI64(out, port);
  PutU32(out, static_cast<uint32_t>(msg.profiles.size()));
  for (const core::FaultProfile& profile : msg.profiles) {
    PutStr(out, profile.ToXml());
  }
  EncodeOptions(out, msg.options);
  return out;
}

Result<ConfigureMsg> DecodeConfigure(const std::vector<uint8_t>& payload) {
  Reader r(payload);
  ConfigureMsg msg;
  uint32_t n = 0;
  if (!r.U32(&n) || !PlausibleCount(r, n)) return Err("wire: bad configure");
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<uint8_t> mod;
    if (!r.Bytes(&mod)) return Err("wire: bad configure module");
    msg.target.modules.push_back(std::move(mod));
  }
  if (!r.U32(&n) || !PlausibleCount(r, n)) return Err("wire: bad configure");
  for (uint32_t i = 0; i < n; ++i) {
    std::string path;
    std::vector<uint8_t> contents;
    if (!r.Str(&path) || !r.Bytes(&contents)) {
      return Err("wire: bad configure file");
    }
    msg.target.files.emplace_back(std::move(path), std::move(contents));
  }
  if (!r.U32(&n) || !PlausibleCount(r, n)) return Err("wire: bad configure");
  for (uint32_t i = 0; i < n; ++i) {
    int64_t port = 0;
    if (!r.I64(&port)) return Err("wire: bad configure port");
    msg.target.ports.push_back(port);
  }
  if (!r.U32(&n) || !PlausibleCount(r, n)) return Err("wire: bad configure");
  for (uint32_t i = 0; i < n; ++i) {
    std::string xml;
    if (!r.Str(&xml)) return Err("wire: bad configure profile");
    auto profile = core::FaultProfile::FromXml(xml);
    if (!profile.ok()) {
      return Err("wire: configure profile: " + profile.error());
    }
    msg.profiles.push_back(std::move(profile).take());
  }
  auto options = DecodeOptions(r);
  if (!options.ok()) return Err(options.error());
  msg.options = std::move(options).take();
  if (!r.AtEnd()) return Err("wire: trailing bytes in configure");
  return msg;
}

std::vector<uint8_t> EncodeBatch(const BatchMsg& msg) {
  std::vector<uint8_t> out;
  PutU32(out, static_cast<uint32_t>(msg.scenarios.size()));
  for (size_t i = 0; i < msg.scenarios.size(); ++i) {
    PutU64(out, msg.indices[i]);
    EncodeScenario(out, msg.scenarios[i]);
  }
  return out;
}

Result<BatchMsg> DecodeBatch(const std::vector<uint8_t>& payload) {
  Reader r(payload);
  BatchMsg msg;
  uint32_t n = 0;
  if (!r.U32(&n) || !PlausibleCount(r, n)) return Err("wire: bad batch");
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t index = 0;
    if (!r.U64(&index)) return Err("wire: bad batch index");
    auto scenario = DecodeScenario(r);
    if (!scenario.ok()) return Err(scenario.error());
    msg.indices.push_back(index);
    msg.scenarios.push_back(std::move(scenario).take());
  }
  if (!r.AtEnd()) return Err("wire: trailing bytes in batch");
  return msg;
}

std::vector<uint8_t> EncodeBatchResult(const BatchResultMsg& msg) {
  std::vector<uint8_t> out;
  PutU32(out, static_cast<uint32_t>(msg.results.size()));
  for (const campaign::ScenarioResult& res : msg.results) {
    EncodeResult(out, res);
  }
  PutU32(out, static_cast<uint32_t>(msg.coverage.size()));
  for (const auto& [mod, bitmap] : msg.coverage) {
    PutStr(out, mod);
    EncodeBitmap(out, bitmap);
  }
  return out;
}

Result<BatchResultMsg> DecodeBatchResult(const std::vector<uint8_t>& payload) {
  Reader r(payload);
  BatchResultMsg msg;
  uint32_t n = 0;
  if (!r.U32(&n) || !PlausibleCount(r, n)) return Err("wire: bad batch result");
  for (uint32_t i = 0; i < n; ++i) {
    auto res = DecodeResult(r);
    if (!res.ok()) return Err(res.error());
    msg.results.push_back(std::move(res).take());
  }
  if (!r.U32(&n) || !PlausibleCount(r, n)) return Err("wire: bad batch result");
  for (uint32_t i = 0; i < n; ++i) {
    std::string mod;
    if (!r.Str(&mod)) return Err("wire: bad batch result");
    auto bitmap = DecodeBitmap(r);
    if (!bitmap.ok()) return Err(bitmap.error());
    msg.coverage.emplace_back(std::move(mod), std::move(bitmap).take());
  }
  if (!r.AtEnd()) return Err("wire: trailing bytes in batch result");
  return msg;
}

// -- machine setup from a spec -----------------------------------------------

Result<campaign::MachineSetup> MakeSetup(const TargetSpec& spec) {
  auto modules = std::make_shared<std::vector<sso::SharedObject>>();
  for (const std::vector<uint8_t>& blob : spec.modules) {
    auto so = sso::SharedObject::Parse(blob);
    if (!so.ok()) return Err("target module: " + so.error());
    modules->push_back(std::move(so).take());
  }
  auto files = std::make_shared<
      std::vector<std::pair<std::string, std::vector<uint8_t>>>>(spec.files);
  auto ports = std::make_shared<std::vector<int64_t>>(spec.ports);
  return campaign::MachineSetup(
      [modules, files, ports](vm::Machine& machine) {
        for (const sso::SharedObject& so : *modules) machine.Load(so);
        for (const auto& [path, contents] : *files) {
          machine.kernel().add_file(path, contents);
        }
        for (int64_t port : *ports) machine.kernel().listen(port);
      });
}

// -- frame I/O ---------------------------------------------------------------

namespace {

Status WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    // MSG_NOSIGNAL: a peer that died (a killed worker — the fabric's
    // normal failure mode) must surface as EPIPE to the caller, not as a
    // process-wide SIGPIPE.
    ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Err(std::string("wire: write: ") + strerror(errno));
    }
    if (n == 0) return Err("wire: write: connection closed");
    done += static_cast<size_t>(n);
  }
  return {};
}

/// Read exactly `size` bytes, honoring the deadline. `timeout_ms` < 0
/// blocks forever.
Status ReadAll(int fd, uint8_t* data, size_t size, int timeout_ms) {
  size_t done = 0;
  while (done < size) {
    if (timeout_ms >= 0) {
      struct pollfd pfd = {fd, POLLIN, 0};
      int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Err(std::string("wire: poll: ") + strerror(errno));
      }
      if (ready == 0) return Err("wire: read timeout");
    }
    ssize_t n = ::read(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Err(std::string("wire: read: ") + strerror(errno));
    }
    if (n == 0) return Err("wire: connection closed");
    done += static_cast<size_t>(n);
  }
  return {};
}

}  // namespace

Status WriteFrame(int fd, MsgType type, const std::vector<uint8_t>& payload) {
  if (payload.size() > kMaxPayload) return Err("wire: frame too large");
  std::vector<uint8_t> header;
  PutU32(header, kWireMagic);
  PutU8(header, static_cast<uint8_t>(type));
  PutU32(header, static_cast<uint32_t>(payload.size()));
  if (auto st = WriteAll(fd, header.data(), header.size()); !st.ok()) {
    return st;
  }
  return WriteAll(fd, payload.data(), payload.size());
}

Result<Frame> ReadFrame(int fd, int timeout_ms) {
  uint8_t header[9];
  if (auto st = ReadAll(fd, header, sizeof(header), timeout_ms); !st.ok()) {
    return Err(st.error());
  }
  std::vector<uint8_t> buf(header, header + sizeof(header));
  Reader r(buf);
  uint32_t magic = 0, length = 0;
  uint8_t type = 0;
  r.U32(&magic);
  r.U8(&type);
  r.U32(&length);
  if (magic != kWireMagic) return Err("wire: bad magic");
  if (type < static_cast<uint8_t>(MsgType::Hello) ||
      type > static_cast<uint8_t>(MsgType::Shutdown)) {
    return Err("wire: unknown message type");
  }
  if (length > kMaxPayload) return Err("wire: frame too large");
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.payload.resize(length);
  if (length > 0) {
    if (auto st = ReadAll(fd, frame.payload.data(), length, timeout_ms);
        !st.ok()) {
      return Err(st.error());
    }
  }
  return frame;
}

}  // namespace lfi::serve
