// Campaign fabric wire protocol (lfi serve).
//
// Length-prefixed binary frames over a stream socket. Everything the
// coordinator ships to a worker — target image, fault profiles, campaign
// options, scenario batches — and everything that comes back (per-scenario
// results, batch union coverage) is encoded here.
//
// The format is binary, not XML, for one load-bearing reason: byte
// identity. Doubles travel as exact IEEE-754 bit patterns (Plan::ToXml
// now prints %.17g, which also round-trips, but the wire does not want
// to depend on printf/strtod agreeing), and module images travel as
// their canonical sso::SharedObject serialization — the same bytes a
// local Machine loads.
//
// Framing: [magic u32 "LFW1"] [type u8] [length u32 LE] [payload bytes].
// Integers are little-endian. A reader rejects bad magic, unknown types,
// and payloads over kMaxPayload before allocating anything — a confused
// peer (or a port scanner) cannot make a worker allocate gigabytes.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/runner.hpp"
#include "core/profile.hpp"
#include "util/result.hpp"

namespace lfi::serve {

inline constexpr uint32_t kWireMagic = 0x3157464Cu;  // "LFW1" little-endian
// Version history: 1 = initial; 2 = SEU faults in plans, state digest +
// landed-flip count in results, collect_state_digest options flag;
// 3 = controller feasible_only options flag (bit 6) and profile error-code
// provenance attributes in the Configure profile XML.
inline constexpr uint32_t kWireVersion = 3;
/// Hard cap on a single frame's payload. Campaign batches are scenario
/// plans + results, not bulk data; 256 MiB is far above any real frame.
inline constexpr uint32_t kMaxPayload = 256u << 20;

enum class MsgType : uint8_t {
  Hello = 1,        // both directions: [version u32]
  Configure = 2,    // coordinator -> worker: target + profiles + options
  ConfigureOk = 3,  // worker -> coordinator: empty
  RunBatch = 4,     // coordinator -> worker: indexed scenario batch
  BatchResult = 5,  // worker -> coordinator: indexed results + coverage
  Error = 6,        // worker -> coordinator: [message string]
  Shutdown = 7,     // coordinator -> worker: empty; worker closes
};

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::Error;
  std::vector<uint8_t> payload;
};

/// Everything a worker needs to reconstruct the coordinator's MachineSetup
/// bit-for-bit: module images in load order (canonical sso serialization),
/// VFS files, and listening ports. The fabric invariant — a distributed
/// report byte-identical to a single-process one — rests on both sides
/// building machines from this same spec.
struct TargetSpec {
  /// Serialized sso::SharedObject per module, in Machine::Load order
  /// (libc first, app last — symbol search order).
  std::vector<std::vector<uint8_t>> modules;
  /// In-memory filesystem seed: (path, contents).
  std::vector<std::pair<std::string, std::vector<uint8_t>>> files;
  /// Ports marked listening so target connect() calls succeed.
  std::vector<int64_t> ports;
};

/// Parse the spec's module blobs and build the MachineSetup campaign
/// workers run on — shared by the worker daemon and the coordinator's
/// local-fallback runner, so "who executed it" cannot change the machine.
Result<campaign::MachineSetup> MakeSetup(const TargetSpec& spec);

// -- payload encoding --------------------------------------------------------
// Encode* appends to `out`; Decode* reads from a cursor and fails (Status /
// Result error) on truncated or malformed input instead of asserting —
// frames come from the network.

/// Cursor over a received payload.
struct Reader {
  const uint8_t* data = nullptr;
  size_t size = 0;
  size_t pos = 0;

  explicit Reader(const std::vector<uint8_t>& buf)
      : data(buf.data()), size(buf.size()) {}

  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool I64(int64_t* v);
  bool F64(double* v);  // exact bit pattern
  bool Str(std::string* v);
  bool Bytes(std::vector<uint8_t>* v);
  /// All input consumed? Decoders check this so trailing garbage is an
  /// error, not silently ignored.
  bool AtEnd() const { return pos == size; }
};

void PutU8(std::vector<uint8_t>& out, uint8_t v);
void PutU32(std::vector<uint8_t>& out, uint32_t v);
void PutU64(std::vector<uint8_t>& out, uint64_t v);
void PutI64(std::vector<uint8_t>& out, int64_t v);
void PutF64(std::vector<uint8_t>& out, double v);  // exact bit pattern
void PutStr(std::vector<uint8_t>& out, const std::string& v);
void PutBytes(std::vector<uint8_t>& out, const std::vector<uint8_t>& v);

void EncodePlan(std::vector<uint8_t>& out, const core::Plan& plan);
Result<core::Plan> DecodePlan(Reader& r);

void EncodeScenario(std::vector<uint8_t>& out,
                    const campaign::Scenario& scenario);
Result<campaign::Scenario> DecodeScenario(Reader& r);

void EncodeOptions(std::vector<uint8_t>& out,
                   const campaign::CampaignOptions& options);
Result<campaign::CampaignOptions> DecodeOptions(Reader& r);

void EncodeBitmap(std::vector<uint8_t>& out, const vm::CoverageBitmap& bitmap);
Result<vm::CoverageBitmap> DecodeBitmap(Reader& r);

void EncodeResult(std::vector<uint8_t>& out,
                  const campaign::ScenarioResult& result);
Result<campaign::ScenarioResult> DecodeResult(Reader& r);

/// Configure payload: target spec + fault profiles (canonical XML — the
/// profile format carries no floating point) + campaign options.
struct ConfigureMsg {
  TargetSpec target;
  std::vector<core::FaultProfile> profiles;
  campaign::CampaignOptions options;
};
std::vector<uint8_t> EncodeConfigure(const ConfigureMsg& msg);
Result<ConfigureMsg> DecodeConfigure(const std::vector<uint8_t>& payload);

/// RunBatch payload: scenarios tagged with their campaign-global indices.
struct BatchMsg {
  std::vector<uint64_t> indices;  // parallel to `scenarios`
  std::vector<campaign::Scenario> scenarios;
};
std::vector<uint8_t> EncodeBatch(const BatchMsg& msg);
Result<BatchMsg> DecodeBatch(const std::vector<uint8_t>& payload);

/// BatchResult payload: one ScenarioResult per batch scenario (its .index
/// already global) plus the batch's union coverage per module name.
struct BatchResultMsg {
  std::vector<campaign::ScenarioResult> results;
  std::vector<std::pair<std::string, vm::CoverageBitmap>> coverage;
};
std::vector<uint8_t> EncodeBatchResult(const BatchResultMsg& msg);
Result<BatchResultMsg> DecodeBatchResult(const std::vector<uint8_t>& payload);

// -- frame I/O ---------------------------------------------------------------

/// Write one frame (header + payload) to `fd`, looping over partial
/// writes. Fails on any socket error (peer gone).
Status WriteFrame(int fd, MsgType type, const std::vector<uint8_t>& payload);

/// Read one frame from `fd`. Validates magic, type, and payload size
/// before allocating. `timeout_ms` < 0 blocks forever; on timeout the
/// error message contains "timeout" (the coordinator's retry path keys on
/// having *an* error, not the text — the text is for humans).
Result<Frame> ReadFrame(int fd, int timeout_ms = -1);

}  // namespace lfi::serve
