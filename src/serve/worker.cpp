#include "serve/worker.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <memory>
#include <utility>
#include <vector>

#include "campaign/runner.hpp"
#include "serve/wire.hpp"

namespace lfi::serve {

namespace {

Status SendError(int fd, const std::string& message) {
  std::vector<uint8_t> payload;
  PutStr(payload, message);
  return WriteFrame(fd, MsgType::Error, payload);
}

}  // namespace

WorkerServer::~WorkerServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Result<uint16_t> WorkerServer::Listen() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Err(std::string("serve: socket: ") + strerror(errno));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    std::string err = std::string("serve: bind: ") + strerror(errno);
    ::close(fd);
    return Err(std::move(err));
  }
  if (::listen(fd, 8) < 0) {
    std::string err = std::string("serve: listen: ") + strerror(errno);
    ::close(fd);
    return Err(std::move(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    std::string err = std::string("serve: getsockname: ") + strerror(errno);
    ::close(fd);
    return Err(std::move(err));
  }
  listen_fd_ = fd;
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

void WorkerServer::ServeForever() {
  for (;;) {
    // Serve errors (a coordinator vanishing, a port scanner) end one
    // conversation, not the daemon.
    (void)ServeOnce();
  }
}

Status WorkerServer::ServeOnce() {
  if (listen_fd_ < 0) return Err("serve: not listening");
  int fd;
  do {
    fd = ::accept(listen_fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Err(std::string("serve: accept: ") + strerror(errno));
  return ServeConnection(fd);
}

Status WorkerServer::ServeConnection(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  std::unique_ptr<campaign::CampaignRunner> runner;
  uint64_t scenarios_run = 0;
  Status outcome;

  for (;;) {
    auto frame = ReadFrame(fd);
    if (!frame.ok()) {
      outcome = Err(frame.error());
      break;
    }
    switch (frame.value().type) {
      case MsgType::Hello: {
        std::vector<uint8_t> payload;
        PutU32(payload, kWireVersion);
        if (auto st = WriteFrame(fd, MsgType::Hello, payload); !st.ok()) {
          outcome = st;
          goto done;
        }
        break;
      }
      case MsgType::Configure: {
        auto msg = DecodeConfigure(frame.value().payload);
        if (!msg.ok()) {
          (void)SendError(fd, msg.error());
          outcome = Err(msg.error());
          goto done;
        }
        auto setup = MakeSetup(msg.value().target);
        if (!setup.ok()) {
          (void)SendError(fd, setup.error());
          outcome = Err(setup.error());
          goto done;
        }
        campaign::CampaignOptions options = msg.value().options;
        if (config_.jobs > 0) options.jobs = config_.jobs;
        runner = std::make_unique<campaign::CampaignRunner>(
            std::move(setup).take(), std::move(msg.value().profiles),
            options);
        if (auto st = WriteFrame(fd, MsgType::ConfigureOk, {}); !st.ok()) {
          outcome = st;
          goto done;
        }
        break;
      }
      case MsgType::RunBatch: {
        if (!runner) {
          (void)SendError(fd, "serve: RunBatch before Configure");
          outcome = Err("serve: RunBatch before Configure");
          goto done;
        }
        auto msg = DecodeBatch(frame.value().payload);
        if (!msg.ok()) {
          (void)SendError(fd, msg.error());
          outcome = Err(msg.error());
          goto done;
        }
        campaign::CampaignReport report = runner->Run(msg.value().scenarios);
        scenarios_run += report.results.size();
        BatchResultMsg reply;
        reply.results = std::move(report.results);
        for (size_t i = 0; i < reply.results.size(); ++i) {
          // Results come back batch-local (0..n-1); re-tag with the
          // campaign-global indices so the coordinator can place them.
          reply.results[i].index =
              static_cast<size_t>(msg.value().indices[i]);
        }
        for (auto& [mod, bitmap] : report.coverage) {
          reply.coverage.emplace_back(mod, std::move(bitmap));
        }
        // The crash-test hook: drop the connection on the floor after the
        // configured scenario count, *without* answering — the coordinator
        // sees exactly what a SIGKILLed worker produces (EOF mid-batch)
        // and must re-run this batch elsewhere.
        if (config_.abort_after_scenarios != 0 &&
            scenarios_run >= config_.abort_after_scenarios) {
          outcome = Err("serve: aborted by abort_after_scenarios");
          goto done;
        }
        if (auto st = WriteFrame(fd, MsgType::BatchResult,
                                 EncodeBatchResult(reply));
            !st.ok()) {
          outcome = st;
          goto done;
        }
        break;
      }
      case MsgType::Shutdown:
        outcome = Status::Ok();
        goto done;
      default:
        (void)SendError(fd, "serve: unexpected message");
        outcome = Err("serve: unexpected message");
        goto done;
    }
  }

done:
  ::close(fd);
  return outcome;
}

Result<LocalWorker> SpawnLocalWorker(const WorkerConfig& config) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
    return Err(std::string("serve: socketpair: ") + strerror(errno));
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return Err(std::string("serve: fork: ") + strerror(errno));
  }
  if (pid == 0) {
    // Child: become a worker on our end of the pair, then vanish without
    // running parent-side destructors or atexit handlers (we share the
    // parent's image; cleanup is the parent's business).
    ::close(fds[0]);
    WorkerServer worker(config);
    (void)worker.ServeConnection(fds[1]);
    ::_exit(0);
  }
  ::close(fds[1]);
  LocalWorker out;
  out.pid = static_cast<int>(pid);
  out.fd = fds[0];
  return out;
}

}  // namespace lfi::serve
