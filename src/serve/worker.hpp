// Campaign fabric worker (`lfi serve`): hosts a snapshot-warmed machine
// pool and executes scenario batches shipped by a coordinator.
//
// A worker is a dumb executor by design: it never generates scenarios,
// never aggregates a campaign, never decides sharding. It receives one
// Configure (target image + profiles + options), builds a CampaignRunner
// from it, and then answers RunBatch frames until the coordinator hangs
// up. The runner's machine pool persists across batches — the worker pays
// module load + decode + snapshot warm once per connection, which is the
// entire point of a daemon over fork-per-batch.
//
// Determinism: the worker runs batches through the exact same
// CampaignRunner::Run path an in-process campaign uses, on a machine built
// from the same TargetSpec. Per-scenario outcomes depend only on the
// scenario (the runner's contract), so which worker ran a batch — or
// whether it ran twice because a coordinator retried it — cannot change a
// single result byte.
#pragma once

#include <cstdint>
#include <string>

#include "util/result.hpp"

namespace lfi::serve {

struct WorkerConfig {
  /// TCP port to listen on; 0 = kernel-assigned (reported by Listen()).
  uint16_t port = 0;
  /// Worker threads per batch (CampaignOptions::jobs override for the
  /// worker-local runner). 0 = run batches with the jobs count the
  /// coordinator configured.
  int jobs = 0;
  /// Fault hook for tests and CI: after this many scenarios have executed,
  /// hard-close the connection mid-protocol (no Error frame, no goodbye —
  /// indistinguishable from a kill -9 to the coordinator). 0 = off.
  /// Deterministic, unlike an actual signal race, so the retry path can be
  /// exercised reproducibly.
  uint64_t abort_after_scenarios = 0;
};

/// One worker process. Listen() binds; Serve*() runs the protocol.
class WorkerServer {
 public:
  explicit WorkerServer(WorkerConfig config = {}) : config_(config) {}
  ~WorkerServer();

  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  /// Bind + listen on config.port (loopback only — the fabric is a local
  /// trust domain, not an internet service). Returns the bound port.
  Result<uint16_t> Listen();

  /// Accept loop: serve one coordinator connection at a time, forever
  /// (until the process is killed). `lfi serve` lives here.
  void ServeForever();

  /// Accept and serve exactly one connection, then return. Tests and the
  /// CI smoke use this to bound the daemon's life.
  Status ServeOnce();

  /// Run the worker protocol on an already-connected socket (a TCP accept,
  /// or one end of a socketpair from SpawnLocalWorker). Owns `fd` and
  /// closes it before returning. Returns the reason the conversation
  /// ended ("shutdown", peer EOF, protocol error...).
  Status ServeConnection(int fd);

 private:
  WorkerConfig config_;
  int listen_fd_ = -1;
};

/// A worker process forked off the current one, connected by a socketpair.
/// `fd` speaks the wire protocol (the parent is the coordinator side);
/// `pid` is a real, killable process — tests SIGKILL it to exercise the
/// fabric's failure handling against an actual process death.
struct LocalWorker {
  int pid = -1;
  int fd = -1;
};

/// Fork a worker child that serves the wire protocol on its end of a
/// socketpair and _exit()s when the conversation ends. No exec — the child
/// reuses this image, so there is no binary-path coupling. Must be called
/// before the calling process spawns threads (fork + threads don't mix);
/// the CLI spawns its workers before building the coordinator.
Result<LocalWorker> SpawnLocalWorker(const WorkerConfig& config = {});

}  // namespace lfi::serve
