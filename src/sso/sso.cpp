#include "sso/sso.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace lfi::sso {

namespace {

constexpr char kMagic[4] = {'S', 'S', 'O', '1'};
constexpr uint32_t kVersion = 1;

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutStr(const std::string& s, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->insert(out->end(), s.begin(), s.end());
}

void PutBytes(const std::vector<uint8_t>& b, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(b.size()), out);
  out->insert(out->end(), b.begin(), b.end());
}

void PutSymtab(const std::vector<isa::Symbol>& syms, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(syms.size()), out);
  for (const auto& s : syms) {
    PutStr(s.name, out);
    PutU32(s.offset, out);
    PutU32(s.size, out);
  }
}

void PutStrtab(const std::vector<std::string>& strs, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(strs.size()), out);
  for (const auto& s : strs) PutStr(s, out);
}

/// Bounds-checked reader over the serialized bytes.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  bool u32(uint32_t* out) {
    if (pos_ + 4 > bytes_.size()) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(bytes_[pos_ + static_cast<size_t>(i)]) << (8 * i);
    pos_ += 4;
    *out = v;
    return true;
  }

  bool str(std::string* out) {
    uint32_t len = 0;
    if (!u32(&len) || pos_ + len > bytes_.size()) return false;
    out->assign(bytes_.begin() + static_cast<ptrdiff_t>(pos_),
                bytes_.begin() + static_cast<ptrdiff_t>(pos_ + len));
    pos_ += len;
    return true;
  }

  bool blob(std::vector<uint8_t>* out) {
    uint32_t len = 0;
    if (!u32(&len) || pos_ + len > bytes_.size()) return false;
    out->assign(bytes_.begin() + static_cast<ptrdiff_t>(pos_),
                bytes_.begin() + static_cast<ptrdiff_t>(pos_ + len));
    pos_ += len;
    return true;
  }

  bool symtab(std::vector<isa::Symbol>* out) {
    uint32_t n = 0;
    if (!u32(&n)) return false;
    out->clear();
    for (uint32_t i = 0; i < n; ++i) {
      isa::Symbol s;
      if (!str(&s.name) || !u32(&s.offset) || !u32(&s.size)) return false;
      out->push_back(std::move(s));
    }
    return true;
  }

  bool strtab(std::vector<std::string>* out) {
    uint32_t n = 0;
    if (!u32(&n)) return false;
    out->clear();
    for (uint32_t i = 0; i < n; ++i) {
      std::string s;
      if (!str(&s)) return false;
      out->push_back(std::move(s));
    }
    return true;
  }

  size_t pos() const { return pos_; }
  size_t size() const { return bytes_.size(); }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

}  // namespace

const isa::Symbol* SharedObject::find_export(std::string_view fn) const {
  for (const auto& s : exports) {
    if (s.name == fn) return &s;
  }
  return nullptr;
}

const isa::Symbol* SharedObject::symbol_at(uint32_t offset) const {
  const isa::Symbol* best = nullptr;
  auto consider = [&](const isa::Symbol& s) {
    if (s.offset <= offset && (!best || s.offset > best->offset)) best = &s;
  };
  for (const auto& s : exports) consider(s);
  for (const auto& s : locals) consider(s);
  return best;
}

std::vector<uint8_t> SharedObject::Serialize() const {
  std::vector<uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + 4);
  PutU32(kVersion, &out);
  PutStr(name, &out);
  PutU32(tls_size, &out);
  PutBytes(code, &out);
  PutBytes(data, &out);
  PutSymtab(exports, &out);
  PutSymtab(locals, &out);
  PutStrtab(imports, &out);
  PutStrtab(needed, &out);
  PutU32(static_cast<uint32_t>(data_relocs.size()), &out);
  for (const auto& [data_off, code_off] : data_relocs) {
    PutU32(data_off, &out);
    PutU32(code_off, &out);
  }
  return out;
}

Result<SharedObject> SharedObject::Parse(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 8 || !std::equal(kMagic, kMagic + 4, bytes.begin())) {
    return Err("sso: bad magic");
  }
  Reader r(bytes);
  uint32_t magic_skip = 0;
  (void)r.u32(&magic_skip);  // magic, validated above
  uint32_t version = 0;
  if (!r.u32(&version) || version != kVersion) return Err("sso: bad version");
  SharedObject so;
  if (!r.str(&so.name) || !r.u32(&so.tls_size) || !r.blob(&so.code) ||
      !r.blob(&so.data) || !r.symtab(&so.exports) || !r.symtab(&so.locals) ||
      !r.strtab(&so.imports) || !r.strtab(&so.needed)) {
    return Err("sso: truncated object");
  }
  uint32_t nrelocs = 0;
  if (!r.u32(&nrelocs)) return Err("sso: truncated object");
  for (uint32_t i = 0; i < nrelocs; ++i) {
    uint32_t data_off = 0, code_off = 0;
    if (!r.u32(&data_off) || !r.u32(&code_off)) return Err("sso: bad reloc");
    if (data_off + 8 > so.data.size() || code_off >= so.code.size()) {
      return Err("sso: reloc out of range");
    }
    so.data_relocs.emplace_back(data_off, code_off);
  }
  if (r.pos() != r.size()) return Err("sso: trailing bytes");
  // Validate symbol offsets against the code section.
  for (const auto& s : so.exports) {
    if (s.offset > so.code.size()) return Err("sso: symbol out of range: " + s.name);
  }
  return so;
}

std::string SharedObject::Disassembly() const {
  auto decoded = isa::Disassemble(code, 0, static_cast<uint32_t>(code.size()));
  if (!decoded.ok()) return "<disassembly failed: " + decoded.error() + ">";
  std::string out = Format("%s:\n", name.c_str());
  const isa::Symbol* last = nullptr;
  for (const auto& ins : decoded.value()) {
    const isa::Symbol* sym = symbol_at(ins.offset);
    if (sym && sym != last && sym->offset == ins.offset) {
      out += Format("\n%08x <%s>:\n", sym->offset, sym->name.c_str());
      last = sym;
    }
    std::string line = ins.ToString();
    if (ins.op == isa::Opcode::CALL_SYM && ins.u16 < imports.size()) {
      line += Format("   ; %s", imports[ins.u16].c_str());
    }
    out += line + "\n";
  }
  return out;
}

SharedObject FromCodeUnit(std::string name, isa::CodeUnit unit,
                          std::vector<std::string> needed) {
  SharedObject so;
  so.name = std::move(name);
  so.code = std::move(unit.code);
  so.data = std::move(unit.data);
  so.tls_size = unit.tls_size;
  so.exports = std::move(unit.exports);
  so.locals = std::move(unit.locals);
  so.imports = std::move(unit.imports);
  so.needed = std::move(needed);
  so.data_relocs = std::move(unit.data_relocs);
  return so;
}

}  // namespace lfi::sso
