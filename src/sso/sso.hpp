// SSO — the Synthetic Shared Object format.
//
// The ELF/PE analogue of the reproduction: a container for one shared
// library's code and data, its dynamic symbol table (exported functions —
// what the LFI profiler enumerates), an import table (the PLT names a
// CALL_SYM goes through), an optional local symbol table (removed by
// Strip(), since LFI must work on stripped binaries), the list of needed
// libraries (what `ldd` reports), and the module's TLS reservation.
//
// Binary layout (little-endian):
//   magic "SSO1" | u32 version | str name | u32 tls_size
//   | bytes code | bytes data | symtab exports | symtab locals
//   | strtab imports | strtab needed
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/codebuilder.hpp"
#include "util/result.hpp"

namespace lfi::sso {

struct SharedObject {
  std::string name;                  // e.g. "libc.so"
  std::vector<uint8_t> code;
  std::vector<uint8_t> data;
  uint32_t tls_size = 0;
  std::vector<isa::Symbol> exports;  // dynamic symbols: always present
  std::vector<isa::Symbol> locals;   // debug symbols: removed by Strip()
  std::vector<std::string> imports;  // CALL_SYM index -> name
  std::vector<std::string> needed;   // dependency library names

  /// Relative relocations: at load time, data[first..first+8) receives the
  /// absolute virtual address of code offset `second` (function-pointer
  /// tables for indirect calls — the construct the profiler cannot follow).
  std::vector<std::pair<uint32_t, uint32_t>> data_relocs;

  /// Exported symbol lookup by name.
  const isa::Symbol* find_export(std::string_view fn) const;

  /// Nearest symbol (export or local) at or before `offset`; used for
  /// symbolizing stack traces and disassembly listings.
  const isa::Symbol* symbol_at(uint32_t offset) const;

  /// Remove local (debug) symbols, as `strip` would.
  void Strip() { locals.clear(); }

  /// Serialize to the on-disk format.
  std::vector<uint8_t> Serialize() const;

  /// Parse the on-disk format; validates magic/version and string bounds.
  static Result<SharedObject> Parse(const std::vector<uint8_t>& bytes);

  /// Full text disassembly (function-annotated), for debugging and the
  /// paper's Figure-2-style listings.
  std::string Disassembly() const;
};

/// Convenience: wrap a finished CodeUnit into a SharedObject.
SharedObject FromCodeUnit(std::string name, isa::CodeUnit unit,
                          std::vector<std::string> needed = {});

}  // namespace lfi::sso
