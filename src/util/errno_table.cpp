#include "util/errno_table.hpp"

#include <algorithm>
#include <array>

#include "util/strings.hpp"

namespace lfi {
namespace {

struct Entry {
  int32_t value;
  const char* name;
};

constexpr std::array<Entry, 24> kTable{{
    {E_PERM, "EPERM"},
    {E_NOENT, "ENOENT"},
    {E_INTR, "EINTR"},
    {E_IO, "EIO"},
    {E_BADF, "EBADF"},
    {E_CHILD, "ECHILD"},
    {E_AGAIN, "EAGAIN"},
    {E_NOMEM, "ENOMEM"},
    {E_ACCES, "EACCES"},
    {E_FAULT, "EFAULT"},
    {E_BUSY, "EBUSY"},
    {E_EXIST, "EEXIST"},
    {E_NODEV, "ENODEV"},
    {E_NOTDIR, "ENOTDIR"},
    {E_ISDIR, "EISDIR"},
    {E_INVAL, "EINVAL"},
    {E_MFILE, "EMFILE"},
    {E_NOSPC, "ENOSPC"},
    {E_PIPE, "EPIPE"},
    {E_NOSYS, "ENOSYS"},
    {E_NOLINK, "ENOLINK"},
    {E_CONNRESET, "ECONNRESET"},
    {E_CONNREFUSED, "ECONNREFUSED"},
    {EOK, "EOK"},
}};

}  // namespace

std::string ErrnoName(int32_t value) {
  for (const Entry& e : kTable) {
    if (e.value == value) return e.name;
  }
  return Format("E%d", value);
}

std::optional<int32_t> ErrnoFromName(std::string_view name) {
  if (name == "EWOULDBLOCK") return E_AGAIN;
  for (const Entry& e : kTable) {
    if (name == e.name) return e.value;
  }
  return std::nullopt;
}

const std::vector<int32_t>& AllErrnos() {
  static const std::vector<int32_t> all = [] {
    std::vector<int32_t> v;
    for (const Entry& e : kTable) {
      if (e.value != EOK) v.push_back(e.value);
    }
    std::sort(v.begin(), v.end());
    return v;
  }();
  return all;
}

}  // namespace lfi
