// The errno namespace shared by the synthetic kernel, libc, fault profiles
// and scenario language. Values mirror Linux/x86 so that profiles read like
// the paper's examples (EBADF=9, EIO=5, EINTR=4, ...).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lfi {

enum Errno : int32_t {
  EOK = 0,
  E_PERM = 1,
  E_NOENT = 2,
  E_INTR = 4,
  E_IO = 5,
  E_BADF = 9,
  E_CHILD = 10,
  E_AGAIN = 11,  // == EWOULDBLOCK
  E_NOMEM = 12,
  E_ACCES = 13,
  E_FAULT = 14,
  E_BUSY = 16,
  E_EXIST = 17,
  E_NODEV = 19,
  E_NOTDIR = 20,
  E_ISDIR = 21,
  E_INVAL = 22,
  E_MFILE = 24,
  E_NOSPC = 28,
  E_PIPE = 32,
  E_NOSYS = 38,
  E_NOLINK = 67,
  E_CONNRESET = 104,
  E_CONNREFUSED = 111,
};

/// Symbolic name ("EBADF") for an errno value; "E<value>" if unknown.
std::string ErrnoName(int32_t value);

/// Reverse lookup: "EBADF" -> 9. Accepts "EWOULDBLOCK" as an alias of EAGAIN.
std::optional<int32_t> ErrnoFromName(std::string_view name);

/// All errno values the synthetic kernel can produce, in ascending order.
const std::vector<int32_t>& AllErrnos();

}  // namespace lfi
