#include "util/interner.hpp"

namespace lfi::util {

SymbolId SymbolTable::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

SymbolId SymbolTable::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(name);
  return it == ids_.end() ? kNoSymbol : it->second;
}

const std::string& SymbolTable::name(SymbolId id) const {
  static const std::string empty;
  std::lock_guard<std::mutex> lock(mu_);
  return id < names_.size() ? names_[id] : empty;
}

size_t SymbolTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

}  // namespace lfi::util
