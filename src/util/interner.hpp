// Symbol interning: dense integer IDs for function-name strings.
//
// Every layer that used to key on `std::string` function names on a per-call
// path (loader resolution, trigger state, coverage aggregation, injection
// records) resolves the name to a `SymbolId` ONCE — at load/install time —
// and indexes flat arrays afterwards. The hot-path invariant this buys:
// after stub install, no string is hashed or compared per intercepted call.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace lfi::util {

/// Dense, 0-based handle for an interned name. IDs are assigned in first-
/// intern order and are stable for the lifetime of their SymbolTable.
using SymbolId = uint32_t;

/// "Not interned" sentinel (never a valid index).
inline constexpr SymbolId kNoSymbol = UINT32_MAX;

/// A thread-safe name <-> dense-id table. Interning the same name from any
/// number of threads yields the same id (resolve-once semantics); `name()`
/// references stay valid forever, so resolved ids can be used lock-free.
///
/// The table is an install-time structure: per-call code never touches it —
/// it holds the ids (array indices) resolved up front.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Return the id for `name`, interning it on first sight.
  SymbolId Intern(std::string_view name);

  /// Return the id for `name`, or kNoSymbol if it was never interned.
  SymbolId Find(std::string_view name) const;

  /// The interned name for `id`; empty string for kNoSymbol / out of range.
  /// The reference is stable (names are never moved or freed).
  const std::string& name(SymbolId id) const;

  /// Number of distinct names interned so far.
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, SymbolId, std::less<>> ids_;
  std::deque<std::string> names_;  // indexed by SymbolId; addresses stable
};

}  // namespace lfi::util
