// Result<T>: a minimal expected-like type used at module boundaries.
//
// The library does not throw exceptions across public API boundaries
// (profiles and binaries may come from untrusted inputs); fallible
// operations return Result<T> carrying either a value or an error string.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace lfi {

/// Error payload: a human-readable message describing why an operation failed.
struct Error {
  std::string message;
};

/// Result<T> holds either a T or an Error. Query with ok(), then access
/// value() / error(). Accessing the wrong alternative asserts.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error err) : data_(std::move(err)) {}  // NOLINT: implicit by design

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& take() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const std::string& error() const {
    assert(!ok());
    return std::get<Error>(data_).message;
  }

 private:
  std::variant<T, Error> data_;
};

/// Convenience constructor for error results.
inline Error Err(std::string message) { return Error{std::move(message)}; }

/// Result<void> analogue: success flag plus optional error message.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error err) : error_(std::move(err.message)) {}  // NOLINT: implicit

  static Status Ok() { return Status(); }

  bool ok() const { return error_.empty(); }
  explicit operator bool() const { return ok(); }
  const std::string& error() const { return error_; }

 private:
  std::string error_;
};

}  // namespace lfi
