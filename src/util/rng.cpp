#include "util/rng.hpp"

namespace lfi {

Rng::Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

uint64_t Rng::next() {
  // xorshift64* (Vigna). Good-enough statistical quality, trivially portable.
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  return state_ * 0x2545f4914f6cdd1dull;
}

uint64_t Rng::below(uint64_t bound) {
  // Modulo bias is negligible for the bounds used here (< 2^32).
  return bound == 0 ? 0 : next() % bound;
}

int64_t Rng::range(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return uniform() < p;
}

}  // namespace lfi
