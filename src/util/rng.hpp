// Deterministic seeded PRNG (xorshift64*). All randomness in the library —
// random fault scenarios, corpus generation, workload jitter — flows through
// this type so experiments are exactly reproducible from a seed.
#pragma once

#include <cstdint>

namespace lfi {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t range(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

 private:
  uint64_t state_;
};

}  // namespace lfi
