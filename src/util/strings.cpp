#include "util/strings.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace lfi {

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t' ||
                           text.front() == '\n' || text.front() == '\r')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\n' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

namespace {

/// Shared magnitude parser behind ParseInt/ParseUint: an unsigned decimal
/// or 0x-hex number with no sign, fully consumed. strtoull would accept a
/// sign and skip interior whitespace ("- 5"); both are malformed here.
bool ParseMagnitude(const char* start, unsigned long long* out) {
  if (*start == '-' || *start == '+' ||
      std::isspace(static_cast<unsigned char>(*start))) {
    return false;
  }
  char* end = nullptr;
  int base = 10;
  if (start[0] == '0' && (start[1] == 'x' || start[1] == 'X')) base = 16;
  errno = 0;
  *out = std::strtoull(start, &end, base);
  return errno == 0 && end != start && *end == '\0';
}

}  // namespace

bool ParseInt(std::string_view text, int64_t* out) {
  text = Trim(text);
  if (text.empty()) return false;
  std::string buf(text);
  bool negative = false;
  const char* start = buf.c_str();
  if (*start == '-') {
    negative = true;
    ++start;
  }
  unsigned long long raw = 0;
  if (!ParseMagnitude(start, &raw)) return false;
  // Range check instead of a silent two's-complement wrap: values outside
  // [INT64_MIN, INT64_MAX] are malformed input, not huge negatives.
  if (negative) {
    if (raw > uint64_t{1} << 63) return false;
    *out = raw == uint64_t{1} << 63
               ? INT64_MIN
               : -static_cast<int64_t>(raw);
  } else {
    if (raw > static_cast<unsigned long long>(INT64_MAX)) return false;
    *out = static_cast<int64_t>(raw);
  }
  return true;
}

bool ParseUint(std::string_view text, uint64_t* out) {
  text = Trim(text);
  if (text.empty()) return false;
  std::string buf(text);
  unsigned long long raw = 0;
  if (!ParseMagnitude(buf.c_str(), &raw)) return false;
  *out = raw;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  text = Trim(text);
  if (text.empty()) return false;
  double value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

namespace {

/// CLI flag values must be whitespace-free: ParseUint/ParseDouble trim
/// outer whitespace (right for XML attribute text), but a flag value that
/// needed trimming is a quoting mistake the user should see.
bool HasWhitespace(const std::string& text) {
  for (unsigned char c : text) {
    if (std::isspace(c)) return true;
  }
  return false;
}

}  // namespace

Result<uint64_t> ParseCountFlag(const std::string& flag,
                                const std::string& text, uint64_t max) {
  uint64_t v = 0;
  if (HasWhitespace(text) || !ParseUint(text, &v)) {
    return Err(flag + " needs a non-negative integer, got \"" + text + "\"");
  }
  if (v > max) {
    return Err(flag + " must be at most " + std::to_string(max));
  }
  return v;
}

Result<double> ParseProbabilityFlag(const std::string& flag,
                                    const std::string& text) {
  double p = 0;
  if (HasWhitespace(text) || !ParseDouble(text, &p)) {
    return Err(flag + " needs a numeric probability, got \"" + text + "\"");
  }
  if (!(p > 0.0) || p > 1.0) {
    return Err(flag + " probability must be in (0, 1], got " + text);
  }
  return p;
}

std::string Hex(uint64_t value) { return Format("0x%llx", (unsigned long long)value); }

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

}  // namespace lfi
