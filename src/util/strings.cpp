#include "util/strings.hpp"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace lfi {

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t' ||
                           text.front() == '\n' || text.front() == '\r')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\n' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

bool ParseInt(std::string_view text, int64_t* out) {
  text = Trim(text);
  if (text.empty()) return false;
  std::string buf(text);
  char* end = nullptr;
  bool negative = false;
  const char* start = buf.c_str();
  if (*start == '-') {
    negative = true;
    ++start;
  }
  int base = 10;
  if (start[0] == '0' && (start[1] == 'x' || start[1] == 'X')) base = 16;
  errno = 0;
  unsigned long long raw = std::strtoull(start, &end, base);
  if (errno != 0 || end == start || *end != '\0') return false;
  int64_t value = static_cast<int64_t>(raw);
  *out = negative ? -value : value;
  return true;
}

std::string Hex(uint64_t value) { return Format("0x%llx", (unsigned long long)value); }

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

}  // namespace lfi
