// Small string helpers shared by the XML layer, disassembler and loggers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace lfi {

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Split on a delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char delim);

/// Trim ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// Parse a signed 64-bit integer (decimal, or hex with 0x prefix).
/// Returns false on malformed input or when the value does not fit in
/// int64_t (no silent two's-complement wrapping).
bool ParseInt(std::string_view text, int64_t* out);

/// Parse an unsigned 64-bit integer (decimal, or hex with 0x prefix).
/// Rejects signs, garbage, and out-of-range values.
bool ParseUint(std::string_view text, uint64_t* out);

/// Parse a finite double, locale-independently: the decimal separator is
/// always '.', whatever the host locale says (std::atof is not — a comma
/// locale silently truncates "0.25" to 0). Returns false on malformed or
/// non-finite input.
bool ParseDouble(std::string_view text, double* out);

/// Parse a non-negative integer CLI flag value strictly: built on
/// ParseUint, so signs, junk, and overflow are rejected — and unlike the
/// XML attribute path, any whitespace is malformed too (a shell-quoted
/// " 5" is a typo, not a trimmed value). `max` bounds the accepted range.
/// Errors name the flag.
Result<uint64_t> ParseCountFlag(const std::string& flag,
                                const std::string& text,
                                uint64_t max = UINT64_MAX);

/// Parse a probability CLI flag value strictly: locale-independent
/// (ParseDouble — "0.5" parses under a comma-decimal locale), no
/// whitespace, and required to lie in (0, 1]. Errors name the flag.
Result<double> ParseProbabilityFlag(const std::string& flag,
                                    const std::string& text);

/// Lower-case hexadecimal rendering with 0x prefix.
std::string Hex(uint64_t value);

bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace lfi
