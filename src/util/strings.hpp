// Small string helpers shared by the XML layer, disassembler and loggers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lfi {

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Split on a delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char delim);

/// Trim ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// Parse a signed 64-bit integer (decimal, or hex with 0x prefix).
/// Returns false on malformed input.
bool ParseInt(std::string_view text, int64_t* out);

/// Lower-case hexadecimal rendering with 0x prefix.
std::string Hex(uint64_t value);

bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace lfi
