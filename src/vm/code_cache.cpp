#include "vm/code_cache.hpp"

namespace lfi::vm {

void CodeCache::EnsureModule(size_t module_index,
                             const sso::SharedObject& object) {
  if (module_index >= modules_.size()) modules_.resize(module_index + 1);
  ModuleStream& ms = modules_[module_index];
  const std::vector<uint8_t>& code = object.code;
  if (!ms.slot_of_offset.empty() || code.empty()) return;  // already built
  ms.slot_of_offset.assign(code.size(), kNoSlot);
  uint32_t at = 0;
  while (at < code.size()) {
    auto ins = isa::DecodeOne(code, at);
    // Stop at the first undecodable byte: those offsets keep kNoSlot and
    // the VM's DecodeOne fallback reproduces the exact fault on execution.
    if (!ins.ok()) break;
    ms.slot_of_offset[at] = static_cast<uint32_t>(ms.instrs.size());
    at += ins.value().size;
    ms.instrs.push_back(std::move(ins).take());
  }

  // Instruction-start bit per byte offset, CoverageBitmap word layout.
  ms.start_bits.assign((code.size() + 63) / 64, 0);
  for (const isa::Instr& ins : ms.instrs) {
    ms.start_bits[ins.offset >> 6] |= uint64_t{1} << (ins.offset & 63);
  }

  // Superblock leaders, mirroring analysis/cfg's rule (function entry,
  // direct branch targets, post-terminator) widened to module scope:
  // every symbol and direct-call target is some function's CFG entry, and
  // data_relocs name the indirect-call function-pointer targets. Calls do
  // not end superblocks, matching CFG blocks (calls fall through).
  std::vector<uint8_t> leader(code.size(), 0);
  auto mark = [&](uint32_t offset) {
    if (offset < leader.size()) leader[offset] = 1;
  };
  for (const isa::Symbol& sym : object.exports) mark(sym.offset);
  for (const isa::Symbol& sym : object.locals) mark(sym.offset);
  for (const auto& [data_off, code_off] : object.data_relocs) {
    (void)data_off;
    mark(code_off);
  }
  for (const isa::Instr& ins : ms.instrs) {
    if ((ins.is_branch() && ins.op != isa::Opcode::JMP_IND) ||
        ins.op == isa::Opcode::CALL) {
      mark(ins.rel_target());
    }
    if (ins.is_terminator()) mark(ins.offset + ins.size);
  }

  // Partition the slots: a superblock begins at slot 0, at any leader
  // offset, and after any terminator.
  ms.sb_of_slot.assign(ms.instrs.size(), 0);
  for (uint32_t slot = 0; slot < ms.instrs.size(); ++slot) {
    bool begins = slot == 0 || leader[ms.instrs[slot].offset] ||
                  ms.instrs[slot - 1].is_terminator();
    if (begins) ms.superblocks.push_back(Superblock{slot, 0});
    Superblock& sb = ms.superblocks.back();
    ++sb.slot_count;
    ms.sb_of_slot[slot] = static_cast<uint32_t>(ms.superblocks.size() - 1);
  }
}

}  // namespace lfi::vm
