#include "vm/code_cache.hpp"

namespace lfi::vm {

void CodeCache::EnsureModule(size_t module_index,
                             const std::vector<uint8_t>& code) {
  if (module_index >= modules_.size()) modules_.resize(module_index + 1);
  ModuleStream& ms = modules_[module_index];
  if (!ms.slot_of_offset.empty() || code.empty()) return;  // already built
  ms.slot_of_offset.assign(code.size(), kNoSlot);
  uint32_t at = 0;
  while (at < code.size()) {
    auto ins = isa::DecodeOne(code, at);
    // Stop at the first undecodable byte: those offsets keep kNoSlot and
    // the VM's DecodeOne fallback reproduces the exact fault on execution.
    if (!ins.ok()) break;
    ms.slot_of_offset[at] = static_cast<uint32_t>(ms.instrs.size());
    at += ins.value().size;
    ms.instrs.push_back(std::move(ins).take());
  }
}

}  // namespace lfi::vm
