// Decode-once instruction streams and their superblock partition (the
// predecoded and superblock execution engines).
//
// Module text is immutable after Load, so the loader disassembles each
// module exactly once into a dense `std::vector<isa::Instr>` plus an
// offset -> slot index. The interpreter's fast paths then advance by slot
// instead of re-running `isa::DecodeOne` on every executed instruction;
// the slot -> offset direction (coverage recording, symbolization) is just
// `instrs[slot].offset`.
//
// On top of the stream, the same pass compiles a *superblock partition*:
// maximal straight-line slot runs delimited by exactly the leaders
// `analysis/cfg` uses (function entries, direct branch and call targets,
// the instruction after a terminator) — calls do not end superblocks, just
// as they do not end CFG basic blocks. Every slot belongs to exactly one
// superblock (test-enforced against per-function CFGs). The superblock
// engine uses the partition's companion `start_bits` — one bit per byte
// offset that begins an instruction — to record a whole executed span's
// coverage with a few word ORs instead of one bitmap store per
// instruction, and hoists instruction-count accounting the same way.
//
// The linear sweep stops at the first undecodable byte, and jump targets
// that land mid-instruction have no slot (`kNoSlot`): for both, the VM
// falls back to `isa::DecodeOne` at that pc so faults, error messages, and
// deliberately-weird control flow behave bit-identically to the reference
// decode-per-step path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "isa/isa.hpp"
#include "sso/sso.hpp"

namespace lfi::vm {

class CodeCache {
 public:
  /// slot_of_offset value for offsets that do not start an instruction.
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  /// One maximal straight-line run of slots: begins at a leader, ends at a
  /// terminator or just before the next leader.
  struct Superblock {
    uint32_t first_slot = 0;
    uint32_t slot_count = 0;
  };

  struct ModuleStream {
    /// Linear-sweep decode of the module text, in offset order.
    std::vector<isa::Instr> instrs;
    /// Byte offset -> slot in `instrs`; kNoSlot for mid-instruction bytes
    /// and for everything at/after the first undecodable byte.
    std::vector<uint32_t> slot_of_offset;
    /// The superblock partition, ascending by first_slot; superblocks
    /// tile `instrs` exactly (no gaps, no overlaps).
    std::vector<Superblock> superblocks;
    /// Slot -> index into `superblocks` (every slot maps into exactly one).
    std::vector<uint32_t> sb_of_slot;
    /// Bit per byte offset that begins a decoded instruction, in
    /// CoverageBitmap word layout. Executing slots [s, e] covers exactly
    /// start_bits masked to [instrs[s].offset, instrs[e].offset] — the
    /// superblock engine's one-OR-per-span coverage update.
    std::vector<uint64_t> start_bits;

    /// Instructions from `slot` to the end of its superblock, inclusive.
    uint32_t run_length(uint32_t slot) const {
      const Superblock& sb = superblocks[sb_of_slot[slot]];
      return sb.first_slot + sb.slot_count - slot;
    }
  };

  /// Predecode `object`'s text for the module at `module_index` and build
  /// its superblock partition (no-op if already built — module text never
  /// changes after Load).
  void EnsureModule(size_t module_index, const sso::SharedObject& object);

  /// The predecoded stream for a module, or nullptr if never built.
  const ModuleStream* stream(size_t module_index) const {
    return module_index < modules_.size() ? &modules_[module_index] : nullptr;
  }

  size_t module_count() const { return modules_.size(); }

 private:
  std::vector<ModuleStream> modules_;
};

}  // namespace lfi::vm
