// Decode-once instruction streams (the predecoded execution engine).
//
// Module text is immutable after Load, so the loader disassembles each
// module exactly once into a dense `std::vector<isa::Instr>` plus an
// offset -> slot index. The interpreter's fast path then advances by slot
// instead of re-running `isa::DecodeOne` on every executed instruction;
// the slot -> offset direction (coverage recording, symbolization) is just
// `instrs[slot].offset`.
//
// The linear sweep stops at the first undecodable byte, and jump targets
// that land mid-instruction have no slot (`kNoSlot`): for both, the VM
// falls back to `isa::DecodeOne` at that pc so faults, error messages, and
// deliberately-weird control flow behave bit-identically to the reference
// decode-per-step path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "isa/isa.hpp"

namespace lfi::vm {

class CodeCache {
 public:
  /// slot_of_offset value for offsets that do not start an instruction.
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  struct ModuleStream {
    /// Linear-sweep decode of the module text, in offset order.
    std::vector<isa::Instr> instrs;
    /// Byte offset -> slot in `instrs`; kNoSlot for mid-instruction bytes
    /// and for everything at/after the first undecodable byte.
    std::vector<uint32_t> slot_of_offset;
  };

  /// Predecode `code` for the module at `module_index` (no-op if already
  /// built — module text never changes after Load).
  void EnsureModule(size_t module_index, const std::vector<uint8_t>& code);

  /// The predecoded stream for a module, or nullptr if never built.
  const ModuleStream* stream(size_t module_index) const {
    return module_index < modules_.size() ? &modules_[module_index] : nullptr;
  }

  size_t module_count() const { return modules_.size(); }

 private:
  std::vector<ModuleStream> modules_;
};

}  // namespace lfi::vm
