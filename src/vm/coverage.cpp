#include "vm/coverage.hpp"

// Header-only for now; this TU anchors the library target.
