#include "vm/coverage.hpp"

#include <algorithm>

namespace lfi::vm {

size_t CoverageBitmap::Count() const {
  size_t total = 0;
  for (uint64_t word : words_) {
    total += static_cast<size_t>(__builtin_popcountll(word));
  }
  return total;
}

size_t CoverageBitmap::CountNotIn(const CoverageBitmap& other) const {
  size_t total = 0;
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t masked = words_[w];
    // Clamp, don't assert: `other` is clear past its own size, so every
    // bit of ours beyond it counts as fresh. The converse direction needs
    // no handling — our loop never reads past words_, and other's extra
    // bits cannot contribute to "set in this, not in other".
    if (w < other.words_.size()) masked &= ~other.words_[w];
    total += static_cast<size_t>(__builtin_popcountll(masked));
  }
  return total;
}

void CoverageBitmap::Merge(const CoverageBitmap& other) {
  Resize(other.bits_);
  for (size_t w = 0; w < other.words_.size(); ++w) words_[w] |= other.words_[w];
}

std::vector<uint32_t> CoverageBitmap::ToOffsets() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  ForEachSet([&](uint32_t offset) { out.push_back(offset); });
  return out;
}

bool operator==(const CoverageBitmap& a, const CoverageBitmap& b) {
  // Bitmaps compare by content: trailing zero words (size padding) do not
  // make two equal coverage sets unequal.
  size_t common = std::min(a.words_.size(), b.words_.size());
  for (size_t w = 0; w < common; ++w) {
    if (a.words_[w] != b.words_[w]) return false;
  }
  const auto& longer = a.words_.size() > common ? a.words_ : b.words_;
  for (size_t w = common; w < longer.size(); ++w) {
    if (longer[w] != 0) return false;
  }
  return true;
}

size_t CoverageTracker::covered_total() const {
  size_t total = 0;
  for (const CoverageBitmap& bm : modules_) total += bm.Count();
  return total;
}

void CoverageTracker::Merge(const CoverageTracker& other) {
  if (other.modules_.size() > modules_.size()) {
    modules_.resize(other.modules_.size());
  }
  for (size_t i = 0; i < other.modules_.size(); ++i) {
    modules_[i].Merge(other.modules_[i]);
  }
}

}  // namespace lfi::vm
