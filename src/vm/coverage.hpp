// Basic-block coverage support (paper §6.1, "Improving Coverage").
//
// The tracker records executed instruction offsets per module in dense
// bitmaps sized from the module text length: `Record` is two shifts and an
// OR — no hashing, no tree walk, no allocation — so coverage collection is
// safe to leave on during throughput campaigns. Block-level coverage is
// derived later by projecting the bitmap onto a CFG's block starts, the way
// gcov-style tooling attributes execution to blocks. `Merge` is a bitwise
// OR, which makes campaign-wide union coverage order-independent (and
// therefore deterministic across worker counts).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lfi::vm {

/// Executed-offset bitmap for one module: bit i == "the instruction at text
/// offset i was executed". Sized from the module's text length, one bit per
/// byte of text (offsets are byte offsets into the code section).
class CoverageBitmap {
 public:
  CoverageBitmap() = default;
  explicit CoverageBitmap(size_t text_bytes) { Resize(text_bytes); }

  /// Grow to cover `text_bytes` offsets; never shrinks, set bits survive.
  void Resize(size_t text_bytes) {
    if (text_bytes > bits_) {
      bits_ = text_bytes;
      words_.resize((bits_ + 63) / 64, 0);
    }
  }

  size_t size_bits() const { return bits_; }

  void Set(uint32_t offset) {
    if (offset < bits_) words_[offset >> 6] |= uint64_t{1} << (offset & 63);
  }

  bool Test(uint32_t offset) const {
    return offset < bits_ &&
           (words_[offset >> 6] >> (offset & 63) & uint64_t{1}) != 0;
  }

  /// OR `src`'s bits restricted to offsets [lo, hi] (inclusive) into this
  /// bitmap. `src` must use the same word layout (bit i = offset i). The
  /// superblock engine records a whole executed span with one call: `src`
  /// is the module's instruction-start bit array, so the result is
  /// bit-identical to calling Set() once per executed instruction.
  void OrMasked(const std::vector<uint64_t>& src, uint32_t lo, uint32_t hi) {
    if (bits_ == 0 || lo > hi) return;
    // Clamp exactly like Set(): offsets at/past bits_ are dropped.
    if (hi >= bits_) hi = static_cast<uint32_t>(bits_ - 1);
    if (lo > hi) return;
    size_t w0 = lo >> 6, w1 = hi >> 6;
    if (w1 >= src.size()) return;
    uint64_t first = ~uint64_t{0} << (lo & 63);
    uint64_t last = ~uint64_t{0} >> (63 - (hi & 63));
    if (w0 == w1) {
      words_[w0] |= src[w0] & first & last;
      return;
    }
    words_[w0] |= src[w0] & first;
    for (size_t w = w0 + 1; w < w1; ++w) words_[w] |= src[w];
    words_[w1] |= src[w1] & last;
  }

  /// Number of set bits.
  size_t Count() const;

  /// Number of bits set in this bitmap but not in `other` — the "new
  /// coverage" a scenario adds over a corpus-union bitmap (explorer
  /// fitness). Word-wise AND-NOT popcount, no allocation.
  /// Mismatched sizes clamp rather than assert: `other` is treated as
  /// all-clear past its size (a shorter union bitmap — e.g. a
  /// freshly-default-constructed one — makes every bit here fresh), and
  /// bits `other` has past this bitmap's size are irrelevant by
  /// definition. So CountNotIn({}) == Count().
  size_t CountNotIn(const CoverageBitmap& other) const;

  bool Empty() const { return Count() == 0; }

  /// Bitwise-OR `other` into this bitmap, growing as needed.
  void Merge(const CoverageBitmap& other);

  /// Zero all bits, keeping the sizing.
  void Clear() { words_.assign(words_.size(), 0); }

  /// Invoke `fn(offset)` for every set bit, ascending.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(word));
        fn(static_cast<uint32_t>(w * 64 + bit));
        word &= word - 1;
      }
    }
  }

  /// Set bits as a sorted offset list (report/serialization use).
  std::vector<uint32_t> ToOffsets() const;

  friend bool operator==(const CoverageBitmap& a, const CoverageBitmap& b);

 private:
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

bool operator==(const CoverageBitmap& a, const CoverageBitmap& b);
inline bool operator!=(const CoverageBitmap& a, const CoverageBitmap& b) {
  return !(a == b);
}

/// Per-module coverage bitmaps, indexed by the loader's dense module index.
/// The owning machine sizes each module's bitmap from its text length when
/// coverage is enabled (and when modules load), so the per-instruction
/// `Record` is a pure bitmap store.
class CoverageTracker {
 public:
  /// Size (or grow) the bitmap for `module_index` to `text_bytes`.
  void EnsureModule(size_t module_index, size_t text_bytes) {
    if (module_index >= modules_.size()) modules_.resize(module_index + 1);
    modules_[module_index].Resize(text_bytes);
  }

  /// Hot path: mark text offset `offset` of module `module_index` executed.
  void Record(size_t module_index, uint32_t offset) {
    if (module_index < modules_.size()) modules_[module_index].Set(offset);
  }

  /// Hot path of the superblock engine: mark every instruction start in
  /// [lo, hi] executed in one masked OR. `starts` is the module's
  /// instruction-start bit array (CodeCache::ModuleStream::start_bits);
  /// equivalent to Record() per instruction in the span.
  void RecordSpan(size_t module_index, uint32_t lo, uint32_t hi,
                  const std::vector<uint64_t>& starts) {
    if (module_index < modules_.size()) {
      modules_[module_index].OrMasked(starts, lo, hi);
    }
  }

  const CoverageBitmap& executed(size_t module_index) const {
    static const CoverageBitmap empty;
    return module_index < modules_.size() ? modules_[module_index] : empty;
  }

  bool was_executed(size_t module_index, uint32_t offset) const {
    return module_index < modules_.size() && modules_[module_index].Test(offset);
  }

  size_t module_count() const { return modules_.size(); }

  /// Executed offsets in one module / across all modules.
  size_t covered(size_t module_index) const {
    return module_index < modules_.size() ? modules_[module_index].Count() : 0;
  }
  size_t covered_total() const;

  /// Union `other` into this tracker (bitwise OR per module, growing as
  /// needed). Order-independent: campaign workers can be merged in any
  /// order and produce the same aggregate.
  void Merge(const CoverageTracker& other);

  /// Zero every bitmap, keeping module sizing (machine reuse across runs).
  void Clear() {
    for (CoverageBitmap& bm : modules_) bm.Clear();
  }

 private:
  std::vector<CoverageBitmap> modules_;
};

}  // namespace lfi::vm
