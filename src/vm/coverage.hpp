// Basic-block coverage support (paper §6.1, "Improving Coverage").
//
// The tracker records executed instruction offsets per module; block-level
// coverage is derived later by intersecting with a CFG's block starts, the
// way gcov-style tooling attributes execution to blocks.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace lfi::vm {

class CoverageTracker {
 public:
  void Record(size_t module_index, uint32_t offset) {
    executed_[module_index].insert(offset);
  }

  const std::set<uint32_t>& executed(size_t module_index) const {
    static const std::set<uint32_t> empty;
    auto it = executed_.find(module_index);
    return it == executed_.end() ? empty : it->second;
  }

  bool was_executed(size_t module_index, uint32_t offset) const {
    auto it = executed_.find(module_index);
    return it != executed_.end() && it->second.count(offset) > 0;
  }

  void Clear() { executed_.clear(); }

 private:
  std::map<size_t, std::set<uint32_t>> executed_;
};

}  // namespace lfi::vm
