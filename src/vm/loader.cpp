#include "vm/loader.hpp"

#include <algorithm>
#include <cassert>

#include "util/strings.hpp"

namespace lfi::vm {

size_t Loader::Load(sso::SharedObject object) {
  auto mod = std::make_unique<LoadedModule>();
  mod->index = modules_.size();
  mod->code_base = ModuleCodeBase(mod->index);
  mod->data_base = ModuleDataBase(mod->index);
  mod->object = std::move(object);
  mod->data_runtime = mod->object.data;
  mod->tls_base = tls_cursor_;
  tls_cursor_ += mod->object.tls_size;
  assert(tls_cursor_ <= kTlsSize && "TLS segment exhausted");
  assert(mod->object.code.size() < kModuleDataDelta && "code section too big");
  assert(mod->object.data.size() <= kModuleSpacing - kModuleDataDelta &&
         "data section too big");
  // Apply relative relocations: function-pointer slots in the data section.
  for (const auto& [data_off, code_off] : mod->object.data_relocs) {
    uint64_t addr = mod->code_base + code_off;
    assert(data_off + 8 <= mod->data_runtime.size());
    for (int i = 0; i < 8; ++i) {
      mod->data_runtime[data_off + static_cast<uint32_t>(i)] =
          static_cast<uint8_t>(addr >> (8 * i));
    }
  }
  mod->data_pristine = mod->data_runtime;
  mod->plt.assign(mod->object.imports.size(), std::nullopt);
  mod->plt_generation = 0;
  // Intern every export into the machine symbol table and fill the dense
  // export map (first definition in load order wins, matching the search
  // order the string-based resolver used).
  for (const isa::Symbol& sym : mod->object.exports) {
    SymbolId id = symbols_.Intern(sym.name);
    if (id >= export_addr_.size()) export_addr_.resize(id + 1, 0);
    if (export_addr_[id] == 0) export_addr_[id] = mod->code_base + sym.offset;
  }
  // Pre-intern imports so PLT misses resolve by id, never by string.
  mod->import_ids.reserve(mod->object.imports.size());
  for (const std::string& import : mod->object.imports) {
    mod->import_ids.push_back(symbols_.Intern(import));
  }
  code_cache_.EnsureModule(mod->index, mod->object);
  modules_.push_back(std::move(mod));
  ++generation_;
  return modules_.size() - 1;
}

void Loader::ResetData() {
  for (auto& mod : modules_) {
    // Keep the buffer (processes map its pointer); overwrite contents only.
    std::copy(mod->data_pristine.begin(), mod->data_pristine.end(),
              mod->data_runtime.begin());
    // This wholesale rewrite bypasses the per-write journal: every page may
    // now differ from a snapshot image, so the next restore must copy all.
    mod->data_dirty.MarkAll();
  }
}

uint64_t Loader::RegisterNative(const std::string& name, NativeFn fn) {
  ++generation_;
  SymbolId id = symbols_.Intern(name);
  if (id >= native_by_id_.size()) native_by_id_.resize(id + 1, kNoNative);
  if (native_by_id_[id] != kNoNative) {
    size_t slot = native_by_id_[id];
    natives_[slot].fn = std::move(fn);
    return kNativeStubBase + slot * kNativeStubSpacing;
  }
  size_t slot = natives_.size();
  natives_.push_back({name, std::move(fn)});
  native_by_id_[id] = slot;
  return kNativeStubBase + slot * kNativeStubSpacing;
}

void Loader::ClearNatives() {
  natives_.clear();
  std::fill(native_by_id_.begin(), native_by_id_.end(), kNoNative);
  ++generation_;
}

void Loader::SetInterpositionEnabled(bool enabled) {
  if (interpose_enabled_ != enabled) {
    interpose_enabled_ = enabled;
    ++generation_;
  }
}

Target Loader::Resolve(size_t module_index, uint16_t import_index) const {
  const LoadedModule& mod = *modules_[module_index];
  if (mod.plt_generation != generation_) {
    mod.plt.assign(mod.object.imports.size(), std::nullopt);
    mod.plt_generation = generation_;
  }
  if (import_index >= mod.plt.size()) return Target{};
  auto& slot = mod.plt[import_index];
  if (!slot) slot = ResolveId(mod.import_ids[import_index]);
  return *slot;
}

Target Loader::ResolveId(SymbolId id) const {
  if (interpose_enabled_ && id < native_by_id_.size() &&
      native_by_id_[id] != kNoNative) {
    size_t slot = native_by_id_[id];
    return Target{Target::Kind::Native,
                  kNativeStubBase + slot * kNativeStubSpacing, slot};
  }
  return ResolveNextId(id);
}

Target Loader::ResolveNextId(SymbolId id) const {
  if (id < export_addr_.size() && export_addr_[id] != 0) {
    return Target{Target::Kind::Code, export_addr_[id], 0};
  }
  return Target{};
}

Target Loader::ResolveName(std::string_view name) const {
  SymbolId id = symbols_.Find(name);
  return id == kNoSymbol ? Target{} : ResolveId(id);
}

Target Loader::ResolveNextName(std::string_view name) const {
  SymbolId id = symbols_.Find(name);
  return id == kNoSymbol ? Target{} : ResolveNextId(id);
}

const LoadedModule* Loader::module_named(std::string_view name) const {
  for (const auto& mod : modules_) {
    if (mod->object.name == name) return mod.get();
  }
  return nullptr;
}

const LoadedModule* Loader::module_at(uint64_t addr) const {
  // Module code bases are a fixed arithmetic progression and text never
  // exceeds the module spacing (asserted in Load), so containment is O(1).
  if (addr < kModuleBase) return nullptr;
  size_t index = ModuleIndexOf(addr);
  if (index >= modules_.size()) return nullptr;
  const LoadedModule* mod = modules_[index].get();
  return addr - mod->code_base < mod->object.code.size() ? mod : nullptr;
}

std::string Loader::Symbolize(uint64_t addr) const {
  if (IsNativeStubAddress(addr)) {
    size_t id = NativeStubIndex(addr);
    if (id < natives_.size()) return "stub`" + natives_[id].name;
    return "stub`?";
  }
  const LoadedModule* mod = module_at(addr);
  if (!mod) return Hex(addr);
  uint32_t off = static_cast<uint32_t>(addr - mod->code_base);
  const isa::Symbol* sym = mod->object.symbol_at(off);
  if (!sym) return mod->object.name + "`" + Hex(off);
  if (sym->offset == off) return sym->name;
  return Format("%s+0x%x", sym->name.c_str(), off - sym->offset);
}

const NativeFn* Loader::native(size_t id) const {
  return id < natives_.size() ? &natives_[id].fn : nullptr;
}

const std::string& Loader::native_name(size_t id) const {
  static const std::string empty;
  return id < natives_.size() ? natives_[id].name : empty;
}

}  // namespace lfi::vm
