// The dynamic loader: module mapping, symbol resolution, interposition.
//
// This is the LD_PRELOAD analogue (paper §5.1). Native interposition stubs
// registered by the LFI controller are searched *before* loaded modules, so
// a stub shadows the library function of the same name — including calls
// made from inside other libraries, since every CALL_SYM resolves through
// here (the PLT behaviour the paper relies on). ResolveNext() is the
// dlsym(RTLD_NEXT, ...) analogue a stub uses to reach the original.
//
// Every symbol name is interned into the per-machine SymbolTable at load /
// register time; resolution proper is indexed by dense SymbolId (export and
// native tables are flat vectors), so after install no per-call resolution
// ever hashes or compares a string. The string-taking Resolve*Name entry
// points are thin resolve-once wrappers kept for setup-time callers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sso/sso.hpp"
#include "util/interner.hpp"
#include "vm/code_cache.hpp"
#include "vm/memory.hpp"

namespace lfi::vm {

class Process;

/// The machine-wide name interner and its dense id type (one table per
/// Machine, owned by its Loader).
using SymbolTable = util::SymbolTable;
using SymbolId = util::SymbolId;
using util::kNoSymbol;

/// What a stub tells the VM to do after it ran.
struct NativeAction {
  enum class Kind { Return, TailCall };
  Kind kind = Kind::Return;
  int64_t value = 0;    // Return: placed in R0
  uint64_t target = 0;  // TailCall: jump target (original function)

  static NativeAction Ret(int64_t v) { return {Kind::Return, v, 0}; }
  static NativeAction Tail(uint64_t addr) { return {Kind::TailCall, 0, addr}; }
};

/// Call-side view handed to a native stub: argument access, memory access,
/// the symbolized backtrace, and the identity of the intercepted function.
class NativeFrame {
 public:
  NativeFrame(Process& proc, const std::string& symbol)
      : proc_(proc), symbol_(symbol) {}

  Process& process() { return proc_; }
  const std::string& symbol() const { return symbol_; }

  /// Argument i of the intercepted call (stack layout: no frame built yet).
  int64_t arg(int i) const;
  /// Overwrite argument i in place (argument-modification faults, §4).
  bool set_arg(int i, int64_t v);

  /// Innermost-first backtrace: (return address, enclosing symbol) pairs.
  std::vector<std::pair<uint64_t, std::string>> backtrace() const;

 private:
  Process& proc_;
  const std::string& symbol_;
};

using NativeFn = std::function<NativeAction(NativeFrame&)>;

/// Resolution target of a symbol: either module code or a native stub.
struct Target {
  enum class Kind { Code, Native, Unresolved };
  Kind kind = Target::Kind::Unresolved;
  uint64_t addr = 0;   // Code: virtual address; Native: stub address
  size_t native_id = 0;
};

struct LoadedModule {
  sso::SharedObject object;
  size_t index = 0;
  uint64_t code_base = 0;
  uint64_t data_base = 0;
  std::vector<uint8_t> data_runtime;  // relocated copy of the data section
  std::vector<uint8_t> data_pristine; // post-relocation snapshot for resets
  uint32_t tls_base = 0;              // module's slice of the TLS segment
  std::vector<SymbolId> import_ids;   // imports pre-interned at load
  // Lazily-bound PLT cache, invalidated when interposition changes.
  mutable std::vector<std::optional<Target>> plt;
  mutable uint64_t plt_generation = 0;
  /// Dirty-page journal over data_runtime, enabled while a machine
  /// snapshot exists. Module data is shared by all processes, so the
  /// journal lives with the module, not with a process.
  DirtyMap data_dirty;
};

class Loader {
 public:
  /// Map a shared object; modules are searched in load order.
  /// Returns the module index.
  size_t Load(sso::SharedObject object);

  /// Restore every module's data section to its freshly-loaded (relocated)
  /// state. Module data is mapped writable into all processes, so this is
  /// required when reusing a loaded machine for another independent run.
  void ResetData();

  /// Register an interposition stub for `name`. Returns its stub address
  /// (usable as a function pointer). Re-registering replaces the stub.
  uint64_t RegisterNative(const std::string& name, NativeFn fn);
  /// Remove all interposition stubs (keeps modules loaded).
  void ClearNatives();
  /// Toggle interposition without unregistering (baseline measurements).
  void SetInterpositionEnabled(bool enabled);
  bool interposition_enabled() const { return interpose_enabled_; }

  // -- symbol interning ------------------------------------------------------
  /// The machine-wide name table. All exports and imports are interned at
  /// Load time; RegisterNative interns too, so any resolvable name has an
  /// id. Resolve a name once, keep the id, and resolve by id afterwards.
  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }
  SymbolId Intern(std::string_view name) { return symbols_.Intern(name); }

  // -- resolution ------------------------------------------------------------
  /// Resolve import `import_index` of `module_index` (PLT-cached).
  Target Resolve(size_t module_index, uint16_t import_index) const;
  /// Resolve an interned symbol: natives first (if enabled), then the
  /// load-order export table. Pure array indexing.
  Target ResolveId(SymbolId id) const;
  /// Resolve skipping natives — dlsym(RTLD_NEXT): the original function.
  Target ResolveNextId(SymbolId id) const;
  /// String wrappers for setup-time callers (one table lookup, then ids).
  Target ResolveName(std::string_view name) const;
  Target ResolveNextName(std::string_view name) const;

  // -- introspection ---------------------------------------------------------
  const std::vector<std::unique_ptr<LoadedModule>>& modules() const {
    return modules_;
  }
  const LoadedModule* module_named(std::string_view name) const;
  /// Module containing a code address, or nullptr.
  const LoadedModule* module_at(uint64_t addr) const;
  /// Symbolize a code address ("libc.so`read+0x12" style name, or hex).
  std::string Symbolize(uint64_t addr) const;

  const NativeFn* native(size_t id) const;
  const std::string& native_name(size_t id) const;

  /// Predecoded per-module instruction streams, built once at Load time
  /// (module text is immutable). The VM's fast path fetches from here.
  const CodeCache& code_cache() const { return code_cache_; }

  /// Total TLS bytes assigned to modules so far.
  uint32_t tls_used() const { return tls_cursor_; }

  uint64_t generation() const { return generation_; }

 private:
  static constexpr size_t kNoNative = SIZE_MAX;

  std::vector<std::unique_ptr<LoadedModule>> modules_;
  struct Native {
    std::string name;
    NativeFn fn;
  };
  std::vector<Native> natives_;
  CodeCache code_cache_;
  SymbolTable symbols_;
  /// SymbolId -> first export in load order (0 = none; code addresses are
  /// never 0 because module code bases start above the null page).
  std::vector<uint64_t> export_addr_;
  /// SymbolId -> native slot, or kNoNative.
  std::vector<size_t> native_by_id_;
  bool interpose_enabled_ = true;
  uint64_t generation_ = 1;  // bumped whenever resolution could change
  uint32_t tls_cursor_ = 0;  // next module TLS slice (module-relative)
};

}  // namespace lfi::vm
