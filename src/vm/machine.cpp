#include "vm/machine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "kernel/kernel_image.hpp"
#include "vm/snapshot.hpp"

namespace lfi::vm {

Machine::~Machine() = default;

Machine::Machine() {
  size_t kidx = loader_.Load(kernel::BuildKernelImage());
  const LoadedModule& kmod = *loader_.modules()[kidx];
  for (const auto& spec : kernel::SyscallTable()) {
    const isa::Symbol* sym = kmod.object.find_export(kernel::HandlerName(spec));
    if (sym) {
      uint16_t number = static_cast<uint16_t>(spec.number);
      if (number >= syscall_targets_.size()) {
        syscall_targets_.resize(number + 1, 0);
      }
      syscall_targets_[number] = kmod.code_base + sym->offset;
    }
  }
  if (const char* mode = std::getenv("LFI_EXEC")) {
    if (std::optional<ExecMode> parsed = ParseExecMode(mode)) {
      exec_mode_ = *parsed;
    } else {
      // A typo here would silently turn a differential baseline into
      // superblock-vs-superblock; say so instead.
      std::fprintf(stderr,
                   "machine: unknown LFI_EXEC value '%s' "
                   "(expected 'superblock', 'predecoded', or 'reference'); "
                   "using the superblock engine\n",
                   mode);
    }
  }
  kernel_.set_spawn_hook([this](const std::string& symbol) -> Result<int> {
    auto pid = CreateProcess(symbol, default_heap_cap_);
    return pid;
  });
}

void Machine::SetExecMode(ExecMode mode) {
  exec_mode_ = mode;
  for (auto& p : procs_) p->set_exec_mode(mode);
}

void Machine::Reset() {
  procs_.clear();
  exit_reported_.clear();
  total_instructions_ = 0;
  loader_.ResetData();
  kernel_.Reset();
  if (coverage_) coverage_->Clear();
  stops_.clear();
  // tree_ (if any) stays valid: node contents are self-contained, and
  // ResetData marked every data page dirty, so the next RestoreTo copies
  // all module pages and reconstructs processes from materialized images.
  // The live state no longer extends any node, though — a PushSnapshot
  // from here must start a fresh tree.
  current_node_ = kNoSnapshot;
}

bool Machine::ModuleSetMatches(const SnapshotTree& tree) const {
  // Stubs/natives may differ — the controller owns those — but the module
  // count and data section sizes are load-time constants.
  if (loader_.modules().size() != tree.module_count) return false;
  for (size_t m = 0; m < tree.module_count; ++m) {
    if (loader_.modules()[m]->data_runtime.size() !=
        tree.module_data_bytes[m]) {
      return false;
    }
  }
  return true;
}

SnapshotId Machine::PushSnapshot() {
  // A push with no current position (first capture, or first after
  // Reset()) — or with a module set the tree's deltas don't describe —
  // starts a fresh tree: old nodes are relative to machine states that no
  // longer exist.
  bool fresh =
      !tree_ || current_node_ == kNoSnapshot || !ModuleSetMatches(*tree_);
  if (fresh) {
    tree_ = std::make_unique<SnapshotTree>();
    current_node_ = kNoSnapshot;
    tree_->module_count = loader_.modules().size();
    tree_->module_data_bytes.reserve(tree_->module_count);
    for (const auto& mod : loader_.modules()) {
      tree_->module_data_bytes.push_back(mod->data_runtime.size());
    }
  }
  SnapshotTree& tree = *tree_;
  SnapshotNode node;
  node.parent = current_node_;
  node.depth = fresh ? 0 : tree.nodes[current_node_].depth + 1;
  node.total_instructions = total_instructions_;
  node.exit_reported = exit_reported_;
  node.kernel = kernel_.CaptureState();
  if (coverage_) node.coverage = *coverage_;
  node.module_data.resize(tree.module_count);
  for (size_t m = 0; m < tree.module_count; ++m) {
    LoadedModule& mod = *loader_.modules()[m];
    // The root captures every page; children capture the journal's dirty
    // set (which a journal enabled mid-window over-approximates safely —
    // ResetData's MarkAll is the extreme case).
    node.module_data[m] =
        fresh || !mod.data_dirty.enabled()
            ? CaptureAllPages(mod.data_runtime.data(), mod.data_runtime.size())
            : CaptureDirtyPages(mod.data_dirty, mod.data_runtime.data(),
                                mod.data_runtime.size());
    mod.data_dirty.Enable(mod.data_runtime.size());
    mod.data_dirty.ClearAll();
  }
  node.procs.resize(procs_.size());
  for (size_t i = 0; i < procs_.size(); ++i) {
    // A process delta is only meaningful if the parent node captured this
    // same process (index, pid, segment sizes) and its journal was live
    // across the whole window; anything else — root, spawned since the
    // parent, realigned — is captured in full so the ancestor walk for
    // its pages always terminates.
    bool aligned = false;
    if (!fresh && i < tree.nodes[current_node_].procs.size()) {
      const ProcessNodeState& pps = tree.nodes[current_node_].procs[i];
      aligned = pps.core.pid == procs_[i]->pid() &&
                pps.heap_bytes == procs_[i]->heap_bytes() &&
                procs_[i]->dirty_tracking_enabled();
    }
    procs_[i]->CaptureNode(&node.procs[i], /*full=*/!aligned);
  }
  tree.nodes.push_back(std::move(node));
  current_node_ = static_cast<SnapshotId>(tree.nodes.size() - 1);
  return current_node_;
}

bool Machine::RestoreTo(SnapshotId target) {
  if (!tree_ || target >= tree_->nodes.size()) return false;
  SnapshotTree& tree = *tree_;
  // Validate before mutating anything.
  if (!ModuleSetMatches(tree)) return false;
  const SnapshotNode& node = tree.nodes[target];
  ++restore_stats_.restores;
  // Nodes whose deltas can make the current state differ from the target:
  // both sides of the tree path to their common ancestor. With no current
  // position (after Reset()) this is the target's whole ancestor chain —
  // everything may differ.
  const std::vector<SnapshotId> path =
      TreePathBetween(tree, current_node_, target);
  restore_stats_.nodes_walked += path.size();

  for (size_t m = 0; m < tree.module_count; ++m) {
    LoadedModule& mod = *loader_.modules()[m];
    if (mod.data_runtime.empty()) continue;
    std::vector<uint32_t> pages;
    if (mod.data_dirty.enabled()) {
      mod.data_dirty.ForEachDirtyPage(
          [&](uint64_t p) { pages.push_back(static_cast<uint32_t>(p)); });
    } else {
      // Journal lost (defensive — DropSnapshot also drops the tree): every
      // page may differ.
      uint64_t count = (mod.data_runtime.size() + DirtyMap::kPageSize - 1) >>
                       DirtyMap::kPageBits;
      for (uint64_t p = 0; p < count; ++p) {
        pages.push_back(static_cast<uint32_t>(p));
      }
    }
    for (SnapshotId id : path) {
      const PageDelta& d = tree.nodes[id].module_data[m];
      pages.insert(pages.end(), d.pages.begin(), d.pages.end());
    }
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
    for (uint32_t page : pages) {
      uint64_t off = uint64_t{page} << DirtyMap::kPageBits;
      if (off >= mod.data_runtime.size()) continue;
      const uint8_t* src = FindModulePage(tree, target, m, page,
                                          &restore_stats_.nodes_walked);
      std::memcpy(mod.data_runtime.data() + off, src,
                  std::min(DirtyMap::kPageSize, mod.data_runtime.size() - off));
      ++restore_stats_.pages_restored;
    }
    mod.data_dirty.Enable(mod.data_runtime.size());
    mod.data_dirty.ClearAll();
  }

  // Per process: in place (O(pages that differ)) when the live process is
  // the one the target captured and its journal is live; otherwise rebuild
  // from a materialized image (post-Reset, or re-spawned/truncated since).
  const size_t want = node.procs.size();
  for (size_t i = 0; i < want; ++i) {
    const ProcessNodeState& tps = node.procs[i];
    bool in_place =
        i < procs_.size() && procs_[i]->pid() == tps.core.pid &&
        procs_[i]->heap_bytes() == tps.heap_bytes &&
        procs_[i]->dirty_tracking_enabled();
    if (in_place) {
      procs_[i]->RestoreFromTree(tree, target, i, path, &restore_stats_);
    } else {
      ProcessSnapshot ps = MaterializeProcess(tree, target, i);
      auto proc = std::make_unique<Process>(tps.core.pid, loader_, kernel_,
                                            syscall_targets_, tps.heap_bytes,
                                            &segment_pool_);
      proc->set_exec_mode(exec_mode_);
      if (coverage_) proc->set_coverage(coverage_.get());
      proc->RestoreFromSnapshot(ps, /*full=*/true);
      auto seg_pages = [](uint64_t bytes) {
        return (bytes + DirtyMap::kPageSize - 1) >> DirtyMap::kPageBits;
      };
      restore_stats_.pages_restored += seg_pages(tps.stack_bytes) +
                                       seg_pages(tps.heap_bytes) +
                                       seg_pages(tps.tls_bytes);
      if (i < procs_.size()) {
        procs_[i] = std::move(proc);
      } else {
        procs_.push_back(std::move(proc));
      }
    }
  }
  procs_.resize(want);  // drop scenario-spawned extras

  exit_reported_ = node.exit_reported;
  total_instructions_ = node.total_instructions;
  kernel_.RestoreState(node.kernel);
  if (coverage_) {
    *coverage_ = node.coverage;
    SyncCoverageModules();  // coverage may have been enabled post-capture
  }
  current_node_ = target;
  return true;
}

void Machine::Snapshot() {
  DropSnapshot();
  PushSnapshot();
}

bool Machine::RestoreSnapshot() { return has_snapshot() && RestoreTo(0); }

void Machine::DropSnapshot() {
  tree_.reset();
  current_node_ = kNoSnapshot;
  for (const auto& mod : loader_.modules()) mod->data_dirty.Disable();
  for (const auto& proc : procs_) proc->DisableDirtyTracking();
}

Result<int> Machine::CreateProcess(const std::string& entry,
                                   uint64_t heap_cap_bytes) {
  // Setup is everything before the first process: snapshot it so Reset()
  // restores the configured filesystem even without an explicit
  // Checkpoint() call.
  if (!kernel_.has_checkpoint()) kernel_.Checkpoint();
  Target target = loader_.ResolveName(entry);
  if (target.kind != Target::Kind::Code) {
    return Err("machine: cannot resolve entry symbol: " + entry);
  }
  int pid = static_cast<int>(procs_.size()) + 1;
  auto proc = std::make_unique<Process>(pid, loader_, kernel_,
                                        syscall_targets_, heap_cap_bytes,
                                        &segment_pool_);
  proc->set_exec_mode(exec_mode_);
  proc->Start(target.addr);
  if (coverage_) proc->set_coverage(coverage_.get());
  procs_.push_back(std::move(proc));
  exit_reported_.push_back(false);
  return pid;
}

Process* Machine::process(int pid) {
  size_t idx = static_cast<size_t>(pid) - 1;
  return idx < procs_.size() ? procs_[idx].get() : nullptr;
}

RunOutcome Machine::Run(uint64_t max_instructions) {
  while (total_instructions_ < max_instructions) {
    bool any_live = false;
    uint64_t progressed = 0;
    bool real_progress = false;  // beyond re-trying a blocked syscall
    // Snapshot count: processes spawned during this round run next round.
    size_t count = procs_.size();
    for (size_t i = 0; i < count; ++i) {
      Process& p = *procs_[i];
      p.WakeIfBlocked();
      if (p.state() == ProcState::Runnable) {
        any_live = true;
        // Sub-slice the quantum around armed instruction stops: the budget
        // handed to the engine never crosses a stop instant, so the stop
        // callback runs at exactly instruction `at` — Process::Run(budget)
        // is budget-exact in all three engines, which is what makes the
        // SEU flip land on the same architectural state everywhere.
        uint64_t executed = 0;
        while (true) {
          if (!stops_.empty()) FireDueStops(total_instructions_ + progressed);
          if (p.state() != ProcState::Runnable || executed >= kQuantum) break;
          uint64_t budget = kQuantum - executed;
          if (!stops_.empty()) {
            uint64_t until = stops_.front().at - (total_instructions_ +
                                                  progressed);
            if (until < budget) budget = until;
          }
          uint64_t ran = p.Run(budget);
          executed += ran;
          progressed += ran;
          // Blocked/exited processes stop mid-budget; re-check state at
          // the loop head. A zero-progress Runnable return cannot recur
          // (budget >= 1 here), but guard against a livelock anyway.
          if (ran == 0 && p.state() == ProcState::Runnable) break;
          if (p.state() != ProcState::Runnable) break;
        }
        if (!stops_.empty()) FireDueStops(total_instructions_ + progressed);
        // A process that immediately re-blocks after one retried
        // instruction made no real progress; anything else did.
        if (p.state() != ProcState::Blocked || executed > 1) {
          real_progress = true;
        }
      }
      // Report terminations to the kernel exactly once (releases fds so
      // pipe peers observe EOF, and records exit codes for wait()).
      if ((p.state() == ProcState::Exited || p.state() == ProcState::Faulted) &&
          !exit_reported_[i]) {
        int64_t code = p.state() == ProcState::Exited
                           ? p.exit_code()
                           : 128 + static_cast<int64_t>(p.signal());
        kernel_.on_process_exit(p.pid(), code);
        exit_reported_[i] = true;
      }
    }
    total_instructions_ += progressed;
    if (procs_.size() != count) continue;  // new spawns: another round
    if (!any_live) {
      // No runnable process: either all done, or all blocked (deadlock).
      for (const auto& p : procs_) {
        if (p->state() == ProcState::Blocked) return RunOutcome::Deadlock;
      }
      return RunOutcome::AllExited;
    }
    if (!real_progress) {
      // Every live process is parked on a blocking syscall that cannot be
      // satisfied by anyone: deadlock.
      bool any_blocked = false, any_runnable = false;
      for (const auto& p : procs_) {
        any_blocked |= p->state() == ProcState::Blocked;
        any_runnable |= p->state() == ProcState::Runnable;
      }
      if (any_blocked && !any_runnable) return RunOutcome::Deadlock;
      if (!any_blocked && !any_runnable) return RunOutcome::AllExited;
    }
  }
  return RunOutcome::BudgetSpent;
}

Machine::ExitInfo Machine::RunToCompletion(int pid, uint64_t max_instructions) {
  Run(max_instructions);
  ExitInfo info;
  if (Process* p = process(pid)) {
    info.state = p->state();
    info.exit_code = p->exit_code();
    info.signal = p->signal();
    info.fault_message = p->fault_message();
  }
  return info;
}

void Machine::ArmInstructionStop(uint64_t at, std::function<void(Machine&)> fn) {
  InstructionStop stop{at, std::move(fn)};
  auto pos = std::lower_bound(
      stops_.begin(), stops_.end(), stop,
      [](const InstructionStop& a, const InstructionStop& b) {
        return a.at < b.at;
      });
  stops_.insert(pos, std::move(stop));
}

void Machine::ClearInstructionStops() { stops_.clear(); }

void Machine::FireDueStops(uint64_t now) {
  while (!stops_.empty() && stops_.front().at <= now) {
    // Detach before invoking: the callback may arm new stops.
    InstructionStop stop = std::move(stops_.front());
    stops_.erase(stops_.begin());
    stop.fn(*this);
  }
}

namespace {
/// FNV-1a over u64-sized chunks (byte tail) — fast enough to hash whole
/// stack/heap segments per scenario. Chunked mixing is endian-dependent,
/// which is fine: digests are only ever compared between runs on hosts of
/// the same byte order (the fabric ships work, not digests of reference).
inline void FnvMix(uint64_t& h, uint64_t value) {
  h ^= value;
  h *= 1099511628211ull;
}

inline void FnvMixBytes(uint64_t& h, const uint8_t* data, size_t size) {
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t chunk;
    std::memcpy(&chunk, data + i, 8);
    FnvMix(h, chunk);
  }
  uint64_t tail = 0;
  for (; i < size; ++i) tail = (tail << 8) | data[i];
  FnvMix(h, tail);
}
}  // namespace

uint64_t Machine::StateDigest() const {
  uint64_t h = 14695981039346656037ull;
  FnvMix(h, procs_.size());
  for (const auto& p : procs_) FnvMix(h, p->StateDigest());
  for (const auto& mod : loader_.modules()) {
    FnvMixBytes(h, mod->data_runtime.data(), mod->data_runtime.size());
  }
  return h;
}

CoverageTracker* Machine::EnableCoverage() {
  if (!coverage_) {
    coverage_ = std::make_unique<CoverageTracker>();
    SyncCoverageModules();
    for (auto& p : procs_) p->set_coverage(coverage_.get());
  }
  return coverage_.get();
}

void Machine::SyncCoverageModules() {
  if (!coverage_) return;
  for (const auto& mod : loader_.modules()) {
    coverage_->EnsureModule(mod->index, mod->object.code.size());
  }
}

}  // namespace lfi::vm
