#include "vm/machine.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "kernel/kernel_image.hpp"

namespace lfi::vm {

Machine::Machine() {
  size_t kidx = loader_.Load(kernel::BuildKernelImage());
  const LoadedModule& kmod = *loader_.modules()[kidx];
  for (const auto& spec : kernel::SyscallTable()) {
    const isa::Symbol* sym = kmod.object.find_export(kernel::HandlerName(spec));
    if (sym) {
      uint16_t number = static_cast<uint16_t>(spec.number);
      if (number >= syscall_targets_.size()) {
        syscall_targets_.resize(number + 1, 0);
      }
      syscall_targets_[number] = kmod.code_base + sym->offset;
    }
  }
  if (const char* mode = std::getenv("LFI_EXEC")) {
    if (std::strcmp(mode, "reference") == 0) {
      exec_mode_ = ExecMode::Reference;
    } else if (std::strcmp(mode, "predecoded") != 0) {
      // A typo here would silently turn a differential baseline into
      // predecoded-vs-predecoded; say so instead.
      std::fprintf(stderr,
                   "machine: unknown LFI_EXEC value '%s' "
                   "(expected 'reference' or 'predecoded'); "
                   "using the predecoded engine\n",
                   mode);
    }
  }
  kernel_.set_spawn_hook([this](const std::string& symbol) -> Result<int> {
    auto pid = CreateProcess(symbol, default_heap_cap_);
    return pid;
  });
}

void Machine::SetExecMode(ExecMode mode) {
  exec_mode_ = mode;
  for (auto& p : procs_) p->set_exec_mode(mode);
}

void Machine::Reset() {
  procs_.clear();
  exit_reported_.clear();
  total_instructions_ = 0;
  loader_.ResetData();
  kernel_.Reset();
  if (coverage_) coverage_->Clear();
}

Result<int> Machine::CreateProcess(const std::string& entry,
                                   uint64_t heap_cap_bytes) {
  // Setup is everything before the first process: snapshot it so Reset()
  // restores the configured filesystem even without an explicit
  // Checkpoint() call.
  if (!kernel_.has_checkpoint()) kernel_.Checkpoint();
  Target target = loader_.ResolveName(entry);
  if (target.kind != Target::Kind::Code) {
    return Err("machine: cannot resolve entry symbol: " + entry);
  }
  int pid = static_cast<int>(procs_.size()) + 1;
  auto proc = std::make_unique<Process>(pid, loader_, kernel_,
                                        syscall_targets_, heap_cap_bytes);
  proc->set_exec_mode(exec_mode_);
  proc->Start(target.addr);
  if (coverage_) proc->set_coverage(coverage_.get());
  procs_.push_back(std::move(proc));
  exit_reported_.push_back(false);
  return pid;
}

Process* Machine::process(int pid) {
  size_t idx = static_cast<size_t>(pid) - 1;
  return idx < procs_.size() ? procs_[idx].get() : nullptr;
}

RunOutcome Machine::Run(uint64_t max_instructions) {
  while (total_instructions_ < max_instructions) {
    bool any_live = false;
    uint64_t progressed = 0;
    bool real_progress = false;  // beyond re-trying a blocked syscall
    // Snapshot count: processes spawned during this round run next round.
    size_t count = procs_.size();
    for (size_t i = 0; i < count; ++i) {
      Process& p = *procs_[i];
      p.WakeIfBlocked();
      if (p.state() == ProcState::Runnable) {
        any_live = true;
        uint64_t executed = p.Run(kQuantum);
        progressed += executed;
        // A process that immediately re-blocks after one retried
        // instruction made no real progress; anything else did.
        if (p.state() != ProcState::Blocked || executed > 1) {
          real_progress = true;
        }
      }
      // Report terminations to the kernel exactly once (releases fds so
      // pipe peers observe EOF, and records exit codes for wait()).
      if ((p.state() == ProcState::Exited || p.state() == ProcState::Faulted) &&
          !exit_reported_[i]) {
        int64_t code = p.state() == ProcState::Exited
                           ? p.exit_code()
                           : 128 + static_cast<int64_t>(p.signal());
        kernel_.on_process_exit(p.pid(), code);
        exit_reported_[i] = true;
      }
    }
    total_instructions_ += progressed;
    if (procs_.size() != count) continue;  // new spawns: another round
    if (!any_live) {
      // No runnable process: either all done, or all blocked (deadlock).
      for (const auto& p : procs_) {
        if (p->state() == ProcState::Blocked) return RunOutcome::Deadlock;
      }
      return RunOutcome::AllExited;
    }
    if (!real_progress) {
      // Every live process is parked on a blocking syscall that cannot be
      // satisfied by anyone: deadlock.
      bool any_blocked = false, any_runnable = false;
      for (const auto& p : procs_) {
        any_blocked |= p->state() == ProcState::Blocked;
        any_runnable |= p->state() == ProcState::Runnable;
      }
      if (any_blocked && !any_runnable) return RunOutcome::Deadlock;
      if (!any_blocked && !any_runnable) return RunOutcome::AllExited;
    }
  }
  return RunOutcome::BudgetSpent;
}

Machine::ExitInfo Machine::RunToCompletion(int pid, uint64_t max_instructions) {
  Run(max_instructions);
  ExitInfo info;
  if (Process* p = process(pid)) {
    info.state = p->state();
    info.exit_code = p->exit_code();
    info.signal = p->signal();
    info.fault_message = p->fault_message();
  }
  return info;
}

CoverageTracker* Machine::EnableCoverage() {
  if (!coverage_) {
    coverage_ = std::make_unique<CoverageTracker>();
    SyncCoverageModules();
    for (auto& p : procs_) p->set_coverage(coverage_.get());
  }
  return coverage_.get();
}

void Machine::SyncCoverageModules() {
  if (!coverage_) return;
  for (const auto& mod : loader_.modules()) {
    coverage_->EnsureModule(mod->index, mod->object.code.size());
  }
}

}  // namespace lfi::vm
