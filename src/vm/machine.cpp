#include "vm/machine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "kernel/kernel_image.hpp"
#include "vm/snapshot.hpp"

namespace lfi::vm {

Machine::~Machine() = default;

Machine::Machine() {
  size_t kidx = loader_.Load(kernel::BuildKernelImage());
  const LoadedModule& kmod = *loader_.modules()[kidx];
  for (const auto& spec : kernel::SyscallTable()) {
    const isa::Symbol* sym = kmod.object.find_export(kernel::HandlerName(spec));
    if (sym) {
      uint16_t number = static_cast<uint16_t>(spec.number);
      if (number >= syscall_targets_.size()) {
        syscall_targets_.resize(number + 1, 0);
      }
      syscall_targets_[number] = kmod.code_base + sym->offset;
    }
  }
  if (const char* mode = std::getenv("LFI_EXEC")) {
    if (std::optional<ExecMode> parsed = ParseExecMode(mode)) {
      exec_mode_ = *parsed;
    } else {
      // A typo here would silently turn a differential baseline into
      // superblock-vs-superblock; say so instead.
      std::fprintf(stderr,
                   "machine: unknown LFI_EXEC value '%s' "
                   "(expected 'superblock', 'predecoded', or 'reference'); "
                   "using the superblock engine\n",
                   mode);
    }
  }
  kernel_.set_spawn_hook([this](const std::string& symbol) -> Result<int> {
    auto pid = CreateProcess(symbol, default_heap_cap_);
    return pid;
  });
}

void Machine::SetExecMode(ExecMode mode) {
  exec_mode_ = mode;
  for (auto& p : procs_) p->set_exec_mode(mode);
}

void Machine::Reset() {
  procs_.clear();
  exit_reported_.clear();
  total_instructions_ = 0;
  loader_.ResetData();
  kernel_.Reset();
  if (coverage_) coverage_->Clear();
  // snapshot_ (if any) stays valid: its images are self-contained, and
  // ResetData marked every data page dirty, so the next RestoreSnapshot
  // reconstructs processes and copies full images.
}

void Machine::Snapshot() {
  auto snap = std::make_unique<MachineSnapshot>();
  snap->total_instructions = total_instructions_;
  snap->exit_reported = exit_reported_;
  snap->module_count = loader_.modules().size();
  snap->module_data.reserve(snap->module_count);
  for (const auto& mod : loader_.modules()) {
    snap->module_data.push_back(mod->data_runtime);
    mod->data_dirty.Enable(mod->data_runtime.size());
  }
  snap->procs.resize(procs_.size());
  for (size_t i = 0; i < procs_.size(); ++i) {
    procs_[i]->CaptureSnapshot(&snap->procs[i]);
  }
  snap->kernel = kernel_.CaptureState();
  if (coverage_) snap->coverage = *coverage_;
  snapshot_ = std::move(snap);
}

bool Machine::RestoreSnapshot() {
  if (!snapshot_) return false;
  const MachineSnapshot& snap = *snapshot_;
  // Validate before mutating anything: the module set must be the one the
  // snapshot was taken over (stubs/natives may differ — the controller
  // owns those — but data section sizes are load-time constants).
  if (loader_.modules().size() != snap.module_count) return false;
  for (size_t m = 0; m < snap.module_count; ++m) {
    if (loader_.modules()[m]->data_runtime.size() !=
        snap.module_data[m].size()) {
      return false;
    }
  }
  // Live processes can be restored in place (O(dirty pages)) when they are
  // exactly the snapshot's processes, possibly plus scenario-spawned extras
  // (truncated). Anything else — typically after Reset() — rebuilds them
  // from the full images.
  bool in_place = procs_.size() >= snap.procs.size();
  if (in_place) {
    for (size_t i = 0; i < snap.procs.size(); ++i) {
      const ProcessSnapshot& ps = snap.procs[i];
      if (procs_[i]->pid() != ps.pid ||
          procs_[i]->heap_bytes() != ps.heap.size()) {
        in_place = false;
        break;
      }
    }
  }

  for (size_t m = 0; m < snap.module_count; ++m) {
    LoadedModule& mod = *loader_.modules()[m];
    if (mod.data_runtime.empty()) continue;
    if (mod.data_dirty.enabled()) {
      RestoreDirtyPages(mod.data_dirty, snap.module_data[m].data(),
                        mod.data_runtime.data(), mod.data_runtime.size());
    } else {
      std::copy(snap.module_data[m].begin(), snap.module_data[m].end(),
                mod.data_runtime.begin());
      mod.data_dirty.Enable(mod.data_runtime.size());
    }
  }

  if (in_place) {
    procs_.resize(snap.procs.size());
    for (size_t i = 0; i < snap.procs.size(); ++i) {
      procs_[i]->RestoreFromSnapshot(snap.procs[i], /*full=*/false);
    }
  } else {
    procs_.clear();
    for (const ProcessSnapshot& ps : snap.procs) {
      auto proc = std::make_unique<Process>(ps.pid, loader_, kernel_,
                                            syscall_targets_, ps.heap.size(),
                                            &segment_pool_);
      proc->set_exec_mode(exec_mode_);
      if (coverage_) proc->set_coverage(coverage_.get());
      proc->RestoreFromSnapshot(ps, /*full=*/true);
      procs_.push_back(std::move(proc));
    }
  }
  exit_reported_ = snap.exit_reported;
  total_instructions_ = snap.total_instructions;
  kernel_.RestoreState(snap.kernel);
  if (coverage_) {
    *coverage_ = snap.coverage;
    SyncCoverageModules();  // coverage may have been enabled post-snapshot
  }
  return true;
}

void Machine::DropSnapshot() {
  snapshot_.reset();
  for (const auto& mod : loader_.modules()) mod->data_dirty.Disable();
  for (const auto& proc : procs_) proc->DisableDirtyTracking();
}

Result<int> Machine::CreateProcess(const std::string& entry,
                                   uint64_t heap_cap_bytes) {
  // Setup is everything before the first process: snapshot it so Reset()
  // restores the configured filesystem even without an explicit
  // Checkpoint() call.
  if (!kernel_.has_checkpoint()) kernel_.Checkpoint();
  Target target = loader_.ResolveName(entry);
  if (target.kind != Target::Kind::Code) {
    return Err("machine: cannot resolve entry symbol: " + entry);
  }
  int pid = static_cast<int>(procs_.size()) + 1;
  auto proc = std::make_unique<Process>(pid, loader_, kernel_,
                                        syscall_targets_, heap_cap_bytes,
                                        &segment_pool_);
  proc->set_exec_mode(exec_mode_);
  proc->Start(target.addr);
  if (coverage_) proc->set_coverage(coverage_.get());
  procs_.push_back(std::move(proc));
  exit_reported_.push_back(false);
  return pid;
}

Process* Machine::process(int pid) {
  size_t idx = static_cast<size_t>(pid) - 1;
  return idx < procs_.size() ? procs_[idx].get() : nullptr;
}

RunOutcome Machine::Run(uint64_t max_instructions) {
  while (total_instructions_ < max_instructions) {
    bool any_live = false;
    uint64_t progressed = 0;
    bool real_progress = false;  // beyond re-trying a blocked syscall
    // Snapshot count: processes spawned during this round run next round.
    size_t count = procs_.size();
    for (size_t i = 0; i < count; ++i) {
      Process& p = *procs_[i];
      p.WakeIfBlocked();
      if (p.state() == ProcState::Runnable) {
        any_live = true;
        uint64_t executed = p.Run(kQuantum);
        progressed += executed;
        // A process that immediately re-blocks after one retried
        // instruction made no real progress; anything else did.
        if (p.state() != ProcState::Blocked || executed > 1) {
          real_progress = true;
        }
      }
      // Report terminations to the kernel exactly once (releases fds so
      // pipe peers observe EOF, and records exit codes for wait()).
      if ((p.state() == ProcState::Exited || p.state() == ProcState::Faulted) &&
          !exit_reported_[i]) {
        int64_t code = p.state() == ProcState::Exited
                           ? p.exit_code()
                           : 128 + static_cast<int64_t>(p.signal());
        kernel_.on_process_exit(p.pid(), code);
        exit_reported_[i] = true;
      }
    }
    total_instructions_ += progressed;
    if (procs_.size() != count) continue;  // new spawns: another round
    if (!any_live) {
      // No runnable process: either all done, or all blocked (deadlock).
      for (const auto& p : procs_) {
        if (p->state() == ProcState::Blocked) return RunOutcome::Deadlock;
      }
      return RunOutcome::AllExited;
    }
    if (!real_progress) {
      // Every live process is parked on a blocking syscall that cannot be
      // satisfied by anyone: deadlock.
      bool any_blocked = false, any_runnable = false;
      for (const auto& p : procs_) {
        any_blocked |= p->state() == ProcState::Blocked;
        any_runnable |= p->state() == ProcState::Runnable;
      }
      if (any_blocked && !any_runnable) return RunOutcome::Deadlock;
      if (!any_blocked && !any_runnable) return RunOutcome::AllExited;
    }
  }
  return RunOutcome::BudgetSpent;
}

Machine::ExitInfo Machine::RunToCompletion(int pid, uint64_t max_instructions) {
  Run(max_instructions);
  ExitInfo info;
  if (Process* p = process(pid)) {
    info.state = p->state();
    info.exit_code = p->exit_code();
    info.signal = p->signal();
    info.fault_message = p->fault_message();
  }
  return info;
}

CoverageTracker* Machine::EnableCoverage() {
  if (!coverage_) {
    coverage_ = std::make_unique<CoverageTracker>();
    SyncCoverageModules();
    for (auto& p : procs_) p->set_coverage(coverage_.get());
  }
  return coverage_.get();
}

void Machine::SyncCoverageModules() {
  if (!coverage_) return;
  for (const auto& mod : loader_.modules()) {
    coverage_->EnsureModule(mod->index, mod->object.code.size());
  }
}

}  // namespace lfi::vm
