// Machine: the whole synthetic computer — loader + kernel + processes +
// a round-robin scheduler. One Machine per experiment run.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kernel/kernel_runtime.hpp"
#include "sso/sso.hpp"
#include "vm/coverage.hpp"
#include "vm/loader.hpp"
#include "vm/process.hpp"
#include "vm/snapshot.hpp"

namespace lfi::vm {

/// Outcome of Machine::Run.
enum class RunOutcome {
  AllExited,    // every process exited or faulted
  Deadlock,     // all live processes blocked with no progress possible
  BudgetSpent,  // instruction budget exhausted
};

class Machine {
 public:
  /// Loads the kernel image and wires the spawn hook.
  Machine();
  ~Machine();

  Loader& loader() { return loader_; }
  kernel::KernelRuntime& kernel() { return kernel_; }

  /// Which interpreter engine newly-created processes use. Defaults to
  /// Superblock; the LFI_EXEC environment variable (superblock /
  /// predecoded / reference) flips the default at Machine construction
  /// (A/B without recompiling).
  ExecMode exec_mode() const { return exec_mode_; }
  void SetExecMode(ExecMode mode);

  /// The machine-wide symbol interner (owned by the loader). Names resolve
  /// to dense SymbolIds once; everything per-call indexes by id.
  SymbolTable& symbols() { return loader_.symbols(); }
  const SymbolTable& symbols() const { return loader_.symbols(); }

  /// Load a shared object (order defines symbol search order).
  size_t Load(sso::SharedObject object) {
    size_t index = loader_.Load(std::move(object));
    SyncCoverageModules();
    return index;
  }

  /// Create a process whose entry is the exported symbol `entry`.
  /// Returns the pid, or an error if the symbol does not resolve.
  Result<int> CreateProcess(const std::string& entry,
                            uint64_t heap_cap_bytes = 1 << 20);

  Process* process(int pid);
  const std::vector<std::unique_ptr<Process>>& processes() const {
    return procs_;
  }

  /// Snapshot the current host-side configuration (in-memory filesystem,
  /// listening ports) so Reset() restores it. Taken implicitly at the
  /// first CreateProcess; call explicitly to snapshot later changes.
  void Checkpoint() { kernel_.Checkpoint(); }

  /// Return the machine to its Checkpoint()ed state without reloading
  /// modules: destroys all processes, restores module data sections and the
  /// kernel filesystem, zeroes counters, and clears coverage. Interposition
  /// stubs are kept (the controller manages those). This is what makes a
  /// Machine reusable across campaign scenarios — reset, not rebuild.
  /// An existing snapshot tree survives a Reset (the machine's current
  /// position becomes "nowhere", so the next restore materializes full
  /// images), but the next PushSnapshot starts a fresh tree.
  void Reset();

  // -- snapshot tree ---------------------------------------------------------
  /// Capture a new snapshot node as a child of the machine's current
  /// position: the scalar machine state in full (registers, shadow
  /// stacks, kernel host-side state, coverage, accounting) plus only the
  /// memory pages written since the current node — O(dirty pages). The
  /// first push (or the first after Reset(), or after the module set
  /// changed) captures a full root and starts a fresh tree. Returns the
  /// new node's id; the machine's current position becomes that node.
  SnapshotId PushSnapshot();
  /// Return to any live node of the tree. Cost is O(pages that differ
  /// from the target): the pages in the current dirty journals plus those
  /// captured by nodes on the tree path between the current node and the
  /// target, each sourced from its newest writer at-or-above the target.
  /// Processes that no longer exist (truncated by an earlier restore, or
  /// destroyed by Reset()) are rebuilt from materialized full images.
  /// Returns false — machine untouched — for an invalid id or when the
  /// loaded module set changed since the tree's root.
  bool RestoreTo(SnapshotId id);
  /// The node the machine last captured or restored: the parent of the
  /// next PushSnapshot. kNoSnapshot before any capture or after Reset().
  SnapshotId current_snapshot() const { return current_node_; }
  size_t snapshot_node_count() const {
    return tree_ ? tree_->nodes.size() : 0;
  }
  /// Cumulative restore-cost counters (bench telemetry).
  const SnapshotRestoreStats& restore_stats() const { return restore_stats_; }

  // -- flat snapshot (a one-node tree) ---------------------------------------
  /// Capture the complete machine state as the root of a fresh tree and
  /// enable page-granular dirty tracking on all writable segments. A
  /// campaign warms the target to its fault-window entry point once,
  /// snapshots, and then restores per scenario instead of re-running
  /// setup.
  void Snapshot();
  bool has_snapshot() const { return tree_ && !tree_->nodes.empty(); }
  /// Return to the tree's root (the flat Snapshot() point).
  bool RestoreSnapshot();
  /// Forget the whole tree and stop journaling writes.
  void DropSnapshot();

  /// Round-robin scheduling until every process terminates, deadlock, or
  /// `max_instructions` total were executed.
  RunOutcome Run(uint64_t max_instructions = 100'000'000);

  // -- precise instruction stops ---------------------------------------------
  /// Arm `fn` to fire the first time the machine-wide executed-instruction
  /// count reaches `at` (or immediately at the next Run round if `at` is
  /// already in the past). Run clamps the per-process budget to the
  /// nearest armed stop, so the callback observes the exact architectural
  /// state at instruction `at` in every engine — the superblock engine's
  /// fused spans end at the clamped budget, which is its mid-span
  /// deoptimization point. Callbacks may mutate process registers/memory
  /// (the SEU injector does) but must not call Run, Reset, or snapshot
  /// operations. Stops that never come due (the machine halts first)
  /// simply do not fire.
  void ArmInstructionStop(uint64_t at, std::function<void(Machine&)> fn);
  /// Drop all armed stops (fired or not).
  void ClearInstructionStops();
  size_t armed_stop_count() const { return stops_.size(); }

  /// FNV-1a digest of guest-visible architectural state: every process's
  /// registers, flags, pc, status, and memory segments, plus each loaded
  /// module's runtime data section. Deterministic for a deterministic
  /// schedule, so equal digests across engines / snapshot modes / jobs
  /// counts mean bit-identical final states; SEU campaigns compare it
  /// against a golden run to detect silent data corruption. Host-side
  /// kernel state (in-memory files) is deliberately out of scope.
  uint64_t StateDigest() const;

  /// Convenience: run a single-process machine and report its exit.
  struct ExitInfo {
    ProcState state = ProcState::Exited;
    int64_t exit_code = 0;
    Signal signal = Signal::None;
    std::string fault_message;
  };
  ExitInfo RunToCompletion(int pid, uint64_t max_instructions = 100'000'000);

  uint64_t total_instructions() const { return total_instructions_; }

  /// Scheduler round length. Public because Run(max) is an absolute
  /// target measured in whole rounds: running to instruction target W
  /// from any restored point at-or-before W reproduces the cold state at
  /// W exactly, provided W is compared against the same quantum-rounded
  /// schedule — which is what lets campaign code place snapshot windows
  /// at quantum-aligned instants.
  static constexpr uint64_t kQuantum = 2000;

  /// Enable basic-block coverage collection on all (current and future)
  /// processes; returns the tracker.
  CoverageTracker* EnableCoverage();
  CoverageTracker* coverage() { return coverage_.get(); }

 private:
  /// Size per-module coverage bitmaps from module text lengths (no-op when
  /// coverage is off). Keeps CoverageTracker::Record allocation-free.
  void SyncCoverageModules();

  Loader loader_;
  kernel::KernelRuntime kernel_;
  /// Syscall number -> handler address; 0 = unimplemented. Flat array so
  /// the SYSCALL opcode is an index, not a tree search.
  std::vector<uint64_t> syscall_targets_;
  ExecMode exec_mode_ = ExecMode::Superblock;
  /// Recycles process stack/heap/TLS buffers across scenarios and spawns
  /// (declared before procs_ so it outlives them at destruction).
  SegmentPool segment_pool_;
  std::vector<std::unique_ptr<Process>> procs_;
  std::vector<bool> exit_reported_;
  uint64_t total_instructions_ = 0;
  std::unique_ptr<CoverageTracker> coverage_;
  std::unique_ptr<SnapshotTree> tree_;
  /// The tree node the live machine state extends (journals record writes
  /// since its capture); kNoSnapshot when the state is anchored nowhere
  /// (no tree yet, or after Reset()).
  SnapshotId current_node_ = kNoSnapshot;
  SnapshotRestoreStats restore_stats_;
  uint64_t default_heap_cap_ = 1 << 20;

  struct InstructionStop {
    uint64_t at = 0;
    std::function<void(Machine&)> fn;
  };
  /// Sorted ascending by `at`; Run pops from the front as stops fire.
  std::vector<InstructionStop> stops_;
  /// Fire (and remove) every stop with at <= now.
  void FireDueStops(uint64_t now);

  /// Whether the loaded module set still matches the tree's root capture
  /// (count and data-section sizes — load-time constants).
  bool ModuleSetMatches(const SnapshotTree& tree) const;
};

}  // namespace lfi::vm
