// Machine: the whole synthetic computer — loader + kernel + processes +
// a round-robin scheduler. One Machine per experiment run.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kernel/kernel_runtime.hpp"
#include "sso/sso.hpp"
#include "vm/coverage.hpp"
#include "vm/loader.hpp"
#include "vm/process.hpp"

namespace lfi::vm {

struct MachineSnapshot;

/// Outcome of Machine::Run.
enum class RunOutcome {
  AllExited,    // every process exited or faulted
  Deadlock,     // all live processes blocked with no progress possible
  BudgetSpent,  // instruction budget exhausted
};

class Machine {
 public:
  /// Loads the kernel image and wires the spawn hook.
  Machine();
  ~Machine();

  Loader& loader() { return loader_; }
  kernel::KernelRuntime& kernel() { return kernel_; }

  /// Which interpreter engine newly-created processes use. Defaults to
  /// Superblock; the LFI_EXEC environment variable (superblock /
  /// predecoded / reference) flips the default at Machine construction
  /// (A/B without recompiling).
  ExecMode exec_mode() const { return exec_mode_; }
  void SetExecMode(ExecMode mode);

  /// The machine-wide symbol interner (owned by the loader). Names resolve
  /// to dense SymbolIds once; everything per-call indexes by id.
  SymbolTable& symbols() { return loader_.symbols(); }
  const SymbolTable& symbols() const { return loader_.symbols(); }

  /// Load a shared object (order defines symbol search order).
  size_t Load(sso::SharedObject object) {
    size_t index = loader_.Load(std::move(object));
    SyncCoverageModules();
    return index;
  }

  /// Create a process whose entry is the exported symbol `entry`.
  /// Returns the pid, or an error if the symbol does not resolve.
  Result<int> CreateProcess(const std::string& entry,
                            uint64_t heap_cap_bytes = 1 << 20);

  Process* process(int pid);
  const std::vector<std::unique_ptr<Process>>& processes() const {
    return procs_;
  }

  /// Snapshot the current host-side configuration (in-memory filesystem,
  /// listening ports) so Reset() restores it. Taken implicitly at the
  /// first CreateProcess; call explicitly to snapshot later changes.
  void Checkpoint() { kernel_.Checkpoint(); }

  /// Return the machine to its Checkpoint()ed state without reloading
  /// modules: destroys all processes, restores module data sections and the
  /// kernel filesystem, zeroes counters, and clears coverage. Interposition
  /// stubs are kept (the controller manages those). This is what makes a
  /// Machine reusable across campaign scenarios — reset, not rebuild.
  /// An existing Snapshot() survives a Reset (the next restore copies full
  /// images instead of dirty pages).
  void Reset();

  // -- snapshot / restore ----------------------------------------------------
  /// Capture the complete machine state — every process's registers,
  /// memory segments and shadow stack, module data sections, the kernel's
  /// host-side state, coverage, and instruction accounting — and enable
  /// page-granular dirty tracking on all writable segments. A campaign
  /// warms the target to its fault-window entry point once, snapshots,
  /// and then restores per scenario instead of re-running setup.
  void Snapshot();
  bool has_snapshot() const { return snapshot_ != nullptr; }
  /// Return to the Snapshot()ed point. Cost is O(pages written since the
  /// snapshot or the last restore), not O(address-space size); after a
  /// Reset() (or with extra spawned processes) it falls back to full-image
  /// copies. Returns false — machine untouched — when no snapshot exists
  /// or the loaded module set changed since it was taken.
  bool RestoreSnapshot();
  /// Forget the snapshot and stop journaling writes.
  void DropSnapshot();

  /// Round-robin scheduling until every process terminates, deadlock, or
  /// `max_instructions` total were executed.
  RunOutcome Run(uint64_t max_instructions = 100'000'000);

  /// Convenience: run a single-process machine and report its exit.
  struct ExitInfo {
    ProcState state = ProcState::Exited;
    int64_t exit_code = 0;
    Signal signal = Signal::None;
    std::string fault_message;
  };
  ExitInfo RunToCompletion(int pid, uint64_t max_instructions = 100'000'000);

  uint64_t total_instructions() const { return total_instructions_; }

  /// Enable basic-block coverage collection on all (current and future)
  /// processes; returns the tracker.
  CoverageTracker* EnableCoverage();
  CoverageTracker* coverage() { return coverage_.get(); }

 private:
  /// Size per-module coverage bitmaps from module text lengths (no-op when
  /// coverage is off). Keeps CoverageTracker::Record allocation-free.
  void SyncCoverageModules();

  Loader loader_;
  kernel::KernelRuntime kernel_;
  /// Syscall number -> handler address; 0 = unimplemented. Flat array so
  /// the SYSCALL opcode is an index, not a tree search.
  std::vector<uint64_t> syscall_targets_;
  ExecMode exec_mode_ = ExecMode::Superblock;
  /// Recycles process stack/heap/TLS buffers across scenarios and spawns
  /// (declared before procs_ so it outlives them at destruction).
  SegmentPool segment_pool_;
  std::vector<std::unique_ptr<Process>> procs_;
  std::vector<bool> exit_reported_;
  uint64_t total_instructions_ = 0;
  std::unique_ptr<CoverageTracker> coverage_;
  std::unique_ptr<MachineSnapshot> snapshot_;
  uint64_t default_heap_cap_ = 1 << 20;

  static constexpr uint64_t kQuantum = 2000;
};

}  // namespace lfi::vm
