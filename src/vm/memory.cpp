#include "vm/memory.hpp"

#include <algorithm>
#include <cstring>

namespace lfi::vm {

void AddressSpace::map(Region region) {
  auto it = std::lower_bound(
      regions_.begin(), regions_.end(), region.base,
      [](const Region& r, uint64_t base) { return r.base < base; });
  regions_.insert(it, std::move(region));
}

const Region* AddressSpace::find(uint64_t addr, uint64_t len) const {
  // First region with base > addr, then step back one.
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), addr,
      [](uint64_t a, const Region& r) { return a < r.base; });
  if (it == regions_.begin()) return nullptr;
  --it;
  // Overflow-safe containment: `addr + len` can wrap for addresses near
  // 2^64 (e.g. a register holding -4), which must fault, not alias the
  // region with the highest base.
  uint64_t off = addr - it->base;
  if (off > it->size || it->size - off < len) return nullptr;
  return &*it;
}

bool AddressSpace::read(uint64_t addr, void* out, uint64_t len) const {
  const Region* r = find(addr, len);
  if (!r) return false;
  std::memcpy(out, r->backing + (addr - r->base), len);
  return true;
}

bool AddressSpace::write(uint64_t addr, const void* src, uint64_t len) {
  const Region* r = find(addr, len);
  if (!r || !r->writable) return false;
  std::memcpy(const_cast<uint8_t*>(r->backing) + (addr - r->base), src, len);
  if (r->dirty) r->dirty->Mark(addr - r->base, len);
  return true;
}

size_t DirtyMap::DirtyCount() const {
  size_t count = 0;
  for (uint64_t word : words_) {
    count += static_cast<size_t>(__builtin_popcountll(word));
  }
  return count;
}

void RestoreDirtyPages(DirtyMap& dirty, const uint8_t* from, uint8_t* to,
                       uint64_t bytes) {
  dirty.ForEachDirtyPage([&](uint64_t page) {
    uint64_t off = page << DirtyMap::kPageBits;
    if (off >= bytes) return;
    uint64_t len = std::min(DirtyMap::kPageSize, bytes - off);
    std::memcpy(to + off, from + off, len);
  });
  dirty.ClearAll();
}

const uint8_t* PageDelta::page(uint32_t page_index) const {
  auto it = std::lower_bound(pages.begin(), pages.end(), page_index);
  if (it == pages.end() || *it != page_index) return nullptr;
  return bytes.data() +
         static_cast<size_t>(it - pages.begin()) * DirtyMap::kPageSize;
}

namespace {
void AppendPage(PageDelta* out, const uint8_t* mem, uint64_t bytes,
                uint64_t page) {
  uint64_t off = page << DirtyMap::kPageBits;
  if (off >= bytes) return;
  out->pages.push_back(static_cast<uint32_t>(page));
  size_t slot = out->bytes.size();
  out->bytes.resize(slot + DirtyMap::kPageSize, 0);
  std::memcpy(out->bytes.data() + slot, mem + off,
              std::min(DirtyMap::kPageSize, bytes - off));
}
}  // namespace

PageDelta CaptureDirtyPages(const DirtyMap& dirty, const uint8_t* mem,
                            uint64_t bytes) {
  PageDelta out;
  out.pages.reserve(dirty.DirtyCount());
  dirty.ForEachDirtyPage([&](uint64_t page) {
    AppendPage(&out, mem, bytes, page);
  });
  return out;
}

PageDelta CaptureAllPages(const uint8_t* mem, uint64_t bytes) {
  PageDelta out;
  uint64_t pages = (bytes + DirtyMap::kPageSize - 1) >> DirtyMap::kPageBits;
  out.pages.reserve(pages);
  for (uint64_t p = 0; p < pages; ++p) AppendPage(&out, mem, bytes, p);
  return out;
}

bool AddressSpace::read_u64(uint64_t addr, uint64_t* out) const {
  return read(addr, out, 8);
}

bool AddressSpace::write_u64(uint64_t addr, uint64_t value) {
  return write(addr, &value, 8);
}

}  // namespace lfi::vm
