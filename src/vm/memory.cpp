#include "vm/memory.hpp"

#include <algorithm>
#include <cstring>

namespace lfi::vm {

void AddressSpace::map(Region region) {
  auto it = std::lower_bound(
      regions_.begin(), regions_.end(), region.base,
      [](const Region& r, uint64_t base) { return r.base < base; });
  regions_.insert(it, std::move(region));
}

const Region* AddressSpace::find(uint64_t addr, uint64_t len) const {
  // First region with base > addr, then step back one.
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), addr,
      [](uint64_t a, const Region& r) { return a < r.base; });
  if (it == regions_.begin()) return nullptr;
  --it;
  // Overflow-safe containment: `addr + len` can wrap for addresses near
  // 2^64 (e.g. a register holding -4), which must fault, not alias the
  // region with the highest base.
  uint64_t off = addr - it->base;
  if (off > it->size || it->size - off < len) return nullptr;
  return &*it;
}

bool AddressSpace::read(uint64_t addr, void* out, uint64_t len) const {
  const Region* r = find(addr, len);
  if (!r) return false;
  std::memcpy(out, r->backing + (addr - r->base), len);
  return true;
}

bool AddressSpace::write(uint64_t addr, const void* src, uint64_t len) {
  const Region* r = find(addr, len);
  if (!r || !r->writable) return false;
  std::memcpy(const_cast<uint8_t*>(r->backing) + (addr - r->base), src, len);
  if (r->dirty) r->dirty->Mark(addr - r->base, len);
  return true;
}

size_t DirtyMap::DirtyCount() const {
  size_t count = 0;
  for (uint64_t word : words_) {
    count += static_cast<size_t>(__builtin_popcountll(word));
  }
  return count;
}

void RestoreDirtyPages(DirtyMap& dirty, const uint8_t* from, uint8_t* to,
                       uint64_t bytes) {
  dirty.ForEachDirtyPage([&](uint64_t page) {
    uint64_t off = page << DirtyMap::kPageBits;
    if (off >= bytes) return;
    uint64_t len = std::min(DirtyMap::kPageSize, bytes - off);
    std::memcpy(to + off, from + off, len);
  });
  dirty.ClearAll();
}

bool AddressSpace::read_u64(uint64_t addr, uint64_t* out) const {
  return read(addr, out, 8);
}

bool AddressSpace::write_u64(uint64_t addr, uint64_t value) {
  return write(addr, &value, 8);
}

}  // namespace lfi::vm
