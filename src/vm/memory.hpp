// Virtual address space: a small set of mapped regions with bounds checks.
//
// Layout of the synthetic platform (all processes share module mappings,
// each process owns its stack/heap/TLS):
//   0x0100'0000 + i*0x0010'0000   code of module i (read-only)
//   code_base   + 0x0008'0000     data of module i (read-write, shared)
//   0x4000'0000                   process stack (grows down)
//   0x5000'0000                   process heap (bump allocated)
//   0x6000'0000                   process TLS (errno and friends)
//   0xE000'0000 + 16*id           native interposition stubs (no backing)
//
// An out-of-range access is the synthetic SIGSEGV.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lfi::vm {

inline constexpr uint64_t kModuleBase = 0x0100'0000;
inline constexpr uint64_t kModuleSpacing = 0x0010'0000;
inline constexpr uint64_t kModuleDataDelta = 0x0008'0000;
inline constexpr uint64_t kStackBase = 0x4000'0000;
inline constexpr uint64_t kStackSize = 1 << 20;
inline constexpr uint64_t kHeapBase = 0x5000'0000;
inline constexpr uint64_t kTlsBase = 0x6000'0000;
inline constexpr uint64_t kTlsSize = 4096;
inline constexpr uint64_t kNativeStubBase = 0xE000'0000;
inline constexpr uint64_t kNativeStubSpacing = 16;
/// Sentinel return address: RET to this address exits the process cleanly.
inline constexpr uint64_t kExitSentinel = 0xDEAD'0000'0000;

inline uint64_t ModuleCodeBase(size_t index) {
  return kModuleBase + index * kModuleSpacing;
}
inline uint64_t ModuleDataBase(size_t index) {
  return ModuleCodeBase(index) + kModuleDataDelta;
}
/// Candidate module index for an address in the module band (addr must be
/// >= kModuleBase; callers still bounds-check against the loaded module
/// count and the segment sizes). The single home of the layout arithmetic
/// shared by Loader::module_at and the interpreter's fast memory path.
inline size_t ModuleIndexOf(uint64_t addr) {
  return static_cast<size_t>((addr - kModuleBase) / kModuleSpacing);
}
inline bool IsNativeStubAddress(uint64_t addr) {
  return addr >= kNativeStubBase && addr < kNativeStubBase + (1u << 20);
}
inline size_t NativeStubIndex(uint64_t addr) {
  return static_cast<size_t>((addr - kNativeStubBase) / kNativeStubSpacing);
}

/// Page-granular dirty journal over one memory segment. Inert until
/// Enable()d (Mark is a no-op), so the interpreter can mark every write
/// unconditionally and only pays a load+branch when no snapshot exists.
/// This is what makes Machine::RestoreSnapshot O(dirty pages): restore
/// copies back only the pages a scenario actually wrote.
class DirtyMap {
 public:
  static constexpr uint64_t kPageBits = 12;  // 4 KiB pages
  static constexpr uint64_t kPageSize = uint64_t{1} << kPageBits;

  /// Start tracking a segment of `bytes` bytes. A fresh journal starts
  /// all-clean; re-enabling an already-enabled journal over the same size
  /// keeps its marks — snapshot-tree captures layer on one journal and
  /// clear it explicitly once the dirty pages are copied out, so an Enable
  /// that silently wiped marks would lose writes recorded in between.
  /// Enabling at a different size rebuilds the journal all-clean.
  void Enable(uint64_t bytes) {
    uint64_t pages = (bytes + kPageSize - 1) >> kPageBits;
    if (!words_.empty() && pages == pages_) return;
    pages_ = pages;
    words_.assign((pages_ + 63) / 64, 0);
  }
  /// Stop tracking; Mark becomes a no-op again.
  void Disable() {
    pages_ = 0;
    words_.clear();
  }
  bool enabled() const { return !words_.empty(); }

  /// Record a write of [off, off+len) within the segment. No-op when
  /// disabled; out-of-range pages are clamped (the caller already
  /// bounds-checked the access against the segment).
  void Mark(uint64_t off, uint64_t len) {
    if (words_.empty() || len == 0) return;
    uint64_t first = off >> kPageBits;
    uint64_t last = (off + len - 1) >> kPageBits;
    if (last >= pages_) last = pages_ == 0 ? 0 : pages_ - 1;
    for (uint64_t p = first; p <= last && p < pages_; ++p) {
      words_[p >> 6] |= uint64_t{1} << (p & 63);
    }
  }

  /// Mark every page dirty (e.g. after a wholesale rewrite like
  /// Loader::ResetData, which bypasses the per-write journal).
  void MarkAll() {
    if (words_.empty()) return;
    std::fill(words_.begin(), words_.end(), ~uint64_t{0});
    if (uint64_t tail = pages_ & 63) {  // keep padding bits clean
      words_.back() = (uint64_t{1} << tail) - 1;
    }
  }

  void ClearAll() { std::fill(words_.begin(), words_.end(), 0); }

  /// Invoke fn(page_index) for every dirty page, ascending.
  template <typename Fn>
  void ForEachDirtyPage(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        uint64_t bit = static_cast<uint64_t>(__builtin_ctzll(word));
        uint64_t page = w * 64 + bit;
        if (page < pages_) fn(page);
        word &= word - 1;
      }
    }
  }

  size_t DirtyCount() const;

 private:
  uint64_t pages_ = 0;
  std::vector<uint64_t> words_;
};

/// Copy the dirty pages of `from` (sized `bytes`) into `to`, then clear the
/// journal. Both buffers must hold at least `bytes` bytes. The workhorse of
/// snapshot restore: cost is proportional to pages written since the last
/// restore, not to the segment size.
void RestoreDirtyPages(DirtyMap& dirty, const uint8_t* from, uint8_t* to,
                       uint64_t bytes);

/// Identifies one node of a vm::SnapshotTree (index into its node vector).
using SnapshotId = uint32_t;
inline constexpr SnapshotId kNoSnapshot = ~SnapshotId{0};

/// Sparse page-image store: the set of pages one snapshot-tree node
/// captured, with their contents at capture time. A node's delta holds
/// exactly the pages written between its parent's capture and its own (a
/// full node holds every page), so the content of page p at node N is
/// found in the first delta containing p on the walk N -> root: the
/// per-page newest-writer layering that lets nested snapshot windows
/// share unchanged pages instead of copying full images.
///
/// Every slot is DirtyMap::kPageSize bytes; the trailing partial page of a
/// non-page-multiple segment is zero-padded on capture and clamped on
/// copy-back.
struct PageDelta {
  std::vector<uint32_t> pages;  // ascending page indices
  std::vector<uint8_t> bytes;   // pages.size() * DirtyMap::kPageSize

  /// Pointer to the stored image of `page_index`, or nullptr when this
  /// delta did not capture that page. O(log pages).
  const uint8_t* page(uint32_t page_index) const;
  size_t page_count() const { return pages.size(); }
};

/// Capture the journal's dirty pages of `mem` (sized `bytes`) into a
/// delta. Does not clear the journal: tree capture clears explicitly once
/// every segment has been copied out.
PageDelta CaptureDirtyPages(const DirtyMap& dirty, const uint8_t* mem,
                            uint64_t bytes);

/// Capture every page of `mem` (root nodes, and segments whose journal was
/// not live across the whole parent->child window).
PageDelta CaptureAllPages(const uint8_t* mem, uint64_t bytes);

/// Recycler for process memory segments (stack/heap/TLS buffers). Cycling
/// megabyte-sized vectors through the allocator on every process
/// construction mmap/munmaps them each time — 512 page faults per spawn —
/// and the pattern degenerates further when a snapshot pins the primary
/// process's segments between spawns. The pool hands back a previously
/// released buffer of the same size (one memset, no page-fault storm).
class SegmentPool {
 public:
  /// A zeroed buffer of exactly `bytes` bytes.
  std::vector<uint8_t> Acquire(uint64_t bytes) {
    for (size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].size() == bytes) {
        std::vector<uint8_t> buffer = std::move(free_[i]);
        free_.erase(free_.begin() + static_cast<ptrdiff_t>(i));
        std::fill(buffer.begin(), buffer.end(), uint8_t{0});
        return buffer;
      }
    }
    return std::vector<uint8_t>(bytes, 0);
  }

  /// Return a buffer for reuse (dropped beyond a small cap).
  void Release(std::vector<uint8_t> buffer) {
    if (buffer.empty() || free_.size() >= kMaxFree) return;
    free_.push_back(std::move(buffer));
  }

 private:
  static constexpr size_t kMaxFree = 16;
  std::vector<std::vector<uint8_t>> free_;
};

/// One mapped region. `backing` must outlive the AddressSpace and must not
/// be resized while mapped. `dirty` (optional) is the segment's dirty
/// journal; AddressSpace::write records into it so snapshot restores see
/// writes that bypass the interpreter's fast path (kernel, native stubs,
/// the reference engine).
struct Region {
  uint64_t base = 0;
  uint64_t size = 0;
  uint8_t* backing = nullptr;
  bool writable = false;
  std::string name;
  DirtyMap* dirty = nullptr;
};

class AddressSpace {
 public:
  void map(Region region);

  /// Region containing [addr, addr+len), or nullptr.
  const Region* find(uint64_t addr, uint64_t len) const;

  bool read(uint64_t addr, void* out, uint64_t len) const;
  bool write(uint64_t addr, const void* src, uint64_t len);

  bool read_u64(uint64_t addr, uint64_t* out) const;
  bool write_u64(uint64_t addr, uint64_t value);

 private:
  std::vector<Region> regions_;  // sorted by base
};

}  // namespace lfi::vm
