// Virtual address space: a small set of mapped regions with bounds checks.
//
// Layout of the synthetic platform (all processes share module mappings,
// each process owns its stack/heap/TLS):
//   0x0100'0000 + i*0x0010'0000   code of module i (read-only)
//   code_base   + 0x0008'0000     data of module i (read-write, shared)
//   0x4000'0000                   process stack (grows down)
//   0x5000'0000                   process heap (bump allocated)
//   0x6000'0000                   process TLS (errno and friends)
//   0xE000'0000 + 16*id           native interposition stubs (no backing)
//
// An out-of-range access is the synthetic SIGSEGV.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lfi::vm {

inline constexpr uint64_t kModuleBase = 0x0100'0000;
inline constexpr uint64_t kModuleSpacing = 0x0010'0000;
inline constexpr uint64_t kModuleDataDelta = 0x0008'0000;
inline constexpr uint64_t kStackBase = 0x4000'0000;
inline constexpr uint64_t kStackSize = 1 << 20;
inline constexpr uint64_t kHeapBase = 0x5000'0000;
inline constexpr uint64_t kTlsBase = 0x6000'0000;
inline constexpr uint64_t kTlsSize = 4096;
inline constexpr uint64_t kNativeStubBase = 0xE000'0000;
inline constexpr uint64_t kNativeStubSpacing = 16;
/// Sentinel return address: RET to this address exits the process cleanly.
inline constexpr uint64_t kExitSentinel = 0xDEAD'0000'0000;

inline uint64_t ModuleCodeBase(size_t index) {
  return kModuleBase + index * kModuleSpacing;
}
inline uint64_t ModuleDataBase(size_t index) {
  return ModuleCodeBase(index) + kModuleDataDelta;
}
/// Candidate module index for an address in the module band (addr must be
/// >= kModuleBase; callers still bounds-check against the loaded module
/// count and the segment sizes). The single home of the layout arithmetic
/// shared by Loader::module_at and the interpreter's fast memory path.
inline size_t ModuleIndexOf(uint64_t addr) {
  return static_cast<size_t>((addr - kModuleBase) / kModuleSpacing);
}
inline bool IsNativeStubAddress(uint64_t addr) {
  return addr >= kNativeStubBase && addr < kNativeStubBase + (1u << 20);
}
inline size_t NativeStubIndex(uint64_t addr) {
  return static_cast<size_t>((addr - kNativeStubBase) / kNativeStubSpacing);
}

/// One mapped region. `backing` must outlive the AddressSpace and must not
/// be resized while mapped.
struct Region {
  uint64_t base = 0;
  uint64_t size = 0;
  uint8_t* backing = nullptr;
  bool writable = false;
  std::string name;
};

class AddressSpace {
 public:
  void map(Region region);

  /// Region containing [addr, addr+len), or nullptr.
  const Region* find(uint64_t addr, uint64_t len) const;

  bool read(uint64_t addr, void* out, uint64_t len) const;
  bool write(uint64_t addr, const void* src, uint64_t len);

  bool read_u64(uint64_t addr, uint64_t* out) const;
  bool write_u64(uint64_t addr, uint64_t value);

 private:
  std::vector<Region> regions_;  // sorted by base
};

}  // namespace lfi::vm
