#include "vm/process.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/strings.hpp"
#include "vm/snapshot.hpp"

namespace lfi::vm {

using isa::Opcode;
using isa::Reg;

const char* SignalName(Signal s) {
  switch (s) {
    case Signal::None: return "none";
    case Signal::Segv: return "SIGSEGV";
    case Signal::Abort: return "SIGABRT";
    case Signal::Ill: return "SIGILL";
  }
  return "?";
}

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::Superblock: return "superblock";
    case ExecMode::Predecoded: return "predecoded";
    case ExecMode::Reference: return "reference";
  }
  return "?";
}

std::optional<ExecMode> ParseExecMode(std::string_view name) {
  if (name == "superblock") return ExecMode::Superblock;
  if (name == "predecoded") return ExecMode::Predecoded;
  if (name == "reference") return ExecMode::Reference;
  return std::nullopt;
}

namespace {
std::vector<uint8_t> AcquireSegment(SegmentPool* pool, uint64_t bytes) {
  return pool ? pool->Acquire(bytes) : std::vector<uint8_t>(bytes, 0);
}
}  // namespace

Process::Process(int pid, Loader& loader, kernel::KernelRuntime& kernel,
                 const std::vector<uint64_t>& syscall_targets,
                 uint64_t heap_cap_bytes, SegmentPool* pool)
    : pid_(pid),
      loader_(loader),
      kernel_(kernel),
      syscall_targets_(syscall_targets),
      pool_(pool),
      stack_mem_(AcquireSegment(pool, kStackSize)),
      // The heap band ends where TLS begins; a larger cap would overlap
      // the segments and break the layout arithmetic both engines (and
      // AddressSpace resolution order) rely on.
      heap_mem_(AcquireSegment(pool, std::min(heap_cap_bytes,
                                              kTlsBase - kHeapBase))),
      tls_mem_(AcquireSegment(pool, kTlsSize)) {}

Process::~Process() {
  if (pool_ == nullptr) return;
  pool_->Release(std::move(stack_mem_));
  pool_->Release(std::move(heap_mem_));
  pool_->Release(std::move(tls_mem_));
}

void Process::Start(uint64_t entry_addr) {
  RemapIfNeeded();
  regs_[static_cast<size_t>(Reg::SP)] =
      static_cast<int64_t>(kStackBase + kStackSize);
  Push(static_cast<int64_t>(kExitSentinel));
  pc_ = entry_addr;
  shadow_.push_back(Frame{entry_addr, kExitSentinel});
  state_ = ProcState::Runnable;
}

uint64_t Process::alloc_heap(uint64_t size) {
  // Reject before rounding so a near-UINT64_MAX request cannot wrap the
  // alignment arithmetic (or the cursor) into a tiny "successful" grant.
  if (size > heap_mem_.size()) return 0;  // cap: ENOMEM
  uint64_t aligned = (size + 15) & ~uint64_t{15};
  if (aligned == 0) aligned = 16;
  if (aligned > heap_mem_.size() - heap_cursor_) return 0;  // cap: ENOMEM
  uint64_t addr = kHeapBase + heap_cursor_;
  heap_cursor_ += aligned;
  return addr;
}

void Process::Fault(Signal sig, std::string message) {
  state_ = ProcState::Faulted;
  signal_ = sig;
  fault_message_ = std::move(message);
}

uint8_t* Process::FastMemPtr(uint64_t addr, uint64_t len, bool for_write) {
  // The synthetic layout is arithmetic (vm/memory.hpp), so the containing
  // segment of almost every access is computable without the AddressSpace
  // region search. Order by access frequency: stack, heap, TLS, modules.
  // Writes mark the segment's dirty journal (a no-op until a machine
  // snapshot enables it) so RestoreSnapshot can be O(dirty pages).
  uint64_t off = addr - kStackBase;
  if (off < kStackSize && kStackSize - off >= len) {
    if (for_write) stack_dirty_.Mark(off, len);
    return stack_mem_.data() + off;
  }
  off = addr - kHeapBase;
  if (off < heap_mem_.size() && heap_mem_.size() - off >= len) {
    if (for_write) heap_dirty_.Mark(off, len);
    return heap_mem_.data() + off;
  }
  off = addr - kTlsBase;
  if (off < tls_mem_.size() && tls_mem_.size() - off >= len) {
    if (for_write) tls_dirty_.Mark(off, len);
    return tls_mem_.data() + off;
  }
  if (addr >= kModuleBase) {
    size_t index = ModuleIndexOf(addr);
    const auto& modules = loader_.modules();
    if (index < modules.size()) {
      LoadedModule& mod = *modules[index];
      uint64_t rel = addr - mod.code_base;
      if (rel >= kModuleDataDelta) {
        uint64_t doff = rel - kModuleDataDelta;
        if (doff < mod.data_runtime.size() &&
            mod.data_runtime.size() - doff >= len) {
          if (for_write) mod.data_dirty.Mark(doff, len);
          return mod.data_runtime.data() + doff;
        }
      } else if (!for_write && rel < mod.object.code.size() &&
                 mod.object.code.size() - rel >= len) {
        return const_cast<uint8_t*>(mod.object.code.data() + rel);
      }
    }
  }
  return nullptr;
}

template <bool kFast>
bool Process::ReadU64(uint64_t addr, uint64_t* out) {
  if constexpr (kFast) {
    if (const uint8_t* p = FastMemPtr(addr, 8, /*for_write=*/false)) {
      std::memcpy(out, p, 8);
      return true;
    }
  }
  return space_.read_u64(addr, out);
}

template <bool kFast>
bool Process::WriteU64(uint64_t addr, uint64_t value) {
  if constexpr (kFast) {
    if (uint8_t* p = FastMemPtr(addr, 8, /*for_write=*/true)) {
      std::memcpy(p, &value, 8);
      return true;
    }
  }
  return space_.write_u64(addr, value);
}

template <bool kFast>
bool Process::PushT(int64_t v) {
  int64_t sp = regs_[static_cast<size_t>(Reg::SP)] - 8;
  regs_[static_cast<size_t>(Reg::SP)] = sp;
  if (!WriteU64<kFast>(static_cast<uint64_t>(sp), static_cast<uint64_t>(v))) {
    Fault(Signal::Segv, Format("stack overflow at sp=%llx",
                               (unsigned long long)sp));
    return false;
  }
  return true;
}

template <bool kFast>
bool Process::PopT(int64_t* v) {
  int64_t sp = regs_[static_cast<size_t>(Reg::SP)];
  uint64_t raw = 0;
  if (!ReadU64<kFast>(static_cast<uint64_t>(sp), &raw)) {
    Fault(Signal::Segv, Format("stack underflow at sp=%llx",
                               (unsigned long long)sp));
    return false;
  }
  regs_[static_cast<size_t>(Reg::SP)] = sp + 8;
  *v = static_cast<int64_t>(raw);
  return true;
}

bool Process::Push(int64_t v) { return PushT<false>(v); }

bool Process::Pop(int64_t* v) { return PopT<false>(v); }

// -- snapshot support ---------------------------------------------------------

void Process::CaptureCore(ProcessCore* out) const {
  out->pid = pid_;
  std::copy(std::begin(regs_), std::end(regs_), std::begin(out->regs));
  out->flags = flags_;
  out->pc = pc_;
  out->state = state_;
  out->signal = signal_;
  out->exit_code = exit_code_;
  out->pending_exit = pending_exit_;
  out->fault_message = fault_message_;
  out->instructions = instructions_;
  out->heap_cursor = heap_cursor_;
  out->shadow = shadow_;
}

void Process::RestoreCore(const ProcessCore& core) {
  std::copy(std::begin(core.regs), std::end(core.regs), std::begin(regs_));
  flags_ = core.flags;
  pc_ = core.pc;
  state_ = core.state;
  signal_ = core.signal;
  exit_code_ = core.exit_code;
  pending_exit_ = core.pending_exit;
  fault_message_ = core.fault_message;
  instructions_ = core.instructions;
  heap_cursor_ = core.heap_cursor;
  shadow_ = core.shadow;
  // Force a remap before the next instruction: a reconstructed process has
  // no address space yet, and the regions' dirty pointers must point at
  // this process's journals.
  mapped_generation_ = 0;
}

void Process::CaptureSnapshot(ProcessSnapshot* out) {
  CaptureCore(&out->core);
  out->stack = stack_mem_;
  out->heap = heap_mem_;
  out->tls = tls_mem_;
  // From here on every write is journaled, so restores only touch the
  // pages a scenario actually dirtied.
  stack_dirty_.Enable(stack_mem_.size());
  heap_dirty_.Enable(heap_mem_.size());
  tls_dirty_.Enable(tls_mem_.size());
}

void Process::RestoreFromSnapshot(const ProcessSnapshot& snap, bool full) {
  assert(snap.stack.size() == stack_mem_.size() &&
         snap.heap.size() == heap_mem_.size() &&
         snap.tls.size() == tls_mem_.size() &&
         "snapshot/process segment size mismatch");
  RestoreCore(snap.core);
  auto segment = [&](DirtyMap& dirty, const std::vector<uint8_t>& image,
                     std::vector<uint8_t>& mem) {
    if (full || !dirty.enabled()) {
      std::copy(image.begin(), image.end(), mem.begin());
      dirty.Enable(mem.size());
      dirty.ClearAll();  // Enable keeps stale marks; the copy covered them
    } else {
      RestoreDirtyPages(dirty, image.data(), mem.data(), image.size());
    }
  };
  segment(stack_dirty_, snap.stack, stack_mem_);
  segment(heap_dirty_, snap.heap, heap_mem_);
  segment(tls_dirty_, snap.tls, tls_mem_);
}

void Process::CaptureNode(ProcessNodeState* out, bool full) {
  CaptureCore(&out->core);
  out->stack_bytes = stack_mem_.size();
  out->heap_bytes = heap_mem_.size();
  out->tls_bytes = tls_mem_.size();
  out->full = full || !dirty_tracking_enabled();
  auto capture = [&](const DirtyMap& dirty, const std::vector<uint8_t>& mem) {
    return out->full ? CaptureAllPages(mem.data(), mem.size())
                     : CaptureDirtyPages(dirty, mem.data(), mem.size());
  };
  out->stack = capture(stack_dirty_, stack_mem_);
  out->heap = capture(heap_dirty_, heap_mem_);
  out->tls = capture(tls_dirty_, tls_mem_);
  // Start the next capture window: the node owns everything up to here.
  stack_dirty_.Enable(stack_mem_.size());
  heap_dirty_.Enable(heap_mem_.size());
  tls_dirty_.Enable(tls_mem_.size());
  stack_dirty_.ClearAll();
  heap_dirty_.ClearAll();
  tls_dirty_.ClearAll();
}

void Process::RestoreFromTree(const SnapshotTree& tree, SnapshotId target,
                              size_t proc_index,
                              const std::vector<SnapshotId>& path,
                              SnapshotRestoreStats* stats) {
  const ProcessNodeState& tps = tree.nodes[target].procs[proc_index];
  assert(tps.stack_bytes == stack_mem_.size() &&
         tps.heap_bytes == heap_mem_.size() &&
         tps.tls_bytes == tls_mem_.size() && dirty_tracking_enabled() &&
         "in-place tree restore requires aligned, journaled segments");
  RestoreCore(tps.core);
  auto segment = [&](DirtyMap& dirty, std::vector<uint8_t>& mem,
                     const PageDelta ProcessNodeState::*sel) {
    // Pages that can differ from the target: written since the machine's
    // current node (journal), or captured by any node on the tree path
    // between current and target.
    std::vector<uint32_t> pages;
    dirty.ForEachDirtyPage(
        [&](uint64_t p) { pages.push_back(static_cast<uint32_t>(p)); });
    for (SnapshotId id : path) {
      if (proc_index >= tree.nodes[id].procs.size()) continue;
      const PageDelta& d = tree.nodes[id].procs[proc_index].*sel;
      pages.insert(pages.end(), d.pages.begin(), d.pages.end());
    }
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
    for (uint32_t page : pages) {
      uint64_t off = uint64_t{page} << DirtyMap::kPageBits;
      if (off >= mem.size()) continue;
      const uint8_t* src = FindProcPage(tree, target, proc_index, sel, page,
                                        stats ? &stats->nodes_walked : nullptr);
      // No writer anywhere at-or-above the target: the page was untouched
      // at its capture point, i.e. still zero-filled from construction.
      uint64_t len = std::min(DirtyMap::kPageSize, mem.size() - off);
      if (src) {
        std::memcpy(mem.data() + off, src, len);
      } else {
        std::memset(mem.data() + off, 0, len);
      }
      if (stats) ++stats->pages_restored;
    }
    dirty.ClearAll();
  };
  segment(stack_dirty_, stack_mem_, &ProcessNodeState::stack);
  segment(heap_dirty_, heap_mem_, &ProcessNodeState::heap);
  segment(tls_dirty_, tls_mem_, &ProcessNodeState::tls);
}

// -- NativeFrame --------------------------------------------------------------

int64_t NativeFrame::arg(int i) const {
  // At stub entry no return address has been pushed: arg i sits at SP + 8i.
  uint64_t sp = static_cast<uint64_t>(proc_.reg(Reg::SP));
  uint64_t addr = sp + 8 * static_cast<uint64_t>(i);
  uint64_t raw = 0;
  if (!proc_.space_.read_u64(addr, &raw)) {
    // A stub reading an argument off an unmapped stack is a wild SP —
    // surface the fault instead of silently handing the stub a 0.
    proc_.Fault(Signal::Segv,
                Format("bad stack read for arg %d of %s at %llx", i,
                       symbol_.c_str(), (unsigned long long)addr));
    return 0;
  }
  return static_cast<int64_t>(raw);
}

bool NativeFrame::set_arg(int i, int64_t v) {
  uint64_t sp = static_cast<uint64_t>(proc_.reg(Reg::SP));
  return proc_.space_.write_u64(sp + 8 * static_cast<uint64_t>(i),
                                static_cast<uint64_t>(v));
}

std::vector<std::pair<uint64_t, std::string>> NativeFrame::backtrace() const {
  // Innermost first: the call site that reached the stub, then its callers.
  std::vector<std::pair<uint64_t, std::string>> out;
  for (auto it = proc_.shadow_.rbegin(); it != proc_.shadow_.rend(); ++it) {
    std::string sym = proc_.loader_.Symbolize(it->fn_addr);
    // Strip any "+0x..." suffix: frames name the enclosing function.
    size_t plus = sym.find('+');
    if (plus != std::string::npos) sym.resize(plus);
    out.emplace_back(it->ret_addr, sym);
  }
  return out;
}

// -- interpreter ---------------------------------------------------------------

void Process::DispatchCall(Target target, uint64_t ret_addr,
                           const std::string& symbol) {
  switch (target.kind) {
    case Target::Kind::Unresolved:
      Fault(Signal::Ill, "unresolved symbol: " + symbol);
      return;
    case Target::Kind::Code:
      if (!Push(static_cast<int64_t>(ret_addr))) return;
      shadow_.push_back(Frame{target.addr, ret_addr});
      pc_ = target.addr;
      return;
    case Target::Kind::Native:
      ExecNative(target.native_id, ret_addr);
      return;
  }
}

void Process::ExecNative(size_t native_id, uint64_t ret_addr) {
  // Chain through tail-calls between natives (rare but legal).
  for (int hops = 0; hops < 16; ++hops) {
    const NativeFn* fn = loader_.native(native_id);
    if (!fn || !*fn) {
      Fault(Signal::Ill, Format("bad native stub id %zu", native_id));
      return;
    }
    NativeFrame frame(*this, loader_.native_name(native_id));
    NativeAction action = (*fn)(frame);
    if (state_ != ProcState::Runnable) return;  // stub faulted/exited us
    if (action.kind == NativeAction::Kind::Return) {
      regs_[static_cast<size_t>(Reg::R0)] = action.value;
      pc_ = ret_addr;
      return;
    }
    // Tail call: the original's RET must return straight to the app caller,
    // so we push the app return address, not a stub frame (§5.1's jmp trick).
    if (IsNativeStubAddress(action.target)) {
      native_id = NativeStubIndex(action.target);
      continue;
    }
    if (!Push(static_cast<int64_t>(ret_addr))) return;
    shadow_.push_back(Frame{action.target, ret_addr});
    pc_ = action.target;
    return;
  }
  Fault(Signal::Ill, "native tail-call chain too deep");
}

uint64_t Process::Run(uint64_t budget) {
  switch (exec_mode_) {
    case ExecMode::Reference: {
      uint64_t executed = 0;
      while (state_ == ProcState::Runnable && executed < budget) {
        Step();
        ++executed;
      }
      return executed;
    }
    case ExecMode::Predecoded:
      return RunPredecoded(budget);
    case ExecMode::Superblock:
      break;
  }
  return RunSuperblock(budget);
}

namespace {
inline void DigestMix(uint64_t& h, uint64_t value) {
  h ^= value;
  h *= 1099511628211ull;
}

inline void DigestMixBytes(uint64_t& h, const uint8_t* data, size_t size) {
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t chunk;
    std::memcpy(&chunk, data + i, 8);
    DigestMix(h, chunk);
  }
  uint64_t tail = 0;
  for (; i < size; ++i) tail = (tail << 8) | data[i];
  DigestMix(h, tail);
}
}  // namespace

uint64_t Process::StateDigest() const {
  uint64_t h = 14695981039346656037ull;
  DigestMix(h, static_cast<uint64_t>(pid_));
  for (int64_t r : regs_) DigestMix(h, static_cast<uint64_t>(r));
  DigestMix(h, static_cast<uint64_t>(flags_));
  DigestMix(h, pc_);
  DigestMix(h, static_cast<uint64_t>(state_));
  DigestMix(h, static_cast<uint64_t>(signal_));
  DigestMix(h, static_cast<uint64_t>(exit_code_));
  DigestMix(h, heap_cursor_);
  DigestMix(h, shadow_.size());
  for (const Frame& f : shadow_) {
    DigestMix(h, f.fn_addr);
    DigestMix(h, f.ret_addr);
  }
  DigestMixBytes(h, stack_mem_.data(), stack_mem_.size());
  DigestMixBytes(h, heap_mem_.data(), heap_mem_.size());
  DigestMixBytes(h, tls_mem_.data(), tls_mem_.size());
  return h;
}

void Process::RemapIfNeeded() {
  if (mapped_generation_ == loader_.generation()) return;
  // (Re)build the address space: shared module images + private segments.
  // Writable regions carry their segment's dirty journal so writes through
  // the AddressSpace fallback (kernel, native stubs, reference engine) are
  // seen by snapshot restores too.
  space_ = AddressSpace();
  for (const auto& mod : loader_.modules()) {
    space_.map(Region{mod->code_base, mod->object.code.size(),
                      const_cast<uint8_t*>(mod->object.code.data()), false,
                      mod->object.name + ".text", nullptr});
    if (!mod->data_runtime.empty()) {
      space_.map(Region{mod->data_base, mod->data_runtime.size(),
                        mod->data_runtime.data(), true,
                        mod->object.name + ".data", &mod->data_dirty});
    }
  }
  space_.map(Region{kStackBase, stack_mem_.size(), stack_mem_.data(), true,
                    "stack", &stack_dirty_});
  if (!heap_mem_.empty()) {
    space_.map(Region{kHeapBase, heap_mem_.size(), heap_mem_.data(), true,
                      "heap", &heap_dirty_});
  }
  space_.map(Region{kTlsBase, tls_mem_.size(), tls_mem_.data(), true, "tls",
                    &tls_dirty_});
  mapped_generation_ = loader_.generation();
}

uint64_t Process::RunPredecoded(uint64_t budget) {
  uint64_t executed = 0;
  // Cached binding of the module containing pc: invalidated when pc leaves
  // the module's text or the loader generation changes (a remap can also
  // mean new modules, which may reallocate the code-cache stream table).
  const LoadedModule* mod = nullptr;
  const CodeCache::ModuleStream* stream = nullptr;
  uint64_t code_base = 0;
  uint64_t code_size = 0;
  while (state_ == ProcState::Runnable && executed < budget) {
    if (mapped_generation_ != loader_.generation()) {
      RemapIfNeeded();
      mod = nullptr;
    }
    uint64_t off = pc_ - code_base;
    if (mod == nullptr || off >= code_size) {
      mod = loader_.module_at(pc_);
      if (mod == nullptr) {
        Fault(Signal::Segv,
              Format("pc outside code: %llx", (unsigned long long)pc_));
        ++executed;
        break;
      }
      stream = loader_.code_cache().stream(mod->index);
      code_base = mod->code_base;
      code_size = mod->object.code.size();
      off = pc_ - code_base;
    }
    uint32_t slot = stream != nullptr
                        ? stream->slot_of_offset[static_cast<size_t>(off)]
                        : CodeCache::kNoSlot;
    if (slot != CodeCache::kNoSlot) {
      ExecuteInstr<true>(stream->instrs[slot], *mod);
    } else {
      // pc landed mid-instruction or on undecodable bytes: run the
      // reference decoder so the outcome (including the exact fault
      // message) matches the decode-per-step path bit for bit.
      auto decoded = isa::DecodeOne(mod->object.code,
                                    static_cast<uint32_t>(off));
      if (!decoded.ok()) {
        Fault(Signal::Ill, decoded.error());
        ++executed;
        break;
      }
      ExecuteInstr<true>(decoded.value(), *mod);
    }
    ++executed;
  }
  return executed;
}

void Process::Step() {
  if (state_ != ProcState::Runnable) return;
  RemapIfNeeded();

  const LoadedModule* mod = loader_.module_at(pc_);
  if (!mod) {
    Fault(Signal::Segv, Format("pc outside code: %llx", (unsigned long long)pc_));
    return;
  }
  uint32_t offset = static_cast<uint32_t>(pc_ - mod->code_base);
  auto decoded = isa::DecodeOne(mod->object.code, offset);
  if (!decoded.ok()) {
    Fault(Signal::Ill, decoded.error());
    return;
  }
  ExecuteInstr<false>(decoded.value(), *mod);
}

template <bool kFast>
void Process::ExecuteInstr(const isa::Instr& ins, const LoadedModule& mod) {
  if (coverage_) coverage_->Record(mod.index, ins.offset);
  ++instructions_;
  uint64_t next_pc = pc_ + ins.size;

  auto R = [&](Reg r) -> int64_t& { return regs_[static_cast<size_t>(r)]; };
  auto mem_fault = [&](uint64_t addr) {
    Fault(Signal::Segv,
          Format("bad memory access at %llx (pc=%llx)",
                 (unsigned long long)addr, (unsigned long long)pc_));
  };

  // One-instruction expansion of the shared semantics: sequential and
  // diverging completions both just commit next_pc below.
  switch (ins.op) {
#define LFI_CASE(name) case Opcode::name:
#define LFI_NEXT break
#define LFI_GOTO break
#define LFI_STOP return
#define LFI_SYNC_PC() ((void)0)  // pc_ is already exact per-step
#include "vm/exec_ops.inc"
#undef LFI_CASE
#undef LFI_NEXT
#undef LFI_GOTO
#undef LFI_STOP
#undef LFI_SYNC_PC
  }
  pc_ = next_pc;
}

template void Process::ExecuteInstr<false>(const isa::Instr&,
                                           const LoadedModule&);
template void Process::ExecuteInstr<true>(const isa::Instr&,
                                          const LoadedModule&);

// Opcode names in exact isa::Opcode declaration order, for the computed-goto
// dispatch table (static_assert'd against kCount below).
#define LFI_OPCODE_LIST(X)                                                 \
  X(NOP) X(HALT) X(ABORT)                                                  \
  X(MOV_RI) X(MOV_RR) X(LOAD) X(STORE) X(STORE_I)                          \
  X(LEA) X(LEA_DATA) X(LEA_TLS)                                            \
  X(PUSH) X(POP)                                                           \
  X(ADD_RR) X(SUB_RR) X(AND_RR) X(OR_RR) X(XOR_RR) X(MUL_RR)               \
  X(ADD_RI) X(SUB_RI) X(AND_RI) X(OR_RI) X(XOR_RI) X(MUL_RI)               \
  X(NEG) X(NOT)                                                            \
  X(CMP_RR) X(CMP_RI)                                                      \
  X(JMP) X(JE) X(JNE) X(JLT) X(JLE) X(JGT) X(JGE) X(JMP_IND)               \
  X(CALL) X(CALL_SYM) X(CALL_IND) X(RET)                                   \
  X(SYSCALL) X(KCALL) X(kCount)

uint64_t Process::ExecSpanFused(const CodeCache::ModuleStream& stream_in,
                                uint32_t slot, uint64_t budget,
                                const LoadedModule& mod_in) {
  // The superblock engine's inner loop: execute predecoded instructions
  // back-to-back while control stays inside the loader's decoded streams.
  // The program counter lives in locals (`pc` for the executing
  // instruction, `next_pc` pre-set to its fall-through) so hot bodies do
  // pure register arithmetic; the member pc_ is only materialized on
  // demand via LFI_SYNC_PC() by the cold bodies that can observe it —
  // faults, stack ops, call dispatch, kernel entry (fault messages, the
  // shadow stack, and KCALL retry semantics depend on it). Dispatch is a
  // single indirect jump per instruction, and a taken branch, call,
  // syscall, or return whose target starts an instruction in ANY loaded
  // module's stream continues IN-LOOP: the finished contiguous segment's
  // accounting is settled (one counter add + one masked coverage OR,
  // bit-identical to per-instruction Record()/increment), the module
  // binding is switched if control crossed modules, and execution
  // resumes at the target slot without returning to the outer engine
  // loop. pc_ is exact again on every return path.
  //
  // Returns how many instructions ran (>= 1; at most `budget`). A
  // faulting, blocking, or exiting instruction counts as executed,
  // exactly as the per-step engines count it. Exits only on a state
  // change, control leaving decoded code (a native stub, an unresolved
  // or interposed call, a mid-instruction target), or budget exhaustion.
  constexpr bool kFast = true;
  // Module binding, rebindable in-loop: when control transfers to another
  // module whose stream holds the target (SYSCALL into the kernel module,
  // RET back out, a resolved cross-module CALL_SYM), the loop settles the
  // finished segment and rebinds instead of returning. Safe because the
  // loader generation cannot change between fused instructions — every
  // mutating path (Load, RegisterNative, controller interposition) runs
  // through DispatchCall/ExecNative or outside Run(), and those bodies
  // LFI_STOP.
  const LoadedModule* modp = &mod_in;
  const CodeCache::ModuleStream* streamp = &stream_in;
  const isa::Instr* sbase = streamp->instrs.data();
  const isa::Instr* send = sbase + streamp->instrs.size();
  uint64_t code_base = modp->code_base;
  uint64_t code_size = modp->object.code.size();
  const isa::Instr* ip = sbase + slot;
  const isa::Instr* seg_start = ip;  // first instr of the current segment
  uint64_t avail = static_cast<uint64_t>(send - ip);
  const isa::Instr* end = ip + (budget < avail ? budget : avail);
  uint64_t executed = 0;
  uint64_t pc = pc_;  // == code_base + ip->offset, by the caller's contract
  uint64_t next_pc = pc + ip->size;
  // The CMP flag lives in a local for the duration of the span (CMP/Jcc
  // are pure register traffic here) and is committed on every exit.
  // Nothing outside the loop reads flags_ mid-span: the only other
  // accessors are snapshot capture/restore, which run between Run calls.
  int flags = flags_;
  auto commit_flags = [&] { flags_ = flags; };

  auto R = [&](Reg r) -> int64_t& { return regs_[static_cast<size_t>(r)]; };
  auto mem_fault = [&](uint64_t addr) {
    Fault(Signal::Segv,
          Format("bad memory access at %llx (pc=%llx)",
                 (unsigned long long)addr, (unsigned long long)pc_));
  };
  // Settle the open segment [seg_start, last]: instruction count and
  // coverage in one update each. Segments are contiguous in offset order,
  // which is what makes the masked bitmap OR equal per-instruction
  // recording. Must run BEFORE any rebind — the segment belongs to the
  // module it executed in.
  auto account = [&](const isa::Instr* last) {
    uint64_t n = static_cast<uint64_t>(last - seg_start) + 1;
    executed += n;
    instructions_ += n;
    if (coverage_) {
      coverage_->RecordSpan(modp->index, seg_start->offset, last->offset,
                            streamp->start_bits);
    }
  };

#if defined(__GNUC__) || defined(__clang__)
  // Direct-threaded dispatch (labels-as-values).
  static const void* const kDispatch[] = {
#define LFI_LABEL_ADDR(name) &&op_##name,
      LFI_OPCODE_LIST(LFI_LABEL_ADDR)
#undef LFI_LABEL_ADDR
  };
  static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                    static_cast<size_t>(Opcode::kCount) + 1,
                "dispatch table out of sync with isa::Opcode");
#define LFI_SPAN_DISPATCH() goto* kDispatch[static_cast<size_t>(ip->op)]
#define LFI_CASE(name) op_##name:
#else
  // Portable fallback: same trampolines, switch-based dispatch.
#define LFI_SPAN_DISPATCH() goto lfi_dispatch
#define LFI_CASE(name) case Opcode::name:
#endif
#if defined(__GNUC__) || defined(__clang__)
  // Replicate the sequential-advance + dispatch into every body (classic
  // direct-threading): each opcode gets its own indirect-jump site, so
  // the branch predictor learns per-opcode successor patterns instead of
  // aliasing every transition through one shared jump.
#define LFI_NEXT                                                           \
  do {                                                                     \
    pc = next_pc;                                                          \
    if (++ip == end) {                                                     \
      account(ip - 1);                                                     \
      commit_flags();                                                      \
      pc_ = pc;                                                            \
      return executed;                                                     \
    }                                                                      \
    next_pc = pc + ip->size;                                               \
    LFI_SPAN_DISPATCH();                                                   \
  } while (0)
  // Diverging completions (next_pc may differ from the fall-through) test
  // in place: untaken branches stay on the replicated fast path, taken
  // transfers settle the segment and chase in the shared trampoline.
#define LFI_GOTO                                                           \
  do {                                                                     \
    if (next_pc != pc + ip->size) goto lfi_ctrl;                           \
    LFI_NEXT;                                                              \
  } while (0)
#else
#define LFI_NEXT goto lfi_seq
#define LFI_GOTO goto lfi_ctrl
#endif
#define LFI_STOP goto lfi_stop
#define LFI_SYNC_PC() (pc_ = pc)
#define ins (*ip)
#define mod (*modp)
  // Redirect the bodies' flags_ accesses to the span-local copy; every
  // return path below runs commit_flags() first.
#define flags_ flags

  LFI_SPAN_DISPATCH();

#if !defined(__GNUC__) && !defined(__clang__)
lfi_seq:
  // Sequential completion: fall into the next slot.
  pc = next_pc;
  if (++ip == end) {
    account(ip - 1);
    commit_flags();
    pc_ = pc;
    return executed;
  }
  next_pc = pc + ip->size;
  LFI_SPAN_DISPATCH();
#endif

lfi_ctrl:
  // A possibly-diverging completion (branch/call/return). Taken: the
  // segment ended — settle it, then chase next_pc in-loop, rebinding the
  // module binding when control crossed into another stream.
  if (next_pc != pc + ip->size) {
    account(ip);  // the diverging instruction closed the segment
    uint64_t target_off = next_pc - code_base;
    if (target_off >= code_size) {
      // Crossed out of this module (syscall into the kernel module, a
      // cross-module call or return): rebind and keep going if the
      // target's module has a stream.
      const LoadedModule* nm = loader_.module_at(next_pc);
      const CodeCache::ModuleStream* ns =
          nm != nullptr ? loader_.code_cache().stream(nm->index) : nullptr;
      if (ns == nullptr) {
        // Outside all code / no stream: the outer loop faults or falls
        // back exactly like the predecoded engine.
        commit_flags();
        pc_ = next_pc;
        return executed;
      }
      modp = nm;
      streamp = ns;
      sbase = ns->instrs.data();
      send = sbase + ns->instrs.size();
      code_base = nm->code_base;
      code_size = nm->object.code.size();
      target_off = next_pc - code_base;
    }
    uint32_t target_slot =
        streamp->slot_of_offset[static_cast<size_t>(target_off)];
    if (target_slot == CodeCache::kNoSlot || executed >= budget) {
      // Mid-instruction target (DecodeOne fallback) or quantum expiry:
      // hand back to the outer loop with pc_ exact.
      commit_flags();
      pc_ = next_pc;
      return executed;
    }
    ip = sbase + target_slot;
    seg_start = ip;
    uint64_t room = budget - executed;
    avail = static_cast<uint64_t>(send - ip);
    end = ip + (room < avail ? room : avail);
    pc = next_pc;
    next_pc = pc + ip->size;
    LFI_SPAN_DISPATCH();
  }
  // Untaken: continue the segment sequentially.
  pc = next_pc;
  if (++ip == end) {
    account(ip - 1);
    commit_flags();
    pc_ = pc;
    return executed;
  }
  next_pc = pc + ip->size;
  LFI_SPAN_DISPATCH();

lfi_stop:
  // The body finalized pc/state itself (fault, exit, call dispatch, block)
  // after re-materializing pc_ via LFI_SYNC_PC().
  account(ip);
  commit_flags();
  return executed;

#if !defined(__GNUC__) && !defined(__clang__)
lfi_dispatch:
  switch (ip->op) {
#endif

#include "vm/exec_ops.inc"

#if !defined(__GNUC__) && !defined(__clang__)
  }
  account(ip);  // unreachable: bodies jump
  commit_flags();
  return executed;
#endif

#undef flags_
#undef mod
#undef ins
#undef LFI_CASE
#undef LFI_NEXT
#undef LFI_GOTO
#undef LFI_STOP
#undef LFI_SYNC_PC
#undef LFI_SPAN_DISPATCH
}

uint64_t Process::RunSuperblock(uint64_t budget) {
  uint64_t executed = 0;
  // Same cached module binding as RunPredecoded; see the comment there.
  const LoadedModule* mod = nullptr;
  const CodeCache::ModuleStream* stream = nullptr;
  uint64_t code_base = 0;
  uint64_t code_size = 0;
  while (state_ == ProcState::Runnable && executed < budget) {
    if (mapped_generation_ != loader_.generation()) {
      RemapIfNeeded();
      mod = nullptr;
    }
    uint64_t off = pc_ - code_base;
    if (mod == nullptr || off >= code_size) {
      mod = loader_.module_at(pc_);
      if (mod == nullptr) {
        Fault(Signal::Segv,
              Format("pc outside code: %llx", (unsigned long long)pc_));
        ++executed;
        break;
      }
      stream = loader_.code_cache().stream(mod->index);
      code_base = mod->code_base;
      code_size = mod->object.code.size();
      off = pc_ - code_base;
    }
    uint32_t slot = stream != nullptr
                        ? stream->slot_of_offset[static_cast<size_t>(off)]
                        : CodeCache::kNoSlot;
    if (slot == CodeCache::kNoSlot) {
      // Mid-instruction or undecodable pc: identical fallback to the
      // predecoded engine (counted reference step, exact fault text).
      auto decoded = isa::DecodeOne(mod->object.code,
                                    static_cast<uint32_t>(off));
      if (!decoded.ok()) {
        Fault(Signal::Ill, decoded.error());
        ++executed;
        break;
      }
      ExecuteInstr<true>(decoded.value(), *mod);
      ++executed;
      continue;
    }
    // Fused run: free-run from this slot, following control flow in-loop
    // across all decoded streams. Superblock boundaries need no dispatch
    // stop — slot i+1 always holds the fall-through instruction — and
    // branches/calls/returns whose target has a slot (in this module or
    // another) continue inside ExecSpanFused, which also settles
    // instruction-count and coverage accounting per contiguous segment.
    // Control comes back here only on a state change, control leaving
    // decoded code, or budget exhaustion — the budget cap is what
    // re-materializes exact per-instruction counters at quantum expiry
    // and snapshot windows.
    executed += ExecSpanFused(*stream, slot, budget - executed, *mod);
  }
  return executed;
}

}  // namespace lfi::vm
