#include "vm/process.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/strings.hpp"
#include "vm/snapshot.hpp"

namespace lfi::vm {

using isa::Opcode;
using isa::Reg;

const char* SignalName(Signal s) {
  switch (s) {
    case Signal::None: return "none";
    case Signal::Segv: return "SIGSEGV";
    case Signal::Abort: return "SIGABRT";
    case Signal::Ill: return "SIGILL";
  }
  return "?";
}

namespace {
std::vector<uint8_t> AcquireSegment(SegmentPool* pool, uint64_t bytes) {
  return pool ? pool->Acquire(bytes) : std::vector<uint8_t>(bytes, 0);
}
}  // namespace

Process::Process(int pid, Loader& loader, kernel::KernelRuntime& kernel,
                 const std::vector<uint64_t>& syscall_targets,
                 uint64_t heap_cap_bytes, SegmentPool* pool)
    : pid_(pid),
      loader_(loader),
      kernel_(kernel),
      syscall_targets_(syscall_targets),
      pool_(pool),
      stack_mem_(AcquireSegment(pool, kStackSize)),
      // The heap band ends where TLS begins; a larger cap would overlap
      // the segments and break the layout arithmetic both engines (and
      // AddressSpace resolution order) rely on.
      heap_mem_(AcquireSegment(pool, std::min(heap_cap_bytes,
                                              kTlsBase - kHeapBase))),
      tls_mem_(AcquireSegment(pool, kTlsSize)) {}

Process::~Process() {
  if (pool_ == nullptr) return;
  pool_->Release(std::move(stack_mem_));
  pool_->Release(std::move(heap_mem_));
  pool_->Release(std::move(tls_mem_));
}

void Process::Start(uint64_t entry_addr) {
  RemapIfNeeded();
  regs_[static_cast<size_t>(Reg::SP)] =
      static_cast<int64_t>(kStackBase + kStackSize);
  Push(static_cast<int64_t>(kExitSentinel));
  pc_ = entry_addr;
  shadow_.push_back(Frame{entry_addr, kExitSentinel});
  state_ = ProcState::Runnable;
}

uint64_t Process::alloc_heap(uint64_t size) {
  // Reject before rounding so a near-UINT64_MAX request cannot wrap the
  // alignment arithmetic (or the cursor) into a tiny "successful" grant.
  if (size > heap_mem_.size()) return 0;  // cap: ENOMEM
  uint64_t aligned = (size + 15) & ~uint64_t{15};
  if (aligned == 0) aligned = 16;
  if (aligned > heap_mem_.size() - heap_cursor_) return 0;  // cap: ENOMEM
  uint64_t addr = kHeapBase + heap_cursor_;
  heap_cursor_ += aligned;
  return addr;
}

void Process::Fault(Signal sig, std::string message) {
  state_ = ProcState::Faulted;
  signal_ = sig;
  fault_message_ = std::move(message);
}

uint8_t* Process::FastMemPtr(uint64_t addr, uint64_t len, bool for_write) {
  // The synthetic layout is arithmetic (vm/memory.hpp), so the containing
  // segment of almost every access is computable without the AddressSpace
  // region search. Order by access frequency: stack, heap, TLS, modules.
  // Writes mark the segment's dirty journal (a no-op until a machine
  // snapshot enables it) so RestoreSnapshot can be O(dirty pages).
  uint64_t off = addr - kStackBase;
  if (off < kStackSize && kStackSize - off >= len) {
    if (for_write) stack_dirty_.Mark(off, len);
    return stack_mem_.data() + off;
  }
  off = addr - kHeapBase;
  if (off < heap_mem_.size() && heap_mem_.size() - off >= len) {
    if (for_write) heap_dirty_.Mark(off, len);
    return heap_mem_.data() + off;
  }
  off = addr - kTlsBase;
  if (off < tls_mem_.size() && tls_mem_.size() - off >= len) {
    if (for_write) tls_dirty_.Mark(off, len);
    return tls_mem_.data() + off;
  }
  if (addr >= kModuleBase) {
    size_t index = ModuleIndexOf(addr);
    const auto& modules = loader_.modules();
    if (index < modules.size()) {
      LoadedModule& mod = *modules[index];
      uint64_t rel = addr - mod.code_base;
      if (rel >= kModuleDataDelta) {
        uint64_t doff = rel - kModuleDataDelta;
        if (doff < mod.data_runtime.size() &&
            mod.data_runtime.size() - doff >= len) {
          if (for_write) mod.data_dirty.Mark(doff, len);
          return mod.data_runtime.data() + doff;
        }
      } else if (!for_write && rel < mod.object.code.size() &&
                 mod.object.code.size() - rel >= len) {
        return const_cast<uint8_t*>(mod.object.code.data() + rel);
      }
    }
  }
  return nullptr;
}

template <bool kFast>
bool Process::ReadU64(uint64_t addr, uint64_t* out) {
  if constexpr (kFast) {
    if (const uint8_t* p = FastMemPtr(addr, 8, /*for_write=*/false)) {
      std::memcpy(out, p, 8);
      return true;
    }
  }
  return space_.read_u64(addr, out);
}

template <bool kFast>
bool Process::WriteU64(uint64_t addr, uint64_t value) {
  if constexpr (kFast) {
    if (uint8_t* p = FastMemPtr(addr, 8, /*for_write=*/true)) {
      std::memcpy(p, &value, 8);
      return true;
    }
  }
  return space_.write_u64(addr, value);
}

template <bool kFast>
bool Process::PushT(int64_t v) {
  int64_t sp = regs_[static_cast<size_t>(Reg::SP)] - 8;
  regs_[static_cast<size_t>(Reg::SP)] = sp;
  if (!WriteU64<kFast>(static_cast<uint64_t>(sp), static_cast<uint64_t>(v))) {
    Fault(Signal::Segv, Format("stack overflow at sp=%llx",
                               (unsigned long long)sp));
    return false;
  }
  return true;
}

template <bool kFast>
bool Process::PopT(int64_t* v) {
  int64_t sp = regs_[static_cast<size_t>(Reg::SP)];
  uint64_t raw = 0;
  if (!ReadU64<kFast>(static_cast<uint64_t>(sp), &raw)) {
    Fault(Signal::Segv, Format("stack underflow at sp=%llx",
                               (unsigned long long)sp));
    return false;
  }
  regs_[static_cast<size_t>(Reg::SP)] = sp + 8;
  *v = static_cast<int64_t>(raw);
  return true;
}

bool Process::Push(int64_t v) { return PushT<false>(v); }

bool Process::Pop(int64_t* v) { return PopT<false>(v); }

// -- snapshot support ---------------------------------------------------------

void Process::CaptureSnapshot(ProcessSnapshot* out) {
  out->pid = pid_;
  std::copy(std::begin(regs_), std::end(regs_), std::begin(out->regs));
  out->flags = flags_;
  out->pc = pc_;
  out->state = state_;
  out->signal = signal_;
  out->exit_code = exit_code_;
  out->pending_exit = pending_exit_;
  out->fault_message = fault_message_;
  out->instructions = instructions_;
  out->heap_cursor = heap_cursor_;
  out->shadow = shadow_;
  out->stack = stack_mem_;
  out->heap = heap_mem_;
  out->tls = tls_mem_;
  // From here on every write is journaled, so restores only touch the
  // pages a scenario actually dirtied.
  stack_dirty_.Enable(stack_mem_.size());
  heap_dirty_.Enable(heap_mem_.size());
  tls_dirty_.Enable(tls_mem_.size());
}

void Process::RestoreFromSnapshot(const ProcessSnapshot& snap, bool full) {
  assert(snap.stack.size() == stack_mem_.size() &&
         snap.heap.size() == heap_mem_.size() &&
         snap.tls.size() == tls_mem_.size() &&
         "snapshot/process segment size mismatch");
  std::copy(std::begin(snap.regs), std::end(snap.regs), std::begin(regs_));
  flags_ = snap.flags;
  pc_ = snap.pc;
  state_ = snap.state;
  signal_ = snap.signal;
  exit_code_ = snap.exit_code;
  pending_exit_ = snap.pending_exit;
  fault_message_ = snap.fault_message;
  instructions_ = snap.instructions;
  heap_cursor_ = snap.heap_cursor;
  shadow_ = snap.shadow;
  auto segment = [&](DirtyMap& dirty, const std::vector<uint8_t>& image,
                     std::vector<uint8_t>& mem) {
    if (full || !dirty.enabled()) {
      std::copy(image.begin(), image.end(), mem.begin());
      dirty.Enable(mem.size());
    } else {
      RestoreDirtyPages(dirty, image.data(), mem.data(), image.size());
    }
  };
  segment(stack_dirty_, snap.stack, stack_mem_);
  segment(heap_dirty_, snap.heap, heap_mem_);
  segment(tls_dirty_, snap.tls, tls_mem_);
  // Force a remap before the next instruction: a reconstructed process has
  // no address space yet, and the regions' dirty pointers must point at
  // this process's journals.
  mapped_generation_ = 0;
}

// -- NativeFrame --------------------------------------------------------------

int64_t NativeFrame::arg(int i) const {
  // At stub entry no return address has been pushed: arg i sits at SP + 8i.
  uint64_t sp = static_cast<uint64_t>(proc_.reg(Reg::SP));
  uint64_t addr = sp + 8 * static_cast<uint64_t>(i);
  uint64_t raw = 0;
  if (!proc_.space_.read_u64(addr, &raw)) {
    // A stub reading an argument off an unmapped stack is a wild SP —
    // surface the fault instead of silently handing the stub a 0.
    proc_.Fault(Signal::Segv,
                Format("bad stack read for arg %d of %s at %llx", i,
                       symbol_.c_str(), (unsigned long long)addr));
    return 0;
  }
  return static_cast<int64_t>(raw);
}

bool NativeFrame::set_arg(int i, int64_t v) {
  uint64_t sp = static_cast<uint64_t>(proc_.reg(Reg::SP));
  return proc_.space_.write_u64(sp + 8 * static_cast<uint64_t>(i),
                                static_cast<uint64_t>(v));
}

std::vector<std::pair<uint64_t, std::string>> NativeFrame::backtrace() const {
  // Innermost first: the call site that reached the stub, then its callers.
  std::vector<std::pair<uint64_t, std::string>> out;
  for (auto it = proc_.shadow_.rbegin(); it != proc_.shadow_.rend(); ++it) {
    std::string sym = proc_.loader_.Symbolize(it->fn_addr);
    // Strip any "+0x..." suffix: frames name the enclosing function.
    size_t plus = sym.find('+');
    if (plus != std::string::npos) sym.resize(plus);
    out.emplace_back(it->ret_addr, sym);
  }
  return out;
}

// -- interpreter ---------------------------------------------------------------

void Process::DispatchCall(Target target, uint64_t ret_addr,
                           const std::string& symbol) {
  switch (target.kind) {
    case Target::Kind::Unresolved:
      Fault(Signal::Ill, "unresolved symbol: " + symbol);
      return;
    case Target::Kind::Code:
      if (!Push(static_cast<int64_t>(ret_addr))) return;
      shadow_.push_back(Frame{target.addr, ret_addr});
      pc_ = target.addr;
      return;
    case Target::Kind::Native:
      ExecNative(target.native_id, ret_addr);
      return;
  }
}

void Process::ExecNative(size_t native_id, uint64_t ret_addr) {
  // Chain through tail-calls between natives (rare but legal).
  for (int hops = 0; hops < 16; ++hops) {
    const NativeFn* fn = loader_.native(native_id);
    if (!fn || !*fn) {
      Fault(Signal::Ill, Format("bad native stub id %zu", native_id));
      return;
    }
    NativeFrame frame(*this, loader_.native_name(native_id));
    NativeAction action = (*fn)(frame);
    if (state_ != ProcState::Runnable) return;  // stub faulted/exited us
    if (action.kind == NativeAction::Kind::Return) {
      regs_[static_cast<size_t>(Reg::R0)] = action.value;
      pc_ = ret_addr;
      return;
    }
    // Tail call: the original's RET must return straight to the app caller,
    // so we push the app return address, not a stub frame (§5.1's jmp trick).
    if (IsNativeStubAddress(action.target)) {
      native_id = NativeStubIndex(action.target);
      continue;
    }
    if (!Push(static_cast<int64_t>(ret_addr))) return;
    shadow_.push_back(Frame{action.target, ret_addr});
    pc_ = action.target;
    return;
  }
  Fault(Signal::Ill, "native tail-call chain too deep");
}

uint64_t Process::Run(uint64_t budget) {
  if (exec_mode_ == ExecMode::Reference) {
    uint64_t executed = 0;
    while (state_ == ProcState::Runnable && executed < budget) {
      Step();
      ++executed;
    }
    return executed;
  }
  return RunPredecoded(budget);
}

void Process::RemapIfNeeded() {
  if (mapped_generation_ == loader_.generation()) return;
  // (Re)build the address space: shared module images + private segments.
  // Writable regions carry their segment's dirty journal so writes through
  // the AddressSpace fallback (kernel, native stubs, reference engine) are
  // seen by snapshot restores too.
  space_ = AddressSpace();
  for (const auto& mod : loader_.modules()) {
    space_.map(Region{mod->code_base, mod->object.code.size(),
                      const_cast<uint8_t*>(mod->object.code.data()), false,
                      mod->object.name + ".text", nullptr});
    if (!mod->data_runtime.empty()) {
      space_.map(Region{mod->data_base, mod->data_runtime.size(),
                        mod->data_runtime.data(), true,
                        mod->object.name + ".data", &mod->data_dirty});
    }
  }
  space_.map(Region{kStackBase, stack_mem_.size(), stack_mem_.data(), true,
                    "stack", &stack_dirty_});
  if (!heap_mem_.empty()) {
    space_.map(Region{kHeapBase, heap_mem_.size(), heap_mem_.data(), true,
                      "heap", &heap_dirty_});
  }
  space_.map(Region{kTlsBase, tls_mem_.size(), tls_mem_.data(), true, "tls",
                    &tls_dirty_});
  mapped_generation_ = loader_.generation();
}

uint64_t Process::RunPredecoded(uint64_t budget) {
  uint64_t executed = 0;
  // Cached binding of the module containing pc: invalidated when pc leaves
  // the module's text or the loader generation changes (a remap can also
  // mean new modules, which may reallocate the code-cache stream table).
  const LoadedModule* mod = nullptr;
  const CodeCache::ModuleStream* stream = nullptr;
  uint64_t code_base = 0;
  uint64_t code_size = 0;
  while (state_ == ProcState::Runnable && executed < budget) {
    if (mapped_generation_ != loader_.generation()) {
      RemapIfNeeded();
      mod = nullptr;
    }
    uint64_t off = pc_ - code_base;
    if (mod == nullptr || off >= code_size) {
      mod = loader_.module_at(pc_);
      if (mod == nullptr) {
        Fault(Signal::Segv,
              Format("pc outside code: %llx", (unsigned long long)pc_));
        ++executed;
        break;
      }
      stream = loader_.code_cache().stream(mod->index);
      code_base = mod->code_base;
      code_size = mod->object.code.size();
      off = pc_ - code_base;
    }
    uint32_t slot = stream != nullptr
                        ? stream->slot_of_offset[static_cast<size_t>(off)]
                        : CodeCache::kNoSlot;
    if (slot != CodeCache::kNoSlot) {
      ExecuteInstr<true>(stream->instrs[slot], *mod);
    } else {
      // pc landed mid-instruction or on undecodable bytes: run the
      // reference decoder so the outcome (including the exact fault
      // message) matches the decode-per-step path bit for bit.
      auto decoded = isa::DecodeOne(mod->object.code,
                                    static_cast<uint32_t>(off));
      if (!decoded.ok()) {
        Fault(Signal::Ill, decoded.error());
        ++executed;
        break;
      }
      ExecuteInstr<true>(decoded.value(), *mod);
    }
    ++executed;
  }
  return executed;
}

void Process::Step() {
  if (state_ != ProcState::Runnable) return;
  RemapIfNeeded();

  const LoadedModule* mod = loader_.module_at(pc_);
  if (!mod) {
    Fault(Signal::Segv, Format("pc outside code: %llx", (unsigned long long)pc_));
    return;
  }
  uint32_t offset = static_cast<uint32_t>(pc_ - mod->code_base);
  auto decoded = isa::DecodeOne(mod->object.code, offset);
  if (!decoded.ok()) {
    Fault(Signal::Ill, decoded.error());
    return;
  }
  ExecuteInstr<false>(decoded.value(), *mod);
}

template <bool kFast>
void Process::ExecuteInstr(const isa::Instr& ins, const LoadedModule& mod) {
  if (coverage_) coverage_->Record(mod.index, ins.offset);
  ++instructions_;
  uint64_t next_pc = pc_ + ins.size;

  auto R = [&](Reg r) -> int64_t& { return regs_[static_cast<size_t>(r)]; };
  auto mem_fault = [&](uint64_t addr) {
    Fault(Signal::Segv,
          Format("bad memory access at %llx (pc=%llx)",
                 (unsigned long long)addr, (unsigned long long)pc_));
  };

  switch (ins.op) {
    case Opcode::NOP:
      break;
    case Opcode::HALT:
      state_ = ProcState::Exited;
      exit_code_ = R(Reg::R0);
      return;
    case Opcode::ABORT:
      Fault(Signal::Abort, "abort instruction");
      return;
    case Opcode::MOV_RI: R(ins.a) = ins.imm; break;
    case Opcode::MOV_RR: R(ins.a) = R(ins.b); break;
    case Opcode::LOAD: {
      uint64_t addr = static_cast<uint64_t>(R(ins.b) + ins.disp);
      uint64_t raw = 0;
      if (!ReadU64<kFast>(addr, &raw)) return mem_fault(addr);
      R(ins.a) = static_cast<int64_t>(raw);
      break;
    }
    case Opcode::STORE: {
      uint64_t addr = static_cast<uint64_t>(R(ins.a) + ins.disp);
      if (!WriteU64<kFast>(addr, static_cast<uint64_t>(R(ins.b)))) {
        return mem_fault(addr);
      }
      break;
    }
    case Opcode::STORE_I: {
      uint64_t addr = static_cast<uint64_t>(R(ins.a) + ins.disp);
      if (!WriteU64<kFast>(addr, static_cast<uint64_t>(ins.imm))) {
        return mem_fault(addr);
      }
      break;
    }
    case Opcode::LEA: R(ins.a) = R(ins.b) + ins.disp; break;
    case Opcode::LEA_DATA:
      R(ins.a) = static_cast<int64_t>(mod.data_base) + ins.disp;
      break;
    case Opcode::LEA_TLS:
      R(ins.a) = static_cast<int64_t>(kTlsBase + mod.tls_base) + ins.disp;
      break;
    case Opcode::PUSH:
      if (!PushT<kFast>(R(ins.a))) return;
      break;
    case Opcode::POP: {
      int64_t v = 0;
      if (!PopT<kFast>(&v)) return;
      R(ins.a) = v;
      break;
    }
    case Opcode::ADD_RR: R(ins.a) += R(ins.b); break;
    case Opcode::SUB_RR: R(ins.a) -= R(ins.b); break;
    case Opcode::AND_RR: R(ins.a) &= R(ins.b); break;
    case Opcode::OR_RR: R(ins.a) |= R(ins.b); break;
    case Opcode::XOR_RR: R(ins.a) ^= R(ins.b); break;
    case Opcode::MUL_RR: R(ins.a) *= R(ins.b); break;
    case Opcode::ADD_RI: R(ins.a) += ins.imm; break;
    case Opcode::SUB_RI: R(ins.a) -= ins.imm; break;
    case Opcode::AND_RI: R(ins.a) &= ins.imm; break;
    case Opcode::OR_RI: R(ins.a) |= ins.imm; break;
    case Opcode::XOR_RI: R(ins.a) ^= ins.imm; break;
    case Opcode::MUL_RI: R(ins.a) *= ins.imm; break;
    case Opcode::NEG: R(ins.a) = -R(ins.a); break;
    case Opcode::NOT: R(ins.a) = ~R(ins.a); break;
    case Opcode::CMP_RR: {
      int64_t d = R(ins.a) - R(ins.b);
      flags_ = d < 0 ? -1 : d > 0 ? 1 : 0;
      break;
    }
    case Opcode::CMP_RI: {
      int64_t d = R(ins.a) - ins.imm;
      flags_ = d < 0 ? -1 : d > 0 ? 1 : 0;
      break;
    }
    case Opcode::JMP: next_pc = mod.code_base + ins.rel_target(); break;
    case Opcode::JE: if (flags_ == 0) next_pc = mod.code_base + ins.rel_target(); break;
    case Opcode::JNE: if (flags_ != 0) next_pc = mod.code_base + ins.rel_target(); break;
    case Opcode::JLT: if (flags_ < 0) next_pc = mod.code_base + ins.rel_target(); break;
    case Opcode::JLE: if (flags_ <= 0) next_pc = mod.code_base + ins.rel_target(); break;
    case Opcode::JGT: if (flags_ > 0) next_pc = mod.code_base + ins.rel_target(); break;
    case Opcode::JGE: if (flags_ >= 0) next_pc = mod.code_base + ins.rel_target(); break;
    case Opcode::JMP_IND: {
      uint64_t target = static_cast<uint64_t>(R(ins.a));
      if (IsNativeStubAddress(target)) {
        // Tail-jump into a stub: behave like the stub was CALL'd by our
        // caller; the pending return address is already on the stack.
        int64_t ret = 0;
        if (!PopT<kFast>(&ret)) return;
        if (!shadow_.empty()) shadow_.pop_back();
        ExecNative(NativeStubIndex(target), static_cast<uint64_t>(ret));
        return;
      }
      next_pc = target;
      break;
    }
    case Opcode::CALL: {
      uint64_t target = mod.code_base + ins.rel_target();
      if (!PushT<kFast>(static_cast<int64_t>(next_pc))) return;
      shadow_.push_back(Frame{target, next_pc});
      next_pc = target;
      break;
    }
    case Opcode::CALL_SYM: {
      if (ins.u16 >= mod.object.imports.size()) {
        Fault(Signal::Ill, "import index out of range");
        return;
      }
      Target target = loader_.Resolve(mod.index, ins.u16);
      DispatchCall(target, next_pc, mod.object.imports[ins.u16]);
      return;
    }
    case Opcode::CALL_IND: {
      uint64_t target = static_cast<uint64_t>(R(ins.a));
      if (IsNativeStubAddress(target)) {
        ExecNative(NativeStubIndex(target), next_pc);
        return;
      }
      DispatchCall(Target{Target::Kind::Code, target, 0}, next_pc,
                   Hex(target));
      return;
    }
    case Opcode::RET: {
      int64_t ret = 0;
      if (!PopT<kFast>(&ret)) return;
      if (!shadow_.empty()) shadow_.pop_back();
      if (static_cast<uint64_t>(ret) == kExitSentinel) {
        state_ = ProcState::Exited;
        exit_code_ = R(Reg::R0);
        return;
      }
      next_pc = static_cast<uint64_t>(ret);
      break;
    }
    case Opcode::SYSCALL: {
      // Flat array indexed by syscall number; 0 = no handler (module code
      // bases start above the null page, so 0 is never a real target).
      uint64_t target =
          ins.u16 < syscall_targets_.size() ? syscall_targets_[ins.u16] : 0;
      if (target == 0) {
        R(Reg::R0) = -E_NOSYS;
        break;
      }
      if (!PushT<kFast>(static_cast<int64_t>(next_pc))) return;
      shadow_.push_back(Frame{target, next_pc});
      next_pc = target;
      break;
    }
    case Opcode::KCALL: {
      kernel::KResult res = kernel_.Invoke(ins.u16, *this);
      if (pending_exit_) {
        state_ = ProcState::Exited;
        return;
      }
      if (res.kind == kernel::KResult::Kind::Block) {
        state_ = ProcState::Blocked;
        return;  // pc unchanged: the KCALL is retried on wake-up
      }
      if (res.kind == kernel::KResult::Kind::Ok) {
        R(Reg::R0) = res.value;
        R(Reg::R1) = 0;
      } else {
        const kernel::SyscallSpec* spec = kernel::FindSyscall(ins.u16);
        int idx = spec ? kernel::ErrorIndex(*spec, res.error) : -1;
        // An errno outside the spec would make the handler lie about its
        // own error set; map it to the last slot and flag in debug builds.
        if (idx < 0 && spec && !spec->errors.empty()) {
          idx = static_cast<int>(spec->errors.size()) - 1;
        }
        R(Reg::R0) = -1;
        R(Reg::R1) = idx + 1;
      }
      break;
    }
    case Opcode::kCount:
      Fault(Signal::Ill, "bad opcode");
      return;
  }
  pc_ = next_pc;
}

template void Process::ExecuteInstr<false>(const isa::Instr&,
                                           const LoadedModule&);
template void Process::ExecuteInstr<true>(const isa::Instr&,
                                          const LoadedModule&);

}  // namespace lfi::vm
