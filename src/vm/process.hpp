// Process: one executing program — registers, stack/heap/TLS, the
// fetch-decode-execute loop, and the shadow call stack used for the
// stack-trace triggers of the scenario language (§4).
//
// Three execution engines share one instruction-semantics implementation
// (vm/exec_ops.inc, expanded per engine):
//   - Superblock (default): fused straight-line spans over the loader's
//     CodeCache streams — one computed-goto dispatch per instruction, with
//     coverage recording and instruction-count accounting hoisted to one
//     update per span; exact per-instruction counters are re-materialized
//     whenever a span ends (fault, kcall/native exit, quantum expiry,
//     snapshot windows).
//   - Predecoded: one instruction per dispatch from the same CodeCache
//     streams, binding the current module by address arithmetic and
//     serving stack/heap/TLS/module memory through O(1) region
//     arithmetic (`FastMemPtr`), with AddressSpace fallback.
//   - Reference: the original decode-per-step path (`Step()` +
//     AddressSpace lookups), kept so differential tests and
//     bench_interp_throughput can prove the fast engines bit-identical
//     and measure their speedup.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "isa/isa.hpp"
#include "kernel/kernel_runtime.hpp"
#include "vm/coverage.hpp"
#include "vm/loader.hpp"
#include "vm/memory.hpp"

namespace lfi::vm {

struct ProcessCore;
struct ProcessSnapshot;
struct ProcessNodeState;
struct SnapshotTree;
struct SnapshotRestoreStats;

enum class ProcState { Runnable, Blocked, Exited, Faulted };

enum class Signal { None, Segv, Abort, Ill };

/// Which interpreter loop Run() uses. All three are bit-identical in
/// behavior (test-enforced); Reference exists as the differential baseline.
enum class ExecMode { Superblock, Predecoded, Reference };

/// The LFI_EXEC-style name of an engine ("superblock" / "predecoded" /
/// "reference").
const char* ExecModeName(ExecMode mode);

/// Parse an LFI_EXEC-style engine name; nullopt for unknown values.
std::optional<ExecMode> ParseExecMode(std::string_view name);

const char* SignalName(Signal s);

/// One shadow-stack entry: the function that was entered and where it will
/// return. Used to synthesize symbolized backtraces.
struct Frame {
  uint64_t fn_addr = 0;
  uint64_t ret_addr = 0;
};

class Process final : public kernel::KernelContext {
 public:
  /// `pool` (optional) recycles the stack/heap/TLS buffers across process
  /// lifetimes — it must outlive the process.
  Process(int pid, Loader& loader, kernel::KernelRuntime& kernel,
          const std::vector<uint64_t>& syscall_targets,
          uint64_t heap_cap_bytes, SegmentPool* pool = nullptr);
  ~Process() override;

  /// Point the process at its entry and push the exit sentinel.
  void Start(uint64_t entry_addr);

  /// Execute one instruction (or one native stub invocation) on the
  /// reference decode-per-step path.
  void Step();

  /// Run until the process blocks, terminates, or `budget` instructions ran.
  /// Returns the number of instructions executed.
  uint64_t Run(uint64_t budget);

  // -- state ----------------------------------------------------------------
  ProcState state() const { return state_; }
  Signal signal() const { return signal_; }
  int64_t exit_code() const { return exit_code_; }
  const std::string& fault_message() const { return fault_message_; }
  uint64_t instructions() const { return instructions_; }
  uint64_t pc() const { return pc_; }
  /// Actual heap segment size (the construction-time cap, clamped to the
  /// heap band). Snapshot restore matches processes by pid + heap size.
  uint64_t heap_bytes() const { return heap_mem_.size(); }
  const std::vector<Frame>& shadow_stack() const { return shadow_; }

  /// Wake a blocked process so the scheduler can retry its syscall.
  void WakeIfBlocked() {
    if (state_ == ProcState::Blocked) state_ = ProcState::Runnable;
  }

  void set_coverage(CoverageTracker* tracker) { coverage_ = tracker; }

  ExecMode exec_mode() const { return exec_mode_; }
  void set_exec_mode(ExecMode mode) { exec_mode_ = mode; }

  /// FNV-1a digest of this process's architectural state: registers,
  /// flags, pc, status (state/signal/exit code), shadow stack, heap
  /// cursor, and the full stack/heap/TLS segments. Deliberately excludes
  /// the instruction counter — two runs that converge to the same
  /// architectural state along different-length paths digest equal (the
  /// SEU "masked" verdict is about state, not timing).
  uint64_t StateDigest() const;

  // -- KernelContext --------------------------------------------------------
  int64_t reg(isa::Reg r) const override {
    return regs_[static_cast<size_t>(r)];
  }
  void set_reg(isa::Reg r, int64_t v) override {
    regs_[static_cast<size_t>(r)] = v;
  }
  bool read_mem(uint64_t addr, void* out, uint64_t len) override {
    return space_.read(addr, out, len);
  }
  bool write_mem(uint64_t addr, const void* src, uint64_t len) override {
    return space_.write(addr, src, len);
  }
  uint64_t alloc_heap(uint64_t size) override;
  int pid() const override { return pid_; }
  void request_exit(int64_t code) override {
    pending_exit_ = true;
    exit_code_ = code;
  }

  /// Absolute address of a module-relative TLS offset (errno injection).
  uint64_t tls_address(const LoadedModule& mod, uint32_t offset) const {
    return kTlsBase + mod.tls_base + offset;
  }

  Loader& loader() { return loader_; }
  const Loader& loader() const { return loader_; }

  // -- snapshot support ------------------------------------------------------
  /// Copy the process's full state into `out` and enable dirty-page
  /// tracking on its stack/heap/TLS so a later restore is O(dirty pages).
  void CaptureSnapshot(ProcessSnapshot* out);
  /// Return to the captured state. With `full` set (or when tracking is
  /// not enabled, e.g. a process rebuilt after Machine::Reset) every
  /// segment is copied wholesale; otherwise only the pages written since
  /// the snapshot (or the last restore) are.
  void RestoreFromSnapshot(const ProcessSnapshot& snap, bool full);
  /// Stop journaling writes (the owning machine dropped its snapshot).
  void DisableDirtyTracking() {
    stack_dirty_.Disable();
    heap_dirty_.Disable();
    tls_dirty_.Disable();
  }
  /// Whether all three segment journals are live. A process spawned after
  /// the machine's last capture has no journals yet, so a tree node must
  /// capture it in full (no parent delta covers its pages).
  bool dirty_tracking_enabled() const {
    return stack_dirty_.enabled() && heap_dirty_.enabled() &&
           tls_dirty_.enabled();
  }

  // -- snapshot-tree support -------------------------------------------------
  /// Capture one tree node's slice of this process: the scalar core in
  /// full, the segments as page deltas from the journals — or every page
  /// when `full` is set (root node, or the journals were not live across
  /// the whole parent window). Clears the journals and (re)enables them,
  /// starting the next capture window.
  void CaptureNode(ProcessNodeState* out, bool full);
  /// In-place tree restore: bring this process to exactly
  /// `tree.nodes[target].procs[proc_index]`'s capture point. `path` lists
  /// the delta nodes between the machine's current node and the target
  /// (both sides of their common ancestor); pages in those deltas, plus
  /// this process's journal-dirty pages, are the only ones that can
  /// differ, and each is sourced from its newest writer at-or-above
  /// target. Clears the journals. Requires matching segment sizes and
  /// live journals (the machine falls back to MaterializeProcess +
  /// RestoreFromSnapshot otherwise).
  void RestoreFromTree(const SnapshotTree& tree, SnapshotId target,
                       size_t proc_index, const std::vector<SnapshotId>& path,
                       SnapshotRestoreStats* stats);

 private:
  friend class NativeFrame;

  void CaptureCore(ProcessCore* out) const;
  void RestoreCore(const ProcessCore& core);

  void Fault(Signal sig, std::string message);
  /// (Re)build the address space if modules changed since the last map.
  void RemapIfNeeded();
  bool Push(int64_t v);
  bool Pop(int64_t* v);
  /// Dispatch a resolved call target (shared by CALL_SYM / CALL_IND /
  /// SYSCALL). `ret_addr` is pushed for code targets; native stubs decide
  /// via their action.
  void DispatchCall(Target target, uint64_t ret_addr,
                    const std::string& symbol);
  void ExecNative(size_t native_id, uint64_t ret_addr);

  /// The fused decode-once loop behind Run() in Predecoded mode.
  uint64_t RunPredecoded(uint64_t budget);

  /// The superblock-span loop behind Run() in Superblock mode: same outer
  /// structure as RunPredecoded, but straight-line runs execute through
  /// ExecSpanFused with accounting hoisted to span granularity.
  uint64_t RunSuperblock(uint64_t budget);

  /// Execute up to `budget` predecoded instructions starting at `slot` of
  /// `stream` (pc_ must be that slot's address) as fused computed-goto
  /// spans, following control flow in-loop: a taken branch, call,
  /// syscall, or return whose target has a slot in any loaded module's
  /// stream continues without returning, rebinding the module when
  /// control crosses streams. Instruction-count and coverage accounting
  /// happen inside, one update per contiguous segment. Returns the
  /// instructions executed (>= 1). Exits only on a state change, a
  /// target outside decoded code (native stub / unresolved or interposed
  /// call / mid-instruction), or budget exhaustion; pc_ is exact again
  /// on every return path.
  uint64_t ExecSpanFused(const CodeCache::ModuleStream& stream, uint32_t slot,
                         uint64_t budget, const LoadedModule& mod);

  /// Execute one already-decoded instruction: coverage, semantics, pc
  /// advance. `kFast` selects arithmetic memory access (with AddressSpace
  /// fallback) vs pure AddressSpace lookups — semantics are identical.
  template <bool kFast>
  void ExecuteInstr(const isa::Instr& ins, const LoadedModule& mod);

  /// Backing pointer for [addr, addr+len) by layout arithmetic, or nullptr
  /// when the range is outside stack/heap/TLS/module segments (callers
  /// fall back to AddressSpace, which reproduces the reference verdict).
  uint8_t* FastMemPtr(uint64_t addr, uint64_t len, bool for_write);

  template <bool kFast> bool ReadU64(uint64_t addr, uint64_t* out);
  template <bool kFast> bool WriteU64(uint64_t addr, uint64_t value);
  template <bool kFast> bool PushT(int64_t v);
  template <bool kFast> bool PopT(int64_t* v);

  int pid_;
  Loader& loader_;
  kernel::KernelRuntime& kernel_;
  const std::vector<uint64_t>& syscall_targets_;
  SegmentPool* pool_ = nullptr;

  int64_t regs_[isa::kNumRegs] = {};
  int flags_ = 0;  // sign of last CMP: -1 / 0 / +1
  uint64_t pc_ = 0;
  ProcState state_ = ProcState::Runnable;
  Signal signal_ = Signal::None;
  int64_t exit_code_ = 0;
  bool pending_exit_ = false;
  std::string fault_message_;
  uint64_t instructions_ = 0;
  ExecMode exec_mode_ = ExecMode::Superblock;

  AddressSpace space_;
  std::vector<uint8_t> stack_mem_;
  std::vector<uint8_t> heap_mem_;
  std::vector<uint8_t> tls_mem_;
  /// Dirty-page journals over the private segments, inert until a machine
  /// snapshot enables them. Both write paths mark: FastMemPtr directly,
  /// AddressSpace::write through the Region::dirty pointers wired in
  /// RemapIfNeeded.
  DirtyMap stack_dirty_;
  DirtyMap heap_dirty_;
  DirtyMap tls_dirty_;
  uint64_t heap_cursor_ = 0;
  uint64_t mapped_generation_ = 0;  // loader generation at last (re)mapping

  std::vector<Frame> shadow_;
  CoverageTracker* coverage_ = nullptr;
};

}  // namespace lfi::vm
