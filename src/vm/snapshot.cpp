#include "vm/snapshot.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace lfi::vm {

std::vector<SnapshotId> TreePathBetween(const SnapshotTree& tree,
                                        SnapshotId a, SnapshotId b) {
  std::vector<SnapshotId> path;
  if (a == b) return path;
  auto depth = [&](SnapshotId id) {
    return id == kNoSnapshot ? ~uint32_t{0} : tree.nodes[id].depth;
  };
  // Walk the deeper side up until both sit at the same depth, then climb
  // in lockstep to the common ancestor. kNoSnapshot acts as a virtual
  // node above the root (depth underflows to max, so the other side
  // climbs all the way out).
  while (a != b) {
    if (a != kNoSnapshot && (b == kNoSnapshot || depth(a) >= depth(b))) {
      path.push_back(a);
      a = tree.nodes[a].parent;
    } else if (b != kNoSnapshot) {
      path.push_back(b);
      b = tree.nodes[b].parent;
    } else {
      break;  // both kNoSnapshot
    }
  }
  return path;
}

const uint8_t* FindModulePage(const SnapshotTree& tree, SnapshotId target,
                              size_t m, uint32_t page,
                              uint64_t* nodes_walked) {
  for (SnapshotId id = target; id != kNoSnapshot; id = tree.nodes[id].parent) {
    if (nodes_walked) ++*nodes_walked;
    if (const uint8_t* p = tree.nodes[id].module_data[m].page(page)) return p;
  }
  assert(false && "module page missing from snapshot tree (root not full?)");
  return nullptr;
}

const uint8_t* FindProcPage(const SnapshotTree& tree, SnapshotId target,
                            size_t proc_index,
                            const PageDelta ProcessNodeState::*sel,
                            uint32_t page, uint64_t* nodes_walked) {
  for (SnapshotId id = target; id != kNoSnapshot; id = tree.nodes[id].parent) {
    const ProcessNodeState& ps = tree.nodes[id].procs[proc_index];
    if (nodes_walked) ++*nodes_walked;
    if (const uint8_t* p = (ps.*sel).page(page)) return p;
    if (ps.full) break;  // a full node holds every live page of the segment
  }
  return nullptr;  // page beyond the segment's last full capture: untouched
}

ProcessSnapshot MaterializeProcess(const SnapshotTree& tree,
                                   SnapshotId target, size_t proc_index) {
  const ProcessNodeState& tps = tree.nodes[target].procs[proc_index];
  ProcessSnapshot ps;
  ps.core = tps.core;
  ps.stack.assign(tps.stack_bytes, 0);
  ps.heap.assign(tps.heap_bytes, 0);
  ps.tls.assign(tps.tls_bytes, 0);
  // Chain of deltas newest -> oldest, stopping at the process's last full
  // capture (which holds every page, so nothing older matters).
  std::vector<SnapshotId> chain;
  for (SnapshotId id = target; id != kNoSnapshot; id = tree.nodes[id].parent) {
    chain.push_back(id);
    if (tree.nodes[id].procs[proc_index].full) break;
  }
  auto apply = [](const PageDelta& delta, std::vector<uint8_t>& mem) {
    for (size_t i = 0; i < delta.pages.size(); ++i) {
      uint64_t off = uint64_t{delta.pages[i]} << DirtyMap::kPageBits;
      if (off >= mem.size()) continue;
      std::memcpy(mem.data() + off,
                  delta.bytes.data() + i * DirtyMap::kPageSize,
                  std::min(DirtyMap::kPageSize, mem.size() - off));
    }
  };
  // Oldest first so newer writes land on top.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const ProcessNodeState& ns = tree.nodes[*it].procs[proc_index];
    apply(ns.stack, ps.stack);
    apply(ns.heap, ps.heap);
    apply(ns.tls, ps.tls);
  }
  return ps;
}

}  // namespace lfi::vm
