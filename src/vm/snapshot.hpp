// Full-machine snapshot images (vm::Machine::Snapshot / RestoreSnapshot).
//
// A MachineSnapshot pins one moment of a warmed-up machine — typically the
// fault-window entry point of a campaign target: every process's registers,
// stack/heap/TLS contents and layout cursors, the shadow call stacks, the
// relocated module data sections, the kernel's complete host-side state
// (filesystem, descriptors, pipes, sockets, counters), the coverage
// tracker, and the scheduler's instruction accounting. Taking the snapshot
// enables page-granular dirty journals (vm::DirtyMap) on every writable
// segment, so RestoreSnapshot costs O(pages written since the snapshot),
// not O(address-space size). The images themselves are full copies; only
// restore is incremental.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "kernel/kernel_runtime.hpp"
#include "vm/coverage.hpp"
#include "vm/process.hpp"

namespace lfi::vm {

/// Everything one Process needs to resume from the snapshot point. The
/// segment images are complete copies; the owning process's dirty journals
/// decide how much of them a restore actually touches.
struct ProcessSnapshot {
  int pid = 0;
  int64_t regs[isa::kNumRegs] = {};
  int flags = 0;
  uint64_t pc = 0;
  ProcState state = ProcState::Runnable;
  Signal signal = Signal::None;
  int64_t exit_code = 0;
  bool pending_exit = false;
  std::string fault_message;
  uint64_t instructions = 0;
  uint64_t heap_cursor = 0;
  std::vector<Frame> shadow;
  std::vector<uint8_t> stack;
  std::vector<uint8_t> heap;
  std::vector<uint8_t> tls;
};

struct MachineSnapshot {
  uint64_t total_instructions = 0;
  std::vector<bool> exit_reported;
  std::vector<ProcessSnapshot> procs;
  /// Per-module copy of data_runtime (post-relocation, post-warmup),
  /// indexed by the loader's dense module index.
  std::vector<std::vector<uint8_t>> module_data;
  kernel::KernelRuntime::State kernel;
  /// Coverage tracker contents at the snapshot point (warmup coverage);
  /// empty when coverage was off.
  CoverageTracker coverage;
  /// Number of loaded modules at snapshot time; restore refuses to apply
  /// a snapshot to a machine whose module set changed.
  size_t module_count = 0;
};

}  // namespace lfi::vm
