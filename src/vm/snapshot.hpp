// Snapshot tree (vm::Machine::PushSnapshot / RestoreTo).
//
// A SnapshotTree pins a *family* of moments of a warmed-up machine —
// typically the post-warmup fault-window entry points of a campaign
// target, one node per window depth. Each node stores the cheap machine
// state in full (registers, shadow stacks, kernel host-side state,
// coverage, instruction accounting — kilobytes) but stores memory as a
// PageDelta: only the pages written between its parent's capture and its
// own. The root node captures every page, so the content of page p at any
// node N is defined by the first delta containing p on the walk N -> root
// (the per-page newest-writer rule).
//
// Capture is O(pages dirtied since the parent); restoring from the
// machine's current position to any live node is O(pages that differ
// between them): the current dirty journals, plus the deltas on the tree
// path between the two nodes. Restoring after Machine::Reset (or to a
// process that no longer exists) falls back to materializing full images
// by replaying deltas root -> node.
//
// The flat Machine::Snapshot/RestoreSnapshot API is a one-node tree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "kernel/kernel_runtime.hpp"
#include "vm/coverage.hpp"
#include "vm/process.hpp"

namespace lfi::vm {

/// The scalar (non-memory) slice of one process's state: everything a
/// resume needs except the segment images. Cheap to copy, stored in full
/// by every tree node.
struct ProcessCore {
  int pid = 0;
  int64_t regs[isa::kNumRegs] = {};
  int flags = 0;
  uint64_t pc = 0;
  ProcState state = ProcState::Runnable;
  Signal signal = Signal::None;
  int64_t exit_code = 0;
  bool pending_exit = false;
  std::string fault_message;
  uint64_t instructions = 0;
  uint64_t heap_cursor = 0;
  std::vector<Frame> shadow;
};

/// Everything one Process needs to resume, with complete segment images —
/// the materialized form used to rebuild a destroyed process (and the
/// payload of the flat snapshot API). The owning process's dirty journals
/// decide how much of the images a restore actually touches.
struct ProcessSnapshot {
  ProcessCore core;
  std::vector<uint8_t> stack;
  std::vector<uint8_t> heap;
  std::vector<uint8_t> tls;
};

/// One process's slice of a tree node: scalar core in full, segments as
/// page deltas against the parent node.
struct ProcessNodeState {
  ProcessCore core;
  uint64_t stack_bytes = 0;
  uint64_t heap_bytes = 0;
  uint64_t tls_bytes = 0;
  PageDelta stack;
  PageDelta heap;
  PageDelta tls;
  /// The deltas hold every page: root nodes, and processes whose journal
  /// was not live across the whole parent->child window (spawned since the
  /// parent's capture, or realigned). The ancestor walk for this process
  /// never continues past a full node.
  bool full = false;
};

/// One snapshot-tree node: delta memory, full cheap state.
struct SnapshotNode {
  SnapshotId parent = kNoSnapshot;
  uint32_t depth = 0;
  uint64_t total_instructions = 0;
  std::vector<bool> exit_reported;
  std::vector<ProcessNodeState> procs;
  /// Per-module delta of data_runtime, indexed by the loader's dense
  /// module index.
  std::vector<PageDelta> module_data;
  kernel::KernelRuntime::State kernel;
  /// Coverage tracker contents at the capture point; empty when coverage
  /// was off.
  CoverageTracker coverage;
};

/// Cumulative Machine::RestoreTo cost counters: how much work restores
/// actually did. `pages_restored` counts 4 KiB pages copied into live
/// memory (or into a rebuilt process's materialized image);
/// `nodes_walked` counts tree nodes visited to source page contents and
/// compute difference sets. Bench telemetry — sample before/after a
/// scenario for its restore cost.
struct SnapshotRestoreStats {
  uint64_t restores = 0;
  uint64_t pages_restored = 0;
  uint64_t nodes_walked = 0;
};

struct SnapshotTree {
  std::vector<SnapshotNode> nodes;
  /// Module set at root capture; RestoreTo refuses to apply the tree to a
  /// machine whose module count or data-section sizes changed.
  size_t module_count = 0;
  std::vector<uint64_t> module_data_bytes;
};

/// Tree path between nodes `a` and `b`: every node strictly below their
/// lowest common ancestor on either side, i.e. exactly the nodes whose
/// deltas can make the two states differ. Either id may be kNoSnapshot
/// (empty path).
std::vector<SnapshotId> TreePathBetween(const SnapshotTree& tree,
                                        SnapshotId a, SnapshotId b);

/// Content of module `m`'s data page `page` at node `target`: newest
/// writer at-or-above target. Never nullptr for a live tree (the root is
/// full). `nodes_walked` (optional) accumulates ancestor steps taken.
const uint8_t* FindModulePage(const SnapshotTree& tree, SnapshotId target,
                              size_t m, uint32_t page,
                              uint64_t* nodes_walked);

/// Content of process `proc_index`'s page `page` in the segment selected
/// by `sel` at node `target` (newest writer at-or-above target).
const uint8_t* FindProcPage(const SnapshotTree& tree, SnapshotId target,
                            size_t proc_index,
                            const PageDelta ProcessNodeState::*sel,
                            uint32_t page, uint64_t* nodes_walked);

/// Materialize full segment images for process `proc_index` at node
/// `target` by applying deltas root -> target: the rebuild path for
/// processes destroyed by Machine::Reset or truncated by a restore.
ProcessSnapshot MaterializeProcess(const SnapshotTree& tree,
                                   SnapshotId target, size_t proc_index);

}  // namespace lfi::vm
