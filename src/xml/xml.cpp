#include "xml/xml.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace lfi::xml {

void Node::set_attr(std::string key, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(std::move(key), std::move(value));
}

std::optional<std::string> Node::attr(std::string_view key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::string Node::attr_or(std::string_view key, std::string_view dflt) const {
  auto v = attr(key);
  return v ? *v : std::string(dflt);
}

std::optional<int64_t> Node::attr_int(std::string_view key) const {
  auto v = attr(key);
  if (!v) return std::nullopt;
  int64_t out = 0;
  if (!ParseInt(*v, &out)) return std::nullopt;
  return out;
}

Node* Node::add_child(std::string name) {
  children_.push_back(std::make_unique<Node>(std::move(name)));
  return children_.back().get();
}

const Node* Node::child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Node*> Node::children_named(std::string_view name) const {
  std::vector<const Node*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

std::string Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string Node::serialize(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + "<" + name_;
  for (const auto& [k, v] : attrs_) {
    out += " " + k + "=\"" + Escape(v) + "\"";
  }
  std::string_view trimmed = Trim(text_);
  if (children_.empty() && trimmed.empty()) {
    out += " />\n";
    return out;
  }
  out += ">";
  if (!trimmed.empty()) out += Escape(trimmed);
  if (!children_.empty()) {
    out += "\n";
    for (const auto& c : children_) out += c->serialize(indent + 1);
    out += pad;
  }
  out += "</" + name_ + ">\n";
  return out;
}

namespace {

/// Recursive-descent XML parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view input) : in_(input) {}

  Result<NodePtr> ParseDocument() {
    SkipMisc();
    if (!StartsWith(rest(), "<")) return Err("xml: expected root element");
    auto root = ParseElement();
    if (!root.ok()) return root;
    SkipMisc();
    if (pos_ != in_.size()) return Err("xml: trailing content after root");
    return root;
  }

 private:
  std::string_view rest() const { return in_.substr(pos_); }
  bool eof() const { return pos_ >= in_.size(); }
  char peek() const { return in_[pos_]; }

  void SkipWhitespace() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  bool SkipIf(std::string_view token) {
    if (StartsWith(rest(), token)) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  /// Skip whitespace, comments and the <?xml ...?> declaration.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (SkipIf("<!--")) {
        size_t end = in_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? in_.size() : end + 3;
        continue;
      }
      if (SkipIf("<?")) {
        size_t end = in_.find("?>", pos_);
        pos_ = end == std::string_view::npos ? in_.size() : end + 2;
        continue;
      }
      return;
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  std::string ParseName() {
    size_t start = pos_;
    while (!eof() && IsNameChar(peek())) ++pos_;
    return std::string(in_.substr(start, pos_ - start));
  }

  static std::string Unescape(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      auto entity = raw.substr(i);
      if (StartsWith(entity, "&amp;")) { out += '&'; i += 5; }
      else if (StartsWith(entity, "&lt;")) { out += '<'; i += 4; }
      else if (StartsWith(entity, "&gt;")) { out += '>'; i += 4; }
      else if (StartsWith(entity, "&quot;")) { out += '"'; i += 6; }
      else if (StartsWith(entity, "&apos;")) { out += '\''; i += 6; }
      else { out += raw[i++]; }
    }
    return out;
  }

  Result<NodePtr> ParseElement() {
    if (!SkipIf("<")) return Err("xml: expected '<'");
    std::string name = ParseName();
    if (name.empty()) return Err("xml: empty element name");
    auto node = std::make_unique<Node>(name);

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (eof()) return Err("xml: unexpected end inside <" + name + ">");
      if (SkipIf("/>")) return NodePtr(std::move(node));
      if (SkipIf(">")) break;
      std::string key = ParseName();
      if (key.empty()) return Err("xml: bad attribute in <" + name + ">");
      SkipWhitespace();
      if (!SkipIf("=")) return Err("xml: missing '=' after attribute " + key);
      SkipWhitespace();
      char quote = eof() ? '\0' : peek();
      if (quote != '"' && quote != '\'') {
        return Err("xml: attribute value must be quoted: " + key);
      }
      ++pos_;
      size_t end = in_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return Err("xml: unterminated attribute value: " + key);
      }
      node->set_attr(std::move(key), Unescape(in_.substr(pos_, end - pos_)));
      pos_ = end + 1;
    }

    // Content: text, children, comments, until the closing tag.
    while (true) {
      if (eof()) return Err("xml: missing </" + name + ">");
      if (SkipIf("<!--")) {
        size_t end = in_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? in_.size() : end + 3;
        continue;
      }
      if (StartsWith(rest(), "</")) {
        pos_ += 2;
        std::string closing = ParseName();
        SkipWhitespace();
        if (!SkipIf(">")) return Err("xml: malformed closing tag " + closing);
        if (closing != name) {
          return Err("xml: mismatched </" + closing + ">, expected </" + name +
                     ">");
        }
        return NodePtr(std::move(node));
      }
      if (peek() == '<') {
        auto child = ParseElement();
        if (!child.ok()) return child;
        // Adopt the parsed child (add_child + move contents).
        node->adopt(std::move(child).take());
        continue;
      }
      size_t next = in_.find('<', pos_);
      if (next == std::string_view::npos) next = in_.size();
      node->append_text(Unescape(in_.substr(pos_, next - pos_)));
      pos_ = next;
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

Result<NodePtr> Parse(std::string_view input) {
  return Parser(input).ParseDocument();
}

}  // namespace lfi::xml
