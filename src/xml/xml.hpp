// Dependency-free mini XML DOM.
//
// LFI's fault profiles, fault scenarios and replay scripts are all XML
// documents (paper §3.3, §4, §5.2). This module provides the small subset of
// XML needed by those formats: elements, attributes, text content, comments
// (skipped), and entity escaping. No namespaces, no DTDs, no processing
// instructions beyond an optional leading <?xml ...?>.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace lfi::xml {

class Node;
using NodePtr = std::unique_ptr<Node>;

/// An XML element: tag name, ordered attributes, child elements and
/// accumulated text content (concatenation of all text segments).
class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::string& text() const { return text_; }
  void append_text(std::string_view t) { text_.append(t); }
  void set_text(std::string t) { text_ = std::move(t); }

  // -- attributes -----------------------------------------------------------
  void set_attr(std::string key, std::string value);
  std::optional<std::string> attr(std::string_view key) const;
  /// Attribute value or a default when absent.
  std::string attr_or(std::string_view key, std::string_view dflt) const;
  /// Integer attribute (decimal or 0x-hex); nullopt if absent or malformed.
  std::optional<int64_t> attr_int(std::string_view key) const;
  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

  // -- children -------------------------------------------------------------
  Node* add_child(std::string name);
  /// Attach an already-built subtree as the last child.
  void adopt(NodePtr child) { children_.push_back(std::move(child)); }
  const std::vector<NodePtr>& children() const { return children_; }
  /// First child with the given tag name, or nullptr.
  const Node* child(std::string_view name) const;
  /// All children with the given tag name.
  std::vector<const Node*> children_named(std::string_view name) const;

  /// Serialize this subtree with 2-space indentation.
  std::string serialize(int indent = 0) const;

 private:
  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<NodePtr> children_;
};

/// Parse a document; returns its root element.
Result<NodePtr> Parse(std::string_view input);

/// Escape text for use in attribute values / text content.
std::string Escape(std::string_view raw);

}  // namespace lfi::xml
