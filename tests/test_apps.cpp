#include <gtest/gtest.h>

#include "apps/dbserver.hpp"
#include "apps/pidgin.hpp"
#include "apps/webserver.hpp"
#include "apps/workloads.hpp"
#include "core/scenario_gen.hpp"
#include "util/errno_table.hpp"
#include "test_helpers.hpp"

namespace lfi::apps {
namespace {

// ---- webserver -----------------------------------------------------------------

TEST(WebServer, RunsCleanWithoutLfi) {
  WebBenchResult r = RunWebBench(/*requests=*/50, /*php=*/false,
                                 /*triggers=*/0, /*seed=*/1);
  EXPECT_GT(r.instructions, 0u);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(WebServer, PhpModeDoesMoreWork) {
  WebBenchResult s = RunWebBench(50, false, 0, 1);
  WebBenchResult p = RunWebBench(50, true, 0, 1);
  // The paper's PHP workload is ~10x the static one; ours must be several
  // times more instructions per request at minimum.
  EXPECT_GT(p.instructions, s.instructions * 3);
}

TEST(WebServer, TriggersDoNotChangeWork) {
  // Pass-through triggers must not alter the workload's instruction count
  // materially (they evaluate and forward).
  WebBenchResult base = RunWebBench(50, false, 0, 1);
  WebBenchResult with = RunWebBench(50, false, 1000, 1);
  EXPECT_EQ(base.instructions, with.instructions);
}

TEST(WebServer, HotFunctionListNonEmptyAndResolvable) {
  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(BuildLibApr());
  machine.Load(BuildLibAprUtil());
  for (const std::string& fn : WebHotFunctions()) {
    EXPECT_NE(machine.loader().ResolveName(fn).kind,
              vm::Target::Kind::Unresolved)
        << fn;
  }
}

// ---- dbserver ------------------------------------------------------------------

TEST(DbServer, OltpRunsCleanReadOnly) {
  OltpBenchResult r = RunOltpBench(/*txns=*/50, /*rw=*/false, 0, 1);
  EXPECT_GT(r.txns_per_sec, 0.0);
}

TEST(DbServer, ReadWriteCostsMoreThanReadOnly) {
  OltpBenchResult ro = RunOltpBench(100, false, 0, 1);
  OltpBenchResult rw = RunOltpBench(100, true, 0, 1);
  // Table 4: read-only ~465 txns/s vs read-write ~113 (≈4x). Shape: the
  // rw transaction must be clearly costlier.
  EXPECT_GT(rw.instructions, ro.instructions * 2);
}

TEST(DbServer, ModulesAllPresent) {
  DbConfig config;
  auto modules = BuildDbServer(config);
  ASSERT_EQ(modules.size(), DbModuleNames().size());
  for (size_t i = 0; i < modules.size(); ++i) {
    EXPECT_EQ(modules[i].name, DbModuleNames()[i]);
  }
}

TEST(DbServer, CoverageSuiteRunsWithoutLfi) {
  CoverageReport report = RunDbTestSuite(false, /*runs=*/2, 0.0, 1);
  EXPECT_EQ(report.crashes, 0u);
  double overall = report.overall();
  EXPECT_GT(overall, 40.0);
  EXPECT_LT(overall, 100.0);  // recovery blocks not reached
}

TEST(DbServer, InjectionImprovesCoverage) {
  // The §6.1 headline: LFI increases coverage with no human effort.
  CoverageReport base = RunDbTestSuite(false, 3, 0.0, 1);
  CoverageReport with = RunDbTestSuite(true, 3, 0.05, 1);
  EXPECT_GT(with.overall(), base.overall());
}

TEST(DbServer, IbufGainsMostCoverage) {
  CoverageReport base = RunDbTestSuite(false, 3, 0.0, 2);
  CoverageReport with = RunDbTestSuite(true, 3, 0.05, 2);
  auto gain = [&](const std::string& mod) {
    auto [bc, bt] = base.modules.at(mod);
    auto [wc, wt] = with.modules.at(mod);
    return 100.0 * wc / wt - 100.0 * bc / bt;
  };
  EXPECT_GT(gain("ibuf.so"), 0.0);
}

// ---- pidgin --------------------------------------------------------------------

TEST(Pidgin, RunsCleanWithoutInjection) {
  core::Plan empty;
  PidginRunResult r = RunPidginWithPlan(empty);
  EXPECT_FALSE(r.aborted);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.injections, 0u);
}

TEST(Pidgin, RandomIoInjectionFindsTheBug) {
  // The paper: random injection on I/O functions with 10% probability
  // crashed Pidgin with SIGABRT shortly after login. Scan a few seeds; at
  // least one run must abort via the partial-write framing bug.
  bool found = false;
  for (uint64_t seed = 1; seed <= 40 && !found; ++seed) {
    PidginRunResult r = RunPidginRandomIo(0.1, seed);
    found = r.aborted;
  }
  EXPECT_TRUE(found);
}

TEST(Pidgin, ReplayReproducesTheCrash) {
  // Find a crashing seed, then re-run its replay script: same SIGABRT.
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    PidginRunResult r = RunPidginRandomIo(0.1, seed);
    if (!r.aborted) continue;
    ASSERT_GT(r.injections, 0u);
    PidginRunResult replay = RunPidginWithPlan(r.replay);
    EXPECT_TRUE(replay.aborted);
    return;
  }
  FAIL() << "no crashing seed found to replay";
}

TEST(Pidgin, DroppedStatusWriteTriggersAbortDeterministically) {
  // Fail the resolver's status write (its 2nd write overall: the parent's
  // request write is call #1). The child ignores the failure, so the
  // response stream starts at the size field; the parent then reads the
  // 0xCA address bytes as a size -> huge malloc -> SIGABRT. This is the
  // deterministic replayable form of the bug the random scenario finds.
  core::Plan plan;
  core::FunctionTrigger t;
  t.function = "write";
  t.mode = core::FunctionTrigger::Mode::CallCount;
  t.inject_call = 2;
  t.retval = -1;
  t.errno_value = E_INTR;
  t.call_original = false;
  plan.triggers.push_back(t);
  PidginRunResult r = RunPidginWithPlan(plan);
  EXPECT_TRUE(r.aborted) << "exit=" << r.exit_code
                         << " deadlock=" << r.deadlocked;
}

}  // namespace
}  // namespace lfi::apps
