// Campaign engine tests: determinism across worker counts, shard
// policies, report aggregation, and machine reset/reuse.
#include <gtest/gtest.h>

#include "apps/workloads.hpp"
#include "campaign/runner.hpp"
#include "core/scenario_gen.hpp"
#include "isa/codebuilder.hpp"
#include "libc/libc_builder.hpp"
#include "test_helpers.hpp"

namespace lfi::campaign {
namespace {

using isa::CodeBuilder;
using isa::Reg;

/// A demo target with an unchecked read(): open /cfg, read 64 bytes,
/// abort on a negative count (the classic LFI victim).
sso::SharedObject BuildReaderApp() {
  CodeBuilder b;
  uint32_t path = b.emit_data({'/', 'c', 'f', 'g', 0});
  uint32_t buf = b.reserve_data(128);
  b.begin_function("main");
  b.sub_ri(Reg::SP, 16);
  b.mov_ri(Reg::R2, libc::O_RDONLY);
  b.lea_data(Reg::R1, static_cast<int32_t>(path));
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("open");
  b.add_ri(Reg::SP, 16);
  b.store(Reg::BP, -8, Reg::R0);
  b.load(Reg::R1, Reg::BP, -8);
  b.lea_data(Reg::R2, static_cast<int32_t>(buf));
  b.mov_ri(Reg::R3, 64);
  b.push(Reg::R3);
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("read");
  b.add_ri(Reg::SP, 24);
  auto ok = b.new_label();
  b.cmp_ri(Reg::R0, 0);
  b.jge(ok);
  b.call_sym("abort");
  b.bind(ok);
  b.load(Reg::R1, Reg::BP, -8);
  b.push(Reg::R1);
  b.call_sym("close");
  b.add_ri(Reg::SP, 8);
  b.mov_ri(Reg::R0, 0);
  b.leave_ret();
  b.end_function();
  return sso::FromCodeUnit("readerapp.so", b.Finish(), {libc::kLibcName});
}

/// Appends 8 bytes to /log and exits with the resulting file size — a
/// canary for state leaking between scenarios on a reused machine.
sso::SharedObject BuildAppenderApp() {
  CodeBuilder b;
  uint32_t path = b.emit_data({'/', 'l', 'o', 'g', 0});
  uint32_t payload = b.emit_data({'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'});
  b.begin_function("main");
  b.sub_ri(Reg::SP, 16);
  b.mov_ri(Reg::R2, libc::O_RDWR | libc::O_CREAT | libc::O_APPEND);
  b.lea_data(Reg::R1, static_cast<int32_t>(path));
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("open");
  b.add_ri(Reg::SP, 16);
  b.store(Reg::BP, -8, Reg::R0);
  b.load(Reg::R1, Reg::BP, -8);
  b.lea_data(Reg::R2, static_cast<int32_t>(payload));
  b.mov_ri(Reg::R3, 8);
  b.push(Reg::R3);
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("write");
  b.add_ri(Reg::SP, 24);
  // size = lseek(fd, 0, SEEK_END)
  b.load(Reg::R1, Reg::BP, -8);
  b.mov_ri(Reg::R2, 0);
  b.mov_ri(Reg::R3, 2);
  b.push(Reg::R3);
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("lseek");
  b.add_ri(Reg::SP, 24);
  b.store(Reg::BP, -16, Reg::R0);
  b.load(Reg::R1, Reg::BP, -8);
  b.push(Reg::R1);
  b.call_sym("close");
  b.add_ri(Reg::SP, 8);
  b.load(Reg::R0, Reg::BP, -16);
  b.leave_ret();
  b.end_function();
  return sso::FromCodeUnit("appender.so", b.Finish(), {libc::kLibcName});
}

MachineSetup ReaderSetup() {
  auto libc_so = std::make_shared<const sso::SharedObject>(libc::BuildLibc());
  auto app = std::make_shared<const sso::SharedObject>(BuildReaderApp());
  return [libc_so, app](vm::Machine& machine) {
    machine.Load(*libc_so);
    machine.Load(*app);
    machine.kernel().add_file("/cfg", std::vector<uint8_t>(64, 'x'));
  };
}

std::vector<Scenario> RandomScenarios(size_t count, double p, uint64_t base) {
  const std::vector<core::FaultProfile>& profiles = apps::LibcProfiles();
  std::vector<Scenario> scenarios;
  for (size_t i = 0; i < count; ++i) {
    Scenario s;
    s.name = "s" + std::to_string(i);
    s.plan = core::GenerateRandom(profiles, p, DeriveSeed(base, i));
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

CampaignReport RunReaderCampaign(const std::vector<Scenario>& scenarios,
                                 int jobs, ShardPolicy policy) {
  CampaignOptions opts;
  opts.jobs = jobs;
  opts.shard = policy;
  opts.track_coverage = true;
  CampaignRunner runner(ReaderSetup(), apps::LibcProfiles(), opts);
  return runner.Run(scenarios);
}

void ExpectSameResults(const CampaignReport& a, const CampaignReport& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    const ScenarioResult& ra = a.results[i];
    const ScenarioResult& rb = b.results[i];
    EXPECT_EQ(ra.index, rb.index) << "scenario " << i;
    EXPECT_EQ(ra.status, rb.status) << "scenario " << i;
    EXPECT_EQ(ra.injections, rb.injections) << "scenario " << i;
    EXPECT_EQ(ra.exit_code, rb.exit_code) << "scenario " << i;
    EXPECT_EQ(ra.instructions, rb.instructions) << "scenario " << i;
    EXPECT_EQ(ra.covered_offsets, rb.covered_offsets) << "scenario " << i;
    EXPECT_EQ(ra.covered_by_module, rb.covered_by_module) << "scenario " << i;
    EXPECT_EQ(ra.signal, rb.signal) << "scenario " << i;
    EXPECT_EQ(ra.crash_hash, rb.crash_hash) << "scenario " << i;
    EXPECT_EQ(ra.crash_site_hash, rb.crash_site_hash) << "scenario " << i;
    EXPECT_EQ(ra.fault_frames, rb.fault_frames) << "scenario " << i;
  }
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.total_injections, b.total_injections);
}

// Same scenario set, any worker count, any shard policy: bit-identical
// per-scenario results. This is the --jobs 1 vs --jobs 8 acceptance check.
TEST(Campaign, DeterministicAcrossJobCounts) {
  std::vector<Scenario> scenarios = RandomScenarios(64, 0.3, 42);
  CampaignReport serial =
      RunReaderCampaign(scenarios, 1, ShardPolicy::RoundRobin);
  CampaignReport parallel =
      RunReaderCampaign(scenarios, 8, ShardPolicy::RoundRobin);
  CampaignReport balanced =
      RunReaderCampaign(scenarios, 3, ShardPolicy::SizeBalanced);

  // The set must actually exercise injection paths for this to mean much.
  EXPECT_GT(serial.total_injections, 0u);
  EXPECT_GT(serial.crashes, 0u);
  ExpectSameResults(serial, parallel);
  ExpectSameResults(serial, balanced);
}

// The merged union coverage must be bit-identical for 1 vs. N workers:
// per-worker bitmaps are OR-merged at shard boundaries, and OR is
// order-independent. This is the --jobs acceptance check for coverage.
TEST(Campaign, MergedCoverageIdenticalAcrossJobCounts) {
  std::vector<Scenario> scenarios = RandomScenarios(24, 0.3, 11);
  CampaignReport serial =
      RunReaderCampaign(scenarios, 1, ShardPolicy::RoundRobin);
  CampaignReport parallel =
      RunReaderCampaign(scenarios, 4, ShardPolicy::RoundRobin);
  CampaignReport balanced =
      RunReaderCampaign(scenarios, 3, ShardPolicy::SizeBalanced);

  // Coverage must actually exist for the comparison to mean anything.
  ASSERT_FALSE(serial.coverage.empty());
  size_t union_offsets = 0;
  for (const auto& [name, bitmap] : serial.coverage) {
    union_offsets += bitmap.Count();
  }
  EXPECT_GT(union_offsets, 0u);
  // The app module's bitmap is populated, not just libc's.
  auto app_it = serial.coverage.find("readerapp.so");
  ASSERT_NE(app_it, serial.coverage.end());
  EXPECT_GT(app_it->second.Count(), 0u);

  EXPECT_EQ(serial.coverage, parallel.coverage);
  EXPECT_EQ(serial.coverage, balanced.coverage);
}

// The per-module coverage breakdown must account for every covered
// offset: the sum of covered_by_module equals the covered_offsets
// popcount, and (with collect_scenario_coverage on) each module's bitmap
// popcount equals its breakdown entry.
TEST(Campaign, PerModuleCoverageSumsToPopcount) {
  std::vector<Scenario> scenarios = RandomScenarios(12, 0.3, 9);
  CampaignOptions opts;
  opts.jobs = 2;
  opts.track_coverage = true;
  opts.collect_scenario_coverage = true;
  CampaignRunner runner(ReaderSetup(), apps::LibcProfiles(), opts);
  CampaignReport report = runner.Run(scenarios);

  for (const ScenarioResult& r : report.results) {
    ASSERT_GT(r.covered_offsets, 0u) << r.name;
    size_t sum = 0;
    for (const auto& [mod, count] : r.covered_by_module) {
      EXPECT_GT(count, 0u) << mod << " in " << r.name;
      sum += count;
    }
    EXPECT_EQ(sum, r.covered_offsets) << r.name;
    // Bitmap popcounts match the breakdown, module by module.
    ASSERT_EQ(r.coverage.size(), r.covered_by_module.size()) << r.name;
    for (const auto& [mod, bitmap] : r.coverage) {
      auto it = r.covered_by_module.find(mod);
      ASSERT_NE(it, r.covered_by_module.end()) << mod << " in " << r.name;
      EXPECT_EQ(bitmap.Count(), it->second) << mod << " in " << r.name;
    }
  }
}

// Crashed scenarios carry their triage identity; non-crashed ones don't.
TEST(Campaign, CrashedScenariosCarryTriageHashes) {
  std::vector<Scenario> scenarios = RandomScenarios(32, 0.3, 42);
  CampaignReport report =
      RunReaderCampaign(scenarios, 2, ShardPolicy::RoundRobin);
  ASSERT_GT(report.crashes, 0u);
  for (const ScenarioResult& r : report.results) {
    if (r.status == ScenarioStatus::Crashed) {
      EXPECT_NE(r.crash_hash, 0u) << r.name;
      EXPECT_NE(r.crash_site_hash, 0u) << r.name;
      EXPECT_FALSE(r.fault_frames.empty()) << r.name;
    } else {
      EXPECT_EQ(r.crash_hash, 0u) << r.name;
      EXPECT_EQ(r.crash_site_hash, 0u) << r.name;
      EXPECT_TRUE(r.fault_frames.empty()) << r.name;
    }
  }
}

// Re-running a campaign on the same runner starts from the same state.
TEST(Campaign, RunnerIsReusable) {
  std::vector<Scenario> scenarios = RandomScenarios(16, 0.3, 7);
  CampaignOptions opts;
  opts.jobs = 2;
  CampaignRunner runner(ReaderSetup(), apps::LibcProfiles(), opts);
  CampaignReport first = runner.Run(scenarios);
  CampaignReport second = runner.Run(scenarios);
  ASSERT_EQ(first.results.size(), second.results.size());
  for (size_t i = 0; i < first.results.size(); ++i) {
    EXPECT_EQ(first.results[i].injections, second.results[i].injections);
    EXPECT_EQ(first.results[i].status, second.results[i].status);
  }
}

// A worker reuses one machine across its whole shard; the kernel
// checkpoint must restore the filesystem between scenarios, or the
// appender would see its own previous output and exit with 16, 24, ...
TEST(Campaign, MachineResetIsolatesScenarios) {
  auto libc_so = std::make_shared<const sso::SharedObject>(libc::BuildLibc());
  auto app = std::make_shared<const sso::SharedObject>(BuildAppenderApp());
  MachineSetup setup = [libc_so, app](vm::Machine& machine) {
    machine.Load(*libc_so);
    machine.Load(*app);
  };
  std::vector<Scenario> scenarios(6);
  for (size_t i = 0; i < scenarios.size(); ++i) {
    scenarios[i].name = "append" + std::to_string(i);
  }
  CampaignOptions opts;
  opts.jobs = 1;  // one worker = maximum reuse
  CampaignRunner runner(setup, {}, opts);
  CampaignReport report = runner.Run(scenarios);
  ASSERT_EQ(report.results.size(), 6u);
  for (const ScenarioResult& r : report.results) {
    EXPECT_EQ(r.status, ScenarioStatus::Exited) << r.fault_message;
    EXPECT_EQ(r.exit_code, 8) << "state leaked into scenario " << r.index;
  }
}

// A scenario whose entry does not resolve reports SetupError without
// poisoning the rest of the shard.
TEST(Campaign, SetupErrorIsIsolated) {
  std::vector<Scenario> scenarios = RandomScenarios(3, 0.0, 1);
  scenarios[1].entry = "no_such_symbol";
  CampaignReport report =
      RunReaderCampaign(scenarios, 1, ShardPolicy::RoundRobin);
  EXPECT_EQ(report.results[0].status, ScenarioStatus::Exited);
  EXPECT_EQ(report.results[1].status, ScenarioStatus::SetupError);
  EXPECT_EQ(report.results[2].status, ScenarioStatus::Exited);
  EXPECT_EQ(report.setup_errors, 1u);
}

TEST(Campaign, RoundRobinShardsPartitionTheSet) {
  std::vector<Scenario> scenarios(10);
  auto shards = ShardScenarios(scenarios, 3, ShardPolicy::RoundRobin);
  ASSERT_EQ(shards.size(), 3u);
  std::vector<bool> seen(scenarios.size(), false);
  for (const auto& shard : shards) {
    for (size_t idx : shard) {
      ASSERT_LT(idx, seen.size());
      EXPECT_FALSE(seen[idx]) << "index assigned twice";
      seen[idx] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
  EXPECT_EQ(shards[0], (std::vector<size_t>{0, 3, 6, 9}));
  EXPECT_EQ(shards[1], (std::vector<size_t>{1, 4, 7}));
}

TEST(Campaign, SizeBalancedShardsBalanceWeight) {
  // Weights 1..12 across 4 shards: LPT keeps every shard within one
  // max-weight of the optimum (total 78 -> ~19.5 per shard).
  std::vector<Scenario> scenarios(12);
  for (size_t i = 0; i < scenarios.size(); ++i) {
    scenarios[i].weight = i + 1;
  }
  auto shards = ShardScenarios(scenarios, 4, ShardPolicy::SizeBalanced);
  ASSERT_EQ(shards.size(), 4u);
  std::vector<bool> seen(scenarios.size(), false);
  uint64_t max_load = 0, min_load = UINT64_MAX;
  for (const auto& shard : shards) {
    uint64_t load = 0;
    for (size_t idx : shard) {
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
      load += scenarios[idx].weight;
    }
    max_load = std::max(max_load, load);
    min_load = std::min(min_load, load);
  }
  for (bool s : seen) EXPECT_TRUE(s);
  EXPECT_LE(max_load, 78 / 4 + 12);  // within one max-weight of optimum
  EXPECT_LE(max_load - min_load, 12u);
  // Deterministic: same inputs, same shards.
  EXPECT_EQ(shards, ShardScenarios(scenarios, 4, ShardPolicy::SizeBalanced));
}

TEST(Campaign, ShardWeightDefaultsToTriggerCount) {
  // One heavy scenario (many triggers) + many light ones on 2 shards: the
  // heavy one must not share its shard with everything else.
  std::vector<Scenario> scenarios(5);
  for (int i = 0; i < 40; ++i) {
    scenarios[0].plan.triggers.emplace_back();
  }
  auto shards = ShardScenarios(scenarios, 2, ShardPolicy::SizeBalanced);
  ASSERT_EQ(shards.size(), 2u);
  const auto& heavy_shard =
      std::find_if(shards.begin(), shards.end(), [](const auto& s) {
        return std::find(s.begin(), s.end(), 0u) != s.end();
      });
  EXPECT_EQ(heavy_shard->size(), 1u) << "heavy scenario should ride alone";
}

TEST(Campaign, ReportAggregation) {
  CampaignReport report;
  report.results.resize(4);
  report.results[0].status = ScenarioStatus::Exited;
  report.results[0].injections = 2;
  report.results[0].instructions = 100;
  report.results[0].seconds = 0.5;
  report.results[1].status = ScenarioStatus::Crashed;
  report.results[1].injections = 1;
  report.results[1].instructions = 50;
  report.results[2].status = ScenarioStatus::Deadlocked;
  report.results[3].status = ScenarioStatus::SetupError;
  report.Aggregate();
  EXPECT_EQ(report.scenarios, 4u);
  EXPECT_EQ(report.crashes, 1u);
  EXPECT_EQ(report.deadlocks, 1u);
  EXPECT_EQ(report.setup_errors, 1u);
  EXPECT_EQ(report.total_injections, 3u);
  EXPECT_EQ(report.total_instructions, 150u);
  EXPECT_DOUBLE_EQ(report.cpu_seconds, 0.5);
}

TEST(Campaign, AggregatesMatchPerScenarioSums) {
  std::vector<Scenario> scenarios = RandomScenarios(20, 0.3, 5);
  CampaignReport report =
      RunReaderCampaign(scenarios, 4, ShardPolicy::RoundRobin);
  size_t crashes = 0;
  uint64_t injections = 0, instructions = 0;
  for (const ScenarioResult& r : report.results) {
    crashes += r.status == ScenarioStatus::Crashed ? 1 : 0;
    injections += r.injections;
    instructions += r.instructions;
  }
  EXPECT_EQ(report.crashes, crashes);
  EXPECT_EQ(report.total_injections, injections);
  EXPECT_EQ(report.total_instructions, instructions);
  EXPECT_EQ(report.scenarios, 20u);
}

TEST(Campaign, DeriveSeedSpreads) {
  // Adjacent indices and bases must land far apart — seeds feed each
  // scenario's trigger RNG directly.
  std::set<uint64_t> seeds;
  for (uint64_t base = 0; base < 8; ++base) {
    for (uint64_t i = 0; i < 64; ++i) {
      seeds.insert(DeriveSeed(base, i));
    }
  }
  EXPECT_EQ(seeds.size(), 8u * 64u);
}

TEST(Campaign, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  ParallelFor(hits.size(), 8, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

}  // namespace
}  // namespace lfi::campaign
