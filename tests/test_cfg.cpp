#include <gtest/gtest.h>

#include "analysis/cfg.hpp"
#include "isa/codebuilder.hpp"

namespace lfi::analysis {
namespace {

using isa::CodeBuilder;
using isa::Reg;

sso::SharedObject Build(std::function<void(CodeBuilder&)> body,
                        const std::string& name = "f") {
  CodeBuilder b;
  b.begin_function(name, true, /*bare=*/true);
  body(b);
  b.end_function();
  return sso::FromCodeUnit("lib.so", b.Finish());
}

Cfg CfgOf(const sso::SharedObject& so, const std::string& name = "f") {
  auto cfg = BuildCfg(so, *so.find_export(name));
  EXPECT_TRUE(cfg.ok()) << (cfg.ok() ? "" : cfg.error());
  return std::move(cfg).take();
}

TEST(Cfg, StraightLineIsOneBlock) {
  auto so = Build([](CodeBuilder& b) {
    b.mov_ri(Reg::R0, 1);
    b.add_ri(Reg::R0, 2);
    b.ret();
  });
  Cfg cfg = CfgOf(so);
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_TRUE(cfg.blocks[0].ends_in_ret);
  EXPECT_EQ(cfg.blocks[0].instrs.size(), 3u);
}

TEST(Cfg, DiamondHasFourBlocks) {
  // The paper's Figure 2 shape: entry splits on a compare, two arms, join.
  auto so = Build([](CodeBuilder& b) {
    auto arm = b.new_label();
    auto join = b.new_label();
    b.cmp_ri(Reg::R1, 0);
    b.jne(arm);
    b.mov_ri(Reg::R0, 0);
    b.jmp(join);
    b.bind(arm);
    b.mov_ri(Reg::R0, 5);
    b.bind(join);
    b.ret();
  });
  Cfg cfg = CfgOf(so);
  ASSERT_EQ(cfg.blocks.size(), 4u);
  // Entry has two successors.
  EXPECT_EQ(cfg.blocks[0].succs.size(), 2u);
  // The join block has two predecessors and returns.
  size_t join_idx = cfg.blocks.size() - 1;
  EXPECT_EQ(cfg.blocks[join_idx].preds.size(), 2u);
  EXPECT_TRUE(cfg.blocks[join_idx].ends_in_ret);
}

TEST(Cfg, LoopBackEdge) {
  auto so = Build([](CodeBuilder& b) {
    auto loop = b.new_label();
    auto done = b.new_label();
    b.bind(loop);
    b.add_ri(Reg::R1, 1);
    b.cmp_ri(Reg::R1, 10);
    b.jlt(loop);
    b.jmp(done);
    b.bind(done);
    b.ret();
  });
  Cfg cfg = CfgOf(so);
  // The loop block must be its own predecessor.
  size_t loop_idx = cfg.block_starting_at(0);
  ASSERT_NE(loop_idx, SIZE_MAX);
  bool self_edge = false;
  for (size_t s : cfg.blocks[loop_idx].succs) self_edge |= s == loop_idx;
  EXPECT_TRUE(self_edge);
}

TEST(Cfg, CallsDoNotEndBlocks) {
  auto so = Build([](CodeBuilder& b) {
    b.call_sym("g");
    b.mov_ri(Reg::R0, 1);
    b.ret();
  });
  Cfg cfg = CfgOf(so);
  EXPECT_EQ(cfg.blocks.size(), 1u);
}

TEST(Cfg, IndirectBranchFlagsIncomplete) {
  auto so = Build([](CodeBuilder& b) {
    b.mov_ri(Reg::R1, 0x100);
    b.jmp_ind(Reg::R1);
  });
  Cfg cfg = CfgOf(so);
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_TRUE(cfg.blocks[0].has_indirect_branch);
  EXPECT_TRUE(cfg.blocks[0].succs.empty());
  EXPECT_EQ(cfg.indirect_branch_count(), 1u);
}

TEST(Cfg, CountsIndirectCalls) {
  auto so = Build([](CodeBuilder& b) {
    b.call_ind(Reg::R1);
    b.call_ind(Reg::R2);
    b.ret();
  });
  Cfg cfg = CfgOf(so);
  EXPECT_EQ(cfg.indirect_call_count(), 2u);
}

TEST(Cfg, MultipleReturns) {
  auto so = Build([](CodeBuilder& b) {
    auto other = b.new_label();
    b.cmp_ri(Reg::R1, 0);
    b.jne(other);
    b.mov_ri(Reg::R0, 0);
    b.ret();
    b.bind(other);
    b.mov_ri(Reg::R0, -1);
    b.ret();
  });
  Cfg cfg = CfgOf(so);
  size_t rets = 0;
  for (const auto& blk : cfg.blocks) rets += blk.ends_in_ret;
  EXPECT_EQ(rets, 2u);
}

TEST(Cfg, InstructionCountMatches) {
  auto so = Build([](CodeBuilder& b) {
    b.mov_ri(Reg::R0, 1);
    b.nop();
    b.nop();
    b.ret();
  });
  EXPECT_EQ(CfgOf(so).instruction_count(), 4u);
}

TEST(Cfg, ToStringListsBlocksAndEdges) {
  auto so = Build([](CodeBuilder& b) {
    auto l = b.new_label();
    b.cmp_ri(Reg::R1, 0);
    b.je(l);
    b.mov_ri(Reg::R0, 1);
    b.bind(l);
    b.ret();
  });
  std::string text = CfgOf(so).ToString();
  EXPECT_NE(text.find("B0"), std::string::npos);
  EXPECT_NE(text.find("->"), std::string::npos);
  EXPECT_NE(text.find("(ret)"), std::string::npos);
}

TEST(Cfg, RejectsEmptyFunction) {
  isa::CodeBuilder b;
  b.begin_function("empty", true, true);
  b.end_function();
  auto so = sso::FromCodeUnit("lib.so", b.Finish());
  EXPECT_FALSE(BuildCfg(so, *so.find_export("empty")).ok());
}

TEST(Cfg, BranchOutsideFunctionIgnoredAsTarget) {
  // A conditional branch to an offset outside the function body must not
  // create a block (defensive against adversarial symbol tables).
  isa::CodeBuilder b;
  b.begin_function("f", true, true);
  auto end = b.new_label();
  b.cmp_ri(Reg::R1, 0);
  b.je(end);
  b.ret();
  b.bind(end);
  b.ret();
  b.end_function();
  auto unit = b.Finish();
  // Truncate the symbol so the je target lands outside.
  unit.exports[0].size -= 1;
  auto so = sso::FromCodeUnit("lib.so", std::move(unit));
  auto cfg = BuildCfg(so, so.exports[0]);
  ASSERT_TRUE(cfg.ok()) << cfg.error();
}

}  // namespace
}  // namespace lfi::analysis
