#include <gtest/gtest.h>

#include "isa/codebuilder.hpp"

namespace lfi::isa {
namespace {

TEST(CodeBuilder, EmitsForwardAndBackwardLabels) {
  CodeBuilder b;
  auto fwd = b.new_label();
  auto back = b.new_label();
  b.bind(back);
  b.mov_ri(Reg::R0, 1);
  b.jne(fwd);
  b.jmp(back);
  b.bind(fwd);
  b.ret();
  CodeUnit unit = b.Finish();

  auto instrs = Disassemble(unit.code, 0, static_cast<uint32_t>(unit.code.size()));
  ASSERT_TRUE(instrs.ok());
  const auto& v = instrs.value();
  ASSERT_EQ(v.size(), 4u);
  // jne targets the ret; jmp targets offset 0.
  EXPECT_EQ(v[1].rel_target(), v[3].offset);
  EXPECT_EQ(v[2].rel_target(), 0u);
}

TEST(CodeBuilder, FunctionSymbolsRecordOffsetsAndSizes) {
  CodeBuilder b;
  b.begin_function("first");
  b.mov_ri(Reg::R0, 0);
  b.leave_ret();
  b.end_function();
  b.begin_function("second", /*exported=*/false);
  b.leave_ret();
  b.end_function();
  CodeUnit unit = b.Finish();

  ASSERT_EQ(unit.exports.size(), 1u);
  ASSERT_EQ(unit.locals.size(), 1u);
  EXPECT_EQ(unit.exports[0].name, "first");
  EXPECT_EQ(unit.exports[0].offset, 0u);
  EXPECT_GT(unit.exports[0].size, 0u);
  EXPECT_EQ(unit.locals[0].offset, unit.exports[0].size);
}

TEST(CodeBuilder, BareFunctionSkipsPrologue) {
  CodeBuilder b;
  b.begin_function("handler", true, /*bare=*/true);
  b.ret();
  b.end_function();
  CodeUnit unit = b.Finish();
  auto instrs = Disassemble(unit.code, 0, static_cast<uint32_t>(unit.code.size()));
  ASSERT_TRUE(instrs.ok());
  ASSERT_EQ(instrs.value().size(), 1u);
  EXPECT_EQ(instrs.value()[0].op, Opcode::RET);
}

TEST(CodeBuilder, ImportsDeduplicated) {
  CodeBuilder b;
  b.call_sym("read");
  b.call_sym("write");
  b.call_sym("read");
  CodeUnit unit = b.Finish();
  ASSERT_EQ(unit.imports.size(), 2u);
  EXPECT_EQ(unit.imports[0], "read");
  EXPECT_EQ(unit.imports[1], "write");

  auto instrs = Disassemble(unit.code, 0, static_cast<uint32_t>(unit.code.size()));
  ASSERT_TRUE(instrs.ok());
  EXPECT_EQ(instrs.value()[0].u16, 0);
  EXPECT_EQ(instrs.value()[1].u16, 1);
  EXPECT_EQ(instrs.value()[2].u16, 0);
}

TEST(CodeBuilder, DataAndTlsReservation) {
  CodeBuilder b;
  uint32_t a = b.reserve_data(8);
  uint32_t c = b.emit_data({1, 2, 3});
  uint32_t t0 = b.reserve_tls(8);
  uint32_t t1 = b.reserve_tls(16);
  CodeUnit unit = b.Finish();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(c, 8u);
  EXPECT_EQ(unit.data.size(), 11u);
  EXPECT_EQ(unit.data[8], 1);
  EXPECT_EQ(t0, 0u);
  EXPECT_EQ(t1, 8u);
  EXPECT_EQ(unit.tls_size, 24u);
}

TEST(CodeBuilder, CodePointerReloc) {
  CodeBuilder b;
  b.begin_function("f", true, true);
  b.ret();
  b.end_function();
  uint32_t slot = b.reserve_code_pointer(0);
  CodeUnit unit = b.Finish();
  ASSERT_EQ(unit.data_relocs.size(), 1u);
  EXPECT_EQ(unit.data_relocs[0].first, slot);
  EXPECT_EQ(unit.data_relocs[0].second, 0u);
  EXPECT_EQ(unit.data.size(), 8u);
}

TEST(CodeBuilder, ArgSlotLayout) {
  // ABI: saved BP at [bp], return address at [bp+8], args from [bp+16].
  EXPECT_EQ(ArgSlot(0), 16);
  EXPECT_EQ(ArgSlot(1), 24);
  EXPECT_EQ(ArgSlot(5), 56);
}

TEST(CodeBuilder, CallNamedPushesRightToLeft) {
  CodeBuilder b;
  b.call_named("f", {Reg::R1, Reg::R2});
  CodeUnit unit = b.Finish();
  auto instrs = Disassemble(unit.code, 0, static_cast<uint32_t>(unit.code.size()));
  ASSERT_TRUE(instrs.ok());
  const auto& v = instrs.value();
  ASSERT_EQ(v.size(), 4u);  // push r2, push r1, call, add sp
  EXPECT_EQ(v[0].op, Opcode::PUSH);
  EXPECT_EQ(v[0].a, Reg::R2);
  EXPECT_EQ(v[1].a, Reg::R1);
  EXPECT_EQ(v[2].op, Opcode::CALL_SYM);
  EXPECT_EQ(v[3].op, Opcode::ADD_RI);
  EXPECT_EQ(v[3].imm, 16);
}

TEST(CodeBuilder, SetErrnoConstEmitsTlsStore) {
  CodeBuilder b;
  b.set_errno_const(9, Reg::R2, Reg::R1);
  CodeUnit unit = b.Finish();
  auto instrs = Disassemble(unit.code, 0, static_cast<uint32_t>(unit.code.size()));
  ASSERT_TRUE(instrs.ok());
  const auto& v = instrs.value();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].op, Opcode::MOV_RI);
  EXPECT_EQ(v[0].imm, 9);
  EXPECT_EQ(v[1].op, Opcode::LEA_TLS);
  EXPECT_EQ(v[2].op, Opcode::STORE);
}

}  // namespace
}  // namespace lfi::isa
