#include <gtest/gtest.h>

#include "analysis/constprop.hpp"
#include "isa/codebuilder.hpp"
#include "kernel/kernel_image.hpp"
#include "libc/libc_builder.hpp"

namespace lfi::analysis {
namespace {

using isa::CodeBuilder;
using isa::Reg;

sso::SharedObject OneFn(std::function<void(CodeBuilder&)> body,
                        const std::string& name = "f",
                        const std::string& lib = "lib.so") {
  CodeBuilder b;
  b.begin_function(name, true, /*bare=*/true);
  body(b);
  b.end_function();
  return sso::FromCodeUnit(lib, b.Finish());
}

std::set<int64_t> ReturnValues(const FunctionSummary& s) {
  std::set<int64_t> out;
  for (const auto& er : s.returns) out.insert(er.value);
  return out;
}

FunctionSummary Analyze(const sso::SharedObject& so,
                        const std::string& fn = "f") {
  Workspace ws;
  ws.AddModule(&so);
  ConstPropAnalyzer analyzer(ws);
  auto s = analyzer.Analyze(so, fn);
  EXPECT_TRUE(s.ok()) << (s.ok() ? "" : s.error());
  return std::move(s).take();
}

TEST(ConstProp, DirectConstantReturn) {
  auto so = OneFn([](CodeBuilder& b) {
    b.mov_ri(Reg::R0, -1);
    b.ret();
  });
  FunctionSummary s = Analyze(so);
  EXPECT_EQ(ReturnValues(s), (std::set<int64_t>{-1}));
  EXPECT_FALSE(s.returns_unknown);
}

TEST(ConstProp, MultipleConstantsAcrossBranches) {
  // Figure 2's shape: two paths materialize 0 and 5.
  auto so = OneFn([](CodeBuilder& b) {
    auto arm = b.new_label();
    auto join = b.new_label();
    b.cmp_ri(Reg::R1, 0);
    b.jne(arm);
    b.mov_ri(Reg::R0, 0);
    b.jmp(join);
    b.bind(arm);
    b.mov_ri(Reg::R0, 5);
    b.bind(join);
    b.ret();
  });
  EXPECT_EQ(ReturnValues(Analyze(so)), (std::set<int64_t>{0, 5}));
}

TEST(ConstProp, PropagationThroughMovChain) {
  auto so = OneFn([](CodeBuilder& b) {
    b.mov_ri(Reg::R3, -22);
    b.mov_rr(Reg::R2, Reg::R3);
    b.mov_rr(Reg::R0, Reg::R2);
    b.ret();
  });
  FunctionSummary s = Analyze(so);
  EXPECT_EQ(ReturnValues(s), (std::set<int64_t>{-22}));
  EXPECT_GE(s.max_hops, 2);
  EXPECT_LE(s.max_hops, 3);  // the paper observed <= 3 hops
}

TEST(ConstProp, PropagationThroughStackSlot) {
  // Spill through a BP slot: mov -5 -> [bp-8] -> r0.
  CodeBuilder b;
  b.begin_function("f");  // full prologue so BP is meaningful
  b.sub_ri(Reg::SP, 16);
  b.mov_ri(Reg::R1, -5);
  b.store(Reg::BP, -8, Reg::R1);
  b.load(Reg::R0, Reg::BP, -8);
  b.leave_ret();
  b.end_function();
  auto so = sso::FromCodeUnit("lib.so", b.Finish());
  EXPECT_EQ(ReturnValues(Analyze(so)), (std::set<int64_t>{-5}));
}

TEST(ConstProp, StoreImmediateToSlot) {
  CodeBuilder b;
  b.begin_function("f");
  b.sub_ri(Reg::SP, 16);
  b.store_i(Reg::BP, -8, -17);
  b.load(Reg::R0, Reg::BP, -8);
  b.leave_ret();
  b.end_function();
  auto so = sso::FromCodeUnit("lib.so", b.Finish());
  EXPECT_EQ(ReturnValues(Analyze(so)), (std::set<int64_t>{-17}));
}

TEST(ConstProp, AffineTransformsApplied) {
  // r0 = -(7) - 3 = -10
  auto so = OneFn([](CodeBuilder& b) {
    b.mov_ri(Reg::R0, 7);
    b.neg(Reg::R0);
    b.sub_ri(Reg::R0, 3);
    b.ret();
  });
  EXPECT_EQ(ReturnValues(Analyze(so)), (std::set<int64_t>{-10}));
}

TEST(ConstProp, XorZeroIdiom) {
  auto so = OneFn([](CodeBuilder& b) {
    b.xor_rr(Reg::R0, Reg::R0);
    b.ret();
  });
  EXPECT_EQ(ReturnValues(Analyze(so)), (std::set<int64_t>{0}));
}

TEST(ConstProp, OrMinusOneIdiom) {
  // The §3.2 glibc listing's "or eax, 0xffffffff".
  auto so = OneFn([](CodeBuilder& b) {
    b.or_ri(Reg::R0, -1);
    b.ret();
  });
  EXPECT_EQ(ReturnValues(Analyze(so)), (std::set<int64_t>{-1}));
}

TEST(ConstProp, NonConstantLoadIsUnknown) {
  auto so = OneFn([](CodeBuilder& b) {
    b.lea_data(Reg::R1, 0);
    b.load(Reg::R0, Reg::R1, 0);
    b.ret();
  });
  FunctionSummary s = Analyze(so);
  EXPECT_TRUE(s.returns.empty());
  EXPECT_TRUE(s.returns_unknown);
}

TEST(ConstProp, ArgumentReturnIsUnknown) {
  CodeBuilder b;
  b.begin_function("f");
  b.load_arg(Reg::R0, 0);
  b.leave_ret();
  b.end_function();
  auto so = sso::FromCodeUnit("lib.so", b.Finish());
  FunctionSummary s = Analyze(so);
  EXPECT_TRUE(s.returns.empty());
  EXPECT_TRUE(s.returns_unknown);
}

TEST(ConstProp, BranchFeasibilityPrunesGuardedConstants) {
  // if (r0 >= 0) return r0;  -- r0 set from -9 beforehand: the success
  // path cannot carry the negative constant past the jge guard.
  auto so = OneFn([](CodeBuilder& b) {
    auto ok = b.new_label();
    b.mov_ri(Reg::R0, -9);
    b.cmp_ri(Reg::R0, 0);
    b.jge(ok);
    b.mov_ri(Reg::R0, -1);
    b.ret();
    b.bind(ok);
    b.ret();
  });
  FunctionSummary s = Analyze(so);
  // -9 must NOT be reported via the jge-taken path; -1 is reported.
  EXPECT_EQ(ReturnValues(s), (std::set<int64_t>{-1}));
}

TEST(ConstProp, FeasibilityKeepsSatisfyingConstants) {
  auto so = OneFn([](CodeBuilder& b) {
    auto ok = b.new_label();
    b.mov_ri(Reg::R0, 3);
    b.cmp_ri(Reg::R0, 0);
    b.jge(ok);
    b.mov_ri(Reg::R0, -1);
    b.ret();
    b.bind(ok);
    b.ret();
  });
  // 3 satisfies the jge guard and flows to the success return. -1 is also
  // reported: it sits directly in the (actually dead) error block, and the
  // analysis does not prove unreachability — the same overapproximation
  // that produces the paper's §6.3 false positives.
  EXPECT_EQ(ReturnValues(Analyze(so)), (std::set<int64_t>{-1, 3}));
}

TEST(ConstProp, DependentFunctionReturnsPropagate) {
  // g returns {-7}; f tail-returns g() — f inherits -7 (§3.1).
  CodeBuilder b;
  b.begin_function("g");
  b.mov_ri(Reg::R0, -7);
  b.leave_ret();
  b.end_function();
  b.begin_function("f");
  b.call_sym("g");
  b.leave_ret();
  b.end_function();
  auto so = sso::FromCodeUnit("lib.so", b.Finish());
  FunctionSummary s = Analyze(so);
  EXPECT_EQ(ReturnValues(s), (std::set<int64_t>{-7}));
}

TEST(ConstProp, DependentRecursionAcrossLibraries) {
  CodeBuilder inner;
  inner.begin_function("leaf");
  inner.mov_ri(Reg::R0, -31);
  inner.leave_ret();
  inner.end_function();
  auto libinner = sso::FromCodeUnit("inner.so", inner.Finish());

  CodeBuilder outer;
  outer.begin_function("f");
  outer.call_sym("leaf");
  outer.leave_ret();
  outer.end_function();
  auto libouter = sso::FromCodeUnit("outer.so", outer.Finish());

  Workspace ws;
  ws.AddModule(&libouter);
  ws.AddModule(&libinner);
  ConstPropAnalyzer analyzer(ws);
  auto s = analyzer.Analyze(libouter, "f");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(ReturnValues(s.value()), (std::set<int64_t>{-31}));
}

TEST(ConstProp, RecursionCycleTerminates) {
  CodeBuilder b;
  b.begin_function("a");
  b.call_sym("b");
  b.leave_ret();
  b.end_function();
  b.begin_function("b");
  b.call_sym("a");
  b.leave_ret();
  b.end_function();
  auto so = sso::FromCodeUnit("lib.so", b.Finish());
  FunctionSummary s = Analyze(so, "a");
  EXPECT_TRUE(s.returns.empty());
  EXPECT_TRUE(s.returns_unknown);
}

TEST(ConstProp, SyscallPropagatesKernelConstants) {
  // A bare syscall wrapper returns the kernel's -errno constants
  // (close: -EBADF, -EIO, -EINTR) plus unknown success values.
  static sso::SharedObject kernel_img = kernel::BuildKernelImage();
  auto so = OneFn([](CodeBuilder& b) {
    b.syscall(static_cast<uint16_t>(kernel::Sys::CLOSE));
    b.ret();
  });
  Workspace ws;
  ws.SetKernel(&kernel_img);
  ws.AddModule(&so);
  ConstPropAnalyzer analyzer(ws);
  auto s = analyzer.Analyze(so, "f");
  ASSERT_TRUE(s.ok()) << s.error();
  EXPECT_EQ(ReturnValues(s.value()),
            (std::set<int64_t>{-E_BADF, -E_IO, -E_INTR}));
  EXPECT_TRUE(s.value().returns_unknown);  // the success value is native
}

TEST(ConstProp, IndirectCallBlocksPropagation) {
  // The §3.1 limitation: constants behind CALL_IND are not found, and the
  // summary is flagged incomplete.
  CodeBuilder b;
  b.begin_function("helper", false, true);
  b.mov_ri(Reg::R0, -40);
  b.ret();
  b.end_function();
  uint32_t slot = b.reserve_code_pointer(0);
  b.begin_function("f");
  b.lea_data(Reg::R1, static_cast<int32_t>(slot));
  b.load(Reg::R1, Reg::R1, 0);
  b.call_ind(Reg::R1);
  b.leave_ret();
  b.end_function();
  auto so = sso::FromCodeUnit("lib.so", b.Finish());
  FunctionSummary s = Analyze(so);
  EXPECT_TRUE(s.returns.empty());
  EXPECT_TRUE(s.returns_unknown);
  EXPECT_TRUE(s.incomplete);
}

TEST(ConstProp, ScratchRegisterClobberedByCall) {
  // A constant parked in R1 across a call must not be trusted.
  CodeBuilder b;
  b.begin_function("g");
  b.mov_ri(Reg::R0, 0);
  b.leave_ret();
  b.end_function();
  b.begin_function("f");
  b.mov_ri(Reg::R1, -3);
  b.call_sym("g");
  b.mov_rr(Reg::R0, Reg::R1);
  b.leave_ret();
  b.end_function();
  auto so = sso::FromCodeUnit("lib.so", b.Finish());
  FunctionSummary s = Analyze(so, "f");
  EXPECT_FALSE(ReturnValues(s).count(-3));
}

TEST(ConstProp, StackSlotSurvivesCall) {
  CodeBuilder b;
  b.begin_function("g");
  b.mov_ri(Reg::R0, 0);
  b.leave_ret();
  b.end_function();
  b.begin_function("f");
  b.sub_ri(Reg::SP, 16);
  b.store_i(Reg::BP, -8, -44);
  b.call_sym("g");
  b.load(Reg::R0, Reg::BP, -8);
  b.leave_ret();
  b.end_function();
  auto so = sso::FromCodeUnit("lib.so", b.Finish());
  EXPECT_EQ(ReturnValues(Analyze(so, "f")), (std::set<int64_t>{-44}));
}

TEST(ConstProp, LoopDoesNotDiverge) {
  auto so = OneFn([](CodeBuilder& b) {
    auto loop = b.new_label();
    b.mov_ri(Reg::R0, -2);
    b.bind(loop);
    b.add_ri(Reg::R1, 1);
    b.cmp_ri(Reg::R1, 100);
    b.jlt(loop);
    b.ret();
  });
  FunctionSummary s = Analyze(so);
  EXPECT_TRUE(ReturnValues(s).count(-2));
  EXPECT_LT(s.states_explored, 10000u);
}

TEST(ConstProp, OnDemandBeatsFullExpansion) {
  auto so = OneFn([](CodeBuilder& b) {
    for (int i = 0; i < 10; ++i) {
      auto skip = b.new_label();
      b.cmp_ri(Reg::R1, i);
      b.jne(skip);
      b.add_ri(Reg::R2, 1);
      b.bind(skip);
    }
    b.mov_ri(Reg::R0, -1);
    b.ret();
  });
  Workspace ws;
  ws.AddModule(&so);
  ConstPropAnalyzer analyzer(ws);
  ASSERT_TRUE(analyzer.Analyze(so, "f").ok());
  // §3.1: on-demand expansion touches far fewer G' nodes than |V|x|locs|.
  EXPECT_LT(analyzer.total_states_explored(),
            analyzer.full_expansion_states());
}

TEST(ConstProp, MemoizationReusesSummaries) {
  CodeBuilder b;
  b.begin_function("g");
  b.mov_ri(Reg::R0, -1);
  b.leave_ret();
  b.end_function();
  for (const char* name : {"f1", "f2", "f3"}) {
    b.begin_function(name);
    b.call_sym("g");
    b.leave_ret();
    b.end_function();
  }
  auto so = sso::FromCodeUnit("lib.so", b.Finish());
  Workspace ws;
  ws.AddModule(&so);
  ConstPropAnalyzer analyzer(ws);
  ASSERT_TRUE(analyzer.Analyze(so, "f1").ok());
  uint64_t after_first = analyzer.total_states_explored();
  ASSERT_TRUE(analyzer.Analyze(so, "f2").ok());
  ASSERT_TRUE(analyzer.Analyze(so, "f3").ok());
  // f2/f3 reuse g's summary: the added exploration is small.
  EXPECT_LT(analyzer.total_states_explored(), after_first * 3);
}

TEST(ConstProp, MaxStatesBudgetDegradesToUnknown) {
  // A branchy function that needs well over a handful of G' states: the
  // return constant is set at entry, so the backward walk from ret must
  // thread every diamond. With a tiny max_states budget it must stop and
  // mark the summary incomplete with unknown returns — never hang or blow
  // through the 2^8 path tree.
  auto so = OneFn([](CodeBuilder& b) {
    b.mov_ri(Reg::R0, -1);
    for (int i = 0; i < 8; ++i) {
      auto skip = b.new_label();
      b.cmp_ri(Reg::R1, i);
      b.jne(skip);
      b.add_ri(Reg::R2, 1);
      b.bind(skip);
    }
    b.ret();
  });
  Workspace ws;
  ws.AddModule(&so);
  AnalysisOptions opts;
  opts.max_states = 4;
  ConstPropAnalyzer analyzer(ws, opts);
  auto s = analyzer.Analyze(so, "f");
  ASSERT_TRUE(s.ok()) << s.error();
  EXPECT_TRUE(s.value().returns_unknown);
  EXPECT_TRUE(s.value().incomplete);
  // The budget bounds the walk — a handful of over-budget probes (each
  // attempted successor costs one counter tick before bailing) is fine,
  // the 2^12 path explosion the unbudgeted walk would do is not. The
  // analyzer-wide counter the CLI prints must see the capped walk too.
  EXPECT_LE(s.value().states_explored, 64u);
  EXPECT_GT(analyzer.total_states_explored(), 0u);

  // The same function under the default budget resolves fully.
  ConstPropAnalyzer roomy(ws);
  auto full = roomy.Analyze(so, "f");
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full.value().returns_unknown);
  EXPECT_EQ(ReturnValues(full.value()), (std::set<int64_t>{-1}));
}

TEST(ConstProp, UnknownExportRejected) {
  auto so = OneFn([](CodeBuilder& b) { b.ret(); });
  Workspace ws;
  ws.AddModule(&so);
  ConstPropAnalyzer analyzer(ws);
  EXPECT_FALSE(analyzer.Analyze(so, "missing").ok());
}

// The flagship case: the full libc close() chain — libc wrapper over the
// kernel image — reproduces the paper's §3.3 profile.
TEST(ConstProp, LibcCloseMatchesPaperProfile) {
  static sso::SharedObject kernel_img = kernel::BuildKernelImage();
  static sso::SharedObject libc_so = libc::BuildLibc();
  Workspace ws;
  ws.SetKernel(&kernel_img);
  ws.AddModule(&libc_so);
  ConstPropAnalyzer analyzer(ws);
  auto s = analyzer.Analyze(libc_so, "close");
  ASSERT_TRUE(s.ok()) << s.error();
  ASSERT_EQ(s.value().returns.size(), 1u);
  const ErrorReturn& er = s.value().returns[0];
  EXPECT_EQ(er.value, -1);
  // TLS side effect carrying EBADF(9), EIO(5), EINTR(4).
  ASSERT_FALSE(er.effects.empty());
  const SideEffect* tls = nullptr;
  for (const auto& e : er.effects) {
    if (e.kind == SideEffect::Kind::Tls) tls = &e;
  }
  ASSERT_NE(tls, nullptr);
  EXPECT_EQ(tls->module, "libc.so");
  EXPECT_EQ(tls->values, (std::set<int64_t>{E_INTR, E_IO, E_BADF}));
}

}  // namespace
}  // namespace lfi::analysis
