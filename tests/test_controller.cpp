#include <gtest/gtest.h>

#include <cstring>

#include "core/controller.hpp"
#include "core/stub_codegen.hpp"
#include "test_helpers.hpp"
#include "util/errno_table.hpp"

namespace lfi::core {
namespace {

using isa::CodeBuilder;
using isa::Reg;

/// App: calls getpid() twice, returns second result * 1000 + first errno.
sso::SharedObject TwoCallApp() {
  CodeBuilder b;
  b.begin_function("main");
  b.sub_ri(Reg::SP, 16);
  b.call_named("getpid", {});
  b.store(Reg::BP, -8, Reg::R0);
  b.call_named("getpid", {});
  b.store(Reg::BP, -16, Reg::R0);
  b.call_named("geterrno", {});
  b.mov_rr(Reg::R3, Reg::R0);        // errno
  b.load(Reg::R1, Reg::BP, -16);     // second call result
  b.mul_ri(Reg::R1, 1000);
  b.add_rr(Reg::R1, Reg::R3);
  b.mov_rr(Reg::R0, Reg::R1);
  b.leave_ret();
  b.end_function();
  return sso::FromCodeUnit("app.so", b.Finish(), {"libc.so"});
}

Plan OneShot(const std::string& fn, uint64_t call, int64_t retval,
             std::optional<int32_t> err, bool call_original = false) {
  Plan plan;
  FunctionTrigger t;
  t.function = fn;
  t.mode = FunctionTrigger::Mode::CallCount;
  t.inject_call = call;
  t.retval = retval;
  t.errno_value = err;
  t.call_original = call_original;
  plan.triggers.push_back(t);
  return plan;
}

TEST(Controller, InjectsRetvalOnNthCall) {
  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(TwoCallApp());
  Controller controller(machine);
  ASSERT_TRUE(controller.Install(OneShot("getpid", 2, -55, std::nullopt), nullptr));
  auto r = test::RunEntry(machine, "main");
  ASSERT_EQ(r.state, vm::ProcState::Exited) << r.fault;
  // second call returned -55; errno untouched (0).
  EXPECT_EQ(r.exit_code, -55 * 1000);
}

TEST(Controller, ReinstallReplacesPreviousPlan) {
  // A second Install without Uninstall/Reset must fully replace the first:
  // stubs from plan A pointing into its (destroyed) engine would otherwise
  // survive in the loader and dangle.
  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(TwoCallApp());
  Controller controller(machine);
  ASSERT_TRUE(controller.Install(OneShot("getpid", 1, -7, std::nullopt), nullptr));
  ASSERT_TRUE(controller.Install(OneShot("geterrno", 1, -9, std::nullopt), nullptr));
  auto r = test::RunEntry(machine, "main");
  ASSERT_EQ(r.state, vm::ProcState::Exited) << r.fault;
  // Plan A's getpid trigger is gone: both getpid calls pass through, and
  // only plan B's geterrno injection fires.
  ASSERT_EQ(controller.log().size(), 1u);
  EXPECT_EQ(controller.log().function_name(controller.log().records()[0]),
            "geterrno");
}

TEST(Controller, ReinstallClearsStaleLoaderStubs) {
  // Regression for the reinstall path in isolation: after a second
  // Install, the loader must hold only the new plan's stubs — plan A's
  // function has to resolve back to its module code, not to a stale stub
  // whose engine state was destroyed with the first install.
  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(TwoCallApp());
  Controller controller(machine);
  ASSERT_TRUE(controller.Install(OneShot("getpid", 1, -7, std::nullopt), nullptr));
  ASSERT_EQ(machine.loader().ResolveName("getpid").kind,
            vm::Target::Kind::Native);
  ASSERT_TRUE(controller.Install(OneShot("geterrno", 1, -9, std::nullopt), nullptr));
  EXPECT_EQ(machine.loader().ResolveName("getpid").kind,
            vm::Target::Kind::Code);
  EXPECT_EQ(machine.loader().ResolveName("geterrno").kind,
            vm::Target::Kind::Native);
  // And after Reset, nothing is interposed at all.
  controller.Reset();
  EXPECT_EQ(machine.loader().ResolveName("geterrno").kind,
            vm::Target::Kind::Code);
}

TEST(Controller, FirstCallPassesThroughUntouched) {
  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(TwoCallApp());
  Controller controller(machine);
  ASSERT_TRUE(controller.Install(OneShot("getpid", 2, -55, std::nullopt), nullptr));
  test::RunEntry(machine, "main");
  ASSERT_EQ(controller.log().size(), 1u);
  EXPECT_EQ(controller.log().records()[0].call_number, 2u);
}

TEST(Controller, ErrnoSideEffectVisibleToApp) {
  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(TwoCallApp());
  Controller controller(machine);
  ASSERT_TRUE(controller.Install(OneShot("getpid", 2, -1, E_IO), nullptr));
  auto r = test::RunEntry(machine, "main");
  // exit = -1*1000 + EIO(5)
  EXPECT_EQ(r.exit_code, -1000 + E_IO);
}

TEST(Controller, CallOriginalStillRunsFunction) {
  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(TwoCallApp());
  Controller controller(machine);
  ASSERT_TRUE(controller.Install(
      OneShot("getpid", 2, -99, std::nullopt, /*call_original=*/true), nullptr));
  auto r = test::RunEntry(machine, "main");
  // Pass-through: the real getpid result (pid 1), not -99.
  EXPECT_EQ(r.exit_code, 1000);
  EXPECT_EQ(controller.log().size(), 1u);  // evaluated and logged
}

TEST(Controller, UninstallRestoresOriginals) {
  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(TwoCallApp());
  Controller controller(machine);
  ASSERT_TRUE(controller.Install(OneShot("getpid", 1, -3, std::nullopt), nullptr));
  controller.Uninstall();
  auto r = test::RunEntry(machine, "main");
  EXPECT_EQ(r.exit_code, 1000);  // untouched
}

/// App: read(fd=7, buf, 100) then exit with read's return value.
sso::SharedObject ReadApp() {
  CodeBuilder b;
  uint32_t buf = b.reserve_data(128);
  b.begin_function("main");
  b.mov_ri(Reg::R1, 7);
  b.lea_data(Reg::R2, static_cast<int32_t>(buf));
  b.mov_ri(Reg::R3, 100);
  b.push(Reg::R3);
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("read");
  b.add_ri(Reg::SP, 24);
  b.leave_ret();
  b.end_function();
  return sso::FromCodeUnit("app.so", b.Finish(), {"libc.so"});
}

TEST(Controller, ArgumentModificationFlowsToOriginal) {
  // The paper's third §4 example: subtract 10 from read's byte count and
  // pass through. The kernel then sees count=90.
  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(ReadApp());
  machine.kernel().add_file("/data", std::vector<uint8_t>(500, 1));
  // Replace fd 7 read by opening... simpler: the injected read is against
  // a bad fd, so modify the *count* and verify via the log; then check a
  // good-path variant below.
  Controller controller(machine);
  Plan plan;
  FunctionTrigger t;
  t.function = "read";
  t.mode = FunctionTrigger::Mode::CallCount;
  t.inject_call = 1;
  t.call_original = true;
  ArgModification m;
  m.argument = 3;
  m.op = ArgModification::Op::Sub;
  m.value = 10;
  t.modifications.push_back(m);
  plan.triggers.push_back(t);
  ASSERT_TRUE(controller.Install(plan, nullptr));
  test::RunEntry(machine, "main");
  ASSERT_EQ(controller.log().size(), 1u);
  const InjectionRecord& rec = controller.log().records()[0];
  ASSERT_EQ(rec.modified_args.size(), 1u);
  EXPECT_EQ(rec.modified_args[0].first, 3);
  EXPECT_EQ(rec.modified_args[0].second, 90);  // 100 - 10
}

TEST(Controller, LogRecordsBacktraces) {
  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(TwoCallApp());
  Controller controller(machine);
  ASSERT_TRUE(controller.Install(OneShot("getpid", 1, -1, E_IO), nullptr));
  test::RunEntry(machine, "main");
  ASSERT_EQ(controller.log().size(), 1u);
  const auto& bt = controller.log().records()[0].backtrace;
  ASSERT_FALSE(bt.empty());
  EXPECT_EQ(bt[0], "main");
}

TEST(Controller, LogTextFormat) {
  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(TwoCallApp());
  Controller controller(machine);
  ASSERT_TRUE(controller.Install(OneShot("getpid", 2, -1, E_BADF), nullptr));
  test::RunEntry(machine, "main");
  std::string text = controller.log().ToText();
  EXPECT_NE(text.find("getpid"), std::string::npos);
  EXPECT_NE(text.find("call=2"), std::string::npos);
  EXPECT_NE(text.find("retval=-1"), std::string::npos);
  EXPECT_NE(text.find("errno=EBADF"), std::string::npos);
}

TEST(Controller, LoggingCanBeDisabled) {
  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(TwoCallApp());
  ControllerOptions opts;
  opts.log_enabled = false;
  Controller controller(machine, opts);
  ASSERT_TRUE(controller.Install(OneShot("getpid", 1, -1, E_IO), nullptr));
  test::RunEntry(machine, "main");
  EXPECT_EQ(controller.log().size(), 0u);
}

TEST(Controller, ReplayReproducesSameOutcome) {
  auto run_with = [](const Plan& plan) {
    vm::Machine machine;
    machine.Load(libc::BuildLibc());
    machine.Load(TwoCallApp());
    Controller controller(machine);
    EXPECT_TRUE(controller.Install(plan, nullptr));
    auto r = test::RunEntry(machine, "main");
    return std::make_pair(r.exit_code, controller.GenerateReplay());
  };
  // Probabilistic plan.
  Plan random;
  random.seed = 12;
  FunctionTrigger t;
  t.function = "getpid";
  t.mode = FunctionTrigger::Mode::Probability;
  t.probability = 0.5;
  t.retval = -77;
  random.triggers.push_back(t);
  auto [exit1, replay] = run_with(random);
  // The replay uses exact call counts: same observable outcome.
  auto [exit2, replay2] = run_with(replay);
  EXPECT_EQ(exit1, exit2);
  EXPECT_EQ(replay.triggers.size(), replay2.triggers.size());
}

TEST(Controller, ReplayPlanShape) {
  InjectionLog log;
  InjectionRecord r;
  r.function = log.Intern("read");
  r.call_number = 20;
  r.has_retval = true;
  r.retval = -1;
  r.errno_value = E_INTR;
  r.call_original = false;
  log.Add(r);
  Plan replay = GenerateReplayPlan(log);
  ASSERT_EQ(replay.triggers.size(), 1u);
  EXPECT_EQ(replay.triggers[0].mode, FunctionTrigger::Mode::CallCount);
  EXPECT_EQ(replay.triggers[0].inject_call, 20u);
  EXPECT_EQ(replay.triggers[0].max_injections, 1);
  EXPECT_EQ(replay.triggers[0].retval, -1);
}

TEST(Controller, InterceptsCallsFromOtherLibraries) {
  // readdir (libc) calls read (libc) through the PLT: interposing read
  // must catch the library-internal call too (LD_PRELOAD semantics).
  CodeBuilder b;
  uint32_t buf = b.reserve_data(128);
  b.begin_function("main");
  b.mov_ri(Reg::R1, 3);
  b.lea_data(Reg::R2, static_cast<int32_t>(buf));
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("readdir");
  b.add_ri(Reg::SP, 16);
  b.leave_ret();
  b.end_function();

  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(sso::FromCodeUnit("app.so", b.Finish(), {"libc.so"}));
  Controller controller(machine);
  ASSERT_TRUE(controller.Install(OneShot("read", 1, -1, E_BADF), nullptr));
  auto r = test::RunEntry(machine, "main");
  EXPECT_EQ(r.exit_code, 0);  // readdir saw the failed read -> NULL
  EXPECT_EQ(controller.log().size(), 1u);
}

TEST(Controller, MultipleLibrariesInterposedSimultaneously) {
  // §6.4: interceptors for multiple libraries coexist.
  CodeBuilder apr;
  apr.begin_function("apr_now");
  apr.call_named("getpid", {});
  apr.leave_ret();
  apr.end_function();

  CodeBuilder b;
  b.begin_function("main");
  b.sub_ri(Reg::SP, 16);
  b.call_named("apr_now", {});
  b.store(Reg::BP, -8, Reg::R0);
  b.call_named("getpid", {});
  b.load(Reg::R1, Reg::BP, -8);
  b.mul_ri(Reg::R1, 1000);
  b.add_rr(Reg::R0, Reg::R1);
  b.leave_ret();
  b.end_function();

  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(sso::FromCodeUnit("libapr.so", apr.Finish(), {"libc.so"}));
  machine.Load(sso::FromCodeUnit("app.so", b.Finish(), {"libapr.so"}));

  Controller controller(machine);
  Plan plan;
  FunctionTrigger t1;
  t1.function = "apr_now";
  t1.mode = FunctionTrigger::Mode::CallCount;
  t1.inject_call = 1;
  t1.retval = -5;
  plan.triggers.push_back(t1);
  FunctionTrigger t2;
  t2.function = "getpid";
  t2.mode = FunctionTrigger::Mode::CallCount;
  t2.inject_call = 1;
  t2.retval = -6;
  plan.triggers.push_back(t2);
  ASSERT_TRUE(controller.Install(plan, nullptr));
  auto r = test::RunEntry(machine, "main");
  // apr_now injected at its own boundary (-5); the app's direct getpid is
  // that stub's first call? No: apr_now was injected without calling the
  // original, so getpid's first call IS the app's -> -6.
  EXPECT_EQ(r.exit_code, -5 * 1000 + -6);
}

TEST(Controller, RotatePlanDrawsFromProfiles) {
  FaultProfile profile;
  profile.library = "libc.so";
  FunctionProfile fn;
  fn.name = "getpid";
  ProfileErrorCode ec;
  ec.retval = -1;
  ProfileSideEffect se;
  se.type = ProfileSideEffect::Type::Tls;
  se.module = "libc.so";
  se.offset = 0;
  se.values = {E_INTR};
  ec.side_effects.push_back(se);
  fn.error_codes.push_back(ec);
  profile.functions.push_back(fn);

  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(TwoCallApp());
  Controller controller(machine);
  Plan plan;
  FunctionTrigger t;
  t.function = "getpid";
  t.mode = FunctionTrigger::Mode::Rotate;
  plan.triggers.push_back(t);
  ASSERT_TRUE(controller.Install(plan, {profile}));
  auto r = test::RunEntry(machine, "main");
  // Both calls injected with retval -1, errno EINTR.
  EXPECT_EQ(r.exit_code, -1 * 1000 + E_INTR);
}

// ---- C stub codegen ------------------------------------------------------------

TEST(StubCodegen, EmitsPaperShapedStub) {
  Plan plan;
  FunctionTrigger t;
  t.function = "readdir64";
  t.mode = FunctionTrigger::Mode::CallCount;
  t.inject_call = 5;
  t.retval = 0;
  plan.triggers.push_back(t);
  std::string src = GenerateCStubs(plan, {});
  EXPECT_NE(src.find("int64_t readdir64(void)"), std::string::npos);
  EXPECT_NE(src.find("dlsym(RTLD_NEXT, \"readdir64\")"), std::string::npos);
  EXPECT_NE(src.find("lfi_eval_trigger"), std::string::npos);
  EXPECT_NE(src.find("call_count++"), std::string::npos);
  EXPECT_NE(src.find("jmp"), std::string::npos);  // the §5.1 pass-through
}

TEST(StubCodegen, OneStubPerDistinctFunction) {
  Plan plan;
  for (const char* fn : {"read", "read", "write"}) {
    FunctionTrigger t;
    t.function = fn;
    t.mode = FunctionTrigger::Mode::Always;
    plan.triggers.push_back(t);
  }
  std::string src = GenerateCStubs(plan, {});
  size_t count = 0;
  for (size_t at = 0; (at = src.find("Interceptor for", at)) != std::string::npos;
       ++at) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(StubCodegen, AnnotatesProfiledErrorCodes) {
  FaultProfile profile;
  profile.library = "libc.so";
  FunctionProfile fn;
  fn.name = "close";
  ProfileErrorCode ec;
  ec.retval = -1;
  fn.error_codes.push_back(ec);
  profile.functions.push_back(fn);
  Plan plan;
  FunctionTrigger t;
  t.function = "close";
  t.mode = FunctionTrigger::Mode::Always;
  plan.triggers.push_back(t);
  std::string src = GenerateCStubs(plan, {profile});
  EXPECT_NE(src.find("profiled error returns: -1"), std::string::npos);
}

TEST(StubCodegen, BoilerplateToggle) {
  Plan plan;
  FunctionTrigger t;
  t.function = "read";
  t.mode = FunctionTrigger::Mode::Always;
  plan.triggers.push_back(t);
  StubCodegenOptions opts;
  opts.emit_boilerplate = false;
  std::string src = GenerateCStubs(plan, {}, opts);
  EXPECT_EQ(src.find("#include <dlfcn.h>"), std::string::npos);
}


TEST(Controller, GlobalAndArgSideEffectsApplied) {
  // §3.2: profiles can name global and output-argument side channels; the
  // injector must apply them along with the return value. Build a library
  // whose profile (hand-written here) says: on retval -1, write 77 into
  // its global at offset 0 and into the pointer passed as argument 0.
  isa::CodeBuilder lib;
  uint32_t status_global = lib.reserve_data(8);
  lib.begin_function("dev_ioctl");
  lib.load_arg(isa::Reg::R1, 0);
  lib.mov_ri(isa::Reg::R0, 0);  // the original always succeeds
  lib.leave_ret();
  lib.end_function();

  FaultProfile profile;
  profile.library = "libdev.so";
  FunctionProfile fn;
  fn.name = "dev_ioctl";
  ProfileErrorCode ec;
  ec.retval = -1;
  ProfileSideEffect global_se;
  global_se.type = ProfileSideEffect::Type::Global;
  global_se.module = "libdev.so";
  global_se.offset = status_global;
  global_se.values = {77};
  ec.side_effects.push_back(global_se);
  ProfileSideEffect arg_se;
  arg_se.type = ProfileSideEffect::Type::Arg;
  arg_se.arg_index = 0;
  arg_se.values = {77};
  ec.side_effects.push_back(arg_se);
  fn.error_codes.push_back(ec);
  profile.functions.push_back(fn);

  // App: out = 0; dev_ioctl(&out); exit(global * 1000 + out).
  isa::CodeBuilder b;
  uint32_t out_slot = b.reserve_data(8);
  b.begin_function("main");
  b.lea_data(isa::Reg::R1, static_cast<int32_t>(out_slot));
  b.call_named("dev_ioctl", {isa::Reg::R1});
  b.lea_data(isa::Reg::R1, static_cast<int32_t>(out_slot));
  b.load(isa::Reg::R2, isa::Reg::R1, 0);  // arg side effect
  b.mov_rr(isa::Reg::R0, isa::Reg::R2);
  b.leave_ret();
  b.end_function();

  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  size_t lib_idx = machine.Load(
      sso::FromCodeUnit("libdev.so", lib.Finish(), {"libc.so"}));
  machine.Load(sso::FromCodeUnit("app.so", b.Finish(), {"libdev.so"}));
  Controller controller(machine);
  ASSERT_TRUE(
      controller.Install(OneShot("dev_ioctl", 1, -1, std::nullopt), {profile}));
  auto r = test::RunEntry(machine, "main");
  ASSERT_EQ(r.state, vm::ProcState::Exited) << r.fault;
  EXPECT_EQ(r.exit_code, 77);  // the output argument was written
  // The library global was written too.
  const auto& mod = *machine.loader().modules()[lib_idx];
  int64_t global_value = 0;
  memcpy(&global_value, mod.data_runtime.data() + status_global, 8);
  EXPECT_EQ(global_value, 77);
}

}  // namespace
}  // namespace lfi::core
