#include <gtest/gtest.h>

#include "core/profiler.hpp"
#include "corpus/libgen.hpp"
#include "corpus/table1_corpus.hpp"
#include "corpus/table2_corpus.hpp"
#include "kernel/kernel_image.hpp"
#include "test_helpers.hpp"

namespace lfi::corpus {
namespace {

LibrarySpec SmallSpec() {
  LibrarySpec spec;
  spec.name = "libtest.so";
  spec.seed = 11;
  FunctionSpec fn;
  fn.name = "f";
  fn.arg_count = 2;
  fn.detectable_documented = {-3, -7};
  fn.undetectable_documented = {-11};
  fn.detectable_undocumented = {-13};
  spec.functions.push_back(fn);
  return spec;
}

std::map<std::string, std::set<int64_t>> ProfileCodes(
    const GeneratedLibrary& lib) {
  static const sso::SharedObject kernel = kernel::BuildKernelImage();
  analysis::Workspace ws;
  ws.SetKernel(&kernel);
  ws.AddModule(&lib.object);
  core::Profiler profiler(ws);
  auto profile = profiler.ProfileLibrary(lib.object);
  EXPECT_TRUE(profile.ok());
  std::map<std::string, std::set<int64_t>> out;
  for (const auto& fn : profile.value().functions) {
    for (const auto& ec : fn.error_codes) out[fn.name].insert(ec.retval);
  }
  return out;
}

TEST(LibGen, DetectableCodesFoundByProfiler) {
  GeneratedLibrary lib = GenerateLibrary(SmallSpec());
  auto found = ProfileCodes(lib);
  EXPECT_TRUE(found["f"].count(-3));
  EXPECT_TRUE(found["f"].count(-7));
  EXPECT_TRUE(found["f"].count(-13));  // undocumented but detectable
}

TEST(LibGen, UndetectableCodesMissedByProfiler) {
  // The indirect-call construct hides -11 from static analysis (§3.1).
  GeneratedLibrary lib = GenerateLibrary(SmallSpec());
  auto found = ProfileCodes(lib);
  EXPECT_FALSE(found["f"].count(-11));
}

TEST(LibGen, DocumentationAndActualDiffer) {
  GeneratedLibrary lib = GenerateLibrary(SmallSpec());
  // docs: detectable_documented + undetectable_documented
  EXPECT_EQ(lib.documentation.at("f"),
            (std::set<int64_t>{-3, -7, -11}));
  // actual: everything the binary can really return
  EXPECT_EQ(lib.actual.at("f"), (std::set<int64_t>{-3, -7, -11, -13}));
}

TEST(LibGen, GeneratedFunctionsActuallyReturnTheirCodes) {
  // Runtime ground truth: calling f(selector) returns the selected error
  // code — including the indirect one the profiler cannot see.
  GeneratedLibrary lib = GenerateLibrary(SmallSpec());
  vm::Machine machine;
  machine.Load(lib.object);
  isa::CodeBuilder b;
  b.begin_function("main");
  b.sub_ri(isa::Reg::SP, 16);
  b.store_i(isa::Reg::BP, -8, 0);
  // Call f(1), f(2), f(3), f(4): accumulate sum of returns.
  for (int sel = 1; sel <= 4; ++sel) {
    b.mov_ri(isa::Reg::R1, sel);
    b.mov_ri(isa::Reg::R2, 0);
    b.call_named("f", {isa::Reg::R1, isa::Reg::R2});
    b.load(isa::Reg::R1, isa::Reg::BP, -8);
    b.add_rr(isa::Reg::R1, isa::Reg::R0);
    b.store(isa::Reg::BP, -8, isa::Reg::R1);
  }
  b.load(isa::Reg::R0, isa::Reg::BP, -8);
  b.leave_ret();
  b.end_function();
  machine.Load(sso::FromCodeUnit("main.so", b.Finish(), {"libtest.so"}));
  auto r = test::RunEntry(machine, "main");
  ASSERT_EQ(r.state, vm::ProcState::Exited) << r.fault;
  EXPECT_EQ(r.exit_code, -3 + -7 + -13 + -11);  // selector order of emission
}

TEST(LibGen, ShortPredicateShape) {
  LibrarySpec spec;
  spec.name = "libp.so";
  FunctionSpec fn;
  fn.name = "isFile";
  fn.short_predicate = true;
  spec.functions.push_back(fn);
  GeneratedLibrary lib = GenerateLibrary(spec);
  auto found = ProfileCodes(lib);
  EXPECT_EQ(found["isFile"], (std::set<int64_t>{0, 1}));
}

TEST(LibGen, ChannelValuesEmitted) {
  LibrarySpec spec;
  spec.name = "libc2.so";
  FunctionSpec fn;
  fn.name = "g";
  fn.arg_count = 2;
  fn.detectable_documented = {-1};
  fn.channel = ErrorChannel::Tls;
  fn.channel_values = {5};
  spec.functions.push_back(fn);
  GeneratedLibrary lib = GenerateLibrary(spec);

  static const sso::SharedObject kernel = kernel::BuildKernelImage();
  analysis::Workspace ws;
  ws.SetKernel(&kernel);
  ws.AddModule(&lib.object);
  core::Profiler profiler(ws);
  auto profile = profiler.ProfileLibrary(lib.object);
  ASSERT_TRUE(profile.ok());
  const core::FunctionProfile* g = profile.value().function("g");
  ASSERT_NE(g, nullptr);
  ASSERT_FALSE(g->error_codes.empty());
  bool has_tls = false;
  for (const auto& se : g->error_codes[0].side_effects) {
    has_tls |= se.type == core::ProfileSideEffect::Type::Tls;
  }
  EXPECT_TRUE(has_tls);
}

TEST(LibGen, ScoreAgainstDocsCountsCorrectly) {
  std::map<std::string, std::set<int64_t>> docs = {{"f", {-1, -2, -3}}};
  std::map<std::string, std::set<int64_t>> found = {{"f", {-1, -2, -9}}};
  AccuracyCount c = ScoreAgainstDocs(docs, found);
  EXPECT_EQ(c.tp, 2u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_NEAR(c.accuracy(), 0.5, 1e-9);
}

TEST(LibGen, ScoreHandlesDisjointFunctionSets) {
  std::map<std::string, std::set<int64_t>> docs = {{"only_doc", {-1}}};
  std::map<std::string, std::set<int64_t>> found = {{"only_found", {-2}}};
  AccuracyCount c = ScoreAgainstDocs(docs, found);
  EXPECT_EQ(c.tp, 0u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
}

// ---- Table 2 -------------------------------------------------------------------

TEST(Table2, ReferenceHas18Entries) {
  EXPECT_EQ(Table2Reference().size(), 18u);
}

TEST(Table2, GeneratedCodeBudgetsMatchPaperCounts) {
  // For a mid-size entry, the spec's TP/FN/FP code budgets must be fully
  // distributed across the generated functions.
  const Table2Entry& entry = Table2Reference()[9];  // libdmx: 26/8/0
  GeneratedLibrary lib = GenerateTable2Library(entry, 42);
  size_t tp = 0, fn = 0, fp = 0;
  for (const auto& f : lib.spec.functions) {
    tp += f.detectable_documented.size();
    fn += f.undetectable_documented.size();
    fp += f.detectable_undocumented.size();
  }
  EXPECT_EQ(tp, entry.paper_tp);
  EXPECT_EQ(fn, entry.paper_fn);
  EXPECT_EQ(fp, entry.paper_fp);
  EXPECT_EQ(lib.spec.functions.size(), entry.function_count);
}

TEST(Table2, MeasuredAccuracyTracksPaper) {
  // Run the real profiler against a generated library and score against
  // its documentation: the result must land on the paper's accuracy.
  const Table2Entry& entry = Table2Reference()[9];  // libdmx: 76%
  GeneratedLibrary lib = GenerateTable2Library(entry, 42);
  auto found = ProfileCodes(lib);
  AccuracyCount c = ScoreAgainstDocs(lib.documentation, found);
  EXPECT_EQ(c.tp, entry.paper_tp);
  EXPECT_EQ(c.fn, entry.paper_fn);
  EXPECT_EQ(c.fp, entry.paper_fp);
  EXPECT_NEAR(c.accuracy() * 100, entry.paper_accuracy_pct, 2.0);
}

TEST(Table2, LibpcreManualGroundTruth) {
  // §6.3: scored against the binary's actual behaviour, not docs.
  const Table2Entry& entry = LibpcreReference();
  GeneratedLibrary lib = GenerateTable2Library(entry, 7);
  auto found = ProfileCodes(lib);
  AccuracyCount c = ScoreAgainstDocs(lib.actual, found);
  EXPECT_EQ(c.tp, entry.paper_tp);
  EXPECT_EQ(c.fn, entry.paper_fn);
  EXPECT_NEAR(c.accuracy() * 100, 84.0, 2.0);
}

// ---- Table 1 -------------------------------------------------------------------

TEST(Table1, FractionsSumToOne) {
  double total = 0;
  for (const auto& cell : Table1Reference()) total += cell.fraction;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Table1, CorpusMatchesRequestedSize) {
  Table1Corpus corpus = GenerateTable1Corpus(5, 500, 4);
  EXPECT_EQ(corpus.total_functions, 500u);
  EXPECT_EQ(corpus.libraries.size(), 4u);
}

TEST(Table1, PrototypeDistributionFollowsReference) {
  Table1Corpus corpus = GenerateTable1Corpus(5, 2000, 8);
  size_t void_count = 0, scalar = 0, pointer = 0;
  for (const auto& lib : corpus.libraries) {
    for (const auto& [name, kind] : lib.prototypes) {
      if (kind == ReturnKind::Void) ++void_count;
      else if (kind == ReturnKind::Scalar) ++scalar;
      else ++pointer;
    }
  }
  double total = static_cast<double>(corpus.total_functions);
  EXPECT_NEAR(void_count / total, 0.23, 0.02);
  EXPECT_NEAR(scalar / total, 0.61, 0.02);
  EXPECT_NEAR(pointer / total, 0.16, 0.02);
}

TEST(Table1, ChannelsMeasurableByProfiler) {
  // Spot-check: a small corpus's Arg-channel functions are classified as
  // such by the side-effects analysis.
  Table1Corpus corpus = GenerateTable1Corpus(9, 300, 2);
  static const sso::SharedObject kernel = kernel::BuildKernelImage();
  size_t arg_expected = 0, arg_found = 0;
  for (const auto& lib : corpus.libraries) {
    analysis::Workspace ws;
    ws.SetKernel(&kernel);
    ws.AddModule(&lib.object);
    analysis::ConstPropAnalyzer analyzer(ws);
    for (const auto& fspec : lib.spec.functions) {
      if (fspec.channel != ErrorChannel::Arg) continue;
      ++arg_expected;
      auto effects = analyzer.ScanAllEffects(lib.object, fspec.name);
      ASSERT_TRUE(effects.ok());
      for (const auto& e : effects.value()) {
        if (e.kind == analysis::SideEffect::Kind::Arg) {
          ++arg_found;
          break;
        }
      }
    }
  }
  ASSERT_GT(arg_expected, 0u);
  EXPECT_EQ(arg_found, arg_expected);
}

}  // namespace
}  // namespace lfi::corpus
