// CoverageBitmap / CoverageTracker tests: bitmap semantics, union merge
// correctness (empty / disjoint / overlapping), and the reuse behaviour
// the campaign runner depends on (Clear keeps sizing).
#include <gtest/gtest.h>

#include "vm/coverage.hpp"

namespace lfi::vm {
namespace {

TEST(CoverageBitmap, SetTestCount) {
  CoverageBitmap bm(256);
  EXPECT_EQ(bm.Count(), 0u);
  EXPECT_TRUE(bm.Empty());
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(255);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(255));
  EXPECT_FALSE(bm.Test(1));
  EXPECT_EQ(bm.Count(), 4u);
  // Setting the same bit twice does not double-count.
  bm.Set(64);
  EXPECT_EQ(bm.Count(), 4u);
}

TEST(CoverageBitmap, OutOfRangeIsIgnored) {
  CoverageBitmap bm(100);
  bm.Set(100);  // one past the end
  bm.Set(4096);
  EXPECT_EQ(bm.Count(), 0u);
  EXPECT_FALSE(bm.Test(100));
  EXPECT_FALSE(bm.Test(4096));
}

TEST(CoverageBitmap, MergeEmpty) {
  CoverageBitmap a(128), b(128);
  a.Set(7);
  CoverageBitmap before = a;
  a.Merge(b);  // union with the empty set is a no-op
  EXPECT_EQ(a, before);
  b.Merge(a);  // empty |= a  ==  a
  EXPECT_EQ(b, a);
}

TEST(CoverageBitmap, MergeDisjoint) {
  CoverageBitmap a(128), b(128);
  a.Set(1);
  a.Set(70);
  b.Set(2);
  b.Set(127);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 4u);
  for (uint32_t off : {1u, 2u, 70u, 127u}) EXPECT_TRUE(a.Test(off));
}

TEST(CoverageBitmap, MergeOverlapping) {
  CoverageBitmap a(128), b(128);
  a.Set(5);
  a.Set(66);
  b.Set(66);
  b.Set(9);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 3u);  // 66 counted once
  EXPECT_TRUE(a.Test(5));
  EXPECT_TRUE(a.Test(9));
  EXPECT_TRUE(a.Test(66));
}

TEST(CoverageBitmap, MergeGrowsDestination) {
  CoverageBitmap small(10), big(500);
  small.Set(3);
  big.Set(400);
  small.Merge(big);
  EXPECT_GE(small.size_bits(), 500u);
  EXPECT_TRUE(small.Test(3));
  EXPECT_TRUE(small.Test(400));
}

TEST(CoverageBitmap, EqualityIgnoresSizePadding) {
  // Same covered set, different sizing: equal (trailing zeros don't count).
  CoverageBitmap a(64), b(640);
  a.Set(12);
  b.Set(12);
  EXPECT_EQ(a, b);
  b.Set(300);
  EXPECT_NE(a, b);
}

TEST(CoverageBitmap, ToOffsetsAscending) {
  CoverageBitmap bm(200);
  bm.Set(190);
  bm.Set(0);
  bm.Set(65);
  EXPECT_EQ(bm.ToOffsets(), (std::vector<uint32_t>{0, 65, 190}));
}

TEST(CoverageTracker, RecordRespectsModuleSizing) {
  CoverageTracker tracker;
  tracker.EnsureModule(0, 100);
  tracker.EnsureModule(1, 50);
  tracker.Record(0, 10);
  tracker.Record(1, 49);
  tracker.Record(2, 5);   // unknown module: dropped, no allocation
  tracker.Record(1, 90);  // past module text: dropped
  EXPECT_TRUE(tracker.was_executed(0, 10));
  EXPECT_TRUE(tracker.was_executed(1, 49));
  EXPECT_FALSE(tracker.was_executed(2, 5));
  EXPECT_FALSE(tracker.was_executed(1, 90));
  EXPECT_EQ(tracker.covered(0), 1u);
  EXPECT_EQ(tracker.covered_total(), 2u);
}

TEST(CoverageTracker, MergeUnionsPerModule) {
  CoverageTracker a, b;
  a.EnsureModule(0, 100);
  b.EnsureModule(0, 100);
  b.EnsureModule(1, 100);
  a.Record(0, 1);
  b.Record(0, 2);
  b.Record(1, 3);
  a.Merge(b);
  EXPECT_TRUE(a.was_executed(0, 1));
  EXPECT_TRUE(a.was_executed(0, 2));
  EXPECT_TRUE(a.was_executed(1, 3));
  EXPECT_EQ(a.covered_total(), 3u);
  // Merge order does not matter: b | a == a | b as coverage sets.
  CoverageTracker c;
  c.Merge(b);
  c.Record(0, 1);
  EXPECT_EQ(c.covered_total(), a.covered_total());
}

TEST(CoverageTracker, ClearKeepsSizing) {
  CoverageTracker tracker;
  tracker.EnsureModule(0, 100);
  tracker.Record(0, 42);
  tracker.Clear();
  EXPECT_EQ(tracker.covered_total(), 0u);
  // Records still land after Clear — the bitmaps kept their sizing.
  tracker.Record(0, 42);
  EXPECT_TRUE(tracker.was_executed(0, 42));
}

TEST(CoverageBitmap, CountNotInBasics) {
  CoverageBitmap a(128), b(128);
  a.Set(1);
  a.Set(70);
  a.Set(127);
  b.Set(70);
  EXPECT_EQ(a.CountNotIn(b), 2u);   // 1 and 127 are fresh
  EXPECT_EQ(b.CountNotIn(a), 0u);   // b is a subset of a
  EXPECT_EQ(a.CountNotIn(a), 0u);
}

TEST(CoverageBitmap, CountNotInOtherShorterClampsToFresh) {
  // `other` smaller than this bitmap: the documented clamp treats other's
  // missing tail as all-clear, so bits past its size count as fresh. This
  // is the explorer's first-round shape — the union bitmap starts out
  // default-constructed (zero-size).
  CoverageBitmap a(256);
  a.Set(3);
  a.Set(200);  // beyond other's 64 bits entirely
  CoverageBitmap small(64);
  small.Set(3);
  EXPECT_EQ(a.CountNotIn(small), 1u);  // only 200 is fresh
  CoverageBitmap empty;
  EXPECT_EQ(a.CountNotIn(empty), a.Count());
}

TEST(CoverageBitmap, CountNotInOtherLongerIgnoresItsTail) {
  // `other` larger than this bitmap: its extra bits cannot affect "set
  // here but not there", and the loop never reads past this bitmap.
  CoverageBitmap a(64);
  a.Set(10);
  CoverageBitmap big(512);
  big.Set(10);
  big.Set(300);
  big.Set(500);
  EXPECT_EQ(a.CountNotIn(big), 0u);
  a.Set(11);
  EXPECT_EQ(a.CountNotIn(big), 1u);
}

}  // namespace
}  // namespace lfi::vm
