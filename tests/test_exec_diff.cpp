// Differential tests for the predecoded execution engine: every tier-1
// workload must behave bit-identically on the fused decode-once loop
// (ExecMode::Predecoded) and the reference decode-per-step path
// (ExecMode::Reference) — instruction counts, exit codes, faults, coverage
// bitmaps, and injection logs. Plus code-cache lifecycle tests across
// interposition reinstall, Machine::Reset, and post-run module loads.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/dbserver.hpp"
#include "apps/workloads.hpp"
#include "core/controller.hpp"
#include "core/scenario_gen.hpp"
#include "libc/libc_builder.hpp"
#include "test_helpers.hpp"
#include "vm/machine.hpp"

namespace lfi {
namespace {

using isa::CodeBuilder;
using isa::Reg;

/// Everything an engine run can observably produce.
struct ExecOutcome {
  vm::ProcState state = vm::ProcState::Exited;
  int64_t exit_code = 0;
  vm::Signal signal = vm::Signal::None;
  std::string fault_message;
  uint64_t total_instructions = 0;
  uint64_t proc_instructions = 0;
  std::vector<std::vector<uint32_t>> coverage;  // per module index
  std::vector<std::string> injections;          // formatted log records
  std::string replay_xml;
};

void ExpectIdentical(const ExecOutcome& pre, const ExecOutcome& ref) {
  EXPECT_EQ(pre.state, ref.state);
  EXPECT_EQ(pre.exit_code, ref.exit_code);
  EXPECT_EQ(pre.signal, ref.signal);
  EXPECT_EQ(pre.fault_message, ref.fault_message);
  EXPECT_EQ(pre.total_instructions, ref.total_instructions);
  EXPECT_EQ(pre.proc_instructions, ref.proc_instructions);
  EXPECT_EQ(pre.coverage, ref.coverage);
  EXPECT_EQ(pre.injections, ref.injections);
  EXPECT_EQ(pre.replay_xml, ref.replay_xml);
}

std::vector<std::string> FormatLog(const core::InjectionLog& log) {
  std::vector<std::string> out;
  for (const core::InjectionRecord& r : log.records()) {
    std::string line = log.function_name(r);
    line += " call=" + std::to_string(r.call_number);
    if (r.has_retval) line += " ret=" + std::to_string(r.retval);
    if (r.errno_value) line += " errno=" + std::to_string(*r.errno_value);
    if (r.call_original) line += " orig";
    for (const auto& [idx, v] : r.modified_args) {
      line += " arg" + std::to_string(idx) + "=" + std::to_string(v);
    }
    out.push_back(std::move(line));
  }
  return out;
}

/// One DB-suite regression run under a random libc faultload.
ExecOutcome RunDbSuiteOnce(vm::ExecMode mode, uint64_t seed) {
  vm::Machine machine;
  machine.SetExecMode(mode);
  apps::DbSuiteMachineSetup()(machine);
  vm::CoverageTracker* cov = machine.EnableCoverage();
  core::Controller controller(machine);
  core::Plan plan = core::GenerateRandom(apps::LibcProfiles(), 0.3, seed);
  EXPECT_TRUE(controller.Install(plan, apps::LibcProfiles()).ok());
  auto pid = machine.CreateProcess(apps::kDbTestEntry);
  ExecOutcome out;
  if (!pid.ok()) return out;
  auto info = machine.RunToCompletion(pid.value(), 50'000'000);
  out.state = info.state;
  out.exit_code = info.exit_code;
  out.signal = info.signal;
  out.fault_message = info.fault_message;
  out.total_instructions = machine.total_instructions();
  out.proc_instructions = machine.process(pid.value())->instructions();
  for (size_t m = 0; m < cov->module_count(); ++m) {
    out.coverage.push_back(cov->executed(m).ToOffsets());
  }
  out.injections = FormatLog(controller.log());
  out.replay_xml = controller.GenerateReplay().ToXml();
  return out;
}

TEST(ExecDiff, DbSuiteIdenticalAcrossEngines) {
  for (uint64_t seed : {7u, 21u, 93u, 400u}) {
    ExecOutcome pre = RunDbSuiteOnce(vm::ExecMode::Predecoded, seed);
    ExecOutcome ref = RunDbSuiteOnce(vm::ExecMode::Reference, seed);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ExpectIdentical(pre, ref);
    EXPECT_GT(pre.total_instructions, 0u);
  }
}

/// The Pidgin scenario through the public workload driver, switching the
/// engine via the LFI_EXEC environment override the driver's machines
/// obey. Both legs set the variable explicitly (an inherited
/// LFI_EXEC=reference must not turn the Predecoded leg into
/// reference-vs-reference), and the caller's value is restored after.
apps::PidginRunResult RunPidginInMode(vm::ExecMode mode, uint64_t seed) {
  const char* prev = getenv("LFI_EXEC");
  std::string saved = prev ? prev : "";
  setenv("LFI_EXEC",
         mode == vm::ExecMode::Reference ? "reference" : "predecoded", 1);
  apps::PidginRunResult r = apps::RunPidginRandomIo(0.1, seed);
  if (prev) {
    setenv("LFI_EXEC", saved.c_str(), 1);
  } else {
    unsetenv("LFI_EXEC");
  }
  return r;
}

TEST(ExecDiff, PidginScenarioIdenticalAcrossEngines) {
  bool any_abort = false;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    apps::PidginRunResult pre = RunPidginInMode(vm::ExecMode::Predecoded, seed);
    apps::PidginRunResult ref = RunPidginInMode(vm::ExecMode::Reference, seed);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    EXPECT_EQ(pre.aborted, ref.aborted);
    EXPECT_EQ(pre.deadlocked, ref.deadlocked);
    EXPECT_EQ(pre.exit_code, ref.exit_code);
    EXPECT_EQ(pre.fault_message, ref.fault_message);
    EXPECT_EQ(pre.injections, ref.injections);
    EXPECT_EQ(pre.replay.ToXml(), ref.replay.ToXml());
    any_abort |= pre.aborted;
  }
  // The bug should still fire somewhere in this seed range on both engines.
  EXPECT_TRUE(any_abort);
}

// ---- code-cache lifecycle ----------------------------------------------------

sso::SharedObject TwiceApp() {
  CodeBuilder b;
  b.begin_function("twice");
  b.mov_ri(Reg::R0, 7);
  b.leave_ret();
  b.end_function();
  b.begin_function("main");
  b.call_sym("twice");  // through the PLT: interposable
  b.leave_ret();
  b.end_function();
  return sso::FromCodeUnit("app.so", b.Finish());
}

TEST(CodeCache, SurvivesReinstallAndReset) {
  vm::Machine machine;
  machine.SetExecMode(vm::ExecMode::Predecoded);
  machine.Load(libc::BuildLibc());
  machine.Load(TwiceApp());

  EXPECT_EQ(test::RunEntry(machine, "main").exit_code, 7);

  // Interposition reinstall bumps the loader generation: resolution must
  // change while the predecoded streams stay valid.
  machine.loader().RegisterNative(
      "twice", [](vm::NativeFrame&) { return vm::NativeAction::Ret(99); });
  machine.Reset();
  EXPECT_EQ(test::RunEntry(machine, "main").exit_code, 99);

  // Uninstalling (ClearNatives) must re-resolve to the original again.
  machine.loader().ClearNatives();
  machine.Reset();
  EXPECT_EQ(test::RunEntry(machine, "main").exit_code, 7);

  // A module loaded after processes have run gets its stream on demand.
  CodeBuilder b2;
  b2.begin_function("entry2");
  b2.mov_ri(Reg::R0, 42);
  b2.leave_ret();
  b2.end_function();
  machine.Load(sso::FromCodeUnit("late.so", b2.Finish()));
  machine.Reset();
  EXPECT_EQ(test::RunEntry(machine, "entry2").exit_code, 42);

  // Stream invariants: every module has a stream whose slot<->offset maps
  // round-trip.
  const vm::Loader& loader = machine.loader();
  for (const auto& mod : loader.modules()) {
    const vm::CodeCache::ModuleStream* stream =
        loader.code_cache().stream(mod->index);
    ASSERT_NE(stream, nullptr) << mod->object.name;
    ASSERT_FALSE(stream->instrs.empty()) << mod->object.name;
    ASSERT_EQ(stream->slot_of_offset.size(), mod->object.code.size());
    for (uint32_t slot = 0; slot < stream->instrs.size(); ++slot) {
      EXPECT_EQ(stream->slot_of_offset[stream->instrs[slot].offset], slot);
    }
  }
}

/// A jump into the middle of an instruction has no predecoded slot; the
/// fallback decoder must produce the exact reference fault.
TEST(CodeCache, MidInstructionJumpMatchesReference) {
  auto build = [] {
    CodeBuilder b;
    b.begin_function("main");
    // Prologue is 5 bytes (push bp; mov bp, sp); this MOV_RI sits at
    // offset 5, so its imm64 begins at offset 7. The low imm byte 0xFF is
    // not a valid opcode — jumping there must SIGILL identically on both
    // engines.
    b.mov_ri(Reg::R2, 0xFF);
    b.mov_ri(Reg::R3,
             static_cast<int64_t>(vm::ModuleCodeBase(1) + 7));
    b.jmp_ind(Reg::R3);
    b.leave_ret();
    b.end_function();
    return sso::FromCodeUnit("app.so", b.Finish());
  };
  auto run = [&](vm::ExecMode mode) {
    vm::Machine machine;  // kernel is module 0, app is module 1
    machine.SetExecMode(mode);
    machine.Load(build());
    return test::RunEntry(machine, "main");
  };
  test::RunResult pre = run(vm::ExecMode::Predecoded);
  test::RunResult ref = run(vm::ExecMode::Reference);
  EXPECT_EQ(pre.state, vm::ProcState::Faulted);
  EXPECT_EQ(pre.state, ref.state);
  EXPECT_EQ(pre.signal, vm::Signal::Ill);
  EXPECT_EQ(pre.signal, ref.signal);
  EXPECT_EQ(pre.fault, ref.fault);
  EXPECT_NE(pre.fault.find("unknown opcode"), std::string::npos) << pre.fault;
}

}  // namespace
}  // namespace lfi
