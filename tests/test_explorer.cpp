// Explorer tests: jobs-invariance of the whole exploration (union bitmap,
// crash-hash set, minimized plans), the closed-loop-beats-open-loop
// acceptance check on the Pidgin target, and crash triage/minimization
// end to end on a small crashing target.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "apps/pidgin.hpp"
#include "apps/workloads.hpp"
#include "campaign/explorer.hpp"
#include "core/scenario_gen.hpp"
#include "isa/codebuilder.hpp"
#include "libc/libc_builder.hpp"

namespace lfi::campaign {
namespace {

using isa::CodeBuilder;
using isa::Reg;

/// A demo target with an unchecked read(): open /cfg, read 64 bytes,
/// abort on a negative count (the classic LFI victim).
sso::SharedObject BuildReaderApp() {
  CodeBuilder b;
  uint32_t path = b.emit_data({'/', 'c', 'f', 'g', 0});
  uint32_t buf = b.reserve_data(128);
  b.begin_function("main");
  b.sub_ri(Reg::SP, 16);
  b.mov_ri(Reg::R2, libc::O_RDONLY);
  b.lea_data(Reg::R1, static_cast<int32_t>(path));
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("open");
  b.add_ri(Reg::SP, 16);
  b.store(Reg::BP, -8, Reg::R0);
  b.load(Reg::R1, Reg::BP, -8);
  b.lea_data(Reg::R2, static_cast<int32_t>(buf));
  b.mov_ri(Reg::R3, 64);
  b.push(Reg::R3);
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("read");
  b.add_ri(Reg::SP, 24);
  auto ok = b.new_label();
  b.cmp_ri(Reg::R0, 0);
  b.jge(ok);
  b.call_sym("abort");
  b.bind(ok);
  b.load(Reg::R1, Reg::BP, -8);
  b.push(Reg::R1);
  b.call_sym("close");
  b.add_ri(Reg::SP, 8);
  b.mov_ri(Reg::R0, 0);
  b.leave_ret();
  b.end_function();
  return sso::FromCodeUnit("readerapp.so", b.Finish(), {libc::kLibcName});
}

MachineSetup ReaderSetup() {
  auto libc_so = std::make_shared<const sso::SharedObject>(libc::BuildLibc());
  auto app = std::make_shared<const sso::SharedObject>(BuildReaderApp());
  return [libc_so, app](vm::Machine& machine) {
    machine.Load(*libc_so);
    machine.Load(*app);
    machine.kernel().add_file("/cfg", std::vector<uint8_t>(64, 'x'));
  };
}

ExplorerReport ExploreReader(int jobs, uint64_t seed) {
  ExplorerOptions opts;
  opts.rounds = 3;
  opts.scenarios_per_round = 10;
  opts.seed = seed;
  opts.seed_probability = 0.3;
  opts.campaign.jobs = jobs;
  Explorer explorer(ReaderSetup(), apps::LibcProfiles(), opts);
  return explorer.Explore();
}

/// Directed-mode exploration of the reader target: CFG-distance fitness
/// plus the feasible-only injection gate, with execution knobs exposed so
/// the determinism matrix (jobs / engines / snapshot modes) can vary them.
ExplorerReport ExploreReaderDirected(int jobs, uint64_t seed,
                                     std::optional<vm::ExecMode> mode = {},
                                     bool snapshot = false,
                                     bool snapshot_tree = false) {
  ExplorerOptions opts;
  opts.rounds = 3;
  opts.scenarios_per_round = 10;
  opts.seed = seed;
  opts.seed_probability = 0.3;
  opts.fitness = FitnessKind::CfgDistance;
  opts.campaign.controller.feasible_only = true;
  opts.campaign.jobs = jobs;
  opts.campaign.exec_mode = mode;
  opts.campaign.snapshot = snapshot;
  opts.campaign.snapshot_tree = snapshot_tree;
  Explorer explorer(ReaderSetup(), apps::LibcProfiles(), opts);
  return explorer.Explore();
}

void ExpectSameExploration(const ExplorerReport& a, const ExplorerReport& b) {
  // Union coverage: bit-identical per module.
  EXPECT_EQ(a.coverage, b.coverage);
  // Round stats: every jobs-invariant field.
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].crashes, b.rounds[i].crashes) << "round " << i;
    EXPECT_EQ(a.rounds[i].new_crash_buckets, b.rounds[i].new_crash_buckets);
    EXPECT_EQ(a.rounds[i].winners, b.rounds[i].winners) << "round " << i;
    EXPECT_EQ(a.rounds[i].new_offsets, b.rounds[i].new_offsets);
    EXPECT_EQ(a.rounds[i].union_offsets, b.rounds[i].union_offsets);
    EXPECT_EQ(a.rounds[i].corpus_size, b.rounds[i].corpus_size);
  }
  // Corpus: same plans in the same admission order.
  ASSERT_EQ(a.corpus.size(), b.corpus.size());
  for (size_t i = 0; i < a.corpus.size(); ++i) {
    EXPECT_EQ(a.corpus[i].ToXml(), b.corpus[i].ToXml()) << "corpus " << i;
  }
  // Crashes: same buckets, same minimized reproducers.
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].hash, b.crashes[i].hash) << "crash " << i;
    EXPECT_EQ(a.crashes[i].site_hash, b.crashes[i].site_hash);
    EXPECT_EQ(a.crashes[i].signature, b.crashes[i].signature);
    EXPECT_EQ(a.crashes[i].count, b.crashes[i].count);
    EXPECT_EQ(a.crashes[i].first_round, b.crashes[i].first_round);
    EXPECT_EQ(a.crashes[i].replay.ToXml(), b.crashes[i].replay.ToXml());
    EXPECT_EQ(a.crashes[i].minimized.ToXml(), b.crashes[i].minimized.ToXml());
    EXPECT_EQ(a.crashes[i].minimize_runs, b.crashes[i].minimize_runs);
  }
}

// Same seed, any jobs count: bit-identical corpus-union bitmap, identical
// crash-hash set, identical minimized plans. This is the exploration
// analogue of Campaign.DeterministicAcrossJobCounts.
TEST(Explorer, DeterministicAcrossJobCounts) {
  ExplorerReport serial = ExploreReader(1, 42);
  ExplorerReport parallel = ExploreReader(4, 42);

  // The exploration must be non-trivial for the comparison to mean much.
  EXPECT_GT(serial.union_offsets(), 0u);
  ASSERT_FALSE(serial.crashes.empty());
  ExpectSameExploration(serial, parallel);
}

// Every unique crash ships with a minimized reproducer that (a) is no
// larger than the replay it came from, (b) still reproduces the same
// crash site when run standalone, and (c) is 1-minimal per the oracle.
TEST(Explorer, MinimizedReproducersReproduce) {
  ExplorerReport report = ExploreReader(2, 7);
  ASSERT_FALSE(report.crashes.empty());

  auto profiles = std::make_shared<const std::vector<core::FaultProfile>>(
      apps::LibcProfiles());
  PlanRunner oracle(ReaderSetup(), profiles);
  for (const CrashReport& cr : report.crashes) {
    EXPECT_TRUE(cr.reproduces) << cr.signature;
    EXPECT_LE(cr.minimized.triggers.size(), cr.replay.triggers.size());
    EXPECT_GE(cr.minimized.triggers.size(), 1u);
    // Independent re-verification through a fresh oracle.
    ScenarioResult check = oracle.Run(cr.minimized);
    EXPECT_EQ(check.status, ScenarioStatus::Crashed) << cr.signature;
    EXPECT_EQ(check.crash_site_hash, cr.site_hash) << cr.signature;
  }
}

// Crash triage buckets deduplicate: the reader app aborts at one site, so
// however many scenarios crash, they collapse into few buckets.
TEST(Explorer, TriageDeduplicatesCrashes) {
  ExplorerReport report = ExploreReader(1, 11);
  size_t crashed_scenarios = 0;
  for (const RoundStats& rs : report.rounds) crashed_scenarios += rs.crashes;
  ASSERT_GT(crashed_scenarios, 1u);
  ASSERT_FALSE(report.crashes.empty());
  EXPECT_LT(report.crashes.size(), crashed_scenarios);
  size_t bucketed = 0;
  for (const CrashReport& cr : report.crashes) bucketed += cr.count;
  EXPECT_EQ(bucketed, crashed_scenarios);
}

// The union coverage never shrinks across rounds, and winners are exactly
// the scenarios that grew it.
TEST(Explorer, UnionCoverageIsMonotone) {
  ExplorerReport report = ExploreReader(2, 3);
  size_t prev = 0;
  for (const RoundStats& rs : report.rounds) {
    EXPECT_GE(rs.union_offsets, prev);
    EXPECT_EQ(rs.union_offsets, prev + rs.new_offsets);
    prev = rs.union_offsets;
  }
  EXPECT_EQ(report.union_offsets(), prev);
}

// The fitness seam must not disturb the jobs-invariance contract:
// CFG-distance selection (with feasible-only injection) is bit-identical
// for any jobs count, exactly like coverage fitness.
TEST(Explorer, CfgDistanceDeterministicAcrossJobCounts) {
  ExplorerReport serial = ExploreReaderDirected(1, 42);
  ExplorerReport parallel = ExploreReaderDirected(4, 42);
  EXPECT_GT(serial.union_offsets(), 0u);
  ExpectSameExploration(serial, parallel);
}

// ... and across execution engines and snapshot modes: the fitness only
// consumes engine-invariant inputs (bitmaps, block graphs), so the whole
// directed exploration is identical under every execution strategy.
TEST(Explorer, CfgDistanceBitIdenticalAcrossEnginesAndSnapshotModes) {
  ExplorerReport base = ExploreReaderDirected(2, 9);
  ExplorerReport reference =
      ExploreReaderDirected(2, 9, vm::ExecMode::Reference);
  ExplorerReport predecoded =
      ExploreReaderDirected(2, 9, vm::ExecMode::Predecoded);
  ExplorerReport snapshot =
      ExploreReaderDirected(2, 9, {}, /*snapshot=*/true);
  ExplorerReport tree = ExploreReaderDirected(2, 9, {}, /*snapshot=*/false,
                                              /*snapshot_tree=*/true);
  EXPECT_GT(base.union_offsets(), 0u);
  ExpectSameExploration(base, reference);
  ExpectSameExploration(base, predecoded);
  ExpectSameExploration(base, snapshot);
  ExpectSameExploration(base, tree);
}

TEST(Fitness, ParseAndName) {
  EXPECT_EQ(ParseFitnessKind("coverage"), FitnessKind::Coverage);
  EXPECT_EQ(ParseFitnessKind("cfg-distance"), FitnessKind::CfgDistance);
  EXPECT_FALSE(ParseFitnessKind("afl").has_value());
  EXPECT_STREQ(FitnessKindName(FitnessKind::Coverage), "coverage");
  EXPECT_STREQ(FitnessKindName(FitnessKind::CfgDistance), "cfg-distance");
}

// The RNG-stream contract behind the seam: CoverageFitness consumes
// exactly the one below() the pre-seam explorer drew, CfgDistanceFitness
// exactly two — in both cases independent of scores, so the mutation
// stream after parent selection stays aligned.
TEST(Fitness, SelectParentDrawCountIsFixed) {
  CoverageFitness cov;
  Rng a(123), b(123);
  EXPECT_EQ(cov.SelectParent(7, a), b.below(7));
  EXPECT_EQ(a.next(), b.next());  // streams still aligned afterwards

  CfgDistanceFitness directed(ReaderSetup());
  Rng c(123), d(123);
  size_t picked = directed.SelectParent(7, c);
  uint64_t x = d.below(7);
  uint64_t y = d.below(7);
  // No BeginRound yet: the tournament falls back to the raw rank.
  EXPECT_EQ(picked, std::min(x, y));
  EXPECT_EQ(c.next(), d.next());
}

// CFG-distance scoring prefers corpus members whose coverage sits near
// (here: on) uncovered error-handling blocks.
TEST(Fitness, CfgDistanceScoresProximityToErrorBlocks) {
  CfgDistanceFitness fitness(ReaderSetup());
  // Member 1 covers the reader app wall to wall (including its abort
  // guard's failure block); member 0 covers nothing. Order chosen so the
  // ranking is by score, not index.
  vm::CoverageBitmap everything(1 << 14);
  for (uint32_t off = 0; off < everything.size_bits(); ++off) {
    everything.Set(off);
  }
  std::map<std::string, vm::CoverageBitmap> full;
  full["readerapp.so"] = everything;
  std::vector<std::map<std::string, vm::CoverageBitmap>> corpus;
  corpus.push_back({});
  corpus.push_back(full);
  fitness.BeginRound(corpus, {});  // empty union: every error block counts
  ASSERT_EQ(fitness.scores().size(), 2u);
  EXPECT_GT(fitness.scores()[1], 0.0);
  EXPECT_EQ(fitness.scores()[0], 0.0);

  // The tournament favors rank 0 (the scorer) 3:1 for a corpus of two.
  Rng rng(5);
  size_t high_scorer_picks = 0;
  for (int i = 0; i < 200; ++i) {
    if (fitness.SelectParent(2, rng) == 1) ++high_scorer_picks;
  }
  EXPECT_GT(high_scorer_picks, 100u);
  EXPECT_LT(high_scorer_picks, 200u);  // low scorers still reproduce
}

// Acceptance (ISSUE 3): on the Pidgin target, 3 explorer rounds reach
// strictly higher merged coverage than a one-shot GenerateRandom campaign
// with the same total scenario budget and seed — and every reported crash
// ships with a minimized replay plan that still reproduces it.
TEST(Explorer, BeatsOneShotRandomOnPidginAtEqualBudget) {
  constexpr size_t kRounds = 3;
  constexpr size_t kBudget = 12;
  constexpr uint64_t kSeed = 1;
  constexpr double kP = 0.1;
  const std::vector<core::FaultProfile>& profiles = apps::LibcProfiles();

  // Open loop: one campaign of rounds*budget independently-seeded random
  // scenarios.
  std::vector<Scenario> one_shot_set;
  for (size_t i = 0; i < kRounds * kBudget; ++i) {
    Scenario s;
    s.name = "one-shot-" + std::to_string(i);
    s.plan = core::GenerateRandom(profiles, kP, DeriveSeed(kSeed, i));
    one_shot_set.push_back(std::move(s));
  }
  CampaignOptions copts;
  copts.jobs = 2;
  copts.entry = apps::kPidginEntry;
  copts.track_coverage = true;
  CampaignRunner one_shot_runner(apps::PidginMachineSetup(), profiles, copts);
  CampaignReport one_shot = one_shot_runner.Run(one_shot_set);
  size_t one_shot_union = 0;
  for (const auto& [mod, bitmap] : one_shot.coverage) {
    one_shot_union += bitmap.Count();
  }
  ASSERT_GT(one_shot_union, 0u);

  // Closed loop: same budget, same seed, coverage-guided.
  ExplorerOptions eopts;
  eopts.rounds = kRounds;
  eopts.scenarios_per_round = kBudget;
  eopts.seed = kSeed;
  eopts.seed_probability = kP;
  eopts.campaign.jobs = 2;
  eopts.campaign.entry = apps::kPidginEntry;
  Explorer explorer(apps::PidginMachineSetup(), profiles, eopts);
  ExplorerReport evolved = explorer.Explore();

  EXPECT_GT(evolved.union_offsets(), one_shot_union)
      << "coverage-guided exploration must beat the open loop at equal "
         "budget";

  // The hunt must find the resolver bug, and its reproducer must stand.
  ASSERT_FALSE(evolved.crashes.empty());
  auto oracle_profiles =
      std::make_shared<const std::vector<core::FaultProfile>>(profiles);
  CampaignOptions oracle_opts;
  oracle_opts.entry = apps::kPidginEntry;
  PlanRunner oracle(apps::PidginMachineSetup(), oracle_profiles, oracle_opts);
  for (const CrashReport& cr : evolved.crashes) {
    EXPECT_TRUE(cr.reproduces) << cr.signature;
    ScenarioResult check = oracle.Run(cr.minimized);
    EXPECT_EQ(check.status, ScenarioStatus::Crashed) << cr.signature;
    EXPECT_EQ(check.crash_site_hash, cr.site_hash) << cr.signature;
  }
}

}  // namespace
}  // namespace lfi::campaign
