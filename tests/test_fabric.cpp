// Campaign fabric integration tests: the distributed invariance story.
//
// Every test here asserts the same thing from a different angle: a
// campaign (or exploration) fanned out across worker *processes* — with
// batching, stealing, worker death, retries, and local fallback in play —
// produces results bit-identical to a single in-process run. The fabric
// may change how long things take and where they execute; it may not
// change one byte of what comes back.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "apps/workloads.hpp"
#include "campaign/explorer.hpp"
#include "campaign/runner.hpp"
#include "core/scenario_gen.hpp"
#include "isa/codebuilder.hpp"
#include "libc/libc_builder.hpp"
#include "serve/coordinator.hpp"
#include "serve/worker.hpp"
#include "serve/wire.hpp"

namespace lfi::serve {
namespace {

using campaign::CampaignOptions;
using campaign::CampaignReport;
using campaign::Scenario;
using campaign::ScenarioResult;
using isa::CodeBuilder;
using isa::Reg;

/// The classic LFI victim (same shape as test_campaign's): open /cfg,
/// read 64 bytes unchecked, abort on a negative count.
sso::SharedObject BuildReaderApp() {
  CodeBuilder b;
  uint32_t path = b.emit_data({'/', 'c', 'f', 'g', 0});
  uint32_t buf = b.reserve_data(128);
  b.begin_function("main");
  b.sub_ri(Reg::SP, 16);
  b.mov_ri(Reg::R2, libc::O_RDONLY);
  b.lea_data(Reg::R1, static_cast<int32_t>(path));
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("open");
  b.add_ri(Reg::SP, 16);
  b.store(Reg::BP, -8, Reg::R0);
  b.load(Reg::R1, Reg::BP, -8);
  b.lea_data(Reg::R2, static_cast<int32_t>(buf));
  b.mov_ri(Reg::R3, 64);
  b.push(Reg::R3);
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("read");
  b.add_ri(Reg::SP, 24);
  auto ok = b.new_label();
  b.cmp_ri(Reg::R0, 0);
  b.jge(ok);
  b.call_sym("abort");
  b.bind(ok);
  b.load(Reg::R1, Reg::BP, -8);
  b.push(Reg::R1);
  b.call_sym("close");
  b.add_ri(Reg::SP, 8);
  b.mov_ri(Reg::R0, 0);
  b.leave_ret();
  b.end_function();
  return sso::FromCodeUnit("readerapp.so", b.Finish(), {libc::kLibcName});
}

/// The serializable target both sides of the fabric build machines from.
TargetSpec ReaderSpec() {
  TargetSpec spec;
  spec.modules.push_back(libc::BuildLibc().Serialize());
  spec.modules.push_back(BuildReaderApp().Serialize());
  spec.files.emplace_back("/cfg", std::vector<uint8_t>(64, 'x'));
  return spec;
}

CampaignOptions BaseOptions() {
  CampaignOptions opts;
  opts.jobs = 1;
  opts.track_coverage = true;
  opts.collect_scenario_coverage = true;
  opts.collect_replays = true;
  return opts;
}

std::vector<Scenario> RandomScenarios(size_t count, double p, uint64_t base) {
  const std::vector<core::FaultProfile>& profiles = apps::LibcProfiles();
  std::vector<Scenario> scenarios;
  for (size_t i = 0; i < count; ++i) {
    Scenario s;
    s.name = "s" + std::to_string(i);
    s.plan = core::GenerateRandom(profiles, p, campaign::DeriveSeed(base, i));
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

/// The in-process ground truth every fabric run is compared against.
CampaignReport InProcessBaseline(const std::vector<Scenario>& scenarios,
                                 CampaignOptions opts) {
  auto setup = MakeSetup(ReaderSpec());
  EXPECT_TRUE(setup.ok());
  campaign::CampaignRunner runner(std::move(setup).take(),
                                  apps::LibcProfiles(), opts);
  return runner.Run(scenarios);
}

/// Full determinism-relevant comparison (timing and restore telemetry are
/// explicitly not part of the identity contract). Includes the fields the
/// explorer consumes: per-scenario bitmaps, replays, fork windows.
void ExpectSameResults(const CampaignReport& a, const CampaignReport& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    const ScenarioResult& ra = a.results[i];
    const ScenarioResult& rb = b.results[i];
    EXPECT_EQ(ra.index, rb.index) << "scenario " << i;
    EXPECT_EQ(ra.name, rb.name) << "scenario " << i;
    EXPECT_EQ(ra.status, rb.status) << "scenario " << i;
    EXPECT_EQ(ra.exit_code, rb.exit_code) << "scenario " << i;
    EXPECT_EQ(ra.signal, rb.signal) << "scenario " << i;
    EXPECT_EQ(ra.fault_message, rb.fault_message) << "scenario " << i;
    EXPECT_EQ(ra.injections, rb.injections) << "scenario " << i;
    EXPECT_EQ(ra.instructions, rb.instructions) << "scenario " << i;
    EXPECT_EQ(ra.covered_offsets, rb.covered_offsets) << "scenario " << i;
    EXPECT_EQ(ra.covered_by_module, rb.covered_by_module) << "scenario " << i;
    EXPECT_EQ(ra.coverage, rb.coverage) << "scenario " << i;
    EXPECT_EQ(ra.fault_frames, rb.fault_frames) << "scenario " << i;
    EXPECT_EQ(ra.crash_site_hash, rb.crash_site_hash) << "scenario " << i;
    EXPECT_EQ(ra.crash_hash, rb.crash_hash) << "scenario " << i;
    EXPECT_EQ(ra.replay.ToXml(), rb.replay.ToXml()) << "scenario " << i;
    EXPECT_EQ(ra.first_injection_instructions,
              rb.first_injection_instructions)
        << "scenario " << i;
    EXPECT_EQ(ra.snapshot_fallback, rb.snapshot_fallback) << "scenario " << i;
  }
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.scenarios, b.scenarios);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.deadlocks, b.deadlocks);
  EXPECT_EQ(a.budget_spent, b.budget_spent);
  EXPECT_EQ(a.setup_errors, b.setup_errors);
  EXPECT_EQ(a.snapshot_fallbacks, b.snapshot_fallbacks);
  EXPECT_EQ(a.total_injections, b.total_injections);
  EXPECT_EQ(a.total_instructions, b.total_instructions);
}

void ReapWorker(const LocalWorker& worker) {
  ::waitpid(worker.pid, nullptr, WNOHANG);
}

// Coordinator + two real worker processes, deliberately small batches so
// multiple dispatches and steals happen: byte-identical to --jobs 1.
TEST(Fabric, TwoLocalWorkersMatchInProcess) {
  std::vector<Scenario> scenarios = RandomScenarios(32, 0.3, 42);
  CampaignReport baseline = InProcessBaseline(scenarios, BaseOptions());
  // The set must exercise real injection paths for identity to mean much.
  ASSERT_GT(baseline.total_injections, 0u);
  ASSERT_GT(baseline.crashes, 0u);

  FabricOptions fabric_opts;
  fabric_opts.batch_size = 3;
  auto w1 = SpawnLocalWorker();
  auto w2 = SpawnLocalWorker();
  ASSERT_TRUE(w1.ok()) << w1.error();
  ASSERT_TRUE(w2.ok()) << w2.error();
  FabricCoordinator fabric(ReaderSpec(), apps::LibcProfiles(), BaseOptions(),
                           fabric_opts);
  ASSERT_TRUE(fabric.AddWorkerFd(w1.value().fd, "w1").ok());
  ASSERT_TRUE(fabric.AddWorkerFd(w2.value().fd, "w2").ok());
  ASSERT_EQ(fabric.live_workers(), 2u);

  CampaignReport distributed = fabric.Run(scenarios);
  ExpectSameResults(baseline, distributed);
  EXPECT_EQ(fabric.stats().scenarios_remote, scenarios.size());
  EXPECT_EQ(fabric.stats().scenarios_local, 0u);
  EXPECT_EQ(fabric.stats().workers_lost, 0u);
  ReapWorker(w1.value());
  ReapWorker(w2.value());
}

// The worker pool persists across Run calls (explorer rounds): a second
// campaign through the same coordinator is identical to its own baseline.
TEST(Fabric, RepeatedRunsReuseWarmWorkers) {
  std::vector<Scenario> first = RandomScenarios(12, 0.3, 7);
  std::vector<Scenario> second = RandomScenarios(12, 0.4, 8);
  auto w1 = SpawnLocalWorker();
  ASSERT_TRUE(w1.ok()) << w1.error();
  FabricCoordinator fabric(ReaderSpec(), apps::LibcProfiles(), BaseOptions());
  ASSERT_TRUE(fabric.AddWorkerFd(w1.value().fd, "w1").ok());
  ExpectSameResults(InProcessBaseline(first, BaseOptions()),
                    fabric.Run(first));
  ExpectSameResults(InProcessBaseline(second, BaseOptions()),
                    fabric.Run(second));
  EXPECT_EQ(fabric.stats().workers_lost, 0u);
  ReapWorker(w1.value());
}

// One worker hard-closes its socket mid-campaign (the deterministic
// stand-in for kill -9); its in-flight batch must be re-run on the
// surviving worker and the merged report must not change a byte.
TEST(Fabric, AbortingWorkerShardIsRetriedElsewhere) {
  std::vector<Scenario> scenarios = RandomScenarios(32, 0.3, 42);
  CampaignReport baseline = InProcessBaseline(scenarios, BaseOptions());

  WorkerConfig dying;
  dying.abort_after_scenarios = 4;
  FabricOptions fabric_opts;
  fabric_opts.batch_size = 4;
  auto w1 = SpawnLocalWorker(dying);
  auto w2 = SpawnLocalWorker();
  ASSERT_TRUE(w1.ok()) << w1.error();
  ASSERT_TRUE(w2.ok()) << w2.error();
  FabricCoordinator fabric(ReaderSpec(), apps::LibcProfiles(), BaseOptions(),
                           fabric_opts);
  ASSERT_TRUE(fabric.AddWorkerFd(w1.value().fd, "dying").ok());
  ASSERT_TRUE(fabric.AddWorkerFd(w2.value().fd, "healthy").ok());

  CampaignReport distributed = fabric.Run(scenarios);
  ExpectSameResults(baseline, distributed);
  EXPECT_GE(fabric.stats().workers_lost, 1u);
  EXPECT_GE(fabric.stats().batches_retried, 1u);
  EXPECT_EQ(fabric.stats().scenarios_local, 0u);
  ReapWorker(w1.value());
  ReapWorker(w2.value());
}

// An actual SIGKILL, not the cooperative hook: the coordinator sees the
// dead socket, drops the worker, and the survivor covers everything.
TEST(Fabric, SigkilledWorkerProcessDoesNotChangeTheReport) {
  std::vector<Scenario> scenarios = RandomScenarios(16, 0.3, 13);
  CampaignReport baseline = InProcessBaseline(scenarios, BaseOptions());

  auto w1 = SpawnLocalWorker();
  auto w2 = SpawnLocalWorker();
  ASSERT_TRUE(w1.ok()) << w1.error();
  ASSERT_TRUE(w2.ok()) << w2.error();
  FabricCoordinator fabric(ReaderSpec(), apps::LibcProfiles(), BaseOptions());
  ASSERT_TRUE(fabric.AddWorkerFd(w1.value().fd, "doomed").ok());
  ASSERT_TRUE(fabric.AddWorkerFd(w2.value().fd, "survivor").ok());

  ASSERT_EQ(::kill(w1.value().pid, SIGKILL), 0);
  ::waitpid(w1.value().pid, nullptr, 0);

  CampaignReport distributed = fabric.Run(scenarios);
  ExpectSameResults(baseline, distributed);
  EXPECT_GE(fabric.stats().workers_lost, 1u);
  ReapWorker(w2.value());
}

// No workers at all: the coordinator is still a valid ScenarioDispatch —
// everything runs on its in-process fallback runner, identically.
TEST(Fabric, NoWorkersDegradesToInProcess) {
  std::vector<Scenario> scenarios = RandomScenarios(16, 0.3, 99);
  CampaignReport baseline = InProcessBaseline(scenarios, BaseOptions());
  FabricCoordinator fabric(ReaderSpec(), apps::LibcProfiles(), BaseOptions());
  EXPECT_EQ(fabric.live_workers(), 0u);
  CampaignReport distributed = fabric.Run(scenarios);
  ExpectSameResults(baseline, distributed);
  EXPECT_EQ(fabric.stats().scenarios_local, scenarios.size());
  EXPECT_EQ(fabric.stats().scenarios_remote, 0u);
}

// Every worker dies and dispatch attempts run out: the unfinished tail
// falls back to the local runner. Completion is guaranteed, identity too.
TEST(Fabric, AllWorkersDeadFallsBackToLocalTail) {
  std::vector<Scenario> scenarios = RandomScenarios(24, 0.3, 5);
  CampaignReport baseline = InProcessBaseline(scenarios, BaseOptions());

  WorkerConfig dying;
  dying.abort_after_scenarios = 2;
  FabricOptions fabric_opts;
  fabric_opts.batch_size = 2;
  auto w1 = SpawnLocalWorker(dying);
  ASSERT_TRUE(w1.ok()) << w1.error();
  FabricCoordinator fabric(ReaderSpec(), apps::LibcProfiles(), BaseOptions(),
                           fabric_opts);
  ASSERT_TRUE(fabric.AddWorkerFd(w1.value().fd, "dying").ok());

  CampaignReport distributed = fabric.Run(scenarios);
  ExpectSameResults(baseline, distributed);
  EXPECT_EQ(fabric.stats().workers_lost, 1u);
  EXPECT_GT(fabric.stats().scenarios_local, 0u);
  EXPECT_EQ(fabric.live_workers(), 0u);
  ReapWorker(w1.value());
}

// Snapshot-tree execution through the fabric: worker machines warm their
// own snapshots; reports stay identical to the in-process snapshot run
// (which is itself identical to cold — the existing invariant chain).
TEST(Fabric, SnapshotTreeExecutionIsIdenticalThroughTheFabric) {
  CampaignOptions opts = BaseOptions();
  opts.snapshot_tree = true;
  opts.warmup_instructions = 64;
  std::vector<Scenario> scenarios = RandomScenarios(16, 0.3, 21);
  CampaignReport baseline = InProcessBaseline(scenarios, opts);

  auto w1 = SpawnLocalWorker();
  auto w2 = SpawnLocalWorker();
  ASSERT_TRUE(w1.ok()) << w1.error();
  ASSERT_TRUE(w2.ok()) << w2.error();
  FabricCoordinator fabric(ReaderSpec(), apps::LibcProfiles(), opts);
  ASSERT_TRUE(fabric.AddWorkerFd(w1.value().fd, "w1").ok());
  ASSERT_TRUE(fabric.AddWorkerFd(w2.value().fd, "w2").ok());
  CampaignReport distributed = fabric.Run(scenarios);
  ExpectSameResults(baseline, distributed);
  ReapWorker(w1.value());
  ReapWorker(w2.value());
}

void ExpectSameExplorerReports(const campaign::ExplorerReport& a,
                               const campaign::ExplorerReport& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].scenarios, b.rounds[i].scenarios) << "round " << i;
    EXPECT_EQ(a.rounds[i].crashes, b.rounds[i].crashes) << "round " << i;
    EXPECT_EQ(a.rounds[i].new_crash_buckets, b.rounds[i].new_crash_buckets)
        << "round " << i;
    EXPECT_EQ(a.rounds[i].winners, b.rounds[i].winners) << "round " << i;
    EXPECT_EQ(a.rounds[i].new_offsets, b.rounds[i].new_offsets)
        << "round " << i;
    EXPECT_EQ(a.rounds[i].union_offsets, b.rounds[i].union_offsets)
        << "round " << i;
    EXPECT_EQ(a.rounds[i].corpus_size, b.rounds[i].corpus_size)
        << "round " << i;
  }
  EXPECT_EQ(a.coverage, b.coverage);
  ASSERT_EQ(a.corpus.size(), b.corpus.size());
  for (size_t i = 0; i < a.corpus.size(); ++i) {
    EXPECT_EQ(a.corpus[i].ToXml(), b.corpus[i].ToXml()) << "corpus " << i;
  }
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].hash, b.crashes[i].hash) << "crash " << i;
    EXPECT_EQ(a.crashes[i].site_hash, b.crashes[i].site_hash) << "crash " << i;
    EXPECT_EQ(a.crashes[i].signature, b.crashes[i].signature) << "crash " << i;
    EXPECT_EQ(a.crashes[i].count, b.crashes[i].count) << "crash " << i;
    EXPECT_EQ(a.crashes[i].minimized.ToXml(), b.crashes[i].minimized.ToXml())
        << "crash " << i;
    EXPECT_EQ(a.crashes[i].reproduces, b.crashes[i].reproduces)
        << "crash " << i;
  }
  EXPECT_EQ(a.ToText(), b.ToText());
}

// The whole closed loop through the fabric: explorer rounds fan out to
// worker processes via ExplorerOptions::dispatch, and the exploration —
// union bitmap, corpus, crash buckets, minimized reproducers — is
// bit-identical to the purely in-process run.
TEST(Fabric, ExplorerRoundsThroughFabricAreBitIdentical) {
  campaign::ExplorerOptions eopts;
  eopts.rounds = 3;
  eopts.scenarios_per_round = 10;
  eopts.seed = 11;
  eopts.campaign.jobs = 1;

  auto setup = MakeSetup(ReaderSpec());
  ASSERT_TRUE(setup.ok());
  campaign::Explorer plain(setup.value(), apps::LibcProfiles(), eopts);
  campaign::ExplorerReport baseline = plain.Explore();
  ASSERT_FALSE(baseline.crashes.empty());

  FabricOptions fabric_opts;
  fabric_opts.batch_size = 2;
  auto w1 = SpawnLocalWorker();
  auto w2 = SpawnLocalWorker();
  ASSERT_TRUE(w1.ok()) << w1.error();
  ASSERT_TRUE(w2.ok()) << w2.error();
  FabricCoordinator fabric(ReaderSpec(), apps::LibcProfiles(),
                           campaign::Explorer::DispatchOptions(eopts.campaign),
                           fabric_opts);
  ASSERT_TRUE(fabric.AddWorkerFd(w1.value().fd, "w1").ok());
  ASSERT_TRUE(fabric.AddWorkerFd(w2.value().fd, "w2").ok());

  campaign::ExplorerOptions fabric_eopts = eopts;
  fabric_eopts.dispatch = &fabric;
  campaign::Explorer through(setup.value(), apps::LibcProfiles(),
                             fabric_eopts);
  campaign::ExplorerReport distributed = through.Explore();

  ExpectSameExplorerReports(baseline, distributed);
  EXPECT_GT(fabric.stats().scenarios_remote, 0u);
  ReapWorker(w1.value());
  ReapWorker(w2.value());
}

// Directed mode over the wire: CFG-distance fitness with the feasible-only
// gate. Fitness runs on the coordinating side from worker-shipped bitmaps,
// and feasible_only must ride the options frame so remote TriggerEngines
// gate exactly like local ones — any drift shows up as report divergence.
TEST(Fabric, DirectedExplorerRoundsThroughFabricAreBitIdentical) {
  campaign::ExplorerOptions eopts;
  eopts.rounds = 3;
  eopts.scenarios_per_round = 10;
  eopts.seed = 11;
  eopts.fitness = campaign::FitnessKind::CfgDistance;
  eopts.campaign.controller.feasible_only = true;
  eopts.campaign.jobs = 1;

  auto setup = MakeSetup(ReaderSpec());
  ASSERT_TRUE(setup.ok());
  campaign::Explorer plain(setup.value(), apps::LibcProfiles(), eopts);
  campaign::ExplorerReport baseline = plain.Explore();
  ASSERT_GT(baseline.union_offsets(), 0u);

  FabricOptions fabric_opts;
  fabric_opts.batch_size = 2;
  auto w1 = SpawnLocalWorker();
  auto w2 = SpawnLocalWorker();
  ASSERT_TRUE(w1.ok()) << w1.error();
  ASSERT_TRUE(w2.ok()) << w2.error();
  FabricCoordinator fabric(ReaderSpec(), apps::LibcProfiles(),
                           campaign::Explorer::DispatchOptions(eopts.campaign),
                           fabric_opts);
  ASSERT_TRUE(fabric.AddWorkerFd(w1.value().fd, "w1").ok());
  ASSERT_TRUE(fabric.AddWorkerFd(w2.value().fd, "w2").ok());

  campaign::ExplorerOptions fabric_eopts = eopts;
  fabric_eopts.dispatch = &fabric;
  campaign::Explorer through(setup.value(), apps::LibcProfiles(),
                             fabric_eopts);
  campaign::ExplorerReport distributed = through.Explore();

  ExpectSameExplorerReports(baseline, distributed);
  EXPECT_GT(fabric.stats().scenarios_remote, 0u);
  ReapWorker(w1.value());
  ReapWorker(w2.value());
}

}  // namespace
}  // namespace lfi::serve
