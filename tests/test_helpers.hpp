// Shared test utilities: tiny program/library builders and run harnesses.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "isa/codebuilder.hpp"
#include "libc/libc_builder.hpp"
#include "sso/sso.hpp"
#include "vm/machine.hpp"

namespace lfi::test {

struct RunResult {
  vm::ProcState state = vm::ProcState::Exited;
  int64_t exit_code = 0;
  vm::Signal signal = vm::Signal::None;
  std::string fault;
};

/// Run `entry` of an already-configured machine to completion.
inline RunResult RunEntry(vm::Machine& machine, const std::string& entry) {
  auto pid = machine.CreateProcess(entry);
  RunResult r;
  if (!pid.ok()) {
    r.state = vm::ProcState::Faulted;
    r.fault = pid.error();
    return r;
  }
  auto info = machine.RunToCompletion(pid.value());
  r.state = info.state;
  r.exit_code = info.exit_code;
  r.signal = info.signal;
  r.fault = info.fault_message;
  return r;
}

/// Run `entry` of `app` on a fresh machine with libc loaded.
inline RunResult RunProgram(sso::SharedObject app, const std::string& entry) {
  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(std::move(app));
  return RunEntry(machine, entry);
}

}  // namespace lfi::test
