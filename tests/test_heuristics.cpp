#include <gtest/gtest.h>

#include "analysis/heuristics.hpp"

namespace lfi::analysis {
namespace {

FunctionSummary MakeSummary(std::vector<int64_t> returns,
                            size_t instruction_count = 50,
                            bool with_effect = false) {
  FunctionSummary s;
  s.function = "f";
  s.instruction_count = instruction_count;
  for (int64_t v : returns) s.returns.push_back(ErrorReturn{v, {}, 0});
  if (with_effect) {
    SideEffect e;
    e.kind = SideEffect::Kind::Tls;
    e.module = "m";
    s.effects.push_back(e);
  }
  return s;
}

std::set<int64_t> Values(const FunctionSummary& s) {
  std::set<int64_t> out;
  for (const auto& er : s.returns) out.insert(er.value);
  return out;
}

TEST(Heuristics, DefaultOptionsAreNoOp) {
  // Both heuristics are off by default (§3.1: they are unsound).
  HeuristicOptions opts;
  EXPECT_FALSE(opts.drop_success_zero);
  EXPECT_FALSE(opts.drop_short_predicates);
  auto s = ApplyHeuristics(MakeSummary({0, 1, -1}), opts);
  EXPECT_EQ(Values(s), (std::set<int64_t>{0, 1, -1}));
}

TEST(Heuristics, DropZeroWhenOtherConstantsExist) {
  HeuristicOptions opts;
  opts.drop_success_zero = true;
  auto s = ApplyHeuristics(MakeSummary({0, -1, -9}), opts);
  EXPECT_EQ(Values(s), (std::set<int64_t>{-1, -9}));
}

TEST(Heuristics, LoneZeroKeptAsNullPointer) {
  // "if only 0 was found, it is likely a null pointer return".
  HeuristicOptions opts;
  opts.drop_success_zero = true;
  auto s = ApplyHeuristics(MakeSummary({0}), opts);
  EXPECT_EQ(Values(s), (std::set<int64_t>{0}));
}

TEST(Heuristics, ShortPredicateEliminated) {
  HeuristicOptions opts;
  opts.drop_short_predicates = true;
  auto s = ApplyHeuristics(MakeSummary({0, 1}, /*instr=*/8), opts);
  EXPECT_TRUE(s.returns.empty());
}

TEST(Heuristics, LongBoolFunctionKept) {
  HeuristicOptions opts;
  opts.drop_short_predicates = true;
  auto s = ApplyHeuristics(MakeSummary({0, 1}, /*instr=*/100), opts);
  EXPECT_EQ(Values(s), (std::set<int64_t>{0, 1}));
}

TEST(Heuristics, ShortNonBoolKept) {
  HeuristicOptions opts;
  opts.drop_short_predicates = true;
  auto s = ApplyHeuristics(MakeSummary({0, -1}, /*instr=*/8), opts);
  EXPECT_EQ(Values(s), (std::set<int64_t>{0, -1}));
}

TEST(Heuristics, ShortPredicateWithEffectsKept) {
  // A function that sets errno is not a pure predicate.
  HeuristicOptions opts;
  opts.drop_short_predicates = true;
  auto s = ApplyHeuristics(MakeSummary({0, 1}, 8, /*with_effect=*/true), opts);
  EXPECT_EQ(Values(s), (std::set<int64_t>{0, 1}));
}

TEST(Heuristics, BothHeuristicsCompose) {
  HeuristicOptions opts;
  opts.drop_success_zero = true;
  opts.drop_short_predicates = true;
  // Not a predicate (has -9), so heuristic 2 keeps it; heuristic 1 drops 0.
  auto s = ApplyHeuristics(MakeSummary({0, 1, -9}, 8), opts);
  EXPECT_EQ(Values(s), (std::set<int64_t>{1, -9}));
}

TEST(Heuristics, ThresholdBoundary) {
  HeuristicOptions opts;
  opts.drop_short_predicates = true;
  opts.short_function_max_instructions = 12;
  EXPECT_TRUE(ApplyHeuristics(MakeSummary({0, 1}, 12), opts).returns.empty());
  EXPECT_FALSE(ApplyHeuristics(MakeSummary({0, 1}, 13), opts).returns.empty());
}

}  // namespace
}  // namespace lfi::analysis
