#include <gtest/gtest.h>

#include "analysis/cfg.hpp"
#include "analysis/heuristics.hpp"
#include "isa/codebuilder.hpp"

namespace lfi::analysis {
namespace {

using isa::CodeBuilder;
using isa::Reg;

Cfg CfgOf(std::function<void(CodeBuilder&)> body) {
  CodeBuilder b;
  b.begin_function("f", true, /*bare=*/true);
  body(b);
  b.end_function();
  sso::SharedObject so = sso::FromCodeUnit("lib.so", b.Finish());
  auto cfg = BuildCfg(so, so.exports[0]);
  EXPECT_TRUE(cfg.ok()) << (cfg.ok() ? "" : cfg.error());
  return std::move(cfg).take();
}

FunctionSummary MakeSummary(std::vector<int64_t> returns,
                            size_t instruction_count = 50,
                            bool with_effect = false) {
  FunctionSummary s;
  s.function = "f";
  s.instruction_count = instruction_count;
  for (int64_t v : returns) s.returns.push_back(ErrorReturn{v, {}, 0});
  if (with_effect) {
    SideEffect e;
    e.kind = SideEffect::Kind::Tls;
    e.module = "m";
    s.effects.push_back(e);
  }
  return s;
}

std::set<int64_t> Values(const FunctionSummary& s) {
  std::set<int64_t> out;
  for (const auto& er : s.returns) out.insert(er.value);
  return out;
}

TEST(Heuristics, DefaultOptionsAreNoOp) {
  // Both heuristics are off by default (§3.1: they are unsound).
  HeuristicOptions opts;
  EXPECT_FALSE(opts.drop_success_zero);
  EXPECT_FALSE(opts.drop_short_predicates);
  auto s = ApplyHeuristics(MakeSummary({0, 1, -1}), opts);
  EXPECT_EQ(Values(s), (std::set<int64_t>{0, 1, -1}));
}

TEST(Heuristics, DropZeroWhenOtherConstantsExist) {
  HeuristicOptions opts;
  opts.drop_success_zero = true;
  auto s = ApplyHeuristics(MakeSummary({0, -1, -9}), opts);
  EXPECT_EQ(Values(s), (std::set<int64_t>{-1, -9}));
}

TEST(Heuristics, LoneZeroKeptAsNullPointer) {
  // "if only 0 was found, it is likely a null pointer return".
  HeuristicOptions opts;
  opts.drop_success_zero = true;
  auto s = ApplyHeuristics(MakeSummary({0}), opts);
  EXPECT_EQ(Values(s), (std::set<int64_t>{0}));
}

TEST(Heuristics, ShortPredicateEliminated) {
  HeuristicOptions opts;
  opts.drop_short_predicates = true;
  auto s = ApplyHeuristics(MakeSummary({0, 1}, /*instr=*/8), opts);
  EXPECT_TRUE(s.returns.empty());
}

TEST(Heuristics, LongBoolFunctionKept) {
  HeuristicOptions opts;
  opts.drop_short_predicates = true;
  auto s = ApplyHeuristics(MakeSummary({0, 1}, /*instr=*/100), opts);
  EXPECT_EQ(Values(s), (std::set<int64_t>{0, 1}));
}

TEST(Heuristics, ShortNonBoolKept) {
  HeuristicOptions opts;
  opts.drop_short_predicates = true;
  auto s = ApplyHeuristics(MakeSummary({0, -1}, /*instr=*/8), opts);
  EXPECT_EQ(Values(s), (std::set<int64_t>{0, -1}));
}

TEST(Heuristics, ShortPredicateWithEffectsKept) {
  // A function that sets errno is not a pure predicate.
  HeuristicOptions opts;
  opts.drop_short_predicates = true;
  auto s = ApplyHeuristics(MakeSummary({0, 1}, 8, /*with_effect=*/true), opts);
  EXPECT_EQ(Values(s), (std::set<int64_t>{0, 1}));
}

TEST(Heuristics, BothHeuristicsCompose) {
  HeuristicOptions opts;
  opts.drop_success_zero = true;
  opts.drop_short_predicates = true;
  // Not a predicate (has -9), so heuristic 2 keeps it; heuristic 1 drops 0.
  auto s = ApplyHeuristics(MakeSummary({0, 1, -9}, 8), opts);
  EXPECT_EQ(Values(s), (std::set<int64_t>{1, -9}));
}

TEST(Heuristics, ThresholdBoundary) {
  HeuristicOptions opts;
  opts.drop_short_predicates = true;
  opts.short_function_max_instructions = 12;
  EXPECT_TRUE(ApplyHeuristics(MakeSummary({0, 1}, 12), opts).returns.empty());
  EXPECT_FALSE(ApplyHeuristics(MakeSummary({0, 1}, 13), opts).returns.empty());
}

TEST(ErrorHandlingBlocks, SuccessJumpShapeFlagsFallThrough) {
  // cmp R0, 0; jge ok  — success jumps away, so the failure side is the
  // fall-through block.
  Cfg cfg = CfgOf([](CodeBuilder& b) {
    auto ok = b.new_label();
    b.cmp_ri(Reg::R0, 0);
    b.jge(ok);
    b.add_ri(Reg::R1, 1);  // the error handler
    b.bind(ok);
    b.ret();
  });
  auto blocks = ErrorHandlingBlocks(cfg);
  ASSERT_EQ(blocks.size(), 1u);
  // The flagged block is the guard's fall-through successor, not the
  // branch target.
  const BasicBlock& guard = cfg.blocks[0];
  ASSERT_EQ(guard.succs.size(), 2u);
  EXPECT_EQ(blocks[0], guard.succs[1]);  // succs[1] = fall-through
}

TEST(ErrorHandlingBlocks, FailureJumpShapeFlagsBranchTarget) {
  // cmp R0, -1; je err — failure jumps in, so the branch target is the
  // handler.
  Cfg cfg = CfgOf([](CodeBuilder& b) {
    auto err = b.new_label();
    b.cmp_ri(Reg::R0, -1);
    b.je(err);
    b.ret();
    b.bind(err);
    b.add_ri(Reg::R1, 1);
    b.ret();
  });
  auto blocks = ErrorHandlingBlocks(cfg);
  ASSERT_EQ(blocks.size(), 1u);
  const BasicBlock& guard = cfg.blocks[0];
  ASSERT_EQ(guard.succs.size(), 2u);
  EXPECT_EQ(blocks[0], guard.succs[0]);  // succs[0] = branch target
}

TEST(ErrorHandlingBlocks, AbortBlocksAreFlagged) {
  Cfg cfg = CfgOf([](CodeBuilder& b) {
    auto ok = b.new_label();
    b.cmp_ri(Reg::R0, 0);
    b.jge(ok);
    b.abort();
    b.bind(ok);
    b.ret();
  });
  auto blocks = ErrorHandlingBlocks(cfg);
  // The abort block is both the guard's failure side and an ABORT block —
  // flagged once (ascending, deduplicated).
  ASSERT_EQ(blocks.size(), 1u);
  bool has_abort = false;
  for (const isa::Instr& ins : cfg.blocks[blocks[0]].instrs) {
    if (ins.op == isa::Opcode::ABORT) has_abort = true;
  }
  EXPECT_TRUE(has_abort);
}

TEST(ErrorHandlingBlocks, PositiveConstantsAndOtherRegistersIgnored) {
  // cmp R0, 5 (k > 0: a loop bound, not an error check) and cmp R1, 0
  // (not the return register) must flag nothing.
  Cfg positive = CfgOf([](CodeBuilder& b) {
    auto ok = b.new_label();
    b.cmp_ri(Reg::R0, 5);
    b.jge(ok);
    b.add_ri(Reg::R1, 1);
    b.bind(ok);
    b.ret();
  });
  EXPECT_TRUE(ErrorHandlingBlocks(positive).empty());

  Cfg other_reg = CfgOf([](CodeBuilder& b) {
    auto ok = b.new_label();
    b.cmp_ri(Reg::R1, 0);
    b.jge(ok);
    b.add_ri(Reg::R2, 1);
    b.bind(ok);
    b.ret();
  });
  EXPECT_TRUE(ErrorHandlingBlocks(other_reg).empty());
}

}  // namespace
}  // namespace lfi::analysis
