// End-to-end pipeline tests: profile -> generate scenario -> synthesize
// stubs -> run under injection -> log -> replay (the Figure 1 / Figure 3
// architecture exercised as a whole).
#include <gtest/gtest.h>

#include "apps/workloads.hpp"
#include "core/controller.hpp"
#include "core/faultloads.hpp"
#include "core/profiler.hpp"
#include "core/scenario_gen.hpp"
#include "kernel/kernel_image.hpp"
#include "test_helpers.hpp"
#include "util/errno_table.hpp"

namespace lfi {
namespace {

using isa::CodeBuilder;
using isa::Reg;

/// A file-copy utility with a deliberate bug: the read() result is not
/// checked before being used as the write length.
sso::SharedObject BuggyCopyApp() {
  CodeBuilder b;
  uint32_t src = b.emit_data({'/', 's', 'r', 'c', 0});
  uint32_t dst = b.emit_data({'/', 'd', 's', 't', 0});
  uint32_t buf = b.reserve_data(256);
  b.begin_function("main");
  b.sub_ri(Reg::SP, 32);
  // in = open("/src", O_RDONLY)
  b.mov_ri(Reg::R2, libc::O_RDONLY);
  b.lea_data(Reg::R1, static_cast<int32_t>(src));
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("open");
  b.add_ri(Reg::SP, 16);
  b.store(Reg::BP, -8, Reg::R0);
  // out = open("/dst", O_CREAT)
  b.mov_ri(Reg::R2, libc::O_CREAT);
  b.lea_data(Reg::R1, static_cast<int32_t>(dst));
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("open");
  b.add_ri(Reg::SP, 16);
  b.store(Reg::BP, -16, Reg::R0);
  // n = read(in, buf, 128)  -- result NOT checked (the bug)
  b.load(Reg::R1, Reg::BP, -8);
  b.lea_data(Reg::R2, static_cast<int32_t>(buf));
  b.mov_ri(Reg::R3, 128);
  b.push(Reg::R3);
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("read");
  b.add_ri(Reg::SP, 24);
  b.store(Reg::BP, -24, Reg::R0);
  // write(out, buf, n): with injected read -> n = -1 -> huge size_t-like
  // write; our app "asserts" n >= 0 by aborting otherwise, emulating the
  // memcpy crash a real program would hit.
  auto ok = b.new_label();
  b.load(Reg::R1, Reg::BP, -24);
  b.cmp_ri(Reg::R1, 0);
  b.jge(ok);
  b.call_sym("abort");
  b.bind(ok);
  b.load(Reg::R1, Reg::BP, -16);
  b.lea_data(Reg::R2, static_cast<int32_t>(buf));
  b.load(Reg::R3, Reg::BP, -24);
  b.push(Reg::R3);
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("write");
  b.add_ri(Reg::SP, 24);
  b.mov_ri(Reg::R0, 0);
  b.leave_ret();
  b.end_function();
  return sso::FromCodeUnit("copytool.so", b.Finish(), {"libc.so"});
}

class PipelineTest : public ::testing::Test {
 protected:
  static std::vector<core::FaultProfile> LibcProfiles() {
    return apps::ProfileStandardLibs({libc::BuildLibc()});
  }

  static test::RunResult RunUnder(const core::Plan& plan,
                                  core::Controller** out = nullptr) {
    static std::unique_ptr<core::Controller> controller;
    auto machine = std::make_unique<vm::Machine>();
    machine->Load(libc::BuildLibc());
    machine->Load(BuggyCopyApp());
    machine->kernel().add_file("/src", std::vector<uint8_t>(100, 'a'));
    controller = std::make_unique<core::Controller>(*machine);
    EXPECT_TRUE(controller->Install(plan, LibcProfiles()));
    auto r = test::RunEntry(*machine, "main");
    if (out) *out = controller.get();
    keeper_ = std::move(machine);
    return r;
  }

  static inline std::unique_ptr<vm::Machine> keeper_;
};

TEST_F(PipelineTest, CleanRunWithEmptyPlan) {
  core::Plan empty;
  auto r = RunUnder(empty);
  EXPECT_EQ(r.state, vm::ProcState::Exited) << r.fault;
  EXPECT_EQ(r.exit_code, 0);
}

TEST_F(PipelineTest, ProfileDrivenInjectionExposesUncheckedRead) {
  // Target the read with a profile-declared fault: retval -1 + EINTR. The
  // unchecked-read bug turns it into SIGABRT.
  core::Plan plan;
  core::FunctionTrigger t;
  t.function = "read";
  t.mode = core::FunctionTrigger::Mode::CallCount;
  t.inject_call = 1;
  t.retval = -1;
  t.errno_value = E_INTR;
  plan.triggers.push_back(t);
  core::Controller* controller = nullptr;
  auto r = RunUnder(plan, &controller);
  EXPECT_EQ(r.state, vm::ProcState::Faulted);
  EXPECT_EQ(r.signal, vm::Signal::Abort);
  ASSERT_EQ(controller->log().size(), 1u);
  EXPECT_EQ(controller->log().function_name(controller->log().records()[0]),
            "read");
}

TEST_F(PipelineTest, ExhaustiveScenarioFindsTheBugToo) {
  core::Plan plan = core::GenerateExhaustive(LibcProfiles());
  auto r = RunUnder(plan);
  // Exhaustive injection fails the very first open/read: either the app
  // exits on the guarded paths or hits the abort; it must not run clean
  // to a normal copy.
  EXPECT_TRUE(r.state == vm::ProcState::Faulted ||
              r.exit_code != 0 ||
              keeper_->kernel().file_contents("/dst").empty());
}

TEST_F(PipelineTest, RandomScenarioEventuallyAborts) {
  bool aborted = false;
  for (uint64_t seed = 1; seed <= 30 && !aborted; ++seed) {
    core::Plan plan = core::GenerateRandomSubset(LibcProfiles(), {"read"},
                                                 0.5, seed);
    auto r = RunUnder(plan);
    aborted = r.state == vm::ProcState::Faulted &&
              r.signal == vm::Signal::Abort;
  }
  EXPECT_TRUE(aborted);
}

TEST_F(PipelineTest, ReplayScriptReproducesInjectionSequence) {
  core::Plan plan = core::GenerateRandomSubset(LibcProfiles(), {"read"},
                                               0.9, 3);
  core::Controller* first = nullptr;
  auto r1 = RunUnder(plan, &first);
  ASSERT_GT(first->log().size(), 0u);
  std::vector<core::InjectionRecord> original = first->log().records();
  // Resolve names now: ids are log-local, and the next RunUnder replaces
  // the controller (and its log's interner).
  std::vector<std::string> original_names;
  for (const core::InjectionRecord& r : original) {
    original_names.push_back(first->log().function_name(r));
  }

  core::Plan replay = first->GenerateReplay();
  core::Controller* second = nullptr;
  auto r2 = RunUnder(replay, &second);
  EXPECT_EQ(r1.state, r2.state);
  EXPECT_EQ(r1.exit_code, r2.exit_code);
  ASSERT_EQ(second->log().size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(second->log().function_name(second->log().records()[i]),
              original_names[i]);
    EXPECT_EQ(second->log().records()[i].call_number,
              original[i].call_number);
    EXPECT_EQ(second->log().records()[i].retval, original[i].retval);
  }
}

TEST_F(PipelineTest, ReplayPlanSurvivesXmlRoundTrip) {
  core::Plan plan = core::GenerateRandomSubset(LibcProfiles(), {"read"},
                                               0.9, 3);
  core::Controller* controller = nullptr;
  RunUnder(plan, &controller);
  core::Plan replay = controller->GenerateReplay();
  auto parsed = core::Plan::FromXml(replay.ToXml());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  core::Controller* again = nullptr;
  auto r1 = RunUnder(replay, &again);
  auto r2 = RunUnder(parsed.value(), &again);
  EXPECT_EQ(r1.state, r2.state);
  EXPECT_EQ(r1.exit_code, r2.exit_code);
}

TEST_F(PipelineTest, FaultloadsDriveInjectionsThroughProfiles) {
  core::Plan plan = core::FileIoFaultload(LibcProfiles(), 1.0, 5);
  core::Controller* controller = nullptr;
  auto r = RunUnder(plan, &controller);
  (void)r;
  ASSERT_GT(controller->log().size(), 0u);
  // Every injected errno must come from the profile of the function.
  auto profiles = LibcProfiles();
  for (const auto& rec : controller->log().records()) {
    if (!rec.errno_value) continue;
    const std::string& name = controller->log().function_name(rec);
    const core::FunctionProfile* fn = profiles[0].function(name);
    ASSERT_NE(fn, nullptr) << name;
    bool legal = false;
    for (const auto& [rv, err] : fn->injectables()) {
      legal |= rv == rec.retval && err && *err == *rec.errno_value;
    }
    EXPECT_TRUE(legal) << name << " errno " << ErrnoName(*rec.errno_value);
  }
}

TEST_F(PipelineTest, StackTraceConditionedInjection) {
  // Only inject the read() reached from main (our only caller) — verifies
  // the backtrace plumbing end to end.
  core::Plan plan;
  core::FunctionTrigger t;
  t.function = "read";
  t.mode = core::FunctionTrigger::Mode::CallCount;
  t.inject_call = 1;
  t.retval = -1;
  t.errno_value = E_IO;
  core::FrameCondition frame;
  frame.symbol = "main";
  t.stacktrace.push_back(frame);
  plan.triggers.push_back(t);
  auto r = RunUnder(plan);
  EXPECT_EQ(r.signal, vm::Signal::Abort);  // condition matched -> injected

  core::Plan wrong = plan;
  wrong.triggers[0].stacktrace[0].symbol = "not_main";
  auto r2 = RunUnder(wrong);
  EXPECT_EQ(r2.state, vm::ProcState::Exited);  // no injection
}

}  // namespace
}  // namespace lfi
