// SymbolTable interner tests: dense id assignment, resolve-once stability,
// and concurrent interning (the per-machine table is shared by everything
// that resolves names at install time).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/interner.hpp"

namespace lfi::util {
namespace {

TEST(SymbolTable, IdsAreDenseAndStable) {
  SymbolTable table;
  EXPECT_EQ(table.Intern("read"), 0u);
  EXPECT_EQ(table.Intern("write"), 1u);
  EXPECT_EQ(table.Intern("close"), 2u);
  // Re-interning resolves to the existing id, never a new one.
  EXPECT_EQ(table.Intern("read"), 0u);
  EXPECT_EQ(table.Intern("close"), 2u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(SymbolTable, FindDoesNotIntern) {
  SymbolTable table;
  EXPECT_EQ(table.Find("read"), kNoSymbol);
  EXPECT_EQ(table.size(), 0u);
  SymbolId id = table.Intern("read");
  EXPECT_EQ(table.Find("read"), id);
  EXPECT_EQ(table.Find("write"), kNoSymbol);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SymbolTable, NameRoundTrip) {
  SymbolTable table;
  SymbolId read = table.Intern("read");
  SymbolId write = table.Intern("write");
  EXPECT_EQ(table.name(read), "read");
  EXPECT_EQ(table.name(write), "write");
  EXPECT_EQ(table.name(kNoSymbol), "");
  EXPECT_EQ(table.name(99), "");
}

TEST(SymbolTable, NameReferencesStayValidAsTableGrows) {
  SymbolTable table;
  const std::string& first = table.name(table.Intern("f0"));
  for (int i = 1; i < 1000; ++i) {
    table.Intern("f" + std::to_string(i));
  }
  // The reference taken before 999 more interns must still read "f0"
  // (ids are handles precisely because names never move).
  EXPECT_EQ(first, "f0");
}

TEST(SymbolTable, ConcurrentInternResolvesOnce) {
  SymbolTable table;
  constexpr int kThreads = 8;
  constexpr int kNames = 64;
  // Every thread interns the same names in a different order; all threads
  // must agree on every name's id, and no duplicate ids may be handed out.
  std::vector<std::vector<SymbolId>> seen(kThreads,
                                          std::vector<SymbolId>(kNames));
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kNames; ++i) {
        int n = (i * 7 + t * 13) % kNames;  // per-thread order
        seen[static_cast<size_t>(t)][static_cast<size_t>(n)] =
            table.Intern("sym" + std::to_string(n));
      }
    });
  }
  for (std::thread& th : pool) th.join();

  EXPECT_EQ(table.size(), static_cast<size_t>(kNames));
  for (int n = 0; n < kNames; ++n) {
    SymbolId expected = seen[0][static_cast<size_t>(n)];
    EXPECT_LT(expected, static_cast<SymbolId>(kNames));
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[static_cast<size_t>(t)][static_cast<size_t>(n)], expected)
          << "thread " << t << " disagrees on sym" << n;
    }
    EXPECT_EQ(table.name(expected), "sym" + std::to_string(n));
  }
}

}  // namespace
}  // namespace lfi::util
