#include <gtest/gtest.h>

#include "isa/isa.hpp"
#include "util/rng.hpp"

namespace lfi::isa {
namespace {

Instr Make(Opcode op, Reg a = Reg::R0, Reg b = Reg::R0, int64_t imm = 0,
           int32_t disp = 0, uint16_t u16 = 0) {
  Instr i;
  i.op = op;
  i.a = a;
  i.b = b;
  i.imm = imm;
  i.disp = disp;
  i.u16 = u16;
  return i;
}

TEST(IsaEncode, SizesMatchLayout) {
  for (uint8_t raw = 0; raw < static_cast<uint8_t>(Opcode::kCount); ++raw) {
    Opcode op = static_cast<Opcode>(raw);
    std::vector<uint8_t> bytes;
    Encode(Make(op, Reg::R1, Reg::R2, 5, 6, 7), &bytes);
    EXPECT_EQ(bytes.size(), EncodedSize(op)) << OpcodeName(op);
  }
}

// Round-trip every opcode through encode -> decode.
class OpcodeRoundTrip : public ::testing::TestWithParam<uint8_t> {};

TEST_P(OpcodeRoundTrip, EncodeDecode) {
  Opcode op = static_cast<Opcode>(GetParam());
  Instr in = Make(op, Reg::R3, Reg::R5, -123456789012345, -42, 999);
  std::vector<uint8_t> bytes;
  Encode(in, &bytes);
  auto out = DecodeOne(bytes, 0);
  ASSERT_TRUE(out.ok()) << out.error();
  const Instr& d = out.value();
  EXPECT_EQ(d.op, op);
  EXPECT_EQ(d.size, bytes.size());
  switch (LayoutOf(op)) {
    case OperandLayout::None:
      break;
    case OperandLayout::R:
      EXPECT_EQ(d.a, in.a);
      break;
    case OperandLayout::RR:
      EXPECT_EQ(d.a, in.a);
      EXPECT_EQ(d.b, in.b);
      break;
    case OperandLayout::RI:
      EXPECT_EQ(d.a, in.a);
      EXPECT_EQ(d.imm, in.imm);
      break;
    case OperandLayout::RRD:
      EXPECT_EQ(d.a, in.a);
      EXPECT_EQ(d.b, in.b);
      EXPECT_EQ(d.disp, in.disp);
      break;
    case OperandLayout::RDR:
      EXPECT_EQ(d.a, in.a);
      EXPECT_EQ(d.b, in.b);
      EXPECT_EQ(d.disp, in.disp);
      break;
    case OperandLayout::RDI:
      EXPECT_EQ(d.a, in.a);
      EXPECT_EQ(d.imm, in.imm);
      EXPECT_EQ(d.disp, in.disp);
      break;
    case OperandLayout::RD:
      EXPECT_EQ(d.a, in.a);
      EXPECT_EQ(d.disp, in.disp);
      break;
    case OperandLayout::Rel32:
      EXPECT_EQ(d.disp, in.disp);
      break;
    case OperandLayout::U16:
      EXPECT_EQ(d.u16, in.u16);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeRoundTrip,
    ::testing::Range<uint8_t>(0, static_cast<uint8_t>(Opcode::kCount)));

TEST(IsaDecode, RejectsUnknownOpcode) {
  std::vector<uint8_t> bytes = {0xEE};
  EXPECT_FALSE(DecodeOne(bytes, 0).ok());
}

TEST(IsaDecode, RejectsTruncated) {
  std::vector<uint8_t> bytes;
  Encode(Make(Opcode::MOV_RI, Reg::R0, Reg::R0, 7), &bytes);
  bytes.pop_back();
  EXPECT_FALSE(DecodeOne(bytes, 0).ok());
}

TEST(IsaDecode, RejectsBadRegister) {
  std::vector<uint8_t> bytes = {static_cast<uint8_t>(Opcode::PUSH), 99};
  EXPECT_FALSE(DecodeOne(bytes, 0).ok());
}

TEST(IsaDecode, RejectsOffsetPastEnd) {
  std::vector<uint8_t> bytes = {static_cast<uint8_t>(Opcode::NOP)};
  EXPECT_FALSE(DecodeOne(bytes, 5).ok());
}

TEST(IsaDisassemble, LinearSweep) {
  std::vector<uint8_t> bytes;
  Encode(Make(Opcode::MOV_RI, Reg::R0, Reg::R0, 1), &bytes);
  Encode(Make(Opcode::PUSH, Reg::R0), &bytes);
  Encode(Make(Opcode::RET), &bytes);
  auto instrs = Disassemble(bytes, 0, static_cast<uint32_t>(bytes.size()));
  ASSERT_TRUE(instrs.ok());
  ASSERT_EQ(instrs.value().size(), 3u);
  EXPECT_EQ(instrs.value()[0].offset, 0u);
  EXPECT_EQ(instrs.value()[1].offset, 10u);
  EXPECT_EQ(instrs.value()[2].offset, 12u);
}

TEST(IsaDisassemble, FailsOnGarbage) {
  std::vector<uint8_t> bytes = {0xEE, 0xFF};
  EXPECT_FALSE(Disassemble(bytes, 0, 2).ok());
}

TEST(IsaInstr, BranchClassification) {
  EXPECT_TRUE(Make(Opcode::JMP).is_branch());
  EXPECT_TRUE(Make(Opcode::JE).is_cond_branch());
  EXPECT_FALSE(Make(Opcode::JMP).is_cond_branch());
  EXPECT_TRUE(Make(Opcode::JMP_IND).is_branch());
  EXPECT_FALSE(Make(Opcode::CALL).is_branch());
  EXPECT_TRUE(Make(Opcode::CALL).is_call());
  EXPECT_TRUE(Make(Opcode::CALL_SYM).is_call());
  EXPECT_TRUE(Make(Opcode::RET).is_terminator());
  EXPECT_TRUE(Make(Opcode::HALT).is_terminator());
  EXPECT_TRUE(Make(Opcode::ABORT).is_terminator());
  EXPECT_FALSE(Make(Opcode::MOV_RI).is_terminator());
}

TEST(IsaInstr, RelTargetArithmetic) {
  Instr j = Make(Opcode::JMP, Reg::R0, Reg::R0, 0, 10);
  j.offset = 100;
  j.size = 5;
  EXPECT_EQ(j.rel_target(), 115u);
  Instr back = Make(Opcode::JMP, Reg::R0, Reg::R0, 0, -20);
  back.offset = 100;
  back.size = 5;
  EXPECT_EQ(back.rel_target(), 85u);
}

TEST(IsaInstr, ToStringMentionsOperands) {
  Instr mov = Make(Opcode::MOV_RI, Reg::R2, Reg::R0, -5);
  EXPECT_NE(mov.ToString().find("r2"), std::string::npos);
  EXPECT_NE(mov.ToString().find("-5"), std::string::npos);
  Instr st = Make(Opcode::STORE, Reg::BP, Reg::R1, 0, -8);
  EXPECT_NE(st.ToString().find("[bp-8]"), std::string::npos);
}

TEST(IsaRegs, NamesDistinct) {
  std::set<std::string> names;
  for (int r = 0; r < kNumRegs; ++r) {
    names.insert(RegName(static_cast<Reg>(r)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumRegs));
}

// Property: random instruction sequences round-trip through the
// disassembler (the profiler's substrate must decode what the builder
// encodes, always).
class StreamRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamRoundTrip, EncodeDecodeStream) {
  Rng rng(GetParam());
  std::vector<Instr> in;
  std::vector<uint8_t> bytes;
  for (int i = 0; i < 200; ++i) {
    Opcode op = static_cast<Opcode>(
        rng.below(static_cast<uint64_t>(Opcode::kCount)));
    Instr ins = Make(op, static_cast<Reg>(rng.below(kNumRegs)),
                     static_cast<Reg>(rng.below(kNumRegs)),
                     static_cast<int64_t>(rng.next()),
                     static_cast<int32_t>(rng.next()),
                     static_cast<uint16_t>(rng.next()));
    in.push_back(ins);
    Encode(ins, &bytes);
  }
  auto out = Disassemble(bytes, 0, static_cast<uint32_t>(bytes.size()));
  ASSERT_TRUE(out.ok()) << out.error();
  ASSERT_EQ(out.value().size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out.value()[i].op, in[i].op) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamRoundTrip,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace lfi::isa
